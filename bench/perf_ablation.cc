// Ablation benchmarks for the design choices DESIGN.md calls out:
//   * reachability: condensation+interval index vs online BFS per query,
//   * CSR: sorted vs unsorted adjacency for membership tests,
//   * influence maximization: CELF vs plain greedy (evaluations counted),
//   * supernode skipping: traversal cost with/without high-degree cutoff.
#include <benchmark/benchmark.h>

#include "algorithms/hop_labels.h"
#include "algorithms/reachability.h"
#include "algorithms/traversal.h"
#include "ml/influence_max.h"

#include "perf_common.h"

namespace ubigraph {
namespace {

// ------------------------------ reachability: index vs online BFS ---------

void BM_ReachabilityOnlineBfs(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  Rng rng(1);
  for (auto _ : state) {
    VertexId s = static_cast<VertexId>(rng.NextBounded(g.num_vertices()));
    VertexId t = static_cast<VertexId>(rng.NextBounded(g.num_vertices()));
    benchmark::DoNotOptimize(algo::IsReachable(g, s, t));
  }
}
BENCHMARK(BM_ReachabilityOnlineBfs)->Arg(10)->Arg(13);

void BM_ReachabilityIndexed(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  static std::map<int64_t, algo::ReachabilityIndex> cache;
  auto it = cache.find(state.range(0));
  if (it == cache.end()) {
    it = cache.emplace(state.range(0),
                       algo::ReachabilityIndex::Build(g).ValueOrDie())
             .first;
  }
  Rng rng(1);
  for (auto _ : state) {
    VertexId s = static_cast<VertexId>(rng.NextBounded(g.num_vertices()));
    VertexId t = static_cast<VertexId>(rng.NextBounded(g.num_vertices()));
    benchmark::DoNotOptimize(it->second.Reachable(s, t));
  }
}
BENCHMARK(BM_ReachabilityIndexed)->Arg(10)->Arg(13);

void BM_ReachabilityIndexBuild(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::ReachabilityIndex::Build(g));
  }
}
BENCHMARK(BM_ReachabilityIndexBuild)->Arg(10)->Arg(13);

// ------------------------------ distances: BFS vs hop labels --------------

void BM_DistanceQueryBfs(benchmark::State& state) {
  const CsrGraph& g = bench::SmallWorldGraph(4000);
  Rng rng(4);
  for (auto _ : state) {
    VertexId s = static_cast<VertexId>(rng.NextBounded(g.num_vertices()));
    VertexId t = static_cast<VertexId>(rng.NextBounded(g.num_vertices()));
    auto dist = algo::BfsDistances(g, s);
    benchmark::DoNotOptimize(dist[t]);
  }
}
BENCHMARK(BM_DistanceQueryBfs);

void BM_DistanceQueryHopLabels(benchmark::State& state) {
  const CsrGraph& g = bench::SmallWorldGraph(4000);
  static const algo::HopLabelIndex idx =
      algo::HopLabelIndex::Build(g).ValueOrDie();
  Rng rng(4);
  for (auto _ : state) {
    VertexId s = static_cast<VertexId>(rng.NextBounded(g.num_vertices()));
    VertexId t = static_cast<VertexId>(rng.NextBounded(g.num_vertices()));
    benchmark::DoNotOptimize(idx.Distance(s, t));
  }
  state.counters["avg_label_size"] = idx.AverageLabelSize();
}
BENCHMARK(BM_DistanceQueryHopLabels);

// ------------------------------ CSR: sorted vs unsorted adjacency ---------

void BM_HasEdgeSortedAdjacency(benchmark::State& state) {
  Rng grng(5);
  CsrOptions opts;
  opts.sort_neighbors = true;
  static const CsrGraph g =
      CsrGraph::FromEdges(gen::Rmat(14, 8 << 14, &grng).ValueOrDie(), opts)
          .ValueOrDie();
  Rng rng(2);
  for (auto _ : state) {
    VertexId s = static_cast<VertexId>(rng.NextBounded(g.num_vertices()));
    VertexId t = static_cast<VertexId>(rng.NextBounded(g.num_vertices()));
    benchmark::DoNotOptimize(g.HasEdge(s, t));
  }
}
BENCHMARK(BM_HasEdgeSortedAdjacency);

void BM_HasEdgeUnsortedAdjacency(benchmark::State& state) {
  Rng grng(5);
  CsrOptions opts;
  opts.sort_neighbors = false;
  static const CsrGraph g =
      CsrGraph::FromEdges(gen::Rmat(14, 8 << 14, &grng).ValueOrDie(), opts)
          .ValueOrDie();
  Rng rng(2);
  for (auto _ : state) {
    VertexId s = static_cast<VertexId>(rng.NextBounded(g.num_vertices()));
    VertexId t = static_cast<VertexId>(rng.NextBounded(g.num_vertices()));
    benchmark::DoNotOptimize(g.HasEdge(s, t));
  }
}
BENCHMARK(BM_HasEdgeUnsortedAdjacency);

// ------------------------------ influence: CELF vs greedy -----------------

void BM_InfluenceGreedy(benchmark::State& state) {
  const CsrGraph& g = bench::SmallWorldGraph(200);
  ml::InfluenceOptions opts;
  opts.num_simulations = 20;
  uint64_t evals = 0;
  for (auto _ : state) {
    auto r = ml::GreedyInfluenceMaximization(g, 3, opts).ValueOrDie();
    evals = r.spread_evaluations;
    benchmark::DoNotOptimize(r);
  }
  state.counters["spread_evals"] = static_cast<double>(evals);
}
BENCHMARK(BM_InfluenceGreedy);

void BM_InfluenceCelf(benchmark::State& state) {
  const CsrGraph& g = bench::SmallWorldGraph(200);
  ml::InfluenceOptions opts;
  opts.num_simulations = 20;
  uint64_t evals = 0;
  for (auto _ : state) {
    auto r = ml::CelfInfluenceMaximization(g, 3, opts).ValueOrDie();
    evals = r.spread_evaluations;
    benchmark::DoNotOptimize(r);
  }
  state.counters["spread_evals"] = static_cast<double>(evals);
}
BENCHMARK(BM_InfluenceCelf);

// ------------------------------ supernode skipping ------------------------

void BM_BfsWithSupernodes(benchmark::State& state) {
  // Power-law graphs are where the Table 19 complaint lives.
  static const CsrGraph g = [] {
    Rng rng(7);
    return CsrGraph::FromEdges(
               gen::PowerLawDirected(20000, 2.0, 2000, &rng).ValueOrDie())
        .ValueOrDie();
  }();
  Rng rng(3);
  for (auto _ : state) {
    VertexId s = static_cast<VertexId>(rng.NextBounded(g.num_vertices()));
    benchmark::DoNotOptimize(algo::BfsDistances(g, s));
  }
}
BENCHMARK(BM_BfsWithSupernodes);

void BM_BfsSkippingSupernodes(benchmark::State& state) {
  static const CsrGraph g = [] {
    Rng rng(7);
    return CsrGraph::FromEdges(
               gen::PowerLawDirected(20000, 2.0, 2000, &rng).ValueOrDie())
        .ValueOrDie();
  }();
  Rng rng(3);
  for (auto _ : state) {
    VertexId s = static_cast<VertexId>(rng.NextBounded(g.num_vertices()));
    benchmark::DoNotOptimize(algo::BfsDistancesSkippingSupernodes(g, s, 64));
  }
}
BENCHMARK(BM_BfsSkippingSupernodes);

}  // namespace
}  // namespace ubigraph

BENCHMARK_MAIN();
