// Table 19: challenge counts mined from user emails and issues. The keyword
// taxonomy (survey/miner.cc) classifies the >6000-message synthetic corpus;
// counts must match the paper per challenge and software class.
#include <cstdio>

#include "common/table.h"
#include "survey/corpus.h"
#include "survey/miner.h"
#include "survey/paper_data.h"

#include "table_common.h"

int main() {
  using namespace ubigraph;
  using namespace ubigraph::survey;

  auto corpus = MessageCorpus::Synthesize();
  if (!corpus.ok()) {
    std::printf("corpus synthesis failed: %s\n", corpus.status().ToString().c_str());
    return 1;
  }
  std::printf("Corpus: %zu messages across %zu products\n\n", corpus->size(),
              Products().size());

  MinedChallenges mined = MineChallenges(*corpus);
  const auto& rows = Table19MinedChallenges();
  bool ok = true;
  TextTable table({"Category", "Challenge", "Paper", "Mined", "Match"});
  for (size_t i = 0; i < rows.size(); ++i) {
    bool match = mined.counts[i] == rows[i].count;
    table.AddRow({rows[i].category, rows[i].label, std::to_string(rows[i].count),
                  std::to_string(mined.counts[i]), match ? "yes" : "NO"});
    ok = ok && match;
  }
  std::puts("Table 19 — challenges found in user emails and issues");
  std::fputs(table.RenderAscii().c_str(), stdout);
  std::printf("Useful (challenge-bearing) messages: %d of %zu reviewed\n",
              mined.useful_messages, corpus->size());
  return VerdictExit(ok);
}
