// Table 20: per-product emails, issues, and commits reviewed. Emails/issues
// are recounted from the synthetic corpus; commit counts come from the
// product registry (they describe the upstream repos, not reviewable text).
#include <cstdio>

#include "common/table.h"
#include "survey/corpus.h"
#include "survey/paper_data.h"

#include "table_common.h"

int main() {
  using namespace ubigraph;
  using namespace ubigraph::survey;

  auto corpus = MessageCorpus::Synthesize();
  if (!corpus.ok()) {
    std::printf("corpus synthesis failed: %s\n", corpus.status().ToString().c_str());
    return 1;
  }

  bool ok = true;
  TextTable table({"Software", "Emails (paper/repro)", "Issues (paper/repro)",
                   "Commits", "Match"});
  uint64_t total_messages = 0;
  for (const ProductInfo& p : Products()) {
    int emails = corpus->EmailCount(p.name);
    int issues = corpus->IssueCount(p.name);
    bool match = (p.emails < 0 || emails == p.emails) &&
                 (p.issues < 0 || issues == p.issues);
    auto fmt = [](int paper, int repro) {
      if (paper < 0) return std::string("NA");
      return std::to_string(paper) + "/" + std::to_string(repro);
    };
    table.AddRow({p.name, fmt(p.emails, emails), fmt(p.issues, issues),
                  p.commits < 0 ? "NA" : std::to_string(p.commits),
                  match ? "yes" : "NO"});
    ok = ok && match;
    total_messages += emails + issues;
  }
  std::puts("Table 20 — emails/issues reviewed and repository commits");
  std::fputs(table.RenderAscii().c_str(), stdout);
  std::printf("Total reviewed messages: %llu (paper: \"over 6000\")\n",
              static_cast<unsigned long long>(total_messages));
  ok = ok && total_messages > 6000;
  return VerdictExit(ok);
}
