// Table 1: the 22 surveyed software products, their technology classes, and
// active mailing-list user counts. Reproduced from the product registry that
// also drives the synthetic corpus; verifies the per-class group totals the
// paper reports (Graph DB 233, RDF 115, DGPS 39, libraries 97, viz 116).
#include <cstdio>
#include <map>

#include "common/table.h"
#include "survey/paper_data.h"

#include "table_common.h"

int main() {
  using namespace ubigraph;
  using namespace ubigraph::survey;

  TextTable table({"Technology", "Software", "# Users"});
  std::map<std::string, int> class_totals;
  int surveyed = 0;
  for (const ProductInfo& p : Products()) {
    if (p.mailing_list_users < 0) continue;  // Gephi/Graphviz: repos only
    ++surveyed;
    table.AddRow({p.technology, p.name, std::to_string(p.mailing_list_users)});
    class_totals[p.technology] += p.mailing_list_users;
  }
  std::puts("Table 1 — software products used for recruiting participants");
  std::fputs(table.RenderAscii().c_str(), stdout);

  static const std::map<std::string, int> kPaperTotals = {
      {"Graph Database", 233},
      {"RDF Engine", 115},
      {"Distributed Graph Processing Engine", 39},
      {"Query Language", 82},
      {"Graph Library", 97},
      {"Graph Visualization", 116},
      {"Graph Representation", 6},
  };
  bool ok = surveyed == 22;
  std::puts("\nPer-class user totals (paper vs reproduced):");
  for (const auto& [tech, paper_total] : kPaperTotals) {
    int got = class_totals[tech];
    std::printf("  %-38s paper=%3d repro=%3d %s\n", tech.c_str(), paper_total,
                got, got == paper_total ? "yes" : "NO");
    ok = ok && got == paper_total;
  }
  std::printf("  surveyed products: paper=22 repro=%d\n", surveyed);
  return VerdictExit(ok);
}
