// The §6.1 scalability experiment: the paper's #1 challenge is "software that
// can process larger graphs". Two harnesses in one binary:
//
// 1. Band sweep — walks the edge-size bands of Table 5b that fit on one
//    machine (10K .. 10M+ edges), runs the three most-used computations
//    (connected components, 2-hop neighborhoods, PageRank), and prints cost
//    per band. The shape (superlinear wall-clock growth, memory-bound ceiling
//    well below the paper's 1B+ band) is the reproduced finding; bands beyond
//    the memory budget are reported as gated.
//
// 2. Thread sweep — the survey's answer to that challenge is parallel
//    hardware (Table 14: 45/89 use parallel or distributed systems). Each
//    parallelized kernel runs on a scale-18 RMAT graph at num_threads
//    1/2/4/8, reporting per-thread-count wall clock and speedup over the
//    serial baseline. (Earlier revisions of this harness only exercised the
//    serial path, which made the "scalability" label misleading.)
#include <cstdio>
#include <functional>

#include "algorithms/connected_components.h"
#include "algorithms/pagerank.h"
#include "algorithms/traversal.h"
#include "algorithms/triangle.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/table.h"
#include "common/timer.h"
#include "gen/generators.h"

namespace {

using namespace ubigraph;

void RunBandSweep() {
  struct Band {
    const char* label;       // Table 5b band
    uint32_t scale;          // RMAT scale (0 = gated)
    uint64_t edges;
  };
  // 16 edges per vertex; scale chosen so edge counts land inside each band.
  const Band bands[] = {
      {"<10K", 9, 8ULL << 9},            // 4K edges
      {"10K - 100K", 12, 16ULL << 12},   // 65K edges
      {"100K - 1M", 15, 16ULL << 15},    // 524K edges
      {"1M - 10M", 18, 16ULL << 18},     // 4.2M edges
      {"10M - 100M", 21, 16ULL << 21},   // 33M edges
      {"100M - 1B", 0, 0},               // gated: exceeds the bench budget
      {">1B", 0, 0},                     // gated: exceeds single-node memory
  };

  TextTable table({"Edge band (Table 5b)", "Edges", "Build (ms)", "WCC (ms)",
                   "100x 2-hop (ms)", "PageRank20 (ms)"});
  std::puts("Band sweep: the survey's top challenge, measured");
  std::puts("(workload: RMAT graphs, 3 most-used computations per Table 9)\n");

  double prev_wcc = 0.0;
  bool monotone = true;
  for (const Band& band : bands) {
    if (band.scale == 0) {
      table.AddRow({band.label, "-", "gated", "gated", "gated", "gated"});
      continue;
    }
    Rng rng(band.scale);
    Timer build_timer;
    CsrOptions opts;
    opts.build_in_edges = true;
    auto g = CsrGraph::FromEdges(
                 gen::Rmat(band.scale, band.edges, &rng).ValueOrDie(), opts)
                 .ValueOrDie();
    double build_ms = build_timer.ElapsedMillis();

    Timer wcc_timer;
    auto cc = algo::WeaklyConnectedComponents(g);
    double wcc_ms = wcc_timer.ElapsedMillis();

    Timer hop_timer;
    for (VertexId v = 0; v < 100; ++v) {
      algo::NeighborsWithinHops(g, v % g.num_vertices(), 2);
    }
    double hop_ms = hop_timer.ElapsedMillis();

    algo::PageRankOptions pr_opts;
    pr_opts.max_iterations = 20;
    pr_opts.tolerance = 0;
    Timer pr_timer;
    algo::PageRank(g, pr_opts).ValueOrDie();
    double pr_ms = pr_timer.ElapsedMillis();

    char buf[4][32];
    std::snprintf(buf[0], sizeof(buf[0]), "%.1f", build_ms);
    std::snprintf(buf[1], sizeof(buf[1]), "%.1f", wcc_ms);
    std::snprintf(buf[2], sizeof(buf[2]), "%.1f", hop_ms);
    std::snprintf(buf[3], sizeof(buf[3]), "%.1f", pr_ms);
    table.AddRow({band.label, std::to_string(g.num_edges()), buf[0], buf[1],
                  buf[2], buf[3]});
    if (wcc_ms < prev_wcc) monotone = false;
    prev_wcc = wcc_ms;
    (void)cc;
  }
  std::fputs(table.RenderAscii().c_str(), stdout);
  std::puts("\nShape check: per-band cost grows monotonically with edge count,");
  std::printf("and the 100M+/1B+ bands of Table 5b are memory-gated on one "
              "node: %s\n",
              monotone ? "holds" : "NOT monotone on this machine");
  std::puts("[REPRODUCED] qualitative scalability finding (absolute numbers "
            "are machine-specific)");
}

void RunThreadSweep() {
  constexpr uint32_t kScale = 18;
  constexpr uint32_t kThreadCounts[] = {1, 2, 4, 8};

  std::puts("\nThread sweep: parallel kernels on the RMAT scale-18 graph");
  std::printf("(hardware_concurrency = %u)\n\n", ResolveNumThreads(0));

  Rng rng(kScale);
  CsrOptions opts;
  opts.build_in_edges = true;
  auto g = CsrGraph::FromEdges(
               gen::Rmat(kScale, 16ULL << kScale, &rng).ValueOrDie(), opts)
               .ValueOrDie();

  // Per-kernel timing at one thread count; each cell is a fresh run.
  auto time_ms = [](auto&& fn) {
    Timer t;
    fn();
    return t.ElapsedMillis();
  };
  struct Kernel {
    const char* name;
    std::function<void(uint32_t)> run;  // run at the given num_threads
  };
  const Kernel kernels[] = {
      {"PageRank (20 iters)",
       [&](uint32_t threads) {
         algo::PageRankOptions o;
         o.max_iterations = 20;
         o.tolerance = 0;
         o.num_threads = threads;
         algo::PageRank(g, o).ValueOrDie();
       }},
      {"BFS distances",
       [&](uint32_t threads) {
         algo::BfsOptions o;
         o.num_threads = threads;
         algo::BfsDistances(g, 0, o);
       }},
      {"CC label-prop",
       [&](uint32_t threads) {
         algo::ComponentsOptions o;
         o.num_threads = threads;
         algo::ConnectedComponentsLabelProp(g, o).ValueOrDie();
       }},
      {"Triangle count",
       [&](uint32_t threads) {
         algo::TriangleCountOptions o;
         o.num_threads = threads;
         algo::CountTriangles(g, o);
       }},
  };

  TextTable table({"Kernel", "t=1 (ms)", "t=2 (ms)", "t=4 (ms)", "t=8 (ms)",
                   "speedup @4"});
  for (const Kernel& k : kernels) {
    double ms[4] = {0, 0, 0, 0};
    for (size_t i = 0; i < 4; ++i) {
      uint32_t threads = kThreadCounts[i];
      ms[i] = time_ms([&] { k.run(threads); });
    }
    char buf[5][32];
    for (size_t i = 0; i < 4; ++i) {
      std::snprintf(buf[i], sizeof(buf[i]), "%.1f", ms[i]);
    }
    std::snprintf(buf[4], sizeof(buf[4]), "%.2fx", ms[0] / ms[2]);
    table.AddRow({k.name, buf[0], buf[1], buf[2], buf[3], buf[4]});
  }
  std::fputs(table.RenderAscii().c_str(), stdout);
  std::puts("\n(speedup @4 = serial wall clock / 4-thread wall clock; expect"
            " ~1x when the host\n exposes fewer cores than the sweep point)");
}

}  // namespace

int main() {
  RunBandSweep();
  RunThreadSweep();
  return 0;
}
