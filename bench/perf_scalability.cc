// The §6.1 scalability experiment: the paper's #1 challenge is "software that
// can process larger graphs". This harness walks the edge-size bands of
// Table 5b that fit on one machine (10K .. 10M+ edges), runs the three
// most-used computations (connected components, 2-hop neighborhoods,
// PageRank), and prints cost per band — the shape (superlinear wall-clock
// growth, memory-bound ceiling well below the paper's 1B+ band) is the
// reproduced finding. Bands beyond the memory budget are reported as gated,
// mirroring the users' complaints rather than silently skipping them.
#include <cstdio>

#include "algorithms/pagerank.h"
#include "algorithms/connected_components.h"
#include "algorithms/traversal.h"
#include "common/random.h"
#include "common/table.h"
#include "common/timer.h"
#include "gen/generators.h"

int main() {
  using namespace ubigraph;

  struct Band {
    const char* label;       // Table 5b band
    uint32_t scale;          // RMAT scale (0 = gated)
    uint64_t edges;
  };
  // 16 edges per vertex; scale chosen so edge counts land inside each band.
  const Band bands[] = {
      {"<10K", 9, 8ULL << 9},            // 4K edges
      {"10K - 100K", 12, 16ULL << 12},   // 65K edges
      {"100K - 1M", 15, 16ULL << 15},    // 524K edges
      {"1M - 10M", 18, 16ULL << 18},     // 4.2M edges
      {"10M - 100M", 21, 16ULL << 21},   // 33M edges
      {"100M - 1B", 0, 0},               // gated: exceeds the bench budget
      {">1B", 0, 0},                     // gated: exceeds single-node memory
  };

  TextTable table({"Edge band (Table 5b)", "Edges", "Build (ms)", "WCC (ms)",
                   "100x 2-hop (ms)", "PageRank20 (ms)"});
  std::puts("Scalability harness: the survey's top challenge, measured");
  std::puts("(workload: RMAT graphs, 3 most-used computations per Table 9)\n");

  double prev_wcc = 0.0;
  bool monotone = true;
  for (const Band& band : bands) {
    if (band.scale == 0) {
      table.AddRow({band.label, "-", "gated", "gated", "gated", "gated"});
      continue;
    }
    Rng rng(band.scale);
    Timer build_timer;
    CsrOptions opts;
    opts.build_in_edges = true;
    auto g = CsrGraph::FromEdges(
                 gen::Rmat(band.scale, band.edges, &rng).ValueOrDie(), opts)
                 .ValueOrDie();
    double build_ms = build_timer.ElapsedMillis();

    Timer wcc_timer;
    auto cc = algo::WeaklyConnectedComponents(g);
    double wcc_ms = wcc_timer.ElapsedMillis();

    Timer hop_timer;
    for (VertexId v = 0; v < 100; ++v) {
      algo::NeighborsWithinHops(g, v % g.num_vertices(), 2);
    }
    double hop_ms = hop_timer.ElapsedMillis();

    algo::PageRankOptions pr_opts;
    pr_opts.max_iterations = 20;
    pr_opts.tolerance = 0;
    Timer pr_timer;
    algo::PageRank(g, pr_opts).ValueOrDie();
    double pr_ms = pr_timer.ElapsedMillis();

    char buf[4][32];
    std::snprintf(buf[0], sizeof(buf[0]), "%.1f", build_ms);
    std::snprintf(buf[1], sizeof(buf[1]), "%.1f", wcc_ms);
    std::snprintf(buf[2], sizeof(buf[2]), "%.1f", hop_ms);
    std::snprintf(buf[3], sizeof(buf[3]), "%.1f", pr_ms);
    table.AddRow({band.label, std::to_string(g.num_edges()), buf[0], buf[1],
                  buf[2], buf[3]});
    if (wcc_ms < prev_wcc) monotone = false;
    prev_wcc = wcc_ms;
    (void)cc;
  }
  std::fputs(table.RenderAscii().c_str(), stdout);
  std::puts("\nShape check: per-band cost grows monotonically with edge count,");
  std::printf("and the 100M+/1B+ bands of Table 5b are memory-gated on one "
              "node: %s\n",
              monotone ? "holds" : "NOT monotone on this machine");
  std::puts("[REPRODUCED] qualitative scalability finding (absolute numbers "
            "are machine-specific)");
  return 0;
}
