// Aggregations: triangle counting & clustering coefficients (Table 9).
#include <benchmark/benchmark.h>

#include "algorithms/kcore.h"
#include "algorithms/triangle.h"

#include "perf_common.h"
#include "perf_obs.h"

namespace ubigraph {
namespace {

void BM_TriangleCount(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::CountTriangles(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_TriangleCount)->Arg(10)->Arg(13)->Arg(15);

// Parallel path at a fixed scale; Arg = num_threads (1 = serial baseline).
void BM_TriangleCountParallel(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(15);
  algo::TriangleCountOptions opts;
  opts.num_threads = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::CountTriangles(g, opts));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_TriangleCountParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_GlobalClusteringCoefficient(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::GlobalClusteringCoefficient(g));
  }
}
BENCHMARK(BM_GlobalClusteringCoefficient)->Arg(10)->Arg(13);

void BM_CoreDecomposition(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::CoreDecomposition(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_CoreDecomposition)->Arg(10)->Arg(13)->Arg(16);

void BM_DensestSubgraph(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::DensestSubgraphApprox(g));
  }
}
BENCHMARK(BM_DensestSubgraph)->Arg(10)->Arg(13);

void BM_DegreeHistogram(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::DegreeHistogram(g));
  }
}
BENCHMARK(BM_DegreeHistogram)->Arg(13)->Arg(16);

}  // namespace
}  // namespace ubigraph

UBIGRAPH_BENCHMARK_MAIN_WITH_OBS();
