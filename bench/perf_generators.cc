// Synthetic graph generators (Table 13; §6.2 generator requests).
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "gen/generators.h"
#include "graph/csr_graph.h"

namespace ubigraph {
namespace {

void BM_ErdosRenyi(benchmark::State& state) {
  Rng rng(1);
  VertexId n = static_cast<VertexId>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::ErdosRenyi(n, n * 8, &rng));
  }
  state.SetItemsProcessed(state.iterations() * n * 8);
}
BENCHMARK(BM_ErdosRenyi)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);

void BM_Rmat(benchmark::State& state) {
  Rng rng(2);
  uint32_t scale = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::Rmat(scale, 8ULL << scale, &rng));
  }
  state.SetItemsProcessed(state.iterations() * (8ULL << scale));
}
BENCHMARK(BM_Rmat)->Arg(10)->Arg(13)->Arg(16);

void BM_BarabasiAlbert(benchmark::State& state) {
  Rng rng(3);
  VertexId n = static_cast<VertexId>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::BarabasiAlbert(n, 4, &rng));
  }
}
BENCHMARK(BM_BarabasiAlbert)->Arg(1 << 10)->Arg(1 << 14);

void BM_WattsStrogatz(benchmark::State& state) {
  Rng rng(4);
  VertexId n = static_cast<VertexId>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::WattsStrogatz(n, 6, 0.1, &rng));
  }
}
BENCHMARK(BM_WattsStrogatz)->Arg(1 << 10)->Arg(1 << 14);

void BM_KRegular(benchmark::State& state) {
  Rng rng(5);
  VertexId n = static_cast<VertexId>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::KRegular(n, 6, &rng));
  }
}
BENCHMARK(BM_KRegular)->Arg(1 << 10)->Arg(1 << 13);

void BM_PowerLawDirected(benchmark::State& state) {
  Rng rng(6);
  VertexId n = static_cast<VertexId>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::PowerLawDirected(n, 2.2, 100, &rng));
  }
}
BENCHMARK(BM_PowerLawDirected)->Arg(1 << 10)->Arg(1 << 14);

void BM_CsrConstruction(benchmark::State& state) {
  Rng rng(7);
  uint32_t scale = static_cast<uint32_t>(state.range(0));
  auto el = gen::Rmat(scale, 8ULL << scale, &rng).ValueOrDie();
  for (auto _ : state) {
    EdgeList copy = el;
    benchmark::DoNotOptimize(CsrGraph::FromEdges(std::move(copy)));
  }
  state.SetItemsProcessed(state.iterations() * el.num_edges());
}
BENCHMARK(BM_CsrConstruction)->Arg(10)->Arg(13)->Arg(16);

}  // namespace
}  // namespace ubigraph

BENCHMARK_MAIN();
