// Synthetic graph generators (Table 13; §6.2 generator requests), including
// the corpus shapes (LFR communities, Zipf bipartite, road lattices). Each
// bench reports the generated edge count as its machine-independent work.
#include <benchmark/benchmark.h>

#include <string>

#include "common/random.h"
#include "gen/generators.h"
#include "graph/csr_graph.h"
#include "perf_common.h"
#include "perf_obs.h"

namespace ubigraph {
namespace {

// Runs `make(rng) -> EdgeList` per iteration and emits the BENCH.json labels
// (kernel=gen, mode=<generator>, graph=<name><log2 n>) plus work = edges.
template <typename MakeFn>
void GenBench(benchmark::State& state, const char* mode_name, uint64_t n,
              MakeFn make) {
  Rng rng(n * 977ULL + 1);
  uint64_t edges = 0;
  for (auto _ : state) {
    EdgeList el = make(&rng);
    edges = el.num_edges();
    benchmark::DoNotOptimize(el);
  }
  state.SetItemsProcessed(state.iterations() * edges);
  bench::SetWorkItems(state, static_cast<double>(edges));
  state.SetLabel(std::string("kernel=gen mode=") + mode_name + " graph=" +
                 mode_name + std::to_string(64 - __builtin_clzll(n | 1) - 1));
  state.counters["threads"] = 1;
}

void BM_ErdosRenyi(benchmark::State& state) {
  const VertexId n = static_cast<VertexId>(state.range(0));
  GenBench(state, "erdos_renyi", n, [n](Rng* rng) {
    return gen::ErdosRenyi(n, static_cast<uint64_t>(n) * 8, rng).ValueOrDie();
  });
}
BENCHMARK(BM_ErdosRenyi)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16);

void BM_Rmat(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  GenBench(state, "rmat", 1ULL << scale, [scale](Rng* rng) {
    return gen::Rmat(scale, 8ULL << scale, rng).ValueOrDie();
  });
}
BENCHMARK(BM_Rmat)->Arg(10)->Arg(13)->Arg(16);

void BM_BarabasiAlbert(benchmark::State& state) {
  const VertexId n = static_cast<VertexId>(state.range(0));
  GenBench(state, "barabasi_albert", n, [n](Rng* rng) {
    return gen::BarabasiAlbert(n, 4, rng).ValueOrDie();
  });
}
BENCHMARK(BM_BarabasiAlbert)->Arg(1 << 10)->Arg(1 << 14);

void BM_WattsStrogatz(benchmark::State& state) {
  const VertexId n = static_cast<VertexId>(state.range(0));
  GenBench(state, "watts_strogatz", n, [n](Rng* rng) {
    return gen::WattsStrogatz(n, 6, 0.1, rng).ValueOrDie();
  });
}
BENCHMARK(BM_WattsStrogatz)->Arg(1 << 10)->Arg(1 << 14);

void BM_KRegular(benchmark::State& state) {
  const VertexId n = static_cast<VertexId>(state.range(0));
  GenBench(state, "k_regular", n,
           [n](Rng* rng) { return gen::KRegular(n, 6, rng).ValueOrDie(); });
}
BENCHMARK(BM_KRegular)->Arg(1 << 10)->Arg(1 << 13);

void BM_PowerLawDirected(benchmark::State& state) {
  const VertexId n = static_cast<VertexId>(state.range(0));
  GenBench(state, "power_law", n, [n](Rng* rng) {
    return gen::PowerLawDirected(n, 2.2, 100, rng).ValueOrDie();
  });
}
BENCHMARK(BM_PowerLawDirected)->Arg(1 << 10)->Arg(1 << 14);

void BM_LfrCommunity(benchmark::State& state) {
  const VertexId n = static_cast<VertexId>(state.range(0));
  GenBench(state, "lfr", n, [n](Rng* rng) {
    return gen::LfrCommunity(n, {}, rng).ValueOrDie().edges;
  });
}
BENCHMARK(BM_LfrCommunity)->Arg(1 << 10)->Arg(1 << 14);

void BM_BipartiteSkewed(benchmark::State& state) {
  const VertexId n = static_cast<VertexId>(state.range(0));
  GenBench(state, "bipartite", n, [n](Rng* rng) {
    return gen::BipartiteSkewed(n, n, static_cast<uint64_t>(n) * 8, 1.0, rng)
        .ValueOrDie();
  });
}
BENCHMARK(BM_BipartiteSkewed)->Arg(1 << 10)->Arg(1 << 14);

void BM_RoadLike(benchmark::State& state) {
  const VertexId side = static_cast<VertexId>(state.range(0));
  GenBench(state, "road", static_cast<uint64_t>(side) * side,
           [side](Rng* rng) {
             return gen::RoadLike(side, side, {}, rng).ValueOrDie();
           });
}
BENCHMARK(BM_RoadLike)->Arg(32)->Arg(128);

void BM_CsrConstruction(benchmark::State& state) {
  Rng rng(7);
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  auto el = gen::Rmat(scale, 8ULL << scale, &rng).ValueOrDie();
  for (auto _ : state) {
    EdgeList copy = el;
    benchmark::DoNotOptimize(CsrGraph::FromEdges(std::move(copy)));
  }
  state.SetItemsProcessed(state.iterations() * el.num_edges());
  bench::SetWorkItems(state, static_cast<double>(el.num_edges()));
  state.SetLabel("kernel=csr_build mode=default graph=rmat" +
                 std::to_string(scale));
  state.counters["threads"] = 1;
}
BENCHMARK(BM_CsrConstruction)->Arg(10)->Arg(13)->Arg(16);

}  // namespace
}  // namespace ubigraph

UBIGRAPH_BENCHMARK_MAIN_WITH_OBS();
