// Tables 5a/5b/5c: the sizes of the participants' graphs (vertices, edges,
// uncompressed bytes) — the data behind the paper's headline "ubiquity of
// very large graphs" finding.
#include <cstdio>

#include "table_common.h"

int main() {
  using namespace ubigraph::survey;
  bool ok = true;
  ok &= ReportQuestion("vertices", "Table 5a — number of vertices");
  ok &= ReportQuestion("edges", "Table 5b — number of edges");
  ok &= ReportQuestion("bytes", "Table 5c — total uncompressed bytes");

  // The headline: 20 participants (8 R, 12 P) hold graphs with >1B edges.
  auto tally = SharedPopulation().Tabulate("edges");
  const auto& row = tally.back();
  std::printf("Headline check: >1B-edge participants = %d (R=%d, P=%d); "
              "paper reports 20 (8, 12)\n\n",
              row.total, row.researchers, row.practitioners);
  ok = ok && row.total == 20 && row.researchers == 8 && row.practitioners == 12;
  return VerdictExit(ok);
}
