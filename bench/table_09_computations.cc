// Table 9: the 13 graph computations participants run. Beyond reproducing the
// counts, this binary smoke-runs every one of the 13 computations on a
// synthetic workload graph — the survey's choices only exist because the
// workbench implements them.
#include <cstdio>

#include "algorithms/centrality.h"
#include "algorithms/coloring.h"
#include "algorithms/connected_components.h"
#include "algorithms/diameter.h"
#include "algorithms/kcore.h"
#include "algorithms/mst.h"
#include "algorithms/pagerank.h"
#include "algorithms/partition.h"
#include "algorithms/reachability.h"
#include "algorithms/shortest_path.h"
#include "algorithms/simrank.h"
#include "algorithms/subgraph_match.h"
#include "algorithms/traversal.h"
#include "algorithms/triangle.h"
#include "common/timer.h"
#include "gen/generators.h"
#include "survey/academic.h"

#include "table_common.h"

int main() {
  using namespace ubigraph;
  using namespace ubigraph::survey;
  namespace algo = ubigraph::algo;

  bool ok = ReportQuestion("computations", "Table 9 — graph computations");

  auto corpus = AcademicCorpus::SynthesizeExact().ValueOrDie();
  auto counts = corpus.CountComputations();
  const auto& rows = Table9Computations();
  std::puts("Academic column (A row): paper vs mined from the 90-paper corpus");
  for (size_t i = 0; i < rows.size(); ++i) {
    bool match = counts[i] == rows[i].academic;
    std::printf("  %-40s paper=%2d repro=%2d %s\n", rows[i].label,
                rows[i].academic, counts[i], match ? "yes" : "NO");
    ok = ok && match;
  }

  // Smoke-run all 13 computations on one workload graph.
  std::puts("\nExecuting all 13 surveyed computations on an RMAT graph "
            "(scale 12, ~32K edges):");
  Rng rng(7);
  CsrOptions opts;
  opts.build_in_edges = true;
  auto g = CsrGraph::FromEdges(gen::Rmat(12, 1 << 15, &rng).ValueOrDie(), opts)
               .ValueOrDie();
  auto run = [&](const char* name, auto&& fn) {
    Timer t;
    fn();
    std::printf("  %-38s %8.2f ms\n", name, t.ElapsedMillis());
  };
  run("connected components", [&] { algo::WeaklyConnectedComponents(g); });
  run("neighborhood queries (2-hop x100)", [&] {
    for (VertexId v = 0; v < 100; ++v) algo::NeighborsWithinHops(g, v, 2);
  });
  run("shortest paths (Dijkstra)", [&] { algo::Dijkstra(g, 0).ValueOrDie(); });
  run("subgraph matching (triangles, capped)", [&] {
    algo::SubgraphMatchOptions mo;
    mo.undirected = true;
    mo.max_matches = 10000;
    algo::CountSubgraphMatches(g, algo::MakeTrianglePattern(), mo);
  });
  run("ranking & centrality (PageRank)", [&] { algo::PageRank(g).ValueOrDie(); });
  run("aggregations (triangle count)", [&] { algo::CountTriangles(g); });
  run("reachability (index + 1k queries)", [&] {
    auto idx = algo::ReachabilityIndex::Build(g).ValueOrDie();
    Rng qr(1);
    for (int i = 0; i < 1000; ++i) {
      idx.Reachable(static_cast<VertexId>(qr.NextBounded(g.num_vertices())),
                    static_cast<VertexId>(qr.NextBounded(g.num_vertices())));
    }
  });
  run("graph partitioning (LDG, k=8)",
      [&] { algo::LdgPartition(g, 8).ValueOrDie(); });
  run("node similarity (100 Jaccard pairs)", [&] {
    for (VertexId v = 0; v + 1 < 200; v += 2) algo::JaccardSimilarity(g, v, v + 1);
  });
  run("densest subgraph (Charikar)", [&] { algo::DensestSubgraphApprox(g); });
  run("minimum spanning forest (Kruskal)",
      [&] { algo::MinimumSpanningForestKruskal(g); });
  run("graph coloring (smallest-last)", [&] { algo::GreedyColoring(g); });
  run("diameter estimation (double sweep)",
      [&] { algo::DoubleSweepLowerBound(g, 0); });

  return VerdictExit(ok);
}
