// Sharded, out-of-core execution (src/shard/): shard build + encode, the
// shard-at-a-time kernels over in-memory segments, and the mmap-backed
// segment cache under a byte budget smaller than the total segment bytes —
// true out-of-core runs whose records carry peak_segment_bytes (the cache's
// high-water mark of ADJACENCY bytes), peak_rss_bytes (the process's
// getrusage high-water mark), and peak_msg_bytes (the message layer's
// buffered high-water mark — 0 under the default dense-combine strategy,
// bounded by message_budget_bytes under the spillable uncombined strategy;
// see shard/msg_stream.h) next to the machine-independent work counters.
//
// Args convention: {scale, num_shards[, num_threads]}. The /12/ slice feeds
// ci/perf_smoke.sh; the scale-22 out-of-core rows are the BENCH.json
// acceptance records. On the 1-core CI container thread-count speedups are
// not observable — determinism across configurations is pinned by
// tests/sharded_test.cc, not by wall-clock here.
//
// A caveat on peak_rss_bytes: ru_maxrss is monotone over the PROCESS, so a
// record's RSS includes everything earlier benches in the same binary
// touched. The per-run memory signal for the message layer is
// peak_msg_bytes, which resets with each MsgStreams instance.
#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <filesystem>
#include <map>
#include <string>

#include "algorithms/partition.h"
#include "graph/ordering.h"
#include "perf_common.h"
#include "perf_obs.h"
#include "shard/shard_kernels.h"
#include "shard/sharded_csr.h"

namespace ubigraph {
namespace {

namespace fs = std::filesystem;

shard::ShardOptions BenchShardOptions(uint32_t num_shards) {
  shard::ShardOptions opts;
  opts.num_shards = num_shards;
  // Contiguous keeps Build cheap at scale 22 and leaves the skew for the
  // edge_imbalance counter to expose; the partitioner comparison lives in
  // perf_partition.
  opts.partitioner = shard::ShardPartitioner::kContiguous;
  opts.encoding = shard::SegmentEncoding::kCompressed;
  return opts;
}

/// Cached sharded build of the standard bench RMAT graph.
const shard::ShardedCsr& ShardedRmat(uint32_t scale, uint32_t num_shards) {
  static std::map<std::pair<uint32_t, uint32_t>, shard::ShardedCsr> cache;
  auto key = std::make_pair(scale, num_shards);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache
             .emplace(key, shard::ShardedCsr::Build(bench::RmatGraph(scale),
                                                    BenchShardOptions(
                                                        num_shards))
                               .ValueOrDie())
             .first;
  }
  return it->second;
}

/// Segment directory on disk for the out-of-core benches, written once per
/// (scale, shards) and deleted when the process exits.
class SegmentDir {
 public:
  SegmentDir(uint32_t scale, uint32_t num_shards) {
    path_ = fs::temp_directory_path() /
            ("ubigraph_perf_sharded_" + std::to_string(scale) + "_" +
             std::to_string(num_shards));
    fs::remove_all(path_);
    const shard::ShardedCsr& s = ShardedRmat(scale, num_shards);
    if (!s.WriteTo(path_.string()).ok()) std::abort();
    total_bytes_ = s.cache().total_bytes();
  }
  ~SegmentDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string str() const { return path_.string(); }
  uint64_t total_bytes() const { return total_bytes_; }

 private:
  fs::path path_;
  uint64_t total_bytes_ = 0;
};

const SegmentDir& RmatSegmentDir(uint32_t scale, uint32_t num_shards) {
  static std::map<std::pair<uint32_t, uint32_t>, SegmentDir> cache;
  auto key = std::make_pair(scale, num_shards);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(std::piecewise_construct, std::forward_as_tuple(key),
                       std::forward_as_tuple(scale, num_shards))
             .first;
  }
  return it->second;
}

// Partition + relabel + segment encode; reports the vertex- and edge-balance
// of the resulting shards (EvaluatePartition's imbalance/edge_imbalance —
// contiguous splits are vertex-perfect but work-skewed on RMAT).
void BM_ShardedBuild(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const uint32_t num_shards = static_cast<uint32_t>(state.range(1));
  const CsrGraph& g = bench::RmatGraph(scale);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        shard::ShardedCsr::Build(g, BenchShardOptions(num_shards))
            .ValueOrDie());
  }
  const shard::ShardedCsr& s = ShardedRmat(scale, num_shards);
  algo::Partitioning part;
  part.num_parts = num_shards;
  part.part.resize(g.num_vertices());
  const std::vector<VertexId> old_to_new = InversePermutation(s.new_to_old());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    part.part[v] = s.shard_of(old_to_new[v]);
  }
  const algo::PartitionQuality q = algo::EvaluatePartition(g, part).ValueOrDie();
  state.counters["imbalance"] = q.imbalance;
  state.counters["edge_imbalance"] = q.edge_imbalance;
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  bench::SetWorkItems(state, static_cast<double>(g.num_edges()));
  state.SetLabel("kernel=shard_build mode=contiguous graph=rmat" +
                 std::to_string(scale));
  state.counters["threads"] = 1.0;
}
BENCHMARK(BM_ShardedBuild)->Args({12, 16})->Args({22, 64});

// Shard-at-a-time PageRank over in-memory segments (fixed 10 iterations);
// Args = {scale, shards, threads}.
void BM_ShardedPageRank(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const shard::ShardedCsr& s =
      ShardedRmat(scale, static_cast<uint32_t>(state.range(1)));
  shard::ShardedPageRankOptions opts;
  opts.max_iterations = 10;
  opts.tolerance = 0;
  opts.num_threads = static_cast<uint32_t>(state.range(2));
  bench::WorkProbe work({"shard.pagerank.edges_streamed"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(shard::ShardedPageRank(s, opts).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * s.num_edges() * 10);
  work.Flush(state);
  state.SetLabel("kernel=pagerank mode=sharded graph=rmat" +
                 std::to_string(scale));
  state.counters["threads"] = static_cast<double>(state.range(2));
}
BENCHMARK(BM_ShardedPageRank)
    ->Args({12, 16, 1})
    ->Args({12, 16, 4})
    ->Args({22, 64, 1});

/// Process-wide peak RSS from the kernel, in bytes (ru_maxrss is KiB on
/// Linux). Monotone over the process lifetime, so when the whole binary runs
/// it also covers earlier benches' cached in-RAM graphs — an upper bound,
/// honest about everything the cache counter cannot see.
double PeakRssBytes() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
  return static_cast<double>(ru.ru_maxrss) * 1024.0;
}

// The acceptance record: PageRank streaming mmap'ed segments under a cache
// budget of total/4 — the graph's ADJACENCY is never fully resident
// (peak_segment_bytes < total segment bytes by construction). Under the
// default dense-combine strategy the message layer buffers nothing
// (peak_msg_bytes = 0): workers fold contributions straight into the
// destination ranges they own, so the run's heap is the O(V) vertex state
// plus the cache budget — fully out-of-core, not semi-external.
void BM_ShardedPageRankOutOfCore(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const uint32_t num_shards = static_cast<uint32_t>(state.range(1));
  const SegmentDir& dir = RmatSegmentDir(scale, num_shards);
  shard::ShardOpenOptions oopts;
  oopts.storage = shard::SegmentStorage::kMapped;
  oopts.budget_bytes = dir.total_bytes() / 4;
  auto s = shard::ShardedCsr::Open(dir.str(), oopts).ValueOrDie();
  shard::ShardedPageRankOptions opts;
  opts.max_iterations = 10;
  opts.tolerance = 0;
  shard::MsgStats msg_stats;
  opts.msg.stats_out = &msg_stats;
  bench::WorkProbe work({"shard.pagerank.edges_streamed"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(shard::ShardedPageRank(s, opts).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * s.num_edges() * 10);
  work.Flush(state);
  state.counters["peak_segment_bytes"] =
      static_cast<double>(s.cache().peak_segment_bytes());
  state.counters["peak_rss_bytes"] = PeakRssBytes();
  state.counters["peak_msg_bytes"] =
      static_cast<double>(msg_stats.peak_msg_bytes);  // 0: dense-combine
  state.counters["budget_bytes"] =
      static_cast<double>(s.cache().budget_bytes());
  state.counters["total_segment_bytes"] =
      static_cast<double>(s.cache().total_bytes());
  state.SetLabel("kernel=pagerank mode=outofcore graph=rmat" +
                 std::to_string(scale));
  state.counters["threads"] = 1.0;
}
BENCHMARK(BM_ShardedPageRankOutOfCore)->Args({12, 16})->Args({22, 64});

// The uncombined oracle path over in-memory segments: per-(worker, dst-shard)
// message buffers with no budget (nothing spills). This is the PR-9-era
// execution model kept as the bitwise reference; the gap to BM_ShardedPageRank
// (dense-combine) is the price of materializing one message per scanned edge.
void BM_ShardedPageRankUncombined(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const shard::ShardedCsr& s =
      ShardedRmat(scale, static_cast<uint32_t>(state.range(1)));
  shard::ShardedPageRankOptions opts;
  opts.max_iterations = 10;
  opts.tolerance = 0;
  opts.num_threads = static_cast<uint32_t>(state.range(2));
  opts.msg.strategy = shard::MsgStrategy::kUncombined;
  shard::MsgStats msg_stats;
  opts.msg.stats_out = &msg_stats;
  bench::WorkProbe work({"shard.pagerank.edges_streamed"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(shard::ShardedPageRank(s, opts).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * s.num_edges() * 10);
  work.Flush(state);
  state.counters["peak_msg_bytes"] =
      static_cast<double>(msg_stats.peak_msg_bytes);
  state.SetLabel("kernel=pagerank mode=sharded_uncombined graph=rmat" +
                 std::to_string(scale));
  state.counters["threads"] = static_cast<double>(state.range(2));
}
BENCHMARK(BM_ShardedPageRankUncombined)->Args({12, 16, 1});

// Spill-forced out-of-core PageRank: uncombined streams under a message
// budget far below the uncombined working set, so blocks spill to CRC-checked
// scratch files in the segment directory and replay during apply. The record
// pins the budget contract (peak_msg_bytes <= message_budget_bytes) at
// benchmark scale; spill_bytes shows how much traffic went through disk.
void BM_ShardedPageRankOutOfCoreSpill(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const uint32_t num_shards = static_cast<uint32_t>(state.range(1));
  const SegmentDir& dir = RmatSegmentDir(scale, num_shards);
  shard::ShardOpenOptions oopts;
  oopts.storage = shard::SegmentStorage::kMapped;
  oopts.budget_bytes = dir.total_bytes() / 4;
  auto s = shard::ShardedCsr::Open(dir.str(), oopts).ValueOrDie();
  shard::ShardedPageRankOptions opts;
  opts.max_iterations = 10;
  opts.tolerance = 0;
  opts.msg.strategy = shard::MsgStrategy::kUncombined;
  // ~1/48 of the uncombined message working set at either scale: scale 12 has
  // ~12 MB of per-iteration messages, scale 22 ~800 MB.
  opts.msg.message_budget_bytes =
      scale >= 22 ? 32ull << 20 : 256ull << 10;
  shard::MsgStats msg_stats;
  opts.msg.stats_out = &msg_stats;
  bench::WorkProbe work({"shard.pagerank.edges_streamed"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(shard::ShardedPageRank(s, opts).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * s.num_edges() * 10);
  work.Flush(state);
  state.counters["peak_segment_bytes"] =
      static_cast<double>(s.cache().peak_segment_bytes());
  state.counters["peak_rss_bytes"] = PeakRssBytes();
  state.counters["peak_msg_bytes"] =
      static_cast<double>(msg_stats.peak_msg_bytes);
  state.counters["message_budget_bytes"] =
      static_cast<double>(opts.msg.message_budget_bytes);
  state.counters["spill_bytes"] = static_cast<double>(msg_stats.spill_bytes);
  state.SetLabel("kernel=pagerank mode=outofcore_spill graph=rmat" +
                 std::to_string(scale));
  state.counters["threads"] = 1.0;
}
BENCHMARK(BM_ShardedPageRankOutOfCoreSpill)->Args({12, 16})->Args({22, 64});

// BFS with per-level segment skipping (shards holding no frontier vertex are
// never touched); Args = {scale, shards}.
void BM_ShardedBfs(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const shard::ShardedCsr& s =
      ShardedRmat(scale, static_cast<uint32_t>(state.range(1)));
  const VertexId root = bench::BfsRoot(bench::RmatGraph(scale));
  bench::WorkProbe work({"shard.bfs.edges_scanned"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(shard::ShardedBfs(s, root).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * s.num_edges());
  work.Flush(state);
  state.SetLabel("kernel=bfs mode=sharded graph=rmat" + std::to_string(scale));
  state.counters["threads"] = 1.0;
}
BENCHMARK(BM_ShardedBfs)->Args({12, 16})->Args({22, 64});

// Min-label components with pointer jumping; Args = {scale, shards}.
void BM_ShardedComponents(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const shard::ShardedCsr& s =
      ShardedRmat(scale, static_cast<uint32_t>(state.range(1)));
  bench::WorkProbe work({"shard.cc.edges_scanned"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(shard::ShardedComponents(s).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * s.num_edges());
  work.Flush(state);
  state.SetLabel("kernel=components mode=sharded graph=rmat" +
                 std::to_string(scale));
  state.counters["threads"] = 1.0;
}
BENCHMARK(BM_ShardedComponents)->Args({12, 16})->Args({22, 64});

}  // namespace
}  // namespace ubigraph

UBIGRAPH_BENCHMARK_MAIN_WITH_OBS();
