// Sharded, out-of-core execution (src/shard/): shard build + encode, the
// shard-at-a-time kernels over in-memory segments, and the mmap-backed
// segment cache under a byte budget smaller than the total segment bytes —
// true out-of-core runs whose records carry peak_segment_bytes (the cache's
// high-water mark of ADJACENCY bytes) and peak_rss_bytes (the process's
// getrusage high-water mark, which additionally includes the O(V) vertex
// state and the O(E) per-iteration message buffers the kernels heap-allocate
// — see shard_kernels.h) next to the machine-independent work counters.
//
// Args convention: {scale, num_shards[, num_threads]}. The /12/ slice feeds
// ci/perf_smoke.sh; the scale-22 out-of-core rows are the BENCH.json
// acceptance records. On the 1-core CI container thread-count speedups are
// not observable — determinism across configurations is pinned by
// tests/sharded_test.cc, not by wall-clock here.
#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <filesystem>
#include <map>
#include <string>

#include "algorithms/partition.h"
#include "graph/ordering.h"
#include "perf_common.h"
#include "perf_obs.h"
#include "shard/shard_kernels.h"
#include "shard/sharded_csr.h"

namespace ubigraph {
namespace {

namespace fs = std::filesystem;

shard::ShardOptions BenchShardOptions(uint32_t num_shards) {
  shard::ShardOptions opts;
  opts.num_shards = num_shards;
  // Contiguous keeps Build cheap at scale 22 and leaves the skew for the
  // edge_imbalance counter to expose; the partitioner comparison lives in
  // perf_partition.
  opts.partitioner = shard::ShardPartitioner::kContiguous;
  opts.encoding = shard::SegmentEncoding::kCompressed;
  return opts;
}

/// Cached sharded build of the standard bench RMAT graph.
const shard::ShardedCsr& ShardedRmat(uint32_t scale, uint32_t num_shards) {
  static std::map<std::pair<uint32_t, uint32_t>, shard::ShardedCsr> cache;
  auto key = std::make_pair(scale, num_shards);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache
             .emplace(key, shard::ShardedCsr::Build(bench::RmatGraph(scale),
                                                    BenchShardOptions(
                                                        num_shards))
                               .ValueOrDie())
             .first;
  }
  return it->second;
}

/// Segment directory on disk for the out-of-core benches, written once per
/// (scale, shards) and deleted when the process exits.
class SegmentDir {
 public:
  SegmentDir(uint32_t scale, uint32_t num_shards) {
    path_ = fs::temp_directory_path() /
            ("ubigraph_perf_sharded_" + std::to_string(scale) + "_" +
             std::to_string(num_shards));
    fs::remove_all(path_);
    const shard::ShardedCsr& s = ShardedRmat(scale, num_shards);
    if (!s.WriteTo(path_.string()).ok()) std::abort();
    total_bytes_ = s.cache().total_bytes();
  }
  ~SegmentDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string str() const { return path_.string(); }
  uint64_t total_bytes() const { return total_bytes_; }

 private:
  fs::path path_;
  uint64_t total_bytes_ = 0;
};

const SegmentDir& RmatSegmentDir(uint32_t scale, uint32_t num_shards) {
  static std::map<std::pair<uint32_t, uint32_t>, SegmentDir> cache;
  auto key = std::make_pair(scale, num_shards);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(std::piecewise_construct, std::forward_as_tuple(key),
                       std::forward_as_tuple(scale, num_shards))
             .first;
  }
  return it->second;
}

// Partition + relabel + segment encode; reports the vertex- and edge-balance
// of the resulting shards (EvaluatePartition's imbalance/edge_imbalance —
// contiguous splits are vertex-perfect but work-skewed on RMAT).
void BM_ShardedBuild(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const uint32_t num_shards = static_cast<uint32_t>(state.range(1));
  const CsrGraph& g = bench::RmatGraph(scale);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        shard::ShardedCsr::Build(g, BenchShardOptions(num_shards))
            .ValueOrDie());
  }
  const shard::ShardedCsr& s = ShardedRmat(scale, num_shards);
  algo::Partitioning part;
  part.num_parts = num_shards;
  part.part.resize(g.num_vertices());
  const std::vector<VertexId> old_to_new = InversePermutation(s.new_to_old());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    part.part[v] = s.shard_of(old_to_new[v]);
  }
  const algo::PartitionQuality q = algo::EvaluatePartition(g, part).ValueOrDie();
  state.counters["imbalance"] = q.imbalance;
  state.counters["edge_imbalance"] = q.edge_imbalance;
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  bench::SetWorkItems(state, static_cast<double>(g.num_edges()));
  state.SetLabel("kernel=shard_build mode=contiguous graph=rmat" +
                 std::to_string(scale));
  state.counters["threads"] = 1.0;
}
BENCHMARK(BM_ShardedBuild)->Args({12, 16})->Args({22, 64});

// Shard-at-a-time PageRank over in-memory segments (fixed 10 iterations);
// Args = {scale, shards, threads}.
void BM_ShardedPageRank(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const shard::ShardedCsr& s =
      ShardedRmat(scale, static_cast<uint32_t>(state.range(1)));
  shard::ShardedPageRankOptions opts;
  opts.max_iterations = 10;
  opts.tolerance = 0;
  opts.num_threads = static_cast<uint32_t>(state.range(2));
  bench::WorkProbe work({"shard.pagerank.edges_streamed"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(shard::ShardedPageRank(s, opts).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * s.num_edges() * 10);
  work.Flush(state);
  state.SetLabel("kernel=pagerank mode=sharded graph=rmat" +
                 std::to_string(scale));
  state.counters["threads"] = static_cast<double>(state.range(2));
}
BENCHMARK(BM_ShardedPageRank)
    ->Args({12, 16, 1})
    ->Args({12, 16, 4})
    ->Args({22, 64, 1});

/// Process-wide peak RSS from the kernel, in bytes (ru_maxrss is KiB on
/// Linux). Monotone over the process lifetime, so when the whole binary runs
/// it also covers earlier benches' cached in-RAM graphs — an upper bound,
/// honest about everything the cache counter cannot see.
double PeakRssBytes() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
  return static_cast<double>(ru.ru_maxrss) * 1024.0;
}

// The acceptance record: PageRank streaming mmap'ed segments under a cache
// budget of total/4 — the graph's ADJACENCY is never fully resident
// (peak_segment_bytes < total segment bytes by construction). That counter
// is segment bytes only: the run's true memory footprint is peak_rss_bytes,
// dominated at scale 22 by the per-(worker, dst-shard) message buffers
// (~12 B per scanned edge per iteration — message spill to disk is the open
// follow-on, shard_kernels.h).
void BM_ShardedPageRankOutOfCore(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const uint32_t num_shards = static_cast<uint32_t>(state.range(1));
  const SegmentDir& dir = RmatSegmentDir(scale, num_shards);
  shard::ShardOpenOptions oopts;
  oopts.storage = shard::SegmentStorage::kMapped;
  oopts.budget_bytes = dir.total_bytes() / 4;
  auto s = shard::ShardedCsr::Open(dir.str(), oopts).ValueOrDie();
  shard::ShardedPageRankOptions opts;
  opts.max_iterations = 10;
  opts.tolerance = 0;
  bench::WorkProbe work({"shard.pagerank.edges_streamed"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(shard::ShardedPageRank(s, opts).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * s.num_edges() * 10);
  work.Flush(state);
  state.counters["peak_segment_bytes"] =
      static_cast<double>(s.cache().peak_segment_bytes());
  state.counters["peak_rss_bytes"] = PeakRssBytes();
  state.counters["budget_bytes"] =
      static_cast<double>(s.cache().budget_bytes());
  state.counters["total_segment_bytes"] =
      static_cast<double>(s.cache().total_bytes());
  state.SetLabel("kernel=pagerank mode=outofcore graph=rmat" +
                 std::to_string(scale));
  state.counters["threads"] = 1.0;
}
BENCHMARK(BM_ShardedPageRankOutOfCore)->Args({12, 16})->Args({22, 64});

// BFS with per-level segment skipping (shards holding no frontier vertex are
// never touched); Args = {scale, shards}.
void BM_ShardedBfs(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const shard::ShardedCsr& s =
      ShardedRmat(scale, static_cast<uint32_t>(state.range(1)));
  const VertexId root = bench::BfsRoot(bench::RmatGraph(scale));
  bench::WorkProbe work({"shard.bfs.edges_scanned"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(shard::ShardedBfs(s, root).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * s.num_edges());
  work.Flush(state);
  state.SetLabel("kernel=bfs mode=sharded graph=rmat" + std::to_string(scale));
  state.counters["threads"] = 1.0;
}
BENCHMARK(BM_ShardedBfs)->Args({12, 16})->Args({22, 64});

// Min-label components with pointer jumping; Args = {scale, shards}.
void BM_ShardedComponents(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const shard::ShardedCsr& s =
      ShardedRmat(scale, static_cast<uint32_t>(state.range(1)));
  bench::WorkProbe work({"shard.cc.edges_scanned"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(shard::ShardedComponents(s).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * s.num_edges());
  work.Flush(state);
  state.SetLabel("kernel=components mode=sharded graph=rmat" +
                 std::to_string(scale));
  state.counters["threads"] = 1.0;
}
BENCHMARK(BM_ShardedComponents)->Args({12, 16})->Args({22, 64});

}  // namespace
}  // namespace ubigraph

UBIGRAPH_BENCHMARK_MAIN_WITH_OBS();
