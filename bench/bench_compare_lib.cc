#include "bench_compare_lib.h"

#include <cmath>
#include <cstdio>
#include <vector>

#include "io/json_value.h"

namespace ubigraph::benchcmp {

namespace {

using ubigraph::io::JsonValue;

Status FieldError(const std::string& origin, const std::string& name,
                  const std::string& field, const char* what) {
  return Status::ParseError(origin + ": record '" + name + "': field '" +
                            field + "' " + what);
}

/// Required finite number; errors on absent / wrong type / NaN / Inf.
Status GetNumber(const JsonValue* entry, const std::string& origin,
                 const std::string& name, const std::string& field,
                 double* out) {
  const JsonValue* v = entry->Get(field);
  if (v == nullptr) return FieldError(origin, name, field, "is missing");
  if (v->kind != JsonValue::kNumber) {
    return FieldError(origin, name, field, "is not a number");
  }
  if (!std::isfinite(v->number)) {
    return FieldError(origin, name, field, "is not finite");
  }
  *out = v->number;
  return Status::OK();
}

/// Optional finite number with a default (for fields newer than some files).
Status GetOptionalNumber(const JsonValue* entry, const std::string& origin,
                         const std::string& name, const std::string& field,
                         double fallback, double* out) {
  if (entry->Get(field) == nullptr) {
    *out = fallback;
    return Status::OK();
  }
  return GetNumber(entry, origin, name, field, out);
}

/// Required string; errors on absent / wrong type.
Status GetString(const JsonValue* entry, const std::string& origin,
                 const std::string& name, const std::string& field,
                 std::string* out) {
  const JsonValue* v = entry->Get(field);
  if (v == nullptr) return FieldError(origin, name, field, "is missing");
  if (v->kind != JsonValue::kString) {
    return FieldError(origin, name, field, "is not a string");
  }
  *out = v->string;
  return Status::OK();
}

}  // namespace

Status LoadRecords(const std::string& json_text, const std::string& origin,
                   std::map<std::string, Record>* out) {
  auto doc = ubigraph::io::ParseJsonValue(json_text);
  if (!doc.ok()) {
    return Status::ParseError(origin + ": " + doc.status().message());
  }
  if ((*doc)->kind != JsonValue::kArray) {
    return Status::ParseError(origin + ": top-level value is not a JSON array");
  }
  for (size_t i = 0; i < (*doc)->array.size(); ++i) {
    const JsonValue* entry = (*doc)->array[i].get();
    if (entry == nullptr || entry->kind != JsonValue::kObject) {
      return Status::ParseError(origin + ": entry " + std::to_string(i) +
                                " is not an object");
    }
    std::string name;
    UG_RETURN_NOT_OK(GetString(entry, origin, "#" + std::to_string(i), "name", &name));
    if (name.empty()) {
      return Status::ParseError(origin + ": entry " + std::to_string(i) +
                                " has an empty name");
    }
    Record r;
    UG_RETURN_NOT_OK(GetString(entry, origin, name, "kernel", &r.kernel));
    // mode/graph may legitimately be "" but must be strings when present.
    const JsonValue* mode = entry->Get("mode");
    if (mode != nullptr) {
      if (mode->kind != JsonValue::kString) {
        return FieldError(origin, name, "mode", "is not a string");
      }
      r.mode = mode->string;
    }
    const JsonValue* graph = entry->Get("graph");
    if (graph != nullptr) {
      if (graph->kind != JsonValue::kString) {
        return FieldError(origin, name, "graph", "is not a string");
      }
      r.graph = graph->string;
    }
    double threads = 0.0, repeats = 0.0;
    UG_RETURN_NOT_OK(GetNumber(entry, origin, name, "threads", &threads));
    UG_RETURN_NOT_OK(
        GetNumber(entry, origin, name, "median_real_ns", &r.median_real_ns));
    UG_RETURN_NOT_OK(
        GetNumber(entry, origin, name, "edges_per_second", &r.edges_per_second));
    UG_RETURN_NOT_OK(
        GetNumber(entry, origin, name, "bytes_per_edge", &r.bytes_per_edge));
    UG_RETURN_NOT_OK(GetNumber(entry, origin, name, "work_items", &r.work_items));
    UG_RETURN_NOT_OK(
        GetOptionalNumber(entry, origin, name, "repeats", 1.0, &repeats));
    UG_RETURN_NOT_OK(
        GetOptionalNumber(entry, origin, name, "rel_spread", 0.0, &r.rel_spread));
    UG_RETURN_NOT_OK(GetOptionalNumber(entry, origin, name, "peak_segment_bytes",
                                       0.0, &r.peak_segment_bytes));
    UG_RETURN_NOT_OK(GetOptionalNumber(entry, origin, name, "peak_rss_bytes",
                                       0.0, &r.peak_rss_bytes));
    UG_RETURN_NOT_OK(GetOptionalNumber(entry, origin, name, "peak_msg_bytes",
                                       0.0, &r.peak_msg_bytes));
    if (r.median_real_ns < 0.0 || r.rel_spread < 0.0) {
      return FieldError(origin, name, "median_real_ns/rel_spread", "is negative");
    }
    if (r.peak_segment_bytes < 0.0 || r.peak_rss_bytes < 0.0 ||
        r.peak_msg_bytes < 0.0) {
      return FieldError(origin, name, "peak_*_bytes", "is negative");
    }
    r.threads = static_cast<int64_t>(threads);
    r.repeats = static_cast<int64_t>(repeats);
    (*out)[name] = r;
  }
  return Status::OK();
}

std::string FormatRecords(const std::map<std::string, Record>& records) {
  std::string out = "[\n";
  bool first = true;
  char buf[512];
  for (const auto& [name, r] : records) {
    if (!first) out += ",\n";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "  {\"name\": \"%s\", \"kernel\": \"%s\", \"mode\": \"%s\", "
                  "\"graph\": \"%s\", \"threads\": %lld, \"median_real_ns\": %g, "
                  "\"edges_per_second\": %g, \"bytes_per_edge\": %g, "
                  "\"work_items\": %g, \"repeats\": %lld, \"rel_spread\": %g",
                  name.c_str(), r.kernel.c_str(), r.mode.c_str(),
                  r.graph.c_str(), static_cast<long long>(r.threads),
                  r.median_real_ns, r.edges_per_second, r.bytes_per_edge,
                  r.work_items, static_cast<long long>(r.repeats),
                  r.rel_spread);
    out += buf;
    // Memory counters are emitted only when reported (> 0), matching the
    // reporter's own conditional emission and keeping old files byte-stable
    // through a load/format round-trip.
    const struct {
      const char* key;
      double value;
    } mem[] = {{"peak_segment_bytes", r.peak_segment_bytes},
               {"peak_rss_bytes", r.peak_rss_bytes},
               {"peak_msg_bytes", r.peak_msg_bytes}};
    for (const auto& m : mem) {
      if (m.value > 0.0) {
        std::snprintf(buf, sizeof(buf), ", \"%s\": %g", m.key, m.value);
        out += buf;
      }
    }
    out += "}";
  }
  out += "\n]\n";
  return out;
}

Comparison Compare(const std::map<std::string, Record>& baseline,
                   const std::map<std::string, Record>& current,
                   const CompareOptions& options) {
  Comparison result;
  char line[512];
  for (const auto& [name, base] : baseline) {
    auto it = current.find(name);
    if (it == current.end()) {
      ++result.missing;
      std::snprintf(line, sizeof(line),
                    "  MISSING  %s (in baseline, not measured)\n", name.c_str());
      result.report += line;
      continue;
    }
    const Record& cur = it->second;
    ++result.compared;
    const double ratio =
        base.median_real_ns > 0 ? cur.median_real_ns / base.median_real_ns : 1.0;
    // Noise-aware allowance: the base gate plus the observed spread of both
    // measurements. A quiet machine contributes ~0; a noisy one widens its
    // own gate instead of failing spuriously.
    const double allowance =
        options.max_regression + base.rel_spread + cur.rel_spread;
    const bool slow = ratio > 1.0 + allowance;
    const bool no_work = options.require_work_items && cur.work_items <= 0.0;
    const double work_ratio =
        base.work_items > 0 ? cur.work_items / base.work_items : 1.0;
    std::snprintf(line, sizeof(line),
                  "  %s  %-45s  %12.0f ns vs %12.0f ns  (%+.1f%% / allow "
                  "%.0f%%, spread %.0f%%+%.0f%%, work x%.2f)\n",
                  slow      ? "REGRESS"
                  : no_work ? "NO-WORK"
                            : "ok     ",
                  name.c_str(), cur.median_real_ns, base.median_real_ns,
                  (ratio - 1.0) * 100.0, allowance * 100.0,
                  base.rel_spread * 100.0, cur.rel_spread * 100.0, work_ratio);
    result.report += line;
    if (slow) ++result.regressions;
    if (no_work) ++result.work_violations;
    if (options.gate_memory) {
      // Gate a memory counter only when both sides reported it: a bench that
      // gained (or lost) a counter between baseline and now has nothing
      // meaningful to compare, and old baselines must not start failing.
      const struct {
        const char* key;
        double base_v, cur_v, allow;
      } mem[] = {{"peak_segment_bytes", base.peak_segment_bytes,
                  cur.peak_segment_bytes, options.max_mem_regression},
                 {"peak_rss_bytes", base.peak_rss_bytes, cur.peak_rss_bytes,
                  options.max_rss_regression},
                 {"peak_msg_bytes", base.peak_msg_bytes, cur.peak_msg_bytes,
                  options.max_mem_regression}};
      for (const auto& m : mem) {
        if (m.base_v <= 0.0 || m.cur_v <= 0.0) continue;
        const double mem_ratio = m.cur_v / m.base_v;
        const bool grew = mem_ratio > 1.0 + m.allow;
        if (grew) ++result.mem_regressions;
        std::snprintf(line, sizeof(line),
                      "  %s  %-45s  %12.0f B vs %12.0f B   (%s %+.1f%% / "
                      "allow %.0f%%)\n",
                      grew ? "MEM-REG" : "ok     ", name.c_str(), m.cur_v,
                      m.base_v, m.key, (mem_ratio - 1.0) * 100.0,
                      m.allow * 100.0);
        result.report += line;
      }
    }
  }
  return result;
}

}  // namespace ubigraph::benchcmp
