// Partitioning (Table 9): streaming partitioners vs the hash baseline, with
// edge-cut quality reported as counters.
#include <benchmark/benchmark.h>

#include "algorithms/partition.h"

#include "perf_common.h"

namespace ubigraph {
namespace {

void BM_HashPartition(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  algo::Partitioning last;
  for (auto _ : state) {
    last = algo::HashPartition(g, 16).ValueOrDie();
    benchmark::DoNotOptimize(last);
  }
  auto q = algo::EvaluatePartition(g, last).ValueOrDie();
  state.counters["cut_fraction"] = q.cut_fraction;
}
BENCHMARK(BM_HashPartition)->Arg(13)->Arg(16);

void BM_LdgPartition(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  algo::Partitioning last;
  for (auto _ : state) {
    last = algo::LdgPartition(g, 16).ValueOrDie();
    benchmark::DoNotOptimize(last);
  }
  auto q = algo::EvaluatePartition(g, last).ValueOrDie();
  state.counters["cut_fraction"] = q.cut_fraction;
}
BENCHMARK(BM_LdgPartition)->Arg(13)->Arg(16);

void BM_BfsGrowPartition(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  Rng rng(9);
  algo::Partitioning last;
  for (auto _ : state) {
    last = algo::BfsGrowPartition(g, 16, &rng).ValueOrDie();
    benchmark::DoNotOptimize(last);
  }
  auto q = algo::EvaluatePartition(g, last).ValueOrDie();
  state.counters["cut_fraction"] = q.cut_fraction;
}
BENCHMARK(BM_BfsGrowPartition)->Arg(13)->Arg(16);

}  // namespace
}  // namespace ubigraph

BENCHMARK_MAIN();
