// Table 3: size of the participants' organizations.
#include "table_common.h"

int main() {
  using namespace ubigraph::survey;
  bool ok =
      ReportQuestion("org_size", "Table 3 — size of participants' organizations");
  return VerdictExit(ok);
}
