// Memory-locality layer: kernel time on original vs reordered graphs, the
// cache-blocked PageRank mode, and the compressed-CSR backend (decode overhead
// plus bytes-per-edge vs the plain 4-byte adjacency array). The reordering
// itself runs once per (scale, kind) in setup — the benchmarks time the
// kernels, not the passes — except BM_ReorderPass, which times the passes.
#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "algorithms/pagerank.h"
#include "algorithms/traversal.h"
#include "graph/compressed_csr.h"
#include "graph/ordering.h"
#include "perf_common.h"
#include "perf_obs.h"

namespace ubigraph {
namespace {

/// Cached reordered copy of the standard bench RMAT graph. kOriginal returns
/// the unpermuted graph so every benchmark reads through the same path.
const CsrGraph& OrderedRmat(uint32_t scale, OrderingKind kind) {
  if (kind == OrderingKind::kOriginal) {
    return bench::RmatGraph(scale, /*in_edges=*/true);
  }
  static std::map<std::pair<uint32_t, OrderingKind>, CsrGraph> cache;
  auto key = std::make_pair(scale, kind);
  auto it = cache.find(key);
  if (it == cache.end()) {
    const CsrGraph& g = bench::RmatGraph(scale, /*in_edges=*/true);
    it = cache
             .emplace(key,
                      std::move(g.Permute(MakeOrdering(g, kind)).ValueOrDie()
                                    .graph))
             .first;
  }
  return it->second;
}

/// Cached compressed copy of the standard bench RMAT graph.
const CompressedCsrGraph& CompressedRmat(uint32_t scale) {
  static std::map<uint32_t, CompressedCsrGraph> cache;
  auto it = cache.find(scale);
  if (it == cache.end()) {
    it = cache
             .emplace(scale, CompressedCsrGraph::FromCsr(
                                 bench::RmatGraph(scale, /*in_edges=*/true))
                                 .ValueOrDie())
             .first;
  }
  return it->second;
}

// Fixed-work (20 iterations) pull PageRank per vertex ordering; Args =
// {scale, num_threads}. The acceptance comparison is mode=pull_hub vs
// mode=pull_original at rmat20.
void PageRankOrderedBench(benchmark::State& state, OrderingKind kind) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const CsrGraph& g = OrderedRmat(scale, kind);
  algo::PageRankOptions opts;
  opts.max_iterations = 20;
  opts.tolerance = 0;
  opts.mode = algo::PageRankMode::kPull;
  opts.num_threads = static_cast<uint32_t>(state.range(1));
  bench::WorkProbe work({"pagerank.edges_relaxed"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::PageRank(g, opts).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges() * 20);
  work.Flush(state);
  state.SetLabel(std::string("kernel=pagerank mode=pull_") +
                 OrderingKindName(kind) + " graph=rmat" +
                 std::to_string(scale));
  state.counters["threads"] = static_cast<double>(state.range(1));
}
void BM_PageRankPullOriginal(benchmark::State& state) {
  PageRankOrderedBench(state, OrderingKind::kOriginal);
}
void BM_PageRankPullHub(benchmark::State& state) {
  PageRankOrderedBench(state, OrderingKind::kDegreeDescending);
}
void BM_PageRankPullRcm(benchmark::State& state) {
  PageRankOrderedBench(state, OrderingKind::kRcm);
}
void BM_PageRankPullHubCluster(benchmark::State& state) {
  PageRankOrderedBench(state, OrderingKind::kHubCluster);
}
#define ORDERED_ARGS Args({12, 1})->Args({20, 1})->Args({20, 8})
BENCHMARK(BM_PageRankPullOriginal)->ORDERED_ARGS;
BENCHMARK(BM_PageRankPullHub)->ORDERED_ARGS;
BENCHMARK(BM_PageRankPullRcm)->ORDERED_ARGS;
BENCHMARK(BM_PageRankPullHubCluster)->ORDERED_ARGS;
#undef ORDERED_ARGS

// Cache-blocked (propagation blocking) push vs the plain modes benchmarked in
// perf_pagerank; Args = {scale, num_threads}.
void BM_PageRankBlocked(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const CsrGraph& g = bench::RmatGraph(scale, /*in_edges=*/true);
  algo::PageRankOptions opts;
  opts.max_iterations = 20;
  opts.tolerance = 0;
  opts.mode = algo::PageRankMode::kBlocked;
  opts.num_threads = static_cast<uint32_t>(state.range(1));
  bench::WorkProbe work({"pagerank.edges_relaxed"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::PageRank(g, opts).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges() * 20);
  work.Flush(state);
  state.SetLabel("kernel=pagerank mode=blocked graph=rmat" +
                 std::to_string(scale));
  state.counters["threads"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_PageRankBlocked)->Args({12, 1})->Args({20, 1})->Args({20, 8});

// Hybrid BFS on the hub-sorted graph vs original (the frontier bitmap and
// distance array get the same locality win as PageRank's rank array).
void BfsOrderedBench(benchmark::State& state, OrderingKind kind) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const CsrGraph& g = OrderedRmat(scale, kind);
  const VertexId root = bench::BfsRoot(g);
  algo::HybridBfsOptions opts;
  opts.num_threads = static_cast<uint32_t>(state.range(1));
  bench::WorkProbe work({"bfs.hybrid.edges_scanned"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::HybridBfs(g, root, opts).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  work.Flush(state);
  state.SetLabel(std::string("kernel=bfs mode=hybrid_") +
                 OrderingKindName(kind) + " graph=rmat" +
                 std::to_string(scale));
  state.counters["threads"] = static_cast<double>(state.range(1));
}
void BM_BfsHybridOriginal(benchmark::State& state) {
  BfsOrderedBench(state, OrderingKind::kOriginal);
}
void BM_BfsHybridHub(benchmark::State& state) {
  BfsOrderedBench(state, OrderingKind::kDegreeDescending);
}
BENCHMARK(BM_BfsHybridOriginal)->Args({12, 1})->Args({20, 1});
BENCHMARK(BM_BfsHybridHub)->Args({12, 1})->Args({20, 1});

// Pull PageRank reading adjacency through the varint block decoder instead of
// the plain target array: the decode overhead the byte savings pay for.
// Reports bytes_per_edge (encoded out-payload / edge; plain CSR is 4.0).
void BM_PageRankPullCompressed(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const CompressedCsrGraph& g = CompressedRmat(scale);
  algo::PageRankOptions opts;
  opts.max_iterations = 20;
  opts.tolerance = 0;
  opts.mode = algo::PageRankMode::kPull;
  opts.num_threads = static_cast<uint32_t>(state.range(1));
  bench::WorkProbe work({"pagerank.edges_relaxed"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::PageRank(g, opts).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges() * 20);
  work.Flush(state);
  state.counters["bytes_per_edge"] = g.AdjacencyBytesPerEdge();
  state.SetLabel("kernel=pagerank mode=pull_compressed graph=rmat" +
                 std::to_string(scale));
  state.counters["threads"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_PageRankPullCompressed)->Args({12, 1})->Args({20, 1});

// Encode throughput plus the compression ratio itself (the ≤60%-of-plain
// acceptance number is this benchmark's bytes_per_edge / 4).
void BM_CompressedEncode(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const CsrGraph& g = bench::RmatGraph(scale, /*in_edges=*/true);
  double bytes_per_edge = 0.0;
  for (auto _ : state) {
    CompressedCsrGraph c = CompressedCsrGraph::FromCsr(g).ValueOrDie();
    bytes_per_edge = c.AdjacencyBytesPerEdge();
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  state.counters["bytes_per_edge"] = bytes_per_edge;
  state.SetLabel("kernel=compress mode=encode graph=rmat" +
                 std::to_string(scale));
  state.counters["threads"] = 1.0;
}
BENCHMARK(BM_CompressedEncode)->Arg(12)->Arg(20);

// Raw varint block-decode throughput: stream every adjacency row through the
// 16-id block decoder with no kernel arithmetic attached. This is the record
// that pins the branch-reduced Refill fast path (the 16-byte wide probe for
// all-single-byte gap blocks) — kernel-level benches dilute decode time with
// rank updates, so a decoder regression hides in them.
void BM_CompressedDecode(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const CompressedCsrGraph& g = CompressedRmat(scale);
  uint64_t sink = 0;
  for (auto _ : state) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      for (VertexId u : g.OutNeighbors(v)) sink += u;
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  // Every stored edge is decoded exactly once per sweep.
  bench::SetWorkItems(state, static_cast<double>(g.num_edges()));
  state.counters["bytes_per_edge"] = g.AdjacencyBytesPerEdge();
  state.SetLabel("kernel=compress mode=decode graph=rmat" +
                 std::to_string(scale));
  state.counters["threads"] = 1.0;
}
BENCHMARK(BM_CompressedDecode)->Arg(12)->Arg(20);

// The reordering passes themselves (permutation only, no Permute).
void ReorderPassBench(benchmark::State& state, OrderingKind kind) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const CsrGraph& g = bench::RmatGraph(scale, /*in_edges=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeOrdering(g, kind));
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
  state.SetLabel(std::string("kernel=reorder mode=") + OrderingKindName(kind) +
                 " graph=rmat" + std::to_string(scale));
  state.counters["threads"] = 1.0;
}
void BM_ReorderHub(benchmark::State& state) {
  ReorderPassBench(state, OrderingKind::kDegreeDescending);
}
void BM_ReorderRcm(benchmark::State& state) {
  ReorderPassBench(state, OrderingKind::kRcm);
}
void BM_ReorderHubCluster(benchmark::State& state) {
  ReorderPassBench(state, OrderingKind::kHubCluster);
}
BENCHMARK(BM_ReorderHub)->Arg(12)->Arg(20);
BENCHMARK(BM_ReorderRcm)->Arg(12)->Arg(20);
BENCHMARK(BM_ReorderHubCluster)->Arg(12)->Arg(20);

// Permute itself (relabel + in-index rebuild); Args = {scale, num_threads}.
void BM_Permute(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const CsrGraph& g = bench::RmatGraph(scale, /*in_edges=*/true);
  const std::vector<VertexId> perm =
      MakeOrdering(g, OrderingKind::kDegreeDescending);
  PermuteOptions opts;
  opts.num_threads = static_cast<uint32_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.Permute(perm, opts).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  // Permute relabels every edge (out and in index) exactly once.
  bench::SetWorkItems(state, static_cast<double>(g.num_edges()));
  state.SetLabel("kernel=permute mode=hub graph=rmat" + std::to_string(scale));
  state.counters["threads"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_Permute)->Args({12, 1})->Args({20, 1})->Args({20, 8});

}  // namespace
}  // namespace ubigraph

UBIGRAPH_BENCHMARK_MAIN_WITH_OBS();
