// Query engine benchmarks: Cypher-lite and the fluent traversal API over a
// property graph (the survey's #3 challenge area).
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "query/cypher_executor.h"
#include "query/cypher_parser.h"
#include "query/traversal_api.h"
#include "rdf/triple_store.h"

namespace ubigraph {
namespace {

PropertyGraph* BuildSocialGraph(VertexId people, VertexId products) {
  auto* g = new PropertyGraph();
  Rng rng(13);
  for (VertexId i = 0; i < people; ++i) {
    VertexId v = g->AddVertex("Person");
    g->SetVertexProperty(v, "age", static_cast<int64_t>(18 + rng.NextBounded(60)))
        .Abort();
    g->SetVertexProperty(v, "name", "p" + std::to_string(i)).Abort();
  }
  for (VertexId i = 0; i < products; ++i) {
    VertexId v = g->AddVertex("Product");
    g->SetVertexProperty(v, "price", 10.0 + rng.NextDouble() * 990).Abort();
  }
  for (VertexId i = 0; i < people * 4; ++i) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(people));
    VertexId b = static_cast<VertexId>(rng.NextBounded(people));
    if (a != b) g->AddEdge(a, b, "knows").ValueOrDie();
  }
  for (VertexId i = 0; i < people * 2; ++i) {
    VertexId a = static_cast<VertexId>(rng.NextBounded(people));
    VertexId b = people + static_cast<VertexId>(rng.NextBounded(products));
    g->AddEdge(a, b, "bought").ValueOrDie();
  }
  return g;
}

const PropertyGraph& SocialGraph() {
  static PropertyGraph* kGraph = BuildSocialGraph(2000, 200);
  return *kGraph;
}

void BM_CypherParseOnly(benchmark::State& state) {
  const std::string q =
      "MATCH (a:Person)-[:knows]->(b:Person) WHERE a.age > 30 AND b.age < 40 "
      "RETURN a.name, b.name LIMIT 50";
  for (auto _ : state) {
    benchmark::DoNotOptimize(query::ParseCypher(q));
  }
}
BENCHMARK(BM_CypherParseOnly);

void BM_CypherLabelScan(benchmark::State& state) {
  const PropertyGraph& g = SocialGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        query::RunCypher(g, "MATCH (p:Person) WHERE p.age > 70 RETURN p.name"));
  }
}
BENCHMARK(BM_CypherLabelScan);

void BM_CypherOneHop(benchmark::State& state) {
  const PropertyGraph& g = SocialGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(query::RunCypher(
        g,
        "MATCH (a:Person {name: 'p7'})-[:knows]->(b) RETURN b LIMIT 100"));
  }
}
BENCHMARK(BM_CypherOneHop);

void BM_TraversalApiTwoHop(benchmark::State& state) {
  const PropertyGraph& g = SocialGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        query::GraphTraversal(g).V({7}).Out("knows").Out("knows").Dedup().Count());
  }
}
BENCHMARK(BM_TraversalApiTwoHop);

void BM_TraversalApiFilterChain(benchmark::State& state) {
  const PropertyGraph& g = SocialGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        query::GraphTraversal(g)
            .V()
            .HasLabel("Person")
            .Has("age",
                 [](const PropertyValue& v) { return std::get<int64_t>(v) > 50; })
            .Out("bought")
            .Dedup()
            .Count());
  }
}
BENCHMARK(BM_TraversalApiFilterChain);

void BM_TripleStoreJoin(benchmark::State& state) {
  static rdf::TripleStore* store = [] {
    auto* s = new rdf::TripleStore();
    Rng rng(17);
    for (int i = 0; i < 20000; ++i) {
      s->Add("person" + std::to_string(rng.NextBounded(2000)), "knows",
             "person" + std::to_string(rng.NextBounded(2000)));
    }
    return s;
  }();
  for (auto _ : state) {
    std::vector<std::string> vars;
    benchmark::DoNotOptimize(store->Query(
        {{"person1", "knows", "?x"}, {"?x", "knows", "?y"}}, &vars));
  }
}
BENCHMARK(BM_TripleStoreJoin);

}  // namespace
}  // namespace ubigraph

BENCHMARK_MAIN();
