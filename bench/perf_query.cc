// Query engine benchmarks: Cypher-lite (interpreter vs vectorized vs warm
// plan cache), the fluent traversal API, and the triple store (the survey's
// #3 challenge area). The Arg(12) social-graph variants feed the
// ci/perf_smoke.sh regression gate; the headline comparison is the anchored
// two-hop expand, where the vectorized engine's statistics-driven join order
// replaces the interpreter's scan-all-vertices-per-level backtracking.
#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "common/random.h"
#include "graph/label_csr.h"
#include "query/cypher_executor.h"
#include "query/cypher_parser.h"
#include "query/plan_cache.h"
#include "query/planner.h"
#include "query/traversal_api.h"
#include "rdf/triple_store.h"

#include "perf_common.h"
#include "perf_obs.h"

namespace ubigraph {
namespace {

// 2^scale Person vertices (age, name properties), 2^scale/10 Products,
// 4 "knows" + 2 "bought" edges per person. Cached per scale.
const PropertyGraph& SocialGraph(uint32_t scale) {
  static std::map<uint32_t, PropertyGraph*> cache;
  auto it = cache.find(scale);
  if (it == cache.end()) {
    auto* g = new PropertyGraph();
    Rng rng(13);
    const VertexId people = static_cast<VertexId>(1u) << scale;
    const VertexId products = people / 10;
    for (VertexId i = 0; i < people; ++i) {
      VertexId v = g->AddVertex("Person");
      g->SetVertexProperty(v, "age",
                           static_cast<int64_t>(18 + rng.NextBounded(60)))
          .Abort();
      g->SetVertexProperty(v, "name", "p" + std::to_string(i)).Abort();
    }
    for (VertexId i = 0; i < products; ++i) {
      VertexId v = g->AddVertex("Product");
      g->SetVertexProperty(v, "price", 10.0 + rng.NextDouble() * 990).Abort();
    }
    for (VertexId i = 0; i < people * 4; ++i) {
      VertexId a = static_cast<VertexId>(rng.NextBounded(people));
      VertexId b = static_cast<VertexId>(rng.NextBounded(people));
      if (a != b) g->AddEdge(a, b, "knows").ValueOrDie();
    }
    for (VertexId i = 0; i < people * 2; ++i) {
      VertexId a = static_cast<VertexId>(rng.NextBounded(people));
      VertexId b = people + static_cast<VertexId>(rng.NextBounded(products));
      g->AddEdge(a, b, "bought").ValueOrDie();
    }
    it = cache.emplace(scale, g).first;
  }
  return *it->second;
}

// A warm QueryEngine per (graph scale, batch size): the plan-cache-hit
// configuration.
query::QueryEngine& WarmEngine(uint32_t scale, size_t batch) {
  static std::map<std::pair<uint32_t, size_t>, query::QueryEngine*> cache;
  auto key = std::make_pair(scale, batch);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache
             .emplace(key, new query::QueryEngine(
                               SocialGraph(scale),
                               {.vectorized = true, .batch_size = batch}))
             .first;
  }
  return *it->second;
}

const char* kTwoHop =
    "MATCH (a:Person {name: 'p7'})-[:knows]->(b:Person)-[:knows]->(c:Person) "
    "RETURN count(*)";
const char* kLabelScan = "MATCH (p:Person) WHERE p.age > 70 RETURN p.name";

void BM_CypherParseOnly(benchmark::State& state) {
  const std::string q =
      "MATCH (a:Person)-[:knows]->(b:Person) WHERE a.age > 30 "
      "RETURN a.name, b.name LIMIT 50";
  for (auto _ : state) {
    benchmark::DoNotOptimize(query::ParseCypher(q));
  }
  state.SetLabel("kernel=cypher mode=parse graph=none");
}
BENCHMARK(BM_CypherParseOnly);

// The plan-cache key derivation: the entire per-query cost of a cache hit
// besides execution itself.
void BM_CypherNormalizeOnly(benchmark::State& state) {
  const std::string q(kTwoHop);
  for (auto _ : state) {
    benchmark::DoNotOptimize(query::NormalizeCypher(q));
  }
  state.SetLabel("kernel=cypher mode=normalize graph=none");
}
BENCHMARK(BM_CypherNormalizeOnly);

// --- label scan: interpreter vs warm vectorized engine ---------------------

void BM_CypherLabelScanInterp(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const PropertyGraph& g = SocialGraph(scale);
  bench::WorkProbe work({"cypher.rows_scanned"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        query::RunCypher(g, kLabelScan, {.vectorized = false}));
  }
  work.Flush(state);
  state.SetLabel("kernel=cypher mode=interp graph=social" +
                 std::to_string(scale));
}
BENCHMARK(BM_CypherLabelScanInterp)->Args({12, 0});

void BM_CypherLabelScanCached(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  query::QueryEngine& engine =
      WarmEngine(scale, static_cast<size_t>(state.range(1)));
  engine.Run(kLabelScan).ValueOrDie();
  bench::WorkProbe work({"cypher.rows_scanned"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Run(kLabelScan));
  }
  work.Flush(state);
  state.SetLabel("kernel=cypher mode=cached graph=social" +
                 std::to_string(scale));
}
BENCHMARK(BM_CypherLabelScanCached)->Args({12, 1024});

// --- anchored two-hop expand: the headline comparison ----------------------
// The interpreter scans every vertex at every pattern depth; the vectorized
// engine scans Person once for the anchor, then expands ~4 then ~16
// neighbors off the CSR view. Acceptance: >= 3x wall-clock win.

void BM_CypherTwoHopInterp(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const PropertyGraph& g = SocialGraph(scale);
  bench::WorkProbe work({"cypher.rows_scanned"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        query::RunCypher(g, kTwoHop, {.vectorized = false}));
  }
  work.Flush(state);
  state.SetLabel("kernel=cypher mode=interp graph=social" +
                 std::to_string(scale));
}
BENCHMARK(BM_CypherTwoHopInterp)->Args({12, 0});

// One-shot vectorized: parse + plan + CSR-view build every iteration (the
// cost RunCypher pays without an engine).
void BM_CypherTwoHopVectorized(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const PropertyGraph& g = SocialGraph(scale);
  bench::WorkProbe work({"cypher.rows_scanned"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        query::RunCypher(
            g, kTwoHop,
            {.vectorized = true,
             .batch_size = static_cast<size_t>(state.range(1))}));
  }
  work.Flush(state);
  state.SetLabel("kernel=cypher mode=vectorized graph=social" +
                 std::to_string(scale));
}
BENCHMARK(BM_CypherTwoHopVectorized)->Args({12, 1024});

void BM_CypherTwoHopCached(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  query::QueryEngine& engine =
      WarmEngine(scale, static_cast<size_t>(state.range(1)));
  engine.Run(kTwoHop).ValueOrDie();
  bench::WorkProbe work({"cypher.rows_scanned"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Run(kTwoHop));
  }
  work.Flush(state);
  state.SetLabel("kernel=cypher mode=cached graph=social" +
                 std::to_string(scale));
}
BENCHMARK(BM_CypherTwoHopCached)->Args({12, 1024})->Args({12, 1});

// Cold planning cost in isolation: normalize + parse + plan (no execution,
// no view build — the one-off work a cache hit skips).
void BM_CypherPlanOnly(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  query::QueryEngine& engine = WarmEngine(scale, 1024);
  const LabelCsrView& view = engine.view();
  const PropertyGraph& g = SocialGraph(scale);
  query::CypherQuery q = query::ParseCypher(kTwoHop).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(query::PlanQuery(g, view.stats(), q));
  }
  bench::SetWorkItems(state, 1.0);
  state.SetLabel("kernel=cypher mode=plan graph=social" +
                 std::to_string(scale));
}
BENCHMARK(BM_CypherPlanOnly)->Args({12, 0});

// --- fluent traversal API / triple store (unchanged workloads) -------------

void BM_TraversalApiTwoHop(benchmark::State& state) {
  const PropertyGraph& g = SocialGraph(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        query::GraphTraversal(g).V({7}).Out("knows").Out("knows").Dedup().Count());
  }
  state.SetLabel("kernel=traversal mode=twohop graph=social11");
}
BENCHMARK(BM_TraversalApiTwoHop);

void BM_TraversalApiFilterChain(benchmark::State& state) {
  const PropertyGraph& g = SocialGraph(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        query::GraphTraversal(g)
            .V()
            .HasLabel("Person")
            .Has("age",
                 [](const PropertyValue& v) { return std::get<int64_t>(v) > 50; })
            .Out("bought")
            .Dedup()
            .Count());
  }
  state.SetLabel("kernel=traversal mode=filter graph=social11");
}
BENCHMARK(BM_TraversalApiFilterChain);

void BM_TripleStoreJoin(benchmark::State& state) {
  static rdf::TripleStore* store = [] {
    auto* s = new rdf::TripleStore();
    Rng rng(17);
    for (int i = 0; i < 20000; ++i) {
      s->Add("person" + std::to_string(rng.NextBounded(2000)), "knows",
             "person" + std::to_string(rng.NextBounded(2000)));
    }
    return s;
  }();
  for (auto _ : state) {
    std::vector<std::string> vars;
    benchmark::DoNotOptimize(store->Query(
        {{"person1", "knows", "?x"}, {"?x", "knows", "?y"}}, &vars));
  }
  state.SetLabel("kernel=rdf mode=join graph=triples20k");
}
BENCHMARK(BM_TripleStoreJoin);

}  // namespace
}  // namespace ubigraph

UBIGRAPH_BENCHMARK_MAIN_WITH_OBS()
