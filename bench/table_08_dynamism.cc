// Table 8: how frequently the participants' graphs change (static / dynamic /
// streaming) — the workload classes DynamicGraph and StreamingGraph serve.
#include "table_common.h"

int main() {
  using namespace ubigraph::survey;
  bool ok = ReportQuestion("dynamism", "Table 8 — frequency of changes");
  return VerdictExit(ok);
}
