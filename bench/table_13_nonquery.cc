// Table 13: software used for non-querying tasks (visualization's dominance).
#include <cstdio>

#include "survey/academic.h"

#include "table_common.h"

int main() {
  using namespace ubigraph::survey;
  bool ok =
      ReportQuestion("nonquery_software", "Table 13 — software for non-query tasks");

  auto corpus = AcademicCorpus::SynthesizeExact().ValueOrDie();
  auto counts = corpus.CountNonQuerySoftware();
  const auto& rows = Table13NonQuerySoftware();
  std::puts("Academic column: paper vs mined from the 90-paper corpus");
  for (size_t i = 0; i < rows.size(); ++i) {
    bool match = counts[i] == rows[i].academic;
    std::printf("  %-34s paper=%2d repro=%2d %s\n", rows[i].label,
                rows[i].academic, counts[i], match ? "yes" : "NO");
    ok = ok && match;
  }
  return VerdictExit(ok);
}
