// Table 16: weekly hours spent per task. Reproduced as six single-choice
// questions (one per task) and re-ranked by the paper's ordering rule.
#include <cstdio>

#include "common/table.h"
#include "survey/paper_data.h"

#include "table_common.h"

int main() {
  using namespace ubigraph;
  using namespace ubigraph::survey;

  bool ok = true;
  TextTable table({"Task", "0-5h (paper/repro)", "5-10h", ">10h", "Match"});
  for (const WorkloadRow& row : Table16Workload()) {
    auto tally = SharedPopulation().Tabulate(std::string("workload_") + row.task);
    bool match = tally.size() == 3 && tally[0].total == row.hours_0_5 &&
                 tally[1].total == row.hours_5_10 &&
                 tally[2].total == row.hours_over_10;
    table.AddRow({row.task,
                  std::to_string(row.hours_0_5) + "/" +
                      std::to_string(tally.empty() ? -1 : tally[0].total),
                  std::to_string(row.hours_5_10) + "/" +
                      std::to_string(tally.size() < 2 ? -1 : tally[1].total),
                  std::to_string(row.hours_over_10) + "/" +
                      std::to_string(tally.size() < 3 ? -1 : tally[2].total),
                  match ? "yes" : "NO"});
    ok = ok && match;
  }
  std::puts("Table 16 — weekly hours per task (paper/reproduced)");
  std::fputs(table.RenderAscii().c_str(), stdout);
  std::puts("Paper's ordering rule puts Analytics and Testing first, "
            "ETL and Cleaning last.");
  return VerdictExit(ok);
}
