// Connected components — the survey's most-run computation (Table 9 #1).
#include <benchmark/benchmark.h>

#include "algorithms/connected_components.h"

#include "perf_common.h"
#include "perf_obs.h"

namespace ubigraph {
namespace {

void BM_WeaklyConnectedComponents(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::WeaklyConnectedComponents(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_WeaklyConnectedComponents)->Arg(10)->Arg(13)->Arg(16);

void BM_ConnectedComponentsBfs(benchmark::State& state) {
  const CsrGraph& g =
      bench::RmatGraph(static_cast<uint32_t>(state.range(0)), /*in_edges=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::ConnectedComponentsBfs(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_ConnectedComponentsBfs)->Arg(10)->Arg(13)->Arg(16);

void BM_StronglyConnectedComponents(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::StronglyConnectedComponents(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_StronglyConnectedComponents)->Arg(10)->Arg(13)->Arg(16);

void BM_SingletonCleaning(benchmark::State& state) {
  // The §4.1 "remove singleton vertices" pre-processing step.
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::SingletonVertices(g));
  }
}
BENCHMARK(BM_SingletonCleaning)->Arg(10)->Arg(13);

}  // namespace
}  // namespace ubigraph

UBIGRAPH_BENCHMARK_MAIN_WITH_OBS();
