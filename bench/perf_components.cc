// Connected components — the survey's most-run computation (Table 9 #1).
#include <benchmark/benchmark.h>

#include "algorithms/connected_components.h"

#include "perf_common.h"
#include "perf_obs.h"

namespace ubigraph {
namespace {

void BM_WeaklyConnectedComponents(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::WeaklyConnectedComponents(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_WeaklyConnectedComponents)->Arg(10)->Arg(13)->Arg(16);

void BM_ConnectedComponentsBfs(benchmark::State& state) {
  const CsrGraph& g =
      bench::RmatGraph(static_cast<uint32_t>(state.range(0)), /*in_edges=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::ConnectedComponentsBfs(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_ConnectedComponentsBfs)->Arg(10)->Arg(13)->Arg(16);

// Label-propagation CC, full-sweep vs Frontier working set; Args = {scale,
// num_threads, use_frontier}. The frontier variant stops touching settled
// regions, which dominates once the giant component's labels stabilize.
void BM_CCLabelProp(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const CsrGraph& g = bench::RmatGraph(scale, /*in_edges=*/true);
  algo::ComponentsOptions opts;
  opts.num_threads = static_cast<uint32_t>(state.range(1));
  opts.use_frontier = state.range(2) != 0;
  bench::WorkProbe work({"cc.labelprop.vertices_activated"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::ConnectedComponentsLabelProp(g, opts).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  work.Flush(state);
  state.SetLabel(std::string("kernel=cc mode=") +
                 (opts.use_frontier ? "frontier" : "full") + " graph=rmat" +
                 std::to_string(scale));
  state.counters["threads"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_CCLabelProp)
    ->Args({12, 1, 0})
    ->Args({12, 1, 1})
    ->Args({16, 1, 0})
    ->Args({16, 1, 1})
    ->Args({16, 8, 0})
    ->Args({16, 8, 1});

void BM_StronglyConnectedComponents(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::StronglyConnectedComponents(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_StronglyConnectedComponents)->Arg(10)->Arg(13)->Arg(16);

void BM_SingletonCleaning(benchmark::State& state) {
  // The §4.1 "remove singleton vertices" pre-processing step.
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::SingletonVertices(g));
  }
}
BENCHMARK(BM_SingletonCleaning)->Arg(10)->Arg(13);

}  // namespace
}  // namespace ubigraph

UBIGRAPH_BENCHMARK_MAIN_WITH_OBS();
