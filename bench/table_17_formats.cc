// Table 17: storage formats among multi-format users. Every format class the
// table names that is in scope for a single-machine library is actually
// implemented in src/io (edge-list/CSV/GraphML/GML/JSON/binary) and src/rdf.
#include <cstdio>

#include "table_common.h"

int main() {
  using namespace ubigraph::survey;
  bool ok = ReportQuestion("storage_formats",
                           "Table 17 — data storage formats (25 respondents)");
  std::puts("Implemented in this workbench: graph binary (io/binary), "
            "RDF store (rdf/), XML/JSON (io/graphml, io/json), GML/GraphML "
            "(io/gml, io/graphml), CSV/text (io/csv, io/edge_list).");
  return VerdictExit(ok);
}
