// Replacement for BENCHMARK_MAIN() that dumps a BENCH_obs.json metrics
// snapshot after the benchmarks run, making the perf trajectory
// machine-readable (counters like pagerank.iterations and the per-worker
// pool.busy_ns shard breakdown land in the file).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "obs/snapshot.h"

namespace ubigraph::bench {

/// Runs google-benchmark as BENCHMARK_MAIN() would, then captures the global
/// metrics registry into `out_path` (override with UBIGRAPH_OBS_OUT).
inline int PerfMainWithObs(int argc, char** argv,
                           const char* out_path = "BENCH_obs.json") {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const char* env_path = std::getenv("UBIGRAPH_OBS_OUT");
  const char* path = env_path != nullptr ? env_path : out_path;
  if (!obs::DumpGlobalStatsJson(path)) {
    std::fprintf(stderr, "warning: could not write metrics snapshot to %s\n", path);
    return 0;  // benchmarks themselves succeeded
  }
  std::fprintf(stderr, "metrics snapshot written to %s\n", path);
  return 0;
}

}  // namespace ubigraph::bench

/// Expands to a main() that benchmarks, then dumps the obs snapshot.
#define UBIGRAPH_BENCHMARK_MAIN_WITH_OBS()                      \
  int main(int argc, char** argv) {                             \
    return ::ubigraph::bench::PerfMainWithObs(argc, argv);      \
  }
