// Replacement for BENCHMARK_MAIN() that writes two machine-readable files
// after the benchmarks run: BENCH.json (timing records — kernel, mode,
// threads, graph, median ns, edges/sec — via bench::BenchJsonReporter) and
// BENCH_obs.json (the metrics-registry snapshot: counters like
// pagerank.iterations and the per-worker pool.busy_ns shard breakdown).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "obs/snapshot.h"
#include "perf_common.h"

namespace ubigraph::bench {

/// Runs google-benchmark as BENCHMARK_MAIN() would, then writes BENCH.json
/// (override the path with UBIGRAPH_BENCH_OUT) and the obs snapshot to
/// `obs_out_path` (override with UBIGRAPH_OBS_OUT).
inline int PerfMainWithObs(int argc, char** argv,
                           const char* obs_out_path = "BENCH_obs.json") {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  BenchJsonReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (reporter.has_samples()) {
    const char* bench_env = std::getenv("UBIGRAPH_BENCH_OUT");
    const char* bench_path = bench_env != nullptr ? bench_env : "BENCH.json";
    if (reporter.WriteJson(bench_path)) {
      std::fprintf(stderr, "benchmark records written to %s\n", bench_path);
    } else {
      std::fprintf(stderr, "warning: could not write %s\n", bench_path);
    }
  }
  const char* env_path = std::getenv("UBIGRAPH_OBS_OUT");
  const char* path = env_path != nullptr ? env_path : obs_out_path;
  if (!obs::DumpGlobalStatsJson(path)) {
    std::fprintf(stderr, "warning: could not write metrics snapshot to %s\n", path);
    return 0;  // benchmarks themselves succeeded
  }
  std::fprintf(stderr, "metrics snapshot written to %s\n", path);
  return 0;
}

}  // namespace ubigraph::bench

/// Expands to a main() that benchmarks, then dumps the obs snapshot.
#define UBIGRAPH_BENCHMARK_MAIN_WITH_OBS()                      \
  int main(int argc, char** argv) {                             \
    return ::ubigraph::bench::PerfMainWithObs(argc, argv);      \
  }
