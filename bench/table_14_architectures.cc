// Table 14: architectures of the participants' software, plus the §5.2 joint
// fact that 29 of the 45 "distributed" users have graphs over 100M edges.
#include <cstdio>

#include "table_common.h"

int main() {
  using namespace ubigraph::survey;
  bool ok =
      ReportQuestion("architectures", "Table 14 — software architectures used");

  int joint = DeriveDistributedWithOver100M(SharedPopulation());
  std::printf("Joint constraint: distributed users with >100M edges = %d "
              "(paper: %d)\n",
              joint, kDistributedWithOver100MEdges);
  ok = ok && joint == kDistributedWithOver100MEdges;
  return VerdictExit(ok);
}
