// PageRank & centrality (Table 9 "Ranking & Centrality Scores").
#include <benchmark/benchmark.h>

#include "algorithms/centrality.h"
#include "algorithms/pagerank.h"

#include "perf_common.h"
#include "perf_obs.h"

namespace ubigraph {
namespace {

void BM_PageRank(benchmark::State& state) {
  const CsrGraph& g =
      bench::RmatGraph(static_cast<uint32_t>(state.range(0)), /*in_edges=*/true);
  algo::PageRankOptions opts;
  opts.max_iterations = 20;
  opts.tolerance = 0;  // fixed iteration count for stable comparison
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::PageRank(g, opts));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges() * 20);
}
BENCHMARK(BM_PageRank)->Arg(10)->Arg(13)->Arg(16);

// Parallel path at a fixed scale; Arg = num_threads (1 = serial baseline).
void BM_PageRankParallel(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(16, /*in_edges=*/true);
  algo::PageRankOptions opts;
  opts.max_iterations = 20;
  opts.tolerance = 0;
  opts.num_threads = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::PageRank(g, opts));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges() * 20);
}
BENCHMARK(BM_PageRankParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Fixed-work (20 iterations) mode comparison; Args = {scale, num_threads}.
// Pull gathers contiguous in-edges with no write sharing; push scatters with
// per-worker accumulators. Scale 20 is the acceptance comparison, scale 12
// feeds ci/perf_smoke.sh.
void PageRankModeBench(benchmark::State& state, algo::PageRankMode mode,
                       const char* mode_name) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const CsrGraph& g = bench::RmatGraph(scale, /*in_edges=*/true);
  algo::PageRankOptions opts;
  opts.max_iterations = 20;
  opts.tolerance = 0;
  opts.num_threads = static_cast<uint32_t>(state.range(1));
  opts.mode = mode;
  bench::WorkProbe work({"pagerank.edges_relaxed"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::PageRank(g, opts).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges() * 20);
  work.Flush(state);
  state.SetLabel(std::string("kernel=pagerank mode=") + mode_name +
                 " graph=rmat" + std::to_string(scale));
  state.counters["threads"] = static_cast<double>(state.range(1));
}
void BM_PageRankPull(benchmark::State& state) {
  PageRankModeBench(state, algo::PageRankMode::kPull, "pull");
}
void BM_PageRankPush(benchmark::State& state) {
  PageRankModeBench(state, algo::PageRankMode::kPush, "push");
}
BENCHMARK(BM_PageRankPull)->Args({12, 1})->Args({20, 1})->Args({20, 8});
BENCHMARK(BM_PageRankPush)->Args({12, 1})->Args({20, 1})->Args({20, 8});

// Run-to-convergence comparison where the delta mode's frontier pays off:
// once most vertices stop moving it skips their gathers entirely.
void PageRankConvergeBench(benchmark::State& state, algo::PageRankMode mode,
                           const char* mode_name) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const CsrGraph& g = bench::RmatGraph(scale, /*in_edges=*/true);
  algo::PageRankOptions opts;
  opts.max_iterations = 200;
  opts.tolerance = 1e-8;
  opts.num_threads = static_cast<uint32_t>(state.range(1));
  opts.mode = mode;
  bench::WorkProbe work({"pagerank.edges_relaxed"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::PageRank(g, opts).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  work.Flush(state);
  state.SetLabel(std::string("kernel=pagerank_converge mode=") + mode_name +
                 " graph=rmat" + std::to_string(scale));
  state.counters["threads"] = static_cast<double>(state.range(1));
}
void BM_PageRankConvergePull(benchmark::State& state) {
  PageRankConvergeBench(state, algo::PageRankMode::kPull, "pull");
}
void BM_PageRankConvergeDelta(benchmark::State& state) {
  PageRankConvergeBench(state, algo::PageRankMode::kDelta, "delta");
}
BENCHMARK(BM_PageRankConvergePull)->Args({12, 1})->Args({16, 1});
BENCHMARK(BM_PageRankConvergeDelta)->Args({12, 1})->Args({16, 1});

// Fixed-work pull PageRank on the LFR corpus shape: power-law communities
// with 10% inter-community edges — locality sits between RMAT's scrambled
// hubs and a lattice, so it catches cache regressions the other two shapes
// mask. Args = {scale, num_threads}; scale 12 feeds ci/perf_smoke.sh.
void BM_PageRankPullLfr(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const CsrGraph& g = bench::LfrCommunityGraph(scale);
  algo::PageRankOptions opts;
  opts.max_iterations = 20;
  opts.tolerance = 0;
  opts.num_threads = static_cast<uint32_t>(state.range(1));
  opts.mode = algo::PageRankMode::kPull;
  bench::WorkProbe work({"pagerank.edges_relaxed"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::PageRank(g, opts).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges() * 20);
  work.Flush(state);
  state.SetLabel("kernel=pagerank mode=pull graph=lfr" + std::to_string(scale));
  state.counters["threads"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_PageRankPullLfr)->Args({12, 1})->Args({18, 1})->Args({18, 4});

void BM_ApproxBetweenness(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::ApproxBetweennessCentrality(g, 16, &rng));
  }
}
BENCHMARK(BM_ApproxBetweenness)->Arg(10)->Arg(12);

void BM_HarmonicCloseness(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::HarmonicCloseness(g));
  }
}
BENCHMARK(BM_HarmonicCloseness)->Arg(8)->Arg(10);

void BM_DegreeCentrality(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::DegreeCentrality(g));
  }
}
BENCHMARK(BM_DegreeCentrality)->Arg(10)->Arg(16);

}  // namespace
}  // namespace ubigraph

UBIGRAPH_BENCHMARK_MAIN_WITH_OBS();
