// PageRank & centrality (Table 9 "Ranking & Centrality Scores").
#include <benchmark/benchmark.h>

#include "algorithms/centrality.h"
#include "algorithms/pagerank.h"

#include "perf_common.h"
#include "perf_obs.h"

namespace ubigraph {
namespace {

void BM_PageRank(benchmark::State& state) {
  const CsrGraph& g =
      bench::RmatGraph(static_cast<uint32_t>(state.range(0)), /*in_edges=*/true);
  algo::PageRankOptions opts;
  opts.max_iterations = 20;
  opts.tolerance = 0;  // fixed iteration count for stable comparison
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::PageRank(g, opts));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges() * 20);
}
BENCHMARK(BM_PageRank)->Arg(10)->Arg(13)->Arg(16);

// Parallel path at a fixed scale; Arg = num_threads (1 = serial baseline).
void BM_PageRankParallel(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(16, /*in_edges=*/true);
  algo::PageRankOptions opts;
  opts.max_iterations = 20;
  opts.tolerance = 0;
  opts.num_threads = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::PageRank(g, opts));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges() * 20);
}
BENCHMARK(BM_PageRankParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ApproxBetweenness(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::ApproxBetweennessCentrality(g, 16, &rng));
  }
}
BENCHMARK(BM_ApproxBetweenness)->Arg(10)->Arg(12);

void BM_HarmonicCloseness(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::HarmonicCloseness(g));
  }
}
BENCHMARK(BM_HarmonicCloseness)->Arg(8)->Arg(10);

void BM_DegreeCentrality(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::DegreeCentrality(g));
  }
}
BENCHMARK(BM_DegreeCentrality)->Arg(10)->Arg(16);

}  // namespace
}  // namespace ubigraph

UBIGRAPH_BENCHMARK_MAIN_WITH_OBS();
