// Tables 10a/10b: ML computations and ML-solved problems. Also smoke-runs
// each surveyed ML workload on synthetic data, including the famous ALS row
// (0 survey users, 2 papers — implemented here all the same).
#include <cstdio>

#include "common/timer.h"
#include "gen/generators.h"
#include "ml/belief_propagation.h"
#include "ml/collaborative_filtering.h"
#include "ml/influence_max.h"
#include "ml/kmeans.h"
#include "ml/label_propagation.h"
#include "ml/link_prediction.h"
#include "ml/louvain.h"
#include "ml/matrix_factorization.h"
#include "ml/regression.h"
#include "survey/academic.h"

#include "table_common.h"

int main() {
  using namespace ubigraph;
  using namespace ubigraph::survey;
  namespace ml = ubigraph::ml;

  bool ok = true;
  ok &= ReportQuestion("ml_computations", "Table 10a — ML computations");
  ok &= ReportQuestion("ml_problems", "Table 10b — problems solved with ML");

  auto corpus = AcademicCorpus::SynthesizeExact().ValueOrDie();
  auto ca = corpus.CountMlComputations();
  auto cb = corpus.CountMlProblems();
  std::puts("Academic columns: paper vs mined from the 90-paper corpus");
  const auto& ra = Table10aMlComputations();
  for (size_t i = 0; i < ra.size(); ++i) {
    bool match = ca[i] == ra[i].academic;
    std::printf("  %-32s paper=%2d repro=%2d %s\n", ra[i].label, ra[i].academic,
                ca[i], match ? "yes" : "NO");
    ok = ok && match;
  }
  const auto& rb = Table10bMlProblems();
  for (size_t i = 0; i < rb.size(); ++i) {
    bool match = cb[i] == rb[i].academic;
    std::printf("  %-32s paper=%2d repro=%2d %s\n", rb[i].label, rb[i].academic,
                cb[i], match ? "yes" : "NO");
    ok = ok && match;
  }

  std::puts("\nExecuting every surveyed ML workload:");
  Rng rng(3);
  CsrOptions uopts;
  uopts.directed = false;
  auto g = CsrGraph::FromEdges(
               gen::PlantedPartition(300, 4, 0.2, 0.01, &rng).ValueOrDie(), uopts)
               .ValueOrDie();
  auto run = [&](const char* name, auto&& fn) {
    Timer t;
    fn();
    std::printf("  %-44s %8.2f ms\n", name, t.ElapsedMillis());
  };
  run("clustering (Louvain community detection)", [&] { ml::Louvain(g); });
  run("clustering (label propagation)", [&] { ml::PropagateLabels(g); });
  run("classification (semi-supervised seeds)", [&] {
    std::vector<uint32_t> seeds(g.num_vertices(), UINT32_MAX);
    seeds[0] = 0;
    seeds[100] = 1;
    ml::ClassifyBySeeds(g, seeds).ValueOrDie();
  });
  run("regression (logistic on vertex features)", [&] {
    auto x = ml::ExtractVertexFeatures(g);
    std::vector<int> y(x.size());
    for (size_t i = 0; i < y.size(); ++i) y[i] = x[i][0] > 4 ? 1 : 0;
    ml::LogisticRegression::Fit(x, y).ValueOrDie();
  });
  run("graphical model inference (loopy BP)", [&] {
    auto mrf = ml::MakeIsingMrf(g.num_vertices(),
                                std::vector<double>(g.num_vertices(), 0.05), 1.4);
    ml::LoopyBeliefPropagation(g, mrf).ValueOrDie();
  });
  std::vector<ml::Rating> ratings;
  {
    Rng rr(5);
    for (int i = 0; i < 2000; ++i) {
      ratings.push_back({static_cast<uint32_t>(rr.NextBounded(50)),
                         static_cast<uint32_t>(rr.NextBounded(40)),
                         1.0 + static_cast<double>(rr.NextBounded(5))});
    }
  }
  run("collaborative filtering (item-item)", [&] {
    auto cf = ml::ItemItemCf::Build(50, 40, ratings).ValueOrDie();
    cf.Recommend(0, 5);
  });
  run("stochastic gradient descent (MF)", [&] {
    ml::FactorModel model(50, 40, 8, 1);
    ml::FactorizationOptions fo;
    fo.epochs = 10;
    ml::TrainSgd(&model, ratings, fo).ValueOrDie();
  });
  run("alternating least squares (MF)", [&] {
    ml::FactorModel model(50, 40, 8, 1);
    ml::FactorizationOptions fo;
    fo.epochs = 5;
    ml::TrainAls(&model, ratings, fo).ValueOrDie();
  });
  run("community detection (Louvain, problem row)", [&] { ml::Louvain(g); });
  run("recommendation system (top-k links)", [&] {
    ml::TopKPredictedLinks(g, 10, ml::LinkScore::kAdamicAdar);
  });
  run("link prediction (AUC protocol)", [&] {
    std::vector<std::pair<VertexId, VertexId>> held;
    for (VertexId v = 0; v + 1 < 20; v += 2) held.emplace_back(v, v + 1);
    ml::LinkPredictionAuc(g, held, ml::LinkScore::kCommonNeighbors, 200, 1)
        .ValueOrDie();
  });
  run("influence maximization (CELF, k=3)", [&] {
    ml::InfluenceOptions io;
    io.num_simulations = 30;
    ml::CelfInfluenceMaximization(g, 3, io).ValueOrDie();
  });

  return VerdictExit(ok);
}
