// Tables 18a/18b: graph sizes found in user emails and issues — reproduced by
// running the size miner over the synthetic corpus (the planted mentions are
// re-extracted from raw text, not copied).
#include <cstdio>

#include "common/table.h"
#include "survey/corpus.h"
#include "survey/miner.h"
#include "survey/paper_data.h"

#include "table_common.h"

int main() {
  using namespace ubigraph;
  using namespace ubigraph::survey;

  auto corpus = MessageCorpus::Synthesize();
  if (!corpus.ok()) {
    std::printf("corpus synthesis failed: %s\n", corpus.status().ToString().c_str());
    return 1;
  }
  MinedSizes mined = MineGraphSizes(*corpus);

  bool ok = true;
  TextTable vertices({"Vertices", "Paper", "Mined", "Match"});
  const auto& va = Table18aEmailVertexSizes();
  for (size_t i = 0; i < va.size(); ++i) {
    bool match = mined.vertex_bands[i] == va[i].count;
    vertices.AddRow({va[i].label, std::to_string(va[i].count),
                     std::to_string(mined.vertex_bands[i]),
                     match ? "yes" : "NO"});
    ok = ok && match;
  }
  std::puts("Table 18a — vertex counts mentioned in emails/issues");
  std::fputs(vertices.RenderAscii().c_str(), stdout);

  TextTable edges({"Edges", "Paper", "Mined", "Match"});
  const auto& ea = Table18bEmailEdgeSizes();
  for (size_t i = 0; i < ea.size(); ++i) {
    bool match = mined.edge_bands[i] == ea[i].count;
    edges.AddRow({ea[i].label, std::to_string(ea[i].count),
                  std::to_string(mined.edge_bands[i]), match ? "yes" : "NO"});
    ok = ok && match;
  }
  std::puts("Table 18b — edge counts mentioned in emails/issues");
  std::fputs(edges.RenderAscii().c_str(), stdout);
  return VerdictExit(ok);
}
