// Traversal microbenchmarks: BFS/DFS across graph scales (Table 11 workloads).
#include <benchmark/benchmark.h>

#include "algorithms/traversal.h"

#include "perf_common.h"
#include "perf_obs.h"

namespace ubigraph {
namespace {

void BM_BfsDistances(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  const VertexId root = bench::BfsRoot(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::BfsDistances(g, root));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_BfsDistances)->Arg(10)->Arg(13)->Arg(16);

// Parallel level-synchronous BFS at a fixed scale; Arg = num_threads
// (1 = serial baseline).
void BM_BfsDistancesParallel(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(16);
  const VertexId root = bench::BfsRoot(g);
  algo::BfsOptions opts;
  opts.num_threads = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::BfsDistances(g, root, opts));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_BfsDistancesParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Direction-optimizing BFS; Args = {scale, num_threads}. Scale 20 is the
// acceptance-scale comparison against BM_BfsPush below, scale 12 feeds the
// ci/perf_smoke.sh regression gate.
void BM_BfsHybrid(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const CsrGraph& g = bench::RmatGraph(scale, /*in_edges=*/true);
  const VertexId root = bench::BfsRoot(g);
  algo::HybridBfsOptions opts;
  opts.num_threads = static_cast<uint32_t>(state.range(1));
  bench::WorkProbe work({"bfs.hybrid.edges_scanned"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::HybridBfs(g, root, opts).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  work.Flush(state);
  state.SetLabel("kernel=bfs mode=hybrid graph=rmat" + std::to_string(scale));
  state.counters["threads"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_BfsHybrid)
    ->Args({12, 1})
    ->Args({12, 4})
    ->Args({20, 1})
    ->Args({20, 2})
    ->Args({20, 4})
    ->Args({20, 8});

// Direction-optimizing BFS on the road-like corpus shape: bounded degree and
// ~sqrt(V) diameter means thousands of thin frontiers instead of RMAT's few
// fat ones — the regime where per-round overheads dominate. Args = {scale,
// num_threads}; scale 12 feeds ci/perf_smoke.sh.
void BM_BfsHybridRoad(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const CsrGraph& g = bench::RoadGraph(scale);
  const VertexId root = bench::BfsRoot(g);
  algo::HybridBfsOptions opts;
  opts.num_threads = static_cast<uint32_t>(state.range(1));
  bench::WorkProbe work({"bfs.hybrid.edges_scanned"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::HybridBfs(g, root, opts).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  work.Flush(state);
  state.SetLabel("kernel=bfs mode=hybrid graph=road" + std::to_string(scale));
  state.counters["threads"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_BfsHybridRoad)->Args({12, 1})->Args({12, 4})->Args({18, 1})->Args({18, 4});

// Push-only level-synchronous baseline on the same graphs as BM_BfsHybrid.
void BM_BfsPush(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const CsrGraph& g = bench::RmatGraph(scale, /*in_edges=*/true);
  const VertexId root = bench::BfsRoot(g);
  algo::BfsOptions opts;
  opts.num_threads = static_cast<uint32_t>(state.range(1));
  bench::WorkProbe work({"bfs.edges_relaxed"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::BfsDistances(g, root, opts));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  work.Flush(state);
  state.SetLabel("kernel=bfs mode=push graph=rmat" + std::to_string(scale));
  state.counters["threads"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_BfsPush)->Args({12, 1})->Args({20, 1})->Args({20, 8});

// Multi-source BFS from 16 spread-out roots (landmark-sketch workload);
// Arg = num_threads.
void BM_MultiSourceBfs(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(16);
  std::vector<VertexId> sources;
  for (VertexId i = 0; i < 16; ++i) {
    sources.push_back(i * (g.num_vertices() / 16));
  }
  algo::BfsOptions opts;
  opts.num_threads = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::MultiSourceBfs(g, sources, opts));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_MultiSourceBfs)->Arg(1)->Arg(4);

void BM_DfsPreorder(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::DfsPreorder(g, 0));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_DfsPreorder)->Arg(10)->Arg(13)->Arg(16);

void BM_TwoHopNeighborhood(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  VertexId v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::NeighborsWithinHops(g, v, 2));
    v = (v + 1) % g.num_vertices();
  }
}
BENCHMARK(BM_TwoHopNeighborhood)->Arg(10)->Arg(13);

void BM_TopologicalSortDag(benchmark::State& state) {
  // A layered DAG (grid) of the requested scale.
  VertexId side = static_cast<VertexId>(1u << (state.range(0) / 2));
  auto g = CsrGraph::FromEdges(gen::Grid(side, side)).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::TopologicalSort(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_TopologicalSortDag)->Arg(10)->Arg(14);

}  // namespace
}  // namespace ubigraph

UBIGRAPH_BENCHMARK_MAIN_WITH_OBS();
