// Tables 7a/7b/7c: topology (directed / multigraph) and the data types stored
// on vertices and edges — the type system PropertyGraph implements.
#include "table_common.h"

int main() {
  using namespace ubigraph::survey;
  bool ok = true;
  ok &= ReportQuestion("directedness", "Table 7a — directed vs. undirected");
  ok &= ReportQuestion("multiplicity", "Table 7b — simple vs. multigraphs");
  ok &= ReportQuestion("vertex_data_types", "Table 7c — data types on vertices");
  ok &= ReportQuestion("edge_data_types", "Table 7c — data types on edges");
  return VerdictExit(ok);
}
