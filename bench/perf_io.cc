// Storage-format serialization/parsing (Table 17 formats). Binary should
// dominate the text formats — the shape the survey's scalability complaints
// about "inefficient loading" predict.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "gen/generators.h"
#include "io/binary_io.h"
#include "io/csv_io.h"
#include "io/edge_list_io.h"
#include "io/gml_io.h"
#include "io/graphml_io.h"
#include "io/json_io.h"

namespace ubigraph {
namespace {

EdgeList BenchEdges() {
  Rng rng(11);
  return gen::ErdosRenyi(1 << 12, 8 << 12, &rng).ValueOrDie();
}

void BM_WriteEdgeListText(benchmark::State& state) {
  EdgeList el = BenchEdges();
  for (auto _ : state) benchmark::DoNotOptimize(io::WriteEdgeListText(el));
}
BENCHMARK(BM_WriteEdgeListText);

void BM_ParseEdgeListText(benchmark::State& state) {
  std::string text = io::WriteEdgeListText(BenchEdges());
  for (auto _ : state) benchmark::DoNotOptimize(io::ParseEdgeListText(text));
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_ParseEdgeListText);

void BM_ParseCsv(benchmark::State& state) {
  std::string text = io::WriteCsvEdges(BenchEdges());
  for (auto _ : state) benchmark::DoNotOptimize(io::ParseCsvEdges(text));
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_ParseCsv);

void BM_ParseGraphMl(benchmark::State& state) {
  std::string text = io::WriteGraphMl(BenchEdges());
  for (auto _ : state) benchmark::DoNotOptimize(io::ParseGraphMl(text));
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_ParseGraphMl);

void BM_ParseGml(benchmark::State& state) {
  std::string text = io::WriteGml(BenchEdges());
  for (auto _ : state) benchmark::DoNotOptimize(io::ParseGml(text));
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_ParseGml);

void BM_ParseJson(benchmark::State& state) {
  std::string text = io::WriteJsonGraph(BenchEdges());
  for (auto _ : state) benchmark::DoNotOptimize(io::ParseJsonGraph(text));
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_ParseJson);

void BM_ParseBinary(benchmark::State& state) {
  std::string data = io::WriteBinaryGraph(BenchEdges());
  for (auto _ : state) benchmark::DoNotOptimize(io::ParseBinaryGraph(data));
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_ParseBinary);

void BM_WriteBinary(benchmark::State& state) {
  EdgeList el = BenchEdges();
  for (auto _ : state) benchmark::DoNotOptimize(io::WriteBinaryGraph(el));
}
BENCHMARK(BM_WriteBinary);

}  // namespace
}  // namespace ubigraph

BENCHMARK_MAIN();
