// Shortest paths (Table 9 #3): serial Dijkstra vs bucket-based delta-stepping
// on the same weighted RMAT graphs, plus the Bellman-Ford, bidirectional-BFS
// and point-to-point baselines. Scale-12 cases feed ci/perf_smoke.sh.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "algorithms/shortest_path.h"

#include "perf_common.h"
#include "perf_obs.h"

namespace ubigraph {
namespace {

void BM_Dijkstra(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const CsrGraph& g = bench::WeightedRmatGraph(scale);
  const VertexId root = bench::BfsRoot(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::Dijkstra(g, root).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  // Dijkstra with a lazy heap relaxes each settled vertex's out-edges once.
  bench::SetWorkItems(state, static_cast<double>(g.num_edges()));
  state.SetLabel("kernel=sssp mode=dijkstra graph=rmatw" +
                 std::to_string(scale));
  state.counters["threads"] = 1;
}
BENCHMARK(BM_Dijkstra)->Args({12, 1})->Args({16, 1})->Args({20, 1})
    ->Unit(benchmark::kMillisecond);

void BM_DeltaStepping(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const uint32_t threads = static_cast<uint32_t>(state.range(1));
  const CsrGraph& g = bench::WeightedRmatGraph(scale);
  const VertexId root = bench::BfsRoot(g);
  algo::SsspOptions opts;
  opts.num_threads = threads;
  bench::WorkProbe work({"sssp.delta.relaxations"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::DeltaSteppingSssp(g, root, opts).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  work.Flush(state);
  state.SetLabel("kernel=sssp mode=delta_stepping graph=rmatw" +
                 std::to_string(scale));
  state.counters["threads"] = threads;
}
BENCHMARK(BM_DeltaStepping)
    ->Args({12, 1})
    ->Args({12, 4})
    ->Args({20, 1})
    ->Args({20, 2})
    ->Args({20, 4})
    ->Args({20, 8})
    ->Unit(benchmark::kMillisecond);

void BM_BellmanFord(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const CsrGraph& g = bench::WeightedRmatGraph(scale);
  const VertexId root = bench::BfsRoot(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::BellmanFord(g, root));
  }
  state.SetLabel("kernel=sssp mode=bellman_ford graph=rmatw" +
                 std::to_string(scale));
  state.counters["threads"] = 1;
}
BENCHMARK(BM_BellmanFord)->Args({8, 1})->Args({10, 1});

void BM_BidirectionalBfs(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const CsrGraph& g = bench::RmatGraph(scale, /*in_edges=*/true);
  Rng rng(1);
  for (auto _ : state) {
    VertexId s = static_cast<VertexId>(rng.NextBounded(g.num_vertices()));
    VertexId t = static_cast<VertexId>(rng.NextBounded(g.num_vertices()));
    benchmark::DoNotOptimize(algo::BidirectionalBfsDistance(g, s, t));
  }
  state.SetLabel("kernel=sssp mode=bidirectional_bfs graph=rmat" +
                 std::to_string(scale));
  state.counters["threads"] = 1;
}
BENCHMARK(BM_BidirectionalBfs)->Args({10, 1})->Args({13, 1})->Args({16, 1});

void BM_PointToPointDijkstra(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const CsrGraph& g = bench::WeightedRmatGraph(scale);
  Rng rng(2);
  for (auto _ : state) {
    VertexId s = static_cast<VertexId>(rng.NextBounded(g.num_vertices()));
    VertexId t = static_cast<VertexId>(rng.NextBounded(g.num_vertices()));
    benchmark::DoNotOptimize(algo::DijkstraPointToPoint(g, s, t));
  }
  state.SetLabel("kernel=sssp mode=p2p_dijkstra graph=rmatw" +
                 std::to_string(scale));
  state.counters["threads"] = 1;
}
BENCHMARK(BM_PointToPointDijkstra)->Args({10, 1})->Args({13, 1});

}  // namespace
}  // namespace ubigraph

UBIGRAPH_BENCHMARK_MAIN_WITH_OBS();
