// Shortest paths (Table 9 #3).
#include <benchmark/benchmark.h>

#include "algorithms/shortest_path.h"

#include "perf_common.h"

namespace ubigraph {
namespace {

void BM_Dijkstra(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::Dijkstra(g, 0));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_Dijkstra)->Arg(10)->Arg(13)->Arg(16);

void BM_BellmanFord(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::BellmanFord(g, 0));
  }
}
BENCHMARK(BM_BellmanFord)->Arg(8)->Arg(10);

void BM_BidirectionalBfs(benchmark::State& state) {
  const CsrGraph& g =
      bench::RmatGraph(static_cast<uint32_t>(state.range(0)), /*in_edges=*/true);
  Rng rng(1);
  for (auto _ : state) {
    VertexId s = static_cast<VertexId>(rng.NextBounded(g.num_vertices()));
    VertexId t = static_cast<VertexId>(rng.NextBounded(g.num_vertices()));
    benchmark::DoNotOptimize(algo::BidirectionalBfsDistance(g, s, t));
  }
}
BENCHMARK(BM_BidirectionalBfs)->Arg(10)->Arg(13)->Arg(16);

void BM_PointToPointDijkstra(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  Rng rng(2);
  for (auto _ : state) {
    VertexId s = static_cast<VertexId>(rng.NextBounded(g.num_vertices()));
    VertexId t = static_cast<VertexId>(rng.NextBounded(g.num_vertices()));
    benchmark::DoNotOptimize(algo::DijkstraPointToPoint(g, s, t));
  }
}
BENCHMARK(BM_PointToPointDijkstra)->Arg(10)->Arg(13);

}  // namespace
}  // namespace ubigraph

BENCHMARK_MAIN();
