// Table 12: software used for graph queries and computations, including the
// academic column and the paper's DGPS-unpopularity observation.
#include <cstdio>

#include "survey/academic.h"

#include "table_common.h"

int main() {
  using namespace ubigraph::survey;
  bool ok = ReportQuestion("query_software",
                           "Table 12 — software for queries and computations");

  auto corpus = AcademicCorpus::SynthesizeExact().ValueOrDie();
  auto counts = corpus.CountQuerySoftware();
  const auto& rows = Table12QuerySoftware();
  std::puts("Academic column: paper vs mined from the 90-paper corpus");
  for (size_t i = 0; i < rows.size(); ++i) {
    bool match = counts[i] == rows[i].academic;
    std::printf("  %-42s paper=%2d repro=%2d %s\n", rows[i].label,
                rows[i].academic, counts[i], match ? "yes" : "NO");
    ok = ok && match;
  }

  // The paper's observation: DGPSes dominate academia (17 papers) but only 6
  // practitioners use them.
  auto tally = SharedPopulation().Tabulate("query_software");
  std::printf("\nDGPS gap: practitioners=%d (paper: 6) vs papers=%d (paper: 17)\n",
              tally[5].practitioners, counts[5]);
  ok = ok && tally[5].practitioners == 6 && counts[5] == 17;
  return VerdictExit(ok);
}
