// Merges one or more BENCH.json files and compares them against a checked-in
// baseline, exiting non-zero when any shared benchmark regressed by more than
// the allowed fraction of median real ns. With --write-baseline the merged
// measurements replace the baseline instead (no comparison). Used by
// ci/perf_smoke.sh.
//
// Usage:
//   bench_compare <baseline.json> <max_regression> <current.json>...
//   bench_compare --write-baseline <baseline.json> <current.json>...
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "io/json_value.h"

namespace {

using ubigraph::io::JsonValue;

struct Record {
  std::string kernel, mode, graph;
  int64_t threads = 1;
  double median_real_ns = 0.0;
  double edges_per_second = 0.0;
  double bytes_per_edge = 0.0;  // 0 for benches that don't report compression
  double work_items = 0.0;      // 0 for benches that don't report batch work
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string GetString(const JsonValue* entry, const char* key) {
  const JsonValue* v = entry->Get(key);
  return v != nullptr && v->kind == JsonValue::kString ? v->string : "";
}

double GetNumber(const JsonValue* entry, const char* key) {
  const JsonValue* v = entry->Get(key);
  return v != nullptr && v->kind == JsonValue::kNumber ? v->number : 0.0;
}

/// Parses one BENCH.json array into `out` (later files override earlier
/// entries with the same name).
void LoadRecords(const std::string& path, std::map<std::string, Record>* out) {
  auto doc = ubigraph::io::ParseJsonValue(ReadFile(path));
  if (!doc.ok() || (*doc)->kind != JsonValue::kArray) {
    std::fprintf(stderr, "bench_compare: %s is not a JSON array\n",
                 path.c_str());
    std::exit(2);
  }
  for (const auto& entry : (*doc)->array) {
    std::string name = GetString(entry.get(), "name");
    if (name.empty()) continue;
    Record r;
    r.kernel = GetString(entry.get(), "kernel");
    r.mode = GetString(entry.get(), "mode");
    r.graph = GetString(entry.get(), "graph");
    r.threads = static_cast<int64_t>(GetNumber(entry.get(), "threads"));
    r.median_real_ns = GetNumber(entry.get(), "median_real_ns");
    r.edges_per_second = GetNumber(entry.get(), "edges_per_second");
    r.bytes_per_edge = GetNumber(entry.get(), "bytes_per_edge");
    r.work_items = GetNumber(entry.get(), "work_items");
    (*out)[name] = r;
  }
}

bool WriteRecords(const std::string& path,
                  const std::map<std::string, Record>& records) {
  std::ofstream out(path);
  if (!out) return false;
  out << "[\n";
  bool first = true;
  for (const auto& [name, r] : records) {
    if (!first) out << ",\n";
    first = false;
    out << "  {\"name\": \"" << name << "\", \"kernel\": \"" << r.kernel
        << "\", \"mode\": \"" << r.mode << "\", \"graph\": \"" << r.graph
        << "\", \"threads\": " << r.threads
        << ", \"median_real_ns\": " << r.median_real_ns
        << ", \"edges_per_second\": " << r.edges_per_second
        << ", \"bytes_per_edge\": " << r.bytes_per_edge
        << ", \"work_items\": " << r.work_items << "}";
  }
  out << "\n]\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  const bool write_baseline =
      argc > 1 && std::strcmp(argv[1], "--write-baseline") == 0;
  if ((write_baseline && argc < 4) || (!write_baseline && argc < 4)) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline.json> <max_regression> "
                 "<current.json>...\n"
                 "       bench_compare --write-baseline <baseline.json> "
                 "<current.json>...\n");
    return 2;
  }

  if (write_baseline) {
    std::map<std::string, Record> merged;
    for (int i = 3; i < argc; ++i) LoadRecords(argv[i], &merged);
    if (merged.empty() || !WriteRecords(argv[2], merged)) {
      std::fprintf(stderr, "bench_compare: could not write baseline %s\n",
                   argv[2]);
      return 2;
    }
    std::printf("bench_compare: wrote %zu record(s) to %s\n", merged.size(),
                argv[2]);
    return 0;
  }

  const double max_regression = std::atof(argv[2]);
  std::map<std::string, Record> baseline;
  LoadRecords(argv[1], &baseline);
  std::map<std::string, Record> current;
  for (int i = 3; i < argc; ++i) LoadRecords(argv[i], &current);

  int regressions = 0;
  int compared = 0;
  for (const auto& [name, base] : baseline) {
    auto it = current.find(name);
    if (it == current.end()) {
      std::fprintf(stderr, "  MISSING  %s (in baseline, not measured)\n",
                   name.c_str());
      continue;
    }
    ++compared;
    const double ratio = base.median_real_ns > 0
                             ? it->second.median_real_ns / base.median_real_ns
                             : 1.0;
    const bool bad = ratio > 1.0 + max_regression;
    std::printf("  %s  %-45s  %12.0f ns vs %12.0f ns  (%+.1f%%)\n",
                bad ? "REGRESS" : "ok     ", name.c_str(),
                it->second.median_real_ns, base.median_real_ns,
                (ratio - 1.0) * 100.0);
    if (bad) ++regressions;
  }
  if (compared == 0) {
    std::fprintf(stderr, "bench_compare: no overlapping benchmarks\n");
    return 2;
  }
  if (regressions > 0) {
    std::fprintf(stderr,
                 "bench_compare: %d benchmark(s) regressed more than %.0f%%\n",
                 regressions, max_regression * 100.0);
    return 1;
  }
  std::printf("bench_compare: %d benchmark(s) within %.0f%% of baseline\n",
              compared, max_regression * 100.0);
  return 0;
}
