// Merges one or more BENCH.json files and compares them against a checked-in
// baseline, exiting non-zero when any shared benchmark regressed beyond the
// noise-aware allowance (max_regression + both records' rel_spread). With
// --write-baseline the merged measurements replace the baseline instead (no
// comparison). With --require-work-items, any current record whose
// machine-independent work counter is missing-in-effect (<= 0) also fails the
// gate. With --gate-memory, peak_segment_bytes / peak_msg_bytes /
// peak_rss_bytes are gated too when both sides report them (RSS gets a more
// generous allowance; see CompareOptions). Malformed input — not a JSON
// array, missing/mistyped required fields, NaN rates — is a hard error
// (exit 2), never a silent skip. Used by ci/perf_smoke.sh.
//
// Usage:
//   bench_compare [--require-work-items] [--gate-memory] <baseline.json> <max_regression> <current.json>...
//   bench_compare --write-baseline <baseline.json> <current.json>...
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "bench_compare_lib.h"

namespace {

using ubigraph::benchcmp::Compare;
using ubigraph::benchcmp::CompareOptions;
using ubigraph::benchcmp::Comparison;
using ubigraph::benchcmp::FormatRecords;
using ubigraph::benchcmp::LoadRecords;
using ubigraph::benchcmp::Record;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void LoadOrDie(const std::string& path, std::map<std::string, Record>* out) {
  ubigraph::Status st = LoadRecords(ReadFile(path), path, out);
  if (!st.ok()) {
    std::fprintf(stderr, "bench_compare: %s\n", st.message().c_str());
    std::exit(2);
  }
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_compare [--require-work-items] [--gate-memory] "
               "<baseline.json> <max_regression> <current.json>...\n"
               "       bench_compare --write-baseline <baseline.json> "
               "<current.json>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int arg = 1;
  bool write_baseline = false;
  CompareOptions options;
  while (arg < argc && std::strncmp(argv[arg], "--", 2) == 0) {
    if (std::strcmp(argv[arg], "--write-baseline") == 0) {
      write_baseline = true;
    } else if (std::strcmp(argv[arg], "--require-work-items") == 0) {
      options.require_work_items = true;
    } else if (std::strcmp(argv[arg], "--gate-memory") == 0) {
      options.gate_memory = true;
    } else {
      return Usage();
    }
    ++arg;
  }

  if (write_baseline) {
    if (argc - arg < 2) return Usage();
    const std::string baseline_path = argv[arg++];
    std::map<std::string, Record> merged;
    for (; arg < argc; ++arg) LoadOrDie(argv[arg], &merged);
    std::ofstream out(baseline_path);
    if (merged.empty() || !(out << FormatRecords(merged))) {
      std::fprintf(stderr, "bench_compare: could not write baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::printf("bench_compare: wrote %zu record(s) to %s\n", merged.size(),
                baseline_path.c_str());
    return 0;
  }

  if (argc - arg < 3) return Usage();
  std::map<std::string, Record> baseline;
  LoadOrDie(argv[arg++], &baseline);
  options.max_regression = std::atof(argv[arg++]);
  std::map<std::string, Record> current;
  for (; arg < argc; ++arg) LoadOrDie(argv[arg], &current);

  const Comparison cmp = Compare(baseline, current, options);
  std::fputs(cmp.report.c_str(), stdout);
  if (cmp.compared == 0) {
    std::fprintf(stderr, "bench_compare: no overlapping benchmarks\n");
    return 2;
  }
  if (cmp.regressions > 0 || cmp.work_violations > 0 ||
      cmp.mem_regressions > 0) {
    std::fprintf(stderr,
                 "bench_compare: %d benchmark(s) regressed beyond allowance, "
                 "%d missing work counters, %d memory counter(s) grew past "
                 "their gate\n",
                 cmp.regressions, cmp.work_violations, cmp.mem_regressions);
    return 1;
  }
  std::printf(
      "bench_compare: %d benchmark(s) within allowance (base %.0f%% + "
      "per-record spread)%s\n",
      cmp.compared, options.max_regression * 100.0,
      options.require_work_items ? ", all carrying work counters" : "");
  return 0;
}
