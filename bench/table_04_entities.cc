// Table 4: real-world entities represented by participants' graphs, plus the
// academic-papers column ("A" row) recomputed from the calibrated 90-paper
// corpus.
#include <cstdio>

#include "survey/academic.h"

#include "table_common.h"

int main() {
  using namespace ubigraph::survey;
  bool ok = ReportQuestion("entities",
                           "Table 4 — entities represented (survey columns)");

  auto corpus = AcademicCorpus::SynthesizeExact();
  if (!corpus.ok()) {
    std::printf("academic corpus failed: %s\n", corpus.status().ToString().c_str());
    return 1;
  }
  std::puts("Academic column (A row): paper vs mined from the 90-paper corpus");
  auto counts = corpus->CountEntities();
  const auto& rows = Table4Entities();
  for (size_t i = 0; i < rows.size(); ++i) {
    bool match = counts[i] == rows[i].academic;
    std::printf("  %-28s paper=%2d repro=%2d %s\n", rows[i].label,
                rows[i].academic, counts[i], match ? "yes" : "NO");
    ok = ok && match;
  }
  return VerdictExit(ok);
}
