// CSR construction: serial vs parallel FromEdges (degree count + prefix sum
// + scatter + neighbor sort all parallelize; arrays stay bitwise-identical
// to the serial build at any thread count).
#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "graph/csr_graph.h"
#include "perf_common.h"
#include "perf_obs.h"

namespace ubigraph {
namespace {

/// Cached RMAT edge list at 2^scale vertices, 8 edges per vertex.
const EdgeList& RmatEdges(uint32_t scale) {
  static std::map<uint32_t, EdgeList> cache;
  auto it = cache.find(scale);
  if (it == cache.end()) {
    Rng rng(scale * 9176ULL + 3);
    it = cache
             .emplace(scale, gen::Rmat(scale, static_cast<uint64_t>(8) << scale,
                                       &rng)
                                 .ValueOrDie())
             .first;
  }
  return it->second;
}

// Args = {scale, num_threads}. Each iteration copies the cached edge list
// (FromEdges consumes it) outside the timed region, then builds.
void CsrBuildBench(benchmark::State& state, CsrOptions opts,
                   const char* mode_name) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const EdgeList& edges = RmatEdges(scale);
  opts.num_threads = static_cast<uint32_t>(state.range(1));
  // Measure the true parallel path even when the input is below the
  // serial-fallback cutoff (or the host is single-core).
  opts.min_parallel_edges = 0;
  for (auto _ : state) {
    state.PauseTiming();
    EdgeList copy = edges;
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        CsrGraph::FromEdges(std::move(copy), opts).ValueOrDie());
  }
  state.SetItemsProcessed(state.iterations() * edges.edges().size());
  // Builds touch every input edge exactly once per pass; the edge count is
  // the machine-independent work.
  bench::SetWorkItems(state, static_cast<double>(edges.edges().size()));
  state.SetLabel(std::string("kernel=csr_build mode=") + mode_name +
                 " graph=rmat" + std::to_string(scale));
  state.counters["threads"] = static_cast<double>(state.range(1));
}

void BM_CsrBuildDirected(benchmark::State& state) {
  CsrBuildBench(state, CsrOptions{}, "directed");
}
void BM_CsrBuildDirectedInEdges(benchmark::State& state) {
  CsrOptions opts;
  opts.build_in_edges = true;
  CsrBuildBench(state, opts, "directed_in");
}
void BM_CsrBuildUndirected(benchmark::State& state) {
  CsrOptions opts;
  opts.directed = false;
  CsrBuildBench(state, opts, "undirected");
}
void BM_CsrBuildUnsorted(benchmark::State& state) {
  CsrOptions opts;
  opts.sort_neighbors = false;
  CsrBuildBench(state, opts, "unsorted");
}

#define CSR_BUILD_ARGS \
  Args({12, 1})->Args({20, 1})->Args({20, 2})->Args({20, 4})->Args({20, 8})
BENCHMARK(BM_CsrBuildDirected)->CSR_BUILD_ARGS;
BENCHMARK(BM_CsrBuildDirectedInEdges)->CSR_BUILD_ARGS;
BENCHMARK(BM_CsrBuildUndirected)->CSR_BUILD_ARGS;
BENCHMARK(BM_CsrBuildUnsorted)->Args({20, 1})->Args({20, 8});
#undef CSR_BUILD_ARGS

}  // namespace
}  // namespace ubigraph

UBIGRAPH_BENCHMARK_MAIN_WITH_OBS();
