// Visualization layouts (the survey's #2 challenge): layout cost and the
// coarsening path that makes large graphs drawable.
#include <benchmark/benchmark.h>

#include "ml/louvain.h"
#include "viz/coarsen.h"
#include "viz/layout.h"
#include "viz/svg_export.h"

#include "perf_common.h"

namespace ubigraph {
namespace {

void BM_ForceDirectedLayout(benchmark::State& state) {
  const CsrGraph& g = bench::SmallWorldGraph(static_cast<VertexId>(state.range(0)));
  viz::ForceLayoutOptions opts;
  opts.iterations = 50;
  for (auto _ : state) {
    benchmark::DoNotOptimize(viz::ForceDirectedLayout(g, opts));
  }
}
BENCHMARK(BM_ForceDirectedLayout)->Arg(100)->Arg(400)->Arg(1600);

void BM_HierarchicalLayout(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(viz::HierarchicalLayout(g));
  }
}
BENCHMARK(BM_HierarchicalLayout)->Arg(10)->Arg(13);

void BM_SvgRender(benchmark::State& state) {
  const CsrGraph& g = bench::SmallWorldGraph(static_cast<VertexId>(state.range(0)));
  viz::Layout layout = viz::CircularLayout(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(viz::RenderSvg(g, layout));
  }
}
BENCHMARK(BM_SvgRender)->Arg(400)->Arg(1600);

void BM_LargeGraphViaCoarsening(benchmark::State& state) {
  // The large-graph visualization pipeline: Louvain communities -> coarsen ->
  // force layout of the community graph.
  const CsrGraph& g = bench::SmallWorldGraph(static_cast<VertexId>(state.range(0)));
  for (auto _ : state) {
    auto communities = ml::Louvain(g);
    auto coarse =
        viz::CoarsenByGroups(g, communities.community, communities.num_communities)
            .ValueOrDie();
    viz::ForceLayoutOptions opts;
    opts.iterations = 50;
    benchmark::DoNotOptimize(viz::ForceDirectedLayout(coarse.graph, opts));
  }
}
BENCHMARK(BM_LargeGraphViaCoarsening)->Arg(2000)->Arg(8000);

void BM_SampleTopDegree(benchmark::State& state) {
  const CsrGraph& g = bench::RmatGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(viz::SampleTopDegree(g, 200));
  }
}
BENCHMARK(BM_SampleTopDegree)->Arg(13)->Arg(16);

}  // namespace
}  // namespace ubigraph

BENCHMARK_MAIN();
