// Shared graph builders for the perf benchmarks.
#pragma once

#include <cstdint>
#include <map>

#include "common/random.h"
#include "gen/generators.h"
#include "graph/csr_graph.h"

namespace ubigraph::bench {

/// Cached RMAT graph at 2^scale vertices with 8 edges per vertex.
inline const CsrGraph& RmatGraph(uint32_t scale, bool in_edges = false) {
  static std::map<std::pair<uint32_t, bool>, CsrGraph> cache;
  auto key = std::make_pair(scale, in_edges);
  auto it = cache.find(key);
  if (it == cache.end()) {
    Rng rng(scale * 1000003ULL + 17);
    uint64_t edges = static_cast<uint64_t>(8) << scale;
    CsrOptions opts;
    opts.build_in_edges = in_edges;
    it = cache.emplace(key, CsrGraph::FromEdges(
                                gen::Rmat(scale, edges, &rng).ValueOrDie(), opts)
                                .ValueOrDie())
             .first;
  }
  return it->second;
}

/// Cached undirected small-world graph (for layout / community benches).
inline const CsrGraph& SmallWorldGraph(VertexId n) {
  static std::map<VertexId, CsrGraph> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    Rng rng(n + 5);
    CsrOptions opts;
    opts.directed = false;
    it = cache.emplace(n, CsrGraph::FromEdges(
                              gen::WattsStrogatz(n, 6, 0.1, &rng).ValueOrDie(),
                              opts)
                              .ValueOrDie())
             .first;
  }
  return it->second;
}

}  // namespace ubigraph::bench
