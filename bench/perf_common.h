// Shared graph builders for the perf benchmarks, plus the BENCH.json
// reporter every perf_* binary emits its results through.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <cmath>
#include <initializer_list>

#include "common/random.h"
#include "gen/generators.h"
#include "graph/csr_graph.h"
#include "obs/metrics.h"

namespace ubigraph::bench {

/// Cached RMAT graph at 2^scale vertices with 8 edges per vertex.
inline const CsrGraph& RmatGraph(uint32_t scale, bool in_edges = false) {
  static std::map<std::pair<uint32_t, bool>, CsrGraph> cache;
  auto key = std::make_pair(scale, in_edges);
  auto it = cache.find(key);
  if (it == cache.end()) {
    Rng rng(scale * 1000003ULL + 17);
    uint64_t edges = static_cast<uint64_t>(8) << scale;
    CsrOptions opts;
    opts.build_in_edges = in_edges;
    it = cache.emplace(key, CsrGraph::FromEdges(
                                gen::Rmat(scale, edges, &rng).ValueOrDie(), opts)
                                .ValueOrDie())
             .first;
  }
  return it->second;
}

/// Cached weighted RMAT graph (same shape as RmatGraph, uniform weights in
/// [0.1, 1.1)) for the SSSP benches: the spread exercises delta-stepping's
/// light/heavy split without degenerating into unit-weight BFS.
inline const CsrGraph& WeightedRmatGraph(uint32_t scale) {
  static std::map<uint32_t, CsrGraph> cache;
  auto it = cache.find(scale);
  if (it == cache.end()) {
    Rng rng(scale * 1000003ULL + 29);
    uint64_t edges = static_cast<uint64_t>(8) << scale;
    EdgeList el = gen::Rmat(scale, edges, &rng).ValueOrDie();
    for (Edge& e : el.mutable_edges()) e.weight = 0.1 + rng.NextDouble();
    it = cache.emplace(scale, CsrGraph::FromEdges(el).ValueOrDie()).first;
  }
  return it->second;
}

/// Cached undirected small-world graph (for layout / community benches).
inline const CsrGraph& SmallWorldGraph(VertexId n) {
  static std::map<VertexId, CsrGraph> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    Rng rng(n + 5);
    CsrOptions opts;
    opts.directed = false;
    it = cache.emplace(n, CsrGraph::FromEdges(
                              gen::WattsStrogatz(n, 6, 0.1, &rng).ValueOrDie(),
                              opts)
                              .ValueOrDie())
             .first;
  }
  return it->second;
}

/// Cached road-like corpus graph: a 2^(scale/2) x 2^(scale-scale/2) lattice
/// (2^scale vertices) with omitted segments and sparse diagonals — the
/// bounded-degree/huge-diameter shape the RMAT-only suite never exercised
/// ("SoK: The Faults in our Graph Benchmarks"). Undirected.
inline const CsrGraph& RoadGraph(uint32_t scale) {
  static std::map<uint32_t, CsrGraph> cache;
  auto it = cache.find(scale);
  if (it == cache.end()) {
    Rng rng(scale * 1000003ULL + 41);
    VertexId rows = static_cast<VertexId>(1u) << (scale / 2);
    VertexId cols = static_cast<VertexId>(1u) << (scale - scale / 2);
    CsrOptions opts;
    opts.directed = false;
    it = cache.emplace(scale,
                       CsrGraph::FromEdges(
                           gen::RoadLike(rows, cols, {}, &rng).ValueOrDie(), opts)
                           .ValueOrDie())
             .first;
  }
  return it->second;
}

/// Cached LFR-style skewed-community corpus graph (2^scale vertices,
/// power-law degrees and community sizes, mu = 0.1). Undirected.
inline const CsrGraph& LfrCommunityGraph(uint32_t scale) {
  static std::map<uint32_t, CsrGraph> cache;
  auto it = cache.find(scale);
  if (it == cache.end()) {
    Rng rng(scale * 1000003ULL + 53);
    VertexId n = static_cast<VertexId>(1u) << scale;
    CsrOptions opts;
    opts.directed = false;
    it = cache.emplace(
                  scale,
                  CsrGraph::FromEdges(
                      gen::LfrCommunity(n, {}, &rng).ValueOrDie().edges, opts)
                      .ValueOrDie())
             .first;
  }
  return it->second;
}

/// Samples a set of obs work counters around a timed loop so the benchmark
/// can report machine-independent work (edges relaxed/scanned, frontier
/// activations) alongside wall-clock. Construct before the `for (auto _ :
/// state)` loop, call Flush(state) after it; the delta is divided by the
/// iteration count, so BENCH.json carries work *per kernel run*.
class WorkProbe {
 public:
  WorkProbe(std::initializer_list<const char*> counter_names)
      : names_(counter_names.begin(), counter_names.end()), start_(Sum()) {}

  void Flush(benchmark::State& state) const {
    state.counters["work_items"] = benchmark::Counter(
        static_cast<double>(Sum() - start_), benchmark::Counter::kAvgIterations);
  }

 private:
  int64_t Sum() const {
    int64_t total = 0;
    for (const char* name : names_) total += obs::CounterValue(name);
    return total;
  }

  std::vector<const char*> names_;
  int64_t start_;
};

/// For benchmarks whose work is a fixed function of the input (CSR builds,
/// permutes, encodes: every iteration touches exactly `per_iteration` items).
inline void SetWorkItems(benchmark::State& state, double per_iteration) {
  state.counters["work_items"] = benchmark::Counter(per_iteration);
}

/// BFS root that actually exercises the kernel: the max-out-degree vertex
/// (RMAT ids are scrambled, so a fixed id like 0 is usually a sink that
/// reaches nothing and turns the benchmark into a no-op).
inline VertexId BfsRoot(const CsrGraph& g) {
  VertexId best = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.OutDegree(v) > g.OutDegree(best)) best = v;
  }
  return best;
}

/// Console reporter that additionally collects every iteration run and can
/// write the unified machine-readable BENCH.json: one record per benchmark
/// with {name, kernel, mode, graph, threads, median real ns/iter, edges/sec}.
/// Benchmarks annotate themselves with `state.SetLabel("kernel=bfs mode=hybrid
/// graph=rmat20")` and `state.counters["threads"] = t`; unannotated fields
/// fall back to the benchmark name / 1 thread.
class BenchJsonReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Sample s;
      s.name = run.benchmark_name();
      s.label = run.report_label;
      const double iters = run.iterations > 0
                               ? static_cast<double>(run.iterations)
                               : 1.0;
      s.real_ns = run.real_accumulated_time / iters * 1e9;
      auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        // google benchmark divides kIsRate counters by *CPU* time. Our
        // multi-threaded kernels do their work on ThreadPool workers while
        // the timed thread blocks in Wait(), so the CPU-time denominator is
        // a small fraction of the wall time and the reported rate is
        // inflated by real/cpu (observed 60-90x in BENCH.json). Scale back
        // to items per real second, which is the physical throughput.
        const double cpu_over_real =
            run.real_accumulated_time > 0.0
                ? run.cpu_accumulated_time / run.real_accumulated_time
                : 1.0;
        s.edges_per_second = items->second.value * cpu_over_real;
      }
      auto bpe = run.counters.find("bytes_per_edge");
      if (bpe != run.counters.end()) s.bytes_per_edge = bpe->second.value;
      auto wi = run.counters.find("work_items");
      if (wi != run.counters.end()) s.work_items = wi->second.value;
      auto psb = run.counters.find("peak_segment_bytes");
      if (psb != run.counters.end()) s.peak_segment_bytes = psb->second.value;
      auto rss = run.counters.find("peak_rss_bytes");
      if (rss != run.counters.end()) s.peak_rss_bytes = rss->second.value;
      auto pmb = run.counters.find("peak_msg_bytes");
      if (pmb != run.counters.end()) s.peak_msg_bytes = pmb->second.value;
      auto threads = run.counters.find("threads");
      if (threads != run.counters.end()) {
        s.threads = static_cast<int64_t>(threads->second.value);
      }
      samples_.push_back(std::move(s));
    }
  }

  /// Writes the collected runs as a JSON array: one record per benchmark
  /// name with the median over its repetitions, the repetition count used,
  /// and the relative spread (max-min)/median of the timing samples. When a
  /// benchmark ran more than twice, the first repetition is discarded as
  /// warmup (cold caches / pool spin-up) before aggregating — the variance
  /// policy ci/perf_smoke.sh's regression gate builds on. Returns false on
  /// I/O failure.
  bool WriteJson(const std::string& path) const {
    // Group in first-appearance order so the file is stable across runs.
    std::vector<std::string> order;
    std::map<std::string, std::vector<const Sample*>> groups;
    for (const Sample& s : samples_) {
      auto [it, inserted] = groups.try_emplace(s.name);
      if (inserted) order.push_back(s.name);
      it->second.push_back(&s);
    }
    std::ofstream out(path);
    if (!out) return false;
    out << "[\n";
    bool first = true;
    for (const std::string& name : order) {
      const auto& runs = groups[name];
      // Warmup discard: the first repetition pays one-off costs the steady
      // state doesn't; drop it whenever enough repetitions remain to still
      // take a median.
      const size_t begin = runs.size() > 2 ? 1 : 0;
      std::vector<double> ns, eps, bpe, wi, psb, rss, pmb;
      for (size_t i = begin; i < runs.size(); ++i) {
        ns.push_back(runs[i]->real_ns);
        eps.push_back(runs[i]->edges_per_second);
        bpe.push_back(runs[i]->bytes_per_edge);
        wi.push_back(runs[i]->work_items);
        psb.push_back(runs[i]->peak_segment_bytes);
        rss.push_back(runs[i]->peak_rss_bytes);
        pmb.push_back(runs[i]->peak_msg_bytes);
      }
      const double med_ns = Median(ns);
      double spread = 0.0;
      if (ns.size() > 1 && med_ns > 0.0) {
        auto [mn, mx] = std::minmax_element(ns.begin(), ns.end());
        spread = (*mx - *mn) / med_ns;
      }
      const Sample* rep = runs.front();
      std::string kernel = LabelField(rep->label, "kernel");
      if (kernel.empty()) kernel = name.substr(0, name.find('/'));
      if (!first) out << ",\n";
      first = false;
      out << "  {\"name\": \"" << JsonEscape(name) << "\""
          << ", \"kernel\": \"" << JsonEscape(kernel) << "\""
          << ", \"mode\": \"" << JsonEscape(LabelField(rep->label, "mode"))
          << "\""
          << ", \"graph\": \"" << JsonEscape(LabelField(rep->label, "graph"))
          << "\""
          << ", \"threads\": " << rep->threads
          << ", \"median_real_ns\": " << Finite(med_ns)
          << ", \"edges_per_second\": " << Finite(Median(eps))
          << ", \"bytes_per_edge\": " << Finite(Median(bpe))
          << ", \"work_items\": " << Finite(Median(wi));
      // Memory fields only where a bench measured them (out-of-core runs):
      // peak_segment_bytes is the cache's adjacency high-water mark,
      // peak_rss_bytes the process-wide getrusage peak that also covers
      // kernel scratch (message buffers) and vertex state.
      if (Median(psb) > 0.0) {
        out << ", \"peak_segment_bytes\": " << Finite(Median(psb));
      }
      if (Median(rss) > 0.0) {
        out << ", \"peak_rss_bytes\": " << Finite(Median(rss));
      }
      // peak_msg_bytes: the message layer's logical high-water mark (0 under
      // dense combine, <= the configured budget when spilling).
      if (Median(pmb) > 0.0) {
        out << ", \"peak_msg_bytes\": " << Finite(Median(pmb));
      }
      out << ", \"repeats\": " << ns.size()
          << ", \"rel_spread\": " << Finite(spread) << "}";
    }
    out << "\n]\n";
    return static_cast<bool>(out);
  }

  bool has_samples() const { return !samples_.empty(); }

 private:
  struct Sample {
    std::string name;
    std::string label;
    double real_ns = 0.0;
    double edges_per_second = 0.0;
    double bytes_per_edge = 0.0;  // 0 unless the bench reports compression
    double work_items = 0.0;  // 0 unless the bench reports per-batch work
    double peak_segment_bytes = 0.0;  // 0 unless out-of-core (perf_sharded)
    double peak_rss_bytes = 0.0;      // 0 unless out-of-core (perf_sharded)
    double peak_msg_bytes = 0.0;      // 0 unless the msg layer buffered
    int64_t threads = 1;
  };

  /// Extracts `key` from a "k1=v1 k2=v2" label; "" when absent.
  static std::string LabelField(const std::string& label,
                                const std::string& key) {
    std::istringstream in(label);
    std::string token;
    while (in >> token) {
      size_t eq = token.find('=');
      if (eq != std::string::npos && token.compare(0, eq, key) == 0) {
        return token.substr(eq + 1);
      }
    }
    return "";
  }

  static double Median(std::vector<double> xs) {
    if (xs.empty()) return 0.0;
    std::sort(xs.begin(), xs.end());
    size_t mid = xs.size() / 2;
    return xs.size() % 2 == 1 ? xs[mid] : 0.5 * (xs[mid - 1] + xs[mid]);
  }

  /// JSON has no NaN/Inf literal; a benchmark bug must not poison the whole
  /// file (bench_compare rejects it loudly), so non-finite values emit as 0.
  static double Finite(double x) { return std::isfinite(x) ? x : 0.0; }

  static std::string JsonEscape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) continue;  // labels are ASCII
      out.push_back(c);
    }
    return out;
  }

  std::vector<Sample> samples_;
};

}  // namespace ubigraph::bench
