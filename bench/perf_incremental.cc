// Incremental maintenance vs. from-scratch recompute under localized update
// streams (Table 8's dynamism workloads). Each pair of benchmarks drives the
// SAME seeded mixed stream — batch-apply on a warm engine vs. a full
// recompute over the live edge set after every batch — and reports the work
// actually performed per batch (edges re-relaxed / arcs scanned) through the
// `work_items` BENCH.json field, so the cost asymmetry is visible next to
// the wall-clock numbers.
#include <benchmark/benchmark.h>

#include <string>
#include <utility>

#include "algorithms/connected_components.h"
#include "algorithms/kcore.h"
#include "algorithms/pagerank.h"
#include "common/random.h"
#include "gen/generators.h"
#include "graph/csr_graph.h"
#include "obs/metrics.h"
#include "stream/incremental_components.h"
#include "stream/incremental_kcore.h"
#include "stream/incremental_pagerank.h"
#include "update_stream_util.h"

#include "perf_common.h"
#include "perf_obs.h"

namespace ubigraph {
namespace {

using test::StreamKind;
using test::UpdateStreamGen;

// Mixed batches confined to a 64-vertex window: the workload where
// maintenance pays (only a corner of the graph ever changes).
constexpr size_t kBatchSize = 16;
constexpr VertexId kWindow = 64;
constexpr double kTolerance = 1e-9;

EdgeList StreamBase(uint32_t scale) {
  Rng rng(scale * 1000003ULL + 41);
  return gen::Rmat(scale, static_cast<uint64_t>(8) << scale, &rng).ValueOrDie();
}

void FinishBatchBench(benchmark::State& state, const char* mode,
                      uint32_t scale, uint64_t work) {
  state.SetLabel(std::string("kernel=incremental mode=") + mode + " graph=rmat" +
                 std::to_string(scale));
  state.counters["threads"] = static_cast<double>(state.range(1));
  state.counters["work_items"] =
      state.iterations() > 0
          ? static_cast<double>(work) / static_cast<double>(state.iterations())
          : 0.0;
}

void BM_IncrementalPageRankBatch(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  UpdateStreamGen gen(StreamBase(scale), 77, {.window = kWindow});
  stream::IncrementalPageRankOptions opts;
  opts.tolerance = kTolerance;
  opts.num_threads = static_cast<uint32_t>(state.range(1));
  auto engine =
      stream::IncrementalPageRank::Create(gen.InitialEdges(), opts).ValueOrDie();
  uint64_t work = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const auto batch = gen.NextBatch(StreamKind::kMixed, kBatchSize);
    state.ResumeTiming();
    work += engine.ApplyBatch(batch).ValueOrDie().edges_rerelaxed;
  }
  FinishBatchBench(state, "pagerank_batch", scale, work);
}
BENCHMARK(BM_IncrementalPageRankBatch)->Args({10, 1})->Args({12, 1});

void BM_PageRankBatchRecompute(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  UpdateStreamGen gen(StreamBase(scale), 77, {.window = kWindow});
  algo::PageRankOptions opts;
  opts.tolerance = kTolerance;
  opts.max_iterations = 200;
  opts.mode = algo::PageRankMode::kPull;
  opts.num_threads = static_cast<uint32_t>(state.range(1));
  uint64_t work = 0;
  for (auto _ : state) {
    state.PauseTiming();
    gen.NextBatch(StreamKind::kMixed, kBatchSize);
    EdgeList live = gen.LiveEdges();
    state.ResumeTiming();
    CsrOptions copts;
    copts.build_in_edges = true;
    auto g = CsrGraph::FromEdges(std::move(live), copts).ValueOrDie();
    auto pr = algo::PageRank(g, opts).ValueOrDie();
    work += static_cast<uint64_t>(pr.iterations) * g.num_edges();
    benchmark::DoNotOptimize(pr.scores.data());
  }
  FinishBatchBench(state, "pagerank_recompute", scale, work);
}
BENCHMARK(BM_PageRankBatchRecompute)->Args({10, 1})->Args({12, 1});

void BM_IncrementalComponentsBatch(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  UpdateStreamGen gen(StreamBase(scale), 78, {.window = kWindow});
  auto engine =
      stream::IncrementalComponents::Create(gen.InitialEdges()).ValueOrDie();
  // The engine reports arcs scanned through the obs registry, not the
  // BatchResult (merges/rebuilds only), so read the counter delta.
  auto& registry = obs::MetricsRegistry::Global();
  registry.Reset();
  registry.set_enabled(true);
  for (auto _ : state) {
    state.PauseTiming();
    const auto batch = gen.NextBatch(StreamKind::kMixed, kBatchSize);
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine.ApplyBatch(batch).ValueOrDie());
  }
  const uint64_t work = static_cast<uint64_t>(
      registry.GetCounter("stream.incremental.components.edges_rerelaxed")
          ->Value());
  registry.set_enabled(false);
  FinishBatchBench(state, "components_batch", scale, work);
}
BENCHMARK(BM_IncrementalComponentsBatch)->Args({10, 1})->Args({12, 1});

void BM_ComponentsBatchRecompute(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  UpdateStreamGen gen(StreamBase(scale), 78, {.window = kWindow});
  uint64_t work = 0;
  for (auto _ : state) {
    state.PauseTiming();
    gen.NextBatch(StreamKind::kMixed, kBatchSize);
    EdgeList live = gen.LiveEdges();
    state.ResumeTiming();
    auto g = CsrGraph::FromEdges(std::move(live)).ValueOrDie();
    benchmark::DoNotOptimize(algo::WeaklyConnectedComponents(g));
    work += g.num_edges();
  }
  FinishBatchBench(state, "components_recompute", scale, work);
}
BENCHMARK(BM_ComponentsBatchRecompute)->Args({10, 1})->Args({12, 1});

void BM_IncrementalKCoreBatch(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  UpdateStreamGen gen(StreamBase(scale), 79, {.window = kWindow});
  const EdgeList init = gen.InitialEdges();
  stream::IncrementalKCore engine(init.num_vertices());
  for (const Edge& e : init.edges()) engine.InsertEdge(e.src, e.dst).Abort();
  uint64_t work = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const auto batch = gen.NextBatch(StreamKind::kMixed, kBatchSize);
    state.ResumeTiming();
    work += engine.ApplyBatch(batch).ValueOrDie().edges_rerelaxed;
  }
  FinishBatchBench(state, "kcore_batch", scale, work);
}
BENCHMARK(BM_IncrementalKCoreBatch)->Args({10, 1})->Args({12, 1});

void BM_KCoreBatchRecompute(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  UpdateStreamGen gen(StreamBase(scale), 79, {.window = kWindow});
  uint64_t work = 0;
  for (auto _ : state) {
    state.PauseTiming();
    gen.NextBatch(StreamKind::kMixed, kBatchSize);
    EdgeList live = gen.LiveEdges();
    state.ResumeTiming();
    CsrOptions copts;
    copts.directed = false;
    auto g = CsrGraph::FromEdges(std::move(live), copts).ValueOrDie();
    benchmark::DoNotOptimize(algo::CoreDecomposition(g));
    work += g.num_edges();  // undirected CSR already counts both arcs
  }
  FinishBatchBench(state, "kcore_recompute", scale, work);
}
BENCHMARK(BM_KCoreBatchRecompute)->Args({10, 1})->Args({12, 1});

}  // namespace
}  // namespace ubigraph

UBIGRAPH_BENCHMARK_MAIN_WITH_OBS();
