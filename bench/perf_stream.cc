// Streaming-graph ingestion (Table 8's streaming workloads): edges/sec with
// incremental triangle and component maintenance.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "stream/streaming_graph.h"

namespace ubigraph {
namespace {

void BM_StreamIngest(benchmark::State& state) {
  const VertexId n = 10000;
  Rng rng(21);
  for (auto _ : state) {
    state.PauseTiming();
    stream::StreamingOptions opts;
    opts.window = static_cast<uint64_t>(state.range(0));
    stream::StreamingGraph g(n, opts);
    state.ResumeTiming();
    for (uint64_t t = 1; t <= 20000; ++t) {
      VertexId u = static_cast<VertexId>(rng.NextBounded(n));
      VertexId v = static_cast<VertexId>(rng.NextBounded(n));
      if (u != v) g.AddEdge(u, v, t).Abort();
    }
    benchmark::DoNotOptimize(g.TriangleCount());
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_StreamIngest)->Arg(1000)->Arg(5000)->Arg(20000);

void BM_StreamComponentQuery(benchmark::State& state) {
  const VertexId n = 5000;
  Rng rng(22);
  stream::StreamingOptions opts;
  opts.window = 5000;
  opts.rebuild_threshold = static_cast<uint64_t>(state.range(0));
  stream::StreamingGraph g(n, opts);
  uint64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 100; ++i) {
      VertexId u = static_cast<VertexId>(rng.NextBounded(n));
      VertexId v = static_cast<VertexId>(rng.NextBounded(n));
      if (u != v) g.AddEdge(u, v, ++t).Abort();
    }
    benchmark::DoNotOptimize(g.NumComponents());
  }
}
BENCHMARK(BM_StreamComponentQuery)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace ubigraph

BENCHMARK_MAIN();
