// BENCH.json loading/merging/comparison logic behind the bench_compare tool,
// split out so tests/bench_compare_test.cc can unit-test the parser's edge
// cases (empty file, missing fields, NaN rates) and the noise-aware
// regression gate without spawning the binary.
//
// Parsing is strict by design: a record with a missing or mistyped required
// field is an error, not a silent skip — a benchmark that drops out of the
// baseline comparison unnoticed is how perf regressions ship ("SoK: The
// Faults in our Graph Benchmarks"). Unknown keys are ignored (the format may
// grow), and `repeats`/`rel_spread` default for files written before the
// variance fields existed.
#pragma once

#include <map>
#include <string>

#include "common/result.h"

namespace ubigraph::benchcmp {

/// One BENCH.json record (see bench/perf_common.h BenchJsonReporter).
struct Record {
  std::string kernel, mode, graph;
  int64_t threads = 1;
  double median_real_ns = 0.0;
  double edges_per_second = 0.0;
  double bytes_per_edge = 0.0;  // 0 for benches that don't report compression
  double work_items = 0.0;      // machine-independent work per kernel run
  int64_t repeats = 1;          // timing samples behind the median
  double rel_spread = 0.0;      // (max-min)/median of those samples
  // Memory footprint counters; 0 when a bench doesn't report them (records
  // written before these fields existed load as 0 and are never gated).
  double peak_segment_bytes = 0.0;  // segment-cache high-water mark
  double peak_rss_bytes = 0.0;      // process RSS high-water mark
  double peak_msg_bytes = 0.0;      // message-stream buffer high-water mark
};

/// Parses one BENCH.json array into `out` (later records override earlier
/// ones with the same name — the multi-file merge semantics). Fails with
/// ParseError naming `origin` when the document is not a JSON array, an
/// entry is not an object, a required field (name, kernel, threads,
/// median_real_ns, edges_per_second, bytes_per_edge, work_items) is missing
/// or has the wrong type, or any numeric field is non-finite.
Status LoadRecords(const std::string& json_text, const std::string& origin,
                   std::map<std::string, Record>* out);

/// Serializes records as a BENCH.json array (name-sorted, one per line).
std::string FormatRecords(const std::map<std::string, Record>& records);

struct CompareOptions {
  /// Base regression allowance as a fraction of baseline median ns.
  double max_regression = 0.25;
  /// When true, any *current* record with work_items <= 0 fails the gate:
  /// every benchmark in the smoke suite must carry a machine-independent
  /// work counter so rates can be sanity-checked off wall-clock.
  bool require_work_items = false;
  /// When true, memory counters present in BOTH baseline and current (> 0 on
  /// both sides) are gated too: an out-of-core kernel that silently starts
  /// buffering whole partitions again is a regression even if wall-clock
  /// improves. Fields absent from either side are skipped, so old baselines
  /// stay comparable.
  bool gate_memory = false;
  /// Allowed growth for peak_segment_bytes / peak_msg_bytes. These are
  /// deterministic byte counters (cache/budget bookkeeping, not the OS), so
  /// the gate is tight-ish.
  double max_mem_regression = 0.30;
  /// Allowed growth for peak_rss_bytes. RSS folds in allocator slack, page
  /// cache sharing, and whatever the process touched earlier, so the
  /// allowance is deliberately generous.
  double max_rss_regression = 0.50;
};

struct Comparison {
  int compared = 0;
  int regressions = 0;
  int missing = 0;           // in baseline but not measured (warned, not fatal)
  int work_violations = 0;   // current records with work_items <= 0
  int mem_regressions = 0;   // memory counters past their gate (gate_memory)
  std::string report;        // human-readable per-benchmark lines

  bool ok() const {
    return regressions == 0 && work_violations == 0 && mem_regressions == 0 &&
           compared > 0;
  }
};

/// Compares current measurements against the baseline. The per-benchmark
/// allowance is noise-aware: max_regression plus both records' rel_spread,
/// so one noisy sample on a busy machine widens its own gate instead of
/// tripping it. Each report line carries the machine-independent work ratio
/// next to the wall-clock ratio — when time moves but work didn't, it's the
/// machine, not the code.
Comparison Compare(const std::map<std::string, Record>& baseline,
                   const std::map<std::string, Record>& current,
                   const CompareOptions& options);

}  // namespace ubigraph::benchcmp
