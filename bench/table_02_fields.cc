// Table 2: participants' fields of work (R/P split).
#include "table_common.h"

int main() {
  using namespace ubigraph::survey;
  bool ok = ReportQuestion("fields", "Table 2 — participants' fields of work");
  return VerdictExit(ok);
}
