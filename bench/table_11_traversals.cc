// Table 11: which fundamental traversals (BFS / DFS) participants use.
#include "table_common.h"

int main() {
  using namespace ubigraph::survey;
  bool ok = ReportQuestion("traversals", "Table 11 — graph traversals used");
  return VerdictExit(ok);
}
