// Shared helpers for the per-table reproduction binaries. Each binary prints
// the paper's rows next to the reproduced rows and exits non-zero on any
// mismatch, so `for b in build/bench/*; do $b; done` doubles as a check.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "survey/population.h"
#include "survey/tabulate.h"

namespace ubigraph::survey {

/// Lazily-built shared exact population.
inline const Population& SharedPopulation() {
  static const Population kPop = Population::SynthesizeExact().ValueOrDie();
  return kPop;
}

/// Prints one question comparison; returns true when all rows match.
inline bool ReportQuestion(const std::string& question_id,
                           const std::string& title) {
  Comparison cmp = CompareQuestion(SharedPopulation(), question_id, title);
  std::fputs(cmp.Render().c_str(), stdout);
  std::fputs("\n", stdout);
  return cmp.AllMatch();
}

/// Standard exit convention.
inline int VerdictExit(bool ok) {
  std::printf("%s\n", ok ? "[REPRODUCED] matches the paper exactly"
                         : "[MISMATCH] differs from the paper");
  return ok ? 0 : 1;
}

}  // namespace ubigraph::survey
