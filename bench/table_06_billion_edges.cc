// Table 6: organization sizes of the participants with >1B-edge graphs —
// the joint constraint refuting "only giant companies have giant graphs".
#include <cstdio>

#include "common/table.h"

#include "table_common.h"

int main() {
  using namespace ubigraph;
  using namespace ubigraph::survey;

  auto derived = DeriveBillionEdgeOrgSizes(SharedPopulation());
  const auto& paper = Table6BillionEdgeOrgSizes();

  TextTable table({"Org size", "Paper", "Repro", "Match"});
  bool ok = derived.size() == paper.size();
  for (size_t i = 0; i < paper.size() && i < derived.size(); ++i) {
    bool match = std::string(derived[i].label) == paper[i].label &&
                 derived[i].count == paper[i].count;
    table.AddRow({paper[i].label, std::to_string(paper[i].count),
                  std::to_string(derived[i].count), match ? "yes" : "NO"});
    ok = ok && match;
  }
  std::puts("Table 6 — org sizes of participants with >1B-edge graphs");
  std::fputs(table.RenderAscii().c_str(), stdout);
  std::puts("(19 of the 20 such participants reported an org size.)");
  return VerdictExit(ok);
}
