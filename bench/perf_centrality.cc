// Centrality and coreness kernels (Table 9 "Ranking & Centrality Scores"):
// exact and sampled Brandes betweenness, harmonic closeness, and k-core
// decomposition, each swept over the ThreadPool worker count. Scale-12 cases
// feed ci/perf_smoke.sh.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "algorithms/centrality.h"
#include "algorithms/kcore.h"
#include "common/random.h"

#include "perf_common.h"
#include "perf_obs.h"

namespace ubigraph {
namespace {

void BM_Betweenness(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const uint32_t threads = static_cast<uint32_t>(state.range(1));
  const CsrGraph& g = bench::RmatGraph(scale);
  algo::CentralityOptions opts;
  opts.num_threads = threads;
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::BetweennessCentrality(g, opts));
  }
  // Brandes scans every edge once per source in each direction.
  state.SetItemsProcessed(state.iterations() * g.num_edges() *
                          g.num_vertices());
  state.SetLabel("kernel=centrality mode=brandes graph=rmat" +
                 std::to_string(scale));
  state.counters["threads"] = threads;
}
BENCHMARK(BM_Betweenness)
    ->Args({10, 1})
    ->Args({10, 2})
    ->Args({10, 4})
    ->Args({10, 8})
    ->Unit(benchmark::kMillisecond);

void BM_BetweennessSampled(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const uint32_t threads = static_cast<uint32_t>(state.range(1));
  constexpr uint32_t kPivots = 64;
  const CsrGraph& g = bench::RmatGraph(scale);
  algo::CentralityOptions opts;
  opts.num_threads = threads;
  bench::WorkProbe work({"centrality.brandes.edges_scanned"});
  for (auto _ : state) {
    Rng rng(7);  // fixed seed: every iteration runs the same pivot set
    benchmark::DoNotOptimize(
        algo::ApproxBetweennessCentrality(g, kPivots, &rng, opts));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges() * kPivots);
  work.Flush(state);
  state.SetLabel("kernel=centrality mode=brandes_sampled graph=rmat" +
                 std::to_string(scale));
  state.counters["threads"] = threads;
}
BENCHMARK(BM_BetweennessSampled)
    ->Args({12, 1})
    ->Args({12, 4})
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({16, 4})
    ->Args({16, 8})
    ->Unit(benchmark::kMillisecond);

void BM_HarmonicCloseness(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const uint32_t threads = static_cast<uint32_t>(state.range(1));
  const CsrGraph& g = bench::RmatGraph(scale);
  algo::CentralityOptions opts;
  opts.num_threads = threads;
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::HarmonicCloseness(g, opts));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges() *
                          g.num_vertices());
  state.SetLabel("kernel=centrality mode=harmonic graph=rmat" +
                 std::to_string(scale));
  state.counters["threads"] = threads;
}
BENCHMARK(BM_HarmonicCloseness)
    ->Args({10, 1})
    ->Args({10, 4})
    ->Unit(benchmark::kMillisecond);

void BM_KCore(benchmark::State& state) {
  const uint32_t scale = static_cast<uint32_t>(state.range(0));
  const uint32_t threads = static_cast<uint32_t>(state.range(1));
  const CsrGraph& g = bench::RmatGraph(scale);
  algo::CoreOptions opts;
  opts.num_threads = threads;
  const char* mode = threads > 1 ? "bucketed" : "serial";
  // The serial path only flushes kcore.vertices; the bucketed path adds
  // kcore.decrements. Summing both gives a nonzero work count either way.
  bench::WorkProbe work({"kcore.decrements", "kcore.vertices"});
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::CoreDecomposition(g, opts));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
  work.Flush(state);
  state.SetLabel(std::string("kernel=kcore mode=") + mode + " graph=rmat" +
                 std::to_string(scale));
  state.counters["threads"] = threads;
}
BENCHMARK(BM_KCore)
    ->Args({12, 1})
    ->Args({12, 4})
    ->Args({16, 1})
    ->Args({16, 4})
    ->Args({16, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ubigraph

UBIGRAPH_BENCHMARK_MAIN_WITH_OBS();
