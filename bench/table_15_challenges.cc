// Table 15: the participants' top graph-processing challenges. The last four
// rows were OCR-garbled in our source copy of the paper and carry a
// reconstruction (flagged below); the top six rows are verbatim.
#include <cstdio>

#include "survey/paper_data.h"

#include "table_common.h"

int main() {
  using namespace ubigraph::survey;
  bool ok = ReportQuestion("challenges", "Table 15 — top processing challenges");
  for (const CountRow& row : Table15Challenges()) {
    if (row.reconstructed) {
      std::printf("  note: row '%s' reconstructed from a garbled source "
                  "(see EXPERIMENTS.md)\n",
                  row.label);
    }
  }
  // The paper's ranking claim: scalability #1; visualization and query
  // languages tied #2.
  const auto& rows = Table15Challenges();
  bool ranking = rows[0].total > rows[1].total && rows[1].total == rows[2].total;
  std::printf("\nRanking claim: scalability(%d) > visualization(%d) == "
              "query languages(%d): %s\n",
              rows[0].total, rows[1].total, rows[2].total,
              ranking ? "holds" : "VIOLATED");
  return VerdictExit(ok && ranking);
}
