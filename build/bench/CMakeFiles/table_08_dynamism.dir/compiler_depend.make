# Empty compiler generated dependencies file for table_08_dynamism.
# This may be replaced when dependencies are built.
