file(REMOVE_RECURSE
  "CMakeFiles/table_08_dynamism.dir/table_08_dynamism.cc.o"
  "CMakeFiles/table_08_dynamism.dir/table_08_dynamism.cc.o.d"
  "table_08_dynamism"
  "table_08_dynamism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_08_dynamism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
