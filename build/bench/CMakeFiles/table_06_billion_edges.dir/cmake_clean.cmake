file(REMOVE_RECURSE
  "CMakeFiles/table_06_billion_edges.dir/table_06_billion_edges.cc.o"
  "CMakeFiles/table_06_billion_edges.dir/table_06_billion_edges.cc.o.d"
  "table_06_billion_edges"
  "table_06_billion_edges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_06_billion_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
