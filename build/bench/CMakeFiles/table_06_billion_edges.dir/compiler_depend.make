# Empty compiler generated dependencies file for table_06_billion_edges.
# This may be replaced when dependencies are built.
