file(REMOVE_RECURSE
  "CMakeFiles/perf_pagerank.dir/perf_pagerank.cc.o"
  "CMakeFiles/perf_pagerank.dir/perf_pagerank.cc.o.d"
  "perf_pagerank"
  "perf_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
