# Empty compiler generated dependencies file for perf_pagerank.
# This may be replaced when dependencies are built.
