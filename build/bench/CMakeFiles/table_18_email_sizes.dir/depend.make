# Empty dependencies file for table_18_email_sizes.
# This may be replaced when dependencies are built.
