file(REMOVE_RECURSE
  "CMakeFiles/table_18_email_sizes.dir/table_18_email_sizes.cc.o"
  "CMakeFiles/table_18_email_sizes.dir/table_18_email_sizes.cc.o.d"
  "table_18_email_sizes"
  "table_18_email_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_18_email_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
