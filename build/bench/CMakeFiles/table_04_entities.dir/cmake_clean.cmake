file(REMOVE_RECURSE
  "CMakeFiles/table_04_entities.dir/table_04_entities.cc.o"
  "CMakeFiles/table_04_entities.dir/table_04_entities.cc.o.d"
  "table_04_entities"
  "table_04_entities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_04_entities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
