# Empty compiler generated dependencies file for table_04_entities.
# This may be replaced when dependencies are built.
