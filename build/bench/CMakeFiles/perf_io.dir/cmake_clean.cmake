file(REMOVE_RECURSE
  "CMakeFiles/perf_io.dir/perf_io.cc.o"
  "CMakeFiles/perf_io.dir/perf_io.cc.o.d"
  "perf_io"
  "perf_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
