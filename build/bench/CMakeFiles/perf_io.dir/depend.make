# Empty dependencies file for perf_io.
# This may be replaced when dependencies are built.
