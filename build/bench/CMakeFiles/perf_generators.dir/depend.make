# Empty dependencies file for perf_generators.
# This may be replaced when dependencies are built.
