file(REMOVE_RECURSE
  "CMakeFiles/perf_generators.dir/perf_generators.cc.o"
  "CMakeFiles/perf_generators.dir/perf_generators.cc.o.d"
  "perf_generators"
  "perf_generators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
