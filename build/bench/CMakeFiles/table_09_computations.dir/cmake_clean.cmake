file(REMOVE_RECURSE
  "CMakeFiles/table_09_computations.dir/table_09_computations.cc.o"
  "CMakeFiles/table_09_computations.dir/table_09_computations.cc.o.d"
  "table_09_computations"
  "table_09_computations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_09_computations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
