# Empty dependencies file for table_09_computations.
# This may be replaced when dependencies are built.
