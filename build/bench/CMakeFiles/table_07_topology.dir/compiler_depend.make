# Empty compiler generated dependencies file for table_07_topology.
# This may be replaced when dependencies are built.
