file(REMOVE_RECURSE
  "CMakeFiles/table_07_topology.dir/table_07_topology.cc.o"
  "CMakeFiles/table_07_topology.dir/table_07_topology.cc.o.d"
  "table_07_topology"
  "table_07_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_07_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
