file(REMOVE_RECURSE
  "CMakeFiles/perf_triangle.dir/perf_triangle.cc.o"
  "CMakeFiles/perf_triangle.dir/perf_triangle.cc.o.d"
  "perf_triangle"
  "perf_triangle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_triangle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
