# Empty dependencies file for perf_triangle.
# This may be replaced when dependencies are built.
