file(REMOVE_RECURSE
  "CMakeFiles/table_01_recruitment.dir/table_01_recruitment.cc.o"
  "CMakeFiles/table_01_recruitment.dir/table_01_recruitment.cc.o.d"
  "table_01_recruitment"
  "table_01_recruitment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_01_recruitment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
