# Empty dependencies file for table_01_recruitment.
# This may be replaced when dependencies are built.
