file(REMOVE_RECURSE
  "CMakeFiles/table_19_mined_challenges.dir/table_19_mined_challenges.cc.o"
  "CMakeFiles/table_19_mined_challenges.dir/table_19_mined_challenges.cc.o.d"
  "table_19_mined_challenges"
  "table_19_mined_challenges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_19_mined_challenges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
