# Empty compiler generated dependencies file for table_19_mined_challenges.
# This may be replaced when dependencies are built.
