# Empty dependencies file for table_02_fields.
# This may be replaced when dependencies are built.
