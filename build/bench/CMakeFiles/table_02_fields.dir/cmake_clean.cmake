file(REMOVE_RECURSE
  "CMakeFiles/table_02_fields.dir/table_02_fields.cc.o"
  "CMakeFiles/table_02_fields.dir/table_02_fields.cc.o.d"
  "table_02_fields"
  "table_02_fields.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_02_fields.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
