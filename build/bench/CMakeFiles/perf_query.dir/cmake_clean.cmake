file(REMOVE_RECURSE
  "CMakeFiles/perf_query.dir/perf_query.cc.o"
  "CMakeFiles/perf_query.dir/perf_query.cc.o.d"
  "perf_query"
  "perf_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
