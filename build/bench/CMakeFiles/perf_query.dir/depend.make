# Empty dependencies file for perf_query.
# This may be replaced when dependencies are built.
