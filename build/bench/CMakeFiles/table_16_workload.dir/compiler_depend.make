# Empty compiler generated dependencies file for table_16_workload.
# This may be replaced when dependencies are built.
