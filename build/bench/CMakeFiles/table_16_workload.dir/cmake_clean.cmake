file(REMOVE_RECURSE
  "CMakeFiles/table_16_workload.dir/table_16_workload.cc.o"
  "CMakeFiles/table_16_workload.dir/table_16_workload.cc.o.d"
  "table_16_workload"
  "table_16_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_16_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
