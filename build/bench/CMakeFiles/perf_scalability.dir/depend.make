# Empty dependencies file for perf_scalability.
# This may be replaced when dependencies are built.
