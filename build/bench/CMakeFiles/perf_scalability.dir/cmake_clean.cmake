file(REMOVE_RECURSE
  "CMakeFiles/perf_scalability.dir/perf_scalability.cc.o"
  "CMakeFiles/perf_scalability.dir/perf_scalability.cc.o.d"
  "perf_scalability"
  "perf_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
