file(REMOVE_RECURSE
  "CMakeFiles/perf_layout.dir/perf_layout.cc.o"
  "CMakeFiles/perf_layout.dir/perf_layout.cc.o.d"
  "perf_layout"
  "perf_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
