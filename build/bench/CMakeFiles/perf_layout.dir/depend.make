# Empty dependencies file for perf_layout.
# This may be replaced when dependencies are built.
