# Empty dependencies file for perf_stream.
# This may be replaced when dependencies are built.
