file(REMOVE_RECURSE
  "CMakeFiles/perf_stream.dir/perf_stream.cc.o"
  "CMakeFiles/perf_stream.dir/perf_stream.cc.o.d"
  "perf_stream"
  "perf_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
