
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/perf_stream.cc" "bench/CMakeFiles/perf_stream.dir/perf_stream.cc.o" "gcc" "bench/CMakeFiles/perf_stream.dir/perf_stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ubigraph_features.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ubigraph_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ubigraph_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ubigraph_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ubigraph_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ubigraph_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ubigraph_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ubigraph_algorithms.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ubigraph_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ubigraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ubigraph_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ubigraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
