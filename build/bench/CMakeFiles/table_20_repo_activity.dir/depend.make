# Empty dependencies file for table_20_repo_activity.
# This may be replaced when dependencies are built.
