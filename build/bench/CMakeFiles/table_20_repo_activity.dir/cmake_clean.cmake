file(REMOVE_RECURSE
  "CMakeFiles/table_20_repo_activity.dir/table_20_repo_activity.cc.o"
  "CMakeFiles/table_20_repo_activity.dir/table_20_repo_activity.cc.o.d"
  "table_20_repo_activity"
  "table_20_repo_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_20_repo_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
