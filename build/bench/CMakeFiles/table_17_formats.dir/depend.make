# Empty dependencies file for table_17_formats.
# This may be replaced when dependencies are built.
