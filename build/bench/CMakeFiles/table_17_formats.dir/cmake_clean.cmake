file(REMOVE_RECURSE
  "CMakeFiles/table_17_formats.dir/table_17_formats.cc.o"
  "CMakeFiles/table_17_formats.dir/table_17_formats.cc.o.d"
  "table_17_formats"
  "table_17_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_17_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
