# Empty compiler generated dependencies file for table_14_architectures.
# This may be replaced when dependencies are built.
