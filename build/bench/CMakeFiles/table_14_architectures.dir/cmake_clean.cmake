file(REMOVE_RECURSE
  "CMakeFiles/table_14_architectures.dir/table_14_architectures.cc.o"
  "CMakeFiles/table_14_architectures.dir/table_14_architectures.cc.o.d"
  "table_14_architectures"
  "table_14_architectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_14_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
