# Empty dependencies file for table_03_org_size.
# This may be replaced when dependencies are built.
