file(REMOVE_RECURSE
  "CMakeFiles/table_03_org_size.dir/table_03_org_size.cc.o"
  "CMakeFiles/table_03_org_size.dir/table_03_org_size.cc.o.d"
  "table_03_org_size"
  "table_03_org_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_03_org_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
