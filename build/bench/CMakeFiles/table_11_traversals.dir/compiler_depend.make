# Empty compiler generated dependencies file for table_11_traversals.
# This may be replaced when dependencies are built.
