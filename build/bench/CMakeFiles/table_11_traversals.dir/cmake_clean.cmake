file(REMOVE_RECURSE
  "CMakeFiles/table_11_traversals.dir/table_11_traversals.cc.o"
  "CMakeFiles/table_11_traversals.dir/table_11_traversals.cc.o.d"
  "table_11_traversals"
  "table_11_traversals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_11_traversals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
