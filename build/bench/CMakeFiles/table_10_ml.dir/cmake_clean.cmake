file(REMOVE_RECURSE
  "CMakeFiles/table_10_ml.dir/table_10_ml.cc.o"
  "CMakeFiles/table_10_ml.dir/table_10_ml.cc.o.d"
  "table_10_ml"
  "table_10_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_10_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
