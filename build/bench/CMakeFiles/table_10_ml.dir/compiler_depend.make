# Empty compiler generated dependencies file for table_10_ml.
# This may be replaced when dependencies are built.
