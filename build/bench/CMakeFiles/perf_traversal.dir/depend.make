# Empty dependencies file for perf_traversal.
# This may be replaced when dependencies are built.
