file(REMOVE_RECURSE
  "CMakeFiles/perf_traversal.dir/perf_traversal.cc.o"
  "CMakeFiles/perf_traversal.dir/perf_traversal.cc.o.d"
  "perf_traversal"
  "perf_traversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
