file(REMOVE_RECURSE
  "CMakeFiles/table_15_challenges.dir/table_15_challenges.cc.o"
  "CMakeFiles/table_15_challenges.dir/table_15_challenges.cc.o.d"
  "table_15_challenges"
  "table_15_challenges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_15_challenges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
