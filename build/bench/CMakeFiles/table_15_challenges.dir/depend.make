# Empty dependencies file for table_15_challenges.
# This may be replaced when dependencies are built.
