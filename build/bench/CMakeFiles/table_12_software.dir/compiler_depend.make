# Empty compiler generated dependencies file for table_12_software.
# This may be replaced when dependencies are built.
