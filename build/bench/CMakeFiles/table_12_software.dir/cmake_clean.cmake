file(REMOVE_RECURSE
  "CMakeFiles/table_12_software.dir/table_12_software.cc.o"
  "CMakeFiles/table_12_software.dir/table_12_software.cc.o.d"
  "table_12_software"
  "table_12_software.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_12_software.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
