file(REMOVE_RECURSE
  "CMakeFiles/table_05_graph_sizes.dir/table_05_graph_sizes.cc.o"
  "CMakeFiles/table_05_graph_sizes.dir/table_05_graph_sizes.cc.o.d"
  "table_05_graph_sizes"
  "table_05_graph_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_05_graph_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
