# Empty dependencies file for table_05_graph_sizes.
# This may be replaced when dependencies are built.
