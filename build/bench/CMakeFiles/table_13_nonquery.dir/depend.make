# Empty dependencies file for table_13_nonquery.
# This may be replaced when dependencies are built.
