file(REMOVE_RECURSE
  "CMakeFiles/table_13_nonquery.dir/table_13_nonquery.cc.o"
  "CMakeFiles/table_13_nonquery.dir/table_13_nonquery.cc.o.d"
  "table_13_nonquery"
  "table_13_nonquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_13_nonquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
