# Empty dependencies file for perf_shortest_path.
# This may be replaced when dependencies are built.
