file(REMOVE_RECURSE
  "CMakeFiles/perf_shortest_path.dir/perf_shortest_path.cc.o"
  "CMakeFiles/perf_shortest_path.dir/perf_shortest_path.cc.o.d"
  "perf_shortest_path"
  "perf_shortest_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_shortest_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
