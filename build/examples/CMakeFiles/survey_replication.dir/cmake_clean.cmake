file(REMOVE_RECURSE
  "CMakeFiles/survey_replication.dir/survey_replication.cpp.o"
  "CMakeFiles/survey_replication.dir/survey_replication.cpp.o.d"
  "survey_replication"
  "survey_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/survey_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
