# Empty compiler generated dependencies file for survey_replication.
# This may be replaced when dependencies are built.
