# Empty compiler generated dependencies file for visualization_demo.
# This may be replaced when dependencies are built.
