file(REMOVE_RECURSE
  "CMakeFiles/visualization_demo.dir/visualization_demo.cpp.o"
  "CMakeFiles/visualization_demo.dir/visualization_demo.cpp.o.d"
  "visualization_demo"
  "visualization_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visualization_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
