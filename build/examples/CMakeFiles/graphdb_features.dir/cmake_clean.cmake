file(REMOVE_RECURSE
  "CMakeFiles/graphdb_features.dir/graphdb_features.cpp.o"
  "CMakeFiles/graphdb_features.dir/graphdb_features.cpp.o.d"
  "graphdb_features"
  "graphdb_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphdb_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
