# Empty compiler generated dependencies file for graphdb_features.
# This may be replaced when dependencies are built.
