# Empty dependencies file for ugraph_cli.
# This may be replaced when dependencies are built.
