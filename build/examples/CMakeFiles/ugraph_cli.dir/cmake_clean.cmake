file(REMOVE_RECURSE
  "CMakeFiles/ugraph_cli.dir/ugraph_cli.cpp.o"
  "CMakeFiles/ugraph_cli.dir/ugraph_cli.cpp.o.d"
  "ugraph_cli"
  "ugraph_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ugraph_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
