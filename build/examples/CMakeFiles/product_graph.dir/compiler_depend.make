# Empty compiler generated dependencies file for product_graph.
# This may be replaced when dependencies are built.
