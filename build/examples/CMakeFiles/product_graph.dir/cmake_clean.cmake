file(REMOVE_RECURSE
  "CMakeFiles/product_graph.dir/product_graph.cpp.o"
  "CMakeFiles/product_graph.dir/product_graph.cpp.o.d"
  "product_graph"
  "product_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/product_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
