file(REMOVE_RECURSE
  "CMakeFiles/index_and_formats_test.dir/index_and_formats_test.cc.o"
  "CMakeFiles/index_and_formats_test.dir/index_and_formats_test.cc.o.d"
  "index_and_formats_test"
  "index_and_formats_test.pdb"
  "index_and_formats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_and_formats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
