# Empty dependencies file for index_and_formats_test.
# This may be replaced when dependencies are built.
