file(REMOVE_RECURSE
  "CMakeFiles/ml_community_test.dir/ml_community_test.cc.o"
  "CMakeFiles/ml_community_test.dir/ml_community_test.cc.o.d"
  "ml_community_test"
  "ml_community_test.pdb"
  "ml_community_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_community_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
