# Empty compiler generated dependencies file for ml_community_test.
# This may be replaced when dependencies are built.
