file(REMOVE_RECURSE
  "CMakeFiles/subgraph_match_test.dir/subgraph_match_test.cc.o"
  "CMakeFiles/subgraph_match_test.dir/subgraph_match_test.cc.o.d"
  "subgraph_match_test"
  "subgraph_match_test.pdb"
  "subgraph_match_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subgraph_match_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
