file(REMOVE_RECURSE
  "CMakeFiles/survey_population_test.dir/survey_population_test.cc.o"
  "CMakeFiles/survey_population_test.dir/survey_population_test.cc.o.d"
  "survey_population_test"
  "survey_population_test.pdb"
  "survey_population_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/survey_population_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
