# Empty compiler generated dependencies file for survey_population_test.
# This may be replaced when dependencies are built.
