file(REMOVE_RECURSE
  "CMakeFiles/pagerank_centrality_test.dir/pagerank_centrality_test.cc.o"
  "CMakeFiles/pagerank_centrality_test.dir/pagerank_centrality_test.cc.o.d"
  "pagerank_centrality_test"
  "pagerank_centrality_test.pdb"
  "pagerank_centrality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagerank_centrality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
