# Empty dependencies file for pagerank_centrality_test.
# This may be replaced when dependencies are built.
