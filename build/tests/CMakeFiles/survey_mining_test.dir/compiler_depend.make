# Empty compiler generated dependencies file for survey_mining_test.
# This may be replaced when dependencies are built.
