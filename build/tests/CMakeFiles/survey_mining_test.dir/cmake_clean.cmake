file(REMOVE_RECURSE
  "CMakeFiles/survey_mining_test.dir/survey_mining_test.cc.o"
  "CMakeFiles/survey_mining_test.dir/survey_mining_test.cc.o.d"
  "survey_mining_test"
  "survey_mining_test.pdb"
  "survey_mining_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/survey_mining_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
