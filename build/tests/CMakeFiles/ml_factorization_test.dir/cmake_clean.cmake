file(REMOVE_RECURSE
  "CMakeFiles/ml_factorization_test.dir/ml_factorization_test.cc.o"
  "CMakeFiles/ml_factorization_test.dir/ml_factorization_test.cc.o.d"
  "ml_factorization_test"
  "ml_factorization_test.pdb"
  "ml_factorization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_factorization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
