# Empty dependencies file for ml_factorization_test.
# This may be replaced when dependencies are built.
