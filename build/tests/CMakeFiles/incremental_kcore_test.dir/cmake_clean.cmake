file(REMOVE_RECURSE
  "CMakeFiles/incremental_kcore_test.dir/incremental_kcore_test.cc.o"
  "CMakeFiles/incremental_kcore_test.dir/incremental_kcore_test.cc.o.d"
  "incremental_kcore_test"
  "incremental_kcore_test.pdb"
  "incremental_kcore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_kcore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
