# Empty dependencies file for incremental_kcore_test.
# This may be replaced when dependencies are built.
