# Empty compiler generated dependencies file for ml_prediction_test.
# This may be replaced when dependencies are built.
