file(REMOVE_RECURSE
  "CMakeFiles/ml_prediction_test.dir/ml_prediction_test.cc.o"
  "CMakeFiles/ml_prediction_test.dir/ml_prediction_test.cc.o.d"
  "ml_prediction_test"
  "ml_prediction_test.pdb"
  "ml_prediction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_prediction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
