# Empty dependencies file for dense_mst_coloring_test.
# This may be replaced when dependencies are built.
