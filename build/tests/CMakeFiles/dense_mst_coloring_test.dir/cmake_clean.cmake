file(REMOVE_RECURSE
  "CMakeFiles/dense_mst_coloring_test.dir/dense_mst_coloring_test.cc.o"
  "CMakeFiles/dense_mst_coloring_test.dir/dense_mst_coloring_test.cc.o.d"
  "dense_mst_coloring_test"
  "dense_mst_coloring_test.pdb"
  "dense_mst_coloring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dense_mst_coloring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
