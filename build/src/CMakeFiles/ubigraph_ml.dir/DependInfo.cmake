
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/belief_propagation.cc" "src/CMakeFiles/ubigraph_ml.dir/ml/belief_propagation.cc.o" "gcc" "src/CMakeFiles/ubigraph_ml.dir/ml/belief_propagation.cc.o.d"
  "/root/repo/src/ml/collaborative_filtering.cc" "src/CMakeFiles/ubigraph_ml.dir/ml/collaborative_filtering.cc.o" "gcc" "src/CMakeFiles/ubigraph_ml.dir/ml/collaborative_filtering.cc.o.d"
  "/root/repo/src/ml/embeddings.cc" "src/CMakeFiles/ubigraph_ml.dir/ml/embeddings.cc.o" "gcc" "src/CMakeFiles/ubigraph_ml.dir/ml/embeddings.cc.o.d"
  "/root/repo/src/ml/influence_max.cc" "src/CMakeFiles/ubigraph_ml.dir/ml/influence_max.cc.o" "gcc" "src/CMakeFiles/ubigraph_ml.dir/ml/influence_max.cc.o.d"
  "/root/repo/src/ml/kmeans.cc" "src/CMakeFiles/ubigraph_ml.dir/ml/kmeans.cc.o" "gcc" "src/CMakeFiles/ubigraph_ml.dir/ml/kmeans.cc.o.d"
  "/root/repo/src/ml/label_propagation.cc" "src/CMakeFiles/ubigraph_ml.dir/ml/label_propagation.cc.o" "gcc" "src/CMakeFiles/ubigraph_ml.dir/ml/label_propagation.cc.o.d"
  "/root/repo/src/ml/link_prediction.cc" "src/CMakeFiles/ubigraph_ml.dir/ml/link_prediction.cc.o" "gcc" "src/CMakeFiles/ubigraph_ml.dir/ml/link_prediction.cc.o.d"
  "/root/repo/src/ml/louvain.cc" "src/CMakeFiles/ubigraph_ml.dir/ml/louvain.cc.o" "gcc" "src/CMakeFiles/ubigraph_ml.dir/ml/louvain.cc.o.d"
  "/root/repo/src/ml/matrix_factorization.cc" "src/CMakeFiles/ubigraph_ml.dir/ml/matrix_factorization.cc.o" "gcc" "src/CMakeFiles/ubigraph_ml.dir/ml/matrix_factorization.cc.o.d"
  "/root/repo/src/ml/regression.cc" "src/CMakeFiles/ubigraph_ml.dir/ml/regression.cc.o" "gcc" "src/CMakeFiles/ubigraph_ml.dir/ml/regression.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ubigraph_algorithms.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ubigraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ubigraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
