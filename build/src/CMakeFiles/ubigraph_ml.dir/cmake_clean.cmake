file(REMOVE_RECURSE
  "CMakeFiles/ubigraph_ml.dir/ml/belief_propagation.cc.o"
  "CMakeFiles/ubigraph_ml.dir/ml/belief_propagation.cc.o.d"
  "CMakeFiles/ubigraph_ml.dir/ml/collaborative_filtering.cc.o"
  "CMakeFiles/ubigraph_ml.dir/ml/collaborative_filtering.cc.o.d"
  "CMakeFiles/ubigraph_ml.dir/ml/embeddings.cc.o"
  "CMakeFiles/ubigraph_ml.dir/ml/embeddings.cc.o.d"
  "CMakeFiles/ubigraph_ml.dir/ml/influence_max.cc.o"
  "CMakeFiles/ubigraph_ml.dir/ml/influence_max.cc.o.d"
  "CMakeFiles/ubigraph_ml.dir/ml/kmeans.cc.o"
  "CMakeFiles/ubigraph_ml.dir/ml/kmeans.cc.o.d"
  "CMakeFiles/ubigraph_ml.dir/ml/label_propagation.cc.o"
  "CMakeFiles/ubigraph_ml.dir/ml/label_propagation.cc.o.d"
  "CMakeFiles/ubigraph_ml.dir/ml/link_prediction.cc.o"
  "CMakeFiles/ubigraph_ml.dir/ml/link_prediction.cc.o.d"
  "CMakeFiles/ubigraph_ml.dir/ml/louvain.cc.o"
  "CMakeFiles/ubigraph_ml.dir/ml/louvain.cc.o.d"
  "CMakeFiles/ubigraph_ml.dir/ml/matrix_factorization.cc.o"
  "CMakeFiles/ubigraph_ml.dir/ml/matrix_factorization.cc.o.d"
  "CMakeFiles/ubigraph_ml.dir/ml/regression.cc.o"
  "CMakeFiles/ubigraph_ml.dir/ml/regression.cc.o.d"
  "libubigraph_ml.a"
  "libubigraph_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubigraph_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
