file(REMOVE_RECURSE
  "libubigraph_ml.a"
)
