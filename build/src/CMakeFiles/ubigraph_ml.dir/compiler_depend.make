# Empty compiler generated dependencies file for ubigraph_ml.
# This may be replaced when dependencies are built.
