# Empty dependencies file for ubigraph_features.
# This may be replaced when dependencies are built.
