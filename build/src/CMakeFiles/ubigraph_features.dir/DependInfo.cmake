
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/graph_schema.cc" "src/CMakeFiles/ubigraph_features.dir/graph/graph_schema.cc.o" "gcc" "src/CMakeFiles/ubigraph_features.dir/graph/graph_schema.cc.o.d"
  "/root/repo/src/graph/hypergraph.cc" "src/CMakeFiles/ubigraph_features.dir/graph/hypergraph.cc.o" "gcc" "src/CMakeFiles/ubigraph_features.dir/graph/hypergraph.cc.o.d"
  "/root/repo/src/graph/triggers.cc" "src/CMakeFiles/ubigraph_features.dir/graph/triggers.cc.o" "gcc" "src/CMakeFiles/ubigraph_features.dir/graph/triggers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ubigraph_algorithms.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ubigraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ubigraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
