file(REMOVE_RECURSE
  "CMakeFiles/ubigraph_features.dir/graph/graph_schema.cc.o"
  "CMakeFiles/ubigraph_features.dir/graph/graph_schema.cc.o.d"
  "CMakeFiles/ubigraph_features.dir/graph/hypergraph.cc.o"
  "CMakeFiles/ubigraph_features.dir/graph/hypergraph.cc.o.d"
  "CMakeFiles/ubigraph_features.dir/graph/triggers.cc.o"
  "CMakeFiles/ubigraph_features.dir/graph/triggers.cc.o.d"
  "libubigraph_features.a"
  "libubigraph_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubigraph_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
