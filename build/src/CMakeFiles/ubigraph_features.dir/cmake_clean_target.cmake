file(REMOVE_RECURSE
  "libubigraph_features.a"
)
