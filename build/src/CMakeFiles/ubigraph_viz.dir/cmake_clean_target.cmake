file(REMOVE_RECURSE
  "libubigraph_viz.a"
)
