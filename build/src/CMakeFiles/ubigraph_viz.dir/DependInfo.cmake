
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viz/coarsen.cc" "src/CMakeFiles/ubigraph_viz.dir/viz/coarsen.cc.o" "gcc" "src/CMakeFiles/ubigraph_viz.dir/viz/coarsen.cc.o.d"
  "/root/repo/src/viz/dot_export.cc" "src/CMakeFiles/ubigraph_viz.dir/viz/dot_export.cc.o" "gcc" "src/CMakeFiles/ubigraph_viz.dir/viz/dot_export.cc.o.d"
  "/root/repo/src/viz/layout.cc" "src/CMakeFiles/ubigraph_viz.dir/viz/layout.cc.o" "gcc" "src/CMakeFiles/ubigraph_viz.dir/viz/layout.cc.o.d"
  "/root/repo/src/viz/svg_export.cc" "src/CMakeFiles/ubigraph_viz.dir/viz/svg_export.cc.o" "gcc" "src/CMakeFiles/ubigraph_viz.dir/viz/svg_export.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ubigraph_algorithms.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ubigraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ubigraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
