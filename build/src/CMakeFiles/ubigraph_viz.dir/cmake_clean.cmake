file(REMOVE_RECURSE
  "CMakeFiles/ubigraph_viz.dir/viz/coarsen.cc.o"
  "CMakeFiles/ubigraph_viz.dir/viz/coarsen.cc.o.d"
  "CMakeFiles/ubigraph_viz.dir/viz/dot_export.cc.o"
  "CMakeFiles/ubigraph_viz.dir/viz/dot_export.cc.o.d"
  "CMakeFiles/ubigraph_viz.dir/viz/layout.cc.o"
  "CMakeFiles/ubigraph_viz.dir/viz/layout.cc.o.d"
  "CMakeFiles/ubigraph_viz.dir/viz/svg_export.cc.o"
  "CMakeFiles/ubigraph_viz.dir/viz/svg_export.cc.o.d"
  "libubigraph_viz.a"
  "libubigraph_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubigraph_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
