# Empty dependencies file for ubigraph_viz.
# This may be replaced when dependencies are built.
