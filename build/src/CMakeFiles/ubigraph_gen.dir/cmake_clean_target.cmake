file(REMOVE_RECURSE
  "libubigraph_gen.a"
)
