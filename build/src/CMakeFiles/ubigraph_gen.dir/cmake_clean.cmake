file(REMOVE_RECURSE
  "CMakeFiles/ubigraph_gen.dir/gen/generators.cc.o"
  "CMakeFiles/ubigraph_gen.dir/gen/generators.cc.o.d"
  "libubigraph_gen.a"
  "libubigraph_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubigraph_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
