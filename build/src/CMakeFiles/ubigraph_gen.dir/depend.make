# Empty dependencies file for ubigraph_gen.
# This may be replaced when dependencies are built.
