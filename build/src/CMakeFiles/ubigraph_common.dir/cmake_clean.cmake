file(REMOVE_RECURSE
  "CMakeFiles/ubigraph_common.dir/common/crc32.cc.o"
  "CMakeFiles/ubigraph_common.dir/common/crc32.cc.o.d"
  "CMakeFiles/ubigraph_common.dir/common/histogram.cc.o"
  "CMakeFiles/ubigraph_common.dir/common/histogram.cc.o.d"
  "CMakeFiles/ubigraph_common.dir/common/random.cc.o"
  "CMakeFiles/ubigraph_common.dir/common/random.cc.o.d"
  "CMakeFiles/ubigraph_common.dir/common/status.cc.o"
  "CMakeFiles/ubigraph_common.dir/common/status.cc.o.d"
  "CMakeFiles/ubigraph_common.dir/common/strings.cc.o"
  "CMakeFiles/ubigraph_common.dir/common/strings.cc.o.d"
  "CMakeFiles/ubigraph_common.dir/common/table.cc.o"
  "CMakeFiles/ubigraph_common.dir/common/table.cc.o.d"
  "libubigraph_common.a"
  "libubigraph_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubigraph_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
