# Empty dependencies file for ubigraph_common.
# This may be replaced when dependencies are built.
