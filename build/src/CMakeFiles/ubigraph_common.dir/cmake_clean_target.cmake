file(REMOVE_RECURSE
  "libubigraph_common.a"
)
