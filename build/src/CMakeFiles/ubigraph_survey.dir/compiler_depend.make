# Empty compiler generated dependencies file for ubigraph_survey.
# This may be replaced when dependencies are built.
