file(REMOVE_RECURSE
  "libubigraph_survey.a"
)
