
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/survey/academic.cc" "src/CMakeFiles/ubigraph_survey.dir/survey/academic.cc.o" "gcc" "src/CMakeFiles/ubigraph_survey.dir/survey/academic.cc.o.d"
  "/root/repo/src/survey/corpus.cc" "src/CMakeFiles/ubigraph_survey.dir/survey/corpus.cc.o" "gcc" "src/CMakeFiles/ubigraph_survey.dir/survey/corpus.cc.o.d"
  "/root/repo/src/survey/goodness_of_fit.cc" "src/CMakeFiles/ubigraph_survey.dir/survey/goodness_of_fit.cc.o" "gcc" "src/CMakeFiles/ubigraph_survey.dir/survey/goodness_of_fit.cc.o.d"
  "/root/repo/src/survey/miner.cc" "src/CMakeFiles/ubigraph_survey.dir/survey/miner.cc.o" "gcc" "src/CMakeFiles/ubigraph_survey.dir/survey/miner.cc.o.d"
  "/root/repo/src/survey/paper_data.cc" "src/CMakeFiles/ubigraph_survey.dir/survey/paper_data.cc.o" "gcc" "src/CMakeFiles/ubigraph_survey.dir/survey/paper_data.cc.o.d"
  "/root/repo/src/survey/population.cc" "src/CMakeFiles/ubigraph_survey.dir/survey/population.cc.o" "gcc" "src/CMakeFiles/ubigraph_survey.dir/survey/population.cc.o.d"
  "/root/repo/src/survey/schema.cc" "src/CMakeFiles/ubigraph_survey.dir/survey/schema.cc.o" "gcc" "src/CMakeFiles/ubigraph_survey.dir/survey/schema.cc.o.d"
  "/root/repo/src/survey/tabulate.cc" "src/CMakeFiles/ubigraph_survey.dir/survey/tabulate.cc.o" "gcc" "src/CMakeFiles/ubigraph_survey.dir/survey/tabulate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ubigraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
