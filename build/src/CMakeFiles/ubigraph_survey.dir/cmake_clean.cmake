file(REMOVE_RECURSE
  "CMakeFiles/ubigraph_survey.dir/survey/academic.cc.o"
  "CMakeFiles/ubigraph_survey.dir/survey/academic.cc.o.d"
  "CMakeFiles/ubigraph_survey.dir/survey/corpus.cc.o"
  "CMakeFiles/ubigraph_survey.dir/survey/corpus.cc.o.d"
  "CMakeFiles/ubigraph_survey.dir/survey/goodness_of_fit.cc.o"
  "CMakeFiles/ubigraph_survey.dir/survey/goodness_of_fit.cc.o.d"
  "CMakeFiles/ubigraph_survey.dir/survey/miner.cc.o"
  "CMakeFiles/ubigraph_survey.dir/survey/miner.cc.o.d"
  "CMakeFiles/ubigraph_survey.dir/survey/paper_data.cc.o"
  "CMakeFiles/ubigraph_survey.dir/survey/paper_data.cc.o.d"
  "CMakeFiles/ubigraph_survey.dir/survey/population.cc.o"
  "CMakeFiles/ubigraph_survey.dir/survey/population.cc.o.d"
  "CMakeFiles/ubigraph_survey.dir/survey/schema.cc.o"
  "CMakeFiles/ubigraph_survey.dir/survey/schema.cc.o.d"
  "CMakeFiles/ubigraph_survey.dir/survey/tabulate.cc.o"
  "CMakeFiles/ubigraph_survey.dir/survey/tabulate.cc.o.d"
  "libubigraph_survey.a"
  "libubigraph_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubigraph_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
