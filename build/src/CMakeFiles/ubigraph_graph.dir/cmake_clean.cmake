file(REMOVE_RECURSE
  "CMakeFiles/ubigraph_graph.dir/graph/csr_graph.cc.o"
  "CMakeFiles/ubigraph_graph.dir/graph/csr_graph.cc.o.d"
  "CMakeFiles/ubigraph_graph.dir/graph/dynamic_graph.cc.o"
  "CMakeFiles/ubigraph_graph.dir/graph/dynamic_graph.cc.o.d"
  "CMakeFiles/ubigraph_graph.dir/graph/edge_list.cc.o"
  "CMakeFiles/ubigraph_graph.dir/graph/edge_list.cc.o.d"
  "CMakeFiles/ubigraph_graph.dir/graph/property_graph.cc.o"
  "CMakeFiles/ubigraph_graph.dir/graph/property_graph.cc.o.d"
  "CMakeFiles/ubigraph_graph.dir/graph/versioned_graph.cc.o"
  "CMakeFiles/ubigraph_graph.dir/graph/versioned_graph.cc.o.d"
  "libubigraph_graph.a"
  "libubigraph_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubigraph_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
