# Empty compiler generated dependencies file for ubigraph_graph.
# This may be replaced when dependencies are built.
