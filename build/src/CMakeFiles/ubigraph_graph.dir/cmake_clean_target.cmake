file(REMOVE_RECURSE
  "libubigraph_graph.a"
)
