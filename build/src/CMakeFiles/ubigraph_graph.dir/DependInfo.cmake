
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/csr_graph.cc" "src/CMakeFiles/ubigraph_graph.dir/graph/csr_graph.cc.o" "gcc" "src/CMakeFiles/ubigraph_graph.dir/graph/csr_graph.cc.o.d"
  "/root/repo/src/graph/dynamic_graph.cc" "src/CMakeFiles/ubigraph_graph.dir/graph/dynamic_graph.cc.o" "gcc" "src/CMakeFiles/ubigraph_graph.dir/graph/dynamic_graph.cc.o.d"
  "/root/repo/src/graph/edge_list.cc" "src/CMakeFiles/ubigraph_graph.dir/graph/edge_list.cc.o" "gcc" "src/CMakeFiles/ubigraph_graph.dir/graph/edge_list.cc.o.d"
  "/root/repo/src/graph/property_graph.cc" "src/CMakeFiles/ubigraph_graph.dir/graph/property_graph.cc.o" "gcc" "src/CMakeFiles/ubigraph_graph.dir/graph/property_graph.cc.o.d"
  "/root/repo/src/graph/versioned_graph.cc" "src/CMakeFiles/ubigraph_graph.dir/graph/versioned_graph.cc.o" "gcc" "src/CMakeFiles/ubigraph_graph.dir/graph/versioned_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ubigraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
