file(REMOVE_RECURSE
  "CMakeFiles/ubigraph_io.dir/io/binary_io.cc.o"
  "CMakeFiles/ubigraph_io.dir/io/binary_io.cc.o.d"
  "CMakeFiles/ubigraph_io.dir/io/csv_io.cc.o"
  "CMakeFiles/ubigraph_io.dir/io/csv_io.cc.o.d"
  "CMakeFiles/ubigraph_io.dir/io/edge_list_io.cc.o"
  "CMakeFiles/ubigraph_io.dir/io/edge_list_io.cc.o.d"
  "CMakeFiles/ubigraph_io.dir/io/gml_io.cc.o"
  "CMakeFiles/ubigraph_io.dir/io/gml_io.cc.o.d"
  "CMakeFiles/ubigraph_io.dir/io/graphml_io.cc.o"
  "CMakeFiles/ubigraph_io.dir/io/graphml_io.cc.o.d"
  "CMakeFiles/ubigraph_io.dir/io/jgf_io.cc.o"
  "CMakeFiles/ubigraph_io.dir/io/jgf_io.cc.o.d"
  "CMakeFiles/ubigraph_io.dir/io/json_io.cc.o"
  "CMakeFiles/ubigraph_io.dir/io/json_io.cc.o.d"
  "CMakeFiles/ubigraph_io.dir/io/json_value.cc.o"
  "CMakeFiles/ubigraph_io.dir/io/json_value.cc.o.d"
  "libubigraph_io.a"
  "libubigraph_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubigraph_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
