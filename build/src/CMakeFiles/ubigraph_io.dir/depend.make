# Empty dependencies file for ubigraph_io.
# This may be replaced when dependencies are built.
