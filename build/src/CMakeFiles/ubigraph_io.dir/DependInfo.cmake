
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/binary_io.cc" "src/CMakeFiles/ubigraph_io.dir/io/binary_io.cc.o" "gcc" "src/CMakeFiles/ubigraph_io.dir/io/binary_io.cc.o.d"
  "/root/repo/src/io/csv_io.cc" "src/CMakeFiles/ubigraph_io.dir/io/csv_io.cc.o" "gcc" "src/CMakeFiles/ubigraph_io.dir/io/csv_io.cc.o.d"
  "/root/repo/src/io/edge_list_io.cc" "src/CMakeFiles/ubigraph_io.dir/io/edge_list_io.cc.o" "gcc" "src/CMakeFiles/ubigraph_io.dir/io/edge_list_io.cc.o.d"
  "/root/repo/src/io/gml_io.cc" "src/CMakeFiles/ubigraph_io.dir/io/gml_io.cc.o" "gcc" "src/CMakeFiles/ubigraph_io.dir/io/gml_io.cc.o.d"
  "/root/repo/src/io/graphml_io.cc" "src/CMakeFiles/ubigraph_io.dir/io/graphml_io.cc.o" "gcc" "src/CMakeFiles/ubigraph_io.dir/io/graphml_io.cc.o.d"
  "/root/repo/src/io/jgf_io.cc" "src/CMakeFiles/ubigraph_io.dir/io/jgf_io.cc.o" "gcc" "src/CMakeFiles/ubigraph_io.dir/io/jgf_io.cc.o.d"
  "/root/repo/src/io/json_io.cc" "src/CMakeFiles/ubigraph_io.dir/io/json_io.cc.o" "gcc" "src/CMakeFiles/ubigraph_io.dir/io/json_io.cc.o.d"
  "/root/repo/src/io/json_value.cc" "src/CMakeFiles/ubigraph_io.dir/io/json_value.cc.o" "gcc" "src/CMakeFiles/ubigraph_io.dir/io/json_value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ubigraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ubigraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
