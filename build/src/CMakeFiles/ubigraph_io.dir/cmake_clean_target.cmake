file(REMOVE_RECURSE
  "libubigraph_io.a"
)
