# Empty compiler generated dependencies file for ubigraph_query.
# This may be replaced when dependencies are built.
