file(REMOVE_RECURSE
  "libubigraph_query.a"
)
