file(REMOVE_RECURSE
  "CMakeFiles/ubigraph_query.dir/query/cypher_executor.cc.o"
  "CMakeFiles/ubigraph_query.dir/query/cypher_executor.cc.o.d"
  "CMakeFiles/ubigraph_query.dir/query/cypher_lexer.cc.o"
  "CMakeFiles/ubigraph_query.dir/query/cypher_lexer.cc.o.d"
  "CMakeFiles/ubigraph_query.dir/query/cypher_parser.cc.o"
  "CMakeFiles/ubigraph_query.dir/query/cypher_parser.cc.o.d"
  "CMakeFiles/ubigraph_query.dir/query/traversal_api.cc.o"
  "CMakeFiles/ubigraph_query.dir/query/traversal_api.cc.o.d"
  "libubigraph_query.a"
  "libubigraph_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubigraph_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
