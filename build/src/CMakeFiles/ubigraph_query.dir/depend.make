# Empty dependencies file for ubigraph_query.
# This may be replaced when dependencies are built.
