
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/cypher_executor.cc" "src/CMakeFiles/ubigraph_query.dir/query/cypher_executor.cc.o" "gcc" "src/CMakeFiles/ubigraph_query.dir/query/cypher_executor.cc.o.d"
  "/root/repo/src/query/cypher_lexer.cc" "src/CMakeFiles/ubigraph_query.dir/query/cypher_lexer.cc.o" "gcc" "src/CMakeFiles/ubigraph_query.dir/query/cypher_lexer.cc.o.d"
  "/root/repo/src/query/cypher_parser.cc" "src/CMakeFiles/ubigraph_query.dir/query/cypher_parser.cc.o" "gcc" "src/CMakeFiles/ubigraph_query.dir/query/cypher_parser.cc.o.d"
  "/root/repo/src/query/traversal_api.cc" "src/CMakeFiles/ubigraph_query.dir/query/traversal_api.cc.o" "gcc" "src/CMakeFiles/ubigraph_query.dir/query/traversal_api.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ubigraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ubigraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
