# Empty compiler generated dependencies file for ubigraph_rdf.
# This may be replaced when dependencies are built.
