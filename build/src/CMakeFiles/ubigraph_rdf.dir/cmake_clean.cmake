file(REMOVE_RECURSE
  "CMakeFiles/ubigraph_rdf.dir/rdf/ntriples.cc.o"
  "CMakeFiles/ubigraph_rdf.dir/rdf/ntriples.cc.o.d"
  "CMakeFiles/ubigraph_rdf.dir/rdf/triple_store.cc.o"
  "CMakeFiles/ubigraph_rdf.dir/rdf/triple_store.cc.o.d"
  "libubigraph_rdf.a"
  "libubigraph_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubigraph_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
