file(REMOVE_RECURSE
  "libubigraph_rdf.a"
)
