# Empty dependencies file for ubigraph_stream.
# This may be replaced when dependencies are built.
