file(REMOVE_RECURSE
  "CMakeFiles/ubigraph_stream.dir/stream/incremental_kcore.cc.o"
  "CMakeFiles/ubigraph_stream.dir/stream/incremental_kcore.cc.o.d"
  "CMakeFiles/ubigraph_stream.dir/stream/streaming_graph.cc.o"
  "CMakeFiles/ubigraph_stream.dir/stream/streaming_graph.cc.o.d"
  "libubigraph_stream.a"
  "libubigraph_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubigraph_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
