file(REMOVE_RECURSE
  "libubigraph_stream.a"
)
