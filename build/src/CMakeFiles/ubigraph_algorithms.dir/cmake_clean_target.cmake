file(REMOVE_RECURSE
  "libubigraph_algorithms.a"
)
