
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algorithms/centrality.cc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/centrality.cc.o" "gcc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/centrality.cc.o.d"
  "/root/repo/src/algorithms/coloring.cc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/coloring.cc.o" "gcc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/coloring.cc.o.d"
  "/root/repo/src/algorithms/connected_components.cc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/connected_components.cc.o" "gcc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/connected_components.cc.o.d"
  "/root/repo/src/algorithms/diameter.cc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/diameter.cc.o" "gcc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/diameter.cc.o.d"
  "/root/repo/src/algorithms/hop_labels.cc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/hop_labels.cc.o" "gcc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/hop_labels.cc.o.d"
  "/root/repo/src/algorithms/kcore.cc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/kcore.cc.o" "gcc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/kcore.cc.o.d"
  "/root/repo/src/algorithms/mst.cc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/mst.cc.o" "gcc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/mst.cc.o.d"
  "/root/repo/src/algorithms/pagerank.cc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/pagerank.cc.o" "gcc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/pagerank.cc.o.d"
  "/root/repo/src/algorithms/partition.cc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/partition.cc.o" "gcc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/partition.cc.o.d"
  "/root/repo/src/algorithms/reachability.cc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/reachability.cc.o" "gcc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/reachability.cc.o.d"
  "/root/repo/src/algorithms/shortest_path.cc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/shortest_path.cc.o" "gcc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/shortest_path.cc.o.d"
  "/root/repo/src/algorithms/simrank.cc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/simrank.cc.o" "gcc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/simrank.cc.o.d"
  "/root/repo/src/algorithms/subgraph_match.cc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/subgraph_match.cc.o" "gcc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/subgraph_match.cc.o.d"
  "/root/repo/src/algorithms/traversal.cc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/traversal.cc.o" "gcc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/traversal.cc.o.d"
  "/root/repo/src/algorithms/triangle.cc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/triangle.cc.o" "gcc" "src/CMakeFiles/ubigraph_algorithms.dir/algorithms/triangle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ubigraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ubigraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
