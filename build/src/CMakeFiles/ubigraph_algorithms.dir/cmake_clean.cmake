file(REMOVE_RECURSE
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/centrality.cc.o"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/centrality.cc.o.d"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/coloring.cc.o"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/coloring.cc.o.d"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/connected_components.cc.o"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/connected_components.cc.o.d"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/diameter.cc.o"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/diameter.cc.o.d"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/hop_labels.cc.o"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/hop_labels.cc.o.d"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/kcore.cc.o"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/kcore.cc.o.d"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/mst.cc.o"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/mst.cc.o.d"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/pagerank.cc.o"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/pagerank.cc.o.d"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/partition.cc.o"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/partition.cc.o.d"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/reachability.cc.o"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/reachability.cc.o.d"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/shortest_path.cc.o"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/shortest_path.cc.o.d"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/simrank.cc.o"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/simrank.cc.o.d"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/subgraph_match.cc.o"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/subgraph_match.cc.o.d"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/traversal.cc.o"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/traversal.cc.o.d"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/triangle.cc.o"
  "CMakeFiles/ubigraph_algorithms.dir/algorithms/triangle.cc.o.d"
  "libubigraph_algorithms.a"
  "libubigraph_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubigraph_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
