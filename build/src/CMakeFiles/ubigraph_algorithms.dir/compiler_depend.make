# Empty compiler generated dependencies file for ubigraph_algorithms.
# This may be replaced when dependencies are built.
