#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "algorithms/connected_components.h"
#include "algorithms/triangle.h"
#include "common/random.h"
#include "gen/generators.h"

namespace ubigraph::gen {
namespace {

using algo::WeaklyConnectedComponents;

TEST(ErdosRenyiTest, ExactEdgeCountNoLoopsNoDups) {
  Rng rng(1);
  auto el = ErdosRenyi(50, 400, &rng).ValueOrDie();
  EXPECT_EQ(el.num_edges(), 400u);
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const Edge& e : el.edges()) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_TRUE(seen.emplace(e.src, e.dst).second);
  }
}

TEST(ErdosRenyiTest, RejectsImpossibleRequests) {
  Rng rng(1);
  EXPECT_FALSE(ErdosRenyi(1, 1, &rng).ok());
  EXPECT_FALSE(ErdosRenyi(3, 100, &rng).ok());
}

TEST(ErdosRenyiGnpTest, EdgeCountNearExpectation) {
  Rng rng(2);
  auto el = ErdosRenyiGnp(100, 0.05, &rng).ValueOrDie();
  double expected = 100.0 * 99.0 * 0.05;
  EXPECT_NEAR(static_cast<double>(el.num_edges()), expected, expected * 0.35);
  for (const Edge& e : el.edges()) EXPECT_NE(e.src, e.dst);
}

TEST(ErdosRenyiGnpTest, ZeroAndBadProbability) {
  Rng rng(3);
  EXPECT_EQ(ErdosRenyiGnp(10, 0.0, &rng).ValueOrDie().num_edges(), 0u);
  EXPECT_FALSE(ErdosRenyiGnp(10, 1.5, &rng).ok());
}

TEST(RmatTest, SizesAndSkew) {
  Rng rng(4);
  auto el = Rmat(10, 8192, &rng).ValueOrDie();
  EXPECT_EQ(el.num_vertices(), 1024u);
  EXPECT_EQ(el.num_edges(), 8192u);
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  // RMAT should be skewed: max degree far above mean degree (8).
  EXPECT_GT(g.MaxOutDegree(), 24u);
}

TEST(RmatTest, InvalidParameters) {
  Rng rng(1);
  EXPECT_FALSE(Rmat(0, 10, &rng).ok());
  RmatOptions bad;
  bad.a = 0.9;
  bad.b = 0.9;
  EXPECT_FALSE(Rmat(4, 10, &rng, bad).ok());
}

TEST(BarabasiAlbertTest, ConnectedAndSized) {
  Rng rng(5);
  auto el = BarabasiAlbert(100, 2, &rng).ValueOrDie();
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(WeaklyConnectedComponents(g).num_components, 1u);
}

TEST(BarabasiAlbertTest, HubsEmerge) {
  Rng rng(6);
  auto el = BarabasiAlbert(400, 2, &rng).ValueOrDie();
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
  // Preferential attachment: max degree much higher than the mean (~4).
  EXPECT_GT(g.MaxOutDegree(), 20u);
}

TEST(BarabasiAlbertTest, InvalidParameters) {
  Rng rng(1);
  EXPECT_FALSE(BarabasiAlbert(5, 0, &rng).ok());
  EXPECT_FALSE(BarabasiAlbert(3, 3, &rng).ok());
}

TEST(WattsStrogatzTest, DegreePreservedOnAverage) {
  Rng rng(7);
  auto el = WattsStrogatz(100, 4, 0.1, &rng).ValueOrDie();
  EXPECT_EQ(el.num_edges(), 200u);  // n*k/2
}

TEST(WattsStrogatzTest, NoRewireIsRingLattice) {
  Rng rng(8);
  auto el = WattsStrogatz(20, 4, 0.0, &rng).ValueOrDie();
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
  for (VertexId v = 0; v < 20; ++v) EXPECT_EQ(g.OutDegree(v), 4u);
  // Ring lattice with k=4 has triangles.
  EXPECT_GT(algo::CountTriangles(g), 0u);
}

TEST(WattsStrogatzTest, InvalidParameters) {
  Rng rng(1);
  EXPECT_FALSE(WattsStrogatz(10, 3, 0.1, &rng).ok());   // odd k
  EXPECT_FALSE(WattsStrogatz(10, 10, 0.1, &rng).ok());  // k >= n
  EXPECT_FALSE(WattsStrogatz(10, 4, 2.0, &rng).ok());   // bad beta
}

TEST(KRegularTest, EveryVertexHasDegreeK) {
  Rng rng(9);
  auto el = KRegular(30, 4, &rng).ValueOrDie();
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
  for (VertexId v = 0; v < 30; ++v) EXPECT_EQ(g.OutDegree(v), 4u);
  // Simple graph: no self-loops, no duplicate undirected edges. The
  // symmetrized CSR emits each undirected edge in both directions, so every
  // directed (src, dst) pair must be unique. (The edge list is hoisted into
  // a local: `g.ToEdgeList().edges()` would leave the range-for iterating a
  // member of a destroyed temporary.)
  std::set<std::pair<VertexId, VertexId>> seen;
  EdgeList round_trip = g.ToEdgeList();
  for (const Edge& e : round_trip.edges()) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_TRUE(seen.emplace(e.src, e.dst).second)
        << "duplicate edge " << e.src << "->" << e.dst;
  }
  EXPECT_EQ(seen.size(), 30u * 4u / 2u * 2u);  // n*k/2 edges, both directions
}

TEST(KRegularTest, ParityConstraint) {
  Rng rng(10);
  EXPECT_FALSE(KRegular(5, 3, &rng).ok());  // n*k odd
  EXPECT_FALSE(KRegular(4, 4, &rng).ok());  // k >= n
  EXPECT_TRUE(KRegular(5, 2, &rng).ok());
}

TEST(PowerLawDirectedTest, DegreesFollowSkew) {
  Rng rng(11);
  auto el = PowerLawDirected(500, 2.2, 50, &rng).ValueOrDie();
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  uint64_t degree1 = 0, degree_high = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.OutDegree(v) == 1) ++degree1;
    if (g.OutDegree(v) >= 10) ++degree_high;
  }
  EXPECT_GT(degree1, degree_high);  // zipf: low degrees dominate
  EXPECT_GT(degree_high, 0u);      // but a heavy tail exists
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(g.OutDegree(v), 1u);
    EXPECT_LE(g.OutDegree(v), 50u);
  }
}

TEST(PowerLawDirectedTest, InvalidParameters) {
  Rng rng(1);
  EXPECT_FALSE(PowerLawDirected(10, 0.9, 5, &rng).ok());
  EXPECT_FALSE(PowerLawDirected(10, 2.0, 0, &rng).ok());
  EXPECT_FALSE(PowerLawDirected(10, 2.0, 10, &rng).ok());
}

TEST(DeterministicShapesTest, PathCycleStarCompleteGrid) {
  EXPECT_EQ(Path(5).num_edges(), 4u);
  EXPECT_EQ(Cycle(5).num_edges(), 5u);
  EXPECT_EQ(Star(5).num_edges(), 5u);
  EXPECT_EQ(Star(5).num_vertices(), 6u);
  EXPECT_EQ(Complete(5).num_edges(), 10u);
  EXPECT_EQ(Grid(3, 4).num_vertices(), 12u);
  EXPECT_EQ(Grid(3, 4).num_edges(), 3u * 3 + 2u * 4);  // 17
}

TEST(RandomTreeTest, IsConnectedAcyclic) {
  Rng rng(12);
  auto el = RandomTree(50, &rng).ValueOrDie();
  EXPECT_EQ(el.num_edges(), 49u);
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
  EXPECT_EQ(WeaklyConnectedComponents(g).num_components, 1u);
}

TEST(PlantedPartitionTest, IntraDenserThanInter) {
  Rng rng(13);
  auto el = PlantedPartition(80, 4, 0.5, 0.02, &rng).ValueOrDie();
  uint64_t intra = 0, inter = 0;
  for (const Edge& e : el.edges()) {
    if (e.src / 20 == e.dst / 20) ++intra;
    else ++inter;
  }
  EXPECT_GT(intra, inter * 2);
}

TEST(PlantedPartitionTest, InvalidParameters) {
  Rng rng(1);
  EXPECT_FALSE(PlantedPartition(10, 0, 0.5, 0.1, &rng).ok());
  EXPECT_FALSE(PlantedPartition(10, 20, 0.5, 0.1, &rng).ok());
  EXPECT_FALSE(PlantedPartition(10, 2, 1.5, 0.1, &rng).ok());
}

TEST(LfrCommunityTest, ShapeAndLabels) {
  Rng rng(21);
  auto g = LfrCommunity(512, {}, &rng).ValueOrDie();
  EXPECT_EQ(g.edges.num_vertices(), 512u);
  EXPECT_EQ(g.community.size(), 512u);
  EXPECT_GT(g.edges.num_edges(), 512u);  // avg degree 8 -> ~2048 stored edges
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const Edge& e : g.edges.edges()) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_LT(e.src, 512u);
    EXPECT_LT(e.dst, 512u);
    auto lo = std::min(e.src, e.dst), hi = std::max(e.src, e.dst);
    EXPECT_TRUE(seen.emplace(lo, hi).second) << "duplicate " << lo << "-" << hi;
  }
}

TEST(LfrCommunityTest, MixingParameterControlsLocality) {
  Rng rng(22);
  LfrOptions opts;
  opts.mu = 0.1;
  auto g = LfrCommunity(512, opts, &rng).ValueOrDie();
  uint64_t intra = 0, inter = 0;
  for (const Edge& e : g.edges.edges()) {
    if (g.community[e.src] == g.community[e.dst]) ++intra;
    else ++inter;
  }
  // mu = 0.1: ~90% of stubs stay inside the community.
  EXPECT_GT(intra, inter * 3);
}

TEST(LfrCommunityTest, CommunitySizesAreSkewed) {
  Rng rng(23);
  LfrOptions opts;
  opts.min_community = 16;
  auto g = LfrCommunity(2048, opts, &rng).ValueOrDie();
  std::map<uint32_t, uint32_t> sizes;
  for (uint32_t c : g.community) ++sizes[c];
  EXPECT_GT(sizes.size(), 2u);
  uint32_t min_size = UINT32_MAX, max_size = 0;
  for (const auto& [c, s] : sizes) {
    min_size = std::min(min_size, s);
    max_size = std::max(max_size, s);
  }
  // Power-law community sizes: the largest clearly dominates the smallest
  // (a uniform planted partition would give a ratio of ~1).
  EXPECT_GE(max_size, 2 * min_size);
}

TEST(LfrCommunityTest, InvalidParameters) {
  Rng rng(1);
  LfrOptions bad;
  bad.mu = 1.5;
  EXPECT_FALSE(LfrCommunity(256, bad, &rng).ok());
  LfrOptions bad2;
  bad2.min_community = 300;  // larger than n
  EXPECT_FALSE(LfrCommunity(256, bad2, &rng).ok());
  EXPECT_FALSE(LfrCommunity(0, {}, &rng).ok());
}

TEST(BipartiteSkewedTest, EdgesCrossSidesOnly) {
  Rng rng(31);
  auto el = BipartiteSkewed(100, 50, 600, 1.0, &rng).ValueOrDie();
  EXPECT_EQ(el.num_vertices(), 150u);
  EXPECT_LE(el.num_edges(), 600u);
  EXPECT_GE(el.num_edges(), 500u);  // dedup may drop a few on skewed draws
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const Edge& e : el.edges()) {
    EXPECT_LT(e.src, 100u);
    EXPECT_GE(e.dst, 100u);
    EXPECT_LT(e.dst, 150u);
    EXPECT_TRUE(seen.emplace(e.src, e.dst).second);
  }
}

TEST(BipartiteSkewedTest, SkewConcentratesDegreeOnLowRanks) {
  Rng rng(32);
  auto el = BipartiteSkewed(200, 200, 2000, 1.5, &rng).ValueOrDie();
  std::vector<uint32_t> left_deg(200, 0);
  for (const Edge& e : el.edges()) ++left_deg[e.src];
  uint32_t max_deg = *std::max_element(left_deg.begin(), left_deg.end());
  // Zipf 1.5 over 200 ranks: the most popular vertex far exceeds the mean (10).
  EXPECT_GT(max_deg, 30u);
}

TEST(BipartiteSkewedTest, InvalidParameters) {
  Rng rng(1);
  EXPECT_FALSE(BipartiteSkewed(0, 10, 5, 1.0, &rng).ok());
  EXPECT_FALSE(BipartiteSkewed(10, 0, 5, 1.0, &rng).ok());
  EXPECT_FALSE(BipartiteSkewed(10, 10, 5, -1.0, &rng).ok());
}

TEST(RoadLikeTest, BoundedDegreeAndSimple) {
  Rng rng(41);
  auto el = RoadLike(32, 32, {}, &rng).ValueOrDie();
  EXPECT_EQ(el.num_vertices(), 1024u);
  std::vector<uint32_t> deg(1024, 0);
  std::set<std::pair<VertexId, VertexId>> seen;
  for (const Edge& e : el.edges()) {
    EXPECT_NE(e.src, e.dst);
    ++deg[e.src];
    ++deg[e.dst];
    auto lo = std::min(e.src, e.dst), hi = std::max(e.src, e.dst);
    EXPECT_TRUE(seen.emplace(lo, hi).second);
  }
  // Lattice + at most one diagonal per cell: degree stays bounded regardless
  // of size (the structural opposite of RMAT hubs).
  for (uint32_t d : deg) EXPECT_LE(d, 8u);
}

TEST(RoadLikeTest, HighDiameterShape) {
  Rng rng(42);
  auto el = RoadLike(64, 4, {}, &rng).ValueOrDie();
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
  auto cc = WeaklyConnectedComponents(g);
  // keep_prob 0.95 on a thin strip: the dominant component spans most of it.
  auto sizes = cc.ComponentSizes();
  EXPECT_GT(*std::max_element(sizes.begin(), sizes.end()), 128u);
}

TEST(RoadLikeTest, InvalidParameters) {
  Rng rng(1);
  EXPECT_FALSE(RoadLike(0, 8, {}, &rng).ok());
  RoadLikeOptions bad;
  bad.keep_prob = 1.5;
  EXPECT_FALSE(RoadLike(8, 8, bad, &rng).ok());
}

TEST(GeneratorDeterminismTest, SameSeedSameGraph) {
  Rng a(99), b(99);
  auto ga = ErdosRenyi(40, 100, &a).ValueOrDie();
  auto gb = ErdosRenyi(40, 100, &b).ValueOrDie();
  EXPECT_EQ(ga.edges().size(), gb.edges().size());
  for (size_t i = 0; i < ga.edges().size(); ++i) {
    EXPECT_EQ(ga.edges()[i], gb.edges()[i]);
  }
}

}  // namespace
}  // namespace ubigraph::gen
