// Seed-stability regression tests for the corpus generators: a fixed seed
// must yield a bitwise-identical edge list no matter how many threads the
// surrounding pipeline uses, and distinct seeds must yield distinct graphs.
// This is what makes a BENCH.json record or a differential-test failure
// reproducible from its (shape, scale, seed) triple alone — "unreproducible
// input" is one of the benchmark faults the corpus layer exists to close.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "gen/generators.h"
#include "graph/csr_graph.h"

namespace ubigraph::gen {
namespace {

/// Named generator thunk: seed -> edge list.
struct NamedGen {
  std::string name;
  std::function<EdgeList(uint64_t)> make;
};

std::vector<NamedGen> CorpusGenerators() {
  return {
      {"rmat",
       [](uint64_t seed) {
         Rng rng(seed);
         return Rmat(9, 4096, &rng).ValueOrDie();
       }},
      {"lfr",
       [](uint64_t seed) {
         Rng rng(seed);
         return LfrCommunity(512, {}, &rng).ValueOrDie().edges;
       }},
      {"bipartite",
       [](uint64_t seed) {
         Rng rng(seed);
         return BipartiteSkewed(256, 256, 2048, 1.0, &rng).ValueOrDie();
       }},
      {"road",
       [](uint64_t seed) {
         Rng rng(seed);
         return RoadLike(24, 24, {}, &rng).ValueOrDie();
       }},
  };
}

bool SameEdges(const EdgeList& a, const EdgeList& b) {
  if (a.num_vertices() != b.num_vertices()) return false;
  if (a.num_edges() != b.num_edges()) return false;
  for (size_t i = 0; i < a.num_edges(); ++i) {
    if (!(a.edges()[i] == b.edges()[i])) return false;
  }
  return true;
}

TEST(GeneratorSeedStabilityTest, SameSeedBitwiseIdentical) {
  for (const NamedGen& gen : CorpusGenerators()) {
    EdgeList first = gen.make(1234);
    EdgeList second = gen.make(1234);
    EXPECT_TRUE(SameEdges(first, second)) << gen.name;
  }
}

TEST(GeneratorSeedStabilityTest, DistinctSeedsDistinctGraphs) {
  for (const NamedGen& gen : CorpusGenerators()) {
    EdgeList first = gen.make(1234);
    EdgeList second = gen.make(5678);
    EXPECT_FALSE(SameEdges(first, second)) << gen.name;
  }
}

TEST(GeneratorSeedStabilityTest, StableAcrossDownstreamThreadCounts) {
  // The generators are single-threaded by design; this pins the stronger
  // end-to-end property: generating while a parallel CSR build runs on a
  // pool, at any thread count, still produces the same bits. A generator
  // that ever samples from pool-worker state would fail here.
  for (const NamedGen& gen : CorpusGenerators()) {
    const EdgeList reference = gen.make(77);
    std::vector<uint64_t> ref_offsets;
    std::vector<VertexId> ref_targets;
    for (uint32_t threads : {1u, 2u, 8u}) {
      CsrOptions opts;
      opts.directed = false;
      opts.num_threads = threads;
      opts.min_parallel_edges = 0;  // force the parallel path even when tiny
      EdgeList copy = reference;
      auto g = CsrGraph::FromEdges(std::move(copy), opts).ValueOrDie();
      EdgeList regenerated = gen.make(77);
      EXPECT_TRUE(SameEdges(reference, regenerated))
          << gen.name << " with " << threads << " build threads";
      if (threads == 1) {
        ref_offsets = g.offsets();
        ref_targets = g.targets();
      } else {
        EXPECT_EQ(g.offsets(), ref_offsets) << gen.name << " t=" << threads;
        EXPECT_EQ(g.targets(), ref_targets) << gen.name << " t=" << threads;
      }
    }
  }
}

TEST(GeneratorSeedStabilityTest, LfrLabelsFollowSeed) {
  Rng a(9), b(9), c(10);
  auto ga = LfrCommunity(512, {}, &a).ValueOrDie();
  auto gb = LfrCommunity(512, {}, &b).ValueOrDie();
  auto gc = LfrCommunity(512, {}, &c).ValueOrDie();
  EXPECT_EQ(ga.community, gb.community);
  EXPECT_TRUE(SameEdges(ga.edges, gb.edges));
  EXPECT_FALSE(SameEdges(ga.edges, gc.edges));
}

}  // namespace
}  // namespace ubigraph::gen
