// Pins the cost-asymmetry counters of the incremental engines — the
// literature's insert-cheap / delete-expensive asymmetry must be visible in
// rebuild counters and in the stream.incremental.* observability counters,
// with exact values on hand-computable graphs.
#include <gtest/gtest.h>

#include <vector>

#include "algorithms/pagerank.h"
#include "common/random.h"
#include "gen/generators.h"
#include "graph/csr_graph.h"
#include "obs/metrics.h"
#include "stream/incremental.h"
#include "stream/incremental_components.h"
#include "stream/incremental_kcore.h"
#include "stream/incremental_pagerank.h"
#include "update_stream_util.h"

namespace ubigraph::stream {
namespace {

using test::StreamKind;
using test::UpdateStreamGen;

class IncrementalCountersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::MetricsRegistry::Global().Reset();
    obs::MetricsRegistry::Global().set_enabled(true);
  }

  static int64_t CounterValue(const std::string& name) {
    return obs::MetricsRegistry::Global().GetCounter(name)->Value();
  }
};

EdgeList Triangle(VertexId extra_vertices = 0) {
  EdgeList el(3 + extra_vertices);
  el.Add(0, 1);
  el.Add(1, 2);
  el.Add(0, 2);
  return el;
}

TEST_F(IncrementalCountersTest, InsertOnlyStreamsNeverRebuild) {
  Rng rng(3);
  const EdgeList base = gen::Rmat(7, 400, &rng).ValueOrDie();
  UpdateStreamGen gen(base, 77);
  const EdgeList init = gen.InitialEdges();

  auto cc = IncrementalComponents::Create(init).ValueOrDie();
  IncrementalKCore kc(init.num_vertices());
  for (const Edge& e : init.edges()) ASSERT_TRUE(kc.InsertEdge(e.src, e.dst).ok());

  for (int b = 0; b < 6; ++b) {
    const auto batch = gen.NextBatch(StreamKind::kInsertOnly, 10);
    ASSERT_TRUE(cc.ApplyBatch(batch).ok());
    ASSERT_TRUE(kc.ApplyBatch(batch).ok());
  }
  EXPECT_EQ(cc.rebuilds(), 0u);
  EXPECT_EQ(kc.full_rebuilds(), 0u);
  EXPECT_EQ(kc.deletion_repairs(), 0u);
  EXPECT_EQ(CounterValue("stream.incremental.components.rebuilds"), 0);
  EXPECT_EQ(CounterValue("stream.incremental.kcore.rebuilds"), 0);
}

TEST_F(IncrementalCountersTest, ComponentsRebuildOnlyWhenLastConnectionDies) {
  // Two parallel arcs plus a reverse arc between 0 and 1, and a bridge 1-2.
  EdgeList el(3);
  el.Add(0, 1);
  el.Add(0, 1);
  el.Add(1, 0);
  el.Add(1, 2);
  auto cc = IncrementalComponents::Create(el).ValueOrDie();
  EXPECT_EQ(cc.num_components(), 1u);

  // Removing redundant copies never rebuilds: a parallel arc, then the
  // reverse arc, each leave at least one live connection between 0 and 1.
  std::vector<GraphDelta> batch = {GraphDelta::Remove(0, 1),
                                   GraphDelta::Remove(1, 0)};
  ASSERT_TRUE(cc.ApplyBatch(batch).ok());
  EXPECT_EQ(cc.rebuilds(), 0u);
  EXPECT_EQ(cc.num_components(), 1u);

  // Removing the LAST 0-1 connection must rebuild (and split).
  batch = {GraphDelta::Remove(0, 1)};
  auto res = cc.ApplyBatch(batch).ValueOrDie();
  EXPECT_EQ(res.rebuilds, 1u);
  EXPECT_EQ(cc.rebuilds(), 1u);
  EXPECT_EQ(cc.num_components(), 2u);

  // A batch mixing a split-deletion with inserts still rebuilds once.
  batch = {GraphDelta::Insert(0, 1), GraphDelta::Remove(1, 2),
           GraphDelta::Insert(2, 0)};
  res = cc.ApplyBatch(batch).ValueOrDie();
  EXPECT_EQ(res.rebuilds, 1u);
  EXPECT_EQ(cc.rebuilds(), 2u);
  EXPECT_EQ(cc.num_components(), 1u);
}

TEST_F(IncrementalCountersTest, ComponentsObsCountersMatchHandComputation) {
  // Triangle 0-1-2 plus isolated vertex 3.
  auto cc = IncrementalComponents::Create(Triangle(1)).ValueOrDie();

  // Insert (0,3): one union attempt (1 edge), one merge (2 vertices).
  ASSERT_TRUE(cc.ApplyBatch(std::vector<GraphDelta>{GraphDelta::Insert(0, 3)}).ok());
  EXPECT_EQ(CounterValue("stream.incremental.components.batches"), 1);
  EXPECT_EQ(CounterValue("stream.incremental.components.vertices_reactivated"), 2);
  EXPECT_EQ(CounterValue("stream.incremental.components.edges_rerelaxed"), 1);
  EXPECT_EQ(CounterValue("stream.incremental.components.rebuilds"), 0);

  // Remove (0,3): last 0-3 connection -> rebuild scanning the 3 surviving
  // arcs and relabeling all 4 vertices.
  ASSERT_TRUE(cc.ApplyBatch(std::vector<GraphDelta>{GraphDelta::Remove(0, 3)}).ok());
  EXPECT_EQ(CounterValue("stream.incremental.components.batches"), 2);
  EXPECT_EQ(CounterValue("stream.incremental.components.vertices_reactivated"), 2 + 4);
  EXPECT_EQ(CounterValue("stream.incremental.components.edges_rerelaxed"), 1 + 3);
  EXPECT_EQ(CounterValue("stream.incremental.components.rebuilds"), 1);
}

TEST_F(IncrementalCountersTest, KCoreDeletionRepairVsLegacyRebuild) {
  // Default engine: deletions are local repairs, full_rebuilds stays 0.
  IncrementalKCore repair(3);
  ASSERT_TRUE(repair.InsertEdge(0, 1).ok());
  ASSERT_TRUE(repair.InsertEdge(1, 2).ok());
  ASSERT_TRUE(repair.InsertEdge(0, 2).ok());
  ASSERT_TRUE(repair.RemoveEdge(0, 1).ok());
  EXPECT_EQ(repair.deletion_repairs(), 1u);
  EXPECT_EQ(repair.full_rebuilds(), 0u);
  EXPECT_EQ(repair.core_numbers(), (std::vector<uint32_t>{1, 1, 1}));

  // Legacy engine: every deletion is a counted full recomputation.
  IncrementalKCore legacy(3, {.repair_deletions = false});
  ASSERT_TRUE(legacy.InsertEdge(0, 1).ok());
  ASSERT_TRUE(legacy.InsertEdge(1, 2).ok());
  ASSERT_TRUE(legacy.InsertEdge(0, 2).ok());
  ASSERT_TRUE(legacy.RemoveEdge(0, 1).ok());
  EXPECT_EQ(legacy.deletion_repairs(), 0u);
  EXPECT_EQ(legacy.full_rebuilds(), 1u);
  EXPECT_EQ(legacy.core_numbers(), repair.core_numbers());
}

TEST_F(IncrementalCountersTest, KCoreObsCountersMatchHandComputation) {
  // Triangle 0-1-2 (all core 2) plus isolated vertex 3.
  IncrementalKCore kc(4);
  ASSERT_TRUE(kc.InsertEdge(0, 1).ok());
  ASSERT_TRUE(kc.InsertEdge(1, 2).ok());
  ASSERT_TRUE(kc.InsertEdge(0, 2).ok());

  // Insert (0,3): r = min(2, 0) = 0, subcore of 3 is {3} with one qualifying
  // neighbor -> 1 candidate, 1 adjacency entry scanned, promoted to core 1.
  auto res = kc.ApplyBatch(std::vector<GraphDelta>{GraphDelta::Insert(0, 3)})
                 .ValueOrDie();
  EXPECT_EQ(res.vertices_reactivated, 1u);
  EXPECT_EQ(res.edges_rerelaxed, 1u);
  EXPECT_EQ(kc.CoreNumber(3), 1u);
  EXPECT_EQ(CounterValue("stream.incremental.kcore.vertices_reactivated"), 1);
  EXPECT_EQ(CounterValue("stream.incremental.kcore.edges_rerelaxed"), 1);

  // Remove (0,1): r = 2, subcore {0, 1, 2}; all three lose their second
  // level-2 neighbor and drop to core 1.
  res = kc.ApplyBatch(std::vector<GraphDelta>{GraphDelta::Remove(0, 1)})
            .ValueOrDie();
  EXPECT_EQ(res.vertices_reactivated, 3u);
  EXPECT_EQ(res.deletion_repairs, 1u);
  EXPECT_EQ(res.full_rebuilds, 0u);
  EXPECT_EQ(kc.core_numbers(), (std::vector<uint32_t>{1, 1, 1, 1}));
  EXPECT_EQ(CounterValue("stream.incremental.kcore.batches"), 2);
  EXPECT_EQ(CounterValue("stream.incremental.kcore.vertices_reactivated"), 1 + 3);
  EXPECT_EQ(CounterValue("stream.incremental.kcore.rebuilds"), 0);
}

TEST_F(IncrementalCountersTest, PageRankObsCountersMatchBatchReport) {
  Rng rng(5);
  const EdgeList base = gen::Rmat(7, 400, &rng).ValueOrDie();
  UpdateStreamGen gen(base, 9, {.window = 16});
  auto pr = IncrementalPageRank::Create(gen.InitialEdges()).ValueOrDie();

  const auto batch = gen.NextBatch(StreamKind::kMixed, 6);
  const auto res = pr.ApplyBatch(batch).ValueOrDie();
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(CounterValue("stream.incremental.pagerank.batches"), 1);
  EXPECT_EQ(CounterValue("stream.incremental.pagerank.vertices_reactivated"),
            static_cast<int64_t>(res.vertices_reactivated));
  EXPECT_EQ(CounterValue("stream.incremental.pagerank.edges_rerelaxed"),
            static_cast<int64_t>(res.edges_rerelaxed));
  EXPECT_EQ(CounterValue("stream.incremental.pagerank.rebuilds"), 0);
}

TEST_F(IncrementalCountersTest, LocalizedBatchesTouchFewerEdgesThanRecompute) {
  // The acceptance asymmetry: on localized updates the incremental engine
  // must re-relax strictly fewer edges than a from-scratch run would.
  Rng rng(13);
  const EdgeList base = gen::Rmat(9, 4096, &rng).ValueOrDie();
  UpdateStreamGen gen(base, 21, {.window = 32});
  auto pr = IncrementalPageRank::Create(gen.InitialEdges()).ValueOrDie();

  const auto batch = gen.NextBatch(StreamKind::kMixed, 8);
  const auto res = pr.ApplyBatch(batch).ValueOrDie();
  ASSERT_TRUE(res.converged);

  const EdgeList live = gen.LiveEdges();
  auto g = CsrGraph::FromEdges(live, CsrOptions{.build_in_edges = true})
               .ValueOrDie();
  algo::PageRankOptions scratch_opts;
  scratch_opts.mode = algo::PageRankMode::kPull;
  auto scratch = algo::PageRank(g, scratch_opts).ValueOrDie();
  const uint64_t recompute_edges =
      static_cast<uint64_t>(scratch.iterations) * live.num_edges();
  EXPECT_LT(res.edges_rerelaxed, recompute_edges);
  EXPECT_EQ(CounterValue("stream.incremental.pagerank.edges_rerelaxed"),
            static_cast<int64_t>(res.edges_rerelaxed));
}

TEST_F(IncrementalCountersTest, DisabledRegistrySkipsFlushes) {
  obs::MetricsRegistry::Global().set_enabled(false);
  auto cc = IncrementalComponents::Create(Triangle()).ValueOrDie();
  ASSERT_TRUE(cc.ApplyBatch(std::vector<GraphDelta>{GraphDelta::Insert(1, 0)}).ok());
  obs::MetricsRegistry::Global().set_enabled(true);
  EXPECT_EQ(CounterValue("stream.incremental.components.batches"), 0);
}

}  // namespace
}  // namespace ubigraph::stream
