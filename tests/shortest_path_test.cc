#include <gtest/gtest.h>

#include "algorithms/shortest_path.h"
#include "algorithms/traversal.h"
#include "common/random.h"
#include "gen/generators.h"

namespace ubigraph::algo {
namespace {

CsrGraph WeightedDiamond() {
  // 0 -> 1 (1), 0 -> 2 (4), 1 -> 2 (2), 1 -> 3 (5), 2 -> 3 (1).
  EdgeList el(4);
  el.Add(0, 1, 1);
  el.Add(0, 2, 4);
  el.Add(1, 2, 2);
  el.Add(1, 3, 5);
  el.Add(2, 3, 1);
  return CsrGraph::FromEdges(std::move(el)).ValueOrDie();
}

TEST(DijkstraTest, ShortestDistancesOnDiamond) {
  auto t = Dijkstra(WeightedDiamond(), 0);
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(t->distance[0], 0);
  EXPECT_DOUBLE_EQ(t->distance[1], 1);
  EXPECT_DOUBLE_EQ(t->distance[2], 3);
  EXPECT_DOUBLE_EQ(t->distance[3], 4);
}

TEST(DijkstraTest, PathReconstruction) {
  auto t = Dijkstra(WeightedDiamond(), 0).ValueOrDie();
  auto path = t.PathTo(3);
  EXPECT_EQ(path, (std::vector<VertexId>{0, 1, 2, 3}));
  EXPECT_EQ(t.PathTo(0), (std::vector<VertexId>{0}));
}

TEST(DijkstraTest, UnreachableIsInfinite) {
  auto g = CsrGraph::FromPairs(3, {{0, 1}}).ValueOrDie();
  auto t = Dijkstra(g, 0).ValueOrDie();
  EXPECT_EQ(t.distance[2], kInfDistance);
  EXPECT_TRUE(t.PathTo(2).empty());
}

TEST(DijkstraTest, NegativeWeightRejected) {
  EdgeList el(2);
  el.Add(0, 1, -1.0);
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  EXPECT_FALSE(Dijkstra(g, 0).ok());
}

TEST(DijkstraTest, OutOfRangeSourceRejected) {
  auto g = CsrGraph::FromPairs(2, {{0, 1}}).ValueOrDie();
  EXPECT_TRUE(Dijkstra(g, 9).status().IsOutOfRange());
}

TEST(DijkstraTest, MatchesBfsOnUnitWeights) {
  Rng rng(3);
  auto el = gen::ErdosRenyi(80, 320, &rng).ValueOrDie();
  CsrGraph g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  auto t = Dijkstra(g, 0).ValueOrDie();
  auto bfs = BfsDistances(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (bfs[v] == kUnreachable) {
      EXPECT_EQ(t.distance[v], kInfDistance);
    } else {
      EXPECT_DOUBLE_EQ(t.distance[v], bfs[v]);
    }
  }
}

TEST(DijkstraPointToPointTest, MatchesFullDijkstra) {
  CsrGraph g = WeightedDiamond();
  auto full = Dijkstra(g, 0).ValueOrDie();
  for (VertexId target = 0; target < 4; ++target) {
    auto d = DijkstraPointToPoint(g, 0, target);
    ASSERT_TRUE(d.ok());
    EXPECT_DOUBLE_EQ(*d, full.distance[target]);
  }
}

TEST(DijkstraPointToPointTest, UnreachableReturnsInfinity) {
  auto g = CsrGraph::FromPairs(3, {{0, 1}}).ValueOrDie();
  EXPECT_EQ(DijkstraPointToPoint(g, 1, 0).ValueOrDie(), kInfDistance);
}

TEST(BellmanFordTest, HandlesNegativeEdges) {
  EdgeList el(4);
  el.Add(0, 1, 4);
  el.Add(0, 2, 2);
  el.Add(2, 1, -3);  // 0->2->1 costs -1 < 4
  el.Add(1, 3, 1);
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  auto t = BellmanFord(g, 0);
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(t->distance[1], -1);
  EXPECT_DOUBLE_EQ(t->distance[3], 0);
}

TEST(BellmanFordTest, NegativeCycleDetected) {
  EdgeList el(3);
  el.Add(0, 1, 1);
  el.Add(1, 2, -2);
  el.Add(2, 1, 1);  // cycle 1->2->1 weight -1
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  EXPECT_FALSE(BellmanFord(g, 0).ok());
}

TEST(BellmanFordTest, UnreachableNegativeCycleIgnored) {
  EdgeList el(4);
  el.Add(0, 1, 1);
  el.Add(2, 3, -5);
  el.Add(3, 2, 1);  // negative cycle, but not reachable from 0
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  auto t = BellmanFord(g, 0);
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(t->distance[1], 1);
}

TEST(BellmanFordTest, AgreesWithDijkstraOnPositiveWeights) {
  Rng rng(8);
  EdgeList el(40);
  for (int i = 0; i < 150; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(40));
    VertexId v = static_cast<VertexId>(rng.NextBounded(40));
    if (u != v) el.Add(u, v, 1.0 + rng.NextDouble() * 9.0);
  }
  el.EnsureVertices(40);
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  auto bf = BellmanFord(g, 0).ValueOrDie();
  auto dj = Dijkstra(g, 0).ValueOrDie();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(bf.distance[v] == kInfDistance ? -1 : bf.distance[v],
                dj.distance[v] == kInfDistance ? -1 : dj.distance[v], 1e-9);
  }
}

TEST(BidirectionalBfsTest, MatchesBfsOnRandomUndirected) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed + 20);
    auto el = gen::ErdosRenyi(60, 120, &rng).ValueOrDie();
    CsrOptions opts;
    opts.directed = false;
    CsrGraph g = CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
    auto dist = BfsDistances(g, 0);
    for (VertexId t = 0; t < g.num_vertices(); t += 7) {
      uint32_t bi = BidirectionalBfsDistance(g, 0, t).ValueOrDie();
      EXPECT_EQ(bi, dist[t]) << "seed=" << seed << " t=" << t;
    }
  }
}

TEST(BidirectionalBfsTest, DirectedWithInEdges) {
  CsrOptions opts;
  opts.build_in_edges = true;
  auto g = CsrGraph::FromEdges(gen::Path(6), opts).ValueOrDie();
  EXPECT_EQ(BidirectionalBfsDistance(g, 0, 5).ValueOrDie(), 5u);
  EXPECT_EQ(BidirectionalBfsDistance(g, 5, 0).ValueOrDie(), UINT32_MAX);
  EXPECT_EQ(BidirectionalBfsDistance(g, 2, 2).ValueOrDie(), 0u);
}

TEST(BidirectionalBfsTest, DirectedWithoutInEdgesIsClearError) {
  auto g = CsrGraph::FromEdges(gen::Path(6), CsrOptions{}).ValueOrDie();
  ASSERT_FALSE(g.has_in_edges());
  auto r = BidirectionalBfsDistance(g, 0, 5);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(BidirectionalBfsDistance(g, 0, 99).ok());  // out of range
}

TEST(AllPairsTest, SymmetricOnUndirected) {
  CsrOptions opts;
  opts.directed = false;
  CsrGraph g = CsrGraph::FromEdges(gen::Cycle(7), opts).ValueOrDie();
  auto all = AllPairsHopDistances(g);
  for (VertexId u = 0; u < 7; ++u) {
    for (VertexId v = 0; v < 7; ++v) {
      EXPECT_EQ(all[u][v], all[v][u]);
    }
  }
  EXPECT_EQ(all[0][3], 3u);
  EXPECT_EQ(all[0][4], 3u);  // around the other way
}

}  // namespace
}  // namespace ubigraph::algo
