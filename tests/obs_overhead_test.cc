// Enforces the observability overhead budget from DESIGN.md: running PageRank
// with the metrics registry enabled must cost at most 2% more wall-clock than
// running it disabled (median over interleaved repetitions). Labeled `perf`
// in CTest — timing-sensitive, excluded from the `ctest -L unit` fast path.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "algorithms/pagerank.h"
#include "common/random.h"
#include "common/timer.h"
#include "gen/generators.h"
#include "graph/csr_graph.h"
#include "obs/metrics.h"

namespace ubigraph {
namespace {

double MedianSeconds(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

TEST(ObsOverheadTest, InstrumentedPageRankWithinTwoPercentOfUninstrumented) {
  Rng rng(11);
  EdgeList el = gen::Rmat(13, uint64_t{8} << 13, &rng).ValueOrDie();
  CsrOptions copts;
  copts.build_in_edges = true;
  CsrGraph g = CsrGraph::FromEdges(std::move(el), copts).ValueOrDie();

  algo::PageRankOptions opts;
  opts.max_iterations = 20;
  opts.tolerance = 0;

  auto time_run = [&](bool enabled) {
    obs::MetricsRegistry::Global().set_enabled(enabled);
    Timer timer;
    auto result = algo::PageRank(g, opts);
    double seconds = timer.ElapsedSeconds();
    EXPECT_TRUE(result.ok());
    return seconds;
  };

  // Warm up caches/allocator so neither side pays first-touch costs.
  time_run(false);
  time_run(true);

  // The true overhead is near zero by design (metrics are flushed once per
  // run, never in inner loops), but wall-clock medians on a shared machine
  // are noisy — retry a few times before declaring the budget blown.
  constexpr int kRepsPerAttempt = 5;
  constexpr int kMaxAttempts = 5;
  constexpr double kBudget = 1.02;
  double best_ratio = 1e9;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    std::vector<double> off, on;
    for (int rep = 0; rep < kRepsPerAttempt; ++rep) {
      // Interleave so clock drift and thermal effects hit both sides alike.
      off.push_back(time_run(false));
      on.push_back(time_run(true));
    }
    double ratio = MedianSeconds(on) / MedianSeconds(off);
    best_ratio = std::min(best_ratio, ratio);
    if (best_ratio <= kBudget) break;
  }
  obs::MetricsRegistry::Global().set_enabled(true);
  EXPECT_LE(best_ratio, kBudget)
      << "instrumented PageRank is more than 2% slower than uninstrumented";
}

}  // namespace
}  // namespace ubigraph
