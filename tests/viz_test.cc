#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "algorithms/connected_components.h"
#include "common/random.h"
#include "gen/generators.h"
#include "viz/coarsen.h"
#include "viz/dot_export.h"
#include "viz/layout.h"
#include "viz/svg_export.h"

namespace ubigraph::viz {
namespace {

CsrGraph Undirected(EdgeList el) {
  CsrOptions opts;
  opts.directed = false;
  return CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
}

void ExpectInUnitSquare(const Layout& layout) {
  for (const Point& p : layout) {
    EXPECT_GE(p.x, -1e-9);
    EXPECT_LE(p.x, 1 + 1e-9);
    EXPECT_GE(p.y, -1e-9);
    EXPECT_LE(p.y, 1 + 1e-9);
  }
}

TEST(ForceLayoutTest, CoordinatesNormalized) {
  auto g = Undirected(gen::Cycle(12));
  Layout layout = ForceDirectedLayout(g);
  ASSERT_EQ(layout.size(), 12u);
  ExpectInUnitSquare(layout);
}

TEST(ForceLayoutTest, DeterministicForSeed) {
  auto g = Undirected(gen::Cycle(8));
  ForceLayoutOptions opts;
  opts.seed = 5;
  Layout a = ForceDirectedLayout(g, opts);
  Layout b = ForceDirectedLayout(g, opts);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].x, b[i].x);
    EXPECT_DOUBLE_EQ(a[i].y, b[i].y);
  }
}

TEST(ForceLayoutTest, AdjacentVerticesCloserThanRandomPairs) {
  Rng rng(3);
  auto g = Undirected(gen::PlantedPartition(40, 2, 0.5, 0.02, &rng).ValueOrDie());
  ForceLayoutOptions opts;
  opts.iterations = 200;
  Layout layout = ForceDirectedLayout(g, opts);
  double mean_edge = MeanEdgeLength(g, layout);
  // Mean distance over all pairs.
  double total = 0;
  uint64_t count = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = u + 1; v < g.num_vertices(); ++v) {
      double dx = layout[u].x - layout[v].x;
      double dy = layout[u].y - layout[v].y;
      total += std::sqrt(dx * dx + dy * dy);
      ++count;
    }
  }
  EXPECT_LT(mean_edge, total / count);
}

TEST(ForceLayoutTest, DegenerateSizes) {
  auto empty = CsrGraph::FromEdges(EdgeList{}).ValueOrDie();
  EXPECT_TRUE(ForceDirectedLayout(empty).empty());
  auto single = CsrGraph::FromEdges(EdgeList(1)).ValueOrDie();
  Layout one = ForceDirectedLayout(single);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0].x, 0.5);
}

TEST(CircularLayoutTest, PointsOnCircle) {
  auto g = Undirected(gen::Cycle(8));
  Layout layout = CircularLayout(g);
  for (const Point& p : layout) {
    double r = std::hypot(p.x - 0.5, p.y - 0.5);
    EXPECT_NEAR(r, 0.5, 1e-9);
  }
}

TEST(CircularLayoutTest, CycleDrawnOnCircleHasNoCrossings) {
  auto g = Undirected(gen::Cycle(10));
  EXPECT_EQ(CountEdgeCrossings(g, CircularLayout(g)), 0u);
}

TEST(HierarchicalLayoutTest, LayersFollowTopology) {
  // Diamond DAG: 0 -> 1,2 -> 3.
  auto g = CsrGraph::FromPairs(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}}).ValueOrDie();
  Layout layout = HierarchicalLayout(g);
  EXPECT_LT(layout[0].y, layout[1].y);
  EXPECT_LT(layout[1].y, layout[3].y);
  EXPECT_DOUBLE_EQ(layout[1].y, layout[2].y);
}

TEST(HierarchicalLayoutTest, CyclesCollapse) {
  // A 3-cycle feeding a vertex: cycle members share a layer.
  auto g = CsrGraph::FromPairs(4, {{0, 1}, {1, 2}, {2, 0}, {1, 3}}).ValueOrDie();
  Layout layout = HierarchicalLayout(g);
  EXPECT_DOUBLE_EQ(layout[0].y, layout[1].y);
  EXPECT_DOUBLE_EQ(layout[1].y, layout[2].y);
  EXPECT_GT(layout[3].y, layout[1].y);
}

TEST(HierarchicalLayoutTest, TreeReducesCrossingsVsRandomOrder) {
  // A balanced binary tree laid out hierarchically should have 0 crossings.
  EdgeList el(7);
  el.Add(0, 1);
  el.Add(0, 2);
  el.Add(1, 3);
  el.Add(1, 4);
  el.Add(2, 5);
  el.Add(2, 6);
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  EXPECT_EQ(CountEdgeCrossings(g, HierarchicalLayout(g)), 0u);
}

TEST(GridLayoutTest, DistinctPositions) {
  auto g = Undirected(gen::Path(9));
  Layout layout = GridLayout(g);
  for (size_t i = 0; i < layout.size(); ++i) {
    for (size_t j = i + 1; j < layout.size(); ++j) {
      EXPECT_TRUE(layout[i].x != layout[j].x || layout[i].y != layout[j].y);
    }
  }
  ExpectInUnitSquare(layout);
}

TEST(CrossingsTest, KnownCrossing) {
  // Two edges forming an X.
  auto g = CsrGraph::FromPairs(4, {{0, 1}, {2, 3}}).ValueOrDie();
  Layout x_layout{{0, 0}, {1, 1}, {0, 1}, {1, 0}};
  EXPECT_EQ(CountEdgeCrossings(g, x_layout), 1u);
  Layout parallel{{0, 0}, {1, 0}, {0, 1}, {1, 1}};
  EXPECT_EQ(CountEdgeCrossings(g, parallel), 0u);
}

TEST(CrossingsTest, SharedEndpointNotACrossing) {
  auto g = CsrGraph::FromPairs(3, {{0, 1}, {0, 2}}).ValueOrDie();
  Layout layout{{0, 0}, {1, 0}, {1, 1}};
  EXPECT_EQ(CountEdgeCrossings(g, layout), 0u);
}

TEST(SvgTest, WellFormedDocument) {
  auto g = Undirected(gen::Cycle(5));
  std::string svg = RenderSvg(g, CircularLayout(g));
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // 5 vertices, 5 edges.
  size_t circles = 0, lines = 0;
  for (size_t pos = 0; (pos = svg.find("<circle", pos)) != std::string::npos;
       ++pos) {
    ++circles;
  }
  for (size_t pos = 0; (pos = svg.find("<line", pos)) != std::string::npos;
       ++pos) {
    ++lines;
  }
  EXPECT_EQ(circles, 5u);
  EXPECT_EQ(lines, 5u);
}

TEST(SvgTest, CustomColorsAndLabels) {
  auto g = Undirected(gen::Path(3));
  SvgStyle style;
  style.vertex_colors = {"#ff0000", "", "#00ff00"};
  style.vertex_labels = {"start", "", "end"};
  std::string svg = RenderSvg(g, GridLayout(g), style);
  EXPECT_NE(svg.find("#ff0000"), std::string::npos);
  EXPECT_NE(svg.find(">start<"), std::string::npos);
  EXPECT_NE(svg.find(">end<"), std::string::npos);
}

TEST(SvgTest, ArrowheadsForDirected) {
  auto g = CsrGraph::FromEdges(gen::Path(3)).ValueOrDie();
  SvgStyle style;
  style.draw_arrowheads = true;
  std::string svg = RenderSvg(g, GridLayout(g), style);
  EXPECT_NE(svg.find("marker-end"), std::string::npos);
}

TEST(CategoricalColorsTest, StableAndCycling) {
  auto colors = CategoricalColors({0, 1, 0, 12});
  EXPECT_EQ(colors[0], colors[2]);
  EXPECT_EQ(colors[0], colors[3]);  // 12 cycles back to 0
  EXPECT_NE(colors[0], colors[1]);
}

TEST(DotTest, DirectedAndUndirectedSyntax) {
  auto directed = CsrGraph::FromEdges(gen::Path(3)).ValueOrDie();
  std::string d = RenderDot(directed);
  EXPECT_NE(d.find("digraph"), std::string::npos);
  EXPECT_NE(d.find("0 -> 1"), std::string::npos);

  auto undirected = Undirected(gen::Path(3));
  std::string u = RenderDot(undirected);
  EXPECT_EQ(u.find("digraph"), std::string::npos);
  EXPECT_NE(u.find("0 -- 1"), std::string::npos);
  // Undirected edges rendered once.
  EXPECT_EQ(u.find("1 -- 0"), std::string::npos);
}

TEST(DotTest, LabelsColorsWeights) {
  EdgeList el(2);
  el.Add(0, 1, 2.5);
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  DotOptions opts;
  opts.include_weights = true;
  opts.vertex_labels = {"alpha \"quoted\"", "beta"};
  opts.vertex_colors = {"red", ""};
  std::string dot = RenderDot(g, opts);
  EXPECT_NE(dot.find("label=\"alpha \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=\"red\""), std::string::npos);
  EXPECT_NE(dot.find("2.5"), std::string::npos);
}

TEST(DotTest, PropertyGraphRendering) {
  PropertyGraph g;
  VertexId a = g.AddVertex("Person");
  VertexId b = g.AddVertex("Person");
  g.SetVertexProperty(a, "name", std::string("ann")).Abort();
  g.AddEdge(a, b, "knows").ValueOrDie();
  std::string dot = RenderPropertyGraphDot(g);
  EXPECT_NE(dot.find("Person: ann"), std::string::npos);
  EXPECT_NE(dot.find("knows"), std::string::npos);
}

TEST(CoarsenTest, GroupsCollapse) {
  // Two cliques joined by 3 cross edges -> coarse graph: 2 vertices, 1 edge
  // of multiplicity 3 (per direction in undirected storage).
  EdgeList el(8);
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) el.Add(u, v);
  }
  for (VertexId u = 4; u < 8; ++u) {
    for (VertexId v = u + 1; v < 8; ++v) el.Add(u, v);
  }
  el.Add(0, 4);
  el.Add(1, 5);
  el.Add(2, 6);
  auto g = Undirected(std::move(el));
  std::vector<uint32_t> group(8);
  for (VertexId v = 0; v < 8; ++v) group[v] = v / 4;
  auto coarse = CoarsenByGroups(g, group, 2).ValueOrDie();
  EXPECT_EQ(coarse.graph.num_vertices(), 2u);
  EXPECT_EQ(coarse.group_sizes[0], 4u);
  ASSERT_GE(coarse.edge_multiplicity.size(), 1u);
  EXPECT_DOUBLE_EQ(coarse.edge_multiplicity[0], 3.0);
}

TEST(CoarsenTest, InvalidGroupsRejected) {
  auto g = Undirected(gen::Path(4));
  EXPECT_FALSE(CoarsenByGroups(g, {0, 1}, 2).ok());       // size mismatch
  EXPECT_FALSE(CoarsenByGroups(g, {0, 1, 2, 9}, 3).ok()); // id out of range
}

TEST(SampleTopDegreeTest, KeepsHubs) {
  Rng rng(6);
  auto g = Undirected(gen::BarabasiAlbert(100, 2, &rng).ValueOrDie());
  auto sampled = SampleTopDegree(g, 10).ValueOrDie();
  EXPECT_EQ(sampled.graph.num_vertices(), 10u);
  EXPECT_EQ(sampled.original_id.size(), 10u);
  // The overall max-degree vertex must be included.
  VertexId hub = 0;
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    if (g.OutDegree(v) > g.OutDegree(hub)) hub = v;
  }
  EXPECT_NE(std::find(sampled.original_id.begin(), sampled.original_id.end(), hub),
            sampled.original_id.end());
}

TEST(SampleTopDegreeTest, SmallerThanRequestKeepsAll) {
  auto g = Undirected(gen::Path(3));
  auto sampled = SampleTopDegree(g, 10).ValueOrDie();
  EXPECT_EQ(sampled.graph.num_vertices(), 3u);
  EXPECT_FALSE(SampleTopDegree(g, 0).ok());
}

}  // namespace
}  // namespace ubigraph::viz
