// Failure-injection smoke tests: every parser in the library is fed random
// garbage and randomly mutated valid documents. The contract under test is
// totality — parsers must return ok() or an error Status, never crash,
// hang, or corrupt memory. (Run under ASan in CI-like setups.)
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "algorithms/kcore.h"
#include "common/crc32.h"
#include "common/random.h"
#include "gen/generators.h"
#include "graph/csr_graph.h"
#include "graph/dynamic_graph.h"
#include "io/binary_io.h"
#include "io/csv_io.h"
#include "io/edge_list_io.h"
#include "io/gml_io.h"
#include "io/graphml_io.h"
#include "io/jgf_io.h"
#include "io/json_io.h"
#include "io/mmio.h"
#include "query/cypher_parser.h"
#include "query/plan_cache.h"
#include "rdf/ntriples.h"
#include "shard/msg_stream.h"
#include "shard/segment.h"
#include "shard/sharded_csr.h"
#include "stream/incremental_components.h"
#include "stream/incremental_kcore.h"
#include "stream/incremental_pagerank.h"
#include "stream/streaming_graph.h"

namespace ubigraph {
namespace {

/// Random printable-ish garbage (includes brackets/quotes to reach parser
/// corners).
std::string RandomGarbage(Rng* rng, size_t max_len) {
  static const char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 \t\n\"'<>[]{}(),.:;*-=#\\/";
  size_t len = rng->NextBounded(max_len + 1);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out += kAlphabet[rng->NextBounded(sizeof(kAlphabet) - 1)];
  }
  return out;
}

/// Applies `count` random single-byte mutations (overwrite/insert/delete).
std::string Mutate(std::string doc, Rng* rng, int count) {
  for (int i = 0; i < count && !doc.empty(); ++i) {
    size_t pos = rng->NextBounded(doc.size());
    switch (rng->NextBounded(3)) {
      case 0:
        doc[pos] = static_cast<char>(32 + rng->NextBounded(95));
        break;
      case 1:
        doc.insert(pos, 1, static_cast<char>(32 + rng->NextBounded(95)));
        break;
      case 2:
        doc.erase(pos, 1);
        break;
    }
  }
  return doc;
}

EdgeList SeedEdges() {
  Rng rng(99);
  return gen::ErdosRenyi(12, 30, &rng).ValueOrDie();
}

template <typename ParseFn>
void FuzzParser(ParseFn&& parse, const std::string& valid_doc, uint64_t seed) {
  Rng rng(seed);
  // Pure garbage.
  for (int i = 0; i < 200; ++i) {
    parse(RandomGarbage(&rng, 300));
  }
  // Mutations of a valid document (more likely to go deep into the parser).
  for (int i = 0; i < 200; ++i) {
    parse(Mutate(valid_doc, &rng, 1 + static_cast<int>(rng.NextBounded(8))));
  }
  // Degenerate inputs.
  parse("");
  parse(std::string(1, '\0'));
  parse(std::string(5000, '('));
}

TEST(FuzzSmokeTest, EdgeListParserIsTotal) {
  std::string valid = io::WriteEdgeListText(SeedEdges());
  FuzzParser([](const std::string& s) { io::ParseEdgeListText(s).ok(); }, valid, 1);
}

TEST(FuzzSmokeTest, CsvParserIsTotal) {
  std::string valid = io::WriteCsvEdges(SeedEdges());
  FuzzParser([](const std::string& s) { io::ParseCsvEdges(s).ok(); }, valid, 2);
}

TEST(FuzzSmokeTest, GraphMlParserIsTotal) {
  std::string valid = io::WriteGraphMl(SeedEdges());
  FuzzParser([](const std::string& s) { io::ParseGraphMl(s).ok(); }, valid, 3);
}

TEST(FuzzSmokeTest, GmlParserIsTotal) {
  std::string valid = io::WriteGml(SeedEdges());
  FuzzParser([](const std::string& s) { io::ParseGml(s).ok(); }, valid, 4);
}

TEST(FuzzSmokeTest, JsonGraphParserIsTotal) {
  std::string valid = io::WriteJsonGraph(SeedEdges());
  FuzzParser([](const std::string& s) { io::ParseJsonGraph(s).ok(); }, valid, 5);
}

TEST(FuzzSmokeTest, JgfParserIsTotal) {
  std::string valid = io::WriteJgf(SeedEdges());
  FuzzParser([](const std::string& s) { io::ParseJgf(s).ok(); }, valid, 6);
}

TEST(FuzzSmokeTest, BinaryParserIsTotal) {
  std::string valid = io::WriteBinaryGraph(SeedEdges());
  FuzzParser([](const std::string& s) { io::ParseBinaryGraph(s).ok(); }, valid, 7);
}

TEST(FuzzSmokeTest, BinaryParserMutationsNeverPassChecksum) {
  // Any byte mutation must be caught by the CRC (or fail structurally);
  // a mutated file must never parse as different valid data silently.
  std::string valid = io::WriteBinaryGraph(SeedEdges());
  Rng rng(8);
  int accepted = 0;
  for (int i = 0; i < 300; ++i) {
    std::string mutated = valid;
    size_t pos = rng.NextBounded(mutated.size());
    char old = mutated[pos];
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1 + rng.NextBounded(255)));
    if (mutated[pos] == old) continue;
    if (io::ParseBinaryGraph(mutated).ok()) ++accepted;
  }
  EXPECT_EQ(accepted, 0);
}

TEST(FuzzSmokeTest, MatrixMarketParserIsTotal) {
  std::string valid = io::WriteMatrixMarket(SeedEdges());
  FuzzParser([](const std::string& s) { io::ParseMatrixMarket(s).ok(); },
             valid, 11);
}

TEST(FuzzSmokeTest, TsvTriplesParserIsTotal) {
  std::string valid = io::WriteTsvTriples(SeedEdges());
  FuzzParser([](const std::string& s) { io::ParseTsvTriples(s).ok(); },
             valid, 12);
}

TEST(FuzzSmokeTest, MatrixMarketHostileCorpusFailsCleanly) {
  // Structured hostile cases beyond random mutation: declared-size lies
  // (truncated / overlong), comment-only bodies, out-of-range and 0-based
  // ids, and value-count mismatches must each produce a clean ParseError.
  const char* kHostile[] = {
      "%%MatrixMarket matrix coordinate real general\n3 3 5\n1 2 1.0\n",
      "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 2 1\n2 3 1\n",
      "%%MatrixMarket matrix coordinate real general\n% nothing\n% at all\n",
      "%%MatrixMarket matrix coordinate real general\n3 3 1\n4 1 1.0\n",
      "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 0 1.0\n",
      "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n1 2 1.0\n",
      "%%MatrixMarket matrix coordinate real general\n999999999999 2 1\n",
      "%%MatrixMarket matrix coordinate real general\n0 0 3\n1 1 1.0\n",
  };
  for (const char* doc : kHostile) {
    auto result = io::ParseMatrixMarket(doc);
    EXPECT_FALSE(result.ok()) << "accepted: " << doc;
    EXPECT_FALSE(result.status().message().empty()) << doc;
  }
  // Duplicate entries are NOT hostile — wild files repeat edges; the parser
  // keeps them and CSR dedup handles the rest (see io_test.cc).
  EXPECT_TRUE(io::ParseMatrixMarket("%%MatrixMarket matrix coordinate real "
                                    "general\n2 2 2\n1 2 1.0\n1 2 1.0\n")
                  .ok());
}

TEST(FuzzSmokeTest, NTriplesParserIsTotal) {
  rdf::TripleStore seed;
  seed.Add("a", "b", "c");
  seed.Add("d", "e", "\"literal text\"");
  std::string valid = rdf::WriteNTriples(seed);
  FuzzParser(
      [](const std::string& s) {
        rdf::TripleStore store;
        rdf::ParseNTriples(s, &store).ok();
      },
      valid, 9);
}

TEST(FuzzSmokeTest, MalformedCorpusReturnsCleanErrors) {
  // A curated corpus of structurally-broken GML/GraphML/JGF documents:
  // truncated tags, unterminated strings/objects, and non-UTF8 bytes spliced
  // into positions where the parser must bail deterministically. Each one
  // must produce a clean error Status with a message — never ok(), never a
  // crash.
  struct Case {
    const char* format;
    std::string doc;
  };
  const std::string kBadBytes = "\xff\xfe\x80\xc1";
  const Case kCorpus[] = {
      // GML: truncated structure and garbage bytes inside values.
      {"gml", "graph [ node [ id 0"},
      {"gml", "graph [ node [ id 0 ] edge [ source 0 target"},
      {"gml", "graph [ label \"" + kBadBytes},
      {"gml", "graph [ node [ id " + kBadBytes + " ] ]"},
      // GraphML: truncated <graph> tag, and complete tags with missing or
      // garbage attributes. (Truncation after a complete <graph> is treated
      // leniently by the scanner — those live in the no-crash sweep below.)
      {"graphml", "<graphml><graph"},
      {"graphml", "<graphml><node id=\"a\"/></graphml>"},
      {"graphml", "<graphml><graph><node/></graph></graphml>"},
      {"graphml", "<graphml><graph><edge source=\"a\"/></graph></graphml>"},
      {"graphml", "<graphml><graph><node " + kBadBytes + "/></graph>"},
      // JGF: truncated JSON containers and raw bytes where a value belongs.
      {"jgf", "{\"graph\": {\"nodes\": {"},
      {"jgf", "{\"graph\": {\"edges\": [{\"source\": \"a\","},
      {"jgf", "{\"graph\": " + kBadBytes + "}"},
      {"jgf", "{\"graph\": {\"label\": \"" + kBadBytes + "\"}"},
  };
  for (const Case& c : kCorpus) {
    Status status;
    std::string fmt = c.format;
    if (fmt == "gml") {
      status = io::ParseGml(c.doc).status();
    } else if (fmt == "graphml") {
      status = io::ParseGraphMl(c.doc).status();
    } else {
      status = io::ParseJgf(c.doc).status();
    }
    EXPECT_FALSE(status.ok()) << fmt << " accepted: " << c.doc;
    EXPECT_FALSE(status.message().empty()) << fmt << ": " << c.doc;
  }
}

TEST(FuzzSmokeTest, TruncatedDocumentsNeverCrash) {
  // Truncation at every byte boundary of a small valid document. Some
  // prefixes still parse (the GraphML scanner drops a trailing partial tag),
  // so only totality is asserted, not failure.
  const std::string gml = io::WriteGml(SeedEdges());
  const std::string graphml = io::WriteGraphMl(SeedEdges());
  const std::string jgf = io::WriteJgf(SeedEdges());
  for (size_t len = 0; len < gml.size(); ++len) {
    io::ParseGml(gml.substr(0, len)).ok();
  }
  for (size_t len = 0; len < graphml.size(); ++len) {
    io::ParseGraphMl(graphml.substr(0, len)).ok();
  }
  for (size_t len = 0; len < jgf.size(); ++len) {
    io::ParseJgf(jgf.substr(0, len)).ok();
  }
}

TEST(FuzzSmokeTest, NonUtf8BytesInGarbageNeverCrashParsers) {
  // RandomGarbage above stays printable; this variant floods the full byte
  // range (including invalid UTF-8 continuation patterns) through the three
  // markup parsers.
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    size_t len = rng.NextBounded(200);
    std::string doc;
    doc.reserve(len + 16);
    // Anchor with a real prefix ~half the time so the fuzz reaches past the
    // first token before hitting the bad bytes.
    switch (rng.NextBounded(4)) {
      case 0: doc = "graph [ "; break;
      case 1: doc = "<graphml><graph>"; break;
      case 2: doc = "{\"graph\": {"; break;
      default: break;
    }
    for (size_t k = 0; k < len; ++k) {
      doc += static_cast<char>(rng.NextBounded(256));
    }
    io::ParseGml(doc).ok();
    io::ParseGraphMl(doc).ok();
    io::ParseJgf(doc).ok();
  }
}

TEST(FuzzSmokeTest, CypherParserIsTotal) {
  std::string valid =
      "MATCH (a:Person {age: 34})-[:knows*1..3]->(b) WHERE a.x <= 1.5 "
      "RETURN a.name, count(*) ORDER BY a.name DESC LIMIT 5";
  FuzzParser([](const std::string& s) { query::ParseCypher(s).ok(); }, valid, 10);
}

TEST(FuzzSmokeTest, CypherNormalizerIsTotal) {
  // The plan-cache normalizer must be total on the same hostile inputs the
  // parser survives, and must produce a cache key for EVERY parse-accepted
  // query (the cache-hit fast path runs the normalizer alone, so a query the
  // parser accepts but the normalizer rejects would fall off the fast path —
  // or worse, crash it).
  std::string valid =
      "MATCH (a:Person {age: 34})-[:knows*1..3]->(b) WHERE a.x <= 1.5 "
      "RETURN a.name, count(*) ORDER BY a.name DESC LIMIT 5";
  FuzzParser(
      [](const std::string& s) {
        bool parsed = query::ParseCypher(s).ok();
        auto normalized = query::NormalizeCypher(s);
        if (parsed) {
          ASSERT_TRUE(normalized.ok())
              << "parse-accepted query has no cache key: " << s;
          EXPECT_FALSE(normalized->key.empty()) << s;
        }
      },
      valid, 11);
}

TEST(FuzzSmokeTest, CypherNormalizerHostileShapes) {
  // Hand-built hostile shapes: deep nesting, duplicate variables, 0-length
  // patterns, unbalanced braces, boolean identifiers in every position.
  std::vector<std::string> docs = {
      "MATCH () RETURN count(*)",
      "MATCH ()-[]->() RETURN count(*)",
      "MATCH (a)-[:k]->(a)-[:k]->(a) RETURN a",
      "MATCH (a {x: 1, x: 2, x: 3}) RETURN a",
      "MATCH (true)-[:false]->(false {true: true}) RETURN true",
      "MATCH (a:L {k: 'v'}) WHERE a.k = 'v' RETURN a LIMIT 0",
      std::string(5000, '('),
      std::string(5000, '{'),
      "MATCH (a {x: " + std::string(200, '1') + "}) RETURN a",
  };
  // Deeply nested / repeated pattern elements.
  std::string deep = "MATCH (v0)";
  for (int i = 1; i <= 64; ++i) {
    deep += "-[:e]->(v" + std::to_string(i) + ")";
  }
  deep += " RETURN count(*)";
  docs.push_back(deep);
  for (const std::string& doc : docs) {
    bool parsed = query::ParseCypher(doc).ok();
    auto normalized = query::NormalizeCypher(doc);
    if (parsed) {
      ASSERT_TRUE(normalized.ok()) << doc.substr(0, 80);
      EXPECT_FALSE(normalized->key.empty());
    }
    // Either way: no crash, and a clean Status on rejection.
    if (!normalized.ok()) {
      EXPECT_FALSE(normalized.status().message().empty());
    }
  }
}

// --- mutation-stream fuzz: the streaming layer, not the parsers ------------
// The same totality contract applied to random update sequences: hostile op
// streams (out-of-range ids, self-loops, duplicates, remove-twice,
// non-monotone timestamps) must yield ok() or a clean error Status — never a
// crash — and the structure's invariants must match a trivial reference
// model afterwards.

TEST(FuzzSmokeTest, StreamingGraphHostileOpsAreTotal) {
  Rng rng(21);
  for (int round = 0; round < 20; ++round) {
    const VertexId n = 1 + static_cast<VertexId>(rng.NextBounded(12));
    stream::StreamingGraph sg(n, {.window = 1 + rng.NextBounded(30),
                                  .rebuild_threshold = 1 + rng.NextBounded(8)});
    uint64_t ts = 0;
    for (int op = 0; op < 300; ++op) {
      // Ids range past n to exercise out-of-range; timestamps jitter
      // backwards ~1/4 of the time to exercise time-goes-back rejection.
      VertexId u = static_cast<VertexId>(rng.NextBounded(n + 3));
      VertexId v = static_cast<VertexId>(rng.NextBounded(n + 3));
      if (rng.NextBool(0.25)) {
        ts = ts > 5 ? ts - rng.NextBounded(5) : 0;
      } else {
        ts += rng.NextBounded(4);
      }
      if (rng.NextBool(0.2)) {
        sg.Advance(ts).ok();
      } else {
        Status s = sg.AddEdge(u, v, ts);
        if (!s.ok()) {
          EXPECT_FALSE(s.message().empty());
        }
      }
      EXPECT_LE(sg.NumComponents(), sg.num_vertices());
    }
  }
}

TEST(FuzzSmokeTest, DynamicGraphHostileOpsMatchReferenceModel) {
  Rng rng(22);
  for (int round = 0; round < 20; ++round) {
    const VertexId n = 1 + static_cast<VertexId>(rng.NextBounded(10));
    const bool multi = rng.NextBool();
    DynamicGraph dyn(n, multi);
    dyn.EnableDeltaLog();
    // Reference model: live (src, dst) pairs with multiplicity.
    std::map<std::pair<VertexId, VertexId>, uint64_t> model;
    uint64_t model_edges = 0;
    for (int op = 0; op < 300; ++op) {
      VertexId u = static_cast<VertexId>(rng.NextBounded(n + 2));
      VertexId v = static_cast<VertexId>(rng.NextBounded(n + 2));
      if (rng.NextBool(0.6)) {
        auto added = dyn.AddEdge(u, v);
        const bool in_range = u < n && v < n;
        const bool dup = in_range && model.count({u, v}) > 0;
        if (!in_range) {
          EXPECT_TRUE(added.status().IsOutOfRange());
        } else if (!multi && dup) {
          EXPECT_TRUE(added.status().IsAlreadyExists());
        } else {
          ASSERT_TRUE(added.ok());
          ++model[{u, v}];
          ++model_edges;
        }
      } else if (rng.NextBool()) {
        Status s = dyn.RemoveEdgeBetween(u, v);
        if (u < n && v < n && model.count({u, v}) > 0) {
          ASSERT_TRUE(s.ok());
          auto it = model.find({u, v});
          if (--it->second == 0) model.erase(it);
          --model_edges;
        } else {
          EXPECT_FALSE(s.ok());
          EXPECT_FALSE(s.message().empty());
        }
      } else {
        // Remove by id, including already-removed and out-of-range ids
        // (remove-twice comes up naturally once an id has been freed).
        EdgeId id = rng.NextBounded(2 * 300);
        auto view = dyn.GetEdge(id);
        Status s = dyn.RemoveEdge(id);
        if (view.ok()) {
          ASSERT_TRUE(s.ok());
          auto it = model.find({view.ValueOrDie().src, view.ValueOrDie().dst});
          ASSERT_NE(it, model.end());
          if (--it->second == 0) model.erase(it);
          --model_edges;
          EXPECT_TRUE(dyn.RemoveEdge(id).IsNotFound());  // remove-twice
        } else {
          EXPECT_FALSE(s.ok());
        }
      }
      ASSERT_EQ(dyn.num_edges(), model_edges);
    }
    // The delta log replays the surviving multiset exactly.
    std::map<std::pair<VertexId, VertexId>, int64_t> replay;
    for (const GraphDelta& d : dyn.TakeDeltas()) {
      replay[{d.src, d.dst}] += d.kind == GraphDelta::Kind::kInsert ? 1 : -1;
    }
    for (const auto& [arc, count] : model) {
      EXPECT_EQ(replay[arc], static_cast<int64_t>(count));
    }
    for (const auto& [arc, count] : replay) {
      if (!model.count(arc)) {
        EXPECT_EQ(count, 0);
      }
    }
  }
}

TEST(FuzzSmokeTest, IncrementalKCoreHostileOpsKeepInvariants) {
  Rng rng(23);
  for (int round = 0; round < 10; ++round) {
    const VertexId n = 2 + static_cast<VertexId>(rng.NextBounded(10));
    stream::IncrementalKCore inc(n);
    std::set<std::pair<VertexId, VertexId>> model;
    for (int op = 0; op < 150; ++op) {
      VertexId u = static_cast<VertexId>(rng.NextBounded(n + 2));
      VertexId v = static_cast<VertexId>(rng.NextBounded(n + 2));
      const auto key = std::minmax(u, v);
      if (rng.NextBool(0.6)) {
        Status s = inc.InsertEdge(u, v);
        if (u >= n || v >= n) {
          EXPECT_TRUE(s.IsOutOfRange());
        } else if (u == v) {
          EXPECT_TRUE(s.IsInvalid());
        } else if (model.count({key.first, key.second})) {
          EXPECT_TRUE(s.IsAlreadyExists());
        } else {
          ASSERT_TRUE(s.ok());
          model.insert({key.first, key.second});
        }
      } else {
        Status s = inc.RemoveEdge(u, v);
        if (u < n && v < n && model.count({key.first, key.second})) {
          ASSERT_TRUE(s.ok());
          model.erase({key.first, key.second});
        } else {
          EXPECT_FALSE(s.ok());
          EXPECT_FALSE(s.message().empty());
        }
      }
    }
    ASSERT_EQ(inc.num_edges(), model.size());
    // Invariant: maintained core numbers equal the batch decomposition of
    // the surviving graph.
    auto g = CsrGraph::FromEdges(inc.Snapshot(), CsrOptions{.directed = false})
                 .ValueOrDie();
    auto cores = algo::CoreDecomposition(g);
    cores.resize(n, 0);
    EXPECT_EQ(inc.core_numbers(), cores);
  }
}

TEST(FuzzSmokeTest, IncrementalEngineBatchesRejectHostileDeltas) {
  // Random delta batches, many invalid (out-of-range endpoints, self-loops,
  // double-removes): engines must either apply the batch or reject it with a
  // clean Status, and a rejected batch must leave results untouched.
  Rng rng(24);
  EdgeList base(8);
  base.Add(0, 1);
  base.Add(1, 2);
  base.Add(2, 3);
  base.Add(4, 5);
  auto pr = stream::IncrementalPageRank::Create(base).ValueOrDie();
  auto cc = stream::IncrementalComponents::Create(base).ValueOrDie();
  for (int op = 0; op < 150; ++op) {
    std::vector<GraphDelta> batch;
    const size_t len = rng.NextBounded(5);
    for (size_t i = 0; i < len; ++i) {
      VertexId u = static_cast<VertexId>(rng.NextBounded(10));
      VertexId v = static_cast<VertexId>(rng.NextBounded(10));
      batch.push_back(rng.NextBool() ? GraphDelta::Insert(u, v)
                                     : GraphDelta::Remove(u, v));
    }
    const std::vector<double> scores_before = pr.scores();
    const std::vector<uint32_t> labels_before = cc.Labels();
    auto pr_res = pr.ApplyBatch(batch);
    auto cc_res = cc.ApplyBatch(batch);
    ASSERT_EQ(pr_res.ok(), cc_res.ok());  // same validation rules
    if (!pr_res.ok()) {
      EXPECT_FALSE(pr_res.status().message().empty());
      EXPECT_EQ(pr.scores(), scores_before);
      EXPECT_EQ(cc.Labels(), labels_before);
    }
  }
}

// ---------------------------------------------------------------------------
// Sharded segment / manifest files (src/shard/segment.h). The decoders alias
// the input buffer zero-copy, so totality here means "no OOB read ever" —
// hostile bytes must come back as a Status through the structural checks.
// ---------------------------------------------------------------------------

/// DecodeSegment requires an 8-byte-aligned buffer (it returns a clean error
/// otherwise); copy into u64 storage so fuzz inputs reach the deep checks.
bool SegmentDecodes(const std::string& bytes, bool verify) {
  std::vector<uint64_t> buf((bytes.size() + 7) / 8 + 1);
  std::memcpy(buf.data(), bytes.data(), bytes.size());
  return shard::DecodeSegment(
             {reinterpret_cast<const uint8_t*>(buf.data()), bytes.size()},
             verify)
      .ok();
}

bool ManifestDecodes(const std::string& bytes) {
  return shard::DecodeManifest(
             {reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()})
      .ok();
}

std::string ValidSegmentBlob(shard::SegmentEncoding encoding) {
  auto g = CsrGraph::FromEdges(SeedEdges()).ValueOrDie();
  std::vector<uint64_t> local(g.num_vertices() + 1);
  for (VertexId v = 0; v <= g.num_vertices(); ++v) local[v] = g.offsets()[v];
  return shard::EncodeSegment(0, 1, g.num_vertices(), 0, g.num_vertices(),
                              local, g.targets(), encoding);
}

TEST(FuzzSmokeTest, SegmentDecoderIsTotal) {
  for (auto enc :
       {shard::SegmentEncoding::kPlain, shard::SegmentEncoding::kCompressed}) {
    std::string valid = ValidSegmentBlob(enc);
    ASSERT_TRUE(SegmentDecodes(valid, true));
    FuzzParser([](const std::string& s) { SegmentDecodes(s, true); }, valid,
               41);
    FuzzParser([](const std::string& s) { SegmentDecodes(s, false); }, valid,
               42);
    // Every truncation point, both verify modes.
    for (size_t len = 0; len < valid.size(); len += 3) {
      EXPECT_FALSE(SegmentDecodes(valid.substr(0, len), false));
      EXPECT_FALSE(SegmentDecodes(valid.substr(0, len), true));
    }
  }
}

TEST(FuzzSmokeTest, SegmentMutationsNeverPassVerification) {
  // Under verify=true the CRC covers header + payload, so ANY single-byte
  // corruption must be rejected — a flipped target id or degree must never
  // be served as valid data.
  Rng rng(43);
  for (auto enc :
       {shard::SegmentEncoding::kPlain, shard::SegmentEncoding::kCompressed}) {
    std::string valid = ValidSegmentBlob(enc);
    int accepted = 0;
    for (int i = 0; i < 300; ++i) {
      std::string mutated = valid;
      size_t pos = rng.NextBounded(mutated.size());
      char old = mutated[pos];
      mutated[pos] =
          static_cast<char>(mutated[pos] ^ (1 + rng.NextBounded(255)));
      if (mutated[pos] == old) continue;
      if (SegmentDecodes(mutated, true)) ++accepted;
    }
    EXPECT_EQ(accepted, 0);
  }
}

TEST(FuzzSmokeTest, SegmentHostileHeadersFailCleanly) {
  // Targeted header tampering with the CRC re-stamped, so each corruption
  // reaches its own structural check rather than dying at the checksum.
  std::string valid = ValidSegmentBlob(shard::SegmentEncoding::kPlain);
  auto tamper = [&](size_t offset, uint64_t value, size_t width) {
    std::string doc = valid;
    std::memcpy(doc.data() + offset, &value, width);
    uint32_t crc = Crc32(doc.data(), doc.size() - sizeof(uint32_t));
    std::memcpy(doc.data() + doc.size() - sizeof(uint32_t), &crc, sizeof crc);
    return doc;
  };
  EXPECT_FALSE(SegmentDecodes(tamper(0, 0x58585858u, 4), true));  // bad magic
  EXPECT_FALSE(SegmentDecodes(tamper(4, 999, 4), true));   // version skew
  EXPECT_FALSE(SegmentDecodes(tamper(8, 0xffu, 4), true)); // unknown flags
  EXPECT_FALSE(SegmentDecodes(tamper(24, 50, 8), true));   // begin > end
  EXPECT_FALSE(SegmentDecodes(tamper(32, 1u << 20, 8), true));  // end > V
  EXPECT_FALSE(SegmentDecodes(tamper(40, 1u << 30, 8), true));  // edges lie
  EXPECT_FALSE(SegmentDecodes(tamper(48, 8, 8), true));   // payload_bytes lie
  // Shrinking num_vertices below the largest target id must trip the
  // deep id-range check under verify.
  EXPECT_FALSE(SegmentDecodes(tamper(20, 2, 4), true));
  // Unsigned-wrap attack: num_edges = 2^62 + E makes num_edges * 4 wrap u64
  // back to the true payload size, so a product-based size check would pass
  // and the target-id verify loop (or, under verify=false, kernels indexing
  // through 2^62-scale offsets) would read far out of bounds. Stamping the
  // header field alone is caught by offsets[count] != num_edges, so the full
  // exploit also stamps the last row offset to the wrapped value; the
  // decoder must derive the edge count from the payload by division to
  // reject it. Both verify modes — the CRC is re-stamped, so only the
  // structural check stands between this header and UB.
  uint64_t true_edges = 0, vertex_begin = 0, vertex_end = 0;
  std::memcpy(&vertex_begin, valid.data() + 24, sizeof vertex_begin);
  std::memcpy(&vertex_end, valid.data() + 32, sizeof vertex_end);
  std::memcpy(&true_edges, valid.data() + 40, sizeof true_edges);
  const uint64_t wrapped = (uint64_t{1} << 62) + true_edges;
  const size_t last_offset_pos =
      sizeof(shard::SegmentHeader) + (vertex_end - vertex_begin) * 8;
  auto wrap_both = [&](bool verify) {
    std::string doc = tamper(40, wrapped, 8);
    std::memcpy(doc.data() + last_offset_pos, &wrapped, sizeof wrapped);
    uint32_t crc = Crc32(doc.data(), doc.size() - sizeof(uint32_t));
    std::memcpy(doc.data() + doc.size() - sizeof(uint32_t), &crc, sizeof crc);
    return SegmentDecodes(doc, verify);
  };
  EXPECT_FALSE(SegmentDecodes(tamper(40, wrapped, 8), true));
  EXPECT_FALSE(SegmentDecodes(tamper(40, wrapped, 8), false));
  EXPECT_FALSE(wrap_both(true));
  EXPECT_FALSE(wrap_both(false));
}

TEST(FuzzSmokeTest, ManifestDecoderIsTotal) {
  shard::ShardManifest m;
  m.num_vertices = 6;
  m.num_edges = 4;
  m.shard_begin = {0, 3, 6};
  m.degrees = {1, 1, 0, 2, 0, 0};
  m.new_to_old = {3, 4, 5, 0, 1, 2};
  std::string valid = shard::EncodeManifest(m);
  ASSERT_TRUE(ManifestDecodes(valid));
  FuzzParser([](const std::string& s) { ManifestDecodes(s); }, valid, 44);
  for (size_t len = 0; len < valid.size(); ++len) {
    EXPECT_FALSE(ManifestDecodes(valid.substr(0, len)));
  }
  // Single-byte corruption: the manifest CRC must catch every flip.
  Rng rng(45);
  int accepted = 0;
  for (int i = 0; i < 300; ++i) {
    std::string mutated = valid;
    size_t pos = rng.NextBounded(mutated.size());
    char old = mutated[pos];
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1 + rng.NextBounded(255)));
    if (mutated[pos] == old) continue;
    if (ManifestDecodes(mutated)) ++accepted;
  }
  EXPECT_EQ(accepted, 0);
}

TEST(FuzzSmokeTest, ManifestRejectsZeroVertices) {
  // Build never emits an empty manifest (it rejects empty graphs), so a
  // num_vertices == 0 manifest is by definition crafted/degenerate; it must
  // not open, or kernels would divide by n = 0 and index empty arrays.
  shard::ShardManifest m;
  m.num_vertices = 0;
  m.num_edges = 0;
  m.shard_begin = {0, 0};
  std::string encoded = shard::EncodeManifest(m);
  EXPECT_FALSE(ManifestDecodes(encoded));
}

TEST(FuzzSmokeTest, ShardedOpenHostileDirectoryFailsCleanly) {
  // On-disk tampering through the full Open/Acquire path: truncated files,
  // flipped bytes, deleted segments. Everything must surface as a Status.
  namespace fs = std::filesystem;
  auto g = CsrGraph::FromEdges(SeedEdges()).ValueOrDie();
  shard::ShardOptions opts;
  opts.num_shards = 3;
  auto sharded = shard::ShardedCsr::Build(g, opts).ValueOrDie();
  const fs::path dir =
      fs::temp_directory_path() / "ubigraph_fuzz_sharded_open";
  fs::remove_all(dir);
  ASSERT_TRUE(sharded.WriteTo(dir.string()).ok());

  auto corrupt_and_open = [&](const char* file, auto&& mutator) {
    const fs::path target = dir / file;
    std::ifstream in(target, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    std::string corrupted = mutator(bytes);
    {
      std::ofstream out(target, std::ios::binary | std::ios::trunc);
      out.write(corrupted.data(),
                static_cast<std::streamsize>(corrupted.size()));
    }
    shard::ShardOpenOptions oopts;
    oopts.storage = shard::SegmentStorage::kMapped;
    auto opened = shard::ShardedCsr::Open(dir.string(), oopts);
    bool clean_failure = !opened.ok();
    if (opened.ok()) {
      // Header probes can pass; the load-time verification must then fail.
      for (uint32_t s = 0; s < opened->num_shards(); ++s) {
        if (!opened->AcquireShard(s).ok()) clean_failure = true;
      }
    }
    // Restore for the next case.
    std::ofstream out(target, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return clean_failure;
  };

  EXPECT_TRUE(corrupt_and_open("manifest.ugsm", [](std::string b) {
    return b.substr(0, b.size() / 2);  // truncated manifest
  }));
  EXPECT_TRUE(corrupt_and_open("segment_00001.ugsg", [](std::string b) {
    return b.substr(0, b.size() - 5);  // truncated segment
  }));
  EXPECT_TRUE(corrupt_and_open("segment_00001.ugsg", [](std::string b) {
    b[70] = static_cast<char>(b[70] ^ 0x40);  // payload flip -> CRC
    return b;
  }));
  EXPECT_TRUE(corrupt_and_open("segment_00002.ugsg", [](std::string b) {
    b[4] = 9;  // version skew
    return b;
  }));
  EXPECT_TRUE(corrupt_and_open("segment_00000.ugsg", [](std::string b) {
    (void)b;
    return std::string("not a segment at all");
  }));
  fs::remove_all(dir);
}

TEST(FuzzSmokeTest, SpillStreamReplaySurvivesHostileScratch) {
  // Message spill scratch (shard/msg_stream.h) tampered on disk between
  // emission and replay: truncations, bit flips, and garbage must all
  // surface as a clean Status from Replay — never a crash or a silent
  // wrong replay (every block is CRC-checked and cross-checked against the
  // in-RAM stream index).
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "ubigraph_fuzz_spill";
  fs::remove_all(dir);
  {
    auto ms = shard::MsgStreams<double>::Create(/*workers=*/1, /*shards=*/2,
                                                /*budget_bytes=*/64,
                                                dir.string())
                  .ValueOrDie();
    for (VertexId i = 0; i < 64; ++i) {
      ASSERT_TRUE(ms.Emit(0, i % 2, i, 1.0 * i).ok());
    }
    const std::vector<std::string> paths = ms.spill_paths();
    ASSERT_EQ(paths.size(), 1u);
    const fs::path target = paths[0];

    std::ifstream in(target, std::ios::binary);
    const std::string original((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(original.size(), 64u);

    auto replay_all_ok = [&] {
      bool ok = true;
      for (uint32_t t = 0; t < 2; ++t) {
        ok = ms.Replay(t, [](VertexId, double) {}).ok() && ok;
      }
      return ok;
    };
    // The in-place overwrite reaches the same inode Replay preads from.
    auto overwrite = [&](const std::string& bytes) {
      std::ofstream out(target, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    };
    ASSERT_TRUE(replay_all_ok());

    // Truncations at several depths: short reads, not crashes.
    for (size_t keep : {size_t{0}, size_t{1}, original.size() / 2,
                        original.size() - 1}) {
      overwrite(original.substr(0, keep));
      EXPECT_FALSE(replay_all_ok()) << "truncated to " << keep << " bytes";
    }
    // Every single-byte flip anywhere in the file must fail some block's
    // CRC or index cross-check.
    for (size_t off = 0; off < original.size(); off += 3) {
      std::string mutated = original;
      mutated[off] = static_cast<char>(mutated[off] ^ 0x20);
      overwrite(mutated);
      EXPECT_FALSE(replay_all_ok()) << "byte flip at offset " << off;
    }
    // Random garbage of the same length.
    Rng rng(1234);
    for (int i = 0; i < 50; ++i) {
      std::string garbage(original.size(), '\0');
      for (char& c : garbage) c = static_cast<char>(rng.NextBounded(256));
      overwrite(garbage);
      EXPECT_FALSE(replay_all_ok()) << "garbage iteration " << i;
    }
    // Restoring the bytes restores the replay.
    overwrite(original);
    EXPECT_TRUE(replay_all_ok());
  }
  EXPECT_TRUE(fs::is_empty(dir)) << "spill scratch leaked";
  fs::remove_all(dir);
}

}  // namespace
}  // namespace ubigraph
