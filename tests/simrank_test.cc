#include <gtest/gtest.h>

#include "algorithms/simrank.h"
#include "gen/generators.h"

namespace ubigraph::algo {
namespace {

CsrGraph WithInEdges(EdgeList el, bool directed = true) {
  CsrOptions opts;
  opts.directed = directed;
  opts.build_in_edges = true;
  return CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
}

TEST(SimRankTest, DiagonalIsOne) {
  auto g = WithInEdges(gen::Path(4));
  auto r = SimRank(g).ValueOrDie();
  for (VertexId v = 0; v < 4; ++v) EXPECT_DOUBLE_EQ(r.At(v, v), 1.0);
}

TEST(SimRankTest, SymmetricMatrix) {
  EdgeList el(5);
  el.Add(0, 2);
  el.Add(1, 2);
  el.Add(0, 3);
  el.Add(1, 4);
  auto g = WithInEdges(std::move(el));
  auto r = SimRank(g).ValueOrDie();
  for (VertexId a = 0; a < 5; ++a) {
    for (VertexId b = 0; b < 5; ++b) {
      EXPECT_NEAR(r.At(a, b), r.At(b, a), 1e-12);
    }
  }
}

TEST(SimRankTest, SiblingsWithSharedParentScoreC) {
  // Classic: two children of one parent have similarity decay * 1.
  EdgeList el(3);
  el.Add(0, 1);
  el.Add(0, 2);
  auto g = WithInEdges(std::move(el));
  SimRankOptions opts;
  opts.decay = 0.8;
  auto r = SimRank(g, opts).ValueOrDie();
  EXPECT_NEAR(r.At(1, 2), 0.8, 1e-9);
  EXPECT_NEAR(r.At(0, 1), 0.0, 1e-12);  // 0 has no in-neighbors
}

TEST(SimRankTest, NoInNeighborsMeansZero) {
  auto g = WithInEdges(gen::Path(3));
  auto r = SimRank(g).ValueOrDie();
  EXPECT_DOUBLE_EQ(r.At(0, 1), 0.0);
}

TEST(SimRankTest, ValuesInUnitInterval) {
  Rng rng(3);
  auto el = gen::ErdosRenyi(20, 60, &rng).ValueOrDie();
  auto g = WithInEdges(std::move(el));
  auto r = SimRank(g).ValueOrDie();
  for (double v : r.matrix) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST(SimRankTest, InvalidDecayRejected) {
  auto g = WithInEdges(gen::Path(3));
  SimRankOptions opts;
  opts.decay = 1.5;
  EXPECT_FALSE(SimRank(g, opts).ok());
}

TEST(SimRankTest, DirectedWithoutInEdgesRejected) {
  auto g = CsrGraph::FromEdges(gen::Path(3)).ValueOrDie();
  EXPECT_FALSE(SimRank(g).ok());
}

TEST(SimRankMonteCarloTest, ApproximatesExactOnSiblings) {
  EdgeList el(3);
  el.Add(0, 1);
  el.Add(0, 2);
  auto g = WithInEdges(std::move(el));
  auto mc = SimRankPairMonteCarlo(g, 1, 2, 4000, 10, 0.8, 42).ValueOrDie();
  EXPECT_NEAR(mc, 0.8, 0.05);
}

TEST(SimRankMonteCarloTest, IdenticalVertexIsOne) {
  auto g = WithInEdges(gen::Path(3));
  EXPECT_DOUBLE_EQ(SimRankPairMonteCarlo(g, 1, 1, 10, 5, 0.8, 1).ValueOrDie(),
                   1.0);
}

TEST(SimRankMonteCarloTest, TracksExactOnRandomGraph) {
  Rng rng(5);
  auto el = gen::ErdosRenyi(15, 60, &rng).ValueOrDie();
  auto g = WithInEdges(std::move(el));
  SimRankOptions opts;
  opts.max_iterations = 20;
  auto exact = SimRank(g, opts).ValueOrDie();
  auto mc = SimRankPairMonteCarlo(g, 2, 7, 20000, 20, 0.8, 9).ValueOrDie();
  EXPECT_NEAR(mc, exact.At(2, 7), 0.08);
}

TEST(JaccardTest, KnownOverlap) {
  // N(0) = {2, 3}, N(1) = {3, 4} -> intersection 1, union 3.
  auto g = CsrGraph::FromPairs(5, {{0, 2}, {0, 3}, {1, 3}, {1, 4}}).ValueOrDie();
  EXPECT_NEAR(JaccardSimilarity(g, 0, 1), 1.0 / 3.0, 1e-12);
}

TEST(JaccardTest, DisjointIsZeroAndIdenticalIsOne) {
  auto g = CsrGraph::FromPairs(6, {{0, 2}, {0, 3}, {1, 2}, {1, 3}, {4, 5}})
               .ValueOrDie();
  EXPECT_DOUBLE_EQ(JaccardSimilarity(g, 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(g, 0, 4), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(g, 2, 3), 0.0);  // both empty
}

TEST(CosineTest, KnownOverlap) {
  auto g = CsrGraph::FromPairs(5, {{0, 2}, {0, 3}, {1, 3}, {1, 4}}).ValueOrDie();
  EXPECT_NEAR(CosineSimilarity(g, 0, 1), 0.5, 1e-12);  // 1 / sqrt(2*2)
}

TEST(CosineTest, EmptyNeighborhoodIsZero) {
  auto g = CsrGraph::FromPairs(3, {{0, 1}}).ValueOrDie();
  EXPECT_DOUBLE_EQ(CosineSimilarity(g, 1, 0), 0.0);
}

}  // namespace
}  // namespace ubigraph::algo
