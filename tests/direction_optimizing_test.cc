// Differential tests for the direction-optimizing layer: hybrid BFS vs the
// exact-serial push oracle, PageRank mode equivalence, frontier CC vs
// union-find, in-edge Status contracts, and bitwise-identical parallel CSR
// builds.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "algorithms/connected_components.h"
#include "algorithms/pagerank.h"
#include "algorithms/traversal.h"
#include "common/random.h"
#include "gen/generators.h"
#include "graph/csr_graph.h"
#include "graph/frontier.h"

namespace ubigraph {
namespace {

using algo::HybridBfsOptions;
using algo::TraversalDirection;

constexpr uint32_t kThreadCounts[] = {1, 2, 4, 8};

CsrGraph Build(EdgeList el, bool directed, bool in_edges) {
  CsrOptions opts;
  opts.directed = directed;
  opts.build_in_edges = in_edges;
  return CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
}

/// Corpus spanning the regimes that exercise both directions: a scale-free
/// directed graph, a sparse undirected one, a disconnected one, a star
/// (one pull-heavy round), and a path (push forever).
std::vector<std::pair<std::string, CsrGraph>> TestGraphs() {
  std::vector<std::pair<std::string, CsrGraph>> graphs;
  Rng rmat_rng(7);
  graphs.emplace_back(
      "rmat_directed",
      Build(gen::Rmat(10, 8 << 10, &rmat_rng).ValueOrDie(), true, true));
  Rng er_rng(11);
  graphs.emplace_back(
      "er_undirected",
      Build(gen::ErdosRenyi(500, 900, &er_rng).ValueOrDie(), false, false));
  // Two components plus isolated vertices 9 and 10.
  EdgeList two(11);
  for (VertexId v = 1; v < 5; ++v) two.Add(0, v);
  for (VertexId v = 6; v < 9; ++v) two.Add(5, v);
  graphs.emplace_back("disconnected", Build(std::move(two), true, true));
  graphs.emplace_back("star", Build(gen::Star(600), false, false));
  graphs.emplace_back("path", Build(gen::Path(400), false, false));
  return graphs;
}

VertexId HighDegreeVertex(const CsrGraph& g) {
  VertexId best = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.OutDegree(v) > g.OutDegree(best)) best = v;
  }
  return best;
}

TEST(HybridBfsTest, MatchesSerialPushAcrossModesAndThreads) {
  for (const auto& [name, g] : TestGraphs()) {
    for (VertexId source : {VertexId{0}, HighDegreeVertex(g)}) {
      std::vector<uint32_t> oracle = algo::BfsDistances(g, source);
      for (TraversalDirection dir : {TraversalDirection::kPush,
                                     TraversalDirection::kPull,
                                     TraversalDirection::kAuto}) {
        for (uint32_t threads : kThreadCounts) {
          HybridBfsOptions opts;
          opts.direction = dir;
          opts.num_threads = threads;
          auto dist = algo::HybridBfs(g, source, opts).ValueOrDie();
          EXPECT_EQ(dist, oracle)
              << name << " source=" << source << " dir=" << static_cast<int>(dir)
              << " threads=" << threads;
        }
      }
    }
  }
}

TEST(HybridBfsTest, ForcedDirectionsOnExtremeTopologies) {
  // A star pulled from the hub finishes in one pull round; a path pushed
  // from one end is the worst case for pull. Both must still be exact.
  auto star = Build(gen::Star(600), false, false);
  auto path = Build(gen::Path(400), false, false);
  HybridBfsOptions pull;
  pull.direction = TraversalDirection::kPull;
  EXPECT_EQ(algo::HybridBfs(star, 0, pull).ValueOrDie(),
            algo::BfsDistances(star, 0));
  HybridBfsOptions push;
  push.direction = TraversalDirection::kPush;
  EXPECT_EQ(algo::HybridBfs(path, 0, push).ValueOrDie(),
            algo::BfsDistances(path, 0));
}

TEST(HybridBfsTest, MultiSourceMatchesSerialOracle) {
  for (const auto& [name, g] : TestGraphs()) {
    std::vector<VertexId> sources = {0, g.num_vertices() / 2,
                                     g.num_vertices() - 1, 0 /* duplicate */};
    std::vector<uint32_t> oracle = algo::MultiSourceBfs(g, sources);
    for (uint32_t threads : kThreadCounts) {
      HybridBfsOptions opts;
      opts.num_threads = threads;
      EXPECT_EQ(algo::HybridMultiSourceBfs(g, sources, opts).ValueOrDie(),
                oracle)
          << name << " threads=" << threads;
    }
  }
}

TEST(HybridBfsTest, OutOfRangeSourceIsAllUnreachable) {
  auto g = Build(gen::Path(5), false, false);
  auto dist = algo::HybridBfs(g, 99).ValueOrDie();
  for (uint32_t d : dist) EXPECT_EQ(d, algo::kUnreachable);
}

TEST(HybridBfsTest, InvalidAlphaBetaRejected) {
  auto g = Build(gen::Path(5), false, false);
  HybridBfsOptions opts;
  opts.alpha = 0;
  EXPECT_FALSE(algo::HybridBfs(g, 0, opts).ok());
  opts.alpha = 15.0;
  opts.beta = -1;
  EXPECT_FALSE(algo::HybridBfs(g, 0, opts).ok());
}

TEST(InEdgeContractTest, DirectedWithoutInIndexFailsWithClearStatus) {
  // Directed CSR without build_in_edges: every pull-capable kernel must fail
  // with an actionable InvalidArgument instead of reading garbage.
  auto g = Build(gen::Path(6), true, false);
  ASSERT_FALSE(g.has_in_edges());

  auto hybrid = algo::HybridBfs(g, 0);
  ASSERT_FALSE(hybrid.ok());
  EXPECT_NE(hybrid.status().message().find("build_in_edges"), std::string::npos);
  HybridBfsOptions pull;
  pull.direction = TraversalDirection::kPull;
  EXPECT_FALSE(algo::HybridBfs(g, 0, pull).ok());
  // Forced push needs no in-edges.
  HybridBfsOptions push;
  push.direction = TraversalDirection::kPush;
  EXPECT_EQ(algo::HybridBfs(g, 0, push).ValueOrDie(), algo::BfsDistances(g, 0));

  algo::PageRankOptions pr;
  pr.mode = algo::PageRankMode::kPull;
  EXPECT_FALSE(algo::PageRank(g, pr).ok());
  pr.mode = algo::PageRankMode::kDelta;
  EXPECT_FALSE(algo::PageRank(g, pr).ok());
  pr.mode = algo::PageRankMode::kPush;
  EXPECT_TRUE(algo::PageRank(g, pr).ok());

  EXPECT_FALSE(algo::ConnectedComponentsLabelProp(g).ok());
  EXPECT_FALSE(algo::ConnectedComponentsBfs(g).ok());
}

TEST(PageRankModeTest, AutoResolvesByInEdgeAvailability) {
  auto with_in = Build(gen::Path(6), true, true);
  auto without = Build(gen::Path(6), true, false);
  EXPECT_EQ(algo::PageRank(with_in).ValueOrDie().mode,
            algo::PageRankMode::kPull);
  EXPECT_EQ(algo::PageRank(without).ValueOrDie().mode,
            algo::PageRankMode::kPush);
}

TEST(PageRankModeTest, ModesAgreeWithinTolerance) {
  for (const auto& [name, g] : TestGraphs()) {
    algo::PageRankOptions base;
    base.tolerance = 1e-12;
    base.max_iterations = 200;
    base.mode = algo::PageRankMode::kPull;
    auto pull = algo::PageRank(g, base).ValueOrDie();
    for (algo::PageRankMode mode :
         {algo::PageRankMode::kPush, algo::PageRankMode::kDelta}) {
      algo::PageRankOptions opts = base;
      opts.mode = mode;
      auto other = algo::PageRank(g, opts).ValueOrDie();
      EXPECT_EQ(other.mode, mode);
      ASSERT_EQ(other.scores.size(), pull.scores.size());
      for (size_t v = 0; v < pull.scores.size(); ++v) {
        EXPECT_NEAR(other.scores[v], pull.scores[v], 1e-8)
            << name << " mode=" << static_cast<int>(mode) << " v=" << v;
      }
    }
  }
}

TEST(PageRankModeTest, ParallelRunsAreDeterministicPerMode) {
  for (const auto& [name, g] : TestGraphs()) {
    for (algo::PageRankMode mode :
         {algo::PageRankMode::kPull, algo::PageRankMode::kPush,
          algo::PageRankMode::kDelta}) {
      algo::PageRankOptions serial;
      serial.mode = mode;
      serial.max_iterations = 30;
      serial.tolerance = 1e-10;
      auto oracle = algo::PageRank(g, serial).ValueOrDie();
      for (uint32_t threads : {2u, 4u}) {
        algo::PageRankOptions opts = serial;
        opts.num_threads = threads;
        auto a = algo::PageRank(g, opts).ValueOrDie();
        auto b = algo::PageRank(g, opts).ValueOrDie();
        // Bitwise-reproducible at a fixed thread count...
        EXPECT_EQ(a.scores, b.scores)
            << name << " mode=" << static_cast<int>(mode)
            << " threads=" << threads;
        // ...and within tolerance of the serial path.
        for (size_t v = 0; v < oracle.scores.size(); ++v) {
          EXPECT_NEAR(a.scores[v], oracle.scores[v], 1e-9)
              << name << " mode=" << static_cast<int>(mode)
              << " threads=" << threads << " v=" << v;
        }
      }
    }
  }
}

TEST(FrontierCcTest, MatchesUnionFindAcrossThreads) {
  for (const auto& [name, g] : TestGraphs()) {
    algo::ComponentResult oracle = algo::WeaklyConnectedComponents(g);
    for (uint32_t threads : kThreadCounts) {
      algo::ComponentsOptions opts;
      opts.use_frontier = true;
      opts.num_threads = threads;
      auto cc = algo::ConnectedComponentsLabelProp(g, opts).ValueOrDie();
      EXPECT_EQ(cc.label, oracle.label) << name << " threads=" << threads;
      EXPECT_EQ(cc.num_components, oracle.num_components)
          << name << " threads=" << threads;
    }
  }
}

TEST(FrontierTest, RepresentationConversionsRoundTrip) {
  Frontier f(130);  // spans three bitmap words with a ragged tail
  f.Push(0);
  f.Push(64);
  f.Push(129);
  EXPECT_EQ(f.size(), 3u);
  f.ToDense();
  EXPECT_TRUE(f.dense());
  EXPECT_TRUE(f.Test(0));
  EXPECT_TRUE(f.Test(64));
  EXPECT_TRUE(f.Test(129));
  EXPECT_FALSE(f.Test(1));
  f.ToSparse();
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f.Vertices()[0], 0u);
  EXPECT_EQ(f.Vertices()[1], 64u);
  EXPECT_EQ(f.Vertices()[2], 129u);

  f.ClearDense();
  EXPECT_TRUE(f.empty());
  EXPECT_TRUE(f.AtomicTestAndSet(129));
  EXPECT_FALSE(f.AtomicTestAndSet(129));  // already set
  f.RecountDense();
  EXPECT_EQ(f.size(), 1u);

  f.SetAll();
  EXPECT_EQ(f.size(), 130u);
  f.ToSparse();
  EXPECT_EQ(f.size(), 130u);  // tail bits past the universe never leak
  EXPECT_EQ(f.Vertices().back(), 129u);
}

/// Parallel CSR builds must be bitwise-identical to the serial build: same
/// offsets, targets, weights, and in-edge index.
TEST(ParallelCsrBuildTest, BitwiseIdenticalToSerial) {
  Rng rng(21);
  EdgeList base = gen::Rmat(11, 8 << 11, &rng).ValueOrDie();
  // Give edges distinguishable weights so scatter-order bugs show up.
  for (size_t i = 0; i < base.mutable_edges().size(); ++i) {
    base.mutable_edges()[i].weight = static_cast<double>(i % 97) + 0.5;
  }
  struct Config {
    const char* name;
    bool directed, in_edges, sort;
  };
  const Config configs[] = {
      {"directed_sorted", true, false, true},
      {"directed_in_sorted", true, true, true},
      {"directed_unsorted", true, false, false},
      {"undirected_sorted", false, false, true},
      {"undirected_unsorted", false, false, false},
  };
  for (const Config& c : configs) {
    CsrOptions opts;
    opts.directed = c.directed;
    opts.build_in_edges = c.in_edges;
    opts.sort_neighbors = c.sort;
    // This 16K-edge list is below the serial-fallback cutoff (and CI runs on
    // one core); force the parallel path so the differential is real.
    opts.min_parallel_edges = 0;
    EdgeList serial_edges = base;
    CsrGraph serial =
        CsrGraph::FromEdges(std::move(serial_edges), opts).ValueOrDie();
    for (uint32_t threads : {2u, 4u, 8u}) {
      opts.num_threads = threads;
      EdgeList copy = base;
      CsrGraph parallel = CsrGraph::FromEdges(std::move(copy), opts).ValueOrDie();
      ASSERT_EQ(parallel.num_vertices(), serial.num_vertices());
      EXPECT_EQ(parallel.offsets(), serial.offsets())
          << c.name << " threads=" << threads;
      EXPECT_EQ(parallel.targets(), serial.targets())
          << c.name << " threads=" << threads;
      EXPECT_EQ(parallel.weights(), serial.weights())
          << c.name << " threads=" << threads;
      ASSERT_EQ(parallel.has_in_edges(), serial.has_in_edges());
      if (serial.has_in_edges() && serial.directed()) {
        for (VertexId v = 0; v < serial.num_vertices(); ++v) {
          ASSERT_EQ(parallel.InDegree(v), serial.InDegree(v))
              << c.name << " threads=" << threads << " v=" << v;
          auto a = parallel.InNeighbors(v);
          auto b = serial.InNeighbors(v);
          ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
              << c.name << " threads=" << threads << " v=" << v;
        }
      }
    }
  }
}

TEST(ParallelCsrBuildTest, FromPairsMatchesFromEdges) {
  std::vector<std::pair<VertexId, VertexId>> pairs = {
      {0, 3}, {3, 1}, {1, 0}, {2, 2}, {4, 0}};
  auto a = CsrGraph::FromPairs(5, pairs).ValueOrDie();
  EdgeList el(5);
  for (auto [u, v] : pairs) el.Add(u, v);
  auto b = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  EXPECT_EQ(a.offsets(), b.offsets());
  EXPECT_EQ(a.targets(), b.targets());
  EXPECT_EQ(a.weights(), b.weights());
}

}  // namespace
}  // namespace ubigraph
