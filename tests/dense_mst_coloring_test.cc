#include <gtest/gtest.h>

#include <algorithm>

#include "algorithms/coloring.h"
#include "algorithms/connected_components.h"
#include "algorithms/kcore.h"
#include "algorithms/mst.h"
#include "common/random.h"
#include "gen/generators.h"

namespace ubigraph::algo {
namespace {

// ---------------------------------------------------------------- k-core ---

std::vector<uint32_t> BruteForceCores(const CsrGraph& g) {
  // Iteratively peel: for each k, repeatedly remove vertices with degree < k.
  const VertexId n = g.num_vertices();
  std::vector<std::vector<VertexId>> adj(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      if (u != v) {
        adj[u].push_back(v);
        adj[v].push_back(u);
      }
    }
  }
  for (auto& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }
  std::vector<uint32_t> core(n, 0);
  for (uint32_t k = 1; k <= n; ++k) {
    std::vector<bool> alive(n, true);
    bool changed = true;
    auto degree = [&](VertexId v) {
      uint32_t d = 0;
      for (VertexId u : adj[v]) {
        if (alive[u]) ++d;
      }
      return d;
    };
    while (changed) {
      changed = false;
      for (VertexId v = 0; v < n; ++v) {
        if (alive[v] && degree(v) < k) {
          alive[v] = false;
          changed = true;
        }
      }
    }
    for (VertexId v = 0; v < n; ++v) {
      if (alive[v]) core[v] = k;
    }
  }
  return core;
}

TEST(KCoreTest, CompleteGraphCore) {
  auto g = CsrGraph::FromEdges(gen::Complete(5)).ValueOrDie();
  auto core = CoreDecomposition(g);
  for (uint32_t c : core) EXPECT_EQ(c, 4u);
  EXPECT_EQ(Degeneracy(g), 4u);
}

TEST(KCoreTest, TreeIsOneCore) {
  Rng rng(1);
  auto g = CsrGraph::FromEdges(gen::RandomTree(30, &rng).ValueOrDie()).ValueOrDie();
  auto core = CoreDecomposition(g);
  for (uint32_t c : core) EXPECT_LE(c, 1u);
  EXPECT_EQ(Degeneracy(g), 1u);
}

class KCoreRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KCoreRandomTest, MatchesBruteForce) {
  Rng rng(GetParam());
  auto el = gen::ErdosRenyi(25, 90, &rng).ValueOrDie();
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  EXPECT_EQ(CoreDecomposition(g), BruteForceCores(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, KCoreRandomTest,
                         ::testing::Values(41, 42, 43, 44, 45));

TEST(KCoreTest, KCoreMembership) {
  // Triangle + pendant: triangle is 2-core, pendant only 1-core.
  auto g = CsrGraph::FromPairs(4, {{0, 1}, {1, 2}, {2, 0}, {0, 3}}).ValueOrDie();
  auto two_core = KCore(g, 2);
  EXPECT_EQ(two_core, (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(KCore(g, 1).size(), 4u);
  EXPECT_TRUE(KCore(g, 3).empty());
}

TEST(DensestTest, CliquePlusTailFindsClique) {
  // K5 with a long path attached: densest subgraph is the clique (density 2).
  EdgeList el = gen::Complete(5);
  for (VertexId v = 5; v < 12; ++v) el.Add(v - 1, v);
  el.EnsureVertices(12);
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  DensestSubgraphResult r = DensestSubgraphApprox(g);
  EXPECT_GE(r.density, 2.0 - 1e-9);
  // The clique should survive peeling.
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_NE(std::find(r.vertices.begin(), r.vertices.end(), v),
              r.vertices.end());
  }
}

TEST(DensestTest, DensityAtLeastHalfMaxAvgDegree) {
  // Charikar guarantee: result >= optimal / 2 >= (m/n) overall density.
  Rng rng(6);
  auto el = gen::BarabasiAlbert(60, 3, &rng).ValueOrDie();
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  DensestSubgraphResult r = DensestSubgraphApprox(g);
  double overall =
      static_cast<double>(g.num_edges()) / static_cast<double>(g.num_vertices());
  EXPECT_GE(r.density + 1e-9, overall);
}

TEST(DensestTest, EmptyGraph) {
  auto g = CsrGraph::FromEdges(EdgeList{}).ValueOrDie();
  DensestSubgraphResult r = DensestSubgraphApprox(g);
  EXPECT_TRUE(r.vertices.empty());
  EXPECT_DOUBLE_EQ(r.density, 0.0);
}

// ------------------------------------------------------------------- MST ---

TEST(MstTest, KnownTotalWeight) {
  // Classic small example.
  EdgeList el(4);
  el.Add(0, 1, 1);
  el.Add(1, 2, 2);
  el.Add(2, 3, 3);
  el.Add(3, 0, 4);
  el.Add(0, 2, 5);
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  auto kruskal = MinimumSpanningForestKruskal(g);
  auto prim = MinimumSpanningForestPrim(g);
  EXPECT_DOUBLE_EQ(kruskal.total_weight, 6.0);
  EXPECT_DOUBLE_EQ(prim.total_weight, 6.0);
  EXPECT_EQ(kruskal.edges.size(), 3u);
  EXPECT_EQ(kruskal.num_trees, 1u);
}

TEST(MstTest, ForestOnDisconnectedGraph) {
  EdgeList el(5);
  el.Add(0, 1, 1);
  el.Add(2, 3, 2);
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  auto r = MinimumSpanningForestKruskal(g);
  EXPECT_EQ(r.num_trees, 3u);  // {0,1} {2,3} {4}
  EXPECT_EQ(r.edges.size(), 2u);
  auto p = MinimumSpanningForestPrim(g);
  EXPECT_EQ(p.num_trees, 3u);
  EXPECT_DOUBLE_EQ(p.total_weight, r.total_weight);
}

TEST(MstTest, ParallelEdgesUseLightest) {
  EdgeList el(2);
  el.Add(0, 1, 10);
  el.Add(0, 1, 2);
  el.Add(1, 0, 5);
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  auto r = MinimumSpanningForestKruskal(g);
  EXPECT_DOUBLE_EQ(r.total_weight, 2.0);
}

class MstRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MstRandomTest, KruskalAndPrimAgree) {
  Rng rng(GetParam());
  EdgeList el(50);
  for (int i = 0; i < 300; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(50));
    VertexId v = static_cast<VertexId>(rng.NextBounded(50));
    if (u != v) el.Add(u, v, 1.0 + rng.NextDouble() * 99.0);
  }
  el.EnsureVertices(50);
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  auto kruskal = MinimumSpanningForestKruskal(g);
  auto prim = MinimumSpanningForestPrim(g);
  EXPECT_NEAR(kruskal.total_weight, prim.total_weight, 1e-9);
  EXPECT_EQ(kruskal.edges.size(), prim.edges.size());
  EXPECT_EQ(kruskal.num_trees, prim.num_trees);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MstRandomTest,
                         ::testing::Values(51, 52, 53, 54, 55, 56));

TEST(MstTest, TreeEdgesFormSpanningForest) {
  Rng rng(71);
  auto el = gen::ErdosRenyi(40, 160, &rng).ValueOrDie();
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  auto r = MinimumSpanningForestKruskal(g);
  // Tree edges must be acyclic and connect exactly the graph's components.
  UnionFind uf(g.num_vertices());
  for (const Edge& e : r.edges) EXPECT_TRUE(uf.Union(e.src, e.dst));
  auto cc = WeaklyConnectedComponents(g);
  EXPECT_EQ(uf.num_sets(), cc.num_components);
}

// -------------------------------------------------------------- coloring ---

class ColoringOrderTest : public ::testing::TestWithParam<ColoringOrder> {};

TEST_P(ColoringOrderTest, AlwaysProper) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Rng rng(seed + 80);
    auto el = gen::ErdosRenyi(60, 300, &rng).ValueOrDie();
    auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
    ColoringResult r = GreedyColoring(g, GetParam());
    EXPECT_TRUE(IsProperColoring(g, r.color));
    uint32_t max_color = 0;
    for (uint32_t c : r.color) max_color = std::max(max_color, c);
    EXPECT_EQ(r.num_colors, max_color + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, ColoringOrderTest,
                         ::testing::Values(ColoringOrder::kVertexId,
                                           ColoringOrder::kLargestFirst,
                                           ColoringOrder::kSmallestLast));

TEST(ColoringTest, BipartiteUsesTwoColors) {
  // Even cycle is bipartite; smallest-last greedy finds 2 colors.
  auto g = CsrGraph::FromEdges(gen::Cycle(10)).ValueOrDie();
  ColoringResult r = GreedyColoring(g, ColoringOrder::kSmallestLast);
  EXPECT_EQ(r.num_colors, 2u);
}

TEST(ColoringTest, OddCycleNeedsThree) {
  auto g = CsrGraph::FromEdges(gen::Cycle(7)).ValueOrDie();
  ColoringResult r = GreedyColoring(g, ColoringOrder::kSmallestLast);
  EXPECT_EQ(r.num_colors, 3u);
}

TEST(ColoringTest, CompleteGraphNeedsN) {
  auto g = CsrGraph::FromEdges(gen::Complete(6)).ValueOrDie();
  ColoringResult r = GreedyColoring(g);
  EXPECT_EQ(r.num_colors, 6u);
}

TEST(ColoringTest, SmallestLastBoundedByDegeneracyPlusOne) {
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Rng rng(seed + 90);
    auto el = gen::BarabasiAlbert(80, 3, &rng).ValueOrDie();
    auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
    ColoringResult r = GreedyColoring(g, ColoringOrder::kSmallestLast);
    EXPECT_LE(r.num_colors, Degeneracy(g) + 1);
  }
}

TEST(ColoringTest, ValidatorCatchesBadColoring) {
  auto g = CsrGraph::FromPairs(2, {{0, 1}}).ValueOrDie();
  EXPECT_FALSE(IsProperColoring(g, {0, 0}));
  EXPECT_TRUE(IsProperColoring(g, {0, 1}));
  EXPECT_FALSE(IsProperColoring(g, {0}));  // wrong size
}

}  // namespace
}  // namespace ubigraph::algo
