#include <gtest/gtest.h>

#include <set>

#include "survey/academic.h"
#include "survey/corpus.h"
#include "survey/miner.h"
#include "survey/paper_data.h"

namespace ubigraph::survey {
namespace {

const MessageCorpus& Corpus() {
  static const MessageCorpus kCorpus = MessageCorpus::Synthesize().ValueOrDie();
  return kCorpus;
}

TEST(CorpusTest, SynthesisSucceeds) {
  auto corpus = MessageCorpus::Synthesize();
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  EXPECT_GT(corpus->size(), 6000u);  // §2.4: "over 6000 emails and issues"
}

TEST(CorpusTest, PerProductCountsMatchTable20) {
  const MessageCorpus& corpus = Corpus();
  for (const ProductInfo& product : Products()) {
    if (product.emails >= 0) {
      EXPECT_EQ(corpus.EmailCount(product.name), product.emails) << product.name;
    }
    if (product.issues >= 0) {
      EXPECT_EQ(corpus.IssueCount(product.name), product.issues) << product.name;
    }
  }
}

TEST(CorpusTest, MessagesCarryTechnologyMetadata) {
  std::set<std::string> technologies;
  for (const Message& m : Corpus().messages()) {
    EXPECT_FALSE(m.product.empty());
    EXPECT_FALSE(m.subject.empty());
    EXPECT_FALSE(m.body.empty());
    technologies.insert(m.technology);
  }
  EXPECT_GE(technologies.size(), 6u);
}

TEST(MinerTest, ReproducesTable19Exactly) {
  MinedChallenges mined = MineChallenges(Corpus());
  const auto& paper = Table19MinedChallenges();
  ASSERT_EQ(mined.counts.size(), paper.size());
  for (size_t i = 0; i < paper.size(); ++i) {
    EXPECT_EQ(mined.counts[i], paper[i].count)
        << paper[i].category << " / " << paper[i].label;
  }
  EXPECT_EQ(mined.useful_messages, 221);
}

TEST(MinerTest, ReproducesTable18Exactly) {
  MinedSizes sizes = MineGraphSizes(Corpus());
  const auto& vertices = Table18aEmailVertexSizes();
  const auto& edges = Table18bEmailEdgeSizes();
  ASSERT_EQ(sizes.vertex_bands.size(), vertices.size());
  ASSERT_EQ(sizes.edge_bands.size(), edges.size());
  for (size_t i = 0; i < vertices.size(); ++i) {
    EXPECT_EQ(sizes.vertex_bands[i], vertices[i].count) << vertices[i].label;
  }
  for (size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(sizes.edge_bands[i], edges[i].count) << edges[i].label;
  }
}

TEST(MinerTest, ClassifierRespectsTechnologyClass) {
  // A "layout" complaint in a graph database list is NOT a viz-layout row.
  Message m;
  m.product = "Neo4j";
  m.technology = "Graph Database";
  m.subject = "Hierarchical layout support";
  m.body = "I want a hierarchical layout of my query results.";
  EXPECT_EQ(ClassifyMessage(m), -1);
  m.technology = "Graph Visualization";
  int row = ClassifyMessage(m);
  ASSERT_GE(row, 0);
  EXPECT_STREQ(Table19MinedChallenges()[row].label, "Layout");
}

TEST(MinerTest, RoutineMessagesUnclassified) {
  Message m;
  m.product = "Neo4j";
  m.technology = "Graph Database";
  m.subject = "Build fails on latest release";
  m.body = "I followed the installation guide but the service does not start.";
  EXPECT_EQ(ClassifyMessage(m), -1);
}

TEST(MinerTest, KeywordPriorityOneChallengePerMessage) {
  Message m;
  m.technology = "Graph Database";
  m.subject = "supernode";
  m.body = "also mentions a hyperedge";  // both keywords
  int row = ClassifyMessage(m);
  ASSERT_GE(row, 0);
  EXPECT_STREQ(Table19MinedChallenges()[row].label, "High-degree Vertices");
}

TEST(SizeExtractionTest, ParsesBillionMentions) {
  auto mentions = ExtractSizeMentions(
      "we have 3.20 billion edges and 0.45 billion vertices in production");
  ASSERT_EQ(mentions.size(), 2u);
  EXPECT_DOUBLE_EQ(mentions[0].first, 3.20);
  EXPECT_EQ(mentions[0].second, "edges");
  EXPECT_DOUBLE_EQ(mentions[1].first, 0.45);
  EXPECT_EQ(mentions[1].second, "vertices");
}

TEST(SizeExtractionTest, IgnoresIrrelevantText) {
  EXPECT_TRUE(ExtractSizeMentions("a billion reasons to").empty());
  EXPECT_TRUE(ExtractSizeMentions("two million vertices").empty());
  EXPECT_TRUE(ExtractSizeMentions("billion").empty());
  EXPECT_TRUE(ExtractSizeMentions("5 billion dollars").empty());
}

TEST(SizeExtractionTest, PunctuationStripped) {
  auto mentions = ExtractSizeMentions("about 2 billion edges, growing");
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(mentions[0].second, "edges");
}

// ----------------------------------------------------------- academic -----

TEST(AcademicTest, CorpusHas90Papers) {
  auto corpus = AcademicCorpus::SynthesizeExact().ValueOrDie();
  EXPECT_EQ(corpus.papers().size(), 90u);
}

TEST(AcademicTest, TagCountsMatchPaperColumns) {
  auto corpus = AcademicCorpus::SynthesizeExact().ValueOrDie();
  auto expect_match = [](const std::vector<int>& counts,
                         const std::vector<CountRow>& rows) {
    ASSERT_EQ(counts.size(), rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(counts[i], rows[i].academic) << rows[i].label;
    }
  };
  expect_match(corpus.CountEntities(), Table4Entities());
  expect_match(corpus.CountComputations(), Table9Computations());
  expect_match(corpus.CountMlComputations(), Table10aMlComputations());
  expect_match(corpus.CountMlProblems(), Table10bMlProblems());
  expect_match(corpus.CountQuerySoftware(), Table12QuerySoftware());
  expect_match(corpus.CountNonQuerySoftware(), Table13NonQuerySoftware());
}

TEST(AcademicTest, SelectionRuleOffersAllThirteenComputations) {
  // §2.3/Appendix A: a computation became a survey choice iff >= 2 papers
  // studied it. All 13 Table 9 rows qualify.
  auto corpus = AcademicCorpus::SynthesizeExact().ValueOrDie();
  EXPECT_EQ(corpus.ComputationChoicesOffered().size(),
            Table9Computations().size());
}

TEST(AcademicTest, DifferentSeedsStillCalibrated) {
  for (uint64_t seed : {5ULL, 500ULL}) {
    auto corpus = AcademicCorpus::SynthesizeExact(seed).ValueOrDie();
    auto counts = corpus.CountComputations();
    for (size_t i = 0; i < counts.size(); ++i) {
      EXPECT_EQ(counts[i], Table9Computations()[i].academic);
    }
  }
}

TEST(AcademicTest, VenuesCovered) {
  auto corpus = AcademicCorpus::SynthesizeExact().ValueOrDie();
  std::set<Venue> venues;
  for (const AcademicPaper& p : corpus.papers()) venues.insert(p.venue);
  EXPECT_EQ(venues.size(), 6u);
  EXPECT_STREQ(VenueName(Venue::kVldb), "VLDB 2014");
}

}  // namespace
}  // namespace ubigraph::survey
