#include <gtest/gtest.h>

#include "algorithms/diameter.h"
#include "gen/generators.h"

namespace ubigraph::algo {
namespace {

CsrGraph Undirected(EdgeList el) {
  CsrOptions opts;
  opts.directed = false;
  return CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
}

TEST(ExactDiameterTest, PathGraph) {
  EXPECT_EQ(ExactDiameter(Undirected(gen::Path(6))), 5u);
}

TEST(ExactDiameterTest, CycleGraph) {
  EXPECT_EQ(ExactDiameter(Undirected(gen::Cycle(8))), 4u);
  EXPECT_EQ(ExactDiameter(Undirected(gen::Cycle(9))), 4u);
}

TEST(ExactDiameterTest, CompleteGraphIsOne) {
  EXPECT_EQ(ExactDiameter(Undirected(gen::Complete(5))), 1u);
}

TEST(ExactDiameterTest, DisconnectedUsesLargestReach) {
  // Two components: path of 3 and isolated vertex; diameter within pieces.
  auto g = CsrGraph::FromPairs(4, {{0, 1}, {1, 0}, {1, 2}, {2, 1}}).ValueOrDie();
  EXPECT_EQ(ExactDiameter(g), 2u);
}

TEST(DoubleSweepTest, ExactOnTrees) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed + 7);
    auto g = Undirected(gen::RandomTree(40, &rng).ValueOrDie());
    EXPECT_EQ(DoubleSweepLowerBound(g, 0), ExactDiameter(g)) << seed;
  }
}

TEST(DoubleSweepTest, NeverExceedsExact) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed + 17);
    auto el = gen::ErdosRenyi(50, 120, &rng).ValueOrDie();
    auto g = Undirected(std::move(el));
    EXPECT_LE(DoubleSweepLowerBound(g, 3), ExactDiameter(g));
  }
}

TEST(DoubleSweepTest, EmptyAndSingleton) {
  auto empty = CsrGraph::FromEdges(EdgeList{}).ValueOrDie();
  EXPECT_EQ(DoubleSweepLowerBound(empty, 0), 0u);
  auto single = CsrGraph::FromEdges(EdgeList(1)).ValueOrDie();
  EXPECT_EQ(DoubleSweepLowerBound(single, 0), 0u);
}

TEST(IfubTest, BoundsBracketExact) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed + 27);
    auto el = gen::WattsStrogatz(60, 4, 0.1, &rng).ValueOrDie();
    auto g = Undirected(std::move(el));
    Rng probe_rng(seed);
    DiameterEstimate est = EstimateDiameterIfub(g, 30, &probe_rng);
    uint32_t exact = ExactDiameter(g);
    EXPECT_LE(est.lower_bound, exact);
    EXPECT_GE(est.upper_bound, exact);
    if (est.exact) {
      EXPECT_EQ(est.lower_bound, exact);
    }
  }
}

TEST(IfubTest, EmptyGraph) {
  auto g = CsrGraph::FromEdges(EdgeList{}).ValueOrDie();
  Rng rng(1);
  DiameterEstimate est = EstimateDiameterIfub(g, 10, &rng);
  EXPECT_EQ(est.lower_bound, 0u);
  EXPECT_EQ(est.upper_bound, 0u);
}

TEST(EffectiveDiameterTest, AtMostExactDiameter) {
  Rng rng(31);
  auto el = gen::BarabasiAlbert(80, 2, &rng).ValueOrDie();
  auto g = Undirected(std::move(el));
  Rng sample_rng(5);
  double eff = EffectiveDiameter(g, 20, &sample_rng);
  EXPECT_LE(eff, static_cast<double>(ExactDiameter(g)));
  EXPECT_GT(eff, 0.0);
}

TEST(EffectiveDiameterTest, PercentileMonotone) {
  Rng rng(33);
  auto el = gen::WattsStrogatz(80, 4, 0.05, &rng).ValueOrDie();
  auto g = Undirected(std::move(el));
  Rng r1(9), r2(9);
  double p50 = EffectiveDiameter(g, 30, &r1, 0.5);
  double p90 = EffectiveDiameter(g, 30, &r2, 0.9);
  EXPECT_LE(p50, p90);
}

TEST(EffectiveDiameterTest, DegenerateInputs) {
  auto g = CsrGraph::FromEdges(EdgeList{}).ValueOrDie();
  Rng rng(1);
  EXPECT_DOUBLE_EQ(EffectiveDiameter(g, 10, &rng), 0.0);
  auto single = CsrGraph::FromEdges(EdgeList(3)).ValueOrDie();  // no edges
  EXPECT_DOUBLE_EQ(EffectiveDiameter(single, 10, &rng), 0.0);
}

}  // namespace
}  // namespace ubigraph::algo
