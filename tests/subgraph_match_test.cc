#include <gtest/gtest.h>

#include "algorithms/subgraph_match.h"
#include "algorithms/triangle.h"
#include "common/random.h"
#include "gen/generators.h"

namespace ubigraph::algo {
namespace {

TEST(SubgraphMatchTest, TriangleCountConsistency) {
  Rng rng(2);
  auto el = gen::ErdosRenyi(20, 80, &rng).ValueOrDie();
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  SubgraphMatchOptions opts;
  opts.undirected = true;
  // Each undirected triangle matches 6 ways (3! vertex orderings).
  uint64_t matches = CountSubgraphMatches(g, MakeTrianglePattern(), opts);
  EXPECT_EQ(matches, 6 * CountTriangles(g));
}

TEST(SubgraphMatchTest, DirectedTriangleOnlyMatchesCycles) {
  // Directed 3-cycle has 3 automorphic embeddings of the directed triangle
  // pattern; a "transitive" triangle has none.
  auto cyc = CsrGraph::FromPairs(3, {{0, 1}, {1, 2}, {2, 0}}).ValueOrDie();
  auto tran = CsrGraph::FromPairs(3, {{0, 1}, {1, 2}, {0, 2}}).ValueOrDie();
  SubgraphMatchOptions opts;  // directed
  EXPECT_EQ(CountSubgraphMatches(cyc, MakeTrianglePattern(), opts), 3u);
  EXPECT_EQ(CountSubgraphMatches(tran, MakeTrianglePattern(), opts), 0u);
}

TEST(SubgraphMatchTest, PathPatternInPathGraph) {
  auto g = CsrGraph::FromEdges(gen::Path(5)).ValueOrDie();
  // Directed paths of length 2 in 0->1->2->3->4: three of them.
  EXPECT_EQ(CountSubgraphMatches(g, MakePathPattern(2)), 3u);
}

TEST(SubgraphMatchTest, StarPatternCountsOrderedLeafTuples) {
  auto g = CsrGraph::FromEdges(gen::Star(4)).ValueOrDie();
  // Directed star with 4 leaves: choosing 2 ordered leaves = 4*3 = 12.
  EXPECT_EQ(CountSubgraphMatches(g, MakeStarPattern(2)), 12u);
}

TEST(SubgraphMatchTest, HomomorphismsAllowRepeats) {
  auto g = CsrGraph::FromPairs(2, {{0, 1}, {1, 0}}).ValueOrDie();
  SubgraphMatchOptions hom;
  hom.injective = false;
  // Path of length 2 as homomorphism: 0->1->0 and 1->0->1 also count.
  uint64_t inj = CountSubgraphMatches(g, MakePathPattern(2));
  uint64_t all = CountSubgraphMatches(g, MakePathPattern(2), hom);
  EXPECT_EQ(inj, 0u);
  EXPECT_EQ(all, 2u);
}

TEST(SubgraphMatchTest, MaxMatchesStopsEarly) {
  auto g = CsrGraph::FromEdges(gen::Complete(6)).ValueOrDie();
  SubgraphMatchOptions opts;
  opts.undirected = true;
  opts.max_matches = 5;
  EXPECT_EQ(CountSubgraphMatches(g, MakeTrianglePattern(), opts), 5u);
}

TEST(SubgraphMatchTest, CallbackCanAbort) {
  auto g = CsrGraph::FromEdges(gen::Complete(5)).ValueOrDie();
  SubgraphMatchOptions opts;
  opts.undirected = true;
  uint64_t seen = 0;
  MatchSubgraph(g, MakeTrianglePattern(), opts,
                [&](const std::vector<VertexId>&) { return ++seen < 3; });
  EXPECT_EQ(seen, 3u);
}

TEST(SubgraphMatchTest, EmitsValidAssignments) {
  Rng rng(4);
  auto el = gen::ErdosRenyi(15, 60, &rng).ValueOrDie();
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  CsrGraph pattern = MakePathPattern(3);
  SubgraphMatchOptions opts;
  MatchSubgraph(g, pattern, opts, [&](const std::vector<VertexId>& m) {
    EXPECT_EQ(m.size(), 4u);
    for (VertexId p = 0; p + 1 < 4; ++p) {
      EXPECT_TRUE(g.HasEdge(m[p], m[p + 1]));
    }
    // Injectivity.
    for (size_t i = 0; i < m.size(); ++i) {
      for (size_t j = i + 1; j < m.size(); ++j) EXPECT_NE(m[i], m[j]);
    }
    return true;
  });
}

TEST(DiamondTest, SingleDiamond) {
  // 4-cycle 0-1-2-3 with chord 0-2 = one diamond.
  auto g =
      CsrGraph::FromPairs(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}}).ValueOrDie();
  EXPECT_EQ(CountDiamonds(g), 1u);
}

TEST(DiamondTest, K4HasSix) {
  // K4: each of 6 edges has 2 common neighbors -> C(2,2)=1 diamond per edge.
  auto g = CsrGraph::FromEdges(gen::Complete(4)).ValueOrDie();
  EXPECT_EQ(CountDiamonds(g), 6u);
}

TEST(DiamondTest, TriangleHasNone) {
  auto g = CsrGraph::FromEdges(gen::Complete(3)).ValueOrDie();
  EXPECT_EQ(CountDiamonds(g), 0u);
}

TEST(FourCliqueTest, CompleteGraphs) {
  EXPECT_EQ(CountFourCliques(CsrGraph::FromEdges(gen::Complete(4)).ValueOrDie()),
            1u);
  EXPECT_EQ(CountFourCliques(CsrGraph::FromEdges(gen::Complete(6)).ValueOrDie()),
            15u);  // C(6,4)
  EXPECT_EQ(CountFourCliques(CsrGraph::FromEdges(gen::Complete(3)).ValueOrDie()),
            0u);
}

TEST(PatternFactoriesTest, Shapes) {
  EXPECT_EQ(MakeTrianglePattern().num_vertices(), 3u);
  EXPECT_EQ(MakePathPattern(3).num_edges(), 3u);
  EXPECT_EQ(MakeStarPattern(5).num_vertices(), 6u);
  EXPECT_EQ(MakeDiamondPattern().num_edges(), 5u);
}

TEST(SubgraphMatchTest, EmptyInputs) {
  auto empty = CsrGraph::FromEdges(EdgeList{}).ValueOrDie();
  auto g = CsrGraph::FromEdges(gen::Path(3)).ValueOrDie();
  EXPECT_EQ(CountSubgraphMatches(g, empty), 0u);
  EXPECT_EQ(CountSubgraphMatches(empty, MakeTrianglePattern()), 0u);
}

}  // namespace
}  // namespace ubigraph::algo
