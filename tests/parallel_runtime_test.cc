// Tests for the shared-memory parallel runtime (common/parallel.h):
// ThreadPool lifecycle and exception propagation, exactly-once coverage of
// ParallelFor under both schedules, and bitwise determinism of the chunked
// tree ParallelReduce across thread counts and repeated runs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"

namespace ubigraph {
namespace {

TEST(ParallelRuntimeTest, ResolveNumThreads) {
  EXPECT_GE(ResolveNumThreads(0), 1u);  // hardware concurrency, at least 1
  EXPECT_EQ(ResolveNumThreads(1), 1u);
  EXPECT_EQ(ResolveNumThreads(7), 7u);
}

TEST(ParallelRuntimeTest, ConstructDestructWithoutWork) {
  for (unsigned t : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(t);
    EXPECT_EQ(pool.size(), t);
  }
  // Zero is clamped to one worker rather than deadlocking.
  ThreadPool zero(0);
  EXPECT_EQ(zero.size(), 1u);
}

TEST(ParallelRuntimeTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelRuntimeTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    // No Wait(): destruction must still run every queued task, then join.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ParallelRuntimeTest, ExceptionPropagatesOutOfWait) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The error is cleared: the pool stays usable afterwards.
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  EXPECT_NO_THROW(pool.Wait());
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelRuntimeTest, OnlyFirstOfManyExceptionsIsKept) {
  ThreadPool pool(4);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_NO_THROW(pool.Wait());
}

TEST(ParallelRuntimeTest, ConcurrentThrowsFromMultipleWorkersKeepExactlyOne) {
  // Four workers throw at the same instant (released by a shared gate), so
  // the first-exception-wins CAS in the pool races for real. Exactly one
  // exception must surface from Wait(), the error must be cleared, and the
  // pool must stay fully usable.
  constexpr unsigned kWorkers = 4;
  ThreadPool pool(kWorkers);
  std::atomic<unsigned> arrived{0};
  for (unsigned w = 0; w < kWorkers; ++w) {
    pool.Submit([&arrived, w] {
      arrived.fetch_add(1, std::memory_order_acq_rel);
      // Spin until every worker holds a task, then all throw together.
      while (arrived.load(std::memory_order_acquire) < kWorkers) {
      }
      throw std::runtime_error("worker " + std::to_string(w));
    });
  }
  bool caught = false;
  try {
    pool.Wait();
  } catch (const std::runtime_error& e) {
    caught = true;
    // Whichever worker won, the message is one of the four thrown.
    EXPECT_EQ(std::string(e.what()).rfind("worker ", 0), 0u) << e.what();
  }
  EXPECT_TRUE(caught);
  // Losing exceptions were swallowed, not rethrown on the next Wait.
  EXPECT_NO_THROW(pool.Wait());
  std::atomic<int> count{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_NO_THROW(pool.Wait());
  EXPECT_EQ(count.load(), 16);
}

TEST(ParallelRuntimeTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    for (Schedule schedule : {Schedule::kStatic, Schedule::kDynamic}) {
      for (uint64_t n : {0ull, 1ull, 7ull, 1000ull, 1025ull}) {
        ThreadPool pool(threads);
        std::vector<std::atomic<uint32_t>> hits(n);
        ParallelFor(
            pool, 0, n,
            [&](uint64_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); },
            schedule, /*grain=*/64);
        for (uint64_t i = 0; i < n; ++i) {
          ASSERT_EQ(hits[i].load(), 1u)
              << "index " << i << " threads=" << threads << " schedule="
              << (schedule == Schedule::kStatic ? "static" : "dynamic");
        }
      }
    }
  }
}

TEST(ParallelRuntimeTest, ParallelForChunksPartitionsTheRange) {
  for (Schedule schedule : {Schedule::kStatic, Schedule::kDynamic}) {
    ThreadPool pool(4);
    const uint64_t begin = 5, end = 1003;
    std::vector<std::atomic<uint32_t>> hits(end);
    std::atomic<uint64_t> total{0};
    ParallelForChunks(
        pool, begin, end,
        [&](uint64_t b, uint64_t e) {
          ASSERT_LE(begin, b);
          ASSERT_LT(b, e);
          ASSERT_LE(e, end);
          total.fetch_add(e - b, std::memory_order_relaxed);
          for (uint64_t i = b; i < e; ++i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
          }
        },
        schedule, /*grain=*/100);
    EXPECT_EQ(total.load(), end - begin);
    for (uint64_t i = begin; i < end; ++i) ASSERT_EQ(hits[i].load(), 1u);
  }
}

TEST(ParallelRuntimeTest, ParallelForPropagatesTaskExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(ParallelFor(pool, 0, 100,
                           [](uint64_t i) {
                             if (i == 37) throw std::runtime_error("index 37");
                           },
                           Schedule::kDynamic, /*grain=*/8),
               std::runtime_error);
}

TEST(ParallelRuntimeTest, ParallelReduceSumsIntegersExactly) {
  ThreadPool pool(4);
  const uint64_t n = 12345;
  uint64_t sum = ParallelReduce(
      pool, 0, n, uint64_t{0},
      [](uint64_t b, uint64_t e) {
        uint64_t s = 0;
        for (uint64_t i = b; i < e; ++i) s += i;
        return s;
      },
      [](uint64_t a, uint64_t b) { return a + b; },
      /*grain=*/97);
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(ParallelRuntimeTest, ParallelReduceEmptyRangeReturnsIdentity) {
  ThreadPool pool(2);
  double out = ParallelReduce(
      pool, 10, 10, 3.5, [](uint64_t, uint64_t) { return 0.0; },
      [](double a, double b) { return a + b; });
  EXPECT_EQ(out, 3.5);
}

TEST(ParallelRuntimeTest, ParallelReduceIsBitwiseDeterministic) {
  // Floating-point sum whose value depends on association order: identical
  // bits are required at every thread count and on every repetition, because
  // chunk boundaries and the combine tree depend only on the grain.
  Rng rng(2026);
  const uint64_t n = 50000;
  std::vector<double> values(n);
  for (double& v : values) v = rng.NextDouble() * 2.0 - 1.0;

  auto run = [&](unsigned threads) {
    ThreadPool pool(threads);
    return ParallelReduce(
        pool, 0, n, 0.0,
        [&](uint64_t b, uint64_t e) {
          double s = 0.0;
          for (uint64_t i = b; i < e; ++i) s += values[i];
          return s;
        },
        [](double a, double b) { return a + b; },
        /*grain=*/1024);
  };

  const double reference = run(1);
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    for (int rep = 0; rep < 3; ++rep) {
      double got = run(threads);
      ASSERT_EQ(std::memcmp(&got, &reference, sizeof(double)), 0)
          << "threads=" << threads << " rep=" << rep;
    }
  }
}

TEST(ParallelRuntimeTest, ParallelReduceBoolPartialsAreRaceFree) {
  // Regression: bool partials must not be stored bit-packed (vector<bool>),
  // where adjacent chunks share a word and concurrent writes race under TSan.
  ThreadPool pool(8);
  for (int rep = 0; rep < 10; ++rep) {
    bool any = ParallelReduce(
        pool, 0, 4096, false,
        [](uint64_t b, uint64_t) { return b == 2048; },
        [](bool a, bool b) { return a || b; },
        /*grain=*/1);
    ASSERT_TRUE(any);
  }
}

TEST(ParallelRuntimeTest, ParallelReduceCombinesChunksInOrder) {
  // Concatenating per-chunk index lists must reproduce 0..n-1 in order: the
  // tree combine preserves chunk order even though chunks are claimed
  // dynamically by racing workers.
  ThreadPool pool(8);
  const uint64_t n = 10000;
  auto out = ParallelReduce(
      pool, 0, n, std::vector<uint64_t>{},
      [](uint64_t b, uint64_t e) {
        std::vector<uint64_t> chunk;
        for (uint64_t i = b; i < e; ++i) chunk.push_back(i);
        return chunk;
      },
      [](std::vector<uint64_t> a, std::vector<uint64_t> b) {
        a.insert(a.end(), b.begin(), b.end());
        return a;
      },
      /*grain=*/64);
  ASSERT_EQ(out.size(), n);
  for (uint64_t i = 0; i < n; ++i) ASSERT_EQ(out[i], i);
}

}  // namespace
}  // namespace ubigraph
