// Parser and gate tests for the bench_compare logic (bench/bench_compare_lib):
// malformed BENCH.json must fail loudly instead of silently dropping records,
// and the regression gate must honor the noise-aware allowance and the
// work-counter requirement ci/perf_smoke.sh enforces.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "../bench/bench_compare_lib.h"

namespace ubigraph::benchcmp {
namespace {

constexpr char kGoodRecord[] = R"([
  {"name": "BM_X/12/1", "kernel": "bfs", "mode": "hybrid", "graph": "rmat12",
   "threads": 1, "median_real_ns": 1000.0, "edges_per_second": 1e9,
   "bytes_per_edge": 0, "work_items": 32768, "repeats": 4, "rel_spread": 0.05}
])";

std::map<std::string, Record> MustLoad(const std::string& text) {
  std::map<std::string, Record> out;
  Status st = LoadRecords(text, "test.json", &out);
  EXPECT_TRUE(st.ok()) << st.message();
  return out;
}

TEST(BenchCompareLoadTest, ParsesAllFields) {
  auto records = MustLoad(kGoodRecord);
  ASSERT_EQ(records.size(), 1u);
  const Record& r = records.at("BM_X/12/1");
  EXPECT_EQ(r.kernel, "bfs");
  EXPECT_EQ(r.mode, "hybrid");
  EXPECT_EQ(r.graph, "rmat12");
  EXPECT_EQ(r.threads, 1);
  EXPECT_DOUBLE_EQ(r.median_real_ns, 1000.0);
  EXPECT_DOUBLE_EQ(r.work_items, 32768.0);
  EXPECT_EQ(r.repeats, 4);
  EXPECT_DOUBLE_EQ(r.rel_spread, 0.05);
}

TEST(BenchCompareLoadTest, EmptyFileIsAnError) {
  std::map<std::string, Record> out;
  Status st = LoadRecords("", "empty.json", &out);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("empty.json"), std::string::npos);
}

TEST(BenchCompareLoadTest, NonArrayTopLevelIsAnError) {
  std::map<std::string, Record> out;
  Status st = LoadRecords("{\"name\": \"x\"}", "obj.json", &out);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("not a JSON array"), std::string::npos);
}

TEST(BenchCompareLoadTest, EmptyArrayIsOkButEmpty) {
  EXPECT_TRUE(MustLoad("[]").empty());
}

TEST(BenchCompareLoadTest, MissingRequiredFieldFailsLoudly) {
  // Drop work_items: older silently-skipping behavior would just default it.
  std::map<std::string, Record> out;
  Status st = LoadRecords(
      R"([{"name": "BM_X", "kernel": "bfs", "threads": 1,
           "median_real_ns": 1.0, "edges_per_second": 1.0,
           "bytes_per_edge": 0}])",
      "cur.json", &out);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("work_items"), std::string::npos);
  EXPECT_NE(st.message().find("BM_X"), std::string::npos);
}

TEST(BenchCompareLoadTest, MistypedFieldFailsLoudly) {
  std::map<std::string, Record> out;
  Status st = LoadRecords(
      R"([{"name": "BM_X", "kernel": "bfs", "threads": "one",
           "median_real_ns": 1.0, "edges_per_second": 1.0,
           "bytes_per_edge": 0, "work_items": 1}])",
      "cur.json", &out);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("threads"), std::string::npos);
}

TEST(BenchCompareLoadTest, NanRateIsRejected) {
  // JSON has no NaN literal; a hand-edited or corrupted file smuggling one
  // in must fail the parse, not flow into the ratio math.
  std::map<std::string, Record> out;
  Status st = LoadRecords(
      R"([{"name": "BM_X", "kernel": "bfs", "threads": 1,
           "median_real_ns": 1.0, "edges_per_second": NaN,
           "bytes_per_edge": 0, "work_items": 1}])",
      "cur.json", &out);
  EXPECT_FALSE(st.ok());
}

TEST(BenchCompareLoadTest, UnknownKeysAreIgnored) {
  auto records = MustLoad(
      R"([{"name": "BM_X", "kernel": "bfs", "threads": 1,
           "median_real_ns": 1.0, "edges_per_second": 1.0,
           "bytes_per_edge": 0, "work_items": 1,
           "future_field": {"nested": [1, 2]}}])");
  EXPECT_EQ(records.size(), 1u);
}

TEST(BenchCompareLoadTest, OptionalVarianceFieldsDefault) {
  // Files written before the variance fields existed still load.
  auto records = MustLoad(
      R"([{"name": "BM_X", "kernel": "bfs", "threads": 1,
           "median_real_ns": 1.0, "edges_per_second": 1.0,
           "bytes_per_edge": 0, "work_items": 1}])");
  EXPECT_EQ(records.at("BM_X").repeats, 1);
  EXPECT_DOUBLE_EQ(records.at("BM_X").rel_spread, 0.0);
}

TEST(BenchCompareLoadTest, LaterRecordsOverrideEarlier) {
  std::map<std::string, Record> out;
  ASSERT_TRUE(LoadRecords(kGoodRecord, "a.json", &out).ok());
  std::string second = kGoodRecord;
  second.replace(second.find("1000.0"), 6, "2000.0");
  ASSERT_TRUE(LoadRecords(second, "b.json", &out).ok());
  EXPECT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out.at("BM_X/12/1").median_real_ns, 2000.0);
}

TEST(BenchCompareLoadTest, RoundTripsThroughFormat) {
  auto records = MustLoad(kGoodRecord);
  auto reloaded = MustLoad(FormatRecords(records));
  ASSERT_EQ(reloaded.size(), 1u);
  EXPECT_DOUBLE_EQ(reloaded.at("BM_X/12/1").median_real_ns, 1000.0);
  EXPECT_DOUBLE_EQ(reloaded.at("BM_X/12/1").rel_spread, 0.05);
}

Record MakeRecord(double ns, double spread = 0.0, double work = 100.0) {
  Record r;
  r.kernel = "k";
  r.median_real_ns = ns;
  r.rel_spread = spread;
  r.work_items = work;
  return r;
}

TEST(BenchCompareGateTest, FlagsRegressionBeyondAllowance) {
  std::map<std::string, Record> base{{"a", MakeRecord(1000)}};
  std::map<std::string, Record> cur{{"a", MakeRecord(1300)}};
  Comparison cmp = Compare(base, cur, CompareOptions{});
  EXPECT_EQ(cmp.compared, 1);
  EXPECT_EQ(cmp.regressions, 1);
  EXPECT_FALSE(cmp.ok());
}

TEST(BenchCompareGateTest, SpreadWidensTheGate) {
  // +30% over baseline, but both runs observed 10% spread: allowance is
  // 25% + 10% + 10% = 45%, so this passes where the quiet-machine case fails.
  std::map<std::string, Record> base{{"a", MakeRecord(1000, 0.10)}};
  std::map<std::string, Record> cur{{"a", MakeRecord(1300, 0.10)}};
  Comparison cmp = Compare(base, cur, CompareOptions{});
  EXPECT_EQ(cmp.regressions, 0);
  EXPECT_TRUE(cmp.ok());
}

TEST(BenchCompareGateTest, MissingWorkItemsFailsWhenRequired) {
  std::map<std::string, Record> base{{"a", MakeRecord(1000)}};
  std::map<std::string, Record> cur{{"a", MakeRecord(1000, 0.0, 0.0)}};
  CompareOptions opts;
  EXPECT_TRUE(Compare(base, cur, opts).ok());
  opts.require_work_items = true;
  Comparison cmp = Compare(base, cur, opts);
  EXPECT_EQ(cmp.work_violations, 1);
  EXPECT_FALSE(cmp.ok());
}

TEST(BenchCompareGateTest, NoOverlapIsNotOk) {
  std::map<std::string, Record> base{{"a", MakeRecord(1000)}};
  std::map<std::string, Record> cur{{"b", MakeRecord(1000)}};
  Comparison cmp = Compare(base, cur, CompareOptions{});
  EXPECT_EQ(cmp.compared, 0);
  EXPECT_EQ(cmp.missing, 1);
  EXPECT_FALSE(cmp.ok());
}

TEST(BenchCompareLoadTest, MemoryFieldsParseAndDefault) {
  auto records = MustLoad(
      R"([{"name": "BM_X", "kernel": "pagerank", "threads": 1,
           "median_real_ns": 1.0, "edges_per_second": 1.0,
           "bytes_per_edge": 0, "work_items": 1,
           "peak_segment_bytes": 4096, "peak_rss_bytes": 1e9,
           "peak_msg_bytes": 2048},
          {"name": "BM_Old", "kernel": "pagerank", "threads": 1,
           "median_real_ns": 1.0, "edges_per_second": 1.0,
           "bytes_per_edge": 0, "work_items": 1}])");
  EXPECT_DOUBLE_EQ(records.at("BM_X").peak_segment_bytes, 4096.0);
  EXPECT_DOUBLE_EQ(records.at("BM_X").peak_rss_bytes, 1e9);
  EXPECT_DOUBLE_EQ(records.at("BM_X").peak_msg_bytes, 2048.0);
  // Pre-memory-field files load with zeros (and are never memory-gated).
  EXPECT_DOUBLE_EQ(records.at("BM_Old").peak_segment_bytes, 0.0);
  EXPECT_DOUBLE_EQ(records.at("BM_Old").peak_msg_bytes, 0.0);
}

TEST(BenchCompareLoadTest, NegativeMemoryFieldIsRejected) {
  std::map<std::string, Record> out;
  Status st = LoadRecords(
      R"([{"name": "BM_X", "kernel": "pagerank", "threads": 1,
           "median_real_ns": 1.0, "edges_per_second": 1.0,
           "bytes_per_edge": 0, "work_items": 1, "peak_msg_bytes": -5}])",
      "cur.json", &out);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("peak_*_bytes"), std::string::npos);
}

TEST(BenchCompareLoadTest, MemoryFieldsRoundTripThroughFormat) {
  auto records = MustLoad(
      R"([{"name": "BM_X", "kernel": "pagerank", "threads": 1,
           "median_real_ns": 1.0, "edges_per_second": 1.0,
           "bytes_per_edge": 0, "work_items": 1,
           "peak_segment_bytes": 4096, "peak_msg_bytes": 2048}])");
  const std::string text = FormatRecords(records);
  // Zero-valued counters stay absent so pre-memory baselines survive a
  // load/format round-trip unchanged.
  EXPECT_EQ(text.find("peak_rss_bytes"), std::string::npos);
  auto reloaded = MustLoad(text);
  EXPECT_DOUBLE_EQ(reloaded.at("BM_X").peak_segment_bytes, 4096.0);
  EXPECT_DOUBLE_EQ(reloaded.at("BM_X").peak_msg_bytes, 2048.0);
  EXPECT_DOUBLE_EQ(reloaded.at("BM_X").peak_rss_bytes, 0.0);
}

Record MakeMemRecord(double ns, double seg, double rss, double msg) {
  Record r = MakeRecord(ns);
  r.peak_segment_bytes = seg;
  r.peak_rss_bytes = rss;
  r.peak_msg_bytes = msg;
  return r;
}

TEST(BenchCompareGateTest, MemoryGateOffByDefault) {
  // 10x segment-byte growth passes when --gate-memory is not set.
  std::map<std::string, Record> base{{"a", MakeMemRecord(1000, 1000, 0, 0)}};
  std::map<std::string, Record> cur{{"a", MakeMemRecord(1000, 10000, 0, 0)}};
  Comparison cmp = Compare(base, cur, CompareOptions{});
  EXPECT_EQ(cmp.mem_regressions, 0);
  EXPECT_TRUE(cmp.ok());
}

TEST(BenchCompareGateTest, MemoryGateFlagsGrowthBeyondAllowance) {
  std::map<std::string, Record> base{
      {"a", MakeMemRecord(1000, 1000, 0, 500)}};
  std::map<std::string, Record> cur{{"a", MakeMemRecord(1000, 1400, 0, 500)}};
  CompareOptions opts;
  opts.gate_memory = true;  // default max_mem_regression = 0.30 → 1400 > 1300
  Comparison cmp = Compare(base, cur, opts);
  EXPECT_EQ(cmp.mem_regressions, 1);
  EXPECT_FALSE(cmp.ok());
  EXPECT_NE(cmp.report.find("MEM-REG"), std::string::npos);
  EXPECT_NE(cmp.report.find("peak_segment_bytes"), std::string::npos);
}

TEST(BenchCompareGateTest, MemoryGateWithinAllowancePasses) {
  std::map<std::string, Record> base{
      {"a", MakeMemRecord(1000, 1000, 1000, 1000)}};
  std::map<std::string, Record> cur{
      {"a", MakeMemRecord(1000, 1200, 1400, 1200)}};
  CompareOptions opts;
  opts.gate_memory = true;  // +20% seg/msg < 30%; +40% RSS < 50%
  Comparison cmp = Compare(base, cur, opts);
  EXPECT_EQ(cmp.mem_regressions, 0);
  EXPECT_TRUE(cmp.ok());
}

TEST(BenchCompareGateTest, RssGetsGenerousAllowance) {
  // +40% RSS is noise (allocator slack, page cache); +40% msg bytes is not.
  std::map<std::string, Record> base{{"a", MakeMemRecord(1000, 0, 1000, 1000)}};
  std::map<std::string, Record> cur{{"a", MakeMemRecord(1000, 0, 1400, 1400)}};
  CompareOptions opts;
  opts.gate_memory = true;
  Comparison cmp = Compare(base, cur, opts);
  EXPECT_EQ(cmp.mem_regressions, 1);
  EXPECT_NE(cmp.report.find("peak_msg_bytes"), std::string::npos);
}

TEST(BenchCompareGateTest, MemoryGateSkipsOneSidedCounters) {
  // Counter present only on one side (old baseline, or a bench that stopped
  // reporting): nothing to compare, must not fail.
  std::map<std::string, Record> base{{"a", MakeMemRecord(1000, 0, 0, 0)}};
  std::map<std::string, Record> cur{
      {"a", MakeMemRecord(1000, 1 << 20, 1 << 20, 1 << 20)}};
  CompareOptions opts;
  opts.gate_memory = true;
  EXPECT_EQ(Compare(base, cur, opts).mem_regressions, 0);
  EXPECT_EQ(Compare(cur, base, opts).mem_regressions, 0);
}

}  // namespace
}  // namespace ubigraph::benchcmp
