// Parser and gate tests for the bench_compare logic (bench/bench_compare_lib):
// malformed BENCH.json must fail loudly instead of silently dropping records,
// and the regression gate must honor the noise-aware allowance and the
// work-counter requirement ci/perf_smoke.sh enforces.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "../bench/bench_compare_lib.h"

namespace ubigraph::benchcmp {
namespace {

constexpr char kGoodRecord[] = R"([
  {"name": "BM_X/12/1", "kernel": "bfs", "mode": "hybrid", "graph": "rmat12",
   "threads": 1, "median_real_ns": 1000.0, "edges_per_second": 1e9,
   "bytes_per_edge": 0, "work_items": 32768, "repeats": 4, "rel_spread": 0.05}
])";

std::map<std::string, Record> MustLoad(const std::string& text) {
  std::map<std::string, Record> out;
  Status st = LoadRecords(text, "test.json", &out);
  EXPECT_TRUE(st.ok()) << st.message();
  return out;
}

TEST(BenchCompareLoadTest, ParsesAllFields) {
  auto records = MustLoad(kGoodRecord);
  ASSERT_EQ(records.size(), 1u);
  const Record& r = records.at("BM_X/12/1");
  EXPECT_EQ(r.kernel, "bfs");
  EXPECT_EQ(r.mode, "hybrid");
  EXPECT_EQ(r.graph, "rmat12");
  EXPECT_EQ(r.threads, 1);
  EXPECT_DOUBLE_EQ(r.median_real_ns, 1000.0);
  EXPECT_DOUBLE_EQ(r.work_items, 32768.0);
  EXPECT_EQ(r.repeats, 4);
  EXPECT_DOUBLE_EQ(r.rel_spread, 0.05);
}

TEST(BenchCompareLoadTest, EmptyFileIsAnError) {
  std::map<std::string, Record> out;
  Status st = LoadRecords("", "empty.json", &out);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("empty.json"), std::string::npos);
}

TEST(BenchCompareLoadTest, NonArrayTopLevelIsAnError) {
  std::map<std::string, Record> out;
  Status st = LoadRecords("{\"name\": \"x\"}", "obj.json", &out);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("not a JSON array"), std::string::npos);
}

TEST(BenchCompareLoadTest, EmptyArrayIsOkButEmpty) {
  EXPECT_TRUE(MustLoad("[]").empty());
}

TEST(BenchCompareLoadTest, MissingRequiredFieldFailsLoudly) {
  // Drop work_items: older silently-skipping behavior would just default it.
  std::map<std::string, Record> out;
  Status st = LoadRecords(
      R"([{"name": "BM_X", "kernel": "bfs", "threads": 1,
           "median_real_ns": 1.0, "edges_per_second": 1.0,
           "bytes_per_edge": 0}])",
      "cur.json", &out);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("work_items"), std::string::npos);
  EXPECT_NE(st.message().find("BM_X"), std::string::npos);
}

TEST(BenchCompareLoadTest, MistypedFieldFailsLoudly) {
  std::map<std::string, Record> out;
  Status st = LoadRecords(
      R"([{"name": "BM_X", "kernel": "bfs", "threads": "one",
           "median_real_ns": 1.0, "edges_per_second": 1.0,
           "bytes_per_edge": 0, "work_items": 1}])",
      "cur.json", &out);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("threads"), std::string::npos);
}

TEST(BenchCompareLoadTest, NanRateIsRejected) {
  // JSON has no NaN literal; a hand-edited or corrupted file smuggling one
  // in must fail the parse, not flow into the ratio math.
  std::map<std::string, Record> out;
  Status st = LoadRecords(
      R"([{"name": "BM_X", "kernel": "bfs", "threads": 1,
           "median_real_ns": 1.0, "edges_per_second": NaN,
           "bytes_per_edge": 0, "work_items": 1}])",
      "cur.json", &out);
  EXPECT_FALSE(st.ok());
}

TEST(BenchCompareLoadTest, UnknownKeysAreIgnored) {
  auto records = MustLoad(
      R"([{"name": "BM_X", "kernel": "bfs", "threads": 1,
           "median_real_ns": 1.0, "edges_per_second": 1.0,
           "bytes_per_edge": 0, "work_items": 1,
           "future_field": {"nested": [1, 2]}}])");
  EXPECT_EQ(records.size(), 1u);
}

TEST(BenchCompareLoadTest, OptionalVarianceFieldsDefault) {
  // Files written before the variance fields existed still load.
  auto records = MustLoad(
      R"([{"name": "BM_X", "kernel": "bfs", "threads": 1,
           "median_real_ns": 1.0, "edges_per_second": 1.0,
           "bytes_per_edge": 0, "work_items": 1}])");
  EXPECT_EQ(records.at("BM_X").repeats, 1);
  EXPECT_DOUBLE_EQ(records.at("BM_X").rel_spread, 0.0);
}

TEST(BenchCompareLoadTest, LaterRecordsOverrideEarlier) {
  std::map<std::string, Record> out;
  ASSERT_TRUE(LoadRecords(kGoodRecord, "a.json", &out).ok());
  std::string second = kGoodRecord;
  second.replace(second.find("1000.0"), 6, "2000.0");
  ASSERT_TRUE(LoadRecords(second, "b.json", &out).ok());
  EXPECT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out.at("BM_X/12/1").median_real_ns, 2000.0);
}

TEST(BenchCompareLoadTest, RoundTripsThroughFormat) {
  auto records = MustLoad(kGoodRecord);
  auto reloaded = MustLoad(FormatRecords(records));
  ASSERT_EQ(reloaded.size(), 1u);
  EXPECT_DOUBLE_EQ(reloaded.at("BM_X/12/1").median_real_ns, 1000.0);
  EXPECT_DOUBLE_EQ(reloaded.at("BM_X/12/1").rel_spread, 0.05);
}

Record MakeRecord(double ns, double spread = 0.0, double work = 100.0) {
  Record r;
  r.kernel = "k";
  r.median_real_ns = ns;
  r.rel_spread = spread;
  r.work_items = work;
  return r;
}

TEST(BenchCompareGateTest, FlagsRegressionBeyondAllowance) {
  std::map<std::string, Record> base{{"a", MakeRecord(1000)}};
  std::map<std::string, Record> cur{{"a", MakeRecord(1300)}};
  Comparison cmp = Compare(base, cur, CompareOptions{});
  EXPECT_EQ(cmp.compared, 1);
  EXPECT_EQ(cmp.regressions, 1);
  EXPECT_FALSE(cmp.ok());
}

TEST(BenchCompareGateTest, SpreadWidensTheGate) {
  // +30% over baseline, but both runs observed 10% spread: allowance is
  // 25% + 10% + 10% = 45%, so this passes where the quiet-machine case fails.
  std::map<std::string, Record> base{{"a", MakeRecord(1000, 0.10)}};
  std::map<std::string, Record> cur{{"a", MakeRecord(1300, 0.10)}};
  Comparison cmp = Compare(base, cur, CompareOptions{});
  EXPECT_EQ(cmp.regressions, 0);
  EXPECT_TRUE(cmp.ok());
}

TEST(BenchCompareGateTest, MissingWorkItemsFailsWhenRequired) {
  std::map<std::string, Record> base{{"a", MakeRecord(1000)}};
  std::map<std::string, Record> cur{{"a", MakeRecord(1000, 0.0, 0.0)}};
  CompareOptions opts;
  EXPECT_TRUE(Compare(base, cur, opts).ok());
  opts.require_work_items = true;
  Comparison cmp = Compare(base, cur, opts);
  EXPECT_EQ(cmp.work_violations, 1);
  EXPECT_FALSE(cmp.ok());
}

TEST(BenchCompareGateTest, NoOverlapIsNotOk) {
  std::map<std::string, Record> base{{"a", MakeRecord(1000)}};
  std::map<std::string, Record> cur{{"b", MakeRecord(1000)}};
  Comparison cmp = Compare(base, cur, CompareOptions{});
  EXPECT_EQ(cmp.compared, 0);
  EXPECT_EQ(cmp.missing, 1);
  EXPECT_FALSE(cmp.ok());
}

}  // namespace
}  // namespace ubigraph::benchcmp
