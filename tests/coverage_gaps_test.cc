// Targeted tests for corners the module suites leave uncovered: questionnaire
// categories, degenerate layout inputs, Cypher clause combinations, and the
// survey's derived-table helpers under perturbation.
#include <gtest/gtest.h>

#include "gen/generators.h"
#include "query/cypher_executor.h"
#include "survey/population.h"
#include "survey/schema.h"
#include "survey/tabulate.h"
#include "viz/layout.h"

namespace ubigraph {
namespace {

TEST(QuestionnaireCategoriesTest, EveryQuestionHasACategory) {
  using namespace survey;
  const Questionnaire& q = Questionnaire::Standard();
  size_t total = 0;
  for (QuestionCategory cat :
       {QuestionCategory::kDemographics, QuestionCategory::kDatasets,
        QuestionCategory::kComputations, QuestionCategory::kSoftware,
        QuestionCategory::kWorkloadAndChallenges}) {
    total += q.InCategory(cat).size();
  }
  EXPECT_EQ(total, q.size());
  // The paper's five question groups are all non-empty.
  EXPECT_EQ(q.InCategory(QuestionCategory::kDemographics).size(), 2u);
  EXPECT_EQ(q.InCategory(QuestionCategory::kWorkloadAndChallenges).size(), 7u);
}

TEST(PopulationAccessorsTest, MissingQuestionIsEmptyNotFatal) {
  using namespace survey;
  Population pop = Population::SampleStochastic(3);
  EXPECT_TRUE(pop.Selections(0, "no_such_question").empty());
  EXPECT_TRUE(pop.Tabulate("no_such_question").empty());
  EXPECT_TRUE(pop.WhoSelected("no_such_question", 0).empty());
  EXPECT_FALSE(pop.Selected(0, "no_such_question", 0));
  EXPECT_FALSE(pop.Selected(-1, "edges", 0));
  EXPECT_FALSE(pop.Selected(0, "edges", 999));
}

TEST(DerivedTablesTest, StochasticPopulationStillProducesDerivations) {
  using namespace survey;
  // The derived-table helpers must not assume the exact population's pinning.
  Population pop = Population::SampleStochastic(11);
  auto sizes = DeriveBillionEdgeOrgSizes(pop);
  for (const auto& row : sizes) EXPECT_GT(row.count, 0);
  int joint = DeriveDistributedWithOver100M(pop);
  EXPECT_GE(joint, 0);
  EXPECT_LE(joint, kParticipants);
}

TEST(LayoutDegenerateTest, EmptyGraphsEverywhere) {
  auto empty = CsrGraph::FromEdges(EdgeList{}).ValueOrDie();
  EXPECT_TRUE(viz::CircularLayout(empty).empty());
  EXPECT_TRUE(viz::HierarchicalLayout(empty).empty());
  EXPECT_TRUE(viz::GridLayout(empty).empty());
  EXPECT_EQ(viz::CountEdgeCrossings(empty, {}), 0u);
  EXPECT_DOUBLE_EQ(viz::MeanEdgeLength(empty, {}), 0.0);
}

TEST(CypherComboTest, VarLengthWithWhereOrderLimit) {
  PropertyGraph g;
  for (int i = 0; i < 8; ++i) {
    VertexId v = g.AddVertex("N");
    g.SetVertexProperty(v, "idx", static_cast<int64_t>(i)).Abort();
  }
  for (VertexId i = 0; i + 1 < 8; ++i) g.AddEdge(i, i + 1, "next").ValueOrDie();

  auto r = query::RunCypher(g,
                            "MATCH (a {idx: 0})-[:next*1..5]->(b) "
                            "WHERE b.idx > 1 "
                            "RETURN b.idx ORDER BY b.idx DESC LIMIT 2")
               .ValueOrDie();
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(std::get<int64_t>(r.rows[0][0]), 5);
  EXPECT_EQ(std::get<int64_t>(r.rows[1][0]), 4);
}

TEST(CypherComboTest, CountWithWhere) {
  PropertyGraph g;
  for (int i = 0; i < 5; ++i) {
    VertexId v = g.AddVertex("N");
    g.SetVertexProperty(v, "x", static_cast<int64_t>(i)).Abort();
  }
  auto r = query::RunCypher(g, "MATCH (a:N) WHERE a.x >= 2 RETURN count(*)")
               .ValueOrDie();
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(r.rows[0][0]), 3);
}

TEST(CypherComboTest, AnonymousIntermediateNodes) {
  PropertyGraph g;
  VertexId a = g.AddVertex("A");
  VertexId m = g.AddVertex("M");
  VertexId b = g.AddVertex("B");
  g.AddEdge(a, m, "r").ValueOrDie();
  g.AddEdge(m, b, "r").ValueOrDie();
  auto r = query::RunCypher(g, "MATCH (x:A)-[:r]->()-[:r]->(y:B) RETURN y")
               .ValueOrDie();
  EXPECT_EQ(r.rows.size(), 1u);
}

TEST(GeneratorEdgeCasesTest, TinyShapes) {
  EXPECT_EQ(gen::Path(0).num_edges(), 0u);
  EXPECT_EQ(gen::Path(1).num_edges(), 0u);
  EXPECT_EQ(gen::Complete(1).num_edges(), 0u);
  EXPECT_EQ(gen::Grid(1, 1).num_vertices(), 1u);
  Rng rng(1);
  EXPECT_EQ(gen::RandomTree(1, &rng).ValueOrDie().num_edges(), 0u);
  EXPECT_FALSE(gen::RandomTree(0, &rng).ok());
}

}  // namespace
}  // namespace ubigraph
