// Tests for the §6.2 graph-database features: versioning, hyperedges,
// schema & constraints, triggers, and supernode-skipping traversal — the
// five most-requested capabilities in Table 19's mined challenges.
#include <gtest/gtest.h>

#include "algorithms/connected_components.h"
#include "algorithms/traversal.h"
#include "gen/generators.h"
#include "graph/graph_schema.h"
#include "graph/hypergraph.h"
#include "graph/triggers.h"
#include "graph/versioned_graph.h"

namespace ubigraph {
namespace {

// ------------------------------------------------------------ versioning ---

TEST(VersionedGraphTest, SnapshotsEvolve) {
  VersionedGraph g;
  VertexId a = g.AddVertex("n");
  VertexId b = g.AddVertex("n");
  EdgeId e1 = g.AddEdge(a, b, "t").ValueOrDie();
  VersionId v1 = g.Commit();

  VertexId c = g.AddVertex("n");
  g.AddEdge(b, c, "t").ValueOrDie();
  g.RemoveEdge(e1).Abort();
  VersionId v2 = g.Commit();

  auto snap1 = g.SnapshotAt(v1).ValueOrDie();
  EXPECT_EQ(snap1.num_vertices(), 2u);
  EXPECT_EQ(snap1.num_edges(), 1u);

  auto snap2 = g.SnapshotAt(v2).ValueOrDie();
  EXPECT_EQ(snap2.num_vertices(), 3u);
  EXPECT_EQ(snap2.num_edges(), 1u);  // e1 removed, b->c added
  EXPECT_EQ(snap2.edges()[0].src, b);

  // Version 0 is the empty graph.
  auto snap0 = g.SnapshotAt(0).ValueOrDie();
  EXPECT_EQ(snap0.num_edges(), 0u);
  EXPECT_EQ(g.NumVerticesAt(0).ValueOrDie(), 0u);
}

TEST(VersionedGraphTest, EdgeExistedAt) {
  VersionedGraph g;
  VertexId a = g.AddVertex("n");
  VertexId b = g.AddVertex("n");
  EdgeId e = g.AddEdge(a, b, "t").ValueOrDie();
  VersionId v1 = g.Commit();
  g.RemoveEdge(e).Abort();
  VersionId v2 = g.Commit();
  EXPECT_TRUE(g.EdgeExistedAt(e, v1).ValueOrDie());
  EXPECT_FALSE(g.EdgeExistedAt(e, v2).ValueOrDie());
}

TEST(VersionedGraphTest, PropertyHistory) {
  VersionedGraph g;
  VertexId v = g.AddVertex("account");
  g.SetVertexProperty(v, "balance", static_cast<int64_t>(100)).Abort();
  VersionId v1 = g.Commit();
  g.SetVertexProperty(v, "balance", static_cast<int64_t>(250)).Abort();
  VersionId v2 = g.Commit();

  EXPECT_EQ(std::get<int64_t>(g.VertexPropertyAt(v, "balance", v1).ValueOrDie()),
            100);
  EXPECT_EQ(std::get<int64_t>(g.VertexPropertyAt(v, "balance", v2).ValueOrDie()),
            250);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(
      g.VertexPropertyAt(v, "nothing", v2).ValueOrDie()));
}

TEST(VersionedGraphTest, UncommittedVersionRejected) {
  VersionedGraph g;
  g.AddVertex("n");
  EXPECT_FALSE(g.SnapshotAt(1).ok());  // nothing committed
  g.Commit();
  EXPECT_TRUE(g.SnapshotAt(1).ok());
  EXPECT_FALSE(g.SnapshotAt(2).ok());
}

TEST(VersionedGraphTest, MaterializeRestoresProperties) {
  VersionedGraph g;
  VertexId v = g.AddVertex("person");
  g.SetVertexProperty(v, "name", std::string("ann")).Abort();
  VersionId v1 = g.Commit();
  g.SetVertexProperty(v, "name", std::string("bob")).Abort();
  g.Commit();

  PropertyGraph old = g.MaterializeAt(v1).ValueOrDie();
  EXPECT_EQ(old.VertexLabel(v), "person");
  EXPECT_EQ(std::get<std::string>(old.GetVertexProperty(v, "name")), "ann");
}

TEST(VersionedGraphTest, DiffCountsChanges) {
  VersionedGraph g;
  VertexId a = g.AddVertex("n");
  VertexId b = g.AddVertex("n");
  VersionId v1 = g.Commit();
  EdgeId e = g.AddEdge(a, b, "t").ValueOrDie();
  g.SetVertexProperty(a, "k", static_cast<int64_t>(1)).Abort();
  VersionId v2 = g.Commit();
  g.RemoveEdge(e).Abort();
  VersionId v3 = g.Commit();

  auto d12 = g.DiffVersions(v1, v2).ValueOrDie();
  EXPECT_EQ(d12.edges_added, 1u);
  EXPECT_EQ(d12.properties_changed, 1u);
  EXPECT_EQ(d12.vertices_added, 0u);
  auto d23 = g.DiffVersions(v2, v3).ValueOrDie();
  EXPECT_EQ(d23.edges_removed, 1u);
  auto full = g.DiffVersions(0, v3).ValueOrDie();
  EXPECT_EQ(full.vertices_added, 2u);
  EXPECT_FALSE(g.DiffVersions(v3, v1).ok());
}

TEST(VersionedGraphTest, InvalidMutationsRejected) {
  VersionedGraph g;
  EXPECT_TRUE(g.AddEdge(0, 1, "t").status().IsOutOfRange());
  EXPECT_TRUE(g.RemoveEdge(0).IsNotFound());
  EXPECT_TRUE(g.SetVertexProperty(0, "k", 1.0).IsOutOfRange());
  VertexId a = g.AddVertex("n");
  VertexId b = g.AddVertex("n");
  EdgeId e = g.AddEdge(a, b, "t").ValueOrDie();
  g.RemoveEdge(e).Abort();
  EXPECT_TRUE(g.RemoveEdge(e).IsNotFound());  // double remove
}

// ------------------------------------------------------------ hyperedges ---

TEST(HypergraphTest, BasicIncidence) {
  Hypergraph h(5);
  HyperedgeId family = h.AddHyperedge({0, 1, 2}).ValueOrDie();
  h.AddHyperedge({2, 3}).ValueOrDie();
  EXPECT_EQ(h.num_hyperedges(), 2u);
  EXPECT_EQ(h.Members(family).size(), 3u);
  EXPECT_EQ(h.Degree(2), 2u);
  EXPECT_EQ(h.Degree(4), 0u);
  EXPECT_EQ(h.MaxEdgeSize(), 3u);
  EXPECT_EQ(h.Neighbors(2), (std::vector<VertexId>{0, 1, 3}));
}

TEST(HypergraphTest, InvalidHyperedgesRejected) {
  Hypergraph h(3);
  EXPECT_FALSE(h.AddHyperedge({0}).ok());        // too small
  EXPECT_FALSE(h.AddHyperedge({0, 0}).ok());     // duplicate member
  EXPECT_FALSE(h.AddHyperedge({0, 9}).ok());     // out of range
}

TEST(HypergraphTest, CliqueExpansionConnectsMembers) {
  Hypergraph h(4);
  h.AddHyperedge({0, 1, 2}, 2.0).ValueOrDie();
  auto g = h.CliqueExpansion().ValueOrDie();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(0, 3));
  // Weight normalization: 2.0 / (3-1) = 1.0 per pair.
  EXPECT_DOUBLE_EQ(g.OutWeights(0)[0], 1.0);
}

TEST(HypergraphTest, StarExpansionCreatesMockVertices) {
  // The §6.2 "hyperedge vertex" simulation.
  Hypergraph h(3);
  h.AddHyperedge({0, 1, 2}).ValueOrDie();
  auto g = h.StarExpansion().ValueOrDie();
  EXPECT_EQ(g.num_vertices(), 4u);  // 3 real + 1 mock
  VertexId mock = 3;
  EXPECT_TRUE(g.HasEdge(mock, 0));
  EXPECT_TRUE(g.HasEdge(mock, 1));
  EXPECT_TRUE(g.HasEdge(mock, 2));
  EXPECT_FALSE(g.HasEdge(0, 1));  // members not directly linked
  EXPECT_EQ(g.OutDegree(mock), 3u);
}

TEST(HypergraphTest, ConnectedComponentsThroughSharedEdges) {
  Hypergraph h(6);
  h.AddHyperedge({0, 1, 2}).ValueOrDie();
  h.AddHyperedge({2, 3}).ValueOrDie();
  h.AddHyperedge({4, 5}).ValueOrDie();
  uint32_t count = 0;
  auto label = h.ConnectedComponents(&count);
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(label[0], label[3]);
  EXPECT_NE(label[0], label[4]);
}

TEST(HypergraphTest, ExpansionsAgreeOnConnectivity) {
  Hypergraph h(8);
  h.AddHyperedge({0, 1, 2, 3}).ValueOrDie();
  h.AddHyperedge({3, 4}).ValueOrDie();
  h.AddHyperedge({5, 6, 7}).ValueOrDie();
  uint32_t native = 0;
  h.ConnectedComponents(&native);
  auto clique = h.CliqueExpansion().ValueOrDie();
  EXPECT_EQ(algo::WeaklyConnectedComponents(clique).num_components, native);
  // Star expansion adds mock vertices but preserves component structure.
  auto star = h.StarExpansion().ValueOrDie();
  EXPECT_EQ(algo::WeaklyConnectedComponents(star).num_components, native);
}

// ---------------------------------------------------------------- schema ---

PropertyGraph OrgChart() {
  PropertyGraph g;
  VertexId ceo = g.AddVertex("Employee");
  g.SetVertexProperty(ceo, "id", static_cast<int64_t>(1)).Abort();
  VertexId eng = g.AddVertex("Employee");
  g.SetVertexProperty(eng, "id", static_cast<int64_t>(2)).Abort();
  VertexId team = g.AddVertex("Team");
  g.AddEdge(eng, ceo, "reports_to").ValueOrDie();
  g.AddEdge(eng, team, "member_of").ValueOrDie();
  return g;
}

TEST(GraphSchemaTest, ConformingGraphPasses) {
  GraphSchema schema;
  schema.RequireVertexProperty("Employee", "id", PropertyType::kInt)
      .RequireEdgeEndpoints("reports_to", "Employee", "Employee")
      .RequireAcyclic("reports_to")
      .RequireUniqueProperty("Employee", "id");
  EXPECT_TRUE(schema.Conforms(OrgChart()));
  EXPECT_EQ(schema.num_rules(), 4u);
}

TEST(GraphSchemaTest, MissingPropertyReported) {
  PropertyGraph g = OrgChart();
  VertexId intern = g.AddVertex("Employee");  // no id
  GraphSchema schema;
  schema.RequireVertexProperty("Employee", "id", PropertyType::kInt);
  auto violations = schema.Validate(g);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].vertex, intern);
}

TEST(GraphSchemaTest, WrongTypeReported) {
  PropertyGraph g;
  VertexId v = g.AddVertex("Employee");
  g.SetVertexProperty(v, "id", std::string("not-a-number")).Abort();
  GraphSchema schema;
  schema.RequireVertexProperty("Employee", "id", PropertyType::kInt);
  EXPECT_EQ(schema.Validate(g).size(), 1u);
  GraphSchema any_type;
  any_type.RequireVertexProperty("Employee", "id", PropertyType::kAny);
  EXPECT_TRUE(any_type.Conforms(g));
}

TEST(GraphSchemaTest, EndpointLabelEnforced) {
  PropertyGraph g = OrgChart();
  // Team reporting to an employee violates Employee->Employee.
  g.AddEdge(2, 0, "reports_to").ValueOrDie();
  GraphSchema schema;
  schema.RequireEdgeEndpoints("reports_to", "Employee", "Employee");
  auto violations = schema.Validate(g);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].edge, kInvalidEdge);
}

TEST(GraphSchemaTest, AcyclicityEnforced) {
  PropertyGraph g = OrgChart();
  g.AddEdge(0, 1, "reports_to").ValueOrDie();  // ceo reports to eng: cycle
  GraphSchema schema;
  schema.RequireAcyclic("reports_to");
  EXPECT_EQ(schema.Validate(g).size(), 1u);
  // Other edge types don't participate in the check.
  GraphSchema member_schema;
  member_schema.RequireAcyclic("member_of");
  EXPECT_TRUE(member_schema.Conforms(g));
}

TEST(GraphSchemaTest, DegreeLimitEnforced) {
  PropertyGraph g;
  VertexId hub = g.AddVertex("Router");
  for (int i = 0; i < 5; ++i) {
    VertexId leaf = g.AddVertex("Host");
    g.AddEdge(hub, leaf, "link").ValueOrDie();
  }
  GraphSchema schema;
  schema.LimitOutDegree("Router", 3);
  auto violations = schema.Validate(g);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].vertex, hub);
  GraphSchema loose;
  loose.LimitOutDegree("Router", 5);
  EXPECT_TRUE(loose.Conforms(g));
}

TEST(GraphSchemaTest, UniquenessEnforced) {
  PropertyGraph g;
  VertexId a = g.AddVertex("User");
  VertexId b = g.AddVertex("User");
  g.SetVertexProperty(a, "email", std::string("x@y.z")).Abort();
  g.SetVertexProperty(b, "email", std::string("x@y.z")).Abort();
  GraphSchema schema;
  schema.RequireUniqueProperty("User", "email");
  EXPECT_EQ(schema.Validate(g).size(), 1u);
  g.SetVertexProperty(b, "email", std::string("other@y.z")).Abort();
  EXPECT_TRUE(schema.Conforms(g));
}

TEST(MatchesPropertyTypeTest, AllAlternatives) {
  EXPECT_TRUE(MatchesPropertyType(static_cast<int64_t>(1), PropertyType::kInt));
  EXPECT_TRUE(MatchesPropertyType(1.5, PropertyType::kDouble));
  EXPECT_TRUE(MatchesPropertyType(true, PropertyType::kBool));
  EXPECT_TRUE(MatchesPropertyType(std::string("s"), PropertyType::kString));
  EXPECT_TRUE(MatchesPropertyType(Timestamp{1}, PropertyType::kTimestamp));
  EXPECT_TRUE(MatchesPropertyType(Bytes{1}, PropertyType::kBytes));
  EXPECT_FALSE(MatchesPropertyType(std::monostate{}, PropertyType::kAny));
  EXPECT_FALSE(MatchesPropertyType(1.5, PropertyType::kInt));
}

// --------------------------------------------------------------- triggers ---

TEST(TriggeredGraphTest, CreatedAtStampedOnInsert) {
  TriggeredGraph g;
  int64_t clock = 1000;
  g.RegisterTrigger(GraphEvent::kVertexAdded,
                    MakeCreatedAtTrigger("created_at", &clock));
  VertexId a = g.AddVertex("n");
  clock = 2000;
  VertexId b = g.AddVertex("n");
  EXPECT_EQ(std::get<Timestamp>(g.graph().GetVertexProperty(a, "created_at")).millis,
            1000);
  EXPECT_EQ(std::get<Timestamp>(g.graph().GetVertexProperty(b, "created_at")).millis,
            2000);
  EXPECT_EQ(g.fired_count(), 2u);
}

TEST(TriggeredGraphTest, AuditLogRecordsOldAndNew) {
  TriggeredGraph g;
  std::vector<std::string> audit;
  g.RegisterTrigger(GraphEvent::kVertexPropertySet, MakeAuditTrigger(&audit));
  VertexId v = g.AddVertex("n");
  g.SetVertexProperty(v, "name", std::string("ann")).Abort();
  g.SetVertexProperty(v, "name", std::string("bob")).Abort();
  ASSERT_EQ(audit.size(), 2u);
  EXPECT_NE(audit[0].find("(unset) -> ann"), std::string::npos);
  EXPECT_NE(audit[1].find("ann -> bob"), std::string::npos);
}

TEST(TriggeredGraphTest, TriggersDoNotCascade) {
  // A property-set trigger that sets another property must not loop forever
  // or fire itself.
  TriggeredGraph g;
  g.RegisterTrigger(GraphEvent::kVertexPropertySet,
                    [](TriggeredGraph& tg, const TriggerContext& ctx) {
                      if (ctx.key != "touched") {
                        tg.SetVertexProperty(ctx.vertex, "touched", true).Abort();
                      }
                    });
  VertexId v = g.AddVertex("n");
  g.SetVertexProperty(v, "name", std::string("x")).Abort();
  EXPECT_EQ(g.fired_count(), 1u);
  EXPECT_EQ(std::get<bool>(g.graph().GetVertexProperty(v, "touched")), true);
}

TEST(TriggeredGraphTest, EventFiltering) {
  TriggeredGraph g;
  int vertex_events = 0, edge_events = 0;
  g.RegisterTrigger(GraphEvent::kVertexAdded,
                    [&](TriggeredGraph&, const TriggerContext&) { ++vertex_events; });
  g.RegisterTrigger(GraphEvent::kEdgeAdded,
                    [&](TriggeredGraph&, const TriggerContext&) { ++edge_events; });
  VertexId a = g.AddVertex("n");
  VertexId b = g.AddVertex("n");
  g.AddEdge(a, b, "t").ValueOrDie();
  EXPECT_EQ(vertex_events, 2);
  EXPECT_EQ(edge_events, 1);
}

TEST(TriggeredGraphTest, UnregisterStopsFiring) {
  TriggeredGraph g;
  int count = 0;
  size_t id = g.RegisterTrigger(
      GraphEvent::kVertexAdded,
      [&](TriggeredGraph&, const TriggerContext&) { ++count; });
  g.AddVertex("n");
  EXPECT_TRUE(g.UnregisterTrigger(id));
  EXPECT_FALSE(g.UnregisterTrigger(id));
  g.AddVertex("n");
  EXPECT_EQ(count, 1);
  EXPECT_EQ(g.num_triggers(), 0u);
}

// ---------------------------------------------------- supernode skipping ---

TEST(SupernodeBfsTest, PathsDoNotRouteThroughHubs) {
  // 0 -> hub -> 2; hub has high degree. Paths through it are cut.
  EdgeList el(13);
  el.Add(0, 1);         // 1 is the hub
  el.Add(1, 2);
  for (VertexId leaf = 3; leaf < 13; ++leaf) el.Add(1, leaf);
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();

  auto plain = algo::BfsDistances(g, 0);
  EXPECT_EQ(plain[2], 2u);

  auto skipping = algo::BfsDistancesSkippingSupernodes(g, 0, 5);
  EXPECT_EQ(skipping[1], 1u);               // the hub itself is reachable
  EXPECT_EQ(skipping[2], algo::kUnreachable);  // but not traversable
}

TEST(SupernodeBfsTest, SourceAlwaysExpanded) {
  auto g = CsrGraph::FromEdges(gen::Star(10)).ValueOrDie();
  auto dist = algo::BfsDistancesSkippingSupernodes(g, 0, 2);
  for (VertexId leaf = 1; leaf <= 10; ++leaf) EXPECT_EQ(dist[leaf], 1u);
}

TEST(SupernodeBfsTest, NoSupernodesMeansPlainBfs) {
  Rng rng(9);
  auto el = gen::ErdosRenyi(50, 150, &rng).ValueOrDie();
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  EXPECT_EQ(algo::BfsDistancesSkippingSupernodes(g, 0, UINT64_MAX),
            algo::BfsDistances(g, 0));
}

}  // namespace
}  // namespace ubigraph
