// Differential integration tests for the observability subsystem: enabling
// instrumentation must not change any kernel's output (bitwise), and the
// counters the kernels flush must match ground truth computed independently
// from the graph (e.g. BFS edges relaxed == sum of reached out-degrees).
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "algorithms/pagerank.h"
#include "algorithms/traversal.h"
#include "common/parallel.h"
#include "common/random.h"
#include "gen/generators.h"
#include "graph/csr_graph.h"
#include "io/edge_list_io.h"
#include "obs/metrics.h"
#include "query/cypher_executor.h"

namespace ubigraph {
namespace {

using obs::MetricsRegistry;

class ObsIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().Reset();
    MetricsRegistry::Global().set_enabled(true);
  }
  void TearDown() override { MetricsRegistry::Global().set_enabled(true); }

  static int64_t CounterValue(const char* name) {
    return MetricsRegistry::Global().GetCounter(name)->Value();
  }
};

CsrGraph TestGraph(uint32_t scale, bool in_edges) {
  Rng rng(7);
  EdgeList el = gen::Rmat(scale, uint64_t{8} << scale, &rng).ValueOrDie();
  CsrOptions opts;
  opts.build_in_edges = in_edges;
  return CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
}

TEST_F(ObsIntegrationTest, PageRankScoresAreBitwiseIdenticalWithObsOnAndOff) {
  CsrGraph g = TestGraph(10, /*in_edges=*/true);
  algo::PageRankOptions opts;
  opts.max_iterations = 30;
  opts.tolerance = 0;

  MetricsRegistry::Global().set_enabled(false);
  auto off = algo::PageRank(g, opts).ValueOrDie();
  MetricsRegistry::Global().set_enabled(true);
  auto on = algo::PageRank(g, opts).ValueOrDie();

  EXPECT_EQ(on.iterations, off.iterations);
  EXPECT_EQ(on.converged, off.converged);
  ASSERT_EQ(on.scores.size(), off.scores.size());
  EXPECT_EQ(std::memcmp(on.scores.data(), off.scores.data(),
                        on.scores.size() * sizeof(double)),
            0);
}

TEST_F(ObsIntegrationTest, ParallelPageRankUnchangedByInstrumentation) {
  CsrGraph g = TestGraph(10, /*in_edges=*/true);
  algo::PageRankOptions opts;
  opts.max_iterations = 20;
  opts.tolerance = 0;
  opts.num_threads = 4;

  MetricsRegistry::Global().set_enabled(false);
  auto off = algo::PageRank(g, opts).ValueOrDie();
  MetricsRegistry::Global().set_enabled(true);
  auto on = algo::PageRank(g, opts).ValueOrDie();

  ASSERT_EQ(on.scores.size(), off.scores.size());
  EXPECT_EQ(std::memcmp(on.scores.data(), off.scores.data(),
                        on.scores.size() * sizeof(double)),
            0);
}

TEST_F(ObsIntegrationTest, PageRankCountersMatchRunParameters) {
  CsrGraph g = TestGraph(9, /*in_edges=*/true);
  algo::PageRankOptions opts;
  opts.max_iterations = 17;
  opts.tolerance = 0;  // run the full iteration budget
  auto result = algo::PageRank(g, opts).ValueOrDie();

  EXPECT_EQ(CounterValue("pagerank.runs"), 1);
  EXPECT_EQ(CounterValue("pagerank.iterations"), result.iterations);
  // Pull-based power iteration traverses every in-edge once per iteration.
  EXPECT_EQ(CounterValue("pagerank.edges_relaxed"),
            static_cast<int64_t>(result.iterations) *
                static_cast<int64_t>(g.num_edges()));
  EXPECT_EQ(MetricsRegistry::Global()
                .GetHistogram("pagerank.latency_us")
                ->Merge()
                .count,
            1);
}

TEST_F(ObsIntegrationTest, DisabledRegistryRecordsNothing) {
  CsrGraph g = TestGraph(8, /*in_edges=*/true);
  MetricsRegistry::Global().set_enabled(false);
  algo::PageRank(g).ValueOrDie();
  MetricsRegistry::Global().set_enabled(true);
  EXPECT_EQ(CounterValue("pagerank.runs"), 0);
  EXPECT_EQ(CounterValue("pagerank.iterations"), 0);
}

TEST_F(ObsIntegrationTest, BfsDistancesIdenticalAndCountersMatchGroundTruth) {
  CsrGraph g = TestGraph(10, /*in_edges=*/false);

  MetricsRegistry::Global().set_enabled(false);
  std::vector<uint32_t> off = algo::BfsDistances(g, 0);
  MetricsRegistry::Global().set_enabled(true);
  std::vector<uint32_t> dist = algo::BfsDistances(g, 0);
  EXPECT_EQ(dist, off);

  // Ground truth recomputed from the distance array: a level-synchronous BFS
  // relaxes every out-edge of every reached vertex exactly once.
  int64_t visited = 0;
  int64_t edges_relaxed = 0;
  uint32_t max_depth = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (dist[v] == algo::kUnreachable) continue;
    ++visited;
    edges_relaxed += static_cast<int64_t>(g.OutDegree(v));
    max_depth = std::max(max_depth, dist[v]);
  }
  EXPECT_EQ(CounterValue("bfs.runs"), 1);
  EXPECT_EQ(CounterValue("bfs.vertices_visited"), visited);
  EXPECT_EQ(CounterValue("bfs.edges_relaxed"), edges_relaxed);
  EXPECT_EQ(CounterValue("bfs.rounds"), max_depth + 1);
  // One frontier-size sample per BFS level.
  EXPECT_EQ(MetricsRegistry::Global()
                .GetHistogram("bfs.frontier_size")
                ->Merge()
                .count,
            max_depth + 1);
}

TEST_F(ObsIntegrationTest, ParallelBfsIdenticalWithObsOnAndOff) {
  CsrGraph g = TestGraph(10, /*in_edges=*/false);
  algo::BfsOptions opts;
  opts.num_threads = 4;
  MetricsRegistry::Global().set_enabled(false);
  std::vector<uint32_t> off = algo::BfsDistances(g, 0, opts);
  MetricsRegistry::Global().set_enabled(true);
  std::vector<uint32_t> on = algo::BfsDistances(g, 0, opts);
  EXPECT_EQ(on, off);
}

TEST_F(ObsIntegrationTest, ThreadPoolAccountsForEverySubmittedTask) {
  {
    ThreadPool pool(4);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([] {
        volatile uint64_t x = 0;
        for (int k = 0; k < 10000; ++k) x = x + k;
      });
    }
    pool.Wait();
  }
  int64_t submitted = CounterValue("pool.tasks_submitted");
  int64_t completed = CounterValue("pool.tasks_completed");
  EXPECT_EQ(submitted, 64);
  EXPECT_EQ(completed, submitted);
  EXPECT_GT(CounterValue("pool.busy_ns"), 0);
  EXPECT_GE(MetricsRegistry::Global().GetGauge("pool.queue_depth_max")->Value(),
            1);
}

TEST_F(ObsIntegrationTest, IoParserFlushesBytesAndRecords) {
  const std::string text = "0 1\n1 2\n2 0\n";
  auto el = io::ParseEdgeListText(text).ValueOrDie();
  EXPECT_EQ(el.num_edges(), 3u);
  EXPECT_EQ(CounterValue("io.edge_list.bytes"),
            static_cast<int64_t>(text.size()));
  EXPECT_EQ(CounterValue("io.edge_list.records"), 3);
  EXPECT_EQ(CounterValue("io.edge_list.parse_errors"), 0);

  EXPECT_FALSE(io::ParseEdgeListText("0 not-a-vertex\n").ok());
  EXPECT_EQ(CounterValue("io.edge_list.parse_errors"), 1);
}

TEST_F(ObsIntegrationTest, CypherExecutorCountsRows) {
  PropertyGraph g;
  VertexId a = g.AddVertex("Person");
  VertexId b = g.AddVertex("Person");
  VertexId c = g.AddVertex("Person");
  g.SetVertexProperty(a, "age", static_cast<int64_t>(30)).Abort();
  g.SetVertexProperty(b, "age", static_cast<int64_t>(20)).Abort();
  g.SetVertexProperty(c, "age", static_cast<int64_t>(40)).Abort();
  auto result =
      query::RunCypher(g, "MATCH (p:Person) WHERE p.age > 25 RETURN p")
          .ValueOrDie();
  EXPECT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(CounterValue("cypher.queries"), 1);
  EXPECT_EQ(CounterValue("cypher.rows_returned"), 2);
  EXPECT_EQ(CounterValue("cypher.rows_filtered"), 1);
  // Every Person vertex is a scan candidate.
  EXPECT_GE(CounterValue("cypher.rows_scanned"), 3);
  // Results themselves are independent of instrumentation.
  MetricsRegistry::Global().set_enabled(false);
  auto off = query::RunCypher(g, "MATCH (p:Person) WHERE p.age > 25 RETURN p")
                 .ValueOrDie();
  MetricsRegistry::Global().set_enabled(true);
  EXPECT_EQ(off.rows.size(), result.rows.size());
}

}  // namespace
}  // namespace ubigraph
