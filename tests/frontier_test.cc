// Frontier edge cases: empty frontiers, a single-vertex universe, full-graph
// dense sets, and representation round-trips — the shapes the
// direction-optimizing kernels hit at the very first and very last rounds.
#include "graph/frontier.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "algorithms/traversal.h"
#include "graph/csr_graph.h"

namespace ubigraph {
namespace {

TEST(FrontierEdgeCaseTest, DefaultConstructedIsEmpty) {
  Frontier f;
  EXPECT_EQ(f.universe(), 0u);
  EXPECT_EQ(f.size(), 0u);
  EXPECT_TRUE(f.empty());
  EXPECT_FALSE(f.dense());
  EXPECT_TRUE(f.Vertices().empty());
}

TEST(FrontierEdgeCaseTest, EmptyFrontierSurvivesConversions) {
  Frontier f(100);
  EXPECT_TRUE(f.empty());
  // sparse -> dense -> sparse with nothing in it.
  f.ToDense();
  EXPECT_TRUE(f.dense());
  EXPECT_TRUE(f.empty());
  for (VertexId v = 0; v < 100; ++v) EXPECT_FALSE(f.Test(v)) << v;
  f.ToSparse();
  EXPECT_FALSE(f.dense());
  EXPECT_TRUE(f.empty());
  EXPECT_TRUE(f.Vertices().empty());
  // Clearing in either representation keeps it empty.
  f.ClearDense();
  EXPECT_TRUE(f.dense());
  EXPECT_TRUE(f.empty());
  f.Clear();
  EXPECT_FALSE(f.dense());
  EXPECT_TRUE(f.empty());
}

TEST(FrontierEdgeCaseTest, SingleVertexUniverse) {
  Frontier f(1);
  EXPECT_TRUE(f.empty());
  f.Push(0);
  EXPECT_EQ(f.size(), 1u);
  f.ToDense();
  EXPECT_TRUE(f.Test(0));
  EXPECT_EQ(f.size(), 1u);
  f.ToSparse();
  ASSERT_EQ(f.Vertices().size(), 1u);
  EXPECT_EQ(f.Vertices()[0], 0u);
  f.ClearDense();
  f.SetAll();
  EXPECT_EQ(f.size(), 1u);
  EXPECT_TRUE(f.Test(0));
}

TEST(FrontierEdgeCaseTest, SetAllIsFullGraphDense) {
  // A universe that is not a multiple of 64 exercises the partial last word.
  constexpr VertexId kN = 131;
  Frontier f(kN);
  f.SetAll();
  EXPECT_TRUE(f.dense());
  EXPECT_EQ(f.size(), kN);
  for (VertexId v = 0; v < kN; ++v) EXPECT_TRUE(f.Test(v)) << v;
  // The bitmap must not carry bits past the universe: a recount sees exactly
  // kN, and the sparse view lists exactly [0, kN).
  f.RecountDense();
  EXPECT_EQ(f.size(), kN);
  f.ToSparse();
  std::vector<VertexId> want(kN);
  std::iota(want.begin(), want.end(), 0u);
  EXPECT_EQ(std::vector<VertexId>(f.Vertices().begin(), f.Vertices().end()),
            want);
}

TEST(FrontierEdgeCaseTest, SparseDenseSparseRoundTripSortsIds) {
  Frontier f(200);
  // Push in scrambled order; the dense bitmap canonicalizes, so the sparse
  // rebuild comes back in ascending id order.
  const std::vector<VertexId> scrambled = {199, 0, 64, 63, 65, 128, 1, 127};
  for (VertexId v : scrambled) f.Push(v);
  EXPECT_EQ(f.size(), scrambled.size());
  f.ToDense();
  for (VertexId v : scrambled) EXPECT_TRUE(f.Test(v)) << v;
  EXPECT_FALSE(f.Test(2));
  EXPECT_EQ(f.size(), scrambled.size());
  f.ToSparse();
  std::vector<VertexId> got(f.Vertices().begin(), f.Vertices().end());
  std::vector<VertexId> want = scrambled;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
  // And a second round trip is stable.
  f.ToDense();
  f.ToSparse();
  EXPECT_EQ(std::vector<VertexId>(f.Vertices().begin(), f.Vertices().end()),
            want);
}

TEST(FrontierEdgeCaseTest, AtomicTestAndSetReportsFirstSetOnly) {
  Frontier f(70);
  f.ClearDense();
  EXPECT_TRUE(f.AtomicTestAndSet(69));
  EXPECT_FALSE(f.AtomicTestAndSet(69));
  EXPECT_TRUE(f.AtomicTestAndSet(0));
  f.SetCount(2);
  EXPECT_EQ(f.size(), 2u);
  f.RecountDense();
  EXPECT_EQ(f.size(), 2u);
}

TEST(FrontierEdgeCaseTest, ResetRetargetsUniverse) {
  Frontier f(10);
  f.Push(3);
  f.Push(9);
  f.Reset(300);
  EXPECT_EQ(f.universe(), 300u);
  EXPECT_TRUE(f.empty());
  EXPECT_FALSE(f.dense());
  f.ClearDense();
  EXPECT_FALSE(f.Test(299));
  f.Set(299);
  f.SetCount(1);
  EXPECT_TRUE(f.Test(299));
}

TEST(FrontierEdgeCaseTest, AdoptListAndAppendMatchPush) {
  Frontier a(50), b(50);
  std::vector<VertexId> vs = {5, 10, 15, 49};
  for (VertexId v : vs) a.Push(v);
  b.AdoptList(vs);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_TRUE(std::equal(a.Vertices().begin(), a.Vertices().end(),
                         b.Vertices().begin(), b.Vertices().end()));
  Frontier c(50);
  c.Append(a.Vertices());
  EXPECT_EQ(c.size(), a.size());
}

/// The kernel-facing edge cases: hybrid BFS drives a Frontier through its
/// degenerate shapes (single vertex, immediately-empty frontier) and must
/// agree with the serial oracle.
TEST(FrontierEdgeCaseTest, HybridBfsOnSingleVertexGraph) {
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromPairs(1, {}, opts).ValueOrDie();
  auto dist = algo::HybridBfs(g, 0).ValueOrDie();
  ASSERT_EQ(dist.size(), 1u);
  EXPECT_EQ(dist[0], 0u);
  // Out-of-range source: the frontier starts (and stays) empty.
  auto none = algo::HybridBfs(g, 7).ValueOrDie();
  EXPECT_EQ(none[0], algo::kUnreachable);
}

}  // namespace
}  // namespace ubigraph
