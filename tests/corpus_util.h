// Shared corpus builder for the cross-kernel differential tests (and any
// future randomized harness): four deterministic graph shapes spanning the
// survey's topology table — RMAT power-law (Table 7 "power-law"), LFR skewed
// communities, Zipf bipartite (user-item), and road-like bounded-degree
// lattices — each materialized in the three CSR representations kernels
// accept (plain, permuted, compressed). Everything is a pure function of
// (shape, seed): a failure message's triple is enough to replay it.
#pragma once

#include <string>
#include <vector>

#include "common/random.h"
#include "gen/generators.h"
#include "graph/compressed_csr.h"
#include "graph/csr_graph.h"
#include "graph/ordering.h"

namespace ubigraph::test {

enum class CorpusShape { kRmat, kLfr, kBipartite, kRoad };

inline const char* CorpusShapeName(CorpusShape s) {
  switch (s) {
    case CorpusShape::kRmat: return "rmat";
    case CorpusShape::kLfr: return "lfr";
    case CorpusShape::kBipartite: return "bipartite";
    case CorpusShape::kRoad: return "road";
  }
  return "?";
}

inline std::vector<CorpusShape> AllCorpusShapes() {
  return {CorpusShape::kRmat, CorpusShape::kLfr, CorpusShape::kBipartite,
          CorpusShape::kRoad};
}

/// Deterministic small corpus edge list (~512-600 vertices — sized so the
/// full shape x representation x thread-count sweep stays TSan-feasible).
inline EdgeList CorpusEdges(CorpusShape shape, uint64_t seed) {
  Rng rng(seed);
  switch (shape) {
    case CorpusShape::kRmat:
      return gen::Rmat(9, 4096, &rng).ValueOrDie();
    case CorpusShape::kLfr:
      return gen::LfrCommunity(512, {}, &rng).ValueOrDie().edges;
    case CorpusShape::kBipartite:
      return gen::BipartiteSkewed(256, 256, 3072, 1.0, &rng).ValueOrDie();
    case CorpusShape::kRoad:
      return gen::RoadLike(24, 24, {}, &rng).ValueOrDie();
  }
  return EdgeList();
}

/// Same shapes with deterministic positive weights in [0.1, 1.1) for the
/// SSSP kernels (the spread keeps delta-stepping's light/heavy split live).
inline EdgeList WeightedCorpusEdges(CorpusShape shape, uint64_t seed) {
  EdgeList el = CorpusEdges(shape, seed);
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  for (Edge& e : el.mutable_edges()) e.weight = 0.1 + rng.NextDouble();
  return el;
}

/// The three representations every kernel family can read. All are built
/// undirected (symmetrized) so in-edge-requiring kernels (hybrid BFS, pull
/// PageRank) and undirected-only kernels (k-core) run on one graph; vertex
/// ids are shared between plain and compressed, while permuted relabels by
/// hub-cluster order and carries the new_to_old map back.
struct CorpusRepresentations {
  CsrGraph plain;
  PermutedCsr permuted;
  CompressedCsrGraph compressed;
};

inline CorpusRepresentations BuildRepresentations(const EdgeList& edges) {
  CsrOptions opts;
  opts.directed = false;
  opts.deduplicate = true;       // RMAT repeats edges; make all shapes simple
  opts.remove_self_loops = true;
  CorpusRepresentations out;
  EdgeList copy = edges;
  out.plain = CsrGraph::FromEdges(std::move(copy), opts).ValueOrDie();
  out.permuted =
      out.plain.Permute(MakeOrdering(out.plain, OrderingKind::kHubCluster))
          .ValueOrDie();
  out.compressed = CompressedCsrGraph::FromCsr(out.plain).ValueOrDie();
  return out;
}

/// old_to_new inverse of a PermutedCsr's new_to_old map.
inline std::vector<VertexId> OldToNew(const PermutedCsr& p) {
  std::vector<VertexId> inv(p.new_to_old.size());
  for (VertexId v = 0; v < p.new_to_old.size(); ++v) inv[p.new_to_old[v]] = v;
  return inv;
}

}  // namespace ubigraph::test
