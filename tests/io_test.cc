#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/random.h"
#include "gen/generators.h"
#include "io/binary_io.h"
#include "io/csv_io.h"
#include "io/edge_list_io.h"
#include "io/gml_io.h"
#include "io/graphml_io.h"
#include "io/json_io.h"
#include "io/mmio.h"

#include "graph/csr_graph.h"

namespace ubigraph::io {
namespace {

EdgeList SampleEdges() {
  EdgeList el(5);
  el.Add(0, 1, 2.5);
  el.Add(1, 2);
  el.Add(4, 0, -1.25);
  return el;
}

void ExpectSameEdges(const EdgeList& a, const EdgeList& b) {
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EdgeList sa = a, sb = b;
  sa.Sort();
  sb.Sort();
  for (size_t i = 0; i < sa.edges().size(); ++i) {
    EXPECT_EQ(sa.edges()[i].src, sb.edges()[i].src);
    EXPECT_EQ(sa.edges()[i].dst, sb.edges()[i].dst);
    EXPECT_DOUBLE_EQ(sa.edges()[i].weight, sb.edges()[i].weight);
  }
}

// ------------------------------------------------------------ edge list ---

TEST(EdgeListIoTest, RoundTrip) {
  EdgeList el = SampleEdges();
  auto parsed = ParseEdgeListText(WriteEdgeListText(el));
  ASSERT_TRUE(parsed.ok());
  ExpectSameEdges(el, *parsed);
}

TEST(EdgeListIoTest, CommentsAndBlanksIgnored) {
  auto parsed = ParseEdgeListText("# header\n\n0 1\n   \n2 3 4.5\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_edges(), 2u);
  EXPECT_DOUBLE_EQ(parsed->edges()[1].weight, 4.5);
}

TEST(EdgeListIoTest, MalformedLinesRejected) {
  EXPECT_FALSE(ParseEdgeListText("0\n").ok());
  EXPECT_FALSE(ParseEdgeListText("0 1 2 3\n").ok());
  EXPECT_FALSE(ParseEdgeListText("a b\n").ok());
  EXPECT_FALSE(ParseEdgeListText("-1 2\n").ok());
  EXPECT_FALSE(ParseEdgeListText("0 1 notaweight\n").ok());
}

TEST(EdgeListIoTest, FileRoundTrip) {
  std::string path = std::filesystem::temp_directory_path() / "ug_el_test.txt";
  EdgeList el = SampleEdges();
  ASSERT_TRUE(WriteEdgeListFile(el, path).ok());
  auto back = ReadEdgeListFile(path);
  ASSERT_TRUE(back.ok());
  ExpectSameEdges(el, *back);
  std::remove(path.c_str());
}

TEST(EdgeListIoTest, MissingFileIsIOError) {
  EXPECT_TRUE(ReadEdgeListFile("/nonexistent/nope.txt").status().IsIOError());
}

// ------------------------------------------------------------------- CSV ---

TEST(CsvIoTest, RoundTrip) {
  EdgeList el = SampleEdges();
  auto parsed = ParseCsvEdges(WriteCsvEdges(el));
  ASSERT_TRUE(parsed.ok());
  ExpectSameEdges(el, *parsed);
}

TEST(CsvIoTest, QuotedFieldsAndCrLf) {
  auto parsed = ParseCsvEdges("source,target,weight\r\n\"0\",1,2.0\r\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_edges(), 1u);
  EXPECT_DOUBLE_EQ(parsed->edges()[0].weight, 2.0);
}

TEST(CsvIoTest, CustomColumnNamesAndSeparator) {
  CsvOptions opts;
  opts.source_column = "from";
  opts.target_column = "to";
  opts.separator = ';';
  auto parsed = ParseCsvEdges("from;to\n3;4\n", opts);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->edges()[0].src, 3u);
}

TEST(CsvIoTest, MissingColumnsRejected) {
  EXPECT_FALSE(ParseCsvEdges("a,b\n1,2\n").ok());
  EXPECT_FALSE(ParseCsvEdges("").ok());
}

TEST(CsvIoTest, MissingWeightDefaultsToOne) {
  auto parsed = ParseCsvEdges("source,target\n0,1\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->edges()[0].weight, 1.0);
}

TEST(CsvRecordTest, QuoteHandling) {
  auto fields = SplitCsvRecord("a,\"b,c\",\"d\"\"e\"", ',').ValueOrDie();
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "b,c");
  EXPECT_EQ(fields[2], "d\"e");
  EXPECT_FALSE(SplitCsvRecord("\"unterminated", ',').ok());
}

// --------------------------------------------------------------- GraphML ---

TEST(GraphMlTest, RoundTrip) {
  EdgeList el = SampleEdges();
  auto parsed = ParseGraphMl(WriteGraphMl(el, /*directed=*/true));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->directed);
  ExpectSameEdges(el, parsed->edges);
}

TEST(GraphMlTest, UndirectedFlagParsed) {
  auto parsed = ParseGraphMl(WriteGraphMl(SampleEdges(), /*directed=*/false));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->directed);
}

TEST(GraphMlTest, ForeignDocumentWithStringIds) {
  const char* doc = R"(<?xml version="1.0"?>
<graphml><graph edgedefault="directed">
  <node id="alice"/><node id="bob"/>
  <edge source="alice" target="bob"/>
  <edge source="bob" target="alice"/>
</graph></graphml>)";
  auto parsed = ParseGraphMl(doc);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->edges.num_vertices(), 2u);
  EXPECT_EQ(parsed->edges.num_edges(), 2u);
}

TEST(GraphMlTest, MalformedRejected) {
  EXPECT_FALSE(ParseGraphMl("<graphml></graphml>").ok());  // no <graph>
  EXPECT_FALSE(
      ParseGraphMl("<graphml><graph><node/></graph></graphml>").ok());
  EXPECT_FALSE(
      ParseGraphMl("<graphml><graph><edge source=\"a\"/></graph></graphml>")
          .ok());
}

// ------------------------------------------------------------------- GML ---

TEST(GmlTest, RoundTrip) {
  EdgeList el = SampleEdges();
  auto parsed = ParseGml(WriteGml(el, /*directed=*/true));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->directed);
  ExpectSameEdges(el, parsed->edges);
}

TEST(GmlTest, HandlesCommentsLabelsAndNesting) {
  const char* doc = R"(
# a comment
graph [
  directed 0
  node [ id 10 label "ten" graphics [ x 1 y 2 ] ]
  node [ id 20 ]
  edge [ source 10 target 20 value 3.5 ]
]
)";
  auto parsed = ParseGml(doc);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->directed);
  EXPECT_EQ(parsed->edges.num_vertices(), 2u);
  ASSERT_EQ(parsed->edges.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(parsed->edges.edges()[0].weight, 3.5);
}

TEST(GmlTest, MalformedRejected) {
  EXPECT_FALSE(ParseGml("nothing here").ok());
  EXPECT_FALSE(ParseGml("graph [ node [ ] ]").ok());            // node sans id
  EXPECT_FALSE(ParseGml("graph [ edge [ source 1 ] ]").ok());   // no target
  EXPECT_FALSE(ParseGml("graph [ node [ id 1 ]").ok());         // unterminated
}

// ------------------------------------------------------------------ JSON ---

TEST(JsonIoTest, RoundTrip) {
  EdgeList el = SampleEdges();
  auto parsed = ParseJsonGraph(WriteJsonGraph(el, /*directed=*/true));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->directed);
  ExpectSameEdges(el, parsed->edges);
}

TEST(JsonIoTest, NodeLinkWithStringIds) {
  const char* doc = R"({
    "directed": false,
    "nodes": [{"id": "a"}, {"id": "b"}, {"id": "c"}],
    "links": [{"source": "a", "target": "c", "weight": 2}]
  })";
  auto parsed = ParseJsonGraph(doc);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->directed);
  EXPECT_EQ(parsed->edges.num_vertices(), 3u);
  EXPECT_DOUBLE_EQ(parsed->edges.edges()[0].weight, 2.0);
}

TEST(JsonIoTest, AcceptsEdgesKeyAlias) {
  const char* doc =
      R"({"nodes": [{"id": 0}, {"id": 1}], "edges": [{"source": 0, "target": 1}]})";
  auto parsed = ParseJsonGraph(doc);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->edges.num_edges(), 1u);
}

TEST(JsonIoTest, MalformedRejected) {
  EXPECT_FALSE(ParseJsonGraph("[1,2]").ok());  // not an object
  EXPECT_FALSE(ParseJsonGraph("{").ok());
  EXPECT_FALSE(ParseJsonGraph(R"({"links": [{"source": 0}]})").ok());
  EXPECT_FALSE(ParseJsonGraph(R"({"nodes": [{"noid": 1}]})").ok());
}

TEST(JsonIoTest, EscapesInStrings) {
  const char* doc =
      R"({"nodes": [{"id": "a\nb"}, {"id": "c"}], "links": [{"source": "a\nb", "target": "c"}]})";
  auto parsed = ParseJsonGraph(doc);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->edges.num_edges(), 1u);
}

// ---------------------------------------------------------------- binary ---

TEST(BinaryIoTest, RoundTripWeighted) {
  EdgeList el = SampleEdges();
  auto parsed = ParseBinaryGraph(WriteBinaryGraph(el));
  ASSERT_TRUE(parsed.ok());
  ExpectSameEdges(el, *parsed);
}

TEST(BinaryIoTest, UnitWeightsElided) {
  EdgeList el(3);
  el.Add(0, 1);
  el.Add(1, 2);
  std::string weighted = WriteBinaryGraph(SampleEdges());
  std::string unit = WriteBinaryGraph(el);
  // Two-edge unit-weight file must be much smaller than 3-edge weighted one.
  EXPECT_LT(unit.size(), weighted.size());
  auto parsed = ParseBinaryGraph(unit);
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->edges()[0].weight, 1.0);
}

TEST(BinaryIoTest, CorruptionDetected) {
  std::string data = WriteBinaryGraph(SampleEdges());
  data[data.size() / 2] ^= 0xFF;
  auto parsed = ParseBinaryGraph(data);
  EXPECT_TRUE(parsed.status().IsCorruption());
}

TEST(BinaryIoTest, BadMagicAndTruncation) {
  std::string data = WriteBinaryGraph(SampleEdges());
  std::string bad_magic = data;
  bad_magic[0] = 'X';
  EXPECT_TRUE(ParseBinaryGraph(bad_magic).status().IsCorruption());
  EXPECT_TRUE(ParseBinaryGraph("short").status().IsCorruption());
  std::string truncated = data.substr(0, data.size() - 9);
  EXPECT_FALSE(ParseBinaryGraph(truncated).ok());
}

TEST(BinaryIoTest, FileRoundTrip) {
  std::string path = std::filesystem::temp_directory_path() / "ug_bin_test.ubgf";
  EdgeList el = SampleEdges();
  ASSERT_TRUE(WriteBinaryFile(el, path).ok());
  auto back = ReadBinaryFile(path);
  ASSERT_TRUE(back.ok());
  ExpectSameEdges(el, *back);
  std::remove(path.c_str());
}

// ------------------------------------------------- MatrixMarket / TSV ---

TEST(MmioTest, GoldenFileParses) {
  // Golden document covering the supported grammar in one file: banner,
  // '%' comments interleaved everywhere, and integer values.
  const char* golden =
      "%%MatrixMarket matrix coordinate integer general\n"
      "% GraphChallenge-style adjacency\n"
      "\n"
      "% size follows\n"
      "4 4 3\n"
      "1 2 1\n"
      "% mid-data comment\n"
      "2 3 5\n"
      "4 1 2\n";
  auto el = ParseMatrixMarket(golden).ValueOrDie();
  EXPECT_EQ(el.num_vertices(), 4u);
  ASSERT_EQ(el.num_edges(), 3u);
  EXPECT_EQ(el.edges()[0].src, 0u);
  EXPECT_EQ(el.edges()[0].dst, 1u);
  EXPECT_DOUBLE_EQ(el.edges()[1].weight, 5.0);
  EXPECT_EQ(el.edges()[2].src, 3u);
  EXPECT_EQ(el.edges()[2].dst, 0u);
}

TEST(MmioTest, RoundTrip) {
  EdgeList el = SampleEdges();
  ExpectSameEdges(el, ParseMatrixMarket(WriteMatrixMarket(el)).ValueOrDie());
}

TEST(MmioTest, PatternRoundTripDropsWeights) {
  EdgeList el = SampleEdges();
  auto parsed = ParseMatrixMarket(WriteMatrixMarket(el, /*pattern=*/true))
                    .ValueOrDie();
  ASSERT_EQ(parsed.num_edges(), el.num_edges());
  for (const Edge& e : parsed.edges()) EXPECT_DOUBLE_EQ(e.weight, 1.0);
}

TEST(MmioTest, SymmetricMirrorsOffDiagonal) {
  const char* doc =
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 1.5\n"
      "3 3 2.0\n";
  auto el = ParseMatrixMarket(doc).ValueOrDie();
  // Off-diagonal entry mirrored, diagonal (self-loop) stored once.
  ASSERT_EQ(el.num_edges(), 3u);
  EXPECT_EQ(el.edges()[0].src, 1u);
  EXPECT_EQ(el.edges()[0].dst, 0u);
  EXPECT_EQ(el.edges()[1].src, 0u);
  EXPECT_EQ(el.edges()[1].dst, 1u);
  EXPECT_EQ(el.edges()[2].src, el.edges()[2].dst);
}

TEST(MmioTest, RectangularBecomesBipartite) {
  const char* doc =
      "%%MatrixMarket matrix coordinate real general\n"
      "2 3 2\n"
      "1 1 1.0\n"
      "2 3 1.0\n";
  auto el = ParseMatrixMarket(doc).ValueOrDie();
  EXPECT_EQ(el.num_vertices(), 5u);  // 2 row vertices + 3 column vertices
  ASSERT_EQ(el.num_edges(), 2u);
  EXPECT_EQ(el.edges()[0].dst, 2u);  // column 1 -> vertex rows + 0
  EXPECT_EQ(el.edges()[1].src, 1u);
  EXPECT_EQ(el.edges()[1].dst, 4u);
}

TEST(MmioTest, HostileDocumentsRejectedCleanly) {
  const char* kBad[] = {
      "",                                                  // empty
      "%%MatrixMarket matrix array real general\n1 1 1\n", // unsupported kind
      "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 2\n",
      "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
      "%%MatrixMarket matrix coordinate real symmetric\n2 3 1\n1 1 1\n",
      "%%MatrixMarket matrix coordinate real general\n% only comments\n",
      "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n",  // short
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1\n2 2 1\n",
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",  // range
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n",  // 0-based
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",    // no val
      "%%MatrixMarket matrix coordinate real general\n-2 2 1\n",
      "not a matrix market file\n",
  };
  for (const char* doc : kBad) {
    auto result = ParseMatrixMarket(doc);
    EXPECT_FALSE(result.ok()) << "accepted: " << doc;
    EXPECT_FALSE(result.status().message().empty());
  }
}

TEST(MmioTest, DuplicateEntriesSurviveToCsrDedup) {
  // MMIO files from the wild sometimes repeat entries; the parser keeps
  // them (its job is faithful triples) and CsrOptions.deduplicate collapses
  // them downstream.
  const char* doc =
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 3\n"
      "1 2 1.0\n"
      "1 2 1.0\n"
      "2 3 1.0\n";
  auto el = ParseMatrixMarket(doc).ValueOrDie();
  EXPECT_EQ(el.num_edges(), 3u);
  CsrOptions opts;
  opts.deduplicate = true;
  auto g = CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(MmioTest, FileRoundTrip) {
  EdgeList el = SampleEdges();
  std::string path =
      (std::filesystem::temp_directory_path() / "ubigraph_mmio_test.mtx")
          .string();
  ASSERT_TRUE(WriteMatrixMarketFile(el, path).ok());
  auto back = ReadMatrixMarketFile(path);
  std::remove(path.c_str());
  ExpectSameEdges(el, back.ValueOrDie());
}

TEST(TsvTriplesTest, RoundTrip) {
  EdgeList el = SampleEdges();
  ExpectSameEdges(el, ParseTsvTriples(WriteTsvTriples(el)).ValueOrDie());
}

TEST(TsvTriplesTest, HostileLinesRejected) {
  EXPECT_FALSE(ParseTsvTriples("1\t2\n").ok());          // missing weight
  EXPECT_FALSE(ParseTsvTriples("0\t2\t1.0\n").ok());     // ids are 1-based
  EXPECT_FALSE(ParseTsvTriples("1\tx\t1.0\n").ok());     // non-numeric id
  EXPECT_FALSE(ParseTsvTriples("1\t2\t1.0\t9\n").ok());  // extra field
  EXPECT_TRUE(ParseTsvTriples("").ValueOrDie().edges().empty());
}

// -------------------------------------------------- cross-format property ---

class FormatRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FormatRoundTripTest, AllFormatsPreserveRandomGraphs) {
  Rng rng(GetParam());
  auto el = gen::ErdosRenyi(30, 120, &rng).ValueOrDie();
  ExpectSameEdges(el, ParseEdgeListText(WriteEdgeListText(el)).ValueOrDie());
  ExpectSameEdges(el, ParseCsvEdges(WriteCsvEdges(el)).ValueOrDie());
  ExpectSameEdges(el, ParseGraphMl(WriteGraphMl(el)).ValueOrDie().edges);
  ExpectSameEdges(el, ParseGml(WriteGml(el)).ValueOrDie().edges);
  ExpectSameEdges(el, ParseJsonGraph(WriteJsonGraph(el)).ValueOrDie().edges);
  ExpectSameEdges(el, ParseBinaryGraph(WriteBinaryGraph(el)).ValueOrDie());
  ExpectSameEdges(el, ParseMatrixMarket(WriteMatrixMarket(el)).ValueOrDie());
  ExpectSameEdges(el, ParseTsvTriples(WriteTsvTriples(el)).ValueOrDie());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormatRoundTripTest,
                         ::testing::Values(101, 102, 103, 104));

}  // namespace
}  // namespace ubigraph::io
