#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "gen/generators.h"
#include "ml/influence_max.h"
#include "ml/link_prediction.h"

namespace ubigraph::ml {
namespace {

CsrGraph Undirected(EdgeList el) {
  CsrOptions opts;
  opts.directed = false;
  return CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
}

TEST(LinkScoreTest, CommonNeighborsKnownValues) {
  // 0 and 1 share neighbors {2, 3}.
  auto g = CsrGraph::FromPairs(5, {{0, 2}, {0, 3}, {1, 2}, {1, 3}, {1, 4}})
               .ValueOrDie();
  EXPECT_DOUBLE_EQ(ScoreLink(g, 0, 1, LinkScore::kCommonNeighbors), 2.0);
  EXPECT_NEAR(ScoreLink(g, 0, 1, LinkScore::kJaccard), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(ScoreLink(g, 0, 1, LinkScore::kPreferentialAttachment), 6.0);
}

TEST(LinkScoreTest, AdamicAdarWeightsRareNeighborsHigher) {
  // Common neighbor 2 has degree 2; common neighbor 3 has degree 4.
  auto g = CsrGraph::FromPairs(
               6, {{0, 2}, {1, 2}, {0, 3}, {1, 3}, {4, 3}, {5, 3}})
               .ValueOrDie();
  double aa = ScoreLink(g, 0, 1, LinkScore::kAdamicAdar);
  EXPECT_NEAR(aa, 1.0 / std::log(2.0) + 1.0 / std::log(4.0), 1e-12);
  double ra = ScoreLink(g, 0, 1, LinkScore::kResourceAllocation);
  EXPECT_NEAR(ra, 1.0 / 2.0 + 1.0 / 4.0, 1e-12);
}

TEST(LinkScoreTest, NoCommonNeighborsZero) {
  auto g = CsrGraph::FromPairs(4, {{0, 2}, {1, 3}}).ValueOrDie();
  EXPECT_DOUBLE_EQ(ScoreLink(g, 0, 1, LinkScore::kCommonNeighbors), 0.0);
  EXPECT_DOUBLE_EQ(ScoreLink(g, 0, 1, LinkScore::kJaccard), 0.0);
}

TEST(KatzTest, DirectPathDominatesWhenBetaSmall) {
  // 0-1 direct edge, plus longer path 0-2-3-1.
  auto g = Undirected([] {
    EdgeList el(4);
    el.Add(0, 1);
    el.Add(0, 2);
    el.Add(2, 3);
    el.Add(3, 1);
    return el;
  }());
  double beta = 0.01;
  double katz = KatzIndex(g, 0, 1, beta, 4);
  // Length-1 contribution beta; length-3 path contributes beta^3.
  EXPECT_GT(katz, beta * 0.99);
  EXPECT_LT(katz, beta * 1.2);
}

TEST(KatzTest, CountsWalksNotJustPaths) {
  // Single edge 0-1: walks of length 1 and 3 (0-1-0-1) exist.
  auto g = Undirected([] {
    EdgeList el(2);
    el.Add(0, 1);
    return el;
  }());
  double beta = 0.5;
  double katz = KatzIndex(g, 0, 1, beta, 3);
  EXPECT_NEAR(katz, beta + beta * beta * beta, 1e-12);
}

TEST(TopKPredictedLinksTest, RanksTrianglesFirst) {
  // Path 0-1-2 plus 2-3: pair (0,2) has 1 common neighbor, (1,3) has 1,
  // (0,3) has none within 2 hops.
  auto g = Undirected(gen::Path(4));
  auto preds = TopKPredictedLinks(g, 10, LinkScore::kCommonNeighbors);
  ASSERT_EQ(preds.size(), 2u);
  for (const PredictedLink& p : preds) {
    EXPECT_FALSE(g.HasEdge(p.u, p.v));
    EXPECT_DOUBLE_EQ(p.score, 1.0);
  }
}

TEST(TopKPredictedLinksTest, ExcludesExistingEdges) {
  auto g = Undirected(gen::Complete(5));
  EXPECT_TRUE(TopKPredictedLinks(g, 10, LinkScore::kCommonNeighbors).empty());
}

TEST(TopKPredictedLinksTest, LimitsToK) {
  Rng rng(3);
  auto g = Undirected(gen::BarabasiAlbert(40, 2, &rng).ValueOrDie());
  auto preds = TopKPredictedLinks(g, 5, LinkScore::kAdamicAdar);
  EXPECT_LE(preds.size(), 5u);
  for (size_t i = 1; i < preds.size(); ++i) {
    EXPECT_GE(preds[i - 1].score, preds[i].score);
  }
}

TEST(AucTest, RecoversRemovedEdgesAboveChance) {
  // Build a strong-community graph, hide some intra-community edges, and
  // verify neighborhood scores rank them above random non-edges.
  Rng rng(7);
  auto el = gen::PlantedPartition(60, 3, 0.6, 0.02, &rng).ValueOrDie();
  std::vector<std::pair<VertexId, VertexId>> held_out;
  EdgeList kept(60);
  int skip = 0;
  for (const Edge& e : el.edges()) {
    if (e.src / 20 == e.dst / 20 && ++skip % 7 == 0) {
      held_out.emplace_back(e.src, e.dst);
    } else {
      kept.Add(e.src, e.dst);
    }
  }
  kept.EnsureVertices(60);
  auto g = Undirected(std::move(kept));
  auto auc = LinkPredictionAuc(g, held_out, LinkScore::kCommonNeighbors, 2000, 5);
  ASSERT_TRUE(auc.ok());
  EXPECT_GT(*auc, 0.8);
}

TEST(AucTest, InvalidInputsRejected) {
  auto g = Undirected(gen::Path(4));
  EXPECT_FALSE(LinkPredictionAuc(g, {}, LinkScore::kJaccard, 10, 1).ok());
  EXPECT_FALSE(
      LinkPredictionAuc(g, {{0, 99}}, LinkScore::kJaccard, 10, 1).ok());
  EXPECT_FALSE(LinkPredictionAuc(g, {{0, 2}}, LinkScore::kJaccard, 0, 1).ok());
}

// ---------------------------------------------------------------- influence --

TEST(SpreadTest, SeedAloneWhenProbabilityTiny) {
  auto g = CsrGraph::FromEdges(gen::Star(10)).ValueOrDie();
  InfluenceOptions opts;
  opts.probability = 1e-9;
  opts.num_simulations = 50;
  EXPECT_NEAR(EstimateSpread(g, {0}, opts), 1.0, 0.01);
}

TEST(SpreadTest, FullCascadeWhenProbabilityOne) {
  auto g = CsrGraph::FromEdges(gen::Path(6)).ValueOrDie();
  InfluenceOptions opts;
  opts.probability = 1.0;
  opts.num_simulations = 10;
  EXPECT_DOUBLE_EQ(EstimateSpread(g, {0}, opts), 6.0);
  EXPECT_DOUBLE_EQ(EstimateSpread(g, {3}, opts), 3.0);  // 3,4,5
}

TEST(SpreadTest, MonotoneInSeedSet) {
  Rng rng(9);
  auto g = Undirected(gen::BarabasiAlbert(50, 2, &rng).ValueOrDie());
  InfluenceOptions opts;
  opts.num_simulations = 300;
  double one = EstimateSpread(g, {0}, opts);
  double two = EstimateSpread(g, {0, 25}, opts);
  EXPECT_GE(two, one - 0.5);  // allow MC noise
}

TEST(GreedyInfluenceTest, PicksHubOnStar) {
  auto g = CsrGraph::FromEdges(gen::Star(12)).ValueOrDie();
  InfluenceOptions opts;
  opts.probability = 0.5;
  opts.num_simulations = 100;
  auto r = GreedyInfluenceMaximization(g, 1, opts).ValueOrDie();
  ASSERT_EQ(r.seeds.size(), 1u);
  EXPECT_EQ(r.seeds[0], 0u);  // the hub
  EXPECT_GT(r.expected_spread, 1.0);
}

TEST(CelfTest, MatchesGreedySpreadOnSmallGraph) {
  Rng rng(15);
  auto g = Undirected(gen::BarabasiAlbert(30, 2, &rng).ValueOrDie());
  InfluenceOptions opts;
  opts.num_simulations = 150;
  opts.probability = 0.2;
  auto greedy = GreedyInfluenceMaximization(g, 3, opts).ValueOrDie();
  auto celf = CelfInfluenceMaximization(g, 3, opts).ValueOrDie();
  EXPECT_EQ(celf.seeds.size(), 3u);
  // CELF must not be materially worse (identical up to MC noise).
  EXPECT_NEAR(celf.expected_spread, greedy.expected_spread,
              0.2 * greedy.expected_spread + 1.0);
  // CELF's whole point: far fewer spread evaluations after the first pass.
  EXPECT_LT(celf.spread_evaluations, greedy.spread_evaluations);
}

TEST(InfluenceTest, InvalidOptionsRejected) {
  auto g = CsrGraph::FromEdges(gen::Path(5)).ValueOrDie();
  InfluenceOptions bad;
  bad.probability = 0.0;
  EXPECT_FALSE(GreedyInfluenceMaximization(g, 1, bad).ok());
  EXPECT_FALSE(GreedyInfluenceMaximization(g, 0).ok());
  EXPECT_FALSE(CelfInfluenceMaximization(g, 99).ok());
}

TEST(TopDegreeSeedsTest, OrderedByDegree) {
  auto g = CsrGraph::FromEdges(gen::Star(6)).ValueOrDie();
  auto seeds = TopDegreeSeeds(g, 3);
  ASSERT_EQ(seeds.size(), 3u);
  EXPECT_EQ(seeds[0], 0u);
}

}  // namespace
}  // namespace ubigraph::ml
