#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "algorithms/centrality.h"
#include "algorithms/pagerank.h"
#include "common/random.h"
#include "gen/generators.h"

namespace ubigraph::algo {
namespace {

CsrGraph DirectedWithInEdges(EdgeList el) {
  CsrOptions opts;
  opts.build_in_edges = true;
  return CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
}

TEST(PageRankTest, SumsToOne) {
  Rng rng(1);
  auto el = gen::ErdosRenyi(50, 250, &rng).ValueOrDie();
  auto pr = PageRank(DirectedWithInEdges(std::move(el)));
  ASSERT_TRUE(pr.ok());
  double sum = std::accumulate(pr->scores.begin(), pr->scores.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_TRUE(pr->converged);
}

TEST(PageRankTest, UniformOnCycle) {
  auto pr = PageRank(DirectedWithInEdges(gen::Cycle(8))).ValueOrDie();
  for (double s : pr.scores) EXPECT_NEAR(s, 1.0 / 8, 1e-9);
}

TEST(PageRankTest, HubOfStarScoresHighest) {
  // Star with edges leaf -> hub.
  EdgeList el(5);
  for (VertexId leaf = 1; leaf <= 4; ++leaf) el.Add(leaf, 0);
  auto pr = PageRank(DirectedWithInEdges(std::move(el))).ValueOrDie();
  for (VertexId leaf = 1; leaf <= 4; ++leaf) {
    EXPECT_GT(pr.scores[0], pr.scores[leaf]);
  }
}

TEST(PageRankTest, DanglingMassConserved) {
  // 0 -> 1, 1 is dangling.
  auto pr = PageRank(DirectedWithInEdges(gen::Path(2))).ValueOrDie();
  EXPECT_NEAR(pr.scores[0] + pr.scores[1], 1.0, 1e-9);
  EXPECT_GT(pr.scores[1], pr.scores[0]);  // 1 receives from 0 and teleports
}

TEST(PageRankTest, PersonalizationBiasesScores) {
  PageRankOptions opts;
  opts.personalization.assign(6, 0.0);
  opts.personalization[3] = 1.0;
  CsrOptions copts;
  copts.directed = false;
  auto g = CsrGraph::FromEdges(gen::Cycle(6), copts).ValueOrDie();
  auto pr = PageRank(g, opts).ValueOrDie();
  for (VertexId v = 0; v < 6; ++v) {
    if (v != 3) {
      EXPECT_GT(pr.scores[3], pr.scores[v]);
    }
  }
}

TEST(PageRankTest, InvalidArgumentsRejected) {
  auto g = DirectedWithInEdges(gen::Path(3));
  PageRankOptions bad_damping;
  bad_damping.damping = 1.5;
  EXPECT_FALSE(PageRank(g, bad_damping).ok());
  PageRankOptions bad_pers;
  bad_pers.personalization = {1.0};  // wrong size
  EXPECT_FALSE(PageRank(g, bad_pers).ok());
  auto empty = CsrGraph::FromEdges(EdgeList{}).ValueOrDie();
  EXPECT_FALSE(PageRank(empty).ok());
}

TEST(PageRankTest, DirectedWithoutInEdgesFallsBackToPush) {
  auto g = CsrGraph::FromEdges(gen::Path(3)).ValueOrDie();
  // kAuto degrades to push mode (no in-edge index needed)...
  auto pr = PageRank(g).ValueOrDie();
  EXPECT_EQ(pr.mode, PageRankMode::kPush);
  // ...but explicitly requested pull/delta modes fail with a clear Status.
  PageRankOptions opts;
  opts.mode = PageRankMode::kPull;
  EXPECT_FALSE(PageRank(g, opts).ok());
  opts.mode = PageRankMode::kDelta;
  EXPECT_FALSE(PageRank(g, opts).ok());
}

TEST(PageRankTest, MatchesPowerIterationOracle) {
  // 4-vertex graph solved against an independent dense-matrix iteration.
  EdgeList el(4);
  el.Add(0, 1);
  el.Add(0, 2);
  el.Add(1, 2);
  el.Add(2, 0);
  el.Add(3, 2);
  auto g = DirectedWithInEdges(std::move(el));
  auto pr = PageRank(g).ValueOrDie();

  const double d = 0.85;
  std::vector<double> x(4, 0.25), next(4);
  for (int iter = 0; iter < 200; ++iter) {
    double dangling = 0.0;  // no dangling vertices here except none
    for (int v = 0; v < 4; ++v) {
      double in = 0.0;
      if (v == 0) in += x[2] / 1.0;
      if (v == 1) in += x[0] / 2.0;
      if (v == 2) in += x[0] / 2.0 + x[1] / 1.0 + x[3] / 1.0;
      next[v] = (1 - d) / 4 + d * (in + dangling / 4);
    }
    x = next;
  }
  for (int v = 0; v < 4; ++v) EXPECT_NEAR(pr.scores[v], x[v], 1e-6);
}

TEST(TopKTest, OrderAndTies) {
  std::vector<double> scores{0.1, 0.5, 0.5, 0.3};
  auto top = TopK(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);  // tie broken by id
  EXPECT_EQ(top[1], 2u);
  EXPECT_EQ(top[2], 3u);
  EXPECT_EQ(TopK(scores, 99).size(), 4u);
}

TEST(BetweennessTest, PathCenterHasHighestScore) {
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromEdges(gen::Path(5), opts).ValueOrDie();
  auto bc = BetweennessCentrality(g);
  // Path 0-1-2-3-4: center vertex 2 carries the most pairs.
  EXPECT_GT(bc[2], bc[1]);
  EXPECT_GT(bc[1], bc[0]);
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  // Known value: vertex 2 lies on 0-3,0-4,1-3,1-4 paths = 4 pairs.
  EXPECT_DOUBLE_EQ(bc[2], 4.0);
}

TEST(BetweennessTest, StarHubTakesAll) {
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromEdges(gen::Star(4), opts).ValueOrDie();
  auto bc = BetweennessCentrality(g);
  // Hub mediates all C(4,2) = 6 leaf pairs.
  EXPECT_DOUBLE_EQ(bc[0], 6.0);
  for (VertexId leaf = 1; leaf <= 4; ++leaf) EXPECT_DOUBLE_EQ(bc[leaf], 0.0);
}

TEST(BetweennessTest, SplitAcrossEqualPaths) {
  // Square 0-1-2-3-0 (undirected): two shortest paths between opposite
  // corners; each mid vertex gets 0.5 per opposite pair.
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromEdges(gen::Cycle(4), opts).ValueOrDie();
  auto bc = BetweennessCentrality(g);
  for (VertexId v = 0; v < 4; ++v) EXPECT_DOUBLE_EQ(bc[v], 0.5);
}

TEST(BetweennessTest, ApproxConvergesToExact) {
  Rng rng(6);
  auto el = gen::BarabasiAlbert(40, 2, &rng).ValueOrDie();
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
  auto exact = BetweennessCentrality(g);
  Rng srng(7);
  auto approx = ApproxBetweennessCentrality(g, 40, &srng);  // all pivots
  // With num_samples == n (with replacement) expect high rank correlation;
  // check the top-1 vertex matches.
  auto top_exact = TopK(exact, 1)[0];
  auto top_approx = TopK(approx, 1)[0];
  EXPECT_EQ(top_exact, top_approx);
}

TEST(ClosenessTest, CenterOfPathIsClosest) {
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromEdges(gen::Path(5), opts).ValueOrDie();
  auto cc = ClosenessCentrality(g);
  EXPECT_GT(cc[2], cc[0]);
  EXPECT_GT(cc[2], cc[4]);
  // Exact: vertex 2 distances = 2+1+1+2 = 6 -> 4/6.
  EXPECT_NEAR(cc[2], 4.0 / 6.0, 1e-12);
}

TEST(ClosenessTest, DisconnectedHandled) {
  auto g = CsrGraph::FromPairs(4, {{0, 1}, {1, 0}}).ValueOrDie();
  auto cc = ClosenessCentrality(g);
  EXPECT_GT(cc[0], 0.0);
  EXPECT_DOUBLE_EQ(cc[2], 0.0);  // isolated
}

TEST(HarmonicTest, CompleteGraphAllEqual) {
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromEdges(gen::Complete(5), opts).ValueOrDie();
  auto hc = HarmonicCloseness(g);
  for (double h : hc) EXPECT_DOUBLE_EQ(h, 4.0);
}

TEST(HarmonicTest, UnreachableContributesZero) {
  auto g = CsrGraph::FromPairs(3, {{0, 1}}).ValueOrDie();
  auto hc = HarmonicCloseness(g);
  EXPECT_DOUBLE_EQ(hc[0], 1.0);
  EXPECT_DOUBLE_EQ(hc[1], 0.0);
}

TEST(DegreeCentralityTest, NormalizedByNMinus1) {
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromEdges(gen::Star(4), opts).ValueOrDie();
  auto dc = DegreeCentrality(g);
  EXPECT_DOUBLE_EQ(dc[0], 1.0);
  EXPECT_DOUBLE_EQ(dc[1], 0.25);
}

}  // namespace
}  // namespace ubigraph::algo
