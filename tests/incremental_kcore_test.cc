// Incremental k-core maintenance vs. the batch decomposition oracle.
#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/kcore.h"
#include "algorithms/pagerank.h"
#include "common/random.h"
#include "gen/generators.h"
#include "stream/incremental_kcore.h"

namespace ubigraph::stream {
namespace {

std::vector<uint32_t> BatchCores(const IncrementalKCore& inc) {
  auto g = CsrGraph::FromEdges(inc.Snapshot()).ValueOrDie();
  auto cores = algo::CoreDecomposition(g);
  cores.resize(inc.num_vertices(), 0);  // snapshot may have fewer vertices
  return cores;
}

TEST(IncrementalKCoreTest, TrianglePlusPendant) {
  IncrementalKCore inc(4);
  ASSERT_TRUE(inc.InsertEdge(0, 1).ok());
  ASSERT_TRUE(inc.InsertEdge(1, 2).ok());
  EXPECT_EQ(inc.CoreNumber(1), 1u);
  ASSERT_TRUE(inc.InsertEdge(2, 0).ok());  // closes the triangle
  EXPECT_EQ(inc.CoreNumber(0), 2u);
  EXPECT_EQ(inc.CoreNumber(1), 2u);
  EXPECT_EQ(inc.CoreNumber(2), 2u);
  ASSERT_TRUE(inc.InsertEdge(0, 3).ok());  // pendant
  EXPECT_EQ(inc.CoreNumber(3), 1u);
  EXPECT_EQ(inc.CoreNumber(0), 2u);
  EXPECT_EQ(inc.Degeneracy(), 2u);
}

TEST(IncrementalKCoreTest, RejectsBadEdges) {
  IncrementalKCore inc(3);
  EXPECT_TRUE(inc.InsertEdge(0, 0).IsInvalid());
  EXPECT_TRUE(inc.InsertEdge(0, 9).IsOutOfRange());
  ASSERT_TRUE(inc.InsertEdge(0, 1).ok());
  EXPECT_TRUE(inc.InsertEdge(1, 0).IsAlreadyExists());
  EXPECT_TRUE(inc.RemoveEdge(1, 2).IsNotFound());
}

TEST(IncrementalKCoreTest, GrowingCliqueTracksExactly) {
  IncrementalKCore inc(8);
  for (VertexId u = 0; u < 8; ++u) {
    for (VertexId v = u + 1; v < 8; ++v) {
      ASSERT_TRUE(inc.InsertEdge(u, v).ok());
      EXPECT_EQ(inc.core_numbers(), BatchCores(inc))
          << "after inserting (" << u << "," << v << ")";
    }
  }
  EXPECT_EQ(inc.Degeneracy(), 7u);
  EXPECT_EQ(inc.full_rebuilds(), 0u);  // insert-only path never rebuilds
}

class IncrementalKCoreRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalKCoreRandomTest, MatchesBatchAfterEveryInsertion) {
  Rng rng(GetParam());
  IncrementalKCore inc(40);
  int inserted = 0;
  while (inserted < 250) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(40));
    VertexId v = static_cast<VertexId>(rng.NextBounded(40));
    if (u == v) continue;
    Status s = inc.InsertEdge(u, v);
    if (s.IsAlreadyExists()) continue;
    ASSERT_TRUE(s.ok());
    ++inserted;
    if (inserted % 10 == 0) {
      ASSERT_EQ(inc.core_numbers(), BatchCores(inc))
          << "seed=" << GetParam() << " after " << inserted << " insertions";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalKCoreRandomTest,
                         ::testing::Values(301, 302, 303, 304, 305, 306));

TEST(IncrementalKCoreTest, DeletionsRepairLocallyByDefault) {
  Rng rng(9);
  IncrementalKCore inc(20);
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (int i = 0; i < 80; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(20));
    VertexId v = static_cast<VertexId>(rng.NextBounded(20));
    if (u != v && inc.InsertEdge(u, v).ok()) edges.emplace_back(u, v);
  }
  ASSERT_GE(edges.size(), 10u);
  for (int i = 0; i < 5; ++i) {
    auto [u, v] = edges[static_cast<size_t>(i) * 2];
    ASSERT_TRUE(inc.RemoveEdge(u, v).ok());
    EXPECT_EQ(inc.core_numbers(), BatchCores(inc)) << "after deletion " << i;
  }
  EXPECT_EQ(inc.deletion_repairs(), 5u);
  EXPECT_EQ(inc.full_rebuilds(), 0u);
}

TEST(IncrementalKCoreTest, DeletionsFallBackToRebuildWhenRepairDisabled) {
  Rng rng(9);
  IncrementalKCore inc(20, {.repair_deletions = false});
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (int i = 0; i < 80; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(20));
    VertexId v = static_cast<VertexId>(rng.NextBounded(20));
    if (u != v && inc.InsertEdge(u, v).ok()) edges.emplace_back(u, v);
  }
  ASSERT_GE(edges.size(), 10u);
  for (int i = 0; i < 5; ++i) {
    auto [u, v] = edges[static_cast<size_t>(i) * 2];
    ASSERT_TRUE(inc.RemoveEdge(u, v).ok());
    EXPECT_EQ(inc.core_numbers(), BatchCores(inc)) << "after deletion " << i;
  }
  EXPECT_EQ(inc.full_rebuilds(), 5u);
  EXPECT_EQ(inc.deletion_repairs(), 0u);
}

TEST(IncrementalKCoreTest, MixedWorkloadStaysExact) {
  Rng rng(17);
  IncrementalKCore inc(30);
  std::vector<std::pair<VertexId, VertexId>> live;
  for (int step = 0; step < 300; ++step) {
    bool remove = !live.empty() && rng.NextBool(0.2);
    if (remove) {
      size_t at = rng.NextBounded(live.size());
      auto [u, v] = live[at];
      ASSERT_TRUE(inc.RemoveEdge(u, v).ok());
      live.erase(live.begin() + static_cast<ptrdiff_t>(at));
    } else {
      VertexId u = static_cast<VertexId>(rng.NextBounded(30));
      VertexId v = static_cast<VertexId>(rng.NextBounded(30));
      if (u == v) continue;
      if (inc.InsertEdge(u, v).ok()) live.emplace_back(u, v);
    }
    if (step % 25 == 0) {
      ASSERT_EQ(inc.core_numbers(), BatchCores(inc)) << "step " << step;
    }
  }
}

TEST(HitsSmokeTest, AuthorityOnBipartiteStar) {
  // Many hubs pointing at one authority.
  EdgeList el(6);
  for (VertexId hub = 1; hub <= 5; ++hub) el.Add(hub, 0);
  CsrOptions opts;
  opts.build_in_edges = true;
  auto g = CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
  auto r = algo::Hits(g).ValueOrDie();
  EXPECT_TRUE(r.converged);
  // Vertex 0 is the sole authority; the others are pure hubs.
  EXPECT_NEAR(r.authority[0], 1.0, 1e-6);
  for (VertexId hub = 1; hub <= 5; ++hub) {
    EXPECT_NEAR(r.authority[hub], 0.0, 1e-6);
    EXPECT_NEAR(r.hub[hub], 1.0 / std::sqrt(5.0), 1e-6);
  }
  EXPECT_NEAR(r.hub[0], 0.0, 1e-6);
}

TEST(HitsSmokeTest, RequiresInEdgesAndNonEmpty) {
  auto empty = CsrGraph::FromEdges(EdgeList{}).ValueOrDie();
  EXPECT_FALSE(algo::Hits(empty).ok());
  auto g = CsrGraph::FromEdges(gen::Path(3)).ValueOrDie();
  EXPECT_FALSE(algo::Hits(g).ok());
}

TEST(HitsSmokeTest, ScoresNormalized) {
  Rng rng(5);
  CsrOptions opts;
  opts.build_in_edges = true;
  auto g = CsrGraph::FromEdges(gen::ErdosRenyi(50, 250, &rng).ValueOrDie(), opts)
               .ValueOrDie();
  auto r = algo::Hits(g).ValueOrDie();
  double hub_norm = 0, auth_norm = 0;
  for (VertexId v = 0; v < 50; ++v) {
    hub_norm += r.hub[v] * r.hub[v];
    auth_norm += r.authority[v] * r.authority[v];
  }
  EXPECT_NEAR(hub_norm, 1.0, 1e-9);
  EXPECT_NEAR(auth_norm, 1.0, 1e-9);
}

}  // namespace
}  // namespace ubigraph::stream
