#include <gtest/gtest.h>

#include <set>

#include "survey/goodness_of_fit.h"
#include "survey/paper_data.h"
#include "survey/population.h"
#include "survey/schema.h"
#include "survey/tabulate.h"

namespace ubigraph::survey {
namespace {

const Population& ExactPopulation() {
  static const Population kPop = Population::SynthesizeExact().ValueOrDie();
  return kPop;
}

TEST(PaperDataTest, GroupSizesConsistent) {
  EXPECT_EQ(kResearchers + kPractitioners, kParticipants);
  // Every grouped row: R + P == Total.
  for (const auto* table :
       {&Table2Fields(), &Table3OrgSizes(), &Table4Entities(), &Table5aVertices(),
        &Table5bEdges(), &Table5cBytes(), &Table7aDirectedness(),
        &Table7bMultiplicity(), &Table7cVertexDataTypes(),
        &Table7cEdgeDataTypes(), &Table8Dynamism(), &Table9Computations(),
        &Table10aMlComputations(), &Table10bMlProblems(), &Table11Traversals(),
        &Table12QuerySoftware(), &Table13NonQuerySoftware(),
        &Table14Architectures(), &Table15Challenges()}) {
    for (const CountRow& row : *table) {
      EXPECT_EQ(row.r + row.p, row.total) << row.label;
      EXPECT_LE(row.r, kResearchers) << row.label;
      EXPECT_LE(row.p, kPractitioners) << row.label;
    }
  }
}

TEST(PaperDataTest, SingleSelectTablesFitPopulation) {
  // Mutually exclusive questions cannot exceed the group sizes.
  auto sum_check = [](const std::vector<CountRow>& rows) {
    int total = 0, r = 0, p = 0;
    for (const CountRow& row : rows) {
      total += row.total;
      r += row.r;
      p += row.p;
    }
    EXPECT_LE(total, kParticipants);
    EXPECT_LE(r, kResearchers);
    EXPECT_LE(p, kPractitioners);
  };
  sum_check(Table3OrgSizes());
  sum_check(Table7aDirectedness());
  sum_check(Table7bMultiplicity());
  sum_check(Table11Traversals());
}

TEST(PaperDataTest, DirectednessIsExactlyEveryone) {
  int total = 0;
  for (const CountRow& row : Table7aDirectedness()) total += row.total;
  EXPECT_EQ(total, kParticipants);
}

TEST(PaperDataTest, ProductTableCounts) {
  const auto& products = Products();
  EXPECT_EQ(products.size(), 24u);  // 22 surveyed + Gephi + Graphviz
  int recruited = 0;
  for (const ProductInfo& p : products) {
    if (p.mailing_list_users >= 0) ++recruited;
  }
  EXPECT_EQ(recruited, 22);
  // DGPS group total from Table 1 must be 39.
  int dgps_users = 0;
  for (const ProductInfo& p : products) {
    if (std::string(p.technology) == "Distributed Graph Processing Engine") {
      dgps_users += p.mailing_list_users;
    }
  }
  EXPECT_EQ(dgps_users, 39);
}

TEST(PaperDataTest, Table6SumsToNineteen) {
  int total = 0;
  for (const SimpleRow& row : Table6BillionEdgeOrgSizes()) total += row.count;
  EXPECT_EQ(total, 19);  // one of the 20 didn't report an org size
}

TEST(PaperDataTest, Table19TotalUsefulMessages) {
  int total = 0;
  for (const ChallengeRow& row : Table19MinedChallenges()) total += row.count;
  EXPECT_EQ(total, 221);
}

TEST(QuestionnaireTest, StandardShape) {
  const Questionnaire& q = Questionnaire::Standard();
  // 19 named questions + 6 per-task workload questions + storage formats.
  EXPECT_EQ(q.size(), 26u);
  EXPECT_TRUE(q.Find("edges").ok());
  EXPECT_TRUE(q.Find("challenges").ok());
  EXPECT_TRUE(q.Find("workload_Analytics").ok());
  EXPECT_FALSE(q.Find("nonexistent").ok());
  EXPECT_FALSE(q.InCategory(QuestionCategory::kDemographics).empty());
}

TEST(QuestionnaireTest, ChoiceLabelsMatchPaperData) {
  const Questionnaire& q = Questionnaire::Standard();
  auto edges = q.Find("edges").ValueOrDie();
  ASSERT_EQ(edges->choices.size(), Table5bEdges().size());
  for (size_t i = 0; i < edges->choices.size(); ++i) {
    EXPECT_EQ(edges->choices[i], Table5bEdges()[i].label);
  }
}

TEST(ExactPopulationTest, SynthesisSucceeds) {
  auto pop = Population::SynthesizeExact();
  ASSERT_TRUE(pop.ok()) << pop.status().ToString();
}

TEST(ExactPopulationTest, EveryCellMatchesPaper) {
  EXPECT_TRUE(ExactPopulation().VerifyAgainstPaper().ok());
}

TEST(ExactPopulationTest, SingleChoiceQuestionsAreExclusive) {
  const Population& pop = ExactPopulation();
  for (const char* qid : {"org_size", "directedness", "multiplicity",
                          "traversals", "workload_Analytics", "workload_ETL"}) {
    for (int who = 0; who < kParticipants; ++who) {
      EXPECT_LE(pop.Selections(who, qid).size(), 1u)
          << qid << " respondent " << who;
    }
  }
}

TEST(ExactPopulationTest, Table6JointConstraintHolds) {
  auto derived = DeriveBillionEdgeOrgSizes(ExactPopulation());
  const auto& paper = Table6BillionEdgeOrgSizes();
  ASSERT_EQ(derived.size(), paper.size());
  for (size_t i = 0; i < paper.size(); ++i) {
    EXPECT_STREQ(derived[i].label, paper[i].label);
    EXPECT_EQ(derived[i].count, paper[i].count) << paper[i].label;
  }
}

TEST(ExactPopulationTest, DistributedJointConstraintHolds) {
  EXPECT_EQ(DeriveDistributedWithOver100M(ExactPopulation()),
            kDistributedWithOver100MEdges);
}

TEST(ExactPopulationTest, ResearchersSelectResearchFields) {
  const Population& pop = ExactPopulation();
  // Every researcher picked academia (choice 1) and/or industry lab (3).
  for (int who = 0; who < kResearchers; ++who) {
    EXPECT_TRUE(pop.Selected(who, "fields", 1) || pop.Selected(who, "fields", 3))
        << "respondent " << who;
  }
  // No practitioner did (that's what makes them practitioners).
  for (int who = kResearchers; who < kParticipants; ++who) {
    EXPECT_FALSE(pop.Selected(who, "fields", 1) || pop.Selected(who, "fields", 3));
  }
}

TEST(ExactPopulationTest, NonHumanSubcategoriesImplyNonHuman) {
  const Population& pop = ExactPopulation();
  for (int who = 0; who < kParticipants; ++who) {
    for (int sub = 4; sub <= 10; ++sub) {
      if (pop.Selected(who, "entities", sub)) {
        EXPECT_TRUE(pop.Selected(who, "entities", 3))
            << "respondent " << who << " subcategory " << sub;
      }
    }
  }
}

TEST(ExactPopulationTest, DifferentSeedsStillExact) {
  for (uint64_t seed : {1ULL, 99ULL, 12345ULL}) {
    auto pop = Population::SynthesizeExact(seed);
    ASSERT_TRUE(pop.ok()) << "seed " << seed << ": " << pop.status().ToString();
  }
}

TEST(ExactPopulationTest, WhoSelectedConsistentWithSelected) {
  const Population& pop = ExactPopulation();
  auto who = pop.WhoSelected("edges", 6);
  EXPECT_EQ(who.size(), 20u);
  for (int w : who) EXPECT_TRUE(pop.Selected(w, "edges", 6));
}

TEST(ComparisonTest, RenderShowsMatches) {
  Comparison cmp = CompareQuestion(ExactPopulation(), "dynamism", "Table 8");
  EXPECT_TRUE(cmp.AllMatch());
  std::string out = cmp.Render();
  EXPECT_NE(out.find("all rows match"), std::string::npos);
  EXPECT_NE(out.find("Streaming"), std::string::npos);
}

TEST(ComparisonTest, DetectsMismatch) {
  Population pop = Population::SampleStochastic(7);
  bool any_mismatch = false;
  for (const Question& q : Questionnaire::Standard().questions()) {
    Comparison cmp = CompareQuestion(pop, q.id, q.id);
    if (!cmp.AllMatch()) any_mismatch = true;
  }
  // A random resample virtually never reproduces every count exactly.
  EXPECT_TRUE(any_mismatch);
}

TEST(StochasticPopulationTest, MarginalsCloseToPaperOnAverage) {
  // Average tabulated totals over several samples approach the paper counts.
  const int kSamples = 30;
  std::vector<double> avg(Table8Dynamism().size(), 0.0);
  for (int s = 0; s < kSamples; ++s) {
    Population pop = Population::SampleStochastic(1000 + s);
    auto tally = pop.Tabulate("dynamism");
    for (size_t c = 0; c < tally.size(); ++c) {
      avg[c] += static_cast<double>(tally[c].total) / kSamples;
    }
  }
  for (size_t c = 0; c < avg.size(); ++c) {
    EXPECT_NEAR(avg[c], Table8Dynamism()[c].total,
                0.25 * Table8Dynamism()[c].total + 3.0);
  }
}

TEST(ChiSquareTest, ZeroForIdenticalDistributions) {
  EXPECT_DOUBLE_EQ(ChiSquareStatistic({5, 10}, {5, 10}), 0.0);
  EXPECT_GT(ChiSquareStatistic({8, 7}, {5, 10}), 0.0);
}

TEST(ResampleExperimentTest, ProducesStatsPerQuestion) {
  auto stats = ResampleExperiment(5, 77);
  EXPECT_EQ(stats.size(), Questionnaire::Standard().size());
  for (const ResampleStats& s : stats) {
    EXPECT_EQ(s.num_samples, 5u);
    EXPECT_GE(s.mean_abs_deviation, 0.0);
    EXPECT_GE(s.max_abs_deviation, s.mean_abs_deviation);
  }
}

}  // namespace
}  // namespace ubigraph::survey
