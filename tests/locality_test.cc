// Differential tests for the memory-locality layer: every reordering pass and
// the compressed-CSR backend must give results identical to the plain-CSR
// baseline — bitwise for PageRank scores (after inverse-permutation), exact
// labels for BFS/CC — at 1/2/4/8 threads. Bitwise float claims lean on two
// invariants pinned here: Permute preserves each vertex's relative neighbor
// order (same gather association), and the test graphs are dangling-free (a
// ring through every vertex), so the dangling-mass sum is exactly 0.0 in any
// summation order.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "algorithms/connected_components.h"
#include "algorithms/pagerank.h"
#include "algorithms/traversal.h"
#include "common/random.h"
#include "gen/generators.h"
#include "graph/compressed_csr.h"
#include "graph/csr_graph.h"
#include "graph/ordering.h"

namespace ubigraph {
namespace {

constexpr uint32_t kThreadCounts[] = {1, 2, 4, 8};
constexpr OrderingKind kAllKinds[] = {
    OrderingKind::kOriginal, OrderingKind::kDegreeDescending,
    OrderingKind::kRcm, OrderingKind::kHubCluster};

/// Directed RMAT (2^scale vertices, 8 edges per vertex) plus a ring through
/// every vertex: no dangling vertices, one strongly-reachable component from
/// any root, in-edge index built, sorted adjacency.
CsrGraph DanglingFreeRmat(uint32_t scale) {
  Rng rng(scale * 7919ULL + 23);
  EdgeList el =
      gen::Rmat(scale, static_cast<uint64_t>(8) << scale, &rng).ValueOrDie();
  const VertexId n = el.num_vertices();
  for (VertexId v = 0; v < n; ++v) el.Add(v, (v + 1) % n);
  CsrOptions opts;
  opts.build_in_edges = true;
  return CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
}

/// Renumbers component labels by first appearance so partitions computed on
/// differently-ordered graphs compare exactly.
std::vector<uint32_t> CanonLabels(const std::vector<uint32_t>& label) {
  std::vector<uint32_t> dense(label.size(), UINT32_MAX), out(label.size());
  uint32_t next = 0;
  for (size_t v = 0; v < label.size(); ++v) {
    if (dense[label[v]] == UINT32_MAX) dense[label[v]] = next++;
    out[v] = dense[label[v]];
  }
  return out;
}

TEST(OrderingTest, AllKindsAreBijections) {
  CsrGraph g = DanglingFreeRmat(9);
  for (OrderingKind kind : kAllKinds) {
    std::vector<VertexId> perm = MakeOrdering(g, kind);
    ASSERT_EQ(perm.size(), g.num_vertices()) << OrderingKindName(kind);
    EXPECT_TRUE(ValidatePermutation(perm, g.num_vertices()).ok())
        << OrderingKindName(kind);
  }
}

TEST(OrderingTest, DegreeDescendingPacksHubsFirst) {
  CsrGraph g = DanglingFreeRmat(9);
  std::vector<VertexId> perm = DegreeDescendingOrder(g);
  std::vector<VertexId> new_to_old = InversePermutation(perm);
  auto hot = [&](VertexId v) { return g.OutDegree(v) + g.InDegree(v); };
  for (size_t nv = 1; nv < new_to_old.size(); ++nv) {
    ASSERT_GE(hot(new_to_old[nv - 1]), hot(new_to_old[nv])) << nv;
  }
}

TEST(OrderingTest, HubClusterKeepsIdOrderWithinBucket) {
  CsrGraph g = DanglingFreeRmat(9);
  std::vector<VertexId> perm = HubClusterOrder(g);
  std::vector<VertexId> new_to_old = InversePermutation(perm);
  auto hot = [&](VertexId v) { return g.OutDegree(v) + g.InDegree(v); };
  auto bucket = [&](VertexId v) {
    uint64_t d = hot(v);
    return d == 0 ? 0 : 64 - __builtin_clzll(d) + 1;
  };
  for (size_t nv = 1; nv < new_to_old.size(); ++nv) {
    const VertexId a = new_to_old[nv - 1], b = new_to_old[nv];
    // Buckets are hot-to-cold; within a bucket original ids ascend.
    ASSERT_GE(bucket(a), bucket(b)) << nv;
    if (bucket(a) == bucket(b)) ASSERT_LT(a, b) << nv;
  }
}

TEST(OrderingTest, InversePermutationRoundTrip) {
  CsrGraph g = DanglingFreeRmat(8);
  std::vector<VertexId> perm = RcmOrder(g);
  std::vector<VertexId> inv = InversePermutation(perm);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(inv[perm[v]], v);
  }
  // UnpermuteValues moves values back to original slots exactly.
  std::vector<double> values(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) values[v] = v * 1.5;
  std::vector<double> permuted(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) permuted[perm[v]] = values[v];
  EXPECT_EQ(UnpermuteValues<double>(inv, permuted), values);
}

TEST(OrderingTest, ValidatePermutationRejectsBadInput) {
  EXPECT_FALSE(ValidatePermutation(std::vector<VertexId>{0, 1}, 3).ok());
  EXPECT_FALSE(ValidatePermutation(std::vector<VertexId>{0, 0, 1}, 3).ok());
  EXPECT_FALSE(ValidatePermutation(std::vector<VertexId>{0, 1, 3}, 3).ok());
  EXPECT_TRUE(ValidatePermutation(std::vector<VertexId>{2, 0, 1}, 3).ok());
}

TEST(PermuteTest, PreservesAdjacencyOrderAndWeights) {
  CsrGraph g = DanglingFreeRmat(8);
  std::vector<VertexId> perm = DegreeDescendingOrder(g);
  PermutedCsr p = g.Permute(perm).ValueOrDie();
  ASSERT_EQ(p.graph.num_vertices(), g.num_vertices());
  ASSERT_EQ(p.graph.num_edges(), g.num_edges());
  EXPECT_EQ(p.new_to_old, InversePermutation(perm));
  // Stable relabel: new vertex perm[u]'s neighbors are perm[old neighbors]
  // in the old order, weights riding along untouched.
  EXPECT_FALSE(p.graph.neighbors_sorted());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    auto old_n = g.OutNeighbors(u);
    auto new_n = p.graph.OutNeighbors(perm[u]);
    ASSERT_EQ(old_n.size(), new_n.size()) << u;
    for (size_t i = 0; i < old_n.size(); ++i) {
      ASSERT_EQ(new_n[i], perm[old_n[i]]) << u << " " << i;
    }
    auto old_w = g.OutWeights(u);
    auto new_w = p.graph.OutWeights(perm[u]);
    ASSERT_TRUE(std::equal(old_w.begin(), old_w.end(), new_w.begin())) << u;
    ASSERT_EQ(p.graph.InDegree(perm[u]), g.InDegree(u)) << u;
  }
}

TEST(PermuteTest, ParallelMatchesSerialBitwise) {
  CsrGraph g = DanglingFreeRmat(9);
  std::vector<VertexId> perm = HubClusterOrder(g);
  PermutedCsr serial = g.Permute(perm).ValueOrDie();
  for (uint32_t threads : {2u, 4u, 8u}) {
    PermuteOptions opts;
    opts.num_threads = threads;
    PermutedCsr par = g.Permute(perm, opts).ValueOrDie();
    EXPECT_EQ(par.graph.offsets(), serial.graph.offsets()) << threads;
    EXPECT_EQ(par.graph.targets(), serial.graph.targets()) << threads;
    EXPECT_EQ(par.graph.weights(), serial.graph.weights()) << threads;
    EXPECT_EQ(par.new_to_old, serial.new_to_old) << threads;
  }
}

TEST(PermuteTest, RejectsInvalidPermutation) {
  CsrGraph g = DanglingFreeRmat(8);
  std::vector<VertexId> short_perm(g.num_vertices() - 1, 0);
  EXPECT_FALSE(g.Permute(short_perm).ok());
  std::vector<VertexId> dup(g.num_vertices(), 0);
  EXPECT_FALSE(g.Permute(dup).ok());
}

TEST(PermuteTest, SortNeighborsResorts) {
  CsrGraph g = DanglingFreeRmat(8);
  PermuteOptions opts;
  opts.sort_neighbors = true;
  PermutedCsr p = g.Permute(RcmOrder(g), opts).ValueOrDie();
  EXPECT_TRUE(p.graph.neighbors_sorted());
  for (VertexId v = 0; v < p.graph.num_vertices(); ++v) {
    auto nbrs = p.graph.OutNeighbors(v);
    ASSERT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end())) << v;
  }
}

TEST(LocalityDifferentialTest, PageRankBitwiseUnderPermutation) {
  CsrGraph g = DanglingFreeRmat(9);
  algo::PageRankOptions base_opts;
  base_opts.mode = algo::PageRankMode::kPull;
  base_opts.tolerance = 0.0;  // fixed 20 sweeps: convergence order is moot
  base_opts.max_iterations = 20;
  auto baseline = algo::PageRank(g, base_opts).ValueOrDie();
  for (OrderingKind kind : kAllKinds) {
    PermutedCsr p = g.Permute(MakeOrdering(g, kind)).ValueOrDie();
    for (uint32_t threads : kThreadCounts) {
      algo::PageRankOptions opts = base_opts;
      opts.num_threads = threads;
      auto permuted = algo::PageRank(p.graph, opts).ValueOrDie();
      EXPECT_EQ(UnpermuteValues<double>(p.new_to_old, permuted.scores),
                baseline.scores)
          << OrderingKindName(kind) << " threads=" << threads;
    }
  }
}

TEST(LocalityDifferentialTest, BfsExactUnderPermutation) {
  CsrGraph g = DanglingFreeRmat(9);
  const VertexId root = 3;
  std::vector<uint32_t> baseline = algo::BfsDistances(g, root);
  for (OrderingKind kind : kAllKinds) {
    std::vector<VertexId> perm = MakeOrdering(g, kind);
    PermutedCsr p = g.Permute(perm).ValueOrDie();
    for (uint32_t threads : kThreadCounts) {
      algo::BfsOptions bopts;
      bopts.num_threads = threads;
      EXPECT_EQ(UnpermuteValues<uint32_t>(
                    p.new_to_old,
                    algo::BfsDistances(p.graph, perm[root], bopts)),
                baseline)
          << OrderingKindName(kind) << " threads=" << threads;
      algo::HybridBfsOptions hopts;
      hopts.num_threads = threads;
      EXPECT_EQ(
          UnpermuteValues<uint32_t>(
              p.new_to_old,
              algo::HybridBfs(p.graph, perm[root], hopts).ValueOrDie()),
          baseline)
          << OrderingKindName(kind) << " threads=" << threads;
    }
  }
}

TEST(LocalityDifferentialTest, ConnectedComponentsExactUnderPermutation) {
  // A disconnected graph makes the label comparison meaningful: two RMAT
  // blocks with disjoint vertex ranges plus per-block rings.
  Rng rng(101);
  EdgeList el = gen::Rmat(8, 8 << 8, &rng).ValueOrDie();
  const VertexId half = el.num_vertices();
  EdgeList shifted = gen::Rmat(8, 8 << 8, &rng).ValueOrDie();
  for (const Edge& e : shifted.edges()) el.Add(e.src + half, e.dst + half);
  for (VertexId v = 0; v < half; ++v) {
    el.Add(v, (v + 1) % half);
    el.Add(half + v, half + (v + 1) % half);
  }
  CsrOptions copts;
  copts.build_in_edges = true;
  CsrGraph g = CsrGraph::FromEdges(std::move(el), copts).ValueOrDie();

  auto baseline = algo::WeaklyConnectedComponents(g);
  std::vector<uint32_t> canon_base = CanonLabels(baseline.label);
  for (OrderingKind kind : kAllKinds) {
    PermutedCsr p = g.Permute(MakeOrdering(g, kind)).ValueOrDie();
    auto wcc = algo::WeaklyConnectedComponents(p.graph);
    EXPECT_EQ(wcc.num_components, baseline.num_components)
        << OrderingKindName(kind);
    EXPECT_EQ(CanonLabels(UnpermuteValues<uint32_t>(p.new_to_old, wcc.label)),
              canon_base)
        << OrderingKindName(kind);
    for (uint32_t threads : kThreadCounts) {
      for (bool frontier : {false, true}) {
        algo::ComponentsOptions opts;
        opts.num_threads = threads;
        opts.use_frontier = frontier;
        auto cc = algo::ConnectedComponentsLabelProp(p.graph, opts).ValueOrDie();
        EXPECT_EQ(cc.num_components, baseline.num_components)
            << OrderingKindName(kind) << " threads=" << threads;
        EXPECT_EQ(CanonLabels(UnpermuteValues<uint32_t>(p.new_to_old, cc.label)),
                  canon_base)
            << OrderingKindName(kind) << " threads=" << threads
            << " frontier=" << frontier;
      }
    }
  }
}

TEST(CompressedCsrTest, DecodesExactNeighborLists) {
  CsrGraph g = DanglingFreeRmat(9);
  CompressedCsrGraph c = CompressedCsrGraph::FromCsr(g).ValueOrDie();
  ASSERT_EQ(c.num_vertices(), g.num_vertices());
  ASSERT_EQ(c.num_edges(), g.num_edges());
  ASSERT_TRUE(c.has_in_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(c.OutDegree(v), g.OutDegree(v)) << v;
    auto want = g.OutNeighbors(v);
    std::vector<VertexId> got;
    for (VertexId u : c.OutNeighbors(v)) got.push_back(u);
    ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()))
        << v;
    ASSERT_EQ(c.InDegree(v), g.InDegree(v)) << v;
    auto want_in = g.InNeighbors(v);
    got.clear();
    for (VertexId u : c.InNeighbors(v)) got.push_back(u);
    ASSERT_TRUE(
        std::equal(got.begin(), got.end(), want_in.begin(), want_in.end()))
        << v;
  }
}

TEST(CompressedCsrTest, AdjacencyUnderSixtyPercentOfPlain) {
  Rng rng(12 * 9176ULL + 3);
  CsrGraph g = CsrGraph::FromEdges(
                   gen::Rmat(12, static_cast<uint64_t>(8) << 12, &rng)
                       .ValueOrDie(),
                   CsrOptions{})
                   .ValueOrDie();
  CompressedCsrGraph c = CompressedCsrGraph::FromCsr(g).ValueOrDie();
  const double plain = static_cast<double>(sizeof(VertexId));
  EXPECT_LE(c.AdjacencyBytesPerEdge(), 0.6 * plain)
      << "compressed " << c.AdjacencyBytesPerEdge() << " B/edge vs plain "
      << plain;
  EXPECT_GT(c.index_bytes(), c.adjacency_bytes());
}

TEST(CompressedCsrTest, RequiresSortedAdjacency) {
  CsrOptions opts;
  opts.sort_neighbors = false;
  auto g = CsrGraph::FromPairs(3, {{0, 2}, {0, 1}}, opts).ValueOrDie();
  EXPECT_FALSE(CompressedCsrGraph::FromCsr(g).ok());
}

TEST(CompressedCsrTest, RequireInEdgesMatchesSource) {
  auto g = CsrGraph::FromPairs(3, {{0, 1}, {1, 2}}).ValueOrDie();  // no in-index
  CompressedCsrGraph c = CompressedCsrGraph::FromCsr(g).ValueOrDie();
  EXPECT_FALSE(c.has_in_edges());
  EXPECT_FALSE(c.RequireInEdges("test").ok());
  EXPECT_FALSE(algo::HybridBfs(c, 0).ok());  // pull/auto needs in-edges
  algo::HybridBfsOptions push;
  push.direction = algo::TraversalDirection::kPush;
  EXPECT_TRUE(algo::HybridBfs(c, 0, push).ok());
}

TEST(CompressedDifferentialTest, PageRankBitwise) {
  CsrGraph g = DanglingFreeRmat(9);
  CompressedCsrGraph c = CompressedCsrGraph::FromCsr(g).ValueOrDie();
  for (algo::PageRankMode mode :
       {algo::PageRankMode::kPull, algo::PageRankMode::kPush,
        algo::PageRankMode::kBlocked}) {
    for (uint32_t threads : kThreadCounts) {
      algo::PageRankOptions opts;
      opts.mode = mode;
      opts.num_threads = threads;
      opts.tolerance = 0.0;
      opts.max_iterations = 15;
      auto plain = algo::PageRank(g, opts).ValueOrDie();
      auto packed = algo::PageRank(c, opts).ValueOrDie();
      EXPECT_EQ(packed.scores, plain.scores)
          << "mode=" << static_cast<int>(mode) << " threads=" << threads;
    }
  }
}

TEST(CompressedDifferentialTest, BfsExact) {
  CsrGraph g = DanglingFreeRmat(9);
  CompressedCsrGraph c = CompressedCsrGraph::FromCsr(g).ValueOrDie();
  const VertexId root = 3;
  std::vector<uint32_t> baseline = algo::BfsDistances(g, root);
  for (uint32_t threads : kThreadCounts) {
    algo::BfsOptions bopts;
    bopts.num_threads = threads;
    EXPECT_EQ(algo::BfsDistances(c, root, bopts), baseline) << threads;
    for (auto dir : {algo::TraversalDirection::kPush,
                     algo::TraversalDirection::kPull,
                     algo::TraversalDirection::kAuto}) {
      algo::HybridBfsOptions hopts;
      hopts.num_threads = threads;
      hopts.direction = dir;
      EXPECT_EQ(algo::HybridBfs(c, root, hopts).ValueOrDie(), baseline)
          << "threads=" << threads << " dir=" << static_cast<int>(dir);
    }
  }
  VertexId sources[] = {root, 100, 7};
  EXPECT_EQ(algo::MultiSourceBfs(c, sources),
            algo::MultiSourceBfs(g, sources));
}

TEST(CompressedDifferentialTest, ConnectedComponentsExact) {
  CsrGraph g = DanglingFreeRmat(9);
  CompressedCsrGraph c = CompressedCsrGraph::FromCsr(g).ValueOrDie();
  auto baseline = algo::WeaklyConnectedComponents(g);
  auto wcc = algo::WeaklyConnectedComponents(c);
  EXPECT_EQ(wcc.label, baseline.label);
  EXPECT_EQ(wcc.num_components, baseline.num_components);
  for (uint32_t threads : kThreadCounts) {
    for (bool frontier : {false, true}) {
      algo::ComponentsOptions opts;
      opts.num_threads = threads;
      opts.use_frontier = frontier;
      auto a = algo::ConnectedComponentsLabelProp(c, opts).ValueOrDie();
      auto b = algo::ConnectedComponentsLabelProp(g, opts).ValueOrDie();
      EXPECT_EQ(a.label, b.label)
          << "threads=" << threads << " frontier=" << frontier;
    }
  }
}

TEST(BlockedPageRankTest, BitwiseStableAcrossThreadsAndEqualToSerialPush) {
  CsrGraph g = DanglingFreeRmat(9);
  algo::PageRankOptions push1;
  push1.mode = algo::PageRankMode::kPush;
  push1.tolerance = 0.0;
  push1.max_iterations = 15;
  auto oracle = algo::PageRank(g, push1).ValueOrDie();
  // Small bins force many destination blocks even on this small graph.
  for (uint32_t bin_bits : {4u, 8u, 18u}) {
    for (uint32_t threads : kThreadCounts) {
      algo::PageRankOptions opts = push1;
      opts.mode = algo::PageRankMode::kBlocked;
      opts.blocked_bin_bits = bin_bits;
      opts.num_threads = threads;
      auto blocked = algo::PageRank(g, opts).ValueOrDie();
      EXPECT_EQ(blocked.scores, oracle.scores)
          << "bin_bits=" << bin_bits << " threads=" << threads;
      EXPECT_EQ(blocked.mode, algo::PageRankMode::kBlocked);
    }
  }
}

TEST(BlockedPageRankTest, ConvergesToUnitMass) {
  CsrGraph g = DanglingFreeRmat(8);
  algo::PageRankOptions opts;
  opts.mode = algo::PageRankMode::kBlocked;
  opts.tolerance = 1e-10;
  opts.max_iterations = 200;
  auto r = algo::PageRank(g, opts).ValueOrDie();
  EXPECT_TRUE(r.converged);
  double sum = 0.0;
  for (double s : r.scores) sum += s;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace ubigraph
