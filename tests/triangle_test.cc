#include <gtest/gtest.h>

#include "algorithms/triangle.h"
#include "common/random.h"
#include "gen/generators.h"

namespace ubigraph::algo {
namespace {

uint64_t BruteForceTriangles(const CsrGraph& g) {
  // Build symmetric adjacency matrix, count closed triples / 6... simpler:
  const VertexId n = g.num_vertices();
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      if (u != v) {
        adj[u][v] = true;
        adj[v][u] = true;
      }
    }
  }
  uint64_t count = 0;
  for (VertexId a = 0; a < n; ++a) {
    for (VertexId b = a + 1; b < n; ++b) {
      if (!adj[a][b]) continue;
      for (VertexId c = b + 1; c < n; ++c) {
        if (adj[a][c] && adj[b][c]) ++count;
      }
    }
  }
  return count;
}

TEST(TriangleTest, TriangleGraphHasOne) {
  auto g = CsrGraph::FromPairs(3, {{0, 1}, {1, 2}, {2, 0}}).ValueOrDie();
  EXPECT_EQ(CountTriangles(g), 1u);
}

TEST(TriangleTest, CompleteGraphK5) {
  auto g = CsrGraph::FromEdges(gen::Complete(5)).ValueOrDie();
  EXPECT_EQ(CountTriangles(g), 10u);  // C(5,3)
}

TEST(TriangleTest, TreeHasNone) {
  Rng rng(1);
  auto g = CsrGraph::FromEdges(gen::RandomTree(50, &rng).ValueOrDie()).ValueOrDie();
  EXPECT_EQ(CountTriangles(g), 0u);
}

TEST(TriangleTest, SelfLoopsAndParallelEdgesIgnored) {
  EdgeList el(3);
  el.Add(0, 1);
  el.Add(0, 1);  // parallel
  el.Add(0, 0);  // loop
  el.Add(1, 2);
  el.Add(2, 0);
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  EXPECT_EQ(CountTriangles(g), 1u);
}

class TriangleRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TriangleRandomTest, MatchesBruteForce) {
  Rng rng(GetParam());
  auto el = gen::ErdosRenyi(30, 120, &rng).ValueOrDie();
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  EXPECT_EQ(CountTriangles(g), BruteForceTriangles(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriangleRandomTest,
                         ::testing::Values(10, 11, 12, 13, 14, 15));

TEST(TrianglesPerVertexTest, SumIsThreeTimesTotal) {
  Rng rng(22);
  auto el = gen::ErdosRenyi(40, 200, &rng).ValueOrDie();
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  auto per_vertex = TrianglesPerVertex(g);
  uint64_t sum = 0;
  for (uint64_t t : per_vertex) sum += t;
  EXPECT_EQ(sum, 3 * CountTriangles(g));
}

TEST(TrianglesPerVertexTest, CornerCounts) {
  // Two triangles sharing edge (0, 1): 0-1-2, 0-1-3.
  auto g = CsrGraph::FromPairs(4, {{0, 1}, {1, 2}, {2, 0}, {1, 3}, {3, 0}})
               .ValueOrDie();
  auto t = TrianglesPerVertex(g);
  EXPECT_EQ(t[0], 2u);
  EXPECT_EQ(t[1], 2u);
  EXPECT_EQ(t[2], 1u);
  EXPECT_EQ(t[3], 1u);
}

TEST(ClusteringTest, CompleteGraphIsOne) {
  auto g = CsrGraph::FromEdges(gen::Complete(6)).ValueOrDie();
  auto local = LocalClusteringCoefficients(g);
  for (double c : local) EXPECT_DOUBLE_EQ(c, 1.0);
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(g), 1.0);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 1.0);
}

TEST(ClusteringTest, StarIsZero) {
  auto g = CsrGraph::FromEdges(gen::Star(5)).ValueOrDie();
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(g), 0.0);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 0.0);
}

TEST(ClusteringTest, KnownSmallGraph) {
  // Triangle 0-1-2 plus pendant 3 attached to 0.
  auto g = CsrGraph::FromPairs(4, {{0, 1}, {1, 2}, {2, 0}, {0, 3}}).ValueOrDie();
  auto local = LocalClusteringCoefficients(g);
  EXPECT_NEAR(local[0], 1.0 / 3.0, 1e-12);  // deg 3, 1 triangle
  EXPECT_DOUBLE_EQ(local[1], 1.0);
  EXPECT_DOUBLE_EQ(local[3], 0.0);
  // Global: 3 triangles' worth of closed triples / wedges.
  // Wedges: v0: C(3,2)=3, v1: 1, v2: 1, v3: 0 -> 5. 3*1/5.
  EXPECT_NEAR(GlobalClusteringCoefficient(g), 3.0 / 5.0, 1e-12);
}

TEST(DegreeHistogramTest, CountsPerDegree) {
  auto g = CsrGraph::FromEdges(gen::Star(3)).ValueOrDie();  // directed star
  auto hist = DegreeHistogram(g);
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_EQ(hist[0], 3u);  // leaves have out-degree 0
  EXPECT_EQ(hist[3], 1u);  // hub
}

TEST(DegreeStatsTest, MinMaxMean) {
  auto g = CsrGraph::FromEdges(gen::Star(4)).ValueOrDie();
  DegreeStats s = ComputeDegreeStats(g);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0 / 5.0);
}

TEST(DegreeStatsTest, EmptyGraph) {
  auto g = CsrGraph::FromEdges(EdgeList{}).ValueOrDie();
  DegreeStats s = ComputeDegreeStats(g);
  EXPECT_EQ(s.max, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace ubigraph::algo
