#include <gtest/gtest.h>

#include "algorithms/reachability.h"
#include "common/random.h"
#include "gen/generators.h"

namespace ubigraph::algo {
namespace {

TEST(ReachabilityOnlineTest, PathDirection) {
  auto g = CsrGraph::FromEdges(gen::Path(4)).ValueOrDie();
  EXPECT_TRUE(IsReachable(g, 0, 3));
  EXPECT_FALSE(IsReachable(g, 3, 0));
  EXPECT_TRUE(IsReachable(g, 2, 2));
}

TEST(ReachabilityOnlineTest, OutOfRange) {
  auto g = CsrGraph::FromEdges(gen::Path(3)).ValueOrDie();
  EXPECT_FALSE(IsReachable(g, 0, 99));
  EXPECT_FALSE(IsReachable(g, 99, 0));
}

TEST(ReachabilityIndexTest, SameSccAlwaysReachable) {
  auto g = CsrGraph::FromPairs(3, {{0, 1}, {1, 2}, {2, 0}}).ValueOrDie();
  auto idx = ReachabilityIndex::Build(g).ValueOrDie();
  EXPECT_EQ(idx.num_scc(), 1u);
  for (VertexId u = 0; u < 3; ++u) {
    for (VertexId v = 0; v < 3; ++v) EXPECT_TRUE(idx.Reachable(u, v));
  }
}

TEST(ReachabilityIndexTest, DagChain) {
  auto g = CsrGraph::FromEdges(gen::Path(5)).ValueOrDie();
  auto idx = ReachabilityIndex::Build(g).ValueOrDie();
  EXPECT_EQ(idx.num_scc(), 5u);
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = 0; v < 5; ++v) {
      EXPECT_EQ(idx.Reachable(u, v), u <= v) << u << "->" << v;
    }
  }
}

TEST(ReachabilityIndexTest, DisconnectedComponents) {
  auto g = CsrGraph::FromPairs(4, {{0, 1}, {2, 3}}).ValueOrDie();
  auto idx = ReachabilityIndex::Build(g).ValueOrDie();
  EXPECT_TRUE(idx.Reachable(0, 1));
  EXPECT_FALSE(idx.Reachable(0, 2));
  EXPECT_FALSE(idx.Reachable(1, 3));
}

class ReachabilityRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReachabilityRandomTest, IndexMatchesOnlineBfs) {
  Rng rng(GetParam());
  auto el = gen::ErdosRenyi(40, 70, &rng).ValueOrDie();
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  auto idx = ReachabilityIndex::Build(g).ValueOrDie();
  for (VertexId u = 0; u < g.num_vertices(); u += 3) {
    for (VertexId v = 0; v < g.num_vertices(); v += 3) {
      EXPECT_EQ(idx.Reachable(u, v), IsReachable(g, u, v))
          << "seed=" << GetParam() << " " << u << "->" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReachabilityRandomTest,
                         ::testing::Values(31, 32, 33, 34, 35, 36, 37, 38));

TEST(ReachabilityRandomDenseTest, IndexMatchesOnCyclicGraphs) {
  // Denser graphs develop nontrivial SCCs, exercising the condensation path.
  for (uint64_t seed = 60; seed < 64; ++seed) {
    Rng rng(seed);
    auto el = gen::ErdosRenyi(30, 120, &rng).ValueOrDie();
    auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
    auto idx = ReachabilityIndex::Build(g).ValueOrDie();
    EXPECT_LT(idx.num_scc(), g.num_vertices());  // some cycle collapsed
    for (VertexId u = 0; u < g.num_vertices(); u += 2) {
      for (VertexId v = 0; v < g.num_vertices(); v += 2) {
        EXPECT_EQ(idx.Reachable(u, v), IsReachable(g, u, v));
      }
    }
  }
}

TEST(ReachabilityIndexTest, SccLabelsExposed) {
  auto g = CsrGraph::FromPairs(4, {{0, 1}, {1, 0}, {2, 3}}).ValueOrDie();
  auto idx = ReachabilityIndex::Build(g).ValueOrDie();
  EXPECT_EQ(idx.SccOf(0), idx.SccOf(1));
  EXPECT_NE(idx.SccOf(0), idx.SccOf(2));
  EXPECT_EQ(idx.num_scc(), 3u);
}

}  // namespace
}  // namespace ubigraph::algo
