#include <gtest/gtest.h>

#include <algorithm>

#include "algorithms/traversal.h"
#include "common/random.h"
#include "gen/generators.h"

namespace ubigraph::algo {
namespace {

CsrGraph Line(VertexId n) {
  return CsrGraph::FromEdges(gen::Path(n)).ValueOrDie();
}

TEST(BfsTest, DistancesOnPath) {
  CsrGraph g = Line(5);
  auto dist = BfsDistances(g, 0);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
}

TEST(BfsTest, UnreachableMarked) {
  // Directed path: nothing reaches vertex 0 except itself.
  CsrGraph g = Line(4);
  auto dist = BfsDistances(g, 2);
  EXPECT_EQ(dist[0], kUnreachable);
  EXPECT_EQ(dist[1], kUnreachable);
  EXPECT_EQ(dist[2], 0u);
  EXPECT_EQ(dist[3], 1u);
}

TEST(BfsTest, OutOfRangeSourceIsAllUnreachable) {
  CsrGraph g = Line(3);
  auto dist = BfsDistances(g, 99);
  for (uint32_t d : dist) EXPECT_EQ(d, kUnreachable);
}

TEST(BfsTest, ParentsFormTree) {
  Rng rng(4);
  auto el = gen::ErdosRenyi(50, 200, &rng).ValueOrDie();
  CsrGraph g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  auto parent = BfsParents(g, 0);
  auto dist = BfsDistances(g, 0);
  EXPECT_EQ(parent[0], 0u);
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    if (dist[v] == kUnreachable) {
      EXPECT_EQ(parent[v], kInvalidVertex);
    } else {
      EXPECT_EQ(dist[v], dist[parent[v]] + 1);
      EXPECT_TRUE(g.HasEdge(parent[v], v));
    }
  }
}

TEST(BfsTest, VisitEarlyStop) {
  CsrGraph g = Line(10);
  uint64_t visited = BfsVisit(g, 0, [](VertexId v, uint32_t) { return v != 3; });
  EXPECT_EQ(visited, 4u);  // 0,1,2,3
}

TEST(BfsTest, VisitDepthsAreBfsOrder) {
  CsrGraph g = CsrGraph::FromEdges(gen::Star(4)).ValueOrDie();
  uint32_t last_depth = 0;
  BfsVisit(g, 0, [&](VertexId, uint32_t d) {
    EXPECT_GE(d, last_depth);
    last_depth = d;
    return true;
  });
  EXPECT_EQ(last_depth, 1u);
}

TEST(DfsTest, PreorderOnSmallDag) {
  // 0 -> {1, 2}, 1 -> {3}.
  auto g = CsrGraph::FromPairs(4, {{0, 1}, {0, 2}, {1, 3}}).ValueOrDie();
  auto order = DfsPreorder(g, 0);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);  // adjacency order respected
  EXPECT_EQ(order[2], 3u);
  EXPECT_EQ(order[3], 2u);
}

TEST(DfsTest, PostorderFinishesChildrenFirst) {
  auto g = CsrGraph::FromPairs(4, {{0, 1}, {0, 2}, {1, 3}}).ValueOrDie();
  auto order = DfsPostorder(g, 0);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.back(), 0u);
  auto pos = [&](VertexId v) {
    return std::find(order.begin(), order.end(), v) - order.begin();
  };
  EXPECT_LT(pos(3), pos(1));
}

TEST(DfsTest, PreAndPostVisitSameVertices) {
  Rng rng(7);
  auto el = gen::ErdosRenyi(40, 120, &rng).ValueOrDie();
  CsrGraph g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  auto pre = DfsPreorder(g, 0);
  auto post = DfsPostorder(g, 0);
  std::sort(pre.begin(), pre.end());
  std::sort(post.begin(), post.end());
  EXPECT_EQ(pre, post);
}

TEST(DfsFullTest, CoversAllVerticesWithValidClocks) {
  Rng rng(9);
  auto el = gen::ErdosRenyi(30, 60, &rng).ValueOrDie();
  CsrGraph g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  DfsForest f = DfsFull(g);
  EXPECT_EQ(f.preorder.size(), g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NE(f.discover[v], kUnreachable);
    EXPECT_LT(f.discover[v], f.finish[v]);
    EXPECT_NE(f.root[v], kInvalidVertex);
  }
}

TEST(DfsFullTest, ParenthesisProperty) {
  auto g = CsrGraph::FromPairs(5, {{0, 1}, {1, 2}, {0, 3}, {3, 4}}).ValueOrDie();
  DfsForest f = DfsFull(g);
  // For any two vertices, intervals [discover, finish] are nested or disjoint.
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) {
      bool disjoint = f.finish[u] < f.discover[v] || f.finish[v] < f.discover[u];
      bool nested = (f.discover[u] < f.discover[v] && f.finish[v] < f.finish[u]) ||
                    (f.discover[v] < f.discover[u] && f.finish[u] < f.finish[v]);
      EXPECT_TRUE(disjoint || nested);
    }
  }
}

TEST(NeighborhoodTest, ExactHopRings) {
  CsrGraph g = Line(6);
  auto at2 = NeighborsAtHop(g, 0, 2);
  ASSERT_EQ(at2.size(), 1u);
  EXPECT_EQ(at2[0], 2u);
  auto within2 = NeighborsWithinHops(g, 0, 2);
  ASSERT_EQ(within2.size(), 2u);
}

TEST(NeighborhoodTest, TwoDegreeNeighborsOnStar) {
  // Undirected star: every leaf is 2 hops from every other leaf.
  CsrOptions opts;
  opts.directed = false;
  CsrGraph g = CsrGraph::FromEdges(gen::Star(5), opts).ValueOrDie();
  auto at2 = NeighborsAtHop(g, 1, 2);
  EXPECT_EQ(at2.size(), 4u);  // the other 4 leaves
}

TEST(NeighborhoodTest, ZeroHopsMeansNothing) {
  CsrGraph g = Line(4);
  EXPECT_TRUE(NeighborsWithinHops(g, 0, 0).empty());
}

TEST(TopologicalSortTest, ValidOrderOnDag) {
  auto g = CsrGraph::FromPairs(5, {{0, 2}, {1, 2}, {2, 3}, {3, 4}, {1, 4}})
               .ValueOrDie();
  auto order = TopologicalSort(g);
  ASSERT_TRUE(order.ok());
  std::vector<size_t> pos(5);
  for (size_t i = 0; i < order->size(); ++i) pos[(*order)[i]] = i;
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v : g.OutNeighbors(u)) EXPECT_LT(pos[u], pos[v]);
  }
}

TEST(TopologicalSortTest, CycleDetected) {
  auto g = CsrGraph::FromPairs(3, {{0, 1}, {1, 2}, {2, 0}}).ValueOrDie();
  EXPECT_FALSE(TopologicalSort(g).ok());
}

TEST(TopologicalSortTest, SelfLoopIsCycle) {
  auto g = CsrGraph::FromPairs(2, {{0, 0}, {0, 1}}).ValueOrDie();
  EXPECT_FALSE(TopologicalSort(g).ok());
}

class BfsRandomGraphTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BfsRandomGraphTest, TriangleInequalityOnDistances) {
  Rng rng(GetParam());
  auto el = gen::ErdosRenyi(60, 240, &rng).ValueOrDie();
  CsrGraph g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  auto dist = BfsDistances(g, 0);
  // Every edge (u, v): dist[v] <= dist[u] + 1.
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    if (dist[u] == kUnreachable) continue;
    for (VertexId v : g.OutNeighbors(u)) {
      ASSERT_NE(dist[v], kUnreachable);
      EXPECT_LE(dist[v], dist[u] + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfsRandomGraphTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ubigraph::algo
