#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "gen/generators.h"
#include "ml/label_propagation.h"
#include "ml/louvain.h"

namespace ubigraph::ml {
namespace {

CsrGraph TwoCliquesWithBridge() {
  // Cliques {0..4} and {5..9} joined by one edge.
  EdgeList el(10);
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) el.Add(u, v);
  }
  for (VertexId u = 5; u < 10; ++u) {
    for (VertexId v = u + 1; v < 10; ++v) el.Add(u, v);
  }
  el.Add(4, 5);
  CsrOptions opts;
  opts.directed = false;
  return CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
}

/// Fraction of intra-planted-community vertex pairs that share a label.
double AgreementWithPlanted(const std::vector<uint32_t>& labels,
                            VertexId group_size) {
  uint64_t agree = 0, total = 0;
  for (VertexId u = 0; u < labels.size(); ++u) {
    for (VertexId v = u + 1; v < labels.size(); ++v) {
      if (u / group_size != v / group_size) continue;
      ++total;
      if (labels[u] == labels[v]) ++agree;
    }
  }
  return total ? static_cast<double>(agree) / total : 1.0;
}

TEST(LouvainTest, SeparatesTwoCliques) {
  CommunityResult r = Louvain(TwoCliquesWithBridge());
  EXPECT_EQ(r.num_communities, 2u);
  for (VertexId v = 1; v < 5; ++v) EXPECT_EQ(r.community[v], r.community[0]);
  for (VertexId v = 6; v < 10; ++v) EXPECT_EQ(r.community[v], r.community[5]);
  EXPECT_NE(r.community[0], r.community[5]);
  EXPECT_GT(r.modularity, 0.3);
}

TEST(LouvainTest, RecoversPlantedPartition) {
  Rng rng(11);
  auto el = gen::PlantedPartition(120, 4, 0.5, 0.01, &rng).ValueOrDie();
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
  CommunityResult r = Louvain(g);
  EXPECT_GT(AgreementWithPlanted(r.community, 30), 0.9);
  EXPECT_GT(r.modularity, 0.5);
}

TEST(LouvainTest, ModularityMatchesIndependentComputation) {
  auto g = TwoCliquesWithBridge();
  CommunityResult r = Louvain(g);
  EXPECT_NEAR(r.modularity, Modularity(g, r.community), 1e-9);
}

TEST(LouvainTest, SingletonCommunitiesHaveNonPositiveModularityOnClique) {
  auto g = CsrGraph::FromEdges(gen::Complete(6)).ValueOrDie();
  std::vector<uint32_t> singletons(6);
  for (uint32_t v = 0; v < 6; ++v) singletons[v] = v;
  EXPECT_LT(Modularity(g, singletons), 0.0);
  std::vector<uint32_t> together(6, 0);
  EXPECT_NEAR(Modularity(g, together), 0.0, 1e-9);
}

TEST(LouvainTest, DeterministicForSeed) {
  auto g = TwoCliquesWithBridge();
  LouvainOptions opts;
  opts.seed = 123;
  CommunityResult a = Louvain(g, opts);
  CommunityResult b = Louvain(g, opts);
  EXPECT_EQ(a.community, b.community);
  EXPECT_EQ(a.modularity, b.modularity);
}

TEST(LouvainTest, EmptyGraph) {
  auto g = CsrGraph::FromEdges(EdgeList{}).ValueOrDie();
  CommunityResult r = Louvain(g);
  EXPECT_EQ(r.num_communities, 0u);
}

TEST(LouvainTest, HigherResolutionMoreCommunities) {
  Rng rng(13);
  auto el = gen::PlantedPartition(80, 4, 0.4, 0.05, &rng).ValueOrDie();
  CsrOptions copts;
  copts.directed = false;
  auto g = CsrGraph::FromEdges(std::move(el), copts).ValueOrDie();
  LouvainOptions low, high;
  low.resolution = 0.3;
  high.resolution = 3.0;
  EXPECT_LE(Louvain(g, low).num_communities, Louvain(g, high).num_communities);
}

TEST(LabelPropagationTest, CliquesConverge) {
  LabelPropagationResult r = PropagateLabels(TwoCliquesWithBridge());
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.num_labels, 2u);
  // Clique members agree.
  for (VertexId v = 1; v < 5; ++v) EXPECT_EQ(r.label[v], r.label[0]);
  for (VertexId v = 6; v < 10; ++v) EXPECT_EQ(r.label[v], r.label[5]);
}

TEST(LabelPropagationTest, IsolatedVerticesKeepOwnLabels) {
  auto g = CsrGraph::FromEdges(EdgeList(4)).ValueOrDie();  // no edges
  LabelPropagationResult r = PropagateLabels(g);
  EXPECT_EQ(r.num_labels, 4u);
}

TEST(LabelPropagationTest, DenseLabels) {
  Rng rng(17);
  auto el = gen::PlantedPartition(60, 3, 0.5, 0.02, &rng).ValueOrDie();
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
  LabelPropagationResult r = PropagateLabels(g);
  for (uint32_t l : r.label) EXPECT_LT(l, r.num_labels);
}

TEST(ClassifyBySeedsTest, PropagatesOnPath) {
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromEdges(gen::Path(7), opts).ValueOrDie();
  std::vector<uint32_t> seeds(7, UINT32_MAX);
  seeds[0] = 0;
  seeds[6] = 1;
  auto labels = ClassifyBySeeds(g, seeds).ValueOrDie();
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[6], 1u);
  EXPECT_EQ(labels[1], 0u);
  EXPECT_EQ(labels[5], 1u);
  for (uint32_t l : labels) EXPECT_NE(l, UINT32_MAX);
}

TEST(ClassifyBySeedsTest, SeedsAreClamped) {
  auto g = CsrGraph::FromEdges(gen::Complete(4)).ValueOrDie();
  std::vector<uint32_t> seeds(4, UINT32_MAX);
  seeds[0] = 7;
  auto labels = ClassifyBySeeds(g, seeds).ValueOrDie();
  EXPECT_EQ(labels[0], 7u);
  for (uint32_t l : labels) EXPECT_EQ(l, 7u);
}

TEST(ClassifyBySeedsTest, UnreachableStaysUnlabeled) {
  auto g = CsrGraph::FromPairs(3, {{0, 1}}).ValueOrDie();
  std::vector<uint32_t> seeds(3, UINT32_MAX);
  seeds[0] = 1;
  auto labels = ClassifyBySeeds(g, seeds).ValueOrDie();
  EXPECT_EQ(labels[1], 1u);
  EXPECT_EQ(labels[2], UINT32_MAX);
}

TEST(ClassifyBySeedsTest, SizeMismatchRejected) {
  auto g = CsrGraph::FromEdges(gen::Path(3)).ValueOrDie();
  EXPECT_FALSE(ClassifyBySeeds(g, {0}).ok());
}

TEST(ClassifyBySeedsTest, MostlyCorrectOnPlantedCommunities) {
  Rng rng(23);
  auto el = gen::PlantedPartition(90, 3, 0.4, 0.02, &rng).ValueOrDie();
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
  std::vector<uint32_t> seeds(90, UINT32_MAX);
  seeds[0] = 0;
  seeds[30] = 1;
  seeds[60] = 2;
  auto labels = ClassifyBySeeds(g, seeds).ValueOrDie();
  int correct = 0;
  for (VertexId v = 0; v < 90; ++v) {
    if (labels[v] == v / 30) ++correct;
  }
  EXPECT_GT(correct, 75);
}

}  // namespace
}  // namespace ubigraph::ml
