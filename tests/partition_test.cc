#include <gtest/gtest.h>

#include "algorithms/partition.h"
#include "common/random.h"
#include "gen/generators.h"

namespace ubigraph::algo {
namespace {

CsrGraph Community4x25(uint64_t seed) {
  Rng rng(seed);
  auto el = gen::PlantedPartition(100, 4, 0.4, 0.01, &rng).ValueOrDie();
  CsrOptions opts;
  opts.directed = false;
  return CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
}

TEST(HashPartitionTest, CoversAllParts) {
  auto g = Community4x25(1);
  auto p = HashPartition(g, 4).ValueOrDie();
  auto q = EvaluatePartition(g, p).ValueOrDie();
  EXPECT_EQ(q.part_sizes.size(), 4u);
  for (uint64_t s : q.part_sizes) EXPECT_GT(s, 0u);
  EXPECT_LT(q.imbalance, 0.5);
}

TEST(HashPartitionTest, ZeroPartsRejected) {
  auto g = Community4x25(1);
  EXPECT_FALSE(HashPartition(g, 0).ok());
}

TEST(LdgPartitionTest, RespectsCapacity) {
  auto g = Community4x25(2);
  auto p = LdgPartition(g, 4, 1.1).ValueOrDie();
  auto q = EvaluatePartition(g, p).ValueOrDie();
  // Capacity 1.1 * 25 = 27.5 -> max part size 27.
  for (uint64_t s : q.part_sizes) EXPECT_LE(s, 28u);
}

TEST(LdgPartitionTest, BeatsHashOnCommunityGraph) {
  auto g = Community4x25(3);
  auto hash_q = EvaluatePartition(g, HashPartition(g, 4).ValueOrDie()).ValueOrDie();
  auto ldg_q = EvaluatePartition(g, LdgPartition(g, 4).ValueOrDie()).ValueOrDie();
  EXPECT_LT(ldg_q.edge_cut, hash_q.edge_cut);
}

TEST(LdgPartitionTest, InvalidSlackRejected) {
  auto g = Community4x25(1);
  EXPECT_FALSE(LdgPartition(g, 4, 0.5).ok());
}

TEST(BfsGrowTest, AllVerticesAssigned) {
  auto g = Community4x25(4);
  Rng rng(9);
  auto p = BfsGrowPartition(g, 4, &rng).ValueOrDie();
  for (uint32_t part : p.part) EXPECT_LT(part, 4u);
}

TEST(BfsGrowTest, HandlesDisconnectedGraph) {
  auto g = CsrGraph::FromPairs(10, {{0, 1}, {2, 3}}).ValueOrDie();
  Rng rng(5);
  auto p = BfsGrowPartition(g, 3, &rng).ValueOrDie();
  auto q = EvaluatePartition(g, p).ValueOrDie();
  uint64_t total = 0;
  for (uint64_t s : q.part_sizes) total += s;
  EXPECT_EQ(total, 10u);
}

TEST(BfsGrowTest, FixedSeedIsBitwiseStable) {
  // The sharded-CSR layout (src/shard/) derives its vertex relabeling from
  // this partition, so a fixed seed must reproduce the exact assignment —
  // not just an equally good one — across runs and part counts.
  auto g = Community4x25(6);
  for (uint32_t k : {2u, 4u, 7u}) {
    Rng rng_a(123), rng_b(123);
    auto a = BfsGrowPartition(g, k, &rng_a).ValueOrDie();
    auto b = BfsGrowPartition(g, k, &rng_b).ValueOrDie();
    EXPECT_EQ(a.part, b.part) << "k=" << k;
  }
  // Different seeds pick different BFS seeds, so assignments diverge.
  Rng rng_c(123), rng_d(456);
  auto c = BfsGrowPartition(g, 4, &rng_c).ValueOrDie();
  auto d = BfsGrowPartition(g, 4, &rng_d).ValueOrDie();
  EXPECT_NE(c.part, d.part);
}

TEST(LdgPartitionTest, DeterministicAcrossRuns) {
  // LDG takes no rng: two invocations must agree bitwise (stream order and
  // tie-breaks are fully specified).
  auto g = Community4x25(8);
  auto a = LdgPartition(g, 5).ValueOrDie();
  auto b = LdgPartition(g, 5).ValueOrDie();
  EXPECT_EQ(a.part, b.part);
}

TEST(BfsGrowTest, NullRngRejected) {
  auto g = Community4x25(1);
  EXPECT_FALSE(BfsGrowPartition(g, 2, nullptr).ok());
}

TEST(EvaluateTest, PerfectSplitHasZeroCut) {
  // Two disjoint cliques split exactly.
  EdgeList el(6);
  for (VertexId u = 0; u < 3; ++u) {
    for (VertexId v = u + 1; v < 3; ++v) el.Add(u, v);
  }
  for (VertexId u = 3; u < 6; ++u) {
    for (VertexId v = u + 1; v < 6; ++v) el.Add(u, v);
  }
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  Partitioning p;
  p.num_parts = 2;
  p.part = {0, 0, 0, 1, 1, 1};
  auto q = EvaluatePartition(g, p).ValueOrDie();
  EXPECT_EQ(q.edge_cut, 0u);
  EXPECT_DOUBLE_EQ(q.cut_fraction, 0.0);
  EXPECT_DOUBLE_EQ(q.imbalance, 0.0);
}

TEST(EvaluateTest, FullCut) {
  auto g = CsrGraph::FromPairs(2, {{0, 1}}).ValueOrDie();
  Partitioning p;
  p.num_parts = 2;
  p.part = {0, 1};
  auto q = EvaluatePartition(g, p).ValueOrDie();
  EXPECT_EQ(q.edge_cut, 1u);
  EXPECT_DOUBLE_EQ(q.cut_fraction, 1.0);
}

TEST(EvaluateTest, EdgeBalanceSeparatesWorkFromVertexCounts) {
  // Directed star: vertex 0 carries ALL the scatter work. A {hub}, {leaves}
  // split looks lopsided by vertex count in the opposite direction of its
  // actual work balance.
  auto g = CsrGraph::FromPairs(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}}).ValueOrDie();
  Partitioning p;
  p.num_parts = 2;
  p.part = {0, 1, 1, 1, 1};
  auto q = EvaluatePartition(g, p).ValueOrDie();
  ASSERT_EQ(q.part_out_edges.size(), 2u);
  EXPECT_EQ(q.part_out_edges[0], 4u);
  EXPECT_EQ(q.part_out_edges[1], 0u);
  // Ideal = 2 out-edges/part; part 0 holds 4 -> imbalance 1.0.
  EXPECT_DOUBLE_EQ(q.edge_imbalance, 1.0);
  // Vertex imbalance says part 1 is the heavy one (4 vs ideal 2.5).
  EXPECT_DOUBLE_EQ(q.imbalance, 4.0 / 2.5 - 1.0);
}

TEST(EvaluateTest, EdgeBalancePerfectOnEvenWork) {
  auto g = CsrGraph::FromPairs(4, {{0, 1}, {1, 0}, {2, 3}, {3, 2}}).ValueOrDie();
  Partitioning p;
  p.num_parts = 2;
  p.part = {0, 0, 1, 1};
  auto q = EvaluatePartition(g, p).ValueOrDie();
  EXPECT_EQ(q.part_out_edges[0], 2u);
  EXPECT_EQ(q.part_out_edges[1], 2u);
  EXPECT_DOUBLE_EQ(q.edge_imbalance, 0.0);
}

TEST(EvaluateTest, SizeMismatchRejected) {
  auto g = CsrGraph::FromPairs(3, {{0, 1}}).ValueOrDie();
  Partitioning p;
  p.num_parts = 2;
  p.part = {0, 1};  // too short
  EXPECT_FALSE(EvaluatePartition(g, p).ok());
}

TEST(EvaluateTest, BadPartIdRejected) {
  auto g = CsrGraph::FromPairs(2, {{0, 1}}).ValueOrDie();
  Partitioning p;
  p.num_parts = 2;
  p.part = {0, 7};
  EXPECT_FALSE(EvaluatePartition(g, p).ok());
}

class PartitionerComparisonTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint64_t>> {};

TEST_P(PartitionerComparisonTest, AllProduceValidPartitions) {
  auto [k, seed] = GetParam();
  auto g = Community4x25(seed);
  Rng rng(seed);
  for (auto& result :
       {HashPartition(g, k), LdgPartition(g, k), BfsGrowPartition(g, k, &rng)}) {
    ASSERT_TRUE(result.ok());
    auto q = EvaluatePartition(g, *result);
    ASSERT_TRUE(q.ok());
    uint64_t total = 0;
    for (uint64_t s : q->part_sizes) total += s;
    EXPECT_EQ(total, g.num_vertices());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PartitionerComparisonTest,
    ::testing::Combine(::testing::Values(2u, 4u, 8u), ::testing::Values(1u, 2u)));

}  // namespace
}  // namespace ubigraph::algo
