#include <gtest/gtest.h>

#include <algorithm>

#include "rdf/ntriples.h"
#include "rdf/triple_store.h"

namespace ubigraph::rdf {
namespace {

TripleStore FamilyStore() {
  TripleStore store;
  store.Add("alice", "knows", "bob");
  store.Add("bob", "knows", "carol");
  store.Add("alice", "knows", "carol");
  store.Add("alice", "age", "\"34\"");
  store.Add("bob", "age", "\"29\"");
  store.Add("carol", "worksAt", "acme");
  return store;
}

TEST(TripleStoreTest, AddAndContains) {
  TripleStore store;
  EXPECT_TRUE(store.Add("s", "p", "o"));
  EXPECT_FALSE(store.Add("s", "p", "o"));  // duplicate
  EXPECT_EQ(store.num_triples(), 1u);
  EXPECT_TRUE(store.Contains("s", "p", "o"));
  EXPECT_FALSE(store.Contains("s", "p", "x"));
}

TEST(TripleStoreTest, RemoveTriple) {
  TripleStore store = FamilyStore();
  EXPECT_TRUE(store.Remove("alice", "knows", "bob"));
  EXPECT_FALSE(store.Remove("alice", "knows", "bob"));
  EXPECT_FALSE(store.Contains("alice", "knows", "bob"));
  EXPECT_EQ(store.num_triples(), 5u);
  // Other triples untouched.
  EXPECT_TRUE(store.Contains("bob", "knows", "carol"));
}

TEST(TripleStoreTest, MatchBySubject) {
  TripleStore store = FamilyStore();
  TriplePattern p;
  p.subject = *store.Lookup("alice");
  auto results = store.Match(p);
  EXPECT_EQ(results.size(), 3u);
  for (const Triple& t : results) EXPECT_EQ(t.subject, p.subject);
}

TEST(TripleStoreTest, MatchByPredicateAndObject) {
  TripleStore store = FamilyStore();
  TriplePattern by_pred;
  by_pred.predicate = *store.Lookup("knows");
  EXPECT_EQ(store.Match(by_pred).size(), 3u);

  TriplePattern by_obj;
  by_obj.object = *store.Lookup("carol");
  EXPECT_EQ(store.Match(by_obj).size(), 2u);

  TriplePattern sp;
  sp.subject = *store.Lookup("alice");
  sp.predicate = *store.Lookup("knows");
  EXPECT_EQ(store.Match(sp).size(), 2u);
}

TEST(TripleStoreTest, FullScanReturnsAll) {
  TripleStore store = FamilyStore();
  EXPECT_EQ(store.Match(TriplePattern{}).size(), store.num_triples());
}

TEST(TripleStoreTest, DistinctPredicates) {
  TripleStore store = FamilyStore();
  auto preds = store.DistinctPredicates();
  EXPECT_EQ(preds.size(), 3u);  // knows, age, worksAt
}

TEST(TripleStoreQueryTest, SingleVariable) {
  TripleStore store = FamilyStore();
  std::vector<std::string> vars;
  auto rows =
      store.Query({{"alice", "knows", "?who"}}, &vars).ValueOrDie();
  ASSERT_EQ(vars.size(), 1u);
  EXPECT_EQ(vars[0], "?who");
  EXPECT_EQ(rows.size(), 2u);
}

TEST(TripleStoreQueryTest, JoinTwoPatterns) {
  TripleStore store = FamilyStore();
  std::vector<std::string> vars;
  // Friend-of-friend: alice knows ?x, ?x knows ?y.
  auto rows = store.Query({{"alice", "knows", "?x"}, {"?x", "knows", "?y"}}, &vars)
                  .ValueOrDie();
  ASSERT_EQ(rows.size(), 1u);  // only bob knows someone (carol)
  EXPECT_EQ(store.TermName(rows[0][0]), "bob");
  EXPECT_EQ(store.TermName(rows[0][1]), "carol");
}

TEST(TripleStoreQueryTest, RepeatedVariableMustUnify) {
  TripleStore store;
  store.Add("a", "likes", "a");
  store.Add("a", "likes", "b");
  std::vector<std::string> vars;
  // ?x likes ?x: only the self-loop.
  auto rows = store.Query({{"?x", "likes", "?x"}}, &vars).ValueOrDie();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(store.TermName(rows[0][0]), "a");
}

TEST(TripleStoreQueryTest, UnknownConstantYieldsEmpty) {
  TripleStore store = FamilyStore();
  std::vector<std::string> vars;
  auto rows = store.Query({{"zeus", "knows", "?x"}}, &vars).ValueOrDie();
  EXPECT_TRUE(rows.empty());
}

TEST(TripleStoreQueryTest, EmptyPatternRejected) {
  TripleStore store = FamilyStore();
  EXPECT_FALSE(store.Query({}, nullptr).ok());
}

TEST(TripleStoreQueryTest, TriangleJoin) {
  TripleStore store;
  store.Add("a", "e", "b");
  store.Add("b", "e", "c");
  store.Add("c", "e", "a");
  store.Add("a", "e", "c");  // extra chord
  std::vector<std::string> vars;
  auto rows = store.Query(
      {{"?x", "e", "?y"}, {"?y", "e", "?z"}, {"?z", "e", "?x"}}, &vars);
  ASSERT_TRUE(rows.ok());
  // Directed triangles: (a,b,c), (b,c,a), (c,a,b) -> 3 solutions.
  EXPECT_EQ(rows->size(), 3u);
}

TEST(NTriplesTest, RoundTrip) {
  TripleStore store = FamilyStore();
  std::string text = WriteNTriples(store);
  TripleStore parsed;
  auto added = ParseNTriples(text, &parsed);
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(*added, store.num_triples());
  EXPECT_TRUE(parsed.Contains("alice", "knows", "bob"));
  EXPECT_TRUE(parsed.Contains("alice", "age", "\"34\""));
}

TEST(NTriplesTest, ParsesIrisAndLiterals) {
  TripleStore store;
  auto n = ParseNTriples(
      "<http://ex.org/a> <http://ex.org/p> \"hello world\" .\n"
      "# comment\n"
      "<http://ex.org/a> <http://ex.org/q> <http://ex.org/b> .\n",
      &store);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  EXPECT_TRUE(store.Contains("http://ex.org/a", "http://ex.org/p",
                             "\"hello world\""));
}

TEST(NTriplesTest, LiteralEscapesAndDatatype) {
  TripleStore store;
  auto n = ParseNTriples(
      "<s> <p> \"line\\nbreak\"^^<http://www.w3.org/2001/XMLSchema#string> .\n",
      &store);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(store.num_triples(), 1u);
  EXPECT_TRUE(store.Contains("s", "p", "\"line\nbreak\""));
}

TEST(NTriplesTest, MalformedRejected) {
  TripleStore store;
  EXPECT_FALSE(ParseNTriples("<s> <p> .\n", &store).ok());      // missing term
  EXPECT_FALSE(ParseNTriples("<s> <p> <o>\n", &store).ok());    // missing dot
  EXPECT_FALSE(ParseNTriples("<s <p> <o> .\n", &store).ok());   // bad IRI
  EXPECT_FALSE(ParseNTriples("<s> <p> \"x .\n", &store).ok());  // bad literal
  EXPECT_FALSE(ParseNTriples("x", nullptr).ok());
}

TEST(NTriplesTest, DuplicatesNotDoubleCounted) {
  TripleStore store;
  auto n = ParseNTriples("<s> <p> <o> .\n<s> <p> <o> .\n", &store);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  EXPECT_EQ(store.num_triples(), 1u);
}

TEST(TripleStoreScaleTest, ManyTriplesIndexedConsistently) {
  TripleStore store;
  for (int i = 0; i < 500; ++i) {
    store.Add("s" + std::to_string(i % 50), "p" + std::to_string(i % 5),
              "o" + std::to_string(i));
  }
  EXPECT_EQ(store.num_triples(), 500u);
  TriplePattern p;
  p.predicate = *store.Lookup("p0");
  EXPECT_EQ(store.Match(p).size(), 100u);
  TriplePattern s;
  s.subject = *store.Lookup("s7");
  EXPECT_EQ(store.Match(s).size(), 10u);
}

}  // namespace
}  // namespace ubigraph::rdf
