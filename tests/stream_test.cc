#include <gtest/gtest.h>

#include "algorithms/connected_components.h"
#include "algorithms/triangle.h"
#include "common/random.h"
#include "stream/streaming_graph.h"

namespace ubigraph::stream {
namespace {

TEST(StreamingGraphTest, BasicIngest) {
  StreamingGraph g(5);
  ASSERT_TRUE(g.AddEdge(0, 1, 10).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 20).ok());
  EXPECT_EQ(g.num_live_edges(), 2u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.now(), 20u);
}

TEST(StreamingGraphTest, RejectsBadInput) {
  StreamingGraph g(3);
  EXPECT_TRUE(g.AddEdge(0, 9, 1).IsOutOfRange());
  EXPECT_TRUE(g.AddEdge(1, 1, 1).IsInvalid());  // self loop
  ASSERT_TRUE(g.AddEdge(0, 1, 100).ok());
  EXPECT_TRUE(g.AddEdge(1, 2, 50).IsInvalid());  // time goes back
  EXPECT_TRUE(g.Advance(10).IsInvalid());
}

TEST(StreamingGraphTest, WindowExpiry) {
  StreamingOptions opts;
  opts.window = 100;
  StreamingGraph g(5, opts);
  g.AddEdge(0, 1, 10).Abort();
  g.AddEdge(1, 2, 50).Abort();
  g.AddEdge(2, 3, 120).Abort();  // t=120 expires edges with ts < 20
  EXPECT_EQ(g.num_live_edges(), 2u);
  EXPECT_EQ(g.Degree(0), 0u);
  g.Advance(500).Abort();
  EXPECT_EQ(g.num_live_edges(), 0u);
  EXPECT_EQ(g.Degree(2), 0u);
}

TEST(StreamingGraphTest, TriangleCountIncremental) {
  StreamingGraph g(4);
  g.AddEdge(0, 1, 1).Abort();
  g.AddEdge(1, 2, 2).Abort();
  EXPECT_EQ(g.TriangleCount(), 0u);
  g.AddEdge(2, 0, 3).Abort();
  EXPECT_EQ(g.TriangleCount(), 1u);
  g.AddEdge(1, 3, 4).Abort();
  g.AddEdge(3, 0, 5).Abort();
  EXPECT_EQ(g.TriangleCount(), 2u);
}

TEST(StreamingGraphTest, TriangleCountDecrementsOnExpiry) {
  StreamingOptions opts;
  opts.window = 10;
  StreamingGraph g(3, opts);
  g.AddEdge(0, 1, 1).Abort();
  g.AddEdge(1, 2, 2).Abort();
  g.AddEdge(2, 0, 3).Abort();
  EXPECT_EQ(g.TriangleCount(), 1u);
  g.Advance(12).Abort();  // expires the t=1 edge
  EXPECT_EQ(g.TriangleCount(), 0u);
}

TEST(StreamingGraphTest, ParallelEdgesDontDoubleCountTriangles) {
  StreamingGraph g(3);
  g.AddEdge(0, 1, 1).Abort();
  g.AddEdge(0, 1, 2).Abort();  // parallel
  g.AddEdge(1, 2, 3).Abort();
  g.AddEdge(2, 0, 4).Abort();
  EXPECT_EQ(g.TriangleCount(), 1u);
}

TEST(StreamingGraphTest, ParallelEdgeExpiryKeepsTriangle) {
  StreamingOptions opts;
  opts.window = 10;
  StreamingGraph g(3, opts);
  g.AddEdge(0, 1, 1).Abort();   // will expire
  g.AddEdge(1, 2, 5).Abort();
  g.AddEdge(2, 0, 6).Abort();
  g.AddEdge(0, 1, 8).Abort();   // refresh the edge
  EXPECT_EQ(g.TriangleCount(), 1u);
  g.Advance(12).Abort();  // expires the t=1 copy; t=8 copy still live
  EXPECT_EQ(g.TriangleCount(), 1u);
  EXPECT_EQ(g.num_live_edges(), 3u);
}

TEST(StreamingGraphTest, ComponentsIncrementalOnInserts) {
  StreamingGraph g(6);
  EXPECT_EQ(g.NumComponents(), 6u);
  g.AddEdge(0, 1, 1).Abort();
  g.AddEdge(2, 3, 2).Abort();
  EXPECT_EQ(g.NumComponents(), 4u);
  EXPECT_TRUE(g.components_fresh());
  g.AddEdge(1, 2, 3).Abort();
  EXPECT_EQ(g.NumComponents(), 3u);
}

TEST(StreamingGraphTest, ComponentsRebuildAfterExpiry) {
  StreamingOptions opts;
  opts.window = 10;
  opts.rebuild_threshold = 1000;  // force lazy path
  StreamingGraph g(4, opts);
  g.AddEdge(0, 1, 1).Abort();
  g.AddEdge(1, 2, 2).Abort();
  g.AddEdge(2, 3, 3).Abort();
  EXPECT_EQ(g.NumComponents(), 1u);
  g.Advance(13).Abort();  // expires 0-1 and 1-2
  EXPECT_FALSE(g.components_fresh());
  EXPECT_EQ(g.NumComponents(), 3u);  // {0} {1} {2,3}
  EXPECT_TRUE(g.components_fresh());
}

TEST(StreamingGraphTest, EagerRebuildAfterThreshold) {
  StreamingOptions opts;
  opts.window = 5;
  opts.rebuild_threshold = 2;
  StreamingGraph g(4, opts);
  g.AddEdge(0, 1, 1).Abort();
  g.AddEdge(1, 2, 2).Abort();
  g.AddEdge(2, 3, 20).Abort();  // expires both old edges -> threshold hit
  EXPECT_TRUE(g.components_fresh());
  EXPECT_EQ(g.NumComponents(), 3u);
}

TEST(StreamingGraphTest, SnapshotMatchesBatchAnalytics) {
  Rng rng(5);
  StreamingOptions opts;
  opts.window = 1000;
  StreamingGraph g(30, opts);
  uint64_t t = 0;
  for (int i = 0; i < 300; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(30));
    VertexId v = static_cast<VertexId>(rng.NextBounded(30));
    if (u == v) continue;
    g.AddEdge(u, v, ++t).Abort();
  }
  CsrOptions copts;
  copts.directed = false;
  auto snapshot = CsrGraph::FromEdges(g.Snapshot(), copts).ValueOrDie();
  EXPECT_EQ(g.TriangleCount(), algo::CountTriangles(snapshot));
  EXPECT_EQ(g.NumComponents(),
            algo::WeaklyConnectedComponents(snapshot).num_components);
}

TEST(StreamingGraphTest, SlidingWindowMatchesBatchOverTime) {
  Rng rng(9);
  StreamingOptions opts;
  opts.window = 50;
  opts.rebuild_threshold = 4;
  StreamingGraph g(20, opts);
  for (uint64_t t = 1; t <= 400; ++t) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(20));
    VertexId v = static_cast<VertexId>(rng.NextBounded(20));
    if (u != v) g.AddEdge(u, v, t).Abort();
    if (t % 97 == 0) {
      CsrOptions copts;
      copts.directed = false;
      auto snapshot = CsrGraph::FromEdges(g.Snapshot(), copts).ValueOrDie();
      ASSERT_EQ(g.TriangleCount(), algo::CountTriangles(snapshot)) << "t=" << t;
      ASSERT_EQ(g.NumComponents(),
                algo::WeaklyConnectedComponents(snapshot).num_components);
    }
  }
}

TEST(StreamingGraphTest, MeanDegreeTracksWindow) {
  StreamingOptions opts;
  opts.window = 10;
  StreamingGraph g(4, opts);
  g.AddEdge(0, 1, 1).Abort();
  EXPECT_DOUBLE_EQ(g.MeanDegree(), 0.5);  // 2 endpoints / 4 vertices
  g.Advance(100).Abort();
  EXPECT_DOUBLE_EQ(g.MeanDegree(), 0.0);
}

}  // namespace
}  // namespace ubigraph::stream
