// Differential + planner + plan-cache tests for the vectorized Cypher engine.
//
// The row-at-a-time interpreter (ExecuteCypherInterpreted) is the semantics
// oracle: the vectorized engine must produce bitwise-identical results —
// same columns, same rows, same row ORDER — at every batch size, on every
// query, on every graph shape.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/label_csr.h"
#include "graph/property_graph.h"
#include "obs/metrics.h"
#include "query/cypher_executor.h"
#include "query/cypher_parser.h"
#include "query/eval_common.h"
#include "query/plan.h"
#include "query/plan_cache.h"
#include "query/planner.h"
#include "query/vector_executor.h"

namespace ubigraph::query {
namespace {

// ---------------------------------------------------------------------------
// Differential harness

std::string DescribeRows(const QueryResult& r) {
  std::string out;
  for (const auto& row : r.rows) {
    out += "[";
    for (const PropertyValue& v : row) {
      out += ValueToString(v);
      out += ", ";
    }
    out += "]\n";
  }
  return out;
}

void ExpectIdentical(const PropertyGraph& g, const std::string& text) {
  Result<CypherQuery> parsed = ParseCypher(text);
  if (!parsed.ok()) {
    // Parse errors are shared by both engines; nothing to compare.
    Result<QueryResult> vec = RunCypher(g, text, {.vectorized = true});
    ASSERT_FALSE(vec.ok()) << text;
    return;
  }
  Result<QueryResult> oracle = ExecuteCypherInterpreted(g, *parsed);
  for (size_t batch : {size_t{1}, size_t{7}, size_t{1024}}) {
    Result<QueryResult> vec =
        ExecuteCypher(g, *parsed, {.vectorized = true, .batch_size = batch});
    ASSERT_EQ(oracle.ok(), vec.ok())
        << text << " (batch=" << batch << "): oracle "
        << (oracle.ok() ? "ok" : oracle.status().message()) << ", vectorized "
        << (vec.ok() ? "ok" : vec.status().message());
    if (!oracle.ok()) {
      EXPECT_EQ(oracle.status().message(), vec.status().message()) << text;
      continue;
    }
    EXPECT_EQ(oracle->columns, vec->columns) << text;
    EXPECT_EQ(oracle->rows, vec->rows)
        << text << " (batch=" << batch << ")\noracle:\n"
        << DescribeRows(*oracle) << "vectorized:\n"
        << DescribeRows(*vec);
  }
}

// The same five-vertex social/product graph query_test.cc uses.
PropertyGraph SampleGraph() {
  PropertyGraph g;
  VertexId alice = g.AddVertex("Person");
  VertexId bob = g.AddVertex("Person");
  VertexId carol = g.AddVertex("Person");
  VertexId laptop = g.AddVertex("Product");
  VertexId phone = g.AddVertex("Product");
  g.SetVertexProperty(alice, "name", std::string("alice")).Abort();
  g.SetVertexProperty(alice, "age", static_cast<int64_t>(34)).Abort();
  g.SetVertexProperty(bob, "name", std::string("bob")).Abort();
  g.SetVertexProperty(bob, "age", static_cast<int64_t>(29)).Abort();
  g.SetVertexProperty(carol, "name", std::string("carol")).Abort();
  g.SetVertexProperty(carol, "age", static_cast<int64_t>(41)).Abort();
  g.SetVertexProperty(laptop, "name", std::string("laptop")).Abort();
  g.SetVertexProperty(laptop, "price", 1200.0).Abort();
  g.SetVertexProperty(phone, "name", std::string("phone")).Abort();
  g.SetVertexProperty(phone, "price", 800.0).Abort();
  g.AddEdge(alice, bob, "knows").ValueOrDie();
  g.AddEdge(bob, carol, "knows").ValueOrDie();
  g.AddEdge(alice, laptop, "bought").ValueOrDie();
  g.AddEdge(bob, laptop, "bought").ValueOrDie();
  g.AddEdge(carol, phone, "bought").ValueOrDie();
  return g;
}

// Every executor query from query_test.cc, plus shapes that stress the
// planner's join reordering, direction flipping, and fallback paths.
const char* const kCorpus[] = {
    // --- query_test.cc coverage ---
    "MATCH (p:Person) RETURN p.name",
    "MATCH (a:Person)-[:knows]->(b:Person) RETURN a.name, b.name",
    "MATCH (a:Person)<-[:knows]-(b:Person) RETURN a.name, b.name",
    "MATCH (a:Person)-[:knows]-(b:Person) RETURN a.name, b.name",
    "MATCH (p:Person) WHERE p.age > 30 RETURN p.name",
    "MATCH (p:Person) WHERE p.name = 'bob' RETURN p.age",
    "MATCH (p:Person) WHERE p.age <> 29 RETURN p.name",
    "MATCH (p:Person {age: 29}) RETURN p.name",
    "MATCH (a:Person)-[:knows]->(b:Person)-[:knows]->(c:Person) "
    "RETURN a.name, c.name",
    "MATCH (p:Person)-[:bought]->(x:Product) RETURN count(*)",
    "MATCH (p:Person) RETURN p.name, p.age ORDER BY p.age DESC",
    "MATCH (p:Person) RETURN p.name ORDER BY p.name LIMIT 2",
    "MATCH (p:Person) WHERE p.age > 29.5 RETURN p.name",
    "MATCH (p:Product) WHERE p.price < 1000 RETURN p.name",
    "MATCH (p:Ghost) RETURN p.name",
    // --- planner stress ---
    "MATCH (a:Person {name: 'alice'})-[:knows*1..3]->(b) RETURN b.name",
    "MATCH (a)-[:knows*1..3]->(b:Product) RETURN a.name",
    "MATCH (a)-[:knows*1..2]->(b:Person {name: 'carol'}) RETURN a.name",
    "MATCH (a:Person)-[:knows*2..2]->(c) RETURN a.name, c.name",
    "MATCH (a:Person)-[*1..2]-(b:Product) RETURN a.name, b.name",
    "MATCH (a)-[:knows]->(a) RETURN a",
    "MATCH (a:Person), (b:Product) RETURN count(*)",
    "MATCH (a:Person), (b:Product) WHERE a.age > 30 RETURN a.name, b.name",
    "MATCH (p:Person)-[:bought]->(x)<-[:bought]-(q:Person) "
    "WHERE p.name < q.name RETURN p.name, q.name, x.name",
    "MATCH (a:Person)-[:knows]->(b)-[:bought]->(x:Product) "
    "RETURN a.name, x.name ORDER BY x.name DESC",
    "MATCH (p:Person) RETURN p.name, count(*)",
    "MATCH (p:Person) RETURN p",
    "MATCH (p) RETURN count(*)",
    "MATCH (p:Person) RETURN p.name LIMIT 0",
    "MATCH (p:Person) RETURN p.age ORDER BY p.age LIMIT 0",
    "MATCH (p:Person) RETURN p.name LIMIT 1",
    "MATCH (p:Person) WHERE p.age > 25 RETURN count(*) LIMIT 1",
    "MATCH (p:Person) WHERE p.nosuchkey = 1 RETURN p.name",
    "MATCH (p:Person) RETURN p.nosuchkey",
    "MATCH (p:Person)-[:nosuchtype]->(q) RETURN p.name",
    "MATCH (p:Person {name: 30}) RETURN p.name",  // exact-variant: no match
    "MATCH (p:Person) WHERE p.age = 34.0 RETURN p.name",  // numeric compare
    "MATCH (p:Person) WHERE 1 < 2 RETURN p.name",  // literal-only WHERE
    "MATCH (p:Person) WHERE p.name > p.age RETURN p.name",  // incomparable
    "MATCH (a:Person)-[:knows]->(b) WHERE a.age > b.age RETURN a.name",
};

TEST(VectorizedDifferential, SampleGraphCorpus) {
  PropertyGraph g = SampleGraph();
  for (const char* text : kCorpus) {
    ExpectIdentical(g, text);
  }
}

TEST(VectorizedDifferential, SharedErrors) {
  PropertyGraph g = SampleGraph();
  // Validation errors must be byte-identical between engines.
  ExpectIdentical(g, "MATCH (p:Person) WHERE q.age > 1 RETURN p");
  ExpectIdentical(g, "MATCH (p:Person) RETURN q.name");
  ExpectIdentical(g, "MATCH (p:Person) RETURN p.name ORDER BY p.age");
}

// Deterministic labels/properties over a generated topology: label L0/L1/L2
// by vertex id mod 3, integer property "w" = v * 7 % 50, edge types t0/t1 by
// edge index parity.
PropertyGraph FromEdgeList(const EdgeList& el) {
  PropertyGraph g;
  for (VertexId v = 0; v < el.num_vertices(); ++v) {
    VertexId id = g.AddVertex("L" + std::to_string(v % 3));
    g.SetVertexProperty(id, "w", static_cast<int64_t>(v * 7 % 50)).Abort();
  }
  size_t i = 0;
  for (const Edge& e : el.edges()) {
    g.AddEdge(e.src, e.dst, i++ % 2 == 0 ? "t0" : "t1").ValueOrDie();
  }
  return g;
}

const char* const kShapeCorpus[] = {
    "MATCH (a:L0)-[:t0]->(b:L1) RETURN count(*)",
    "MATCH (a:L0)-[:t0]->(b)-[:t1]->(c:L2) WHERE a.w < 20 RETURN count(*)",
    "MATCH (a:L1)-[]-(b:L1) RETURN count(*)",
    "MATCH (a:L2 {w: 14})-[:t0*1..2]->(b) RETURN b ORDER BY b",
    "MATCH (a)-[:t1]->(a) RETURN count(*)",
    "MATCH (a:L0) WHERE a.w >= 28 RETURN a.w ORDER BY a.w DESC LIMIT 5",
};

TEST(VectorizedDifferential, RmatShape) {
  Rng rng(42);
  EdgeList el = gen::Rmat(/*scale=*/6, /*num_edges=*/256, &rng).ValueOrDie();
  PropertyGraph g = FromEdgeList(el);
  for (const char* text : kShapeCorpus) ExpectIdentical(g, text);
}

TEST(VectorizedDifferential, PathShape) {
  PropertyGraph g = FromEdgeList(gen::Path(40));
  for (const char* text : kShapeCorpus) ExpectIdentical(g, text);
  // Long chains exercise the var-length BFS hop window.
  ExpectIdentical(g, "MATCH (a:L0)-[*2..4]->(b) RETURN count(*)");
}

TEST(VectorizedDifferential, BipartiteSkewedShape) {
  Rng rng(7);
  EdgeList el =
      gen::BipartiteSkewed(/*left=*/8, /*right=*/60, /*num_edges=*/200,
                           /*skew=*/1.2, &rng)
          .ValueOrDie();
  PropertyGraph g = FromEdgeList(el);
  for (const char* text : kShapeCorpus) ExpectIdentical(g, text);
}

TEST(VectorizedDifferential, EmptyGraph) {
  PropertyGraph g;
  ExpectIdentical(g, "MATCH (p) RETURN count(*)");
  ExpectIdentical(g, "MATCH (p:Person)-[:knows]->(q) RETURN p.name");
}

// ---------------------------------------------------------------------------
// Planner unit tests

TEST(Planner, StartsFromRareLabelAndExpandsTowardHub) {
  // 100 Hub vertices, 2 Rare vertices, edges Rare -> Hub: the cheap plan
  // scans Rare and expands forward, never scanning all Hubs.
  PropertyGraph g;
  std::vector<VertexId> hubs;
  for (int i = 0; i < 100; ++i) hubs.push_back(g.AddVertex("Hub"));
  for (int i = 0; i < 2; ++i) {
    VertexId r = g.AddVertex("Rare");
    for (int j = 0; j < 10; ++j) {
      g.AddEdge(r, hubs[(i * 10 + j) % hubs.size()], "links").ValueOrDie();
    }
  }
  LabelCsrView view = LabelCsrView::Build(g);
  CypherQuery q =
      ParseCypher("MATCH (h:Hub)<-[:links]-(r:Rare) RETURN count(*)")
          .ValueOrDie();
  PlannedQuery planned = PlanQuery(g, view.stats(), q).ValueOrDie();
  EXPECT_EQ(planned.plan.DebugString(), "Scan(r) Expand(r->h)");
  // And the reverse phrasing picks the same join order.
  CypherQuery q2 =
      ParseCypher("MATCH (r:Rare)-[:links]->(h:Hub) RETURN count(*)")
          .ValueOrDie();
  PlannedQuery planned2 = PlanQuery(g, view.stats(), q2).ValueOrDie();
  EXPECT_EQ(planned2.plan.DebugString(), "Scan(r) Expand(r->h)");
}

TEST(Planner, PropertyFilterMakesScanCheaper) {
  // Equal label counts, but a property filter shrinks one side's estimate.
  PropertyGraph g;
  for (int i = 0; i < 20; ++i) g.AddVertex("A");
  for (int i = 0; i < 20; ++i) g.AddVertex("B");
  g.AddEdge(0, 20, "e").ValueOrDie();
  LabelCsrView view = LabelCsrView::Build(g);
  CypherQuery q =
      ParseCypher("MATCH (a:A)-[:e]->(b:B {name: 'x'}) RETURN count(*)")
          .ValueOrDie();
  PlannedQuery planned = PlanQuery(g, view.stats(), q).ValueOrDie();
  EXPECT_EQ(planned.plan.DebugString(), "Scan(b) Expand(b->a)");
}

TEST(Planner, MissingLabelPlansToZeroRows) {
  PropertyGraph g = SampleGraph();
  LabelCsrView view = LabelCsrView::Build(g);
  CypherQuery q =
      ParseCypher("MATCH (p:Ghost)-[:knows]->(q:Person) RETURN count(*)")
          .ValueOrDie();
  PlannedQuery planned = PlanQuery(g, view.stats(), q).ValueOrDie();
  ASSERT_FALSE(planned.plan.steps.empty());
  // The unknown label resolves to the no-match sentinel, not an error.
  EXPECT_EQ(planned.plan.steps[0].label_id, kNoSuchId);
  QueryResult r =
      ExecutePlan(g, view, planned.plan, planned.params, 1024).ValueOrDie();
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(r.rows[0][0]), 0);
}

TEST(Planner, EmptyGraphPlansGracefully) {
  PropertyGraph g;
  LabelCsrView view = LabelCsrView::Build(g);
  CypherQuery q =
      ParseCypher("MATCH (a:X)-[:y*1..3]->(b) RETURN count(*)").ValueOrDie();
  PlannedQuery planned = PlanQuery(g, view.stats(), q).ValueOrDie();
  QueryResult r =
      ExecutePlan(g, view, planned.plan, planned.params, 1024).ValueOrDie();
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(r.rows[0][0]), 0);
}

TEST(Planner, ReversedVarLengthIsNotDrivenBackward) {
  // Var-length edges are forward-only: when only the destination is bound,
  // the planner must not emit a backward VarExpand (BFS direction is not
  // symmetric over the hop window). It may scan + pair-check instead; the
  // differential corpus pins the results, here we pin the plan shape.
  PropertyGraph g = SampleGraph();
  LabelCsrView view = LabelCsrView::Build(g);
  CypherQuery q =
      ParseCypher("MATCH (a)-[:knows*1..3]->(b:Product {name: 'phone'}) "
                  "RETURN a.name")
          .ValueOrDie();
  PlannedQuery planned = PlanQuery(g, view.stats(), q).ValueOrDie();
  for (const PlanStep& step : planned.plan.steps) {
    if (step.kind != PlanStep::Kind::kVarExpand) continue;
    // Any VarExpand present must drive from the pattern's `from` side.
    EXPECT_EQ(planned.plan.slot_names[step.from_slot], "a");
  }
}

// ---------------------------------------------------------------------------
// Normalizer unit tests

TEST(NormalizeCypher, LiteralsBecomeParams) {
  NormalizedQuery a =
      NormalizeCypher("MATCH (p:Person {name: 'alice'}) WHERE p.age > 30 "
                      "RETURN p.name LIMIT 5")
          .ValueOrDie();
  NormalizedQuery b =
      NormalizeCypher("MATCH (p:Person {name: 'bob'}) WHERE p.age > 99 "
                      "RETURN p.name LIMIT 2")
          .ValueOrDie();
  EXPECT_EQ(a.key, b.key);
  ASSERT_EQ(a.params.size(), 3u);
  EXPECT_EQ(std::get<std::string>(a.params[0]), "alice");
  EXPECT_EQ(std::get<int64_t>(a.params[1]), 30);
  EXPECT_EQ(std::get<int64_t>(a.params[2]), 5);
  EXPECT_EQ(std::get<std::string>(b.params[0]), "bob");
}

TEST(NormalizeCypher, HopBoundsStayInKey) {
  NormalizedQuery a =
      NormalizeCypher("MATCH (a)-[:k*1..2]->(b) RETURN b").ValueOrDie();
  NormalizedQuery b =
      NormalizeCypher("MATCH (a)-[:k*1..3]->(b) RETURN b").ValueOrDie();
  EXPECT_NE(a.key, b.key);
  EXPECT_TRUE(a.params.empty());
}

TEST(NormalizeCypher, BooleansParameterizedOnlyInLiteralPositions) {
  // Literal positions: property-map value, comparator operand.
  NormalizedQuery lit =
      NormalizeCypher("MATCH (p {active: true}) WHERE p.flag = false RETURN p")
          .ValueOrDie();
  ASSERT_EQ(lit.params.size(), 2u);
  EXPECT_EQ(std::get<bool>(lit.params[0]), true);
  EXPECT_EQ(std::get<bool>(lit.params[1]), false);
  // Identifier positions: `true` as a variable/label stays in the key.
  NormalizedQuery ident =
      NormalizeCypher("MATCH (true:Person) RETURN true").ValueOrDie();
  EXPECT_TRUE(ident.params.empty());
  EXPECT_NE(ident.key.find("true"), std::string::npos);
}

TEST(NormalizeCypher, IdentifiersAreCaseSensitiveKeywordsAreNot) {
  // Keyword case differences produce different keys (no folding — correct
  // over clever), so they simply cache as separate shapes.
  NormalizedQuery upper = NormalizeCypher("MATCH (n) RETURN n").ValueOrDie();
  NormalizedQuery lower = NormalizeCypher("match (n) return n").ValueOrDie();
  EXPECT_NE(upper.key, lower.key);
  // Variable case differences MUST key separately.
  NormalizedQuery var_upper = NormalizeCypher("MATCH (N) RETURN N").ValueOrDie();
  EXPECT_NE(upper.key, var_upper.key);
}

TEST(NormalizeCypher, WhitespaceInsensitive) {
  NormalizedQuery a =
      NormalizeCypher("MATCH (p:Person) RETURN p.name").ValueOrDie();
  NormalizedQuery b =
      NormalizeCypher("  MATCH   (p:Person)\n\tRETURN p.name  ").ValueOrDie();
  EXPECT_EQ(a.key, b.key);
}

// ---------------------------------------------------------------------------
// QueryEngine: plan cache, rebinding, invalidation

std::vector<std::string> Names(const QueryResult& r) {
  std::vector<std::string> out;
  for (const auto& row : r.rows) out.push_back(std::get<std::string>(row[0]));
  return out;
}

TEST(QueryEngine, CacheHitRebindsParameters) {
  PropertyGraph g = SampleGraph();
  QueryEngine engine(g);
  QueryResult r1 =
      engine
          .Run("MATCH (p:Person {name: 'alice'})-[:knows]->(q) RETURN q.name")
          .ValueOrDie();
  EXPECT_EQ(Names(r1), std::vector<std::string>{"bob"});
  EXPECT_EQ(engine.stats().cache_misses, 1u);
  EXPECT_EQ(engine.stats().cache_hits, 0u);
  // Same shape, different literal: must hit and return the OTHER answer.
  QueryResult r2 =
      engine.Run("MATCH (p:Person {name: 'bob'})-[:knows]->(q) RETURN q.name")
          .ValueOrDie();
  EXPECT_EQ(Names(r2), std::vector<std::string>{"carol"});
  EXPECT_EQ(engine.stats().cache_hits, 1u);
  EXPECT_EQ(engine.cache_size(), 1u);
}

TEST(QueryEngine, CacheHitDoesZeroParseAndPlanWork) {
  PropertyGraph g = SampleGraph();
  QueryEngine engine(g);
  engine.Run("MATCH (p:Person) WHERE p.age > 30 RETURN p.name LIMIT 2")
      .ValueOrDie();
  const int64_t parses = obs::CounterValue("query.plan.parses");
  const int64_t plans = obs::CounterValue("query.plan.plans");
  const int64_t hits = obs::CounterValue("query.plan.cache_hits");
  // Different literals, same shape: the hit path must not parse or plan.
  engine.Run("MATCH (p:Person) WHERE p.age > 28 RETURN p.name LIMIT 1")
      .ValueOrDie();
  EXPECT_EQ(obs::CounterValue("query.plan.parses"), parses);
  EXPECT_EQ(obs::CounterValue("query.plan.plans"), plans);
  EXPECT_EQ(obs::CounterValue("query.plan.cache_hits"), hits + 1);
}

TEST(QueryEngine, LimitRebindsThroughCache) {
  PropertyGraph g = SampleGraph();
  QueryEngine engine(g);
  QueryResult r1 =
      engine.Run("MATCH (p:Person) RETURN p.name ORDER BY p.name LIMIT 1")
          .ValueOrDie();
  QueryResult r2 =
      engine.Run("MATCH (p:Person) RETURN p.name ORDER BY p.name LIMIT 3")
          .ValueOrDie();
  EXPECT_EQ(engine.stats().cache_hits, 1u);
  EXPECT_EQ(r1.rows.size(), 1u);
  EXPECT_EQ(r2.rows.size(), 3u);
}

TEST(QueryEngine, MatchesOneShotExecutionOnCorpus) {
  PropertyGraph g = SampleGraph();
  QueryEngine engine(g);
  for (const char* text : kCorpus) {
    Result<QueryResult> direct = RunCypher(g, text);
    Result<QueryResult> cached = engine.Run(text);
    ASSERT_EQ(direct.ok(), cached.ok()) << text;
    if (!direct.ok()) continue;
    EXPECT_EQ(direct->rows, cached->rows) << text;
  }
  // Second pass: everything cacheable now hits, results unchanged.
  const uint64_t misses = engine.stats().cache_misses;
  for (const char* text : kCorpus) {
    Result<QueryResult> direct = RunCypher(g, text);
    Result<QueryResult> cached = engine.Run(text);
    ASSERT_EQ(direct.ok(), cached.ok()) << text;
    if (!direct.ok()) continue;
    EXPECT_EQ(direct->rows, cached->rows) << text;
  }
  EXPECT_EQ(engine.stats().cache_misses, misses);
  EXPECT_GT(engine.stats().cache_hits, 0u);
}

TEST(QueryEngine, AddEdgeInvalidatesStalePlan) {
  PropertyGraph g = SampleGraph();
  QueryEngine engine(g);
  const std::string q =
      "MATCH (a:Person {name: 'carol'})-[:knows]->(b) RETURN b.name";
  EXPECT_TRUE(engine.Run(q).ValueOrDie().rows.empty());
  // Mutate: carol now knows alice. A stale plan (or stale CSR view) would
  // keep returning zero rows.
  g.AddEdge(2, 0, "knows").ValueOrDie();
  EXPECT_EQ(Names(engine.Run(q).ValueOrDie()),
            std::vector<std::string>{"alice"});
  EXPECT_EQ(engine.stats().stats_rebuilds, 2u);
  EXPECT_EQ(engine.stats().cache_hits, 0u);  // cache was dropped
}

TEST(QueryEngine, SetPropertyInvalidatesStalePlan) {
  PropertyGraph g = SampleGraph();
  QueryEngine engine(g);
  const std::string q = "MATCH (p:Person) WHERE p.age > 40 RETURN p.name";
  EXPECT_EQ(Names(engine.Run(q).ValueOrDie()),
            std::vector<std::string>{"carol"});
  g.SetVertexProperty(1, "age", static_cast<int64_t>(50)).Abort();
  QueryResult r = engine.Run(q).ValueOrDie();
  EXPECT_EQ(Names(r), (std::vector<std::string>{"bob", "carol"}));
}

TEST(QueryEngine, NewLabelAfterCachedPlanIsPickedUp) {
  // A plan compiled while "Ghost" was unknown resolves the label to the
  // no-match sentinel. Once a Ghost vertex exists the old plan would be
  // wrong — invalidation must recompile, not rebind.
  PropertyGraph g = SampleGraph();
  QueryEngine engine(g);
  const std::string q = "MATCH (p:Ghost) RETURN count(*)";
  EXPECT_EQ(std::get<int64_t>(engine.Run(q).ValueOrDie().rows[0][0]), 0);
  g.AddVertex("Ghost");
  EXPECT_EQ(std::get<int64_t>(engine.Run(q).ValueOrDie().rows[0][0]), 1);
}

TEST(QueryEngine, InterpreterModePassesThrough) {
  PropertyGraph g = SampleGraph();
  QueryEngine engine(g, {.vectorized = false});
  QueryResult r =
      engine.Run("MATCH (p:Person) RETURN p.name ORDER BY p.name").ValueOrDie();
  EXPECT_EQ(Names(r), (std::vector<std::string>{"alice", "bob", "carol"}));
  // No caching in interpreter mode.
  engine.Run("MATCH (p:Person) RETURN p.name ORDER BY p.name").ValueOrDie();
  EXPECT_EQ(engine.stats().cache_hits, 0u);
  EXPECT_EQ(engine.cache_size(), 0u);
}

TEST(QueryEngine, ErrorsMatchRunCypher) {
  PropertyGraph g = SampleGraph();
  QueryEngine engine(g);
  for (const char* text :
       {"MATCH", "MATCH (p RETURN p", "MATCH (p) RETURN q",
        "MATCH (p) WHERE z.x > 1 RETURN p", "RETURN 1", ""}) {
    Result<QueryResult> direct = RunCypher(g, text);
    Result<QueryResult> cached = engine.Run(text);
    ASSERT_FALSE(direct.ok()) << text;
    ASSERT_FALSE(cached.ok()) << text;
    EXPECT_EQ(direct.status().message(), cached.status().message()) << text;
  }
}

TEST(QueryEngine, CacheIsBounded) {
  PropertyGraph g = SampleGraph();
  QueryEngine engine(g);
  for (size_t i = 0; i < QueryEngine::kMaxCachedPlans + 10; ++i) {
    // Distinct shapes: variable names stay in the key.
    std::string q =
        "MATCH (v" + std::to_string(i) + ":Person) RETURN count(*)";
    ASSERT_TRUE(engine.Run(q).ok()) << q;
  }
  EXPECT_LE(engine.cache_size(), QueryEngine::kMaxCachedPlans);
}

// ---------------------------------------------------------------------------
// LabelCsrView statistics

TEST(LabelCsr, StatsCountLabelsAndDegrees) {
  PropertyGraph g = SampleGraph();
  LabelCsrView view = LabelCsrView::Build(g);
  const LabelCsrView::Stats& s = view.stats();
  auto person = g.labels().Lookup("Person");
  auto product = g.labels().Lookup("Product");
  auto knows = g.labels().Lookup("knows");
  ASSERT_TRUE(person && product && knows);
  EXPECT_EQ(s.LabelCount(*person), 3u);
  EXPECT_EQ(s.LabelCount(*product), 2u);
  EXPECT_EQ(s.LabelCount(LabelCsrView::kAnyLabel), 5u);
  // alice->bob, bob->carol: 2 knows arcs leaving 3 Persons.
  EXPECT_NEAR(s.AvgDegree(*person, *knows, /*out=*/true), 2.0 / 3.0, 1e-9);
  EXPECT_EQ(s.AvgDegree(*product, *knows, /*out=*/true), 0.0);
  EXPECT_EQ(s.LabelCount(kNoSuchId), 0u);
}

TEST(LabelCsr, ParallelEdgesDeduplicated) {
  PropertyGraph g;
  VertexId a = g.AddVertex("A");
  VertexId b = g.AddVertex("A");
  g.AddEdge(a, b, "e").ValueOrDie();
  g.AddEdge(a, b, "e").ValueOrDie();  // parallel duplicate
  g.AddEdge(a, b, "e").ValueOrDie();
  LabelCsrView view = LabelCsrView::Build(g);
  auto e = g.labels().Lookup("e");
  ASSERT_TRUE(e);
  EXPECT_EQ(view.OutNeighbors(a, *e).size(), 1u);
  EXPECT_EQ(view.InNeighbors(b, *e).size(), 1u);
  // Distinct neighbor tuples, so the homomorphism count is 1 either way.
  QueryResult r = RunCypher(g, "MATCH (x)-[:e]->(y) RETURN count(*)",
                            {.vectorized = true})
                      .ValueOrDie();
  QueryResult ri = RunCypher(g, "MATCH (x)-[:e]->(y) RETURN count(*)",
                             {.vectorized = false})
                       .ValueOrDie();
  EXPECT_EQ(r.rows, ri.rows);
}

}  // namespace
}  // namespace ubigraph::query
