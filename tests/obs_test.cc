// Unit tests for the observability subsystem (src/obs/): counter, gauge, and
// histogram semantics; shard merging under concurrent writers (run under TSan
// via ci/sanitize.sh); scoped-trace nesting and ring-buffer bounds; and the
// JSON exporters (Chrome trace + StatsSnapshot), validated by parsing the
// output back with io::ParseJsonValue.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "io/json_value.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "obs/trace.h"

namespace ubigraph::obs {
namespace {

// Each test works against its own registry/sink where possible; tests that
// exercise Global() reset it so order does not matter.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().Reset();
    MetricsRegistry::Global().set_enabled(true);
    TraceSink::Global().Clear();
    TraceSink::Global().set_enabled(true);
  }
};

TEST_F(ObsTest, CounterStartsAtZeroAndAccumulates) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("test.counter");
  EXPECT_EQ(c->Value(), 0);
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->Value(), 42);
  c->Add(-2);  // deltas may be negative (e.g. corrections)
  EXPECT_EQ(c->Value(), 40);
}

TEST_F(ObsTest, RegistryReturnsStableHandleForSameName) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("same");
  Counter* b = reg.GetCounter("same");
  EXPECT_EQ(a, b);
  EXPECT_NE(reg.GetCounter("other"), a);
  EXPECT_EQ(a->name(), "same");
}

TEST_F(ObsTest, CounterMergesShardsFromConcurrentWriters) {
  // 8 writers hammer one counter; the merged value must equal the exact
  // total and the per-shard breakdown must sum to it. TSan-clean by design:
  // every shard access is atomic.
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("concurrent");
  constexpr int kWriters = 8;
  constexpr int kPerWriter = 100000;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([c] {
      for (int i = 0; i < kPerWriter; ++i) c->Increment();
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(c->Value(), int64_t{kWriters} * kPerWriter);
  std::vector<int64_t> shards = c->ShardValues();
  ASSERT_EQ(shards.size(), kNumShards);
  int64_t shard_sum = 0;
  for (int64_t v : shards) shard_sum += v;
  EXPECT_EQ(shard_sum, c->Value());
}

TEST_F(ObsTest, GaugeSetAddAndHighWater) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("depth");
  EXPECT_EQ(g->Value(), 0);
  g->Set(7);
  EXPECT_EQ(g->Value(), 7);
  g->Add(3);
  EXPECT_EQ(g->Value(), 10);
  g->UpdateMax(5);  // lower: no change
  EXPECT_EQ(g->Value(), 10);
  g->UpdateMax(25);  // higher: raises
  EXPECT_EQ(g->Value(), 25);
}

TEST_F(ObsTest, GaugeUpdateMaxIsMonotonicUnderContention) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("hwm");
  std::vector<std::thread> writers;
  for (int w = 0; w < 8; ++w) {
    writers.emplace_back([g, w] {
      for (int i = 0; i < 20000; ++i) g->UpdateMax(w * 20000 + i);
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(g->Value(), 7 * 20000 + 19999);
}

TEST_F(ObsTest, HistogramEmptySnapshot) {
  MetricsRegistry reg;
  LatencyHistogram* h = reg.GetHistogram("empty");
  LatencyHistogram::Snapshot s = h->Merge();
  EXPECT_EQ(s.count, 0);
  EXPECT_EQ(s.sum, 0);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.Percentile(0.5), 0);
}

TEST_F(ObsTest, HistogramRecordsExactCountSumMinMax) {
  MetricsRegistry reg;
  LatencyHistogram* h = reg.GetHistogram("lat");
  for (int64_t v : {3, 10, 100, 1000, 64}) h->Record(v);
  LatencyHistogram::Snapshot s = h->Merge();
  EXPECT_EQ(s.count, 5);
  EXPECT_EQ(s.sum, 3 + 10 + 100 + 1000 + 64);
  EXPECT_EQ(s.min, 3);
  EXPECT_EQ(s.max, 1000);
  EXPECT_DOUBLE_EQ(s.mean(), (3 + 10 + 100 + 1000 + 64) / 5.0);
}

TEST_F(ObsTest, HistogramPercentilesAreBucketAccurate) {
  // 100 samples of value 10 and one of 10000: p50/p90 land in 10's bucket
  // (upper bound 15 = 2^4 - 1), p99... still in 10's bucket at rank 101*0.99
  // = 100th sample; the outlier is only visible at max.
  MetricsRegistry reg;
  LatencyHistogram* h = reg.GetHistogram("p");
  for (int i = 0; i < 100; ++i) h->Record(10);
  h->Record(10000);
  LatencyHistogram::Snapshot s = h->Merge();
  EXPECT_EQ(s.Percentile(0.50), 15);  // bucket [8, 16) upper bound
  EXPECT_EQ(s.Percentile(0.90), 15);
  EXPECT_EQ(s.max, 10000);
  // p100 must reach the outlier's bucket, capped at the observed max.
  EXPECT_EQ(s.Percentile(1.0), 10000);
}

TEST_F(ObsTest, HistogramBucketBoundsArePowersOfTwo) {
  EXPECT_EQ(LatencyHistogram::Snapshot::BucketUpperBound(0), 0);
  EXPECT_EQ(LatencyHistogram::Snapshot::BucketUpperBound(1), 1);
  EXPECT_EQ(LatencyHistogram::Snapshot::BucketUpperBound(4), 15);
  EXPECT_EQ(LatencyHistogram::Snapshot::BucketUpperBound(10), 1023);
}

TEST_F(ObsTest, HistogramMergesConcurrentRecorders) {
  MetricsRegistry reg;
  LatencyHistogram* h = reg.GetHistogram("mt");
  constexpr int kWriters = 8;
  constexpr int kPerWriter = 50000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([h] {
      for (int i = 1; i <= kPerWriter; ++i) h->Record(i);
    });
  }
  for (auto& t : writers) t.join();
  LatencyHistogram::Snapshot s = h->Merge();
  EXPECT_EQ(s.count, int64_t{kWriters} * kPerWriter);
  EXPECT_EQ(s.sum, int64_t{kWriters} * kPerWriter * (kPerWriter + 1) / 2);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, kPerWriter);
}

TEST_F(ObsTest, RegistryResetZeroesValuesButKeepsHandles) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("r.c");
  Gauge* g = reg.GetGauge("r.g");
  LatencyHistogram* h = reg.GetHistogram("r.h");
  c->Add(5);
  g->Set(9);
  h->Record(123);
  reg.Reset();
  EXPECT_EQ(c->Value(), 0);
  EXPECT_EQ(g->Value(), 0);
  EXPECT_EQ(h->Merge().count, 0);
  // Handles stay registered and usable.
  EXPECT_EQ(reg.GetCounter("r.c"), c);
  c->Increment();
  EXPECT_EQ(c->Value(), 1);
}

TEST_F(ObsTest, DisabledRegistryMakesFlushHelpersNoOps) {
  MetricsRegistry::Global().set_enabled(false);
  AddCounter("disabled.counter", 10);
  SetGauge("disabled.gauge", 10);
  RecordLatency("disabled.hist", 10);
  MetricsRegistry::Global().set_enabled(true);
  // The helpers must not have registered or recorded anything.
  StatsSnapshot snap = StatsSnapshot::Capture();
  EXPECT_EQ(snap.FindCounter("disabled.counter"), nullptr);
  EXPECT_EQ(snap.FindGauge("disabled.gauge"), nullptr);
  EXPECT_EQ(snap.FindHistogram("disabled.hist"), nullptr);
}

TEST_F(ObsTest, ForEachVisitsInNameOrder) {
  MetricsRegistry reg;
  reg.GetCounter("b");
  reg.GetCounter("a");
  reg.GetCounter("c");
  std::vector<std::string> names;
  reg.ForEachCounter([&](const Counter& c) { names.push_back(c.name()); });
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "c"}));
}

// ---------------------------------------------------------------------------
// Tracing.

TEST_F(ObsTest, ScopedTraceRecordsNestedSpansWithDepth) {
  TraceSink sink(64);
  {
    ScopedTrace outer("outer", "test", &sink);
    {
      ScopedTrace inner("inner", "test", &sink);
    }
  }
  std::vector<TraceEvent> events = sink.Events();
  ASSERT_EQ(events.size(), 2u);
  // Children close first, so the inner span is recorded first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[0].category, "test");
  // The outer span brackets the inner one in time.
  EXPECT_LE(events[1].start_us, events[0].start_us);
  EXPECT_GE(events[1].start_us + events[1].duration_us,
            events[0].start_us + events[0].duration_us);
}

TEST_F(ObsTest, DisabledSinkDropsSpans) {
  TraceSink sink(64);
  sink.set_enabled(false);
  {
    ScopedTrace span("dropped", "test", &sink);
  }
  EXPECT_TRUE(sink.Events().empty());
}

TEST_F(ObsTest, RingBufferOverwritesOldestAndCountsDropped) {
  TraceSink sink(4);
  for (int i = 0; i < 10; ++i) {
    TraceEvent e;
    e.name = "e" + std::to_string(i);
    sink.Push(std::move(e));
  }
  uint64_t dropped = 0;
  std::vector<TraceEvent> events = sink.Events(&dropped);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(dropped, 6u);
  // Oldest-first order of the surviving tail.
  EXPECT_EQ(events[0].name, "e6");
  EXPECT_EQ(events[3].name, "e9");
}

TEST_F(ObsTest, ChromeTraceExportIsValidJson) {
  TraceSink sink(16);
  {
    ScopedTrace span("PageRank \"quoted\"", "kernel", &sink);
  }
  std::string json = sink.ExportChromeTrace();
  auto parsed = io::ParseJsonValue(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << json;
  const io::JsonValue* events = (*parsed)->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, io::JsonValue::kArray);
  ASSERT_EQ(events->array.size(), 1u);
  const io::JsonValue& e = *events->array[0];
  ASSERT_NE(e.Get("name"), nullptr);
  EXPECT_EQ(e.Get("name")->string, "PageRank \"quoted\"");
  ASSERT_NE(e.Get("ph"), nullptr);
  EXPECT_EQ(e.Get("ph")->string, "X");
  EXPECT_NE(e.Get("ts"), nullptr);
  EXPECT_NE(e.Get("dur"), nullptr);
  ASSERT_NE(e.Get("pid"), nullptr);
  EXPECT_EQ(e.Get("pid")->number, 1.0);
  ASSERT_NE(e.Get("args"), nullptr);
  EXPECT_NE(e.Get("args")->Get("depth"), nullptr);
}

// ---------------------------------------------------------------------------
// StatsSnapshot export.

TEST_F(ObsTest, SnapshotCapturesAndFindsMetrics) {
  MetricsRegistry reg;
  reg.GetCounter("snap.counter")->Add(17);
  reg.GetGauge("snap.gauge")->Set(-4);
  reg.GetHistogram("snap.hist")->Record(200);
  StatsSnapshot snap = StatsSnapshot::Capture(&reg);
  const CounterSnapshot* c = snap.FindCounter("snap.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 17);
  ASSERT_EQ(c->shards.size(), 1u);  // single writer: one non-zero shard
  EXPECT_EQ(c->shards[0].second, 17);
  const GaugeSnapshot* g = snap.FindGauge("snap.gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value, -4);
  const HistogramSnapshot* h = snap.FindHistogram("snap.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1);
  EXPECT_EQ(h->sum, 200);
  EXPECT_EQ(snap.FindCounter("absent"), nullptr);
}

TEST_F(ObsTest, SnapshotJsonRoundTripsThroughParser) {
  MetricsRegistry reg;
  reg.GetCounter("json.counter")->Add(99);
  reg.GetGauge("json.gauge")->Set(123);
  LatencyHistogram* h = reg.GetHistogram("json.hist");
  for (int i = 1; i <= 10; ++i) h->Record(i);
  StatsSnapshot snap = StatsSnapshot::Capture(&reg);
  std::string json = snap.ToJson();
  auto parsed = io::ParseJsonValue(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << json;
  const io::JsonValue* counters = (*parsed)->Get("counters");
  ASSERT_NE(counters, nullptr);
  const io::JsonValue* c = counters->Get("json.counter");
  ASSERT_NE(c, nullptr);
  ASSERT_NE(c->Get("value"), nullptr);
  EXPECT_EQ(c->Get("value")->number, 99.0);
  ASSERT_NE(c->Get("shards"), nullptr);
  const io::JsonValue* gauges = (*parsed)->Get("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(gauges->Get("json.gauge"), nullptr);
  EXPECT_EQ(gauges->Get("json.gauge")->number, 123.0);
  const io::JsonValue* hists = (*parsed)->Get("histograms");
  ASSERT_NE(hists, nullptr);
  const io::JsonValue* hj = hists->Get("json.hist");
  ASSERT_NE(hj, nullptr);
  EXPECT_EQ(hj->Get("count")->number, 10.0);
  EXPECT_EQ(hj->Get("sum")->number, 55.0);
  EXPECT_NE(hj->Get("p50"), nullptr);
  EXPECT_NE(hj->Get("p99"), nullptr);
}

TEST_F(ObsTest, SnapshotAsciiRenderMentionsEveryMetric) {
  MetricsRegistry reg;
  reg.GetCounter("ascii.counter")->Add(5);
  reg.GetGauge("ascii.gauge")->Set(6);
  reg.GetHistogram("ascii.hist")->Record(7);
  std::string text = StatsSnapshot::Capture(&reg).RenderAscii();
  EXPECT_NE(text.find("ascii.counter"), std::string::npos);
  EXPECT_NE(text.find("ascii.gauge"), std::string::npos);
  EXPECT_NE(text.find("ascii.hist"), std::string::npos);
}

TEST_F(ObsTest, ThreadIdsAreSmallAndStable) {
  int here = ThisThreadId();
  EXPECT_GE(here, 0);
  EXPECT_EQ(ThisThreadId(), here);  // stable across calls
  EXPECT_LT(ThisThreadShard(), kNumShards);
  int other = -1;
  std::thread t([&other] { other = ThisThreadId(); });
  t.join();
  EXPECT_GE(other, 0);
  EXPECT_NE(other, here);
}

}  // namespace
}  // namespace ubigraph::obs
