// Tests for the distance-label index (Pruned Landmark Labeling), the JGF
// format, and the Cypher-lite ORDER BY clause.
#include <gtest/gtest.h>

#include "algorithms/hop_labels.h"
#include "algorithms/traversal.h"
#include "common/random.h"
#include "gen/generators.h"
#include "io/jgf_io.h"
#include "query/cypher_executor.h"
#include "query/cypher_parser.h"

namespace ubigraph {
namespace {

// --------------------------------------------------------- hop labeling ---

CsrGraph Undirected(EdgeList el) {
  CsrOptions opts;
  opts.directed = false;
  return CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
}

TEST(HopLabelTest, ExactOnPathAndCycle) {
  auto path = Undirected(gen::Path(8));
  auto idx = algo::HopLabelIndex::Build(path).ValueOrDie();
  for (VertexId u = 0; u < 8; ++u) {
    for (VertexId v = 0; v < 8; ++v) {
      EXPECT_EQ(idx.Distance(u, v), static_cast<uint32_t>(
                                        u > v ? u - v : v - u));
    }
  }
  auto cycle = Undirected(gen::Cycle(9));
  auto cidx = algo::HopLabelIndex::Build(cycle).ValueOrDie();
  EXPECT_EQ(cidx.Distance(0, 4), 4u);
  EXPECT_EQ(cidx.Distance(0, 5), 4u);  // the short way around
}

TEST(HopLabelTest, DisconnectedPairsAreInfinite) {
  auto g = Undirected([] {
    EdgeList el(5);
    el.Add(0, 1);
    el.Add(2, 3);
    return el;
  }());
  auto idx = algo::HopLabelIndex::Build(g).ValueOrDie();
  EXPECT_EQ(idx.Distance(0, 1), 1u);
  EXPECT_EQ(idx.Distance(0, 2), UINT32_MAX);
  EXPECT_EQ(idx.Distance(4, 0), UINT32_MAX);
  EXPECT_EQ(idx.Distance(4, 4), 0u);
}

class HopLabelRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HopLabelRandomTest, MatchesBfsOnRandomGraphs) {
  Rng rng(GetParam());
  auto g = Undirected(gen::ErdosRenyi(80, 200, &rng).ValueOrDie());
  auto idx = algo::HopLabelIndex::Build(g).ValueOrDie();
  for (VertexId s = 0; s < g.num_vertices(); s += 9) {
    auto bfs = algo::BfsDistances(g, s);
    for (VertexId t = 0; t < g.num_vertices(); ++t) {
      uint32_t expected = bfs[t] == algo::kUnreachable ? UINT32_MAX : bfs[t];
      ASSERT_EQ(idx.Distance(s, t), expected)
          << "seed=" << GetParam() << " s=" << s << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HopLabelRandomTest,
                         ::testing::Values(201, 202, 203, 204, 205));

TEST(HopLabelTest, MatchesBfsOnScaleFreeGraph) {
  Rng rng(7);
  auto g = Undirected(gen::BarabasiAlbert(150, 2, &rng).ValueOrDie());
  auto idx = algo::HopLabelIndex::Build(g).ValueOrDie();
  auto bfs = algo::BfsDistances(g, 0);
  for (VertexId t = 0; t < g.num_vertices(); ++t) {
    EXPECT_EQ(idx.Distance(0, t), bfs[t]);
  }
  // Pruning must keep labels far below the quadratic worst case.
  EXPECT_LT(idx.AverageLabelSize(), 40.0);
  EXPECT_GT(idx.TotalLabelEntries(), 0u);
}

TEST(HopLabelTest, EmptyAndSingleton) {
  auto empty = CsrGraph::FromEdges(EdgeList{}).ValueOrDie();
  auto idx = algo::HopLabelIndex::Build(empty).ValueOrDie();
  EXPECT_EQ(idx.num_vertices(), 0u);
  EXPECT_EQ(idx.Distance(0, 1), UINT32_MAX);
  auto single = CsrGraph::FromEdges(EdgeList(1)).ValueOrDie();
  auto sidx = algo::HopLabelIndex::Build(single).ValueOrDie();
  EXPECT_EQ(sidx.Distance(0, 0), 0u);
}

// ------------------------------------------------------------------ JGF ---

TEST(JgfTest, RoundTrip) {
  EdgeList el(4);
  el.Add(0, 1, 2.5);
  el.Add(2, 3);
  el.Add(3, 0, -1.0);
  auto doc = io::ParseJgf(io::WriteJgf(el, /*directed=*/true, "test"));
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->directed);
  EXPECT_EQ(doc->label, "test");
  ASSERT_EQ(doc->edges.num_edges(), 3u);
  EXPECT_EQ(doc->edges.num_vertices(), 4u);
  EdgeList sorted = doc->edges;
  sorted.Sort();
  EXPECT_EQ(sorted.edges()[0].src, 0u);
  EXPECT_DOUBLE_EQ(sorted.edges()[0].weight, 2.5);
}

TEST(JgfTest, RoundTripPreservesIdsBeyondTen) {
  // Zero-padding keeps lexicographic interning aligned with numeric ids.
  Rng rng(5);
  auto el = gen::ErdosRenyi(30, 100, &rng).ValueOrDie();
  auto doc = io::ParseJgf(io::WriteJgf(el)).ValueOrDie();
  EdgeList a = el, b = doc.edges;
  a.Sort();
  b.Sort();
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (size_t i = 0; i < a.edges().size(); ++i) {
    EXPECT_EQ(a.edges()[i].src, b.edges()[i].src);
    EXPECT_EQ(a.edges()[i].dst, b.edges()[i].dst);
  }
}

TEST(JgfTest, ParsesHandWrittenDocument) {
  const char* doc = R"({
    "graph": {
      "directed": false,
      "nodes": {"alice": {"label": "A"}, "bob": {}},
      "edges": [{"source": "alice", "target": "bob",
                 "metadata": {"weight": 3.5}}]
    }
  })";
  auto parsed = io::ParseJgf(doc).ValueOrDie();
  EXPECT_FALSE(parsed.directed);
  ASSERT_EQ(parsed.edges.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(parsed.edges.edges()[0].weight, 3.5);
}

TEST(JgfTest, MalformedRejected) {
  EXPECT_FALSE(io::ParseJgf("{}").ok());                       // no graph
  EXPECT_FALSE(io::ParseJgf(R"({"graph": []})").ok());         // wrong type
  EXPECT_FALSE(
      io::ParseJgf(R"({"graph": {"nodes": ["a"]}})").ok());    // nodes array
  EXPECT_FALSE(
      io::ParseJgf(R"({"graph": {"edges": [{"source": "a"}]}})").ok());
}

// ------------------------------------------------------------- ORDER BY ---

PropertyGraph People() {
  PropertyGraph g;
  const char* names[] = {"carol", "alice", "bob"};
  int64_t ages[] = {41, 34, 29};
  for (int i = 0; i < 3; ++i) {
    VertexId v = g.AddVertex("Person");
    g.SetVertexProperty(v, "name", std::string(names[i])).Abort();
    g.SetVertexProperty(v, "age", ages[i]).Abort();
  }
  return g;
}

TEST(OrderByTest, AscendingAndDescending) {
  PropertyGraph g = People();
  auto asc = query::RunCypher(
                 g, "MATCH (p:Person) RETURN p.name, p.age ORDER BY p.age")
                 .ValueOrDie();
  ASSERT_EQ(asc.rows.size(), 3u);
  EXPECT_EQ(std::get<std::string>(asc.rows[0][0]), "bob");
  EXPECT_EQ(std::get<std::string>(asc.rows[2][0]), "carol");

  auto desc = query::RunCypher(
                  g, "MATCH (p:Person) RETURN p.age ORDER BY p.age DESC")
                  .ValueOrDie();
  EXPECT_EQ(std::get<int64_t>(desc.rows[0][0]), 41);
}

TEST(OrderByTest, StringOrderingAndLimit) {
  PropertyGraph g = People();
  auto r = query::RunCypher(
               g, "MATCH (p:Person) RETURN p.name ORDER BY p.name ASC LIMIT 2")
               .ValueOrDie();
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(std::get<std::string>(r.rows[0][0]), "alice");
  EXPECT_EQ(std::get<std::string>(r.rows[1][0]), "bob");
}

TEST(OrderByTest, MustReferenceReturnedItem) {
  PropertyGraph g = People();
  EXPECT_FALSE(
      query::RunCypher(g, "MATCH (p:Person) RETURN p.name ORDER BY p.age").ok());
  EXPECT_FALSE(
      query::RunCypher(g, "MATCH (p:Person) RETURN p.name ORDER BY q.name").ok());
}

TEST(OrderByTest, ParserErrors) {
  EXPECT_FALSE(query::ParseCypher("MATCH (a) RETURN a ORDER a").ok());
  EXPECT_FALSE(query::ParseCypher("MATCH (a) RETURN a ORDER BY 5").ok());
}

}  // namespace
}  // namespace ubigraph
