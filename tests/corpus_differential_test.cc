// Cross-kernel randomized differential harness over the corpus layer: every
// kernel family (BFS/hybrid, PageRank modes, connected components, SSSP,
// k-core, Brandes betweenness, and the incremental engines) is swept over
// corpus shapes (RMAT / LFR / bipartite / road) x representations (plain,
// hub-cluster-permuted, compressed CSR) x thread counts 1/2/4/8, and every
// result is checked against a serial oracle computed on the same concrete
// graph.
//
// Oracle placement matters: serial oracles are recomputed per concrete
// representation where the kernel's output is id-sensitive (approx
// betweenness draws pivot *ids* from the Rng, so the same seed names
// different vertices on a permuted graph). Id-invariant quantities (BFS
// depth, core number, component partition, PageRank score, SSSP distance)
// are additionally mapped through the permutation and compared back to the
// plain-graph oracle, which is what catches relabeling bugs.
//
// Equality contract (same as parallel_differential_test.cc):
//   - integer outputs match EXACTLY at every thread count;
//   - Brandes/approx-betweenness doubles are bitwise-identical across thread
//     counts (fixed ParallelReduce chunk tree) and compared with a relative
//     tolerance across representations (different accumulation order);
//   - PageRank / SSSP doubles are compared within a small absolute slack of
//     the oracle (independent IEEE-754 trajectories into the same fixpoint).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "algorithms/centrality.h"
#include "algorithms/connected_components.h"
#include "algorithms/kcore.h"
#include "algorithms/pagerank.h"
#include "algorithms/shortest_path.h"
#include "algorithms/traversal.h"
#include "common/random.h"
#include "corpus_util.h"
#include "graph/compressed_csr.h"
#include "graph/csr_graph.h"
#include "stream/incremental.h"
#include "stream/incremental_components.h"
#include "stream/incremental_kcore.h"
#include "stream/incremental_pagerank.h"
#include "update_stream_util.h"

namespace ubigraph {
namespace {

using test::AllCorpusShapes;
using test::BuildRepresentations;
using test::CorpusEdges;
using test::CorpusRepresentations;
using test::CorpusShape;
using test::CorpusShapeName;
using test::OldToNew;
using test::WeightedCorpusEdges;

constexpr uint64_t kSeed = 20260808;
constexpr uint32_t kThreadCounts[] = {1, 2, 4, 8};
constexpr double kScoreSlack = 1e-9;  // PageRank per-vertex, tolerance 1e-12
constexpr double kDistSlack = 1e-12;  // SSSP per-vertex absolute

/// Highest-out-degree vertex: a deterministic, shape-agnostic BFS/SSSP root
/// that sits inside the giant component on every corpus shape.
VertexId PickRoot(const CsrGraph& g) {
  VertexId best = 0;
  uint64_t best_deg = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const uint64_t d = g.OutDegree(v);
    if (d > best_deg) {
      best_deg = d;
      best = v;
    }
  }
  return best;
}

/// Relative comparison for centrality sums, whose magnitude scales with n^2.
void ExpectNearRel(const std::vector<double>& got,
                   const std::vector<double>& want, double rel,
                   const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t v = 0; v < got.size(); ++v) {
    const double tol = rel * std::max(1.0, std::abs(want[v]));
    EXPECT_NEAR(got[v], want[v], tol) << what << " vertex " << v;
  }
}

class CorpusDifferentialTest : public ::testing::TestWithParam<CorpusShape> {
 protected:
  // Representations are pure functions of (shape, kSeed); build each once
  // per process and share across the TEST_P bodies for that shape.
  static const CorpusRepresentations& Reps(CorpusShape shape) {
    static auto* cache = new std::vector<CorpusRepresentations>{
        BuildRepresentations(CorpusEdges(CorpusShape::kRmat, kSeed)),
        BuildRepresentations(CorpusEdges(CorpusShape::kLfr, kSeed)),
        BuildRepresentations(CorpusEdges(CorpusShape::kBipartite, kSeed)),
        BuildRepresentations(CorpusEdges(CorpusShape::kRoad, kSeed))};
    return (*cache)[static_cast<size_t>(shape)];
  }

  static const CorpusRepresentations& WeightedReps(CorpusShape shape) {
    static auto* cache = new std::vector<CorpusRepresentations>{
        BuildRepresentations(WeightedCorpusEdges(CorpusShape::kRmat, kSeed)),
        BuildRepresentations(WeightedCorpusEdges(CorpusShape::kLfr, kSeed)),
        BuildRepresentations(
            WeightedCorpusEdges(CorpusShape::kBipartite, kSeed)),
        BuildRepresentations(WeightedCorpusEdges(CorpusShape::kRoad, kSeed))};
    return (*cache)[static_cast<size_t>(shape)];
  }
};

TEST_P(CorpusDifferentialTest, BfsMatchesSerialOracleEverywhere) {
  const CorpusRepresentations& reps = Reps(GetParam());
  const VertexId root = PickRoot(reps.plain);
  const std::vector<uint32_t> oracle = algo::BfsDistances(reps.plain, root);

  for (uint32_t threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    algo::HybridBfsOptions opts;
    opts.num_threads = threads;
    EXPECT_EQ(algo::HybridBfs(reps.plain, root, opts).ValueOrDie(), oracle);
    EXPECT_EQ(algo::HybridBfs(reps.compressed, root, opts).ValueOrDie(),
              oracle);
    EXPECT_EQ(algo::BfsDistances(reps.plain, root, {.num_threads = threads}),
              oracle);
  }
  // Forced directions at one parallel thread count: the switch heuristic must
  // never be what's hiding a divergence.
  for (auto dir :
       {algo::TraversalDirection::kPush, algo::TraversalDirection::kPull}) {
    algo::HybridBfsOptions opts;
    opts.num_threads = 4;
    opts.direction = dir;
    EXPECT_EQ(algo::HybridBfs(reps.plain, root, opts).ValueOrDie(), oracle);
  }
  EXPECT_EQ(algo::BfsDistances(reps.compressed, root), oracle);

  // Permuted graph, mapped back through new_to_old: depth is id-invariant.
  const std::vector<VertexId> old_to_new = OldToNew(reps.permuted);
  const std::vector<uint32_t> perm =
      algo::HybridBfs(reps.permuted.graph, old_to_new[root],
                      {.num_threads = 4})
          .ValueOrDie();
  for (VertexId v = 0; v < reps.plain.num_vertices(); ++v) {
    ASSERT_EQ(perm[old_to_new[v]], oracle[v]) << "old vertex " << v;
  }
}

TEST_P(CorpusDifferentialTest, PageRankModesAgreeOnEveryRepresentation) {
  const CorpusRepresentations& reps = Reps(GetParam());
  algo::PageRankOptions base;
  base.tolerance = 1e-12;
  base.max_iterations = 500;
  base.mode = algo::PageRankMode::kPull;
  const auto oracle = algo::PageRank(reps.plain, base).ValueOrDie();
  ASSERT_TRUE(oracle.converged);

  for (auto mode : {algo::PageRankMode::kPull, algo::PageRankMode::kPush,
                    algo::PageRankMode::kDelta, algo::PageRankMode::kBlocked}) {
    for (uint32_t threads : kThreadCounts) {
      SCOPED_TRACE("mode=" + std::to_string(static_cast<int>(mode)) +
                   " threads=" + std::to_string(threads));
      algo::PageRankOptions opts = base;
      opts.mode = mode;
      opts.num_threads = threads;
      const auto got = algo::PageRank(reps.plain, opts).ValueOrDie();
      ASSERT_TRUE(got.converged);
      for (VertexId v = 0; v < reps.plain.num_vertices(); ++v) {
        ASSERT_NEAR(got.scores[v], oracle.scores[v], kScoreSlack)
            << "vertex " << v;
      }
    }
  }

  for (uint32_t threads : {1u, 4u}) {
    algo::PageRankOptions opts = base;
    opts.num_threads = threads;
    const auto got = algo::PageRank(reps.compressed, opts).ValueOrDie();
    ASSERT_TRUE(got.converged);
    for (VertexId v = 0; v < reps.plain.num_vertices(); ++v) {
      ASSERT_NEAR(got.scores[v], oracle.scores[v], kScoreSlack)
          << "compressed threads=" << threads << " vertex " << v;
    }
  }

  // Scores are id-invariant: the permuted run mapped back must land on the
  // same fixpoint (different summation order, hence slack not bitwise).
  const std::vector<VertexId> old_to_new = OldToNew(reps.permuted);
  const auto perm = algo::PageRank(reps.permuted.graph, base).ValueOrDie();
  ASSERT_TRUE(perm.converged);
  for (VertexId v = 0; v < reps.plain.num_vertices(); ++v) {
    ASSERT_NEAR(perm.scores[old_to_new[v]], oracle.scores[v], kScoreSlack)
        << "permuted vertex " << v;
  }
}

TEST_P(CorpusDifferentialTest, ComponentsAgreeAcrossRepresentations) {
  const CorpusRepresentations& reps = Reps(GetParam());
  const algo::ComponentResult oracle =
      algo::WeaklyConnectedComponents(reps.plain);

  for (uint32_t threads : kThreadCounts) {
    for (bool frontier : {false, true}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " frontier=" + std::to_string(frontier));
      algo::ComponentsOptions opts;
      opts.num_threads = threads;
      opts.use_frontier = frontier;
      const auto lp =
          algo::ConnectedComponentsLabelProp(reps.plain, opts).ValueOrDie();
      EXPECT_EQ(lp.num_components, oracle.num_components);
      EXPECT_EQ(lp.label, oracle.label);
    }
  }

  const auto compressed_uf = algo::WeaklyConnectedComponents(reps.compressed);
  EXPECT_EQ(compressed_uf.label, oracle.label);
  const auto compressed_lp =
      algo::ConnectedComponentsLabelProp(reps.compressed, {.num_threads = 4})
          .ValueOrDie();
  EXPECT_EQ(compressed_lp.label, oracle.label);

  // Permuted labels differ in value (canonical labels are id-derived) but
  // must induce the identical partition: same component count, and two old
  // vertices share an oracle label iff their images share a permuted label.
  const std::vector<VertexId> old_to_new = OldToNew(reps.permuted);
  const auto perm = algo::WeaklyConnectedComponents(reps.permuted.graph);
  ASSERT_EQ(perm.num_components, oracle.num_components);
  std::vector<uint32_t> seen_as(oracle.num_components, UINT32_MAX);
  std::vector<uint8_t> target_used(perm.num_components, 0);
  for (VertexId v = 0; v < reps.plain.num_vertices(); ++v) {
    const uint32_t o = oracle.label[v];
    const uint32_t p = perm.label[old_to_new[v]];
    if (seen_as[o] == UINT32_MAX) {
      ASSERT_LT(p, target_used.size());
      ASSERT_FALSE(target_used[p]) << "two oracle components map to permuted "
                                   << "component " << p;
      seen_as[o] = p;
      target_used[p] = 1;
    } else {
      ASSERT_EQ(seen_as[o], p) << "old vertex " << v << " left its component";
    }
  }
}

TEST_P(CorpusDifferentialTest, KCoreMatchesSerialOracle) {
  const CorpusRepresentations& reps = Reps(GetParam());
  const std::vector<uint32_t> oracle = algo::CoreDecomposition(reps.plain);

  for (uint32_t threads : {2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(algo::CoreDecomposition(reps.plain, {.num_threads = threads}),
              oracle);
    EXPECT_EQ(
        algo::CoreDecomposition(reps.compressed, {.num_threads = threads}),
        oracle);
  }
  EXPECT_EQ(algo::CoreDecomposition(reps.compressed), oracle);

  const std::vector<VertexId> old_to_new = OldToNew(reps.permuted);
  const std::vector<uint32_t> perm =
      algo::CoreDecomposition(reps.permuted.graph, {.num_threads = 4});
  for (VertexId v = 0; v < reps.plain.num_vertices(); ++v) {
    ASSERT_EQ(perm[old_to_new[v]], oracle[v]) << "old vertex " << v;
  }
}

TEST_P(CorpusDifferentialTest, SsspMatchesDijkstraOracle) {
  const CorpusRepresentations& reps = WeightedReps(GetParam());
  const VertexId root = PickRoot(reps.plain);
  const auto oracle = algo::Dijkstra(reps.plain, root).ValueOrDie();

  auto expect_same_distances = [&](const std::vector<double>& got,
                                   const std::string& what) {
    ASSERT_EQ(got.size(), oracle.distance.size()) << what;
    for (VertexId v = 0; v < got.size(); ++v) {
      if (std::isinf(oracle.distance[v])) {
        ASSERT_TRUE(std::isinf(got[v])) << what << " vertex " << v;
      } else {
        ASSERT_NEAR(got[v], oracle.distance[v], kDistSlack)
            << what << " vertex " << v;
      }
    }
  };

  for (uint32_t threads : kThreadCounts) {
    const auto delta =
        algo::DeltaSteppingSssp(reps.plain, root, {.num_threads = threads})
            .ValueOrDie();
    expect_same_distances(delta.distance,
                          "delta threads=" + std::to_string(threads));
  }

  // Permuted graph carries the same weights through the relabeling; both the
  // serial and parallel kernels mapped back must reproduce the oracle.
  // (No compressed leg: the SSSP kernels are CsrGraph-only.)
  const std::vector<VertexId> old_to_new = OldToNew(reps.permuted);
  const VertexId perm_root = old_to_new[root];
  for (const auto& run :
       {algo::Dijkstra(reps.permuted.graph, perm_root),
        algo::DeltaSteppingSssp(reps.permuted.graph, perm_root,
                                {.num_threads = 4})}) {
    const auto& tree = run.ValueOrDie();
    std::vector<double> mapped(tree.distance.size());
    for (VertexId v = 0; v < mapped.size(); ++v) {
      mapped[v] = tree.distance[old_to_new[v]];
    }
    expect_same_distances(mapped, "permuted sssp");
  }
}

TEST_P(CorpusDifferentialTest, BetweennessAgreesAcrossThreadsAndReps) {
  const CorpusRepresentations& reps = Reps(GetParam());

  // Exact Brandes: bitwise across thread counts (fixed reduce tree), and the
  // compressed graph shares vertex ids so it must land on the same sums.
  const std::vector<double> exact =
      algo::BetweennessCentrality(reps.plain, {.num_threads = 1});
  EXPECT_EQ(algo::BetweennessCentrality(reps.plain, {.num_threads = 4}), exact);
  ExpectNearRel(algo::BetweennessCentrality(reps.compressed), exact, 1e-9,
                "compressed exact brandes");

  // Permuted: betweenness is id-invariant, accumulation order is not.
  const std::vector<VertexId> old_to_new = OldToNew(reps.permuted);
  const std::vector<double> perm = algo::BetweennessCentrality(
      reps.permuted.graph, {.num_threads = 4});
  std::vector<double> mapped(perm.size());
  for (VertexId v = 0; v < mapped.size(); ++v) {
    mapped[v] = perm[old_to_new[v]];
  }
  ExpectNearRel(mapped, exact, 1e-9, "permuted exact brandes");

  // Approx betweenness: the pivot list is drawn serially from the seed, so
  // on the SAME graph a fixed seed is bitwise-stable at every thread count.
  // (Not across the permutation — the same seed names different vertex ids
  // there, which is exactly why each representation gets its own oracle.)
  Rng oracle_rng(99);
  const std::vector<double> approx =
      algo::ApproxBetweennessCentrality(reps.plain, 16, &oracle_rng);
  for (uint32_t threads : {2u, 4u, 8u}) {
    Rng rng(99);
    EXPECT_EQ(algo::ApproxBetweennessCentrality(reps.plain, 16, &rng,
                                                {.num_threads = threads}),
              approx)
        << "threads=" << threads;
  }
  Rng compressed_rng(99);
  ExpectNearRel(
      algo::ApproxBetweennessCentrality(reps.compressed, 16, &compressed_rng),
      approx, 1e-9, "compressed approx betweenness");
}

TEST_P(CorpusDifferentialTest, IncrementalEnginesMatchRecomputeOnStreams) {
  // Drive the three incremental engines with an update stream derived from
  // this corpus shape and check every batch against full recomputes on the
  // live edge set (same contract as incremental_differential_test.cc, here
  // exercised on the corpus shapes rather than hand-picked generators).
  const EdgeList base = CorpusEdges(GetParam(), kSeed);
  test::UpdateStreamGen gen(base, kSeed ^ 0xabcdef, {});
  const EdgeList init = gen.InitialEdges();
  ASSERT_GT(init.num_edges(), 0u);

  auto pagerank =
      stream::IncrementalPageRank::Create(
          init, stream::IncrementalPageRank::Options{.tolerance = 1e-12,
                                                     .max_sweeps = 500,
                                                     .num_threads = 2})
          .ValueOrDie();
  ASSERT_TRUE(pagerank.initial_result().converged);
  auto components =
      stream::IncrementalComponents::Create(init, {.num_threads = 4})
          .ValueOrDie();
  stream::IncrementalKCore kcore(init.num_vertices(), {.num_threads = 2});
  for (const Edge& e : init.edges()) {
    ASSERT_TRUE(kcore.InsertEdge(e.src, e.dst).ok());
  }

  for (size_t b = 0; b < 3; ++b) {
    SCOPED_TRACE("batch " + std::to_string(b));
    const std::vector<GraphDelta> batch =
        gen.NextBatch(test::StreamKind::kMixed, 48);
    ASSERT_TRUE(pagerank.ApplyBatch(batch).ok());
    ASSERT_TRUE(components.ApplyBatch(batch).ok());
    ASSERT_TRUE(kcore.ApplyBatch(batch).ok());

    const EdgeList live = gen.LiveEdges();
    if (live.num_edges() == 0) break;

    auto live_pr = CsrGraph::FromEdges(EdgeList(live),
                                       CsrOptions{.build_in_edges = true})
                       .ValueOrDie();
    algo::PageRankOptions pr_opts;
    pr_opts.tolerance = 1e-12;
    pr_opts.max_iterations = 500;
    pr_opts.mode = algo::PageRankMode::kPull;
    const auto oracle_pr = algo::PageRank(live_pr, pr_opts).ValueOrDie();
    const std::vector<double>& scores = pagerank.scores();
    for (VertexId v = 0; v < init.num_vertices(); ++v) {
      ASSERT_NEAR(scores[v], oracle_pr.scores[v], 1e-10) << "vertex " << v;
    }

    auto live_cc = CsrGraph::FromEdges(EdgeList(live)).ValueOrDie();
    EXPECT_EQ(components.Labels(),
              algo::WeaklyConnectedComponents(live_cc).label);
    EXPECT_EQ(components.num_components(),
              algo::WeaklyConnectedComponents(live_cc).num_components);

    auto live_kc =
        CsrGraph::FromEdges(EdgeList(live), CsrOptions{.directed = false})
            .ValueOrDie();
    EXPECT_EQ(kcore.core_numbers(), algo::CoreDecomposition(live_kc));
  }
}

INSTANTIATE_TEST_SUITE_P(AllShapes, CorpusDifferentialTest,
                         ::testing::ValuesIn(AllCorpusShapes()),
                         [](const ::testing::TestParamInfo<CorpusShape>& info) {
                           return std::string(CorpusShapeName(info.param));
                         });

}  // namespace
}  // namespace ubigraph
