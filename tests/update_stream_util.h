// Seeded update-stream generator shared by the incremental-maintenance tests
// and benchmarks. Produces GraphDelta batches over a live edge set that obeys
// the strictest kernel's constraints — simple undirected pairs, no self-loops
// — so ONE stream can drive IncrementalPageRank (arcs as directed edges),
// IncrementalComponents, and IncrementalKCore (arcs as undirected edges)
// side by side, and the ground-truth edge list for full recomputes is always
// available from live_edges().
#pragma once

#include <algorithm>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "common/random.h"
#include "graph/dynamic_graph.h"
#include "graph/edge_list.h"

namespace ubigraph::test {

enum class StreamKind { kInsertOnly, kDeleteOnly, kMixed };

struct UpdateStreamOptions {
  /// Restrict generated endpoints to [0, window) instead of [0, n): models
  /// the paper's localized-update workloads and is what makes incremental
  /// batches provably cheaper than recomputes (only a corner of the graph
  /// ever changes). 0 = whole vertex range.
  VertexId window = 0;
};

class UpdateStreamGen {
 public:
  using Options = UpdateStreamOptions;

  /// Seeds the live set from `base`, dropping self-loops and collapsing each
  /// undirected pair to one arc (min endpoint first).
  UpdateStreamGen(const EdgeList& base, uint64_t seed, Options options = {})
      : n_(base.num_vertices()), rng_(seed), options_(options) {
    for (const Edge& e : base.edges()) {
      if (e.src == e.dst) continue;
      VertexId a = std::min(e.src, e.dst), b = std::max(e.src, e.dst);
      if (live_set_.insert({a, b}).second) live_list_.push_back({a, b});
    }
  }

  /// The sanitized starting edge list (call before generating batches).
  EdgeList InitialEdges() const { return LiveEdges(); }

  /// Current live pairs as directed arcs (min endpoint first) — the ground
  /// truth for full-recompute oracles after any number of batches.
  EdgeList LiveEdges() const {
    EdgeList el(n_);
    for (const auto& [a, b] : live_list_) el.Add(a, b);
    el.EnsureVertices(n_);
    return el;
  }

  size_t live_count() const { return live_list_.size(); }

  /// Generates the next batch of `size` deltas (deterministic given the
  /// seed), mutating the generator's live set in step. Delete-only batches
  /// shrink to the live count when the graph runs dry; insert-only batches
  /// shrink when the (windowed) pair space saturates.
  std::vector<GraphDelta> NextBatch(StreamKind kind, size_t size) {
    std::vector<GraphDelta> batch;
    for (size_t i = 0; i < size; ++i) {
      bool insert = kind == StreamKind::kInsertOnly ||
                    (kind == StreamKind::kMixed &&
                     (live_list_.empty() || rng_.NextBool(0.5)));
      if (insert) {
        VertexId a, b;
        if (!PickNewPair(&a, &b)) continue;
        live_set_.insert({a, b});
        live_list_.push_back({a, b});
        batch.push_back(GraphDelta::Insert(a, b));
      } else {
        if (live_list_.empty()) continue;
        size_t idx = rng_.NextBounded(live_list_.size());
        auto [a, b] = live_list_[idx];
        live_list_[idx] = live_list_.back();
        live_list_.pop_back();
        live_set_.erase({a, b});
        batch.push_back(GraphDelta::Remove(a, b));
      }
    }
    return batch;
  }

 private:
  bool PickNewPair(VertexId* a, VertexId* b) {
    const VertexId range =
        options_.window > 0 ? std::min(options_.window, n_) : n_;
    if (range < 2) return false;
    for (int attempt = 0; attempt < 64; ++attempt) {
      VertexId u = static_cast<VertexId>(rng_.NextBounded(range));
      VertexId v = static_cast<VertexId>(rng_.NextBounded(range));
      if (u == v) continue;
      VertexId lo = std::min(u, v), hi = std::max(u, v);
      if (live_set_.count({lo, hi})) continue;
      *a = lo;
      *b = hi;
      return true;
    }
    return false;  // pair space (window choose 2) effectively saturated
  }

  VertexId n_;
  Rng rng_;
  Options options_;
  std::set<std::pair<VertexId, VertexId>> live_set_;
  std::vector<std::pair<VertexId, VertexId>> live_list_;
};

}  // namespace ubigraph::test
