// Tests for the extension features: Yen's k-shortest paths, DeepWalk vertex
// embeddings, and variable-length Cypher relationships.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "algorithms/shortest_path.h"
#include "gen/generators.h"
#include "ml/embeddings.h"
#include "query/cypher_executor.h"
#include "query/cypher_parser.h"

namespace ubigraph {
namespace {

// --------------------------------------------------- k shortest paths -----

CsrGraph YenExampleGraph() {
  // The classic Yen example (C..H renamed 0..5):
  // 0=C, 1=D, 2=E, 3=F, 4=G, 5=H.
  EdgeList el(6);
  el.Add(0, 1, 3);  // C->D
  el.Add(0, 2, 2);  // C->E
  el.Add(1, 3, 4);  // D->F
  el.Add(2, 1, 1);  // E->D
  el.Add(2, 3, 2);  // E->F
  el.Add(2, 4, 3);  // E->G
  el.Add(3, 4, 2);  // F->G
  el.Add(3, 5, 1);  // F->H
  el.Add(4, 5, 2);  // G->H
  return CsrGraph::FromEdges(std::move(el)).ValueOrDie();
}

TEST(KShortestPathsTest, ClassicYenExample) {
  auto g = YenExampleGraph();
  auto paths = algo::KShortestPaths(g, 0, 5, 3).ValueOrDie();
  ASSERT_EQ(paths.size(), 3u);
  // Known answers: C-E-F-H (5), C-E-G-H (7), C-E-F-G-H (8) or C-D-F-H (8).
  EXPECT_DOUBLE_EQ(paths[0].cost, 5.0);
  EXPECT_EQ(paths[0].vertices, (std::vector<VertexId>{0, 2, 3, 5}));
  EXPECT_DOUBLE_EQ(paths[1].cost, 7.0);
  EXPECT_EQ(paths[1].vertices, (std::vector<VertexId>{0, 2, 4, 5}));
  EXPECT_DOUBLE_EQ(paths[2].cost, 8.0);
}

TEST(KShortestPathsTest, CostsNonDecreasingAndPathsDistinct) {
  Rng rng(3);
  EdgeList el(30);
  for (int i = 0; i < 150; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(30));
    VertexId v = static_cast<VertexId>(rng.NextBounded(30));
    if (u != v) el.Add(u, v, 1.0 + rng.NextDouble() * 9);
  }
  el.EnsureVertices(30);
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  auto paths = algo::KShortestPaths(g, 0, 29, 6).ValueOrDie();
  std::set<std::vector<VertexId>> distinct;
  for (size_t i = 0; i < paths.size(); ++i) {
    if (i > 0) EXPECT_GE(paths[i].cost, paths[i - 1].cost - 1e-9);
    distinct.insert(paths[i].vertices);
    // Loopless.
    std::set<VertexId> unique(paths[i].vertices.begin(), paths[i].vertices.end());
    EXPECT_EQ(unique.size(), paths[i].vertices.size());
    // Valid edges.
    for (size_t j = 0; j + 1 < paths[i].vertices.size(); ++j) {
      EXPECT_TRUE(g.HasEdge(paths[i].vertices[j], paths[i].vertices[j + 1]));
    }
  }
  EXPECT_EQ(distinct.size(), paths.size());
}

TEST(KShortestPathsTest, FirstPathMatchesDijkstra) {
  Rng rng(4);
  EdgeList el(25);
  for (int i = 0; i < 120; ++i) {
    VertexId u = static_cast<VertexId>(rng.NextBounded(25));
    VertexId v = static_cast<VertexId>(rng.NextBounded(25));
    if (u != v) el.Add(u, v, 1.0 + rng.NextDouble() * 5);
  }
  el.EnsureVertices(25);
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  auto dijkstra = algo::Dijkstra(g, 0).ValueOrDie();
  auto paths = algo::KShortestPaths(g, 0, 20, 1).ValueOrDie();
  if (dijkstra.distance[20] == algo::kInfDistance) {
    EXPECT_TRUE(paths.empty());
  } else {
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_NEAR(paths[0].cost, dijkstra.distance[20], 1e-9);
  }
}

TEST(KShortestPathsTest, FewerPathsThanRequested) {
  // A path graph has exactly one loopless route.
  auto g = CsrGraph::FromEdges(gen::Path(5)).ValueOrDie();
  auto paths = algo::KShortestPaths(g, 0, 4, 5).ValueOrDie();
  EXPECT_EQ(paths.size(), 1u);
}

TEST(KShortestPathsTest, DisconnectedYieldsEmpty) {
  auto g = CsrGraph::FromPairs(4, {{0, 1}}).ValueOrDie();
  EXPECT_TRUE(algo::KShortestPaths(g, 0, 3, 3).ValueOrDie().empty());
}

TEST(KShortestPathsTest, InvalidInputsRejected) {
  auto g = CsrGraph::FromEdges(gen::Path(3)).ValueOrDie();
  EXPECT_FALSE(algo::KShortestPaths(g, 0, 9, 2).ok());
  EXPECT_FALSE(algo::KShortestPaths(g, 0, 2, 0).ok());
  EdgeList neg(2);
  neg.Add(0, 1, -1);
  auto ng = CsrGraph::FromEdges(std::move(neg)).ValueOrDie();
  EXPECT_FALSE(algo::KShortestPaths(ng, 0, 1, 1).ok());
}

// --------------------------------------------------------- embeddings -----

TEST(RandomWalkTest, StaysOnGraphAndRespectsLength) {
  Rng rng(1);
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromEdges(gen::Cycle(10), opts).ValueOrDie();
  auto walk = ml::RandomWalk(g, 3, 20, &rng);
  ASSERT_EQ(walk.size(), 20u);
  EXPECT_EQ(walk[0], 3u);
  for (size_t i = 0; i + 1 < walk.size(); ++i) {
    EXPECT_TRUE(g.HasEdge(walk[i], walk[i + 1]));
  }
}

TEST(RandomWalkTest, StopsAtSink) {
  auto g = CsrGraph::FromPairs(3, {{0, 1}}).ValueOrDie();
  Rng rng(2);
  auto walk = ml::RandomWalk(g, 2, 10, &rng);  // vertex 2 isolated
  EXPECT_EQ(walk.size(), 1u);
}

TEST(EmbeddingsTest, CommunityStructureSeparates) {
  // Two well-separated cliques: intra-clique cosine similarity must exceed
  // inter-clique similarity on average.
  EdgeList el(20);
  for (VertexId u = 0; u < 10; ++u) {
    for (VertexId v = u + 1; v < 10; ++v) el.Add(u, v);
  }
  for (VertexId u = 10; u < 20; ++u) {
    for (VertexId v = u + 1; v < 20; ++v) el.Add(u, v);
  }
  el.Add(9, 10);  // a single bridge
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();

  ml::EmbeddingOptions eopts;
  eopts.dimensions = 16;
  eopts.walks_per_vertex = 8;
  eopts.walk_length = 20;
  eopts.epochs = 3;
  auto emb = ml::VertexEmbeddings::Train(g, eopts).ValueOrDie();

  double intra = 0, inter = 0;
  int intra_n = 0, inter_n = 0;
  for (VertexId a = 0; a < 20; ++a) {
    for (VertexId b = a + 1; b < 20; ++b) {
      if ((a < 10) == (b < 10)) {
        intra += emb.Similarity(a, b);
        ++intra_n;
      } else {
        inter += emb.Similarity(a, b);
        ++inter_n;
      }
    }
  }
  EXPECT_GT(intra / intra_n, inter / inter_n + 0.1);
}

TEST(EmbeddingsTest, MostSimilarPrefersSameClique) {
  EdgeList el(12);
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId v = u + 1; v < 6; ++v) el.Add(u, v);
  }
  for (VertexId u = 6; u < 12; ++u) {
    for (VertexId v = u + 1; v < 12; ++v) el.Add(u, v);
  }
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
  ml::EmbeddingOptions eopts;
  eopts.dimensions = 16;
  eopts.epochs = 3;
  auto emb = ml::VertexEmbeddings::Train(g, eopts).ValueOrDie();
  auto similar = emb.MostSimilar(0, 3);
  int same_clique = 0;
  for (VertexId v : similar) {
    if (v < 6) ++same_clique;
  }
  EXPECT_GE(same_clique, 2);
}

TEST(EmbeddingsTest, ShapesAndAccessors) {
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromEdges(gen::Cycle(8), opts).ValueOrDie();
  ml::EmbeddingOptions eopts;
  eopts.dimensions = 12;
  eopts.epochs = 1;
  auto emb = ml::VertexEmbeddings::Train(g, eopts).ValueOrDie();
  EXPECT_EQ(emb.dimensions(), 12u);
  EXPECT_EQ(emb.num_vertices(), 8u);
  EXPECT_EQ(emb.Vector(0).size(), 12u);
  EXPECT_NEAR(emb.Similarity(3, 3), 1.0, 1e-9);
  auto rows = emb.ToRows();
  EXPECT_EQ(rows.size(), 8u);
  EXPECT_EQ(rows[0].size(), 12u);
}

TEST(EmbeddingsTest, InvalidInputsRejected) {
  auto empty = CsrGraph::FromEdges(EdgeList{}).ValueOrDie();
  EXPECT_FALSE(ml::VertexEmbeddings::Train(empty).ok());
  auto g = CsrGraph::FromEdges(gen::Path(3)).ValueOrDie();
  ml::EmbeddingOptions bad;
  bad.dimensions = 0;
  EXPECT_FALSE(ml::VertexEmbeddings::Train(g, bad).ok());
}

// --------------------------------------- variable-length relationships ----

PropertyGraph ChainGraph() {
  PropertyGraph g;
  for (int i = 0; i < 6; ++i) {
    VertexId v = g.AddVertex("Node");
    g.SetVertexProperty(v, "idx", static_cast<int64_t>(i)).Abort();
  }
  for (VertexId i = 0; i + 1 < 6; ++i) g.AddEdge(i, i + 1, "next").ValueOrDie();
  return g;
}

TEST(VarLengthCypherTest, ParserAcceptsBounds) {
  auto q = query::ParseCypher("MATCH (a)-[:next*2..4]->(b) RETURN b").ValueOrDie();
  EXPECT_EQ(q.paths[0].edges[0].min_hops, 2u);
  EXPECT_EQ(q.paths[0].edges[0].max_hops, 4u);
  auto exact = query::ParseCypher("MATCH (a)-[:next*3]->(b) RETURN b").ValueOrDie();
  EXPECT_EQ(exact.paths[0].edges[0].min_hops, 3u);
  EXPECT_EQ(exact.paths[0].edges[0].max_hops, 3u);
  auto unbounded = query::ParseCypher("MATCH (a)-[*]->(b) RETURN b").ValueOrDie();
  EXPECT_EQ(unbounded.paths[0].edges[0].min_hops, 1u);
  EXPECT_EQ(unbounded.paths[0].edges[0].max_hops,
            query::EdgePattern::kMaxVarLength);
}

TEST(VarLengthCypherTest, ParserRejectsBadBounds) {
  EXPECT_FALSE(query::ParseCypher("MATCH (a)-[:x*0]->(b) RETURN b").ok());
  EXPECT_FALSE(query::ParseCypher("MATCH (a)-[:x*3..2]->(b) RETURN b").ok());
  EXPECT_FALSE(query::ParseCypher("MATCH (a)-[:x*1..]->(b) RETURN b").ok());
  EXPECT_FALSE(query::ParseCypher("MATCH (a)-[:x*1..99]->(b) RETURN b").ok());
}

TEST(VarLengthCypherTest, RangeMatchesOnChain) {
  PropertyGraph g = ChainGraph();
  // From vertex 0, nodes 2..4 hops away: idx 2, 3, 4.
  auto r = query::RunCypher(g,
                            "MATCH (a {idx: 0})-[:next*2..4]->(b) RETURN b.idx")
               .ValueOrDie();
  std::set<int64_t> found;
  for (const auto& row : r.rows) found.insert(std::get<int64_t>(row[0]));
  EXPECT_EQ(found, (std::set<int64_t>{2, 3, 4}));
}

TEST(VarLengthCypherTest, ExactHopCount) {
  PropertyGraph g = ChainGraph();
  auto r = query::RunCypher(g, "MATCH (a {idx: 1})-[:next*3]->(b) RETURN b.idx")
               .ValueOrDie();
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(r.rows[0][0]), 4);
}

TEST(VarLengthCypherTest, IncomingDirection) {
  PropertyGraph g = ChainGraph();
  auto r = query::RunCypher(g, "MATCH (a {idx: 4})<-[:next*2]-(b) RETURN b.idx")
               .ValueOrDie();
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(r.rows[0][0]), 2);
}

TEST(VarLengthCypherTest, TypeFilterApplies) {
  PropertyGraph g = ChainGraph();
  g.AddEdge(0, 5, "shortcut").ValueOrDie();
  // Via :next only, idx5 is 5 hops from 0 — outside *1..3.
  auto r = query::RunCypher(
               g, "MATCH (a {idx: 0})-[:next*1..3]->(b {idx: 5}) RETURN b")
               .ValueOrDie();
  EXPECT_TRUE(r.rows.empty());
  // Untyped var-length may use the shortcut.
  auto any = query::RunCypher(
                 g, "MATCH (a {idx: 0})-[*1..3]->(b {idx: 5}) RETURN b")
                 .ValueOrDie();
  EXPECT_EQ(any.rows.size(), 1u);
}

}  // namespace
}  // namespace ubigraph
