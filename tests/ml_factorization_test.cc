#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "gen/generators.h"
#include "ml/belief_propagation.h"
#include "ml/collaborative_filtering.h"
#include "ml/kmeans.h"
#include "ml/matrix_factorization.h"
#include "ml/regression.h"

namespace ubigraph::ml {
namespace {

/// A synthetic low-rank rating set: rating(u, i) = dot(p_u, q_i).
std::vector<Rating> SyntheticRatings(uint32_t users, uint32_t items,
                                     uint32_t rank, double density,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> p(users, std::vector<double>(rank));
  std::vector<std::vector<double>> q(items, std::vector<double>(rank));
  for (auto& row : p) {
    for (double& x : row) x = 0.5 + rng.NextDouble();
  }
  for (auto& row : q) {
    for (double& x : row) x = 0.5 + rng.NextDouble();
  }
  std::vector<Rating> ratings;
  for (uint32_t u = 0; u < users; ++u) {
    for (uint32_t i = 0; i < items; ++i) {
      if (!rng.NextBool(density)) continue;
      double v = 0;
      for (uint32_t f = 0; f < rank; ++f) v += p[u][f] * q[i][f];
      ratings.push_back({u, i, v});
    }
  }
  return ratings;
}

TEST(SgdTest, FitsLowRankData) {
  auto ratings = SyntheticRatings(30, 25, 3, 0.5, 1);
  FactorModel model(30, 25, 4, 7);
  FactorizationOptions opts;
  opts.epochs = 120;
  opts.learning_rate = 0.03;
  opts.regularization = 0.001;
  auto stats = TrainSgd(&model, ratings, opts);
  ASSERT_TRUE(stats.ok());
  EXPECT_LT(model.Rmse(ratings), 0.1);
  // RMSE should broadly decrease.
  EXPECT_LT(stats->epoch_rmse.back(), stats->epoch_rmse.front());
}

TEST(AlsTest, FitsLowRankData) {
  auto ratings = SyntheticRatings(30, 25, 3, 0.5, 2);
  FactorModel model(30, 25, 4, 9);
  FactorizationOptions opts;
  opts.epochs = 15;
  opts.regularization = 0.01;
  auto stats = TrainAls(&model, ratings, opts);
  ASSERT_TRUE(stats.ok());
  EXPECT_LT(model.Rmse(ratings), 0.1);
}

TEST(AlsTest, ConvergesFasterThanSgdPerEpoch) {
  auto ratings = SyntheticRatings(25, 20, 2, 0.6, 3);
  FactorModel sgd_model(25, 20, 3, 5);
  FactorModel als_model(25, 20, 3, 5);
  FactorizationOptions opts;
  opts.epochs = 5;
  TrainSgd(&sgd_model, ratings, opts).ValueOrDie();
  TrainAls(&als_model, ratings, opts).ValueOrDie();
  EXPECT_LT(als_model.Rmse(ratings), sgd_model.Rmse(ratings));
}

TEST(FactorModelTest, RecommendExcludesSeen) {
  auto ratings = SyntheticRatings(10, 8, 2, 0.7, 4);
  FactorModel model(10, 8, 3, 11);
  FactorizationOptions opts;
  opts.epochs = 30;
  TrainAls(&model, ratings, opts).ValueOrDie();
  std::vector<uint32_t> seen{0, 1, 2};
  auto recs = model.RecommendItems(0, 3, seen);
  EXPECT_LE(recs.size(), 3u);
  for (uint32_t item : recs) {
    EXPECT_EQ(std::find(seen.begin(), seen.end(), item), seen.end());
  }
}

TEST(FactorizationTest, InvalidInputsRejected) {
  FactorModel model(5, 5, 2, 1);
  EXPECT_FALSE(TrainSgd(&model, {}, {}).ok());
  std::vector<Rating> bad{{9, 0, 1.0}};
  EXPECT_FALSE(TrainSgd(&model, bad, {}).ok());
  EXPECT_FALSE(TrainAls(&model, bad, {}).ok());
}

TEST(ItemItemCfTest, SimilarityIsCosine) {
  // Items 0 and 1 rated identically by users 0, 1.
  std::vector<Rating> ratings{
      {0, 0, 4}, {0, 1, 4}, {1, 0, 2}, {1, 1, 2}, {2, 2, 5}};
  auto cf = ItemItemCf::Build(3, 3, ratings).ValueOrDie();
  EXPECT_NEAR(cf.Similarity(0, 1), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(cf.Similarity(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(cf.Similarity(1, 1), 1.0);
}

TEST(ItemItemCfTest, PredictUsesSimilarItems) {
  // User 2 rated item 0 high; item 1 is similar to item 0.
  std::vector<Rating> ratings{
      {0, 0, 5}, {0, 1, 5}, {1, 0, 1}, {1, 1, 1}, {2, 0, 5}};
  auto cf = ItemItemCf::Build(3, 2, ratings).ValueOrDie();
  EXPECT_NEAR(cf.Predict(2, 1), 5.0, 1e-9);
}

TEST(ItemItemCfTest, RecommendRanksCoRatedItems) {
  std::vector<Rating> ratings{
      {0, 0, 5}, {0, 1, 5}, {1, 0, 5}, {1, 2, 5}, {2, 0, 5}};
  auto cf = ItemItemCf::Build(3, 3, ratings).ValueOrDie();
  auto recs = cf.Recommend(2, 2);
  ASSERT_FALSE(recs.empty());
  // Items 1 and 2 both co-rated with 0; both valid recommendations.
  for (uint32_t item : recs) EXPECT_NE(item, 0u);
}

TEST(ItemItemCfTest, InvalidInputs) {
  EXPECT_FALSE(ItemItemCf::Build(2, 2, {}).ok());
  std::vector<Rating> bad{{5, 0, 1.0}};
  EXPECT_FALSE(ItemItemCf::Build(2, 2, bad).ok());
}

TEST(LinearRegressionTest, RecoversLine) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (double v = 0; v < 10; ++v) {
    x.push_back({v});
    y.push_back(3.0 * v + 1.0);
  }
  RegressionOptions opts;
  opts.epochs = 4000;
  opts.learning_rate = 0.02;
  opts.l2 = 0.0;
  auto model = LinearRegression::Fit(x, y, opts).ValueOrDie();
  EXPECT_NEAR(model.weights()[0], 3.0, 0.05);
  EXPECT_NEAR(model.bias(), 1.0, 0.3);
  EXPECT_LT(model.TrainMse(x, y), 0.05);
}

TEST(LinearRegressionTest, InvalidInputsRejected) {
  EXPECT_FALSE(LinearRegression::Fit({}, {}).ok());
  EXPECT_FALSE(LinearRegression::Fit({{1.0}}, {1.0, 2.0}).ok());
  EXPECT_FALSE(LinearRegression::Fit({{1.0}, {1.0, 2.0}}, {1.0, 2.0}).ok());
}

TEST(LogisticRegressionTest, SeparatesLinearlySeparableData) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    double a = rng.NextDouble() * 2 - 1;
    double b = rng.NextDouble() * 2 - 1;
    x.push_back({a, b});
    y.push_back(a + b > 0 ? 1 : 0);
  }
  RegressionOptions opts;
  opts.epochs = 2000;
  opts.learning_rate = 0.5;
  auto model = LogisticRegression::Fit(x, y, opts).ValueOrDie();
  EXPECT_GT(model.Accuracy(x, y), 0.95);
}

TEST(LogisticRegressionTest, RejectsNonBinaryLabels) {
  EXPECT_FALSE(LogisticRegression::Fit({{1.0}}, {2}).ok());
}

TEST(VertexFeaturesTest, ShapeAndBasicValues) {
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromEdges(gen::Complete(5), opts).ValueOrDie();
  auto features = ExtractVertexFeatures(g);
  ASSERT_EQ(features.size(), 5u);
  for (const auto& f : features) {
    ASSERT_EQ(f.size(), 5u);
    EXPECT_DOUBLE_EQ(f[0], 4.0);  // degree
    EXPECT_DOUBLE_EQ(f[2], 1.0);  // clustering
    EXPECT_DOUBLE_EQ(f[3], 4.0);  // core
    EXPECT_NEAR(f[4], 0.2, 1e-6);  // uniform pagerank
  }
}

TEST(KMeansTest, SeparatesTwoBlobs) {
  Rng rng(8);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 40; ++i) {
    points.push_back({rng.NextGaussian() * 0.1, rng.NextGaussian() * 0.1});
  }
  for (int i = 0; i < 40; ++i) {
    points.push_back({5 + rng.NextGaussian() * 0.1, 5 + rng.NextGaussian() * 0.1});
  }
  auto r = KMeans(points, 2).ValueOrDie();
  EXPECT_TRUE(r.converged);
  // All of the first blob share a cluster, all of the second the other.
  for (int i = 1; i < 40; ++i) EXPECT_EQ(r.assignment[i], r.assignment[0]);
  for (int i = 41; i < 80; ++i) EXPECT_EQ(r.assignment[i], r.assignment[40]);
  EXPECT_NE(r.assignment[0], r.assignment[40]);
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  Rng rng(9);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 60; ++i) {
    points.push_back({rng.NextDouble() * 10, rng.NextDouble() * 10});
  }
  double inertia2 = KMeans(points, 2).ValueOrDie().inertia;
  double inertia8 = KMeans(points, 8).ValueOrDie().inertia;
  EXPECT_LT(inertia8, inertia2);
}

TEST(KMeansTest, InvalidInputsRejected) {
  EXPECT_FALSE(KMeans({}, 2).ok());
  EXPECT_FALSE(KMeans({{1.0}}, 0).ok());
  EXPECT_FALSE(KMeans({{1.0}}, 5).ok());
  EXPECT_FALSE(KMeans({{1.0}, {1.0, 2.0}}, 1).ok());
}

TEST(NormalizeFeaturesTest, MapsToUnitRange) {
  std::vector<std::vector<double>> points{{0, 10}, {5, 10}, {10, 10}};
  NormalizeFeatures(&points);
  EXPECT_DOUBLE_EQ(points[0][0], 0.0);
  EXPECT_DOUBLE_EQ(points[1][0], 0.5);
  EXPECT_DOUBLE_EQ(points[2][0], 1.0);
  EXPECT_DOUBLE_EQ(points[0][1], 0.0);  // constant dimension -> 0
}

TEST(BeliefPropagationTest, ExactOnTwoVertexChain) {
  // Two vertices, attractive coupling; vertex 0 biased to state 1.
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromEdges(gen::Path(2), opts).ValueOrDie();
  PairwiseMrf mrf = MakeIsingMrf(2, {1.0, 0.0}, 2.0);
  auto r = LoopyBeliefPropagation(g, mrf).ValueOrDie();
  EXPECT_TRUE(r.converged);
  auto states = r.MapStates(2);
  EXPECT_EQ(states[0], 1u);
  EXPECT_EQ(states[1], 1u);  // pulled by the attractive coupling
  // Beliefs normalized.
  EXPECT_NEAR(r.beliefs[0] + r.beliefs[1], 1.0, 1e-9);
}

TEST(BeliefPropagationTest, MatchesBruteForceOnTree) {
  // Star with 3 leaves, random potentials; compare marginals with exhaustive
  // enumeration (BP is exact on trees).
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromEdges(gen::Star(3), opts).ValueOrDie();
  PairwiseMrf mrf;
  mrf.num_states = 2;
  mrf.unary = {0.7, 0.3, 0.4, 0.6, 0.5, 0.5, 0.8, 0.2};
  mrf.pairwise = {1.5, 0.5, 0.5, 1.5};
  BeliefPropagationOptions bopts;
  bopts.max_iterations = 100;
  auto r = LoopyBeliefPropagation(g, mrf, bopts).ValueOrDie();

  // Brute force over 2^4 configurations.
  double z = 0.0;
  double marginal1[4] = {0, 0, 0, 0};  // P(v = state 1)
  for (int cfg = 0; cfg < 16; ++cfg) {
    int s[4];
    for (int v = 0; v < 4; ++v) s[v] = (cfg >> v) & 1;
    double w = 1.0;
    for (int v = 0; v < 4; ++v) w *= mrf.unary[v * 2 + s[v]];
    for (int leaf = 1; leaf < 4; ++leaf) w *= mrf.pairwise[s[0] * 2 + s[leaf]];
    z += w;
    for (int v = 0; v < 4; ++v) {
      if (s[v] == 1) marginal1[v] += w;
    }
  }
  for (int v = 0; v < 4; ++v) {
    EXPECT_NEAR(r.beliefs[v * 2 + 1], marginal1[v] / z, 1e-6) << "vertex " << v;
  }
}

TEST(BeliefPropagationTest, InvalidMrfRejected) {
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromEdges(gen::Path(3), opts).ValueOrDie();
  PairwiseMrf bad = MakeIsingMrf(2, {}, 2.0);  // wrong vertex count
  EXPECT_FALSE(LoopyBeliefPropagation(g, bad).ok());
  PairwiseMrf zero_states;
  zero_states.num_states = 0;
  EXPECT_FALSE(LoopyBeliefPropagation(g, zero_states).ok());
}

TEST(BeliefPropagationTest, DampingStillConverges) {
  Rng rng(10);
  auto el = gen::ErdosRenyi(20, 40, &rng).ValueOrDie();
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
  PairwiseMrf mrf = MakeIsingMrf(20, std::vector<double>(20, 0.1), 1.5);
  BeliefPropagationOptions bopts;
  bopts.damping = 0.5;
  bopts.max_iterations = 200;
  auto r = LoopyBeliefPropagation(g, mrf, bopts).ValueOrDie();
  EXPECT_TRUE(r.converged);
}

}  // namespace
}  // namespace ubigraph::ml
