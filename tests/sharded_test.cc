// Differential tests for sharded, out-of-core execution (src/shard/): the
// sharded kernels must reproduce the in-RAM kernels bitwise across every
// {threads} x {shards} x {encoding} combination, through both the in-memory
// (Build) and on-disk (WriteTo/Open, resident or mmap'ed under a byte budget)
// paths. See shard_kernels.h for the determinism argument these tests pin.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <tuple>
#include <vector>

#include "algorithms/connected_components.h"
#include "algorithms/pagerank.h"
#include "algorithms/traversal.h"
#include "common/random.h"
#include "gen/generators.h"
#include "graph/ordering.h"
#include "shard/shard_kernels.h"
#include "shard/sharded_csr.h"

namespace ubigraph::shard {
namespace {

namespace fs = std::filesystem;

/// Self-cleaning scratch directory, unique per (test, process) so parallel
/// ctest invocations of this binary never collide.
class TempDir {
 public:
  TempDir() {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    static int counter = 0;
    std::string name = std::string(info->test_suite_name()) + "_" +
                       info->name() + "_" + std::to_string(getpid()) + "_" +
                       std::to_string(counter++);
    std::replace(name.begin(), name.end(), '/', '_');
    path_ = fs::temp_directory_path() / ("ubigraph_sharded_" + name);
    fs::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

/// Directed RMAT with dangling vertices, duplicate edges, and skewed degrees
/// — the adversarial shape for the dangling-mass and association arguments.
const CsrGraph& RmatGraph() {
  static const CsrGraph g = [] {
    Rng rng(7);
    auto el = gen::Rmat(9, 4096, &rng).ValueOrDie();
    CsrOptions opts;
    opts.directed = true;
    return CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
  }();
  return g;
}

const CsrGraph& CommunityGraph() {
  static const CsrGraph g = [] {
    Rng rng(11);
    auto el = gen::PlantedPartition(200, 4, 0.3, 0.01, &rng).ValueOrDie();
    CsrOptions opts;
    opts.directed = false;
    return CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
  }();
  return g;
}

constexpr double kTolerance = 1e-10;
constexpr uint32_t kMaxIters = 60;

algo::PageRankResult SerialPushPageRank(const CsrGraph& g) {
  algo::PageRankOptions opts;
  opts.mode = algo::PageRankMode::kPush;
  opts.num_threads = 1;
  opts.tolerance = kTolerance;
  opts.max_iterations = kMaxIters;
  return algo::PageRank(g, opts).ValueOrDie();
}

ShardedPageRankResult RunShardedPageRank(const ShardedCsr& s,
                                         uint32_t threads) {
  ShardedPageRankOptions opts;
  opts.tolerance = kTolerance;
  opts.max_iterations = kMaxIters;
  opts.num_threads = threads;
  return ShardedPageRank(s, opts).ValueOrDie();
}

ShardedPageRankResult RunShardedPageRankMsg(const ShardedCsr& s,
                                            uint32_t threads,
                                            const MsgOptions& msg) {
  ShardedPageRankOptions opts;
  opts.tolerance = kTolerance;
  opts.max_iterations = kMaxIters;
  opts.num_threads = threads;
  opts.msg = msg;
  return ShardedPageRank(s, opts).ValueOrDie();
}

MsgOptions UncombinedMsg(uint64_t budget, const std::string& spill_dir,
                         MsgStats* stats = nullptr) {
  MsgOptions m;
  m.strategy = MsgStrategy::kUncombined;
  m.message_budget_bytes = budget;
  m.spill_dir = spill_dir;
  m.stats_out = stats;
  return m;
}

std::vector<std::string> SpillFilesIn(const fs::path& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  fs::directory_iterator it(dir, ec), end;
  for (; !ec && it != end; it.increment(ec)) {
    if (it->path().extension() == ".spill") out.push_back(it->path().string());
  }
  return out;
}

void ExpectBitwiseEqual(const std::vector<double>& got,
                        const std::vector<double>& want) {
  ASSERT_EQ(got.size(), want.size());
  // Element-wise first for a readable failure, then the memcmp that makes
  // the "bitwise" claim literal.
  for (size_t v = 0; v < got.size(); ++v) {
    ASSERT_EQ(got[v], want[v]) << "score diverges at vertex " << v;
  }
  EXPECT_EQ(std::memcmp(got.data(), want.data(), got.size() * sizeof(double)),
            0);
}

// ---------------------------------------------------------------------------
// The acceptance matrix: {1,2,4,8} threads x {1,4,16} shards x plain /
// compressed segments, for every partitioner.
// ---------------------------------------------------------------------------

class ShardedMatrixTest
    : public ::testing::TestWithParam<
          std::tuple<uint32_t, uint32_t, SegmentEncoding>> {
 protected:
  uint32_t threads() const { return std::get<0>(GetParam()); }
  ShardOptions Options(ShardPartitioner p) const {
    ShardOptions o;
    o.num_shards = std::get<1>(GetParam());
    o.encoding = std::get<2>(GetParam());
    o.partitioner = p;
    return o;
  }
};

TEST_P(ShardedMatrixTest, ContiguousPageRankBitwiseEqualsSerialPush) {
  const CsrGraph& g = RmatGraph();
  const algo::PageRankResult want = SerialPushPageRank(g);
  auto s = ShardedCsr::Build(g, Options(ShardPartitioner::kContiguous))
               .ValueOrDie();
  const ShardedPageRankResult got = RunShardedPageRank(s, threads());
  EXPECT_EQ(got.iterations, want.iterations);
  EXPECT_EQ(got.converged, want.converged);
  EXPECT_EQ(got.final_delta, want.final_delta);
  ExpectBitwiseEqual(got.scores, want.scores);
}

TEST_P(ShardedMatrixTest, PartitionedPageRankBitwiseEqualsRelabeledAnchor) {
  const CsrGraph& g = RmatGraph();
  for (ShardPartitioner p :
       {ShardPartitioner::kLdg, ShardPartitioner::kBfsGrow}) {
    SCOPED_TRACE(ShardPartitionerName(p));
    auto s = ShardedCsr::Build(g, Options(p)).ValueOrDie();
    // The anchor is serial push PageRank on the SAME relabeled graph the
    // shards encode: permutation association differs from the original graph,
    // but the sharded run must reproduce it exactly at every thread count.
    const std::vector<VertexId> perm = InversePermutation(s.new_to_old());
    PermuteOptions popts;
    popts.sort_neighbors = true;
    const CsrGraph anchor_g =
        std::move(g.Permute(perm, popts).ValueOrDie().graph);
    const algo::PageRankResult want = SerialPushPageRank(anchor_g);
    const ShardedPageRankResult got = RunShardedPageRank(s, threads());
    EXPECT_EQ(got.iterations, want.iterations);
    EXPECT_EQ(got.final_delta, want.final_delta);
    ASSERT_EQ(got.scores.size(), want.scores.size());
    for (VertexId v = 0; v < want.scores.size(); ++v) {
      // got is indexed by original id; the anchor by relabeled id.
      ASSERT_EQ(got.scores[s.new_to_old()[v]], want.scores[v])
          << "relabeled vertex " << v;
    }
  }
}

TEST_P(ShardedMatrixTest, BfsMatchesInRamDistances) {
  const CsrGraph& g = RmatGraph();
  const std::vector<uint32_t> want = algo::BfsDistances(g, 0);
  for (ShardPartitioner p :
       {ShardPartitioner::kContiguous, ShardPartitioner::kLdg,
        ShardPartitioner::kBfsGrow}) {
    SCOPED_TRACE(ShardPartitionerName(p));
    auto s = ShardedCsr::Build(g, Options(p)).ValueOrDie();
    ShardedTraversalOptions topts;
    topts.num_threads = threads();
    const std::vector<uint32_t> got = ShardedBfs(s, 0, topts).ValueOrDie();
    EXPECT_EQ(got, want);
  }
}

TEST_P(ShardedMatrixTest, ComponentsMatchInRamLabels) {
  const CsrGraph& g = RmatGraph();
  const algo::ComponentResult want = algo::WeaklyConnectedComponents(g);
  for (ShardPartitioner p :
       {ShardPartitioner::kContiguous, ShardPartitioner::kLdg,
        ShardPartitioner::kBfsGrow}) {
    SCOPED_TRACE(ShardPartitionerName(p));
    auto s = ShardedCsr::Build(g, Options(p)).ValueOrDie();
    ShardedTraversalOptions topts;
    topts.num_threads = threads();
    const algo::ComponentResult got =
        ShardedComponents(s, topts).ValueOrDie();
    EXPECT_EQ(got.num_components, want.num_components);
    EXPECT_EQ(got.label, want.label);
  }
}

TEST_P(ShardedMatrixTest, UncombinedOracleBitwiseEqualsSerialPush) {
  // The replay oracle (kUncombined, unlimited budget — PR 9's exact path)
  // must keep matching serial push now that kDenseCombine is the default.
  const CsrGraph& g = RmatGraph();
  const algo::PageRankResult want = SerialPushPageRank(g);
  auto s = ShardedCsr::Build(g, Options(ShardPartitioner::kContiguous))
               .ValueOrDie();
  MsgStats stats;
  MsgOptions msg = UncombinedMsg(0, "", &stats);
  const ShardedPageRankResult got =
      RunShardedPageRankMsg(s, threads(), msg);
  EXPECT_EQ(got.iterations, want.iterations);
  ExpectBitwiseEqual(got.scores, want.scores);
  // Unlimited budget: everything buffered, nothing spilled, nothing combined.
  EXPECT_EQ(stats.spill_files, 0u);
  EXPECT_GT(stats.peak_msg_bytes, 0u);
  EXPECT_EQ(stats.combined_edges, 0u);
}

TEST_P(ShardedMatrixTest, ForcedSpillPageRankBitwiseEqualsSerialPush) {
  // A budget far below one iteration's message traffic (12 B x 4096 edges)
  // forces constant spilling; the result must not move by a single bit, the
  // budget must hold, and no scratch may survive the run.
  constexpr uint64_t kBudget = 1024;
  const CsrGraph& g = RmatGraph();
  const algo::PageRankResult want = SerialPushPageRank(g);
  auto s = ShardedCsr::Build(g, Options(ShardPartitioner::kContiguous))
               .ValueOrDie();
  TempDir spill;
  MsgStats stats;
  const MsgOptions msg = UncombinedMsg(kBudget, spill.str(), &stats);
  const ShardedPageRankResult got =
      RunShardedPageRankMsg(s, threads(), msg);
  EXPECT_EQ(got.iterations, want.iterations);
  EXPECT_EQ(got.final_delta, want.final_delta);
  ExpectBitwiseEqual(got.scores, want.scores);
  EXPECT_GE(stats.spill_files, 1u);
  EXPECT_GT(stats.spill_bytes, 0u);
  EXPECT_GT(stats.peak_msg_bytes, 0u);
  EXPECT_LE(stats.peak_msg_bytes, kBudget);
  EXPECT_TRUE(SpillFilesIn(spill.path()).empty())
      << "spill scratch leaked after a successful run";
}

TEST_P(ShardedMatrixTest, ForcedSpillTraversalsMatchInRam) {
  constexpr uint64_t kBudget = 1024;
  const CsrGraph& g = RmatGraph();
  const std::vector<uint32_t> want_bfs = algo::BfsDistances(g, 0);
  const algo::ComponentResult want_cc = algo::WeaklyConnectedComponents(g);
  auto s = ShardedCsr::Build(g, Options(ShardPartitioner::kContiguous))
               .ValueOrDie();
  TempDir spill;

  MsgStats bfs_stats;
  ShardedTraversalOptions bopts;
  bopts.num_threads = threads();
  bopts.msg = UncombinedMsg(kBudget, spill.str(), &bfs_stats);
  EXPECT_EQ(ShardedBfs(s, 0, bopts).ValueOrDie(), want_bfs);
  EXPECT_LE(bfs_stats.peak_msg_bytes, kBudget);

  MsgStats cc_stats;
  ShardedTraversalOptions copts;
  copts.num_threads = threads();
  copts.msg = UncombinedMsg(kBudget, spill.str(), &cc_stats);
  const algo::ComponentResult got_cc =
      ShardedComponents(s, copts).ValueOrDie();
  EXPECT_EQ(got_cc.num_components, want_cc.num_components);
  EXPECT_EQ(got_cc.label, want_cc.label);
  EXPECT_GE(cc_stats.spill_files, 1u);
  EXPECT_LE(cc_stats.peak_msg_bytes, kBudget);

  EXPECT_TRUE(SpillFilesIn(spill.path()).empty());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ShardedMatrixTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(1u, 4u, 16u),
                       ::testing::Values(SegmentEncoding::kPlain,
                                         SegmentEncoding::kCompressed)),
    [](const auto& info) {
      return "t" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param)) + "_" +
             SegmentEncodingName(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Undirected graphs (symmetrized CSR) through the same kernels.
// ---------------------------------------------------------------------------

TEST(ShardedUndirectedTest, PageRankAndComponentsMatch) {
  const CsrGraph& g = CommunityGraph();
  const algo::PageRankResult want_pr = SerialPushPageRank(g);
  const algo::ComponentResult want_cc = algo::WeaklyConnectedComponents(g);
  for (SegmentEncoding enc :
       {SegmentEncoding::kPlain, SegmentEncoding::kCompressed}) {
    ShardOptions opts;
    opts.num_shards = 6;
    opts.encoding = enc;
    auto s = ShardedCsr::Build(g, opts).ValueOrDie();
    ExpectBitwiseEqual(RunShardedPageRank(s, 4).scores, want_pr.scores);
    EXPECT_EQ(ShardedComponents(s).ValueOrDie().label, want_cc.label);
  }
}

TEST(ShardedSmallGraphTest, TinyShapes) {
  // Single vertex, no edges.
  auto g1 = CsrGraph::FromPairs(1, {}).ValueOrDie();
  auto s1 = ShardedCsr::Build(g1).ValueOrDie();
  EXPECT_EQ(RunShardedPageRank(s1, 1).scores, std::vector<double>{1.0});
  EXPECT_EQ(ShardedBfs(s1, 0).ValueOrDie(), std::vector<uint32_t>{0});

  // Directed path: more shards than convenient, dangling tail.
  auto g2 =
      CsrGraph::FromPairs(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}}).ValueOrDie();
  ShardOptions opts;
  opts.num_shards = 5;
  auto s2 = ShardedCsr::Build(g2, opts).ValueOrDie();
  ExpectBitwiseEqual(RunShardedPageRank(s2, 2).scores,
                     SerialPushPageRank(g2).scores);
  EXPECT_EQ(ShardedBfs(s2, 0).ValueOrDie(), algo::BfsDistances(g2, 0));
  EXPECT_EQ(ShardedComponents(s2).ValueOrDie().label,
            algo::WeaklyConnectedComponents(g2).label);
}

// ---------------------------------------------------------------------------
// On-disk round trip: WriteTo + Open (resident and mmap'ed) reproduce the
// in-memory instance bitwise.
// ---------------------------------------------------------------------------

TEST(ShardedRoundTripTest, WriteOpenReproducesKernelsBitwise) {
  const CsrGraph& g = RmatGraph();
  ShardOptions opts;
  opts.num_shards = 8;
  opts.partitioner = ShardPartitioner::kBfsGrow;
  opts.encoding = SegmentEncoding::kCompressed;
  auto built = ShardedCsr::Build(g, opts).ValueOrDie();
  const ShardedPageRankResult want = RunShardedPageRank(built, 1);
  const std::vector<uint32_t> want_bfs = ShardedBfs(built, 0).ValueOrDie();

  TempDir dir;
  ASSERT_TRUE(built.WriteTo(dir.str()).ok());

  for (SegmentStorage storage :
       {SegmentStorage::kResident, SegmentStorage::kMapped}) {
    ShardOpenOptions oopts;
    oopts.storage = storage;
    auto opened = ShardedCsr::Open(dir.str(), oopts).ValueOrDie();
    EXPECT_EQ(opened.num_vertices(), built.num_vertices());
    EXPECT_EQ(opened.num_edges(), built.num_edges());
    EXPECT_EQ(opened.num_shards(), built.num_shards());
    const ShardedPageRankResult got = RunShardedPageRank(opened, 4);
    EXPECT_EQ(got.iterations, want.iterations);
    ExpectBitwiseEqual(got.scores, want.scores);
    EXPECT_EQ(ShardedBfs(opened, 0).ValueOrDie(), want_bfs);
  }
}

TEST(ShardedOutOfCoreTest, BudgetedCacheStaysPartialAndExact) {
  const CsrGraph& g = RmatGraph();
  ShardOptions opts;
  opts.num_shards = 16;
  opts.encoding = SegmentEncoding::kPlain;
  auto built = ShardedCsr::Build(g, opts).ValueOrDie();
  const ShardedPageRankResult want = RunShardedPageRank(built, 1);

  TempDir dir;
  ASSERT_TRUE(built.WriteTo(dir.str()).ok());

  ShardOpenOptions oopts;
  oopts.storage = SegmentStorage::kMapped;
  oopts.budget_bytes = built.cache().total_bytes() / 3;
  auto opened = ShardedCsr::Open(dir.str(), oopts).ValueOrDie();
  ASSERT_LT(opened.cache().budget_bytes(), opened.cache().total_bytes())
      << "test must exercise true out-of-core execution";

  const ShardedPageRankResult got = RunShardedPageRank(opened, 2);
  ExpectBitwiseEqual(got.scores, want.scores);
  // The cache cycled segments instead of accumulating them all.
  EXPECT_GT(opened.cache().peak_segment_bytes(), 0u);
  EXPECT_LT(opened.cache().peak_segment_bytes(),
            opened.cache().total_bytes());
  EXPECT_EQ(ShardedBfs(opened, 0).ValueOrDie(),
            ShardedBfs(built, 0).ValueOrDie());
  EXPECT_EQ(ShardedComponents(opened).ValueOrDie().label,
            ShardedComponents(built).ValueOrDie().label);
}

TEST(ShardedOutOfCoreTest, MessageBudgetBoundsPeakMsgBytes) {
  // True out-of-core run: mmap'ed segments under a cache budget AND message
  // streams under a message budget. Dense combine buffers nothing at all;
  // the spilling oracle must stay under its budget and leave no scratch in
  // the shard directory (the default spill placement).
  const CsrGraph& g = RmatGraph();
  ShardOptions opts;
  opts.num_shards = 16;
  auto built = ShardedCsr::Build(g, opts).ValueOrDie();
  TempDir dir;
  ASSERT_TRUE(built.WriteTo(dir.str()).ok());

  ShardOpenOptions oopts;
  oopts.storage = SegmentStorage::kMapped;
  oopts.budget_bytes = built.cache().total_bytes() / 3;
  auto opened = ShardedCsr::Open(dir.str(), oopts).ValueOrDie();

  MsgStats dense_stats;
  MsgOptions dense_msg;
  dense_msg.stats_out = &dense_stats;
  const ShardedPageRankResult dense =
      RunShardedPageRankMsg(opened, 1, dense_msg);
  EXPECT_EQ(dense_stats.peak_msg_bytes, 0u);
  EXPECT_EQ(dense_stats.spill_files, 0u);
  EXPECT_GT(dense_stats.combined_edges, 0u);

  constexpr uint64_t kBudget = 2048;
  MsgStats spill_stats;
  // Empty spill_dir: scratch defaults into the graph's own directory.
  const MsgOptions spill_msg = UncombinedMsg(kBudget, "", &spill_stats);
  const ShardedPageRankResult spilled =
      RunShardedPageRankMsg(opened, 2, spill_msg);
  ExpectBitwiseEqual(spilled.scores, dense.scores);
  EXPECT_GE(spill_stats.spill_files, 1u);
  EXPECT_LE(spill_stats.peak_msg_bytes, kBudget);
  EXPECT_TRUE(SpillFilesIn(dir.path()).empty())
      << "spill scratch leaked into the shard directory";
}

// ---------------------------------------------------------------------------
// Spill scratch lifecycle: files must vanish on every exit path.
// ---------------------------------------------------------------------------

TEST(ShardedSpillCleanupTest, NoSpillFilesSurviveMidIterationError) {
  const CsrGraph& g = RmatGraph();
  ShardOptions opts;
  opts.num_shards = 16;
  auto built = ShardedCsr::Build(g, opts).ValueOrDie();
  TempDir dir;
  ASSERT_TRUE(built.WriteTo(dir.str()).ok());

  const MsgOptions msg = UncombinedMsg(/*budget=*/512, dir.str());
  {
    // Intact control run: proves this exact configuration spills well before
    // the last shard is reached.
    auto opened = ShardedCsr::Open(dir.str()).ValueOrDie();
    MsgStats stats;
    MsgOptions counted = msg;
    counted.stats_out = &stats;
    RunShardedPageRankMsg(opened, 1, counted);
    ASSERT_GE(stats.spill_files, 1u);
  }

  // Flip one payload byte of the LAST segment: the header probe at Open
  // passes, but the first load of that segment fails its checksum — an error
  // raised mid-iteration, after the early shards already spilled.
  const fs::path victim = dir.path() / "segment_00015.ugsg";
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    ASSERT_GT(size, 80);
    f.seekg(size - 1);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(size - 1);
    f.write(&byte, 1);
  }

  ShardOpenOptions oopts;
  oopts.storage = SegmentStorage::kMapped;
  auto opened = ShardedCsr::Open(dir.str(), oopts);
  if (opened.ok()) {
    ShardedPageRankOptions popts;
    popts.tolerance = kTolerance;
    popts.max_iterations = kMaxIters;
    popts.num_threads = 1;
    popts.msg = msg;
    EXPECT_FALSE(ShardedPageRank(*opened, popts).ok());
  }
  EXPECT_TRUE(SpillFilesIn(dir.path()).empty())
      << "spill scratch survived a kernel error";
}

// ---------------------------------------------------------------------------
// MsgStreams unit level: replay order, budget accounting, RAII cleanup.
// ---------------------------------------------------------------------------

TEST(MsgStreamsTest, SpillReplayPreservesAscendingWorkerEmissionOrder) {
  TempDir dir;
  std::vector<std::string> paths;
  {
    auto ms = MsgStreams<double>::Create(/*workers=*/2, /*shards=*/2,
                                         /*budget_bytes=*/64, dir.str())
                  .ValueOrDie();
    // Emit through worker 1 FIRST: replay must still deliver worker 0's
    // records first (ascending worker order), each worker's in emission
    // order, spilled blocks before the in-RAM tail.
    std::vector<std::pair<VertexId, double>> want[2];
    for (VertexId i = 0; i < 100; ++i) {
      ASSERT_TRUE(ms.Emit(1, i % 2, i, 0.5 * i).ok());
    }
    for (VertexId i = 0; i < 100; ++i) {
      ASSERT_TRUE(ms.Emit(0, i % 2, 1000 + i, 0.25 * i).ok());
    }
    for (VertexId i = 0; i < 100; ++i) {
      want[i % 2].emplace_back(1000 + i, 0.25 * i);  // worker 0 first
    }
    for (VertexId i = 0; i < 100; ++i) {
      want[i % 2].emplace_back(i, 0.5 * i);
    }
    for (uint32_t t = 0; t < 2; ++t) {
      std::vector<std::pair<VertexId, double>> got;
      ASSERT_TRUE(ms.Replay(t, [&](VertexId dst, double val) {
                      got.emplace_back(dst, val);
                    }).ok());
      EXPECT_EQ(got, want[t]) << "shard " << t;
    }

    const MsgStats stats = ms.stats();
    EXPECT_EQ(stats.spill_files, 2u);
    EXPECT_GT(stats.spill_bytes, 0u);
    EXPECT_LE(stats.peak_msg_bytes, 64u);
    paths = ms.spill_paths();
    ASSERT_EQ(paths.size(), 2u);
    for (const std::string& p : paths) EXPECT_TRUE(fs::exists(p));

    // Reset truncates and forgets everything; the streams stay usable.
    ASSERT_TRUE(ms.Reset().ok());
    size_t replayed = 0;
    ASSERT_TRUE(ms.Replay(0, [&](VertexId, double) { ++replayed; }).ok());
    EXPECT_EQ(replayed, 0u);
    ASSERT_TRUE(ms.Emit(0, 0, 7, 1.5).ok());
  }
  // Destruction unlinks the scratch.
  for (const std::string& p : paths) EXPECT_FALSE(fs::exists(p));
  EXPECT_TRUE(SpillFilesIn(dir.path()).empty());
}

TEST(MsgStreamsTest, BudgetWithoutSpillDirRejected) {
  EXPECT_FALSE(MsgStreams<double>::Create(1, 1, 1024, "").ok());
  EXPECT_FALSE(MsgStreams<double>::Create(0, 1, 0, "").ok());
}

// ---------------------------------------------------------------------------
// Validation and failure paths.
// ---------------------------------------------------------------------------

TEST(ShardedValidationTest, BuildRejectsBadInputs) {
  EXPECT_FALSE(ShardedCsr::Build(CsrGraph()).ok());  // empty graph
  ShardOptions opts;
  opts.num_shards = 0;
  EXPECT_FALSE(ShardedCsr::Build(RmatGraph(), opts).ok());
  opts.num_shards = 70000;
  EXPECT_FALSE(ShardedCsr::Build(RmatGraph(), opts).ok());

  // Compressed segments need sorted rows under the contiguous partitioner.
  Rng rng(3);
  auto el = gen::ErdosRenyi(64, 256, &rng).ValueOrDie();
  CsrOptions copts;
  copts.sort_neighbors = false;
  auto unsorted = CsrGraph::FromEdges(std::move(el), copts).ValueOrDie();
  ShardOptions sopts;
  sopts.encoding = SegmentEncoding::kCompressed;
  EXPECT_FALSE(ShardedCsr::Build(unsorted, sopts).ok());
  // The partitioned path re-sorts during the relabel, so it accepts the
  // same graph.
  sopts.partitioner = ShardPartitioner::kLdg;
  EXPECT_TRUE(ShardedCsr::Build(unsorted, sopts).ok());
}

TEST(ShardedValidationTest, BfsSourceOutOfRangeRejected) {
  auto s = ShardedCsr::Build(CommunityGraph()).ValueOrDie();
  EXPECT_FALSE(ShardedBfs(s, CommunityGraph().num_vertices()).ok());
}

TEST(ShardedValidationTest, OpenMissingDirectoryFails) {
  EXPECT_FALSE(ShardedCsr::Open("/nonexistent/ubigraph_shard_dir").ok());
}

TEST(ShardedValidationTest, ForeignSegmentFileDetected) {
  // A structurally valid segment from a DIFFERENT graph swapped into a
  // directory must be caught by the manifest cross-check, not trusted.
  const CsrGraph& big = RmatGraph();
  auto g_small =
      CsrGraph::FromPairs(64, {{0, 1}, {1, 2}, {5, 9}, {20, 40}}).ValueOrDie();
  ShardOptions opts;
  opts.num_shards = 4;
  auto s_big = ShardedCsr::Build(big, opts).ValueOrDie();
  auto s_small = ShardedCsr::Build(g_small, opts).ValueOrDie();

  TempDir dir_big, dir_small;
  ASSERT_TRUE(s_big.WriteTo(dir_big.str()).ok());
  ASSERT_TRUE(s_small.WriteTo(dir_small.str()).ok());
  fs::copy_file(dir_small.path() / "segment_00001.ugsg",
                dir_big.path() / "segment_00001.ugsg",
                fs::copy_options::overwrite_existing);

  ShardOpenOptions oopts;
  oopts.storage = SegmentStorage::kMapped;
  auto opened = ShardedCsr::Open(dir_big.str(), oopts);
  if (opened.ok()) {
    // Header probe may pass (sizes are self-consistent); the pinned-view
    // cross-check against the manifest must then fail.
    EXPECT_FALSE(opened->AcquireShard(1).ok());
    EXPECT_FALSE(ShardedPageRank(*opened).ok());
  }
}

TEST(ShardedCacheTest, PinBlocksEvictionAndViewsStayValid) {
  const CsrGraph& g = RmatGraph();
  ShardOptions opts;
  opts.num_shards = 8;
  auto built = ShardedCsr::Build(g, opts).ValueOrDie();
  TempDir dir;
  ASSERT_TRUE(built.WriteTo(dir.str()).ok());

  ShardOpenOptions oopts;
  oopts.storage = SegmentStorage::kMapped;
  oopts.budget_bytes = 1;  // smaller than any segment: every load over budget
  auto opened = ShardedCsr::Open(dir.str(), oopts).ValueOrDie();
  auto pin0 = opened.AcquireShard(0).ValueOrDie();
  const SegmentView& v0 = pin0.view();
  EXPECT_EQ(v0.begin, opened.shard_begin(0));
  // Cycling other shards evicts them, never the pinned one.
  for (uint32_t s = 1; s < opened.num_shards(); ++s) {
    auto pin = opened.AcquireShard(s).ValueOrDie();
    EXPECT_EQ(pin.view().begin, opened.shard_begin(s));
  }
  uint64_t degree_sum = 0;
  for (VertexId u = v0.begin; u < v0.end; ++u) degree_sum += v0.OutDegree(u);
  uint64_t manifest_sum = 0;
  for (VertexId u = v0.begin; u < v0.end; ++u) {
    manifest_sum += opened.degrees()[u];
  }
  EXPECT_EQ(degree_sum, manifest_sum);
}

}  // namespace
}  // namespace ubigraph::shard
