// Differential serial-vs-parallel tests: every parallelized kernel must
// reproduce the serial seed implementation's output at 2/4/8 threads on
// RMAT, Erdős–Rényi, and star/chain edge-case graphs — exactly for BFS
// depths, component labels, and triangle counts; within tolerance for
// PageRank scores (plus a bitwise-determinism check at a fixed thread
// count, courtesy of the deterministic tree reduction).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "algorithms/connected_components.h"
#include "algorithms/pagerank.h"
#include "algorithms/traversal.h"
#include "algorithms/triangle.h"
#include "common/random.h"
#include "gen/generators.h"

namespace ubigraph::algo {
namespace {

constexpr uint32_t kThreadCounts[] = {2, 4, 8};

/// The graph corpus: name + CSR with in-edges built (the superset of what
/// the four kernels need).
std::vector<std::pair<std::string, CsrGraph>> TestGraphs() {
  std::vector<std::pair<std::string, CsrGraph>> graphs;
  CsrOptions opts;
  opts.build_in_edges = true;

  Rng rmat_rng(7);
  graphs.emplace_back(
      "rmat10", CsrGraph::FromEdges(gen::Rmat(10, 8192, &rmat_rng).ValueOrDie(),
                                    opts)
                    .ValueOrDie());

  Rng er_rng(11);
  graphs.emplace_back(
      "erdos_renyi",
      CsrGraph::FromEdges(gen::ErdosRenyi(2000, 10000, &er_rng).ValueOrDie(),
                          opts)
          .ValueOrDie());

  graphs.emplace_back("star",
                      CsrGraph::FromEdges(gen::Star(2000), opts).ValueOrDie());
  graphs.emplace_back("chain",
                      CsrGraph::FromEdges(gen::Path(3000), opts).ValueOrDie());

  // Undirected variant exercises the aliased in-edge index.
  CsrOptions undirected;
  undirected.directed = false;
  Rng er2_rng(13);
  graphs.emplace_back(
      "erdos_renyi_undirected",
      CsrGraph::FromEdges(gen::ErdosRenyi(1500, 6000, &er2_rng).ValueOrDie(),
                          undirected)
          .ValueOrDie());
  return graphs;
}

TEST(ParallelDifferentialTest, BfsDistancesMatchSerialExactly) {
  for (const auto& [name, g] : TestGraphs()) {
    std::vector<uint32_t> serial = BfsDistances(g, 0);
    for (uint32_t threads : kThreadCounts) {
      BfsOptions opts;
      opts.num_threads = threads;
      EXPECT_EQ(BfsDistances(g, 0, opts), serial)
          << name << " threads=" << threads;
    }
  }
}

TEST(ParallelDifferentialTest, MultiSourceBfsMatchesSerialExactly) {
  for (const auto& [name, g] : TestGraphs()) {
    // A spread of sources, including a duplicate and an out-of-range id.
    std::vector<VertexId> sources = {0, g.num_vertices() / 2,
                                     g.num_vertices() - 1, 0,
                                     g.num_vertices() + 100};
    std::vector<uint32_t> serial = MultiSourceBfs(g, sources);
    for (uint32_t threads : kThreadCounts) {
      BfsOptions opts;
      opts.num_threads = threads;
      EXPECT_EQ(MultiSourceBfs(g, sources, opts), serial)
          << name << " threads=" << threads;
    }
  }
}

TEST(ParallelDifferentialTest, ComponentsMatchUnionFindExactly) {
  for (const auto& [name, g] : TestGraphs()) {
    ComponentResult serial_uf = WeaklyConnectedComponents(g);
    ComponentResult serial_lp = ConnectedComponentsLabelProp(g).ValueOrDie();
    // The serial label-prop fixpoint already matches union-find labels.
    ASSERT_EQ(serial_lp.label, serial_uf.label) << name;
    ASSERT_EQ(serial_lp.num_components, serial_uf.num_components) << name;
    for (uint32_t threads : kThreadCounts) {
      ComponentsOptions opts;
      opts.num_threads = threads;
      ComponentResult parallel = ConnectedComponentsLabelProp(g, opts).ValueOrDie();
      EXPECT_EQ(parallel.label, serial_uf.label)
          << name << " threads=" << threads;
      EXPECT_EQ(parallel.num_components, serial_uf.num_components)
          << name << " threads=" << threads;
    }
  }
}

TEST(ParallelDifferentialTest, TriangleCountsMatchSerialExactly) {
  for (const auto& [name, g] : TestGraphs()) {
    uint64_t serial = CountTriangles(g);
    for (uint32_t threads : kThreadCounts) {
      TriangleCountOptions opts;
      opts.num_threads = threads;
      EXPECT_EQ(CountTriangles(g, opts), serial)
          << name << " threads=" << threads;
    }
  }
}

TEST(ParallelDifferentialTest, PageRankScoresWithinToleranceOfSerial) {
  for (const auto& [name, g] : TestGraphs()) {
    PageRankOptions base;
    base.max_iterations = 50;
    base.tolerance = 1e-12;
    PageRankResult serial = PageRank(g, base).ValueOrDie();
    for (uint32_t threads : kThreadCounts) {
      PageRankOptions opts = base;
      opts.num_threads = threads;
      PageRankResult parallel = PageRank(g, opts).ValueOrDie();
      ASSERT_EQ(parallel.scores.size(), serial.scores.size());
      // Scores differ from the serial sum only by reduction rounding, far
      // below the convergence tolerance.
      for (size_t v = 0; v < serial.scores.size(); ++v) {
        ASSERT_NEAR(parallel.scores[v], serial.scores[v], 1e-10)
            << name << " threads=" << threads << " vertex=" << v;
      }
    }
  }
}

TEST(ParallelDifferentialTest, PageRankIsBitwiseDeterministicPerThreadCount) {
  for (const auto& [name, g] : TestGraphs()) {
    for (uint32_t threads : {1u, 4u}) {
      PageRankOptions opts;
      opts.max_iterations = 30;
      opts.tolerance = 0;  // fixed iteration count
      opts.num_threads = threads;
      PageRankResult a = PageRank(g, opts).ValueOrDie();
      PageRankResult b = PageRank(g, opts).ValueOrDie();
      ASSERT_EQ(a.scores.size(), b.scores.size());
      ASSERT_EQ(std::memcmp(a.scores.data(), b.scores.data(),
                            a.scores.size() * sizeof(double)),
                0)
          << name << " threads=" << threads;
    }
  }
}

TEST(ParallelDifferentialTest, ZeroMeansHardwareConcurrency) {
  // num_threads = 0 must resolve and agree with the serial result, whatever
  // the host's core count is.
  auto g = CsrGraph::FromEdges(gen::Star(500)).ValueOrDie();
  BfsOptions opts;
  opts.num_threads = 0;
  EXPECT_EQ(BfsDistances(g, 0, opts), BfsDistances(g, 0));
  TriangleCountOptions tri;
  tri.num_threads = 0;
  EXPECT_EQ(CountTriangles(g, tri), CountTriangles(g));
}

}  // namespace
}  // namespace ubigraph::algo
