// Randomized differential harness for the incremental engines: after EVERY
// update batch the maintained PageRank scores, component labels, and core
// numbers are checked against full recomputes on the live edge set, across
// thread counts 1/2/4/8.
//
// Equality contract (measured, see DESIGN.md "Incremental maintenance"):
//   - integer results (core numbers, canonical component labels) match the
//     recompute EXACTLY;
//   - PageRank scores are bitwise-identical ACROSS THREAD COUNTS (every path
//     reduces over the same fixed chunk tree), and within 1e-10 per vertex
//     of a from-scratch kPull run at the same tolerance — two IEEE-754
//     trajectories into the same fixpoint region differ by ulps (measured
//     max ~2e-16 on these graph sizes), so bitwise-vs-recompute is not a
//     meaningful contract for floating point.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>
#include <utility>
#include <vector>

#include "algorithms/connected_components.h"
#include "algorithms/kcore.h"
#include "algorithms/pagerank.h"
#include "common/random.h"
#include "gen/generators.h"
#include "graph/csr_graph.h"
#include "stream/incremental.h"
#include "stream/incremental_components.h"
#include "stream/incremental_kcore.h"
#include "stream/incremental_pagerank.h"
#include "update_stream_util.h"

namespace ubigraph::stream {
namespace {

using test::StreamKind;
using test::UpdateStreamGen;

constexpr double kTolerance = 1e-12;   // engine and oracle convergence target
constexpr double kScoreSlack = 1e-10;  // incremental-vs-recompute per vertex
constexpr uint32_t kThreadCounts[] = {1, 2, 4, 8};

std::vector<double> OracleScores(const EdgeList& live) {
  auto g = CsrGraph::FromEdges(live, CsrOptions{.build_in_edges = true})
               .ValueOrDie();
  algo::PageRankOptions opts;
  opts.tolerance = kTolerance;
  opts.max_iterations = 500;
  opts.mode = algo::PageRankMode::kPull;
  auto pr = algo::PageRank(g, opts).ValueOrDie();
  EXPECT_TRUE(pr.converged);
  return pr.scores;
}

std::vector<uint32_t> OracleLabels(const EdgeList& live) {
  auto g = CsrGraph::FromEdges(live).ValueOrDie();
  return algo::WeaklyConnectedComponents(g).label;
}

std::vector<uint32_t> OracleCores(const EdgeList& live) {
  auto g = CsrGraph::FromEdges(live, CsrOptions{.directed = false}).ValueOrDie();
  return algo::CoreDecomposition(g);
}

// Drives one stream over all three engines (PageRank once per thread count)
// and checks every batch against the recompute oracles.
void RunDifferential(const EdgeList& base, uint64_t seed, StreamKind kind,
                     VertexId window, size_t num_batches, size_t batch_size) {
  UpdateStreamGen gen(base, seed, {.window = window});
  const EdgeList init = gen.InitialEdges();
  ASSERT_GT(init.num_edges(), 0u);

  std::vector<IncrementalPageRank> pageranks;
  for (uint32_t t : kThreadCounts) {
    pageranks.push_back(
        IncrementalPageRank::Create(
            init, IncrementalPageRank::Options{.tolerance = kTolerance,
                                               .max_sweeps = 500,
                                               .num_threads = t})
            .ValueOrDie());
    ASSERT_TRUE(pageranks.back().initial_result().converged);
  }
  auto components =
      IncrementalComponents::Create(init, {.num_threads = 4}).ValueOrDie();
  IncrementalKCore kcore(init.num_vertices(), {.num_threads = 2});
  for (const Edge& e : init.edges()) ASSERT_TRUE(kcore.InsertEdge(e.src, e.dst).ok());

  for (size_t b = 0; b < num_batches; ++b) {
    SCOPED_TRACE("batch " + std::to_string(b));
    const std::vector<GraphDelta> batch = gen.NextBatch(kind, batch_size);
    for (auto& pr : pageranks) {
      auto res = pr.ApplyBatch(batch);
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      EXPECT_TRUE(res.ValueOrDie().converged);
    }
    ASSERT_TRUE(components.ApplyBatch(batch).ok());
    ASSERT_TRUE(kcore.ApplyBatch(batch).ok());

    // Cross-thread bitwise equality of the maintained scores.
    const std::vector<double>& serial = pageranks[0].scores();
    for (size_t t = 1; t < pageranks.size(); ++t) {
      const std::vector<double>& other = pageranks[t].scores();
      ASSERT_EQ(serial.size(), other.size());
      EXPECT_EQ(0, std::memcmp(serial.data(), other.data(),
                               serial.size() * sizeof(double)))
          << "scores diverge between 1 and " << kThreadCounts[t] << " threads";
    }

    const EdgeList live = gen.LiveEdges();
    if (live.num_edges() == 0) break;  // delete-only stream ran dry

    const std::vector<double> oracle_scores = OracleScores(live);
    for (VertexId v = 0; v < init.num_vertices(); ++v) {
      ASSERT_NEAR(serial[v], oracle_scores[v], kScoreSlack) << "vertex " << v;
    }
    EXPECT_EQ(components.Labels(), OracleLabels(live));
    EXPECT_EQ(kcore.core_numbers(), OracleCores(live));
  }
}

EdgeList RmatBase() {
  Rng rng(7);
  return gen::Rmat(7, 512, &rng).ValueOrDie();
}

EdgeList PowerLawBase() {
  Rng rng(11);
  return gen::PowerLawDirected(200, 2.0, 32, &rng).ValueOrDie();
}

TEST(IncrementalDifferentialTest, RmatInsertOnly) {
  RunDifferential(RmatBase(), 101, StreamKind::kInsertOnly, 0, 4, 12);
}

TEST(IncrementalDifferentialTest, RmatDeleteOnly) {
  RunDifferential(RmatBase(), 102, StreamKind::kDeleteOnly, 0, 4, 12);
}

TEST(IncrementalDifferentialTest, RmatMixed) {
  RunDifferential(RmatBase(), 103, StreamKind::kMixed, 0, 4, 12);
}

TEST(IncrementalDifferentialTest, PowerLawInsertOnly) {
  RunDifferential(PowerLawBase(), 201, StreamKind::kInsertOnly, 0, 4, 12);
}

TEST(IncrementalDifferentialTest, PowerLawDeleteOnly) {
  RunDifferential(PowerLawBase(), 202, StreamKind::kDeleteOnly, 0, 4, 12);
}

TEST(IncrementalDifferentialTest, PowerLawMixed) {
  RunDifferential(PowerLawBase(), 203, StreamKind::kMixed, 0, 4, 12);
}

TEST(IncrementalDifferentialTest, LocalizedMixedUpdates) {
  // Updates confined to a 24-vertex window — the workload where incremental
  // maintenance pays (see incremental_counters_test.cc for the work pins).
  RunDifferential(RmatBase(), 104, StreamKind::kMixed, 24, 4, 12);
}

TEST(IncrementalDifferentialTest, BadBatchRejectedAtomically) {
  const EdgeList base = RmatBase();
  UpdateStreamGen gen(base, 55);
  const EdgeList init = gen.InitialEdges();

  auto pr = IncrementalPageRank::Create(init).ValueOrDie();
  auto cc = IncrementalComponents::Create(init).ValueOrDie();
  IncrementalKCore kc(init.num_vertices());
  for (const Edge& e : init.edges()) ASSERT_TRUE(kc.InsertEdge(e.src, e.dst).ok());

  const std::vector<double> scores_before = pr.scores();
  const std::vector<uint32_t> labels_before = cc.Labels();
  const std::vector<uint32_t> cores_before = kc.core_numbers();

  // A batch that is fine for a few deltas, then removes an arc that was
  // already removed earlier in the same batch: every engine must reject it
  // without applying ANY of it. The leading insert must be a pair absent
  // from the initial set so the simple-graph k-core engine gets past it and
  // trips on the same double-remove as the multigraph engines.
  const Edge& victim = init.edges().front();
  std::set<std::pair<VertexId, VertexId>> live;
  for (const Edge& e : init.edges()) {
    live.insert(std::minmax(e.src, e.dst));
  }
  VertexId free_dst = 1;
  while (live.count(std::minmax<VertexId>(0, free_dst))) ++free_dst;
  ASSERT_LT(free_dst, init.num_vertices());
  std::vector<GraphDelta> bad = {
      GraphDelta::Insert(0, free_dst),
      GraphDelta::Remove(victim.src, victim.dst),
      GraphDelta::Remove(victim.src, victim.dst),
  };
  EXPECT_TRUE(pr.ApplyBatch(bad).status().IsNotFound());
  EXPECT_TRUE(cc.ApplyBatch(bad).status().IsNotFound());
  EXPECT_TRUE(kc.ApplyBatch(bad).status().IsNotFound());

  std::vector<GraphDelta> out_of_range = {GraphDelta::Insert(0, init.num_vertices())};
  EXPECT_TRUE(pr.ApplyBatch(out_of_range).status().IsOutOfRange());
  EXPECT_TRUE(cc.ApplyBatch(out_of_range).status().IsOutOfRange());
  EXPECT_TRUE(kc.ApplyBatch(out_of_range).status().IsOutOfRange());

  EXPECT_EQ(pr.scores(), scores_before);
  EXPECT_EQ(cc.Labels(), labels_before);
  EXPECT_EQ(kc.core_numbers(), cores_before);
}

TEST(IncrementalDifferentialTest, DeltaLogDrivesEngines) {
  // End-to-end wiring: mutate a DynamicGraph with the delta log enabled,
  // drain it with TakeDeltas, and feed the batch to an engine — the answer
  // matches recomputing from the DynamicGraph's own snapshot.
  DynamicGraph dyn(6, /*allow_multi_edges=*/false);
  for (auto [s, d] : {std::pair<VertexId, VertexId>{0, 1}, {1, 2}, {2, 3}, {4, 5}}) {
    ASSERT_TRUE(dyn.AddEdge(s, d).ok());
  }
  auto cc = IncrementalComponents::Create(dyn.ToEdgeList()).ValueOrDie();
  EXPECT_EQ(cc.num_components(), 2u);

  dyn.EnableDeltaLog();
  ASSERT_TRUE(dyn.AddEdge(3, 4).ok());                 // bridges the two
  ASSERT_TRUE(dyn.RemoveEdgeBetween(0, 1).ok());       // splits off vertex 0
  EXPECT_EQ(dyn.pending_deltas(), 2u);
  const std::vector<GraphDelta> batch = dyn.TakeDeltas();
  EXPECT_EQ(dyn.pending_deltas(), 0u);

  ASSERT_TRUE(cc.ApplyBatch(batch).ok());
  EXPECT_EQ(cc.Labels(), OracleLabels(dyn.ToEdgeList()));
  EXPECT_EQ(cc.num_components(), 2u);  // {0} and {1..5}
  EXPECT_EQ(cc.rebuilds(), 1u);
}

}  // namespace
}  // namespace ubigraph::stream
