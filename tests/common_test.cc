#include <gtest/gtest.h>

#include <set>

#include "common/crc32.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/table.h"

namespace ubigraph {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Invalid("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalid());
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoryPredicatesAgree) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Corruption("boom");
  Status copy = s;  // NOLINT
  EXPECT_TRUE(copy.IsCorruption());
  EXPECT_EQ(copy.message(), "boom");
  Status assigned;
  assigned = s;
  EXPECT_TRUE(assigned.IsCorruption());
}

TEST(StatusTest, MoveLeavesSourceOk) {
  Status s = Status::IOError("gone");
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsIOError());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueUnsafe();
  EXPECT_EQ(*v, 5);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::Invalid("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  UG_ASSIGN_OR_RETURN(int h, Half(x));
  UG_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  auto fail_outer = Quarter(7);
  EXPECT_FALSE(fail_outer.ok());
  auto fail_inner = Quarter(6);  // 6/2=3 is odd
  EXPECT_FALSE(fail_inner.ok());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(9);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(77);
  int counts[10] = {};
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, kTrials / 10, kTrials / 10 * 0.15);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(3);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleWithoutReplacementAllWhenKExceedsN) {
  Rng rng(3);
  auto sample = rng.SampleWithoutReplacement(5, 10);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(RngTest, SampleWeightedRespectsWeights) {
  Rng rng(13);
  std::vector<double> weights{0.0, 1.0, 3.0};
  int counts[3] = {};
  for (int i = 0; i < 40000; ++i) ++counts[rng.SampleWeighted(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

TEST(RngTest, SampleWeightedAllZeroReturnsSize) {
  Rng rng(1);
  std::vector<double> weights{0.0, 0.0};
  EXPECT_EQ(rng.SampleWeighted(weights), weights.size());
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(21);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(StringsTest, SplitPreservesEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitWhitespaceDropsEmpty) {
  auto parts = SplitWhitespace("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringsTest, CaseInsensitiveContains) {
  EXPECT_TRUE(ContainsIgnoreCase("Hello World", "WORLD"));
  EXPECT_TRUE(ContainsIgnoreCase("abc", ""));
  EXPECT_FALSE(ContainsIgnoreCase("abc", "abcd"));
  EXPECT_FALSE(ContainsIgnoreCase("graph", "graphs"));
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foo", "foobar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("bar", "foobar"));
}

TEST(StringsTest, XmlEscapeAllSpecials) {
  EXPECT_EQ(XmlEscape("<a & \"b\" 'c'>"),
            "&lt;a &amp; &quot;b&quot; &apos;c&apos;&gt;");
}

TEST(StringsTest, CsvEscapeOnlyWhenNeeded) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(StringsTest, JsonEscapeControls) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(StringsTest, ParseInt64Strict) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64(" -7 ", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("4.5", &v));
}

TEST(StringsTest, ParseDoubleStrict) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_DOUBLE_EQ(v, -1000);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5oops", &v));
}

TEST(TableTest, AsciiRenderingAligned) {
  TextTable t({"name", "count"});
  t.AddRow({"alpha", "1"});
  t.AddCountRow("beta", {12345});
  std::string out = t.RenderAscii();
  EXPECT_NE(out.find("| alpha"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, CsvEscapesCells) {
  TextTable t({"a", "b"});
  t.AddRow({"x,y", "plain"});
  std::string csv = t.RenderCsv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
}

TEST(TableTest, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"only"});
  EXPECT_EQ(t.row(0).size(), 3u);
}

TEST(TableTest, MarkdownHasSeparator) {
  TextTable t({"h1", "h2"});
  t.AddRow({"v1", "v2"});
  std::string md = t.RenderMarkdown();
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
}

TEST(HistogramTest, BandAssignment) {
  BandedHistogram h({10, 100, 1000});
  EXPECT_EQ(h.BandOf(5), 0u);
  EXPECT_EQ(h.BandOf(10), 1u);
  EXPECT_EQ(h.BandOf(99), 1u);
  EXPECT_EQ(h.BandOf(100), 2u);
  EXPECT_EQ(h.BandOf(1000), 3u);
  EXPECT_EQ(h.num_bands(), 4u);
}

TEST(HistogramTest, AddAndTotal) {
  BandedHistogram h({10});
  h.Add(3);
  h.Add(30, 5);
  EXPECT_EQ(h.band_count(0), 1);
  EXPECT_EQ(h.band_count(1), 5);
  EXPECT_EQ(h.total(), 6);
}

TEST(HistogramTest, PowersOfTenLabels) {
  BandedHistogram h = BandedHistogram::PowersOfTen(4, 9);
  EXPECT_EQ(h.BandLabel(0), "<10K");
  EXPECT_NE(h.BandLabel(1).find("10K"), std::string::npos);
  EXPECT_EQ(h.BandLabel(h.num_bands() - 1), ">1B");
}

TEST(HumanCountTest, Formats) {
  EXPECT_EQ(HumanCount(999), "999");
  EXPECT_EQ(HumanCount(1000), "1K");
  EXPECT_EQ(HumanCount(1500), "1.5K");
  EXPECT_EQ(HumanCount(1000000), "1M");
  EXPECT_EQ(HumanCount(1000000000), "1B");
  EXPECT_EQ(HumanCount(-2000), "-2K");
}

TEST(RunningStatsTest, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8);
}

TEST(Crc32Test, KnownVector) {
  // CRC32("123456789") == 0xCBF43926 (IEEE).
  const char* data = "123456789";
  EXPECT_EQ(Crc32(data, 9), 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32("", 0), 0u); }

TEST(Crc32Test, DetectsBitFlip) {
  std::string a = "hello world";
  std::string b = a;
  b[3] ^= 1;
  EXPECT_NE(Crc32(a.data(), a.size()), Crc32(b.data(), b.size()));
}

}  // namespace
}  // namespace ubigraph
