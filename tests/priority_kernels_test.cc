// Differential tests for the priority-bucket kernels: delta-stepping SSSP
// against the Dijkstra oracle (bitwise distances on non-negative weights),
// parallel Brandes/closeness against the serial accumulation (bitwise — the
// source chunking and combine tree are worker-count-independent), and
// bucketed parallel k-core peeling against Batagelj-Zaversnik (core numbers
// are a structural invariant), each at 1/2/4/8 threads, plus permuted and
// compressed-graph variants mirroring locality_test.cc.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "algorithms/centrality.h"
#include "algorithms/kcore.h"
#include "algorithms/shortest_path.h"
#include "common/buckets.h"
#include "common/random.h"
#include "gen/generators.h"
#include "graph/compressed_csr.h"
#include "graph/csr_graph.h"
#include "graph/ordering.h"

namespace ubigraph {
namespace {

using algo::ApproxBetweennessCentrality;
using algo::BetweennessCentrality;
using algo::CentralityOptions;
using algo::ClosenessCentrality;
using algo::CoreDecomposition;
using algo::CoreOptions;
using algo::DeltaSteppingSssp;
using algo::Dijkstra;
using algo::HarmonicCloseness;
using algo::kInfDistance;
using algo::ShortestPathTree;
using algo::SsspOptions;

constexpr uint32_t kThreadCounts[] = {1, 2, 4, 8};

/// Directed RMAT (2^scale vertices, 8 edges per vertex) plus a ring through
/// every vertex, with uniform random edge weights in [0.1, 1.1): connected
/// from any root, no zero weights (so the shortest-path DAG has no ties
/// through zero-weight edges, the common case the parent post-pass is
/// optimized for).
CsrGraph WeightedRmat(uint32_t scale) {
  Rng rng(scale * 104729ULL + 7);
  EdgeList el =
      gen::Rmat(scale, static_cast<uint64_t>(8) << scale, &rng).ValueOrDie();
  const VertexId n = el.num_vertices();
  for (VertexId v = 0; v < n; ++v) el.Add(v, (v + 1) % n);
  for (Edge& e : el.mutable_edges()) e.weight = 0.1 + rng.NextDouble();
  return CsrGraph::FromEdges(std::move(el), CsrOptions{}).ValueOrDie();
}

/// Unweighted directed RMAT + ring (the centrality/k-core fixture).
CsrGraph PlainRmat(uint32_t scale) {
  Rng rng(scale * 7919ULL + 23);
  EdgeList el =
      gen::Rmat(scale, static_cast<uint64_t>(8) << scale, &rng).ValueOrDie();
  const VertexId n = el.num_vertices();
  for (VertexId v = 0; v < n; ++v) el.Add(v, (v + 1) % n);
  return CsrGraph::FromEdges(std::move(el), CsrOptions{}).ValueOrDie();
}

/// Asserts `t` is a valid shortest-path tree for `g`: parents only on
/// reached vertices, every parent edge tight (dist[p] + w == dist[v]), and
/// every chain reaches the source in at most n hops (acyclic).
void ValidateTree(const CsrGraph& g, const ShortestPathTree& t,
                  VertexId source) {
  const VertexId n = g.num_vertices();
  ASSERT_EQ(t.parent[source], source);
  for (VertexId v = 0; v < n; ++v) {
    if (t.distance[v] == kInfDistance) {
      EXPECT_EQ(t.parent[v], kInvalidVertex) << v;
      continue;
    }
    if (v == source) continue;
    const VertexId p = t.parent[v];
    ASSERT_LT(p, n) << v;
    bool tight = false;
    auto nbrs = g.OutNeighbors(p);
    auto ws = g.OutWeights(p);
    for (size_t i = 0; i < nbrs.size() && !tight; ++i) {
      tight = nbrs[i] == v && t.distance[p] + ws[i] == t.distance[v];
    }
    EXPECT_TRUE(tight) << "no tight edge " << p << "->" << v;
    VertexId cur = v;
    uint32_t hops = 0;
    while (cur != source && hops <= n) {
      cur = t.parent[cur];
      ++hops;
    }
    EXPECT_EQ(cur, source) << "parent chain from " << v << " cycles";
  }
}

// --- bucket structure ---

TEST(BucketStructureTest, PopsInPriorityOrderWithClamping) {
  BucketStructure b;
  b.Insert(3, 30);
  b.Insert(1, 10);
  b.Insert(3, 31);
  std::vector<VertexId> out;
  EXPECT_EQ(b.PopNextBucket(&out), 1u);
  EXPECT_EQ(out, (std::vector<VertexId>{10}));
  // An insert below the cursor clamps up to it (k-core's "dropped under the
  // current level" case) and is re-popped by PopSame.
  b.Insert(0, 11);
  EXPECT_TRUE(b.PopSame(1, &out));
  EXPECT_EQ(out, (std::vector<VertexId>{11}));
  EXPECT_FALSE(b.PopSame(1, &out));
  EXPECT_EQ(b.PopNextBucket(&out), 3u);
  EXPECT_EQ(out, (std::vector<VertexId>{30, 31}));
  EXPECT_EQ(b.PopNextBucket(&out), BucketStructure::kNoBucket);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.stats().items_inserted, 4u);
  EXPECT_EQ(b.stats().items_popped, 4u);
  EXPECT_EQ(b.stats().buckets_popped, 3u);
  EXPECT_EQ(b.stats().max_bucket, 3u);
}

TEST(BucketStructureTest, InsertBatchMergesInOrder) {
  BucketStructure b;
  const BucketItem batch[] = {{2, 5}, {2, 6}, {4, 7}};
  b.InsertBatch(batch);
  std::vector<VertexId> out;
  EXPECT_EQ(b.PopNextBucket(&out), 2u);
  EXPECT_EQ(out, (std::vector<VertexId>{5, 6}));
  EXPECT_EQ(b.size(), 1u);
}

// --- delta-stepping SSSP ---

TEST(DeltaSteppingTest, MatchesDijkstraBitwiseOnWeightedRmat) {
  CsrGraph g = WeightedRmat(9);
  ShortestPathTree oracle = Dijkstra(g, 0).ValueOrDie();
  for (uint32_t threads : kThreadCounts) {
    SsspOptions opts;
    opts.num_threads = threads;
    ShortestPathTree t = DeltaSteppingSssp(g, 0, opts).ValueOrDie();
    ASSERT_EQ(t.distance, oracle.distance) << "threads=" << threads;
    ValidateTree(g, t, 0);
  }
}

TEST(DeltaSteppingTest, ParentTreeIsDeterministicAcrossThreads) {
  CsrGraph g = WeightedRmat(8);
  SsspOptions serial;
  ShortestPathTree base = DeltaSteppingSssp(g, 3, serial).ValueOrDie();
  for (uint32_t threads : {2u, 4u, 8u}) {
    SsspOptions opts;
    opts.num_threads = threads;
    ShortestPathTree t = DeltaSteppingSssp(g, 3, opts).ValueOrDie();
    EXPECT_EQ(t.parent, base.parent) << "threads=" << threads;
  }
}

TEST(DeltaSteppingTest, ExplicitDeltasStillMatchDijkstra) {
  CsrGraph g = WeightedRmat(8);
  ShortestPathTree oracle = Dijkstra(g, 0).ValueOrDie();
  for (double delta : {0.05, 0.6, 50.0}) {  // many buckets .. one bucket
    SsspOptions opts;
    opts.num_threads = 4;
    opts.delta = delta;
    ShortestPathTree t = DeltaSteppingSssp(g, 0, opts).ValueOrDie();
    EXPECT_EQ(t.distance, oracle.distance) << "delta=" << delta;
  }
}

TEST(DeltaSteppingTest, PathStarAndDisconnected) {
  for (uint32_t threads : kThreadCounts) {
    SsspOptions opts;
    opts.num_threads = threads;

    CsrGraph path = CsrGraph::FromEdges(gen::Path(6), CsrOptions{}).ValueOrDie();
    ShortestPathTree t = DeltaSteppingSssp(path, 0, opts).ValueOrDie();
    EXPECT_EQ(t.distance, Dijkstra(path, 0).ValueOrDie().distance);
    EXPECT_EQ(t.distance[5], 5.0);
    EXPECT_EQ(t.PathTo(5).size(), 6u);

    CsrGraph star = CsrGraph::FromEdges(gen::Star(5), CsrOptions{}).ValueOrDie();
    t = DeltaSteppingSssp(star, 0, opts).ValueOrDie();
    EXPECT_EQ(t.distance, Dijkstra(star, 0).ValueOrDie().distance);

    // Two components: everything across the cut stays at infinity.
    EdgeList el;
    el.Add(0, 1, 2.0);
    el.Add(1, 2, 3.0);
    el.Add(3, 4, 1.0);
    CsrGraph split = CsrGraph::FromEdges(std::move(el), CsrOptions{}).ValueOrDie();
    t = DeltaSteppingSssp(split, 0, opts).ValueOrDie();
    EXPECT_EQ(t.distance[2], 5.0);
    EXPECT_EQ(t.distance[3], kInfDistance);
    EXPECT_EQ(t.parent[4], kInvalidVertex);
  }
}

TEST(DeltaSteppingTest, SingleVertexAndErrors) {
  CsrGraph one = CsrGraph::FromPairs(1, {}).ValueOrDie();
  ShortestPathTree t = DeltaSteppingSssp(one, 0).ValueOrDie();
  EXPECT_EQ(t.distance[0], 0.0);
  EXPECT_FALSE(DeltaSteppingSssp(one, 5).ok());  // out of range

  EdgeList el;
  el.Add(0, 1, -1.0);
  CsrGraph neg = CsrGraph::FromEdges(std::move(el), CsrOptions{}).ValueOrDie();
  EXPECT_FALSE(DeltaSteppingSssp(neg, 0).ok());  // negative weight
}

TEST(DeltaSteppingTest, ZeroWeightTiesGetValidParents) {
  // A zero-weight diamond plus a tail: ties resolved by the deterministic
  // tie BFS, tree still valid and distances still Dijkstra's.
  EdgeList el;
  el.Add(0, 1, 0.0);
  el.Add(0, 2, 0.0);
  el.Add(1, 3, 0.0);
  el.Add(2, 3, 0.0);
  el.Add(3, 4, 1.5);
  CsrGraph g = CsrGraph::FromEdges(std::move(el), CsrOptions{}).ValueOrDie();
  for (uint32_t threads : kThreadCounts) {
    SsspOptions opts;
    opts.num_threads = threads;
    ShortestPathTree t = DeltaSteppingSssp(g, 0, opts).ValueOrDie();
    EXPECT_EQ(t.distance, Dijkstra(g, 0).ValueOrDie().distance);
    ValidateTree(g, t, 0);
  }
}

TEST(DeltaSteppingTest, PermutedGraphGivesSameDistances) {
  CsrGraph g = WeightedRmat(8);
  ShortestPathTree base = DeltaSteppingSssp(g, 0).ValueOrDie();
  std::vector<VertexId> perm = DegreeDescendingOrder(g);
  PermutedCsr p = g.Permute(perm).ValueOrDie();
  for (uint32_t threads : kThreadCounts) {
    SsspOptions opts;
    opts.num_threads = threads;
    ShortestPathTree t = DeltaSteppingSssp(p.graph, perm[0], opts).ValueOrDie();
    // Distances are the unique minimal fixpoint, so they match bitwise after
    // mapping back to original ids.
    EXPECT_EQ(UnpermuteValues<double>(p.new_to_old, t.distance), base.distance)
        << "threads=" << threads;
    ValidateTree(p.graph, t, perm[0]);
  }
}

// --- Brandes betweenness / closeness ---

TEST(ParallelBrandesTest, MatchesSerialBitwiseAtAllThreadCounts) {
  CsrGraph g = PlainRmat(8);
  std::vector<double> serial = BetweennessCentrality(g);
  for (uint32_t threads : kThreadCounts) {
    CentralityOptions opts;
    opts.num_threads = threads;
    EXPECT_EQ(BetweennessCentrality(g, opts), serial) << "threads=" << threads;
  }
}

TEST(ParallelBrandesTest, UndirectedSmallGraphExactValues) {
  CsrOptions copts;
  copts.directed = false;
  CsrGraph g = CsrGraph::FromEdges(gen::Path(5), copts).ValueOrDie();
  for (uint32_t threads : kThreadCounts) {
    CentralityOptions opts;
    opts.num_threads = threads;
    std::vector<double> bc = BetweennessCentrality(g, opts);
    EXPECT_DOUBLE_EQ(bc[2], 4.0) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(bc[0], 0.0) << "threads=" << threads;
  }
}

TEST(ParallelBrandesTest, CompressedGraphMatchesPlainBitwise) {
  CsrGraph g = PlainRmat(8);
  CompressedCsrGraph c = CompressedCsrGraph::FromCsr(g).ValueOrDie();
  std::vector<double> plain = BetweennessCentrality(g);
  for (uint32_t threads : {1u, 4u}) {
    CentralityOptions opts;
    opts.num_threads = threads;
    // Same vertex ids and same adjacency order: identical arithmetic.
    EXPECT_EQ(BetweennessCentrality(c, opts), plain) << "threads=" << threads;
  }
}

TEST(ApproxBetweennessTest, FixedSeedIsDeterministicAcrossThreadCounts) {
  CsrGraph g = PlainRmat(9);
  Rng base_rng(17);
  std::vector<double> base = ApproxBetweennessCentrality(g, 48, &base_rng);
  for (uint32_t threads : kThreadCounts) {
    Rng rng(17);
    CentralityOptions opts;
    opts.num_threads = threads;
    EXPECT_EQ(ApproxBetweennessCentrality(g, 48, &rng, opts), base)
        << "threads=" << threads;
  }
}

TEST(ParallelClosenessTest, BothVariantsMatchSerialBitwise) {
  CsrGraph g = PlainRmat(9);
  std::vector<double> harmonic = HarmonicCloseness(g);
  std::vector<double> classic = ClosenessCentrality(g);
  for (uint32_t threads : kThreadCounts) {
    CentralityOptions opts;
    opts.num_threads = threads;
    EXPECT_EQ(HarmonicCloseness(g, opts), harmonic) << "threads=" << threads;
    EXPECT_EQ(ClosenessCentrality(g, opts), classic) << "threads=" << threads;
  }
}

TEST(ParallelClosenessTest, PermutedAndCompressedMatchPlain) {
  CsrGraph g = PlainRmat(8);
  std::vector<double> base = HarmonicCloseness(g);
  std::vector<VertexId> perm = DegreeDescendingOrder(g);
  PermutedCsr p = g.Permute(perm).ValueOrDie();
  CompressedCsrGraph c = CompressedCsrGraph::FromCsr(g).ValueOrDie();
  CentralityOptions opts;
  opts.num_threads = 4;
  // Permutation renumbers the ascending-id reduction inside each score, so
  // the same terms are summed in a different order: equal to tolerance only.
  std::vector<double> permuted =
      UnpermuteValues<double>(p.new_to_old, HarmonicCloseness(p.graph, opts));
  ASSERT_EQ(permuted.size(), base.size());
  for (size_t v = 0; v < base.size(); ++v) {
    EXPECT_NEAR(permuted[v], base[v], 1e-9 * std::max(1.0, base[v])) << v;
  }
  // The compressed graph keeps ids and adjacency order: identical arithmetic.
  EXPECT_EQ(HarmonicCloseness(c, opts), base);
}

// --- bucketed k-core ---

TEST(BucketedKCoreTest, MatchesSerialOnRmatAtAllThreadCounts) {
  CsrGraph g = PlainRmat(9);
  std::vector<uint32_t> serial = CoreDecomposition(g);
  for (uint32_t threads : kThreadCounts) {
    CoreOptions opts;
    opts.num_threads = threads;
    EXPECT_EQ(CoreDecomposition(g, opts), serial) << "threads=" << threads;
  }
}

TEST(BucketedKCoreTest, EdgeCaseGraphs) {
  for (uint32_t threads : kThreadCounts) {
    CoreOptions opts;
    opts.num_threads = threads;

    CsrGraph star = CsrGraph::FromEdges(gen::Star(6), CsrOptions{}).ValueOrDie();
    EXPECT_EQ(CoreDecomposition(star, opts),
              std::vector<uint32_t>(star.num_vertices(), 1u));

    CsrOptions copts;
    copts.directed = false;
    CsrGraph k5 = CsrGraph::FromEdges(gen::Complete(5), copts).ValueOrDie();
    EXPECT_EQ(CoreDecomposition(k5, opts), std::vector<uint32_t>(5, 4u));

    // Disconnected: a triangle and an isolated edge peel independently.
    EdgeList el;
    el.Add(0, 1);
    el.Add(1, 2);
    el.Add(2, 0);
    el.Add(3, 4);
    CsrGraph split = CsrGraph::FromEdges(std::move(el), CsrOptions{}).ValueOrDie();
    EXPECT_EQ(CoreDecomposition(split, opts),
              (std::vector<uint32_t>{2, 2, 2, 1, 1}));

    CsrGraph empty = CsrGraph::FromPairs(0, {}).ValueOrDie();
    EXPECT_TRUE(CoreDecomposition(empty, opts).empty());
  }
}

TEST(BucketedKCoreTest, PermutedAndCompressedMatchPlain) {
  CsrGraph g = PlainRmat(8);
  std::vector<uint32_t> base = CoreDecomposition(g);
  std::vector<VertexId> perm = DegreeDescendingOrder(g);
  PermutedCsr p = g.Permute(perm).ValueOrDie();
  CompressedCsrGraph c = CompressedCsrGraph::FromCsr(g).ValueOrDie();
  for (uint32_t threads : {1u, 8u}) {
    CoreOptions opts;
    opts.num_threads = threads;
    EXPECT_EQ(UnpermuteValues<uint32_t>(p.new_to_old,
                                        CoreDecomposition(p.graph, opts)),
              base)
        << "threads=" << threads;
    EXPECT_EQ(CoreDecomposition(c, opts), base) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace ubigraph
