#include <gtest/gtest.h>

#include <algorithm>

#include "algorithms/connected_components.h"
#include "common/random.h"
#include "gen/generators.h"

namespace ubigraph::algo {
namespace {

TEST(UnionFindTest, BasicMerging) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_TRUE(uf.Union(2, 3));
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_EQ(uf.Find(0), uf.Find(1));
  EXPECT_NE(uf.Find(0), uf.Find(2));
}

TEST(UnionFindTest, TransitiveMerge) {
  UnionFind uf(4);
  uf.Union(0, 1);
  uf.Union(1, 2);
  uf.Union(2, 3);
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_EQ(uf.Find(0), uf.Find(3));
}

TEST(WccTest, TwoIslands) {
  auto g = CsrGraph::FromPairs(5, {{0, 1}, {2, 3}}).ValueOrDie();
  ComponentResult cc = WeaklyConnectedComponents(g);
  EXPECT_EQ(cc.num_components, 3u);  // {0,1} {2,3} {4}
  EXPECT_EQ(cc.label[0], cc.label[1]);
  EXPECT_EQ(cc.label[2], cc.label[3]);
  EXPECT_NE(cc.label[0], cc.label[2]);
  EXPECT_NE(cc.label[4], cc.label[0]);
}

TEST(WccTest, DirectionIgnored) {
  auto g = CsrGraph::FromPairs(3, {{1, 0}, {1, 2}}).ValueOrDie();
  ComponentResult cc = WeaklyConnectedComponents(g);
  EXPECT_EQ(cc.num_components, 1u);
}

TEST(WccTest, LabelsAreDenseAndOrdered) {
  auto g = CsrGraph::FromPairs(6, {{4, 5}, {0, 1}}).ValueOrDie();
  ComponentResult cc = WeaklyConnectedComponents(g);
  // Labels assigned by smallest member: comp of 0 gets label 0.
  EXPECT_EQ(cc.label[0], 0u);
  EXPECT_EQ(cc.label[2], 1u);
  std::vector<uint64_t> sizes = cc.ComponentSizes();
  uint64_t total = 0;
  for (uint64_t s : sizes) total += s;
  EXPECT_EQ(total, g.num_vertices());
}

TEST(WccTest, AgreesWithBfsVariant) {
  Rng rng(42);
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Rng local(seed + 100);
    auto el = gen::ErdosRenyi(80, 100, &local).ValueOrDie();
    CsrOptions opts;
    opts.build_in_edges = true;
    CsrGraph g = CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
    ComponentResult a = WeaklyConnectedComponents(g);
    ComponentResult b = ConnectedComponentsBfs(g).ValueOrDie();
    EXPECT_EQ(a.num_components, b.num_components);
    EXPECT_EQ(a.label, b.label);  // both order by smallest member
  }
}

TEST(WccTest, LargestComponent) {
  auto g = CsrGraph::FromPairs(6, {{0, 1}, {1, 2}, {4, 5}}).ValueOrDie();
  ComponentResult cc = WeaklyConnectedComponents(g);
  EXPECT_EQ(cc.LargestComponent(), cc.label[0]);
  EXPECT_EQ(cc.ComponentSizes()[cc.LargestComponent()], 3u);
}

TEST(SccTest, CycleIsOneComponent) {
  auto g = CsrGraph::FromPairs(3, {{0, 1}, {1, 2}, {2, 0}}).ValueOrDie();
  ComponentResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 1u);
}

TEST(SccTest, DagIsAllSingletons) {
  auto g = CsrGraph::FromPairs(4, {{0, 1}, {1, 2}, {2, 3}}).ValueOrDie();
  ComponentResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 4u);
}

TEST(SccTest, TwoCyclesJoinedByBridge) {
  // Cycle {0,1,2} -> bridge -> cycle {3,4}.
  auto g = CsrGraph::FromPairs(
               5, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 3}})
               .ValueOrDie();
  ComponentResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 2u);
  EXPECT_EQ(scc.label[0], scc.label[1]);
  EXPECT_EQ(scc.label[3], scc.label[4]);
  EXPECT_NE(scc.label[0], scc.label[3]);
}

TEST(SccTest, TarjanLabelsAreReverseTopological) {
  // Edges between SCCs must go from higher label to lower label.
  Rng rng(5);
  auto el = gen::ErdosRenyi(60, 180, &rng).ValueOrDie();
  CsrGraph g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  ComponentResult scc = StronglyConnectedComponents(g);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      if (scc.label[u] != scc.label[v]) {
        EXPECT_GT(scc.label[u], scc.label[v]);
      }
    }
  }
}

TEST(SccTest, SelfLoopSingleVertex) {
  auto g = CsrGraph::FromPairs(2, {{0, 0}, {0, 1}}).ValueOrDie();
  ComponentResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 2u);
}

// Oracle: brute-force SCC via reachability.
TEST(SccTest, MatchesBruteForceOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed + 50);
    auto el = gen::ErdosRenyi(25, 60, &rng).ValueOrDie();
    CsrGraph g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
    const VertexId n = g.num_vertices();
    // Floyd-Warshall reachability.
    std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
    for (VertexId u = 0; u < n; ++u) {
      reach[u][u] = true;
      for (VertexId v : g.OutNeighbors(u)) reach[u][v] = true;
    }
    for (VertexId k = 0; k < n; ++k) {
      for (VertexId i = 0; i < n; ++i) {
        if (!reach[i][k]) continue;
        for (VertexId j = 0; j < n; ++j) {
          if (reach[k][j]) reach[i][j] = true;
        }
      }
    }
    ComponentResult scc = StronglyConnectedComponents(g);
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = 0; v < n; ++v) {
        bool same = scc.label[u] == scc.label[v];
        bool mutually = reach[u][v] && reach[v][u];
        EXPECT_EQ(same, mutually) << "u=" << u << " v=" << v << " seed=" << seed;
      }
    }
  }
}

TEST(SingletonTest, FindsIsolatedVertices) {
  auto g = CsrGraph::FromPairs(5, {{1, 2}}).ValueOrDie();
  auto singles = SingletonVertices(g);
  EXPECT_EQ(singles, (std::vector<VertexId>{0, 3, 4}));
}

TEST(SingletonTest, NoneInConnectedGraph) {
  CsrOptions opts;
  opts.directed = false;
  CsrGraph g = CsrGraph::FromEdges(gen::Cycle(6), opts).ValueOrDie();
  EXPECT_TRUE(SingletonVertices(g).empty());
}

class WccScaleTest : public ::testing::TestWithParam<int> {};

TEST_P(WccScaleTest, ComponentCountMatchesUnionCount) {
  Rng rng(GetParam());
  auto el = gen::ErdosRenyi(200, 50 * GetParam(), &rng).ValueOrDie();
  CsrGraph g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  ComponentResult cc = WeaklyConnectedComponents(g);
  UnionFind uf(g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) uf.Union(u, v);
  }
  EXPECT_EQ(cc.num_components, uf.num_sets());
}

INSTANTIATE_TEST_SUITE_P(Densities, WccScaleTest, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace ubigraph::algo
