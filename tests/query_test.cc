#include <gtest/gtest.h>

#include "query/cypher_executor.h"
#include "query/cypher_lexer.h"
#include "query/cypher_parser.h"
#include "query/traversal_api.h"

namespace ubigraph::query {
namespace {

/// A small social/product graph used across the query tests.
PropertyGraph SampleGraph() {
  PropertyGraph g;
  VertexId alice = g.AddVertex("Person");
  VertexId bob = g.AddVertex("Person");
  VertexId carol = g.AddVertex("Person");
  VertexId laptop = g.AddVertex("Product");
  VertexId phone = g.AddVertex("Product");
  g.SetVertexProperty(alice, "name", std::string("alice")).Abort();
  g.SetVertexProperty(alice, "age", static_cast<int64_t>(34)).Abort();
  g.SetVertexProperty(bob, "name", std::string("bob")).Abort();
  g.SetVertexProperty(bob, "age", static_cast<int64_t>(29)).Abort();
  g.SetVertexProperty(carol, "name", std::string("carol")).Abort();
  g.SetVertexProperty(carol, "age", static_cast<int64_t>(41)).Abort();
  g.SetVertexProperty(laptop, "name", std::string("laptop")).Abort();
  g.SetVertexProperty(laptop, "price", 1200.0).Abort();
  g.SetVertexProperty(phone, "name", std::string("phone")).Abort();
  g.SetVertexProperty(phone, "price", 800.0).Abort();
  g.AddEdge(alice, bob, "knows").ValueOrDie();
  g.AddEdge(bob, carol, "knows").ValueOrDie();
  g.AddEdge(alice, laptop, "bought").ValueOrDie();
  g.AddEdge(bob, laptop, "bought").ValueOrDie();
  g.AddEdge(carol, phone, "bought").ValueOrDie();
  return g;
}

// ----------------------------------------------------------- fluent API ---

TEST(TraversalApiTest, VCountsAll) {
  PropertyGraph g = SampleGraph();
  EXPECT_EQ(GraphTraversal(g).V().Count(), 5u);
}

TEST(TraversalApiTest, HasLabelFilters) {
  PropertyGraph g = SampleGraph();
  EXPECT_EQ(GraphTraversal(g).V().HasLabel("Person").Count(), 3u);
  EXPECT_EQ(GraphTraversal(g).V().HasLabel("Product").Count(), 2u);
  EXPECT_EQ(GraphTraversal(g).V().HasLabel("Nothing").Count(), 0u);
}

TEST(TraversalApiTest, HasValueEquality) {
  PropertyGraph g = SampleGraph();
  EXPECT_EQ(
      GraphTraversal(g).V().Has("name", PropertyValue{std::string("bob")}).Count(),
      1u);
}

TEST(TraversalApiTest, HasPredicate) {
  PropertyGraph g = SampleGraph();
  size_t over30 =
      GraphTraversal(g)
          .V()
          .HasLabel("Person")
          .Has("age",
               [](const PropertyValue& v) { return std::get<int64_t>(v) > 30; })
          .Count();
  EXPECT_EQ(over30, 2u);  // alice 34, carol 41
}

TEST(TraversalApiTest, OutInBothSteps) {
  PropertyGraph g = SampleGraph();
  // alice -> knows -> bob -> knows -> carol.
  auto two_hops = GraphTraversal(g).V({0}).Out("knows").Out("knows").ToVector();
  ASSERT_EQ(two_hops.size(), 1u);
  EXPECT_EQ(two_hops[0], 2u);
  EXPECT_EQ(GraphTraversal(g).V({3}).In("bought").Count(), 2u);
  EXPECT_EQ(GraphTraversal(g).V({1}).Both("knows").Count(), 2u);
}

TEST(TraversalApiTest, DedupAndLimit) {
  PropertyGraph g = SampleGraph();
  // Who bought anything that bob bought (via product, back to buyers).
  auto buyers = GraphTraversal(g).V({1}).Out("bought").In("bought");
  EXPECT_EQ(buyers.Count(), 2u);  // alice and bob
  EXPECT_EQ(GraphTraversal(g).V().Limit(2).Count(), 2u);
  auto repeated = GraphTraversal(g).V({0, 0, 0}).Dedup();
  EXPECT_EQ(repeated.Count(), 1u);
}

TEST(TraversalApiTest, OrderByNumericProperty) {
  PropertyGraph g = SampleGraph();
  auto ages = GraphTraversal(g).V().HasLabel("Person").OrderBy("age").Values("age");
  ASSERT_EQ(ages.size(), 3u);
  EXPECT_EQ(std::get<int64_t>(ages[0]), 29);
  EXPECT_EQ(std::get<int64_t>(ages[2]), 41);
}

TEST(TraversalApiTest, ValuesReturnsMonostateForMissing) {
  PropertyGraph g = SampleGraph();
  auto prices = GraphTraversal(g).V().HasLabel("Person").Values("price");
  for (const auto& p : prices) {
    EXPECT_TRUE(std::holds_alternative<std::monostate>(p));
  }
}

TEST(TraversalApiTest, OutOfRangeIdsDropped) {
  PropertyGraph g = SampleGraph();
  EXPECT_EQ(GraphTraversal(g).V({0, 99}).Count(), 1u);
}

// ----------------------------------------------------------------- lexer ---

TEST(CypherLexerTest, TokenizesAllKinds) {
  auto tokens =
      TokenizeCypher("MATCH (a:Person {age: 34})-[:knows]->(b) WHERE a.x <= 1.5 "
                     "RETURN count(*)")
          .ValueOrDie();
  EXPECT_GT(tokens.size(), 10u);
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
}

TEST(CypherLexerTest, OperatorsDistinguished) {
  auto tokens = TokenizeCypher("< <= <> <- - -> >= > =").ValueOrDie();
  EXPECT_EQ(tokens[0].kind, TokenKind::kLt);
  EXPECT_EQ(tokens[1].kind, TokenKind::kLe);
  EXPECT_EQ(tokens[2].kind, TokenKind::kNe);
  EXPECT_EQ(tokens[3].kind, TokenKind::kArrowLeft);
  EXPECT_EQ(tokens[4].kind, TokenKind::kDash);
  EXPECT_EQ(tokens[5].kind, TokenKind::kArrowRight);
  EXPECT_EQ(tokens[6].kind, TokenKind::kGe);
  EXPECT_EQ(tokens[7].kind, TokenKind::kGt);
  EXPECT_EQ(tokens[8].kind, TokenKind::kEq);
}

TEST(CypherLexerTest, StringsAndEscapes) {
  auto tokens = TokenizeCypher("'it\\'s' \"two\"").ValueOrDie();
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "it's");
  EXPECT_EQ(tokens[1].text, "two");
  EXPECT_FALSE(TokenizeCypher("'unterminated").ok());
}

TEST(CypherLexerTest, NumbersIntAndFloat) {
  auto tokens = TokenizeCypher("42 3.5").ValueOrDie();
  EXPECT_EQ(tokens[0].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[0].integer, 42);
  EXPECT_EQ(tokens[1].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(tokens[1].floating, 3.5);
}

TEST(CypherLexerTest, RejectsGarbage) {
  EXPECT_FALSE(TokenizeCypher("MATCH (a) @ RETURN a").ok());
}

// ---------------------------------------------------------------- parser ---

TEST(CypherParserTest, FullQueryShape) {
  auto q = ParseCypher(
               "MATCH (a:Person)-[:knows]->(b:Person) "
               "WHERE a.age > 30 AND b.name = 'bob' "
               "RETURN a.name, b.name LIMIT 10")
               .ValueOrDie();
  ASSERT_EQ(q.paths.size(), 1u);
  EXPECT_EQ(q.paths[0].nodes.size(), 2u);
  EXPECT_EQ(q.paths[0].edges.size(), 1u);
  EXPECT_EQ(q.paths[0].edges[0].type, "knows");
  EXPECT_EQ(q.paths[0].edges[0].direction, EdgePattern::Direction::kOut);
  EXPECT_EQ(q.where.size(), 2u);
  EXPECT_EQ(q.returns.size(), 2u);
  ASSERT_TRUE(q.limit.has_value());
  EXPECT_EQ(*q.limit, 10u);
}

TEST(CypherParserTest, NodeProperties) {
  auto q = ParseCypher("MATCH (a:Person {name: 'alice', age: 34}) RETURN a")
               .ValueOrDie();
  ASSERT_EQ(q.paths[0].nodes[0].properties.size(), 2u);
  EXPECT_EQ(q.paths[0].nodes[0].properties[0].first, "name");
}

TEST(CypherParserTest, EdgeDirections) {
  auto out = ParseCypher("MATCH (a)-[:x]->(b) RETURN a").ValueOrDie();
  EXPECT_EQ(out.paths[0].edges[0].direction, EdgePattern::Direction::kOut);
  auto in = ParseCypher("MATCH (a)<-[:x]-(b) RETURN a").ValueOrDie();
  EXPECT_EQ(in.paths[0].edges[0].direction, EdgePattern::Direction::kIn);
  auto any = ParseCypher("MATCH (a)-[:x]-(b) RETURN a").ValueOrDie();
  EXPECT_EQ(any.paths[0].edges[0].direction, EdgePattern::Direction::kAny);
  auto bare = ParseCypher("MATCH (a)-->(b) RETURN a");
  ASSERT_TRUE(bare.ok());  // "-[]->" with empty body elided entirely
}

TEST(CypherParserTest, MultiplePathsAndCount) {
  auto q = ParseCypher("MATCH (a)-[:x]->(b), (b)-[:y]->(c) RETURN count(*)")
               .ValueOrDie();
  EXPECT_EQ(q.paths.size(), 2u);
  EXPECT_TRUE(q.returns[0].is_count);
}

TEST(CypherParserTest, SyntaxErrorsRejected) {
  EXPECT_FALSE(ParseCypher("RETURN a").ok());
  EXPECT_FALSE(ParseCypher("MATCH (a) RETURN").ok());
  EXPECT_FALSE(ParseCypher("MATCH (a RETURN a").ok());
  EXPECT_FALSE(ParseCypher("MATCH (a)-[:x](b) RETURN a").ok());
  EXPECT_FALSE(ParseCypher("MATCH (a) WHERE RETURN a").ok());
  EXPECT_FALSE(ParseCypher("MATCH (a) RETURN a LIMIT x").ok());
  EXPECT_FALSE(ParseCypher("MATCH (a) RETURN a extra").ok());
}

// -------------------------------------------------------------- executor ---

TEST(CypherExecutorTest, LabelScan) {
  PropertyGraph g = SampleGraph();
  auto r = RunCypher(g, "MATCH (p:Person) RETURN p.name").ValueOrDie();
  EXPECT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.columns[0], "p.name");
}

TEST(CypherExecutorTest, EdgePatternWithDirection) {
  PropertyGraph g = SampleGraph();
  auto out =
      RunCypher(g, "MATCH (a)-[:knows]->(b) RETURN a.name, b.name").ValueOrDie();
  EXPECT_EQ(out.rows.size(), 2u);
  auto in = RunCypher(g, "MATCH (a)<-[:knows]-(b) RETURN a.name").ValueOrDie();
  EXPECT_EQ(in.rows.size(), 2u);
  auto any = RunCypher(g, "MATCH (a)-[:knows]-(b) RETURN a.name").ValueOrDie();
  EXPECT_EQ(any.rows.size(), 4u);  // each directed edge seen from both sides
}

TEST(CypherExecutorTest, WhereComparisons) {
  PropertyGraph g = SampleGraph();
  auto r = RunCypher(g, "MATCH (p:Person) WHERE p.age > 30 RETURN p.name")
               .ValueOrDie();
  EXPECT_EQ(r.rows.size(), 2u);
  auto eq = RunCypher(g, "MATCH (p:Person) WHERE p.name = 'bob' RETURN p")
                .ValueOrDie();
  EXPECT_EQ(eq.rows.size(), 1u);
  auto ne = RunCypher(g, "MATCH (p:Person) WHERE p.name <> 'bob' RETURN p")
                .ValueOrDie();
  EXPECT_EQ(ne.rows.size(), 2u);
}

TEST(CypherExecutorTest, NodePropertyFilterInPattern) {
  PropertyGraph g = SampleGraph();
  auto r = RunCypher(g, "MATCH (p:Person {name: 'alice'})-[:bought]->(x) "
                        "RETURN x.name")
               .ValueOrDie();
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(std::get<std::string>(r.rows[0][0]), "laptop");
}

TEST(CypherExecutorTest, TwoHopJoin) {
  PropertyGraph g = SampleGraph();
  // Co-purchase: who bought what alice bought?
  auto r = RunCypher(g,
                     "MATCH (a:Person {name: 'alice'})-[:bought]->(p), "
                     "(other:Person)-[:bought]->(p) "
                     "WHERE other.name <> 'alice' RETURN other.name")
               .ValueOrDie();
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(std::get<std::string>(r.rows[0][0]), "bob");
}

TEST(CypherExecutorTest, CountStar) {
  PropertyGraph g = SampleGraph();
  auto r = RunCypher(g, "MATCH (a)-[:bought]->(b) RETURN count(*)").ValueOrDie();
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(std::get<int64_t>(r.rows[0][0]), 3);
}

TEST(CypherExecutorTest, LimitApplied) {
  PropertyGraph g = SampleGraph();
  auto r = RunCypher(g, "MATCH (p:Person) RETURN p LIMIT 2").ValueOrDie();
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST(CypherExecutorTest, NumericCrossTypeComparison) {
  PropertyGraph g = SampleGraph();
  // price is a double; compare against an integer literal.
  auto r = RunCypher(g, "MATCH (p:Product) WHERE p.price >= 1000 RETURN p.name")
               .ValueOrDie();
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(std::get<std::string>(r.rows[0][0]), "laptop");
}

TEST(CypherExecutorTest, UnknownVariableRejected) {
  PropertyGraph g = SampleGraph();
  EXPECT_FALSE(RunCypher(g, "MATCH (a) RETURN b").ok());
  EXPECT_FALSE(RunCypher(g, "MATCH (a) WHERE z.k = 1 RETURN a").ok());
}

TEST(CypherExecutorTest, FormatResultRenders) {
  PropertyGraph g = SampleGraph();
  auto r = RunCypher(g, "MATCH (p:Person) WHERE p.age > 40 RETURN p.name, p.age")
               .ValueOrDie();
  std::string text = FormatResult(r);
  EXPECT_NE(text.find("carol"), std::string::npos);
  EXPECT_NE(text.find("41"), std::string::npos);
}

TEST(CypherExecutorTest, EmptyResultIsNotAnError) {
  PropertyGraph g = SampleGraph();
  auto r = RunCypher(g, "MATCH (p:Person) WHERE p.age > 100 RETURN p").ValueOrDie();
  EXPECT_TRUE(r.rows.empty());
}

}  // namespace
}  // namespace ubigraph::query
