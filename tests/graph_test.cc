#include <gtest/gtest.h>

#include "graph/csr_graph.h"
#include "graph/dynamic_graph.h"
#include "graph/edge_list.h"
#include "graph/property_graph.h"

namespace ubigraph {
namespace {

TEST(EdgeListTest, AddGrowsVertexCount) {
  EdgeList el;
  el.Add(2, 5);
  EXPECT_EQ(el.num_vertices(), 6u);
  EXPECT_EQ(el.num_edges(), 1u);
  el.Add(7, 0);
  EXPECT_EQ(el.num_vertices(), 8u);
}

TEST(EdgeListTest, EnsureVerticesNeverShrinks) {
  EdgeList el(10);
  el.EnsureVertices(5);
  EXPECT_EQ(el.num_vertices(), 10u);
  el.EnsureVertices(20);
  EXPECT_EQ(el.num_vertices(), 20u);
}

TEST(EdgeListTest, DeduplicateKeepsFirstWeight) {
  EdgeList el;
  el.Add(0, 1, 2.0);
  el.Add(0, 1, 9.0);
  el.Add(1, 0, 1.0);
  el.Deduplicate();
  EXPECT_EQ(el.num_edges(), 2u);
}

TEST(EdgeListTest, RemoveSelfLoops) {
  EdgeList el;
  el.Add(0, 0);
  el.Add(0, 1);
  el.Add(1, 1);
  el.RemoveSelfLoops();
  EXPECT_EQ(el.num_edges(), 1u);
  EXPECT_EQ(el.edges()[0].dst, 1u);
}

TEST(EdgeListTest, ReversedSwapsEndpoints) {
  EdgeList el;
  el.Add(0, 1, 3.0);
  EdgeList rev = el.Reversed();
  EXPECT_EQ(rev.edges()[0].src, 1u);
  EXPECT_EQ(rev.edges()[0].dst, 0u);
  EXPECT_EQ(rev.edges()[0].weight, 3.0);
}

TEST(EdgeListTest, SymmetrizedDoublesNonLoops) {
  EdgeList el;
  el.Add(0, 1);
  el.Add(2, 2);
  EdgeList sym = el.Symmetrized();
  EXPECT_EQ(sym.num_edges(), 3u);  // 0->1, 1->0, 2->2 once
}

TEST(EdgeListTest, ValidateCatchesOutOfRange) {
  EdgeList el(2);
  el.mutable_edges().push_back(Edge{0, 5, 1.0});
  EXPECT_FALSE(el.Validate().ok());
}

TEST(CsrGraphTest, BasicConstruction) {
  EdgeList el(4);
  el.Add(0, 1);
  el.Add(0, 2);
  el.Add(2, 3);
  auto g = CsrGraph::FromEdges(std::move(el));
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 4u);
  EXPECT_EQ(g->num_edges(), 3u);
  EXPECT_EQ(g->OutDegree(0), 2u);
  EXPECT_EQ(g->OutDegree(3), 0u);
  EXPECT_TRUE(g->HasEdge(0, 2));
  EXPECT_FALSE(g->HasEdge(2, 0));
}

TEST(CsrGraphTest, NeighborsSortedWhenRequested) {
  EdgeList el(3);
  el.Add(0, 2);
  el.Add(0, 1);
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  auto nbrs = g.OutNeighbors(0);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(nbrs[1], 2u);
}

TEST(CsrGraphTest, WeightsFollowSortedNeighbors) {
  EdgeList el(3);
  el.Add(0, 2, 20.0);
  el.Add(0, 1, 10.0);
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  auto ws = g.OutWeights(0);
  EXPECT_DOUBLE_EQ(ws[0], 10.0);
  EXPECT_DOUBLE_EQ(ws[1], 20.0);
  EXPECT_DOUBLE_EQ(g.OutWeightSum(0), 30.0);
}

TEST(CsrGraphTest, UndirectedSymmetrizes) {
  EdgeList el(3);
  el.Add(0, 1);
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
  EXPECT_EQ(g.num_edges(), 2u);  // both arcs stored
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_EQ(g.InDegree(0), 1u);  // aliases out
}

TEST(CsrGraphTest, InEdgesBuiltOnRequest) {
  EdgeList el(3);
  el.Add(0, 2);
  el.Add(1, 2);
  CsrOptions opts;
  opts.build_in_edges = true;
  auto g = CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
  EXPECT_EQ(g.InDegree(2), 2u);
  auto in = g.InNeighbors(2);
  EXPECT_EQ(in[0], 0u);
  EXPECT_EQ(in[1], 1u);
  EXPECT_EQ(g.InDegree(0), 0u);
}

TEST(CsrGraphTest, DeduplicateAndLoopRemovalOptions) {
  EdgeList el(3);
  el.Add(0, 1);
  el.Add(0, 1);
  el.Add(1, 1);
  CsrOptions opts;
  opts.deduplicate = true;
  opts.remove_self_loops = true;
  auto g = CsrGraph::FromEdges(std::move(el), opts).ValueOrDie();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(CsrGraphTest, RoundTripThroughEdgeList) {
  EdgeList el(5);
  el.Add(0, 4, 2.5);
  el.Add(3, 1);
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  EdgeList back = g.ToEdgeList();
  EXPECT_EQ(back.num_vertices(), 5u);
  EXPECT_EQ(back.num_edges(), 2u);
  auto g2 = CsrGraph::FromEdges(std::move(back)).ValueOrDie();
  EXPECT_TRUE(g2.HasEdge(0, 4));
  EXPECT_TRUE(g2.HasEdge(3, 1));
}

TEST(CsrGraphTest, InvalidEdgeListRejected) {
  EdgeList el(1);
  el.mutable_edges().push_back(Edge{0, 9, 1.0});
  auto g = CsrGraph::FromEdges(std::move(el));
  EXPECT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsInvalid());
}

TEST(CsrGraphTest, EmptyGraph) {
  auto g = CsrGraph::FromEdges(EdgeList{}).ValueOrDie();
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.MaxOutDegree(), 0u);
}

TEST(CsrGraphTest, FromPairsConvenience) {
  auto g = CsrGraph::FromPairs(3, {{0, 1}, {1, 2}}).ValueOrDie();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(CsrGraphTest, MaxOutDegree) {
  auto g = CsrGraph::FromPairs(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}}).ValueOrDie();
  EXPECT_EQ(g.MaxOutDegree(), 3u);
}

TEST(DynamicGraphTest, AddRemoveEdges) {
  DynamicGraph g(3);
  auto e1 = g.AddEdge(0, 1);
  ASSERT_TRUE(e1.ok());
  auto e2 = g.AddEdge(0, 1);  // parallel allowed
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.EdgeMultiplicity(0, 1), 2u);
  EXPECT_TRUE(g.RemoveEdge(*e1).ok());
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.EdgeMultiplicity(0, 1), 1u);
  // Double-remove fails.
  EXPECT_TRUE(g.RemoveEdge(*e1).IsNotFound());
}

TEST(DynamicGraphTest, SimpleGraphRejectsParallel) {
  DynamicGraph g(2, /*allow_multi_edges=*/false);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  auto dup = g.AddEdge(0, 1);
  EXPECT_TRUE(dup.status().IsAlreadyExists());
}

TEST(DynamicGraphTest, DegreesTrackLiveEdges) {
  DynamicGraph g(3);
  auto e = g.AddEdge(0, 1).ValueOrDie();
  g.AddEdge(0, 2).ValueOrDie();
  g.AddEdge(2, 0).ValueOrDie();
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(0), 1u);
  ASSERT_TRUE(g.RemoveEdge(e).ok());
  EXPECT_EQ(g.OutDegree(0), 1u);
  EXPECT_EQ(g.InDegree(1), 0u);
}

TEST(DynamicGraphTest, RemoveVertexEdges) {
  DynamicGraph g(3);
  g.AddEdge(0, 1).ValueOrDie();
  g.AddEdge(1, 2).ValueOrDie();
  g.AddEdge(2, 1).ValueOrDie();
  ASSERT_TRUE(g.RemoveVertexEdges(1).ok());
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(DynamicGraphTest, RemoveEdgeBetween) {
  DynamicGraph g(2);
  g.AddEdge(0, 1).ValueOrDie();
  EXPECT_TRUE(g.RemoveEdgeBetween(0, 1).ok());
  EXPECT_TRUE(g.RemoveEdgeBetween(0, 1).IsNotFound());
}

TEST(DynamicGraphTest, GetEdgeAndSetWeight) {
  DynamicGraph g(2);
  EdgeId e = g.AddEdge(0, 1, 5.0).ValueOrDie();
  auto view = g.GetEdge(e);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->weight, 5.0);
  ASSERT_TRUE(g.SetWeight(e, 7.0).ok());
  EXPECT_EQ(g.GetEdge(e)->weight, 7.0);
}

TEST(DynamicGraphTest, CompactReclaimsTombstones) {
  DynamicGraph g(3);
  EdgeId e1 = g.AddEdge(0, 1).ValueOrDie();
  g.AddEdge(1, 2).ValueOrDie();
  g.RemoveEdge(e1).Abort();
  uint64_t reclaimed = g.Compact();
  EXPECT_EQ(reclaimed, 1u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.OutDegree(1), 1u);
  EXPECT_EQ(g.OutDegree(0), 0u);
}

TEST(DynamicGraphTest, ToEdgeListSkipsRemoved) {
  DynamicGraph g(3);
  EdgeId e1 = g.AddEdge(0, 1).ValueOrDie();
  g.AddEdge(1, 2).ValueOrDie();
  g.RemoveEdge(e1).Abort();
  EdgeList el = g.ToEdgeList();
  EXPECT_EQ(el.num_edges(), 1u);
  EXPECT_EQ(el.edges()[0].src, 1u);
}

TEST(DynamicGraphTest, AddVertexExtendsRange) {
  DynamicGraph g(1);
  VertexId v = g.AddVertex();
  EXPECT_EQ(v, 1u);
  EXPECT_TRUE(g.AddEdge(0, v).ok());
  EXPECT_TRUE(g.AddEdge(0, 5).status().IsOutOfRange());
}

TEST(DynamicGraphTest, ForEachVisitsOnlyLive) {
  DynamicGraph g(3);
  EdgeId e1 = g.AddEdge(0, 1).ValueOrDie();
  g.AddEdge(0, 2).ValueOrDie();
  g.RemoveEdge(e1).Abort();
  int count = 0;
  g.ForEachOutEdge(0, [&](EdgeId, VertexId dst, double) {
    EXPECT_EQ(dst, 2u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(PropertyGraphTest, LabelsAndTypes) {
  PropertyGraph g;
  VertexId a = g.AddVertex("person");
  VertexId b = g.AddVertex("product");
  EdgeId e = g.AddEdge(a, b, "bought").ValueOrDie();
  EXPECT_EQ(g.VertexLabel(a), "person");
  EXPECT_EQ(g.VertexLabel(b), "product");
  EXPECT_EQ(g.EdgeType(e), "bought");
  EXPECT_EQ(g.EdgeSrc(e), a);
  EXPECT_EQ(g.EdgeDst(e), b);
}

TEST(PropertyGraphTest, AllPropertyTypes) {
  PropertyGraph g;
  VertexId v = g.AddVertex("item");
  ASSERT_TRUE(g.SetVertexProperty(v, "name", std::string("widget")).ok());
  ASSERT_TRUE(g.SetVertexProperty(v, "price", 9.99).ok());
  ASSERT_TRUE(g.SetVertexProperty(v, "stock", static_cast<int64_t>(5)).ok());
  ASSERT_TRUE(g.SetVertexProperty(v, "active", true).ok());
  ASSERT_TRUE(g.SetVertexProperty(v, "created", Timestamp{1234}).ok());
  ASSERT_TRUE(g.SetVertexProperty(v, "blob", Bytes{1, 2, 3}).ok());
  EXPECT_EQ(std::get<std::string>(g.GetVertexProperty(v, "name")), "widget");
  EXPECT_EQ(std::get<double>(g.GetVertexProperty(v, "price")), 9.99);
  EXPECT_EQ(std::get<int64_t>(g.GetVertexProperty(v, "stock")), 5);
  EXPECT_EQ(std::get<bool>(g.GetVertexProperty(v, "active")), true);
  EXPECT_EQ(std::get<Timestamp>(g.GetVertexProperty(v, "created")).millis, 1234);
  EXPECT_EQ(std::get<Bytes>(g.GetVertexProperty(v, "blob")).size(), 3u);
  EXPECT_EQ(g.VertexProperties(v).size(), 6u);
}

TEST(PropertyGraphTest, MissingPropertyIsMonostate) {
  PropertyGraph g;
  VertexId v = g.AddVertex("x");
  EXPECT_TRUE(std::holds_alternative<std::monostate>(
      g.GetVertexProperty(v, "nothing")));
}

TEST(PropertyGraphTest, OverwriteProperty) {
  PropertyGraph g;
  VertexId v = g.AddVertex("x");
  g.SetVertexProperty(v, "k", static_cast<int64_t>(1)).Abort();
  g.SetVertexProperty(v, "k", static_cast<int64_t>(2)).Abort();
  EXPECT_EQ(std::get<int64_t>(g.GetVertexProperty(v, "k")), 2);
  EXPECT_EQ(g.VertexProperties(v).size(), 1u);
}

TEST(PropertyGraphTest, EdgePropertiesAndTypedOutEdges) {
  PropertyGraph g;
  VertexId a = g.AddVertex("n");
  VertexId b = g.AddVertex("n");
  EdgeId knows = g.AddEdge(a, b, "knows").ValueOrDie();
  g.AddEdge(a, b, "likes").ValueOrDie();
  g.SetEdgeProperty(knows, "since", static_cast<int64_t>(2015)).Abort();
  EXPECT_EQ(std::get<int64_t>(g.GetEdgeProperty(knows, "since")), 2015);
  EXPECT_EQ(g.OutEdges(a).size(), 2u);
  EXPECT_EQ(g.OutEdges(a, "knows").size(), 1u);
  EXPECT_EQ(g.InEdges(b, "likes").size(), 1u);
  EXPECT_EQ(g.OutEdges(a, "nosuch").size(), 0u);
}

TEST(PropertyGraphTest, VerticesWithLabel) {
  PropertyGraph g;
  g.AddVertex("a");
  g.AddVertex("b");
  g.AddVertex("a");
  EXPECT_EQ(g.VerticesWithLabel("a").size(), 2u);
  EXPECT_EQ(g.VerticesWithLabel("zzz").size(), 0u);
}

TEST(PropertyGraphTest, ToEdgeListUsesWeightProperty) {
  PropertyGraph g;
  VertexId a = g.AddVertex("n");
  VertexId b = g.AddVertex("n");
  EdgeId e = g.AddEdge(a, b, "t").ValueOrDie();
  g.SetEdgeProperty(e, "weight", 4.5).Abort();
  EdgeList el = g.ToEdgeList();
  ASSERT_EQ(el.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(el.edges()[0].weight, 4.5);
}

TEST(PropertyGraphTest, OutOfRangeEdgeRejected) {
  PropertyGraph g;
  g.AddVertex("n");
  EXPECT_TRUE(g.AddEdge(0, 5, "t").status().IsOutOfRange());
}

TEST(StringDictionaryTest, InternIsIdempotent) {
  StringDictionary dict;
  uint32_t a = dict.Intern("x");
  uint32_t b = dict.Intern("x");
  uint32_t c = dict.Intern("y");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(dict.Name(a), "x");
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_FALSE(dict.Lookup("zzz").has_value());
}

}  // namespace
}  // namespace ubigraph
