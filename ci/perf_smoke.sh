#!/usr/bin/env bash
# Perf smoke gate: runs the perf-labeled ctest suite, then the small-graph
# (scale-12) slice of the benchmarks, and fails if any benchmark's median
# real time regressed more than the noise-aware allowance (25% + both runs'
# observed rel_spread) against the checked-in ci/perf_baseline.json, or if
# any current record is missing its machine-independent work counter
# (--require-work-items), or if a memory counter shared by baseline and
# current (peak_segment_bytes / peak_msg_bytes, and more loosely
# peak_rss_bytes) grew past its gate (--gate-memory) — the out-of-core
# records must stay out-of-core. The scale-12 slice includes non-RMAT corpus shapes
# (BM_BfsHybridRoad on the road lattice, BM_PageRankPullLfr on the LFR
# community graph), so the gate is not blind to locality regressions that an
# RMAT-only smoke would miss.
#
# Wall-clock baselines are machine-relative: regenerate on the machine that
# enforces the gate with
#   ci/perf_smoke.sh --update-baseline
#
# Usage: ci/perf_smoke.sh [--update-baseline] [build-dir]
set -euo pipefail

UPDATE=0
if [[ "${1:-}" == "--update-baseline" ]]; then
  UPDATE=1
  shift
fi
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
BASELINE="$ROOT/ci/perf_baseline.json"
MAX_REGRESSION="${UBIGRAPH_PERF_MAX_REGRESSION:-0.25}"
# Repeat each benchmark so the comparison uses a median, not one noisy run;
# the reporter discards the first repetition as warmup and publishes the
# remaining runs' rel_spread alongside the median.
BENCH_FLAGS=(--benchmark_filter='/12/' --benchmark_min_time=0.05
             --benchmark_repetitions=5 --benchmark_report_aggregates_only=false)
SMOKE_BINARIES=(perf_traversal perf_pagerank perf_components perf_csr_build
                perf_reorder perf_shortest_path perf_centrality
                perf_incremental perf_query perf_sharded)

cmake -S "$ROOT" -B "$BUILD_DIR" > /dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target \
  "${SMOKE_BINARIES[@]}" bench_compare obs_overhead_test > /dev/null

# Timing-sensitive test suite (obs overhead budget, etc.).
ctest --test-dir "$BUILD_DIR" -L perf --output-on-failure

OUTS=()
for bin in "${SMOKE_BINARIES[@]}"; do
  out="$BUILD_DIR/BENCH_smoke_${bin}.json"
  echo "== $bin ${BENCH_FLAGS[*]}"
  (cd "$BUILD_DIR" && UBIGRAPH_BENCH_OUT="$out" UBIGRAPH_OBS_OUT=/dev/null \
      "./bench/$bin" "${BENCH_FLAGS[@]}" > /dev/null)
  OUTS+=("$out")
done

if [[ "$UPDATE" == 1 ]]; then
  "$BUILD_DIR/bench/bench_compare" --write-baseline "$BASELINE" "${OUTS[@]}"
  echo "perf_smoke: baseline updated at $BASELINE"
  exit 0
fi

if [[ ! -f "$BASELINE" ]]; then
  echo "perf_smoke: no baseline at $BASELINE — run with --update-baseline first" >&2
  exit 2
fi

"$BUILD_DIR/bench/bench_compare" --require-work-items --gate-memory \
  "$BASELINE" "$MAX_REGRESSION" "${OUTS[@]}"
echo "perf_smoke: OK"
