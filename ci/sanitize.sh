#!/usr/bin/env bash
# Sanitizer gate: configures a dedicated build tree with UBIGRAPH_SANITIZE
# (thread by default — catches data races in the parallel runtime and the
# obs shard merging) and runs the `unit`-labeled test suite under it.
#
# Usage: ci/sanitize.sh [thread|address|undefined] [ctest-label]
set -euo pipefail

SANITIZER="${1:-${UBIGRAPH_SANITIZE:-thread}}"
LABEL="${2:-unit}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build-${SANITIZER}san"

cmake -S "$ROOT" -B "$BUILD_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DUBIGRAPH_SANITIZE="$SANITIZER" \
  -DUBIGRAPH_BUILD_BENCHMARKS=OFF \
  -DUBIGRAPH_BUILD_EXAMPLES=OFF

cmake --build "$BUILD_DIR" -j"$(nproc)"

# Perf-labeled tests are timing assertions and are meaningless under a
# sanitizer's 5-20x slowdown; the label filter keeps them out by design.
ctest --test-dir "$BUILD_DIR" -L "$LABEL" --output-on-failure -j"$(nproc)"
