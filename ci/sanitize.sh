#!/usr/bin/env bash
# Sanitizer gate: configures a dedicated build tree with UBIGRAPH_SANITIZE
# (thread by default — catches data races in the parallel runtime and the
# obs shard merging) and runs the unit- and integration-labeled test suites
# under it. The integration label notably covers the incremental-maintenance
# differential tests, which drive every engine at 1/2/4/8 threads and are the
# main TSan coverage for the stream layer, and the corpus differential suite
# (corpus_differential_test), which sweeps every kernel family over corpus
# shape x representation x thread count.
#
# Tests run in a randomized order so inter-test ordering dependencies (shared
# global state, leftover temp files) surface here instead of in a flaky
# downstream run; until-pass:1 keeps the invocation future-proof against a
# repeat-count bump without changing today's single-run semantics.
#
# Usage: ci/sanitize.sh [thread|address|undefined] [ctest-label-regex]
set -euo pipefail

SANITIZER="${1:-${UBIGRAPH_SANITIZE:-thread}}"
LABEL="${2:-unit|integration}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build-${SANITIZER}san"

cmake -S "$ROOT" -B "$BUILD_DIR" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DUBIGRAPH_SANITIZE="$SANITIZER" \
  -DUBIGRAPH_BUILD_BENCHMARKS=OFF \
  -DUBIGRAPH_BUILD_EXAMPLES=OFF

cmake --build "$BUILD_DIR" -j"$(nproc)"

# Perf-labeled tests are timing assertions and are meaningless under a
# sanitizer's 5-20x slowdown; the label filter keeps them out by design.
ctest --test-dir "$BUILD_DIR" -L "$LABEL" --output-on-failure -j"$(nproc)" \
  --schedule-random --repeat until-pass:1
