// Knowledge graph: the survey's RDF workloads (Table 4: 23/89 participants;
// Table 12: 16 use RDF engines). Builds a small film knowledge base in the
// triple store, answers SPARQL-style basic graph patterns, round-trips it
// through N-Triples, and mirrors one query in Cypher-lite over a property
// graph — the "querying across multiple representations" theme of Table 17.
//
//   ./knowledge_graph
#include <cstdio>

#include "query/cypher_executor.h"
#include "rdf/ntriples.h"
#include "rdf/triple_store.h"

int main() {
  using namespace ubigraph;
  using rdf::TripleStore;

  TripleStore kb;
  // Films.
  kb.Add("inception", "type", "Film");
  kb.Add("interstellar", "type", "Film");
  kb.Add("dunkirk", "type", "Film");
  kb.Add("heat", "type", "Film");
  // Direction & casting.
  kb.Add("nolan", "directed", "inception");
  kb.Add("nolan", "directed", "interstellar");
  kb.Add("nolan", "directed", "dunkirk");
  kb.Add("mann", "directed", "heat");
  kb.Add("dicaprio", "actedIn", "inception");
  kb.Add("hathaway", "actedIn", "interstellar");
  kb.Add("pacino", "actedIn", "heat");
  kb.Add("deniro", "actedIn", "heat");
  // Literal facts.
  kb.Add("inception", "year", "\"2010\"");
  kb.Add("interstellar", "year", "\"2014\"");
  std::printf("knowledge base: %zu triples, %zu distinct terms\n",
              kb.num_triples(), kb.num_terms());

  // --- SPARQL-style BGP: films directed by nolan and who acted in them. ---
  std::vector<std::string> vars;
  auto rows = kb.Query({{"nolan", "directed", "?film"},
                        {"?actor", "actedIn", "?film"}},
                       &vars)
                  .ValueOrDie();
  std::printf("\n?film / ?actor where nolan directed ?film:\n");
  for (const auto& row : rows) {
    std::printf("  %s starring %s\n", kb.TermName(row[0]).c_str(),
                kb.TermName(row[1]).c_str());
  }

  // --- Co-star query with a join through a shared film. ---
  auto costars = kb.Query({{"?a", "actedIn", "?film"}, {"?b", "actedIn", "?film"}},
                          &vars)
                     .ValueOrDie();
  int pairs = 0;
  for (const auto& row : costars) {
    if (row[0] < row[1]) {
      std::printf("  co-stars: %s and %s\n", kb.TermName(row[0]).c_str(),
                  kb.TermName(row[1]).c_str());
      ++pairs;
    }
  }
  std::printf("(%d unordered co-star pairs)\n", pairs);

  // --- Round-trip through N-Triples. ---
  std::string serialized = rdf::WriteNTriples(kb);
  TripleStore reloaded;
  size_t count = rdf::ParseNTriples(serialized, &reloaded).ValueOrDie();
  std::printf("\nN-Triples round trip: %zu triples restored\n", count);

  // --- The same domain as a property graph, queried in Cypher-lite. ---
  PropertyGraph pg;
  VertexId nolan = pg.AddVertex("Director");
  pg.SetVertexProperty(nolan, "name", std::string("nolan")).Abort();
  VertexId inception = pg.AddVertex("Film");
  pg.SetVertexProperty(inception, "name", std::string("inception")).Abort();
  pg.SetVertexProperty(inception, "year", static_cast<int64_t>(2010)).Abort();
  VertexId interstellar = pg.AddVertex("Film");
  pg.SetVertexProperty(interstellar, "name", std::string("interstellar")).Abort();
  pg.SetVertexProperty(interstellar, "year", static_cast<int64_t>(2014)).Abort();
  pg.AddEdge(nolan, inception, "directed").ValueOrDie();
  pg.AddEdge(nolan, interstellar, "directed").ValueOrDie();

  auto result =
      query::RunCypher(pg,
                       "MATCH (d:Director)-[:directed]->(f:Film) "
                       "WHERE f.year > 2012 RETURN d.name, f.name, f.year")
          .ValueOrDie();
  std::printf("\nCypher-lite over the property-graph view:\n%s",
              query::FormatResult(result).c_str());
  return 0;
}
