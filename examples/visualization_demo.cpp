// Visualization demo — the survey's #2 challenge and most popular non-query
// task. Lays out graphs with all four layout engines, colors vertices by
// Louvain community, demonstrates the large-graph coarsening pipeline, and
// writes SVG + DOT files to /tmp.
//
//   ./visualization_demo && ls /tmp/ubigraph_*.svg
#include <cstdio>

#include "common/random.h"
#include "gen/generators.h"
#include "io/edge_list_io.h"
#include "ml/louvain.h"
#include "viz/coarsen.h"
#include "viz/dot_export.h"
#include "viz/layout.h"
#include "viz/svg_export.h"

int main() {
  using namespace ubigraph;

  Rng rng(19);
  CsrOptions undirected;
  undirected.directed = false;

  // --- 1. Force-directed layout of a community graph, colored by cluster. ---
  auto g = CsrGraph::FromEdges(
               gen::PlantedPartition(90, 3, 0.25, 0.01, &rng).ValueOrDie(),
               undirected)
               .ValueOrDie();
  auto communities = ml::Louvain(g);
  viz::ForceLayoutOptions fopts;
  fopts.iterations = 250;
  viz::Layout layout = viz::ForceDirectedLayout(g, fopts);
  viz::SvgStyle style;
  style.vertex_colors = viz::CategoricalColors(communities.community);
  io::WriteStringToFile(viz::RenderSvg(g, layout, style),
                        "/tmp/ubigraph_communities.svg")
      .Abort();
  std::printf("wrote /tmp/ubigraph_communities.svg (%u communities colored)\n",
              communities.num_communities);

  // --- 2. Hierarchical layout of a DAG (the §6.2 layout request). ---
  EdgeList dag(13);
  dag.Add(0, 1); dag.Add(0, 2); dag.Add(1, 3); dag.Add(1, 4);
  dag.Add(2, 5); dag.Add(2, 6); dag.Add(3, 7); dag.Add(4, 7);
  dag.Add(5, 8); dag.Add(6, 8); dag.Add(7, 9); dag.Add(8, 9);
  dag.Add(9, 10); dag.Add(9, 11); dag.Add(10, 12); dag.Add(11, 12);
  auto hier = CsrGraph::FromEdges(std::move(dag)).ValueOrDie();
  viz::SvgStyle hier_style;
  hier_style.draw_arrowheads = true;
  hier_style.draw_labels = true;
  io::WriteStringToFile(
      viz::RenderSvg(hier, viz::HierarchicalLayout(hier), hier_style),
      "/tmp/ubigraph_hierarchy.svg")
      .Abort();
  uint64_t crossings =
      viz::CountEdgeCrossings(hier, viz::HierarchicalLayout(hier));
  std::printf("wrote /tmp/ubigraph_hierarchy.svg (%llu edge crossings)\n",
              static_cast<unsigned long long>(crossings));

  // --- 3. Large-graph pipeline: coarsen 5000 vertices to communities. ---
  auto big = CsrGraph::FromEdges(gen::WattsStrogatz(5000, 6, 0.05, &rng).ValueOrDie(),
                                 undirected)
                 .ValueOrDie();
  auto big_comm = ml::Louvain(big);
  auto coarse =
      viz::CoarsenByGroups(big, big_comm.community, big_comm.num_communities)
          .ValueOrDie();
  viz::SvgStyle coarse_style;
  coarse_style.vertex_radii.resize(coarse.graph.num_vertices());
  for (VertexId v = 0; v < coarse.graph.num_vertices(); ++v) {
    coarse_style.vertex_radii[v] =
        3.0 + 0.02 * static_cast<double>(coarse.group_sizes[v]);
  }
  io::WriteStringToFile(
      viz::RenderSvg(coarse.graph, viz::ForceDirectedLayout(coarse.graph, fopts),
                     coarse_style),
      "/tmp/ubigraph_coarse.svg")
      .Abort();
  std::printf("wrote /tmp/ubigraph_coarse.svg (%u vertices summarize %u)\n",
              coarse.graph.num_vertices(), big.num_vertices());

  // --- 4. DOT export for Graphviz interop. ---
  viz::DotOptions dopts;
  dopts.vertex_colors = viz::CategoricalColors(communities.community);
  io::WriteStringToFile(viz::RenderDot(g, dopts), "/tmp/ubigraph_communities.dot")
      .Abort();
  std::printf("wrote /tmp/ubigraph_communities.dot (render with `dot -Tpng`)\n");

  // --- 5. Layout quality comparison on a ring. ---
  auto ring = CsrGraph::FromEdges(gen::Cycle(24), undirected).ValueOrDie();
  std::printf("\nlayout quality on a 24-cycle (edge crossings):\n");
  std::printf("  circular:       %llu\n",
              static_cast<unsigned long long>(
                  viz::CountEdgeCrossings(ring, viz::CircularLayout(ring))));
  std::printf("  grid:           %llu\n",
              static_cast<unsigned long long>(
                  viz::CountEdgeCrossings(ring, viz::GridLayout(ring))));
  std::printf("  force-directed: %llu\n",
              static_cast<unsigned long long>(viz::CountEdgeCrossings(
                  ring, viz::ForceDirectedLayout(ring, fopts))));
  return 0;
}
