// Product graph: the survey's most surprising finding is that classic
// enterprise data — products, orders, transactions — is the most popular
// *non-human* entity class stored as a graph (Table 4, NH-P: 12 of 13 are
// practitioners). This example builds a customers-orders-products property
// graph, then runs the analyses the survey says enterprises value:
//   * Cypher-lite queries over the purchase patterns,
//   * co-purchase recommendation (collaborative filtering),
//   * fraud-ring detection via connected components over shared cards.
//
//   ./product_graph
#include <cstdio>
#include <string>

#include "algorithms/connected_components.h"
#include "common/random.h"
#include "ml/collaborative_filtering.h"
#include "query/cypher_executor.h"
#include "query/traversal_api.h"

int main() {
  using namespace ubigraph;

  Rng rng(7);
  PropertyGraph g;

  // --- Synthetic enterprise data: 40 customers, 25 products, 10 cards. ---
  constexpr int kCustomers = 40, kProducts = 25, kCards = 41;
  std::vector<VertexId> customers, products, cards;
  for (int i = 0; i < kCustomers; ++i) {
    VertexId v = g.AddVertex("Customer");
    g.SetVertexProperty(v, "name", "customer" + std::to_string(i)).Abort();
    customers.push_back(v);
  }
  for (int i = 0; i < kProducts; ++i) {
    VertexId v = g.AddVertex("Product");
    g.SetVertexProperty(v, "name", "product" + std::to_string(i)).Abort();
    g.SetVertexProperty(v, "price", 5.0 + 10.0 * (i % 7)).Abort();
    products.push_back(v);
  }
  for (int i = 0; i < kCards; ++i) {
    VertexId v = g.AddVertex("Card");
    g.SetVertexProperty(v, "number", "card" + std::to_string(i)).Abort();
    cards.push_back(v);
  }

  // Orders connect the three: customer -placed-> order -contains-> product,
  // order -paid_with-> card. Customers have taste clusters (products i%5).
  std::vector<ml::Rating> ratings;
  int num_orders = 0;
  for (int c = 0; c < kCustomers; ++c) {
    int orders = 2 + static_cast<int>(rng.NextBounded(3));
    for (int o = 0; o < orders; ++o) {
      VertexId order = g.AddVertex("Order");
      g.SetVertexProperty(order, "id", static_cast<int64_t>(num_orders++)).Abort();
      g.AddEdge(customers[c], order, "placed").ValueOrDie();
      // Card sharing: each customer uses their own card, except customers
      // 0, 7, 14, ... who all pay with card 0 — the planted fraud ring.
      int card = (c % 7 == 0) ? 0 : 1 + c;
      g.AddEdge(order, cards[card], "paid_with").ValueOrDie();
      int items = 1 + static_cast<int>(rng.NextBounded(3));
      for (int k = 0; k < items; ++k) {
        int p = (c % 5) * 5 + static_cast<int>(rng.NextBounded(5));
        g.AddEdge(order, products[p], "contains").ValueOrDie();
        ratings.push_back({static_cast<uint32_t>(c), static_cast<uint32_t>(p),
                           1.0 + static_cast<double>(rng.NextBounded(5))});
      }
    }
  }
  std::printf("enterprise graph: %u vertices, %llu edges (%d orders)\n",
              g.num_vertices(), static_cast<unsigned long long>(g.num_edges()),
              num_orders);

  // --- 1. Query: expensive products bought by customer0's orders. ---
  auto result = query::RunCypher(
                    g,
                    "MATCH (c:Customer {name: 'customer0'})-[:placed]->(o)"
                    "-[:contains]->(p:Product) WHERE p.price > 40 "
                    "RETURN p.name, p.price")
                    .ValueOrDie();
  std::printf("\ncustomer0's premium purchases (%zu rows):\n%s",
              result.rows.size(), query::FormatResult(result).c_str());

  // --- 2. Recommendation via item-item collaborative filtering. ---
  auto cf = ml::ItemItemCf::Build(kCustomers, kProducts, ratings).ValueOrDie();
  auto recs = cf.Recommend(0, 3);
  std::printf("\nrecommended for customer0:");
  for (uint32_t p : recs) std::printf(" product%u", p);
  std::printf("\n");

  // --- 3. Fraud rings: customers sharing a payment card form components. ---
  // Project customer-card co-usage into an edge list.
  EdgeList co_usage(kCustomers);
  for (int a = 0; a < kCustomers; ++a) {
    for (int b = a + 1; b < kCustomers; ++b) {
      // Shared card iff both have an order paid with the same card vertex.
      auto cards_of = [&](VertexId cust) {
        return query::GraphTraversal(g)
            .V({cust})
            .Out("placed")
            .Out("paid_with")
            .Dedup()
            .ToVector();
      };
      auto ca = cards_of(customers[a]);
      auto cb = cards_of(customers[b]);
      for (VertexId x : ca) {
        for (VertexId y : cb) {
          if (x == y) {
            co_usage.Add(a, b);
            goto next_pair;
          }
        }
      }
    next_pair:;
    }
  }
  co_usage.EnsureVertices(kCustomers);
  CsrOptions copts;
  copts.directed = false;
  auto co_graph = CsrGraph::FromEdges(std::move(co_usage), copts).ValueOrDie();
  auto rings = algo::WeaklyConnectedComponents(co_graph);
  auto sizes = rings.ComponentSizes();
  uint64_t biggest = sizes[rings.LargestComponent()];
  std::printf("\ncard-sharing components: %u; largest suspicious ring has %llu "
              "customers\n",
              rings.num_components, static_cast<unsigned long long>(biggest));
  std::printf("(customers 0, 7, 14, ... were planted to share card0)\n");
  return 0;
}
