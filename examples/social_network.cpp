// Social network analysis: the survey's human-entity workloads (Table 4:
// humans are in 45/89 participants' graphs) — community detection, influence
// maximization, link prediction, and centrality, end to end.
//
//   ./social_network
#include <cstdio>

#include "algorithms/centrality.h"
#include "algorithms/pagerank.h"
#include "common/random.h"
#include "gen/generators.h"
#include "ml/influence_max.h"
#include "ml/link_prediction.h"
#include "ml/louvain.h"

int main() {
  using namespace ubigraph;

  // A planted-community social graph: 4 circles of 50 people.
  Rng rng(11);
  auto edges = gen::PlantedPartition(200, 4, 0.25, 0.01, &rng).ValueOrDie();
  CsrOptions opts;
  opts.directed = false;
  auto g = CsrGraph::FromEdges(std::move(edges), opts).ValueOrDie();
  std::printf("social graph: %u people, %llu friendship arcs\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  // --- Community detection (Table 10b's most common ML problem). ---
  auto communities = ml::Louvain(g);
  std::printf("\nLouvain found %u communities (modularity %.3f, %u levels)\n",
              communities.num_communities, communities.modularity,
              communities.levels);
  int correct = 0;
  for (VertexId v = 0; v < 200; ++v) {
    // Majority label of the vertex's planted group.
    if (communities.community[v] == communities.community[(v / 50) * 50]) {
      ++correct;
    }
  }
  std::printf("agreement with the planted circles: %d / 200\n", correct);

  // --- Influence maximization (CELF) vs the degree heuristic. ---
  ml::InfluenceOptions io;
  io.probability = 0.05;
  io.num_simulations = 100;
  auto celf = ml::CelfInfluenceMaximization(g, 4, io).ValueOrDie();
  auto degree_seeds = ml::TopDegreeSeeds(g, 4);
  double degree_spread = ml::EstimateSpread(g, degree_seeds, io);
  std::printf("\ninfluence maximization (k=4, IC p=0.05):\n");
  std::printf("  CELF seeds spread %.1f people (%llu spread evaluations)\n",
              celf.expected_spread,
              static_cast<unsigned long long>(celf.spread_evaluations));
  std::printf("  top-degree heuristic spreads %.1f people\n", degree_spread);

  // --- Link prediction: who should befriend whom? ---
  auto predictions = ml::TopKPredictedLinks(g, 5, ml::LinkScore::kAdamicAdar);
  std::printf("\ntop friend suggestions (Adamic-Adar):\n");
  for (const auto& p : predictions) {
    std::printf("  %u -- %u  (score %.2f, same circle: %s)\n", p.u, p.v, p.score,
                p.u / 50 == p.v / 50 ? "yes" : "no");
  }

  // --- Centrality: the brokers connecting circles. ---
  Rng crng(3);
  auto betweenness = algo::ApproxBetweennessCentrality(g, 40, &crng);
  auto top = algo::TopK(betweenness, 3);
  std::printf("\nhighest-betweenness brokers:");
  for (VertexId v : top) std::printf(" %u", v);
  std::printf("\n");
  return 0;
}
