// End-to-end survey replication: synthesizes the calibrated respondent
// population, the academic paper corpus, and the email/issue corpus, then
// prints the paper's headline findings with their reproduced numbers.
//
//   ./survey_replication
#include <cstdio>

#include "survey/academic.h"
#include "survey/corpus.h"
#include "survey/goodness_of_fit.h"
#include "survey/miner.h"
#include "survey/population.h"
#include "survey/tabulate.h"

int main() {
  using namespace ubigraph::survey;

  std::puts("=== Reproducing 'The Ubiquity of Large Graphs' (VLDB 2017) ===\n");

  auto population = Population::SynthesizeExact();
  if (!population.ok()) {
    std::printf("population synthesis failed: %s\n",
                population.status().ToString().c_str());
    return 1;
  }
  std::printf("population: %d respondents (%d researchers, %d practitioners)\n",
              kParticipants, kResearchers, kPractitioners);
  std::printf("calibration check: %s\n\n",
              population->VerifyAgainstPaper().ok()
                  ? "every table cell matches the paper"
                  : "MISMATCH");

  // Finding 1 — ubiquity of very large graphs.
  auto edges = population->Tabulate("edges");
  std::printf("[Finding 1] %d participants work with graphs of >1B edges "
              "(%d researchers, %d practitioners)\n",
              edges.back().total, edges.back().researchers,
              edges.back().practitioners);
  auto orgs = DeriveBillionEdgeOrgSizes(*population);
  std::printf("            ...from organizations of every size:");
  for (const auto& row : orgs) std::printf(" %s:%d", row.label, row.count);
  std::printf("\n\n");

  // Finding 2 — scalability is the top challenge.
  auto challenges = population->Tabulate("challenges");
  std::printf("[Finding 2] top challenge: Scalability (%d), then "
              "Visualization (%d) and Query Languages (%d)\n\n",
              challenges[0].total, challenges[1].total, challenges[2].total);

  // Finding 3 — product graphs: enterprise data lives in graphs.
  auto entities = population->Tabulate("entities");
  std::printf("[Finding 3] products/orders/transactions graphs: %d "
              "participants, %d of them practitioners\n\n",
              entities[4].total, entities[4].practitioners);

  // Finding 4 — RDBMSes still matter.
  auto software = population->Tabulate("query_software");
  std::printf("[Finding 4] %d participants still query graphs with an RDBMS; "
              "only %d practitioners use a DGPS\n\n",
              software[3].total, software[5].practitioners);

  // The review pipeline: mine the synthetic corpus.
  auto corpus = MessageCorpus::Synthesize();
  if (!corpus.ok()) return 1;
  MinedChallenges mined = MineChallenges(*corpus);
  std::printf("[Review] mined %zu messages; %d carried challenges; top mined "
              "challenge: Off-the-shelf Algorithms (%d requests)\n",
              corpus->size(), mined.useful_messages, mined.counts[11]);
  MinedSizes sizes = MineGraphSizes(*corpus);
  int over_1b = 0;
  for (int c : sizes.edge_bands) over_1b += c;
  std::printf("[Review] %d emails mention graphs beyond 1B edges "
              "(paper: 66)\n\n",
              over_1b);

  // Stochastic robustness: how noisy would a re-run of the survey be?
  auto stats = ResampleExperiment(20);
  double worst = 0;
  const ResampleStats* worst_q = nullptr;
  for (const auto& s : stats) {
    if (s.mean_abs_deviation > worst) {
      worst = s.mean_abs_deviation;
      worst_q = &s;
    }
  }
  std::printf("[Robustness] over 20 resampled surveys, the noisiest question "
              "('%s') deviates by %.1f respondents per choice on average\n",
              worst_q ? worst_q->question_id.c_str() : "?", worst);
  std::puts("\nDone. Per-table detail: run the table_* binaries in bench/.");
  return 0;
}
