// ugraph_cli: a command-line utility over the library — the ETL / cleaning /
// stats workflows of Table 16, runnable on any of the Table 17 file formats
// (format inferred from the extension).
//
//   ugraph_cli stats graph.el
//   ugraph_cli convert graph.csv graph.ubgf
//   ugraph_cli components graph.graphml
//   ugraph_cli pagerank graph.json 10
//   ugraph_cli clean graph.gml cleaned.el      (dedup, drop loops+singletons)
#include <cstdio>
#include <cstring>
#include <string>

#include "algorithms/connected_components.h"
#include "algorithms/pagerank.h"
#include "algorithms/triangle.h"
#include "common/strings.h"
#include "io/binary_io.h"
#include "io/csv_io.h"
#include "io/edge_list_io.h"
#include "io/gml_io.h"
#include "io/graphml_io.h"
#include "io/jgf_io.h"
#include "io/json_io.h"

namespace {

using namespace ubigraph;

Result<EdgeList> LoadAny(const std::string& path) {
  if (EndsWith(path, ".csv")) return io::ReadCsvFile(path);
  if (EndsWith(path, ".graphml") || EndsWith(path, ".xml")) {
    UG_ASSIGN_OR_RETURN(auto doc, io::ReadGraphMlFile(path));
    return doc.edges;
  }
  if (EndsWith(path, ".gml")) {
    UG_ASSIGN_OR_RETURN(auto doc, io::ReadGmlFile(path));
    return doc.edges;
  }
  if (EndsWith(path, ".jgf")) {
    UG_ASSIGN_OR_RETURN(auto doc, io::ReadJgfFile(path));
    return doc.edges;
  }
  if (EndsWith(path, ".json")) {
    UG_ASSIGN_OR_RETURN(auto doc, io::ReadJsonGraphFile(path));
    return doc.edges;
  }
  if (EndsWith(path, ".ubgf")) return io::ReadBinaryFile(path);
  return io::ReadEdgeListFile(path);  // default: whitespace edge list
}

Status SaveAny(const EdgeList& edges, const std::string& path) {
  if (EndsWith(path, ".csv")) return io::WriteCsvFile(edges, path);
  if (EndsWith(path, ".graphml") || EndsWith(path, ".xml")) {
    return io::WriteGraphMlFile(edges, path);
  }
  if (EndsWith(path, ".gml")) return io::WriteGmlFile(edges, path);
  if (EndsWith(path, ".jgf")) return io::WriteJgfFile(edges, path);
  if (EndsWith(path, ".json")) return io::WriteJsonGraphFile(edges, path);
  if (EndsWith(path, ".ubgf")) return io::WriteBinaryFile(edges, path);
  return io::WriteEdgeListFile(edges, path);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdStats(const std::string& path) {
  auto edges = LoadAny(path);
  if (!edges.ok()) return Fail(edges.status());
  auto g = CsrGraph::FromEdges(*edges);
  if (!g.ok()) return Fail(g.status());
  auto stats = algo::ComputeDegreeStats(*g);
  auto cc = algo::WeaklyConnectedComponents(*g);
  std::printf("file:        %s\n", path.c_str());
  std::printf("vertices:    %u\n", g->num_vertices());
  std::printf("edges:       %llu\n",
              static_cast<unsigned long long>(g->num_edges()));
  std::printf("degree:      min=%llu max=%llu mean=%.2f\n",
              static_cast<unsigned long long>(stats.min),
              static_cast<unsigned long long>(stats.max), stats.mean);
  std::printf("components:  %u (largest %llu vertices)\n", cc.num_components,
              cc.num_components
                  ? static_cast<unsigned long long>(
                        cc.ComponentSizes()[cc.LargestComponent()])
                  : 0ULL);
  std::printf("triangles:   %llu\n",
              static_cast<unsigned long long>(algo::CountTriangles(*g)));
  return 0;
}

int CmdConvert(const std::string& in, const std::string& out) {
  auto edges = LoadAny(in);
  if (!edges.ok()) return Fail(edges.status());
  Status s = SaveAny(*edges, out);
  if (!s.ok()) return Fail(s);
  std::printf("wrote %zu edges to %s\n", edges->num_edges(), out.c_str());
  return 0;
}

int CmdComponents(const std::string& path) {
  auto edges = LoadAny(path);
  if (!edges.ok()) return Fail(edges.status());
  auto g = CsrGraph::FromEdges(*edges);
  if (!g.ok()) return Fail(g.status());
  auto cc = algo::WeaklyConnectedComponents(*g);
  auto sizes = cc.ComponentSizes();
  std::printf("%u components\n", cc.num_components);
  for (uint32_t c = 0; c < cc.num_components && c < 20; ++c) {
    std::printf("  component %u: %llu vertices\n", c,
                static_cast<unsigned long long>(sizes[c]));
  }
  if (cc.num_components > 20) std::printf("  ... (%u more)\n",
                                          cc.num_components - 20);
  return 0;
}

int CmdPageRank(const std::string& path, int k) {
  auto edges = LoadAny(path);
  if (!edges.ok()) return Fail(edges.status());
  CsrOptions opts;
  opts.build_in_edges = true;
  auto g = CsrGraph::FromEdges(*edges, opts);
  if (!g.ok()) return Fail(g.status());
  auto pr = algo::PageRank(*g);
  if (!pr.ok()) return Fail(pr.status());
  auto top = algo::TopK(pr->scores, static_cast<size_t>(k));
  std::printf("top %zu vertices by PageRank (%u iterations):\n", top.size(),
              pr->iterations);
  for (VertexId v : top) std::printf("  %u\t%.6f\n", v, pr->scores[v]);
  return 0;
}

int CmdClean(const std::string& in, const std::string& out) {
  // The §4.1 cleaning pipeline: dedup, drop self-loops, drop singletons.
  auto edges = LoadAny(in);
  if (!edges.ok()) return Fail(edges.status());
  size_t before = edges->num_edges();
  edges->RemoveSelfLoops();
  edges->Deduplicate();
  auto g = CsrGraph::FromEdges(*edges);
  if (!g.ok()) return Fail(g.status());
  auto singles = algo::SingletonVertices(*g);
  // Renumber: drop singleton vertices, compact ids.
  std::vector<VertexId> remap(g->num_vertices(), kInvalidVertex);
  VertexId next = 0;
  {
    std::vector<bool> is_single(g->num_vertices(), false);
    for (VertexId v : singles) is_single[v] = true;
    for (VertexId v = 0; v < g->num_vertices(); ++v) {
      if (!is_single[v]) remap[v] = next++;
    }
  }
  EdgeList cleaned(next);
  for (const Edge& e : edges->edges()) {
    cleaned.Add(remap[e.src], remap[e.dst], e.weight);
  }
  cleaned.EnsureVertices(next);
  Status s = SaveAny(cleaned, out);
  if (!s.ok()) return Fail(s);
  std::printf("cleaned: %zu -> %zu edges, dropped %zu singleton vertices\n",
              before, cleaned.num_edges(), singles.size());
  return 0;
}

void Usage() {
  std::puts(
      "usage: ugraph_cli <command> [args]\n"
      "  stats <file>             vertices/edges/degrees/components/triangles\n"
      "  convert <in> <out>       convert between formats (by extension:\n"
      "                           .el/.txt .csv .graphml .gml .json .jgf .ubgf)\n"
      "  components <file>        connected component sizes\n"
      "  pagerank <file> [k]      top-k vertices by PageRank (default 10)\n"
      "  clean <in> <out>         dedup edges, drop self-loops and singletons");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  std::string cmd = argv[1];
  if (cmd == "stats" && argc == 3) return CmdStats(argv[2]);
  if (cmd == "convert" && argc == 4) return CmdConvert(argv[2], argv[3]);
  if (cmd == "components" && argc == 3) return CmdComponents(argv[2]);
  if (cmd == "pagerank" && (argc == 3 || argc == 4)) {
    return CmdPageRank(argv[2], argc == 4 ? std::atoi(argv[3]) : 10);
  }
  if (cmd == "clean" && argc == 4) return CmdClean(argv[2], argv[3]);
  Usage();
  return 2;
}
