// Graph-database features demo: the five capabilities users request most in
// the paper's mailing-list review (Table 19 / §6.2) — versioning, triggers,
// schema constraints, hyperedges, and supernode-aware traversal — working
// together on a small asset-management graph.
//
//   ./graphdb_features
#include <cstdio>

#include "algorithms/traversal.h"
#include "graph/graph_schema.h"
#include "graph/hypergraph.h"
#include "graph/triggers.h"
#include "graph/versioned_graph.h"

int main() {
  using namespace ubigraph;

  // --- 1. Versioning & historical analysis (Table 19: 14 requests). ---
  std::puts("== versioning ==");
  VersionedGraph vg;
  VertexId server = vg.AddVertex("Server");
  VertexId db = vg.AddVertex("Database");
  vg.SetVertexProperty(server, "status", std::string("healthy")).Abort();
  EdgeId link = vg.AddEdge(db, server, "hosted_on").ValueOrDie();
  VersionId v1 = vg.Commit();

  vg.SetVertexProperty(server, "status", std::string("degraded")).Abort();
  vg.RemoveEdge(link).Abort();  // database migrated away
  VersionId v2 = vg.Commit();

  std::printf("status at v%u: %s, at v%u: %s\n", v1,
              std::get<std::string>(
                  vg.VertexPropertyAt(server, "status", v1).ValueOrDie())
                  .c_str(),
              v2,
              std::get<std::string>(
                  vg.VertexPropertyAt(server, "status", v2).ValueOrDie())
                  .c_str());
  auto diff = vg.DiffVersions(v1, v2).ValueOrDie();
  std::printf("v%u -> v%u: %llu edges removed, %llu properties changed\n\n", v1,
              v2, static_cast<unsigned long long>(diff.edges_removed),
              static_cast<unsigned long long>(diff.properties_changed));

  // --- 2. Triggers (Table 19: 18 requests). ---
  std::puts("== triggers ==");
  TriggeredGraph tg;
  int64_t clock = 1700000000000;
  std::vector<std::string> audit;
  tg.RegisterTrigger(GraphEvent::kVertexAdded,
                     MakeCreatedAtTrigger("created_at", &clock));
  tg.RegisterTrigger(GraphEvent::kVertexPropertySet, MakeAuditTrigger(&audit));
  VertexId user = tg.AddVertex("User");
  clock += 60000;
  tg.SetVertexProperty(user, "email", std::string("ann@example.com")).Abort();
  tg.SetVertexProperty(user, "email", std::string("ann@corp.example.com")).Abort();
  std::printf("created_at stamped: %lld; audit log:\n",
              static_cast<long long>(
                  std::get<Timestamp>(tg.graph().GetVertexProperty(user, "created_at"))
                      .millis));
  for (const std::string& line : audit) std::printf("  %s\n", line.c_str());
  std::printf("\n");

  // --- 3. Schema & constraints (Table 19: 10 requests). ---
  std::puts("== schema & constraints ==");
  PropertyGraph org;
  VertexId ceo = org.AddVertex("Employee");
  org.SetVertexProperty(ceo, "id", static_cast<int64_t>(1)).Abort();
  VertexId eng = org.AddVertex("Employee");
  org.SetVertexProperty(eng, "id", static_cast<int64_t>(1)).Abort();  // dup!
  org.AddEdge(eng, ceo, "reports_to").ValueOrDie();
  org.AddEdge(ceo, eng, "reports_to").ValueOrDie();  // cycle!

  GraphSchema schema;
  schema.RequireVertexProperty("Employee", "id", PropertyType::kInt)
      .RequireUniqueProperty("Employee", "id")
      .RequireAcyclic("reports_to");
  auto violations = schema.Validate(org);
  std::printf("%zu violations found:\n", violations.size());
  for (const auto& v : violations) {
    std::printf("  [%s] %s\n", v.rule.c_str(), v.detail.c_str());
  }
  std::printf("\n");

  // --- 4. Hyperedges (Table 19: 18 requests). ---
  std::puts("== hyperedges ==");
  Hypergraph family(5);
  family.AddHyperedge({0, 1, 2}).ValueOrDie();  // parents + child
  family.AddHyperedge({2, 3, 4}).ValueOrDie();  // child's own family later
  std::printf("hypergraph: %u people, %zu family relations, person 2 belongs "
              "to %llu\n",
              family.num_vertices(), family.num_hyperedges(),
              static_cast<unsigned long long>(family.Degree(2)));
  auto star = family.StarExpansion().ValueOrDie();
  std::printf("star expansion (the mailing lists' 'hyperedge vertex' trick): "
              "%u vertices\n\n",
              star.num_vertices());

  // --- 5. Supernode-aware traversal (Table 19: 24 requests, the #1 ask). ---
  std::puts("== high-degree vertex handling ==");
  EdgeList el(24);
  el.Add(0, 1);
  el.Add(1, 2);                                       // 1 is about to be a hub
  for (VertexId leaf = 3; leaf < 24; ++leaf) el.Add(1, leaf);
  auto g = CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  auto plain = algo::BfsDistances(g, 0);
  auto skipping = algo::BfsDistancesSkippingSupernodes(g, 0, 5);
  std::printf("without skipping, vertex 0 reaches 2 at distance %u\n", plain[2]);
  std::printf("with supernode cutoff 5, vertex 2 is %s\n",
              skipping[2] == algo::kUnreachable
                  ? "unreachable (paths through the hub are pruned)"
                  : "still reachable");
  return 0;
}
