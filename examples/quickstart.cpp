// Quickstart: build a graph, run the survey's two most-used computations
// (connected components and neighborhood queries), rank with PageRank, and
// round-trip it through a file format.
//
//   ./quickstart
#include <cstdio>

#include "algorithms/connected_components.h"
#include "algorithms/pagerank.h"
#include "algorithms/traversal.h"
#include "common/random.h"
#include "gen/generators.h"
#include "io/edge_list_io.h"

int main() {
  using namespace ubigraph;

  // 1. Generate a scale-free graph (or load one with io::ReadEdgeListFile).
  Rng rng(42);
  auto edges = gen::BarabasiAlbert(1000, 3, &rng).ValueOrDie();
  std::printf("generated graph: %u vertices, %zu edges\n", edges.num_vertices(),
              edges.num_edges());

  // 2. Build the immutable CSR structure all analytics run on.
  CsrOptions options;
  options.directed = false;
  auto graph = CsrGraph::FromEdges(edges, options).ValueOrDie();

  // 3. Connected components — the survey's most-used computation.
  auto components = algo::WeaklyConnectedComponents(graph);
  std::printf("connected components: %u (largest has %llu vertices)\n",
              components.num_components,
              static_cast<unsigned long long>(
                  components.ComponentSizes()[components.LargestComponent()]));

  // 4. Neighborhood query — the survey's second most-used computation.
  auto two_hop = algo::NeighborsWithinHops(graph, 0, 2);
  std::printf("vertex 0 reaches %zu vertices within 2 hops\n", two_hop.size());

  // 5. PageRank — "ranking & centrality scores".
  auto pagerank = algo::PageRank(graph).ValueOrDie();
  auto top = algo::TopK(pagerank.scores, 5);
  std::printf("PageRank converged after %u iterations; top-5 hubs:",
              pagerank.iterations);
  for (VertexId v : top) std::printf(" %u", v);
  std::printf("\n");

  // 6. Persist and reload.
  const char* path = "/tmp/quickstart_graph.txt";
  io::WriteEdgeListFile(edges, path).Abort();
  auto reloaded = io::ReadEdgeListFile(path).ValueOrDie();
  std::printf("round-tripped %zu edges through %s\n", reloaded.num_edges(), path);
  return 0;
}
