// Executor for Cypher-lite ASTs over a PropertyGraph: backtracking pattern
// matching with WHERE filtering and RETURN projection.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "graph/property_graph.h"
#include "query/cypher_ast.h"

namespace ubigraph::query {

/// A query result: column names plus typed rows. Vertex-valued columns carry
/// the vertex id as an int64 PropertyValue.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<PropertyValue>> rows;
};

/// Executes a parsed query.
Result<QueryResult> ExecuteCypher(const PropertyGraph& graph,
                                  const CypherQuery& query);

/// Parses and executes in one call.
Result<QueryResult> RunCypher(const PropertyGraph& graph, const std::string& text);

/// Formats a result as an ASCII table (for examples and the REPL-ish demos).
std::string FormatResult(const QueryResult& result);

}  // namespace ubigraph::query
