// Executors for Cypher-lite ASTs over a PropertyGraph. Two engines with
// bitwise-identical results:
//  - the vectorized engine (default): plans the query with degree statistics
//    and runs batched operators over a per-label CSR view (plan.h,
//    planner.h, vector_executor.h);
//  - the row-at-a-time backtracking interpreter (vectorized=false), kept as
//    the semantics oracle for differential tests.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/property_graph.h"
#include "query/cypher_ast.h"

namespace ubigraph::query {

/// A query result: column names plus typed rows. Vertex-valued columns carry
/// the vertex id as an int64 PropertyValue.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<PropertyValue>> rows;
};

struct ExecOptions {
  bool vectorized = true;
  size_t batch_size = 1024;  // ids per operator chunk (vectorized engine)
};

/// Executes a parsed query. The vectorized path builds a fresh CSR view per
/// call — use QueryEngine (plan_cache.h) to amortize view builds and plans
/// across queries.
Result<QueryResult> ExecuteCypher(const PropertyGraph& graph,
                                  const CypherQuery& query,
                                  const ExecOptions& options = {});

/// The row-at-a-time oracle (same results, same errors, no planning).
Result<QueryResult> ExecuteCypherInterpreted(const PropertyGraph& graph,
                                             const CypherQuery& query);

/// Parses and executes in one call.
Result<QueryResult> RunCypher(const PropertyGraph& graph, const std::string& text,
                              const ExecOptions& options = {});

/// Formats a result as an ASCII table (for examples and the REPL-ish demos).
std::string FormatResult(const QueryResult& result);

}  // namespace ubigraph::query
