#include "query/cypher_lexer.h"

#include <cctype>

#include "common/strings.h"

namespace ubigraph::query {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kInteger: return "integer";
    case TokenKind::kFloat: return "float";
    case TokenKind::kString: return "string";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kDash: return "'-'";
    case TokenKind::kArrowRight: return "'->'";
    case TokenKind::kArrowLeft: return "'<-'";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNe: return "'<>'";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kEnd: return "end of query";
  }
  return "?";
}

Result<std::vector<Token>> TokenizeCypher(const std::string& query) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto fail = [&](const std::string& why) {
    return Status::ParseError("cypher lexer at offset " + std::to_string(i) +
                              ": " + why);
  };
  while (i < query.size()) {
    char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token t;
    t.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < query.size() &&
             (std::isalnum(static_cast<unsigned char>(query[i])) ||
              query[i] == '_')) {
        ++i;
      }
      t.kind = TokenKind::kIdentifier;
      t.text = query.substr(start, i - start);
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < query.size() &&
             (std::isdigit(static_cast<unsigned char>(query[i])) ||
              query[i] == '.')) {
        if (query[i] == '.') {
          // ".." or ". " after digits means the dot is punctuation.
          if (i + 1 >= query.size() ||
              !std::isdigit(static_cast<unsigned char>(query[i + 1]))) {
            break;
          }
          is_float = true;
        }
        ++i;
      }
      std::string text = query.substr(start, i - start);
      if (is_float) {
        t.kind = TokenKind::kFloat;
        if (!ParseDouble(text, &t.floating)) return fail("bad float " + text);
      } else {
        t.kind = TokenKind::kInteger;
        if (!ParseInt64(text, &t.integer)) return fail("bad integer " + text);
      }
      t.text = std::move(text);
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      ++i;
      std::string text;
      while (i < query.size() && query[i] != quote) {
        if (query[i] == '\\' && i + 1 < query.size()) {
          text += query[i + 1];
          i += 2;
        } else {
          text += query[i];
          ++i;
        }
      }
      if (i >= query.size()) return fail("unterminated string");
      ++i;  // closing quote
      t.kind = TokenKind::kString;
      t.text = std::move(text);
      tokens.push_back(std::move(t));
      continue;
    }
    switch (c) {
      case '(': t.kind = TokenKind::kLParen; ++i; break;
      case ')': t.kind = TokenKind::kRParen; ++i; break;
      case '[': t.kind = TokenKind::kLBracket; ++i; break;
      case ']': t.kind = TokenKind::kRBracket; ++i; break;
      case '{': t.kind = TokenKind::kLBrace; ++i; break;
      case '}': t.kind = TokenKind::kRBrace; ++i; break;
      case ':': t.kind = TokenKind::kColon; ++i; break;
      case ',': t.kind = TokenKind::kComma; ++i; break;
      case '.': t.kind = TokenKind::kDot; ++i; break;
      case '*': t.kind = TokenKind::kStar; ++i; break;
      case '=': t.kind = TokenKind::kEq; ++i; break;
      case '-':
        if (i + 1 < query.size() && query[i + 1] == '>') {
          t.kind = TokenKind::kArrowRight;
          i += 2;
        } else {
          t.kind = TokenKind::kDash;
          ++i;
        }
        break;
      case '<':
        if (i + 1 < query.size() && query[i + 1] == '-') {
          t.kind = TokenKind::kArrowLeft;
          i += 2;
        } else if (i + 1 < query.size() && query[i + 1] == '=') {
          t.kind = TokenKind::kLe;
          i += 2;
        } else if (i + 1 < query.size() && query[i + 1] == '>') {
          t.kind = TokenKind::kNe;
          i += 2;
        } else {
          t.kind = TokenKind::kLt;
          ++i;
        }
        break;
      case '>':
        if (i + 1 < query.size() && query[i + 1] == '=') {
          t.kind = TokenKind::kGe;
          i += 2;
        } else {
          t.kind = TokenKind::kGt;
          ++i;
        }
        break;
      default:
        return fail(std::string("unexpected character '") + c + "'");
    }
    tokens.push_back(std::move(t));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = query.size();
  tokens.push_back(end);
  return tokens;
}

}  // namespace ubigraph::query
