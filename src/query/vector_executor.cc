#include "query/vector_executor.h"

#include <algorithm>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/eval_common.h"

namespace ubigraph::query {

namespace {

/// Bounded BFS mirroring the interpreter's within_hops: is `to` reachable
/// from `from` in [min, max] hops along typed arcs in the given direction?
/// (The interpreter scans raw edge lists; dedup'd CSR rows visit the same BFS
/// layers and test the same (frontier-vertex, target) adjacencies, so the
/// predicate is identical.)
bool WithinHops(const LabelCsrView& view, VertexId from, VertexId to,
                EdgePattern::Direction dir, uint32_t type_id, uint32_t min_hops,
                uint32_t max_hops, uint64_t* edges_scanned) {
  std::vector<VertexId> frontier{from};
  std::vector<uint8_t> seen(view.num_vertices(), 0);
  seen[from] = 1;
  for (uint32_t hop = 1; hop <= max_hops; ++hop) {
    std::vector<VertexId> next;
    for (VertexId u : frontier) {
      auto scan = [&](bool outgoing) {
        auto nbrs = outgoing ? view.OutNeighbors(u, type_id)
                             : view.InNeighbors(u, type_id);
        *edges_scanned += nbrs.size();
        for (VertexId v : nbrs) {
          if (v == to && hop >= min_hops) return true;
          if (!seen[v]) {
            seen[v] = 1;
            next.push_back(v);
          }
        }
        return false;
      };
      bool found = false;
      switch (dir) {
        case EdgePattern::Direction::kOut: found = scan(true); break;
        case EdgePattern::Direction::kIn: found = scan(false); break;
        case EdgePattern::Direction::kAny: found = scan(true) || scan(false); break;
      }
      if (found) return true;
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return false;
}

class PipelineExec {
 public:
  PipelineExec(const PropertyGraph& graph, const LabelCsrView& view,
               const PhysicalPlan& plan, const std::vector<PropertyValue>& params,
               size_t batch_size)
      : graph_(graph),
        view_(view),
        plan_(plan),
        params_(params),
        batch_(batch_size == 0 ? 1 : batch_size) {}

  Result<QueryResult> Run();

 private:
  // A chunk of partial bindings, row-major; row r spans data[r*level ..
  // r*level+level) and holds slot values in *binding* (step) order.
  struct Block {
    std::vector<VertexId> data;
    size_t rows = 0;
  };

  uint64_t LimitValue() const {
    const auto* v = std::get_if<int64_t>(&params_[plan_.limit_param]);
    return v && *v > 0 ? static_cast<uint64_t>(*v) : 0;
  }

  bool NodeOk(const PlanStep& st, VertexId v) const {
    if (st.label_id != LabelCsrView::kAnyLabel &&
        graph_.VertexLabelId(v) != st.label_id) {
      return false;
    }
    for (const PlanPropFilter& f : st.prop_filters) {
      // Exact variant equality, like the interpreter's NodeMatches.
      const PropertyValue* have =
          f.key_known ? graph_.FindVertexProperty(v, f.key_id) : nullptr;
      if (have == nullptr) {
        if (!std::holds_alternative<std::monostate>(params_[f.param_index])) {
          return false;
        }
      } else if (!(*have == params_[f.param_index])) {
        return false;
      }
    }
    return true;
  }

  bool CheckEdge(const PlanEdgeCheck& chk, VertexId a, VertexId b) {
    if (chk.IsVariableLength()) {
      return WithinHops(view_, a, b, chk.direction, chk.type_id, chk.min_hops,
                        chk.max_hops, &rows_scanned_);
    }
    switch (chk.direction) {
      case EdgePattern::Direction::kOut: return view_.HasArc(a, b, chk.type_id);
      case EdgePattern::Direction::kIn: return view_.HasArc(b, a, chk.type_id);
      case EdgePattern::Direction::kAny:
        return view_.HasArc(a, b, chk.type_id) || view_.HasArc(b, a, chk.type_id);
    }
    return false;
  }

  // Slot value within the current evaluation context: the candidate `v` for
  // the step being run, or the already-bound value from `row`.
  VertexId SlotValue(const PlanStep& st, const VertexId* row, VertexId v,
                     size_t slot) const {
    return slot == st.slot ? v : row[pos_of_slot_[slot]];
  }

  PropertyValue OperandValue(const PlanOperand& po, const PlanStep& st,
                             const VertexId* row, VertexId v) const {
    if (po.is_param) return params_[po.param_index];
    if (!po.key_known) return std::monostate{};
    const VertexId at = SlotValue(st, row, v, po.slot);
    const PropertyValue* p = graph_.FindVertexProperty(at, po.key_id);
    return p ? *p : PropertyValue{std::monostate{}};
  }

  bool WhereOk(const PlanStep& st, const VertexId* row, VertexId v) const {
    for (const PlanComparison& pc : st.where) {
      if (!EvalComparison(CompareValues(OperandValue(pc.lhs, st, row, v),
                                       OperandValue(pc.rhs, st, row, v)),
                          pc.op)) {
        return false;
      }
    }
    return true;
  }

  // Filters `m` candidates for `row` through the step's label/property
  // filters, edge checks, and WHERE conjuncts using a selection vector, then
  // appends survivors to `out` (flushing downstream at batch_ rows).
  void FilterAndEmit(size_t level, const PlanStep& st, const VertexId* row,
                     const VertexId* cand, size_t m, Block* out) {
    // Per-level scratch: flushing a full batch recurses into deeper steps,
    // which use their own selection vectors.
    std::vector<VertexId>& sel = scratch_[level].sel;
    sel.clear();
    rows_scanned_ += m;
    for (size_t i = 0; i < m; ++i) {
      if (NodeOk(st, cand[i])) sel.push_back(cand[i]);
    }
    if (!st.checks.empty()) {
      size_t w = 0;
      for (VertexId v : sel) {
        bool ok = true;
        for (const PlanEdgeCheck& chk : st.checks) {
          const VertexId a = SlotValue(st, row, v, chk.from_slot);
          const VertexId b = SlotValue(st, row, v, chk.to_slot);
          if (!CheckEdge(chk, a, b)) {
            ok = false;
            break;
          }
        }
        if (ok) sel[w++] = v;
      }
      sel.resize(w);
    }
    if (!st.where.empty()) {
      size_t w = 0;
      for (VertexId v : sel) {
        if (WhereOk(st, row, v)) {
          sel[w++] = v;
        } else {
          ++rows_filtered_;
        }
      }
      sel.resize(w);
    }
    for (size_t i = 0; i < sel.size(); ++i) {
      if (stop_) return;
      out->data.insert(out->data.end(), row, row + level);
      out->data.push_back(sel[i]);
      if (++out->rows == batch_) Flush(level + 1, out);
    }
  }

  void Flush(size_t level, Block* out) {
    if (out->rows == 0) return;
    Process(level, *out);
    out->data.clear();
    out->rows = 0;
  }

  void Process(size_t level, const Block& in) {
    if (stop_ || in.rows == 0) return;
    if (level == plan_.steps.size()) {
      Finalize(in);
      return;
    }
    ++batches_;
    batch_rows_ += in.rows;
    const PlanStep& st = plan_.steps[level];
    Block out;
    out.data.reserve((level + 1) * batch_);

    for (size_t r = 0; r < in.rows && !stop_; ++r) {
      const VertexId* row = in.data.data() + r * level;
      switch (st.kind) {
        case PlanStep::Kind::kScan:
        case PlanStep::Kind::kCartesian: {
          if (st.label_id == LabelCsrView::kAnyLabel) {
            // All vertices, ascending, in batch_-sized chunks.
            std::vector<VertexId>& chunk = scratch_[level].chunk;
            chunk.clear();
            for (VertexId v = 0; v < graph_.num_vertices() && !stop_; ++v) {
              chunk.push_back(v);
              if (chunk.size() == batch_) {
                FilterAndEmit(level, st, row, chunk.data(), chunk.size(), &out);
                chunk.clear();
              }
            }
            if (!stop_ && !chunk.empty()) {
              FilterAndEmit(level, st, row, chunk.data(), chunk.size(), &out);
            }
          } else {
            const std::vector<VertexId>& cand = view_.VerticesWithLabel(st.label_id);
            for (size_t at = 0; at < cand.size() && !stop_; at += batch_) {
              const size_t m = std::min(batch_, cand.size() - at);
              FilterAndEmit(level, st, row, cand.data() + at, m, &out);
            }
          }
          break;
        }
        case PlanStep::Kind::kExpand: {
          const VertexId u = row[pos_of_slot_[st.from_slot]];
          if (st.direction == EdgePattern::Direction::kAny) {
            auto o = view_.OutNeighbors(u, st.type_id);
            auto i = view_.InNeighbors(u, st.type_id);
            std::vector<VertexId>& merged = scratch_[level].merged;
            merged.clear();
            std::set_union(o.begin(), o.end(), i.begin(), i.end(),
                           std::back_inserter(merged));
            FilterAndEmit(level, st, row, merged.data(), merged.size(), &out);
          } else {
            auto nbrs = st.direction == EdgePattern::Direction::kOut
                            ? view_.OutNeighbors(u, st.type_id)
                            : view_.InNeighbors(u, st.type_id);
            FilterAndEmit(level, st, row, nbrs.data(), nbrs.size(), &out);
          }
          break;
        }
        case PlanStep::Kind::kVarExpand: {
          const VertexId u = row[pos_of_slot_[st.from_slot]];
          std::vector<VertexId>& targets = scratch_[level].var_targets;
          VarTargets(u, st, &targets);
          FilterAndEmit(level, st, row, targets.data(), targets.size(), &out);
          break;
        }
      }
    }
    if (!stop_) Flush(level + 1, &out);
  }

  // One-sweep bounded BFS from `u`: every vertex adjacent (in the pattern's
  // direction) to a BFS layer in [min_hops-1, max_hops-1] is a qualifying
  // target — exactly the set {v : within_hops(u, v)} the interpreter tests
  // per pair — collected sorted + dedup'd into *targets.
  void VarTargets(VertexId u, const PlanStep& st, std::vector<VertexId>* targets) {
    targets->clear();
    std::vector<VertexId> frontier{u};
    std::vector<uint8_t> seen(view_.num_vertices(), 0);
    seen[u] = 1;
    for (uint32_t hop = 1; hop <= st.max_hops && !frontier.empty(); ++hop) {
      std::vector<VertexId> next;
      for (VertexId w : frontier) {
        auto scan = [&](bool outgoing) {
          auto nbrs = outgoing ? view_.OutNeighbors(w, st.type_id)
                               : view_.InNeighbors(w, st.type_id);
          rows_scanned_ += nbrs.size();
          for (VertexId v : nbrs) {
            if (hop >= st.min_hops) targets->push_back(v);
            if (!seen[v]) {
              seen[v] = 1;
              next.push_back(v);
            }
          }
        };
        switch (st.direction) {
          case EdgePattern::Direction::kOut: scan(true); break;
          case EdgePattern::Direction::kIn: scan(false); break;
          case EdgePattern::Direction::kAny:
            scan(true);
            scan(false);
            break;
        }
      }
      frontier = std::move(next);
    }
    std::sort(targets->begin(), targets->end());
    targets->erase(std::unique(targets->begin(), targets->end()), targets->end());
  }

  void Finalize(const Block& in) {
    finalized_ += in.rows;
    if (plan_.counting_only) {
      count_ += in.rows;
      return;
    }
    const size_t n = plan_.num_slots;
    for (size_t r = 0; r < in.rows; ++r) {
      const VertexId* row = in.data.data() + r * n;
      // Remap binding order -> slot order.
      const size_t base = results_.size();
      results_.resize(base + n);
      for (size_t j = 0; j < n; ++j) results_[base + plan_.steps[j].slot] = row[j];
      ++result_rows_;
      if (early_exit_ && result_rows_ >= limit_threshold_) {
        stop_ = true;
        return;
      }
    }
  }

  const PropertyGraph& graph_;
  const LabelCsrView& view_;
  const PhysicalPlan& plan_;
  const std::vector<PropertyValue>& params_;
  const size_t batch_;

  // Per-pipeline-level scratch buffers (a flushed batch recurses into deeper
  // levels while the shallower level is still mid-iteration).
  struct Scratch {
    std::vector<VertexId> sel;     // selection vector
    std::vector<VertexId> chunk;   // full-scan chunk
    std::vector<VertexId> merged;  // any-direction sorted-merge
    std::vector<VertexId> var_targets;
  };
  std::vector<size_t> pos_of_slot_;  // slot -> binding position
  std::vector<Scratch> scratch_;     // indexed by pipeline level

  std::vector<VertexId> results_;  // assignments, slot-major, stride num_slots
  size_t result_rows_ = 0;
  uint64_t count_ = 0;
  bool early_exit_ = false;
  uint64_t limit_threshold_ = 0;
  bool stop_ = false;

  uint64_t rows_scanned_ = 0;
  uint64_t rows_filtered_ = 0;
  uint64_t finalized_ = 0;
  uint64_t batches_ = 0;
  uint64_t batch_rows_ = 0;
};

Result<QueryResult> PipelineExec::Run() {
  obs::ScopedTrace span("ExecuteCypherVectorized", "query");
  const size_t n = plan_.num_slots;
  pos_of_slot_.assign(n, 0);
  for (size_t j = 0; j < plan_.steps.size(); ++j) {
    pos_of_slot_[plan_.steps[j].slot] = j;
  }
  scratch_.resize(plan_.steps.size());

  // The pipeline can stop as soon as LIMIT rows exist only when output is
  // already in oracle order and no reordering/recount happens afterwards.
  if (plan_.slot_ordered && plan_.has_limit && plan_.order_column < 0 &&
      !plan_.counting_only) {
    early_exit_ = true;
    // Bug-compatible with the interpreter: LIMIT 0 still emits the first row
    // (the row is pushed before the limit check).
    limit_threshold_ = std::max<uint64_t>(LimitValue(), 1);
  }

  Block root;
  root.rows = 1;  // one empty binding
  Process(0, root);

  QueryResult result;
  for (const PlanReturn& pr : plan_.returns) result.columns.push_back(pr.display_name);

  if (!plan_.counting_only) {
    // Restore the interpreter's enumeration order: lexicographic in
    // (slot0, ..., slotN). Tuples are distinct, so plain sort suffices.
    if (!plan_.slot_ordered && result_rows_ > 1) {
      std::vector<size_t> idx(result_rows_);
      std::iota(idx.begin(), idx.end(), 0);
      std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
        const VertexId* ra = results_.data() + a * n;
        const VertexId* rb = results_.data() + b * n;
        return std::lexicographical_compare(ra, ra + n, rb, rb + n);
      });
      std::vector<VertexId> sorted(results_.size());
      for (size_t r = 0; r < result_rows_; ++r) {
        std::copy_n(results_.data() + idx[r] * n, n, sorted.data() + r * n);
      }
      results_ = std::move(sorted);
    }
    if (plan_.has_limit && plan_.order_column < 0) {
      const uint64_t threshold = std::max<uint64_t>(LimitValue(), 1);
      if (result_rows_ > threshold) result_rows_ = threshold;
    }
    result.rows.reserve(result_rows_);
    for (size_t r = 0; r < result_rows_; ++r) {
      const VertexId* row = results_.data() + r * n;
      std::vector<PropertyValue> cells;
      cells.reserve(plan_.returns.size());
      for (const PlanReturn& pr : plan_.returns) {
        if (pr.is_count) {
          cells.push_back(static_cast<int64_t>(0));  // patched below
        } else if (!pr.has_key) {
          cells.push_back(static_cast<int64_t>(row[pr.slot]));
        } else if (!pr.key_known) {
          cells.push_back(std::monostate{});
        } else {
          const PropertyValue* p = graph_.FindVertexProperty(row[pr.slot], pr.key_id);
          cells.push_back(p ? *p : PropertyValue{std::monostate{}});
        }
      }
      result.rows.push_back(std::move(cells));
    }
    if (plan_.order_column >= 0) {
      const int col = plan_.order_column;
      const bool ascending = plan_.order_ascending;
      std::stable_sort(result.rows.begin(), result.rows.end(),
                       [&](const auto& a, const auto& b) {
                         int cmp = CompareValues(a[col], b[col]);
                         if (cmp == -2) return false;  // incomparable: keep order
                         return ascending ? cmp < 0 : cmp > 0;
                       });
      if (plan_.has_limit && result.rows.size() > LimitValue()) {
        result.rows.resize(LimitValue());
      }
    }
    for (size_t c = 0; c < plan_.returns.size(); ++c) {
      if (!plan_.returns[c].is_count) continue;
      for (auto& row : result.rows) {
        row[c] = static_cast<int64_t>(result.rows.size());
      }
    }
  } else {
    result.rows.push_back({static_cast<int64_t>(count_)});
  }

  obs::AddCounter("cypher.queries", 1);
  obs::AddCounter("cypher.rows_scanned", static_cast<int64_t>(rows_scanned_));
  obs::AddCounter("cypher.rows_matched",
                  static_cast<int64_t>(finalized_ + rows_filtered_));
  obs::AddCounter("cypher.rows_filtered", static_cast<int64_t>(rows_filtered_));
  obs::AddCounter("cypher.rows_returned", static_cast<int64_t>(result.rows.size()));
  obs::AddCounter("query.batch.batches", static_cast<int64_t>(batches_));
  obs::AddCounter("query.batch.rows", static_cast<int64_t>(batch_rows_));
  return result;
}

}  // namespace

Result<QueryResult> ExecutePlan(const PropertyGraph& graph,
                                const LabelCsrView& view,
                                const PhysicalPlan& plan,
                                const std::vector<PropertyValue>& params,
                                size_t batch_size) {
  if (params.size() != static_cast<size_t>(plan.num_params)) {
    return Status::Invalid("plan expects " + std::to_string(plan.num_params) +
                           " parameters, got " + std::to_string(params.size()));
  }
  PipelineExec exec(graph, view, plan, params, batch_size);
  return exec.Run();
}

}  // namespace ubigraph::query
