#include "query/cypher_executor.h"

#include <algorithm>
#include <functional>

#include "common/table.h"
#include "graph/label_csr.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/cypher_parser.h"
#include "query/eval_common.h"
#include "query/plan.h"
#include "query/planner.h"
#include "query/vector_executor.h"

namespace ubigraph::query {

namespace {

bool NodeMatches(const PropertyGraph& g, VertexId v, const NodePattern& node) {
  if (!node.label.empty() && g.VertexLabel(v) != node.label) return false;
  for (const auto& [key, want] : node.properties) {
    if (!(g.GetVertexProperty(v, key) == want)) return false;
  }
  return true;
}

}  // namespace

Result<QueryResult> ExecuteCypherInterpreted(const PropertyGraph& graph,
                                             const CypherQuery& query) {
  UG_ASSIGN_OR_RETURN(FlatPattern flat, FlattenPattern(query));
  obs::ScopedTrace span("ExecuteCypher", "query");
  // Operator row counts, accumulated locally and flushed once at the end.
  uint64_t rows_scanned = 0;   // candidate vertices tried by the scan operator
  uint64_t rows_matched = 0;   // full pattern matches reaching the filter
  uint64_t rows_filtered = 0;  // matches rejected by WHERE

  const std::vector<PatternSlot>& slots = flat.slots;
  const std::vector<EdgeConstraint>& edges = flat.edges;
  const int order_column = flat.order_column;
  const bool counting_only = flat.counting_only;

  // Backtracking assignment of slots to vertices, in slot order, checking
  // edges as soon as both endpoints are bound.
  std::vector<VertexId> assignment(slots.size(), kInvalidVertex);
  QueryResult result;
  uint64_t count = 0;

  for (const ReturnItem& item : query.returns) {
    result.columns.push_back(item.DisplayName());
  }

  // Bounded BFS for variable-length relationships: is `to` within
  // [min, max] hops of `from` along typed arcs in the given direction?
  auto within_hops = [&](VertexId from, VertexId to, const EdgePattern& pattern,
                         bool reversed) {
    std::vector<VertexId> frontier{from};
    std::vector<uint8_t> seen(graph.num_vertices(), 0);
    seen[from] = 1;
    for (uint32_t hop = 1; hop <= pattern.max_hops; ++hop) {
      std::vector<VertexId> next;
      for (VertexId u : frontier) {
        auto expand = [&](bool outgoing) {
          auto edge_ids = outgoing ? graph.OutEdges(u, pattern.type)
                                   : graph.InEdges(u, pattern.type);
          for (EdgeId e : edge_ids) {
            VertexId v = outgoing ? graph.EdgeDst(e) : graph.EdgeSrc(e);
            if (v == to && hop >= pattern.min_hops) return true;
            if (!seen[v]) {
              seen[v] = 1;
              next.push_back(v);
            }
          }
          return false;
        };
        bool found = false;
        switch (pattern.direction) {
          case EdgePattern::Direction::kOut:
            found = expand(!reversed);
            break;
          case EdgePattern::Direction::kIn:
            found = expand(reversed);
            break;
          case EdgePattern::Direction::kAny:
            found = expand(true) || expand(false);
            break;
        }
        if (found) return true;
      }
      frontier = std::move(next);
      if (frontier.empty()) break;
    }
    return false;
  };

  auto edge_satisfied = [&](const EdgeConstraint& ec) {
    VertexId a = assignment[ec.from_slot];
    VertexId b = assignment[ec.to_slot];
    if (ec.pattern.IsVariableLength()) {
      return within_hops(a, b, ec.pattern, /*reversed=*/false);
    }
    auto has_arc = [&](VertexId from, VertexId to) {
      for (EdgeId e : graph.OutEdges(from, ec.pattern.type)) {
        if (graph.EdgeDst(e) == to) return true;
      }
      return false;
    };
    switch (ec.pattern.direction) {
      case EdgePattern::Direction::kOut: return has_arc(a, b);
      case EdgePattern::Direction::kIn: return has_arc(b, a);
      case EdgePattern::Direction::kAny: return has_arc(a, b) || has_arc(b, a);
    }
    return false;
  };

  auto where_satisfied = [&]() {
    for (const Comparison& c : query.where) {
      auto value_of = [&](const Operand& op) -> PropertyValue {
        if (op.kind == Operand::Kind::kLiteral) return op.literal;
        VertexId v = assignment[flat.slot_of.at(op.variable)];
        return graph.GetVertexProperty(v, op.key);
      };
      if (!EvalComparison(CompareValues(value_of(c.lhs), value_of(c.rhs)), c.op)) {
        return false;
      }
    }
    return true;
  };

  auto emit = [&]() {
    ++rows_matched;
    if (!where_satisfied()) {
      ++rows_filtered;
      return true;
    }
    ++count;
    if (counting_only) return true;
    std::vector<PropertyValue> row;
    row.reserve(query.returns.size());
    for (const ReturnItem& item : query.returns) {
      if (item.is_count) {
        row.push_back(static_cast<int64_t>(0));  // patched after enumeration
        continue;
      }
      VertexId v = assignment[flat.slot_of.at(item.variable)];
      if (item.key.empty()) {
        row.push_back(static_cast<int64_t>(v));
      } else {
        row.push_back(graph.GetVertexProperty(v, item.key));
      }
    }
    result.rows.push_back(std::move(row));
    // With ORDER BY all rows must be materialized before the limit applies.
    if (query.order_by) return true;
    return !query.limit || result.rows.size() < *query.limit;
  };

  std::function<bool(size_t)> recurse = [&](size_t depth) -> bool {
    if (depth == slots.size()) return emit();
    // Candidate set: if an edge connects this slot to an earlier slot, use
    // that adjacency; otherwise scan all vertices.
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      ++rows_scanned;
      if (!NodeMatches(graph, v, slots[depth].pattern)) continue;
      // Injectivity is NOT required (Cypher uses homomorphism semantics for
      // nodes, only edges must differ — with single-edge patterns per pair we
      // allow repeated vertices).
      assignment[depth] = v;
      bool ok = true;
      for (const EdgeConstraint& ec : edges) {
        if (std::max(ec.from_slot, ec.to_slot) == depth &&
            assignment[ec.from_slot] != kInvalidVertex &&
            assignment[ec.to_slot] != kInvalidVertex) {
          if (!edge_satisfied(ec)) {
            ok = false;
            break;
          }
        }
      }
      if (ok && !recurse(depth + 1)) {
        assignment[depth] = kInvalidVertex;
        return false;
      }
      assignment[depth] = kInvalidVertex;
    }
    return true;
  };
  recurse(0);

  if (query.order_by && order_column >= 0) {
    bool ascending = query.order_by->ascending;
    std::stable_sort(result.rows.begin(), result.rows.end(),
                     [&](const auto& a, const auto& b) {
                       int cmp = CompareValues(a[order_column], b[order_column]);
                       if (cmp == -2) return false;  // incomparable: keep order
                       return ascending ? cmp < 0 : cmp > 0;
                     });
    if (query.limit && result.rows.size() > *query.limit) {
      result.rows.resize(*query.limit);
    }
  }

  if (counting_only) {
    result.rows.push_back({static_cast<int64_t>(count)});
  } else {
    // Patch count(*) columns (when mixed with projections, the count is the
    // total number of rows).
    for (size_t c = 0; c < query.returns.size(); ++c) {
      if (!query.returns[c].is_count) continue;
      for (auto& row : result.rows) {
        row[c] = static_cast<int64_t>(result.rows.size());
      }
    }
  }
  obs::AddCounter("cypher.queries", 1);
  obs::AddCounter("cypher.rows_scanned", static_cast<int64_t>(rows_scanned));
  obs::AddCounter("cypher.rows_matched", static_cast<int64_t>(rows_matched));
  obs::AddCounter("cypher.rows_filtered", static_cast<int64_t>(rows_filtered));
  obs::AddCounter("cypher.rows_returned",
                  static_cast<int64_t>(result.rows.size()));
  return result;
}

Result<QueryResult> ExecuteCypher(const PropertyGraph& graph,
                                  const CypherQuery& query,
                                  const ExecOptions& options) {
  if (!options.vectorized) return ExecuteCypherInterpreted(graph, query);
  // One-shot execution builds the CSR view + statistics fresh; QueryEngine
  // (plan_cache.h) amortizes both across queries.
  LabelCsrView view = LabelCsrView::Build(graph);
  UG_ASSIGN_OR_RETURN(PlannedQuery planned, PlanQuery(graph, view.stats(), query));
  return ExecutePlan(graph, view, planned.plan, planned.params, options.batch_size);
}

Result<QueryResult> RunCypher(const PropertyGraph& graph, const std::string& text,
                              const ExecOptions& options) {
  UG_ASSIGN_OR_RETURN(CypherQuery q, ParseCypher(text));
  return ExecuteCypher(graph, q, options);
}

std::string FormatResult(const QueryResult& result) {
  TextTable table(result.columns);
  for (const auto& row : result.rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const PropertyValue& v : row) cells.push_back(ValueToString(v));
    table.AddRow(std::move(cells));
  }
  return table.RenderAscii();
}

}  // namespace ubigraph::query
