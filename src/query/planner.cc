#include "query/planner.h"

#include <cmath>
#include <limits>

#include "query/eval_common.h"

namespace ubigraph::query {

namespace {

/// Selectivity fudge factor per equality/property filter; a crude but
/// deterministic stand-in for real value histograms.
constexpr double kFilterSelectivity = 0.1;

uint32_t ResolveName(const StringDictionary& dict, const std::string& name,
                     uint32_t any_sentinel) {
  if (name.empty()) return any_sentinel;
  auto id = dict.Lookup(name);
  return id ? *id : kNoSuchId;
}

/// Average fan-out of one expansion step from `bound_label`, walking the
/// pattern edge from the given endpoint.
double ExpandDegree(const LabelCsrView::Stats& stats, uint32_t bound_label,
                    uint32_t type_id, EdgePattern::Direction dir,
                    bool from_bound) {
  if (type_id == kNoSuchId) return 0.0;
  switch (dir) {
    case EdgePattern::Direction::kOut:
      return stats.AvgDegree(bound_label, type_id, /*out=*/from_bound);
    case EdgePattern::Direction::kIn:
      return stats.AvgDegree(bound_label, type_id, /*out=*/!from_bound);
    case EdgePattern::Direction::kAny:
      return stats.AvgDegree(bound_label, type_id, true) +
             stats.AvgDegree(bound_label, type_id, false);
  }
  return 0.0;
}

}  // namespace

Result<PlannedQuery> PlanQuery(const PropertyGraph& graph,
                               const LabelCsrView::Stats& stats,
                               const CypherQuery& query) {
  UG_ASSIGN_OR_RETURN(FlatPattern flat, FlattenPattern(query));
  const size_t n = flat.slots.size();

  PlannedQuery out;
  PhysicalPlan& plan = out.plan;
  plan.num_slots = n;
  plan.slot_names.reserve(n);
  for (const PatternSlot& s : flat.slots) plan.slot_names.push_back(s.name);

  // --- Parameter extraction, in canonical order: paths -> nodes ->
  // properties (token order), then WHERE lhs-before-rhs, then LIMIT. This
  // re-walks the AST the same way FlattenPattern numbers slots so property
  // filters land on the right (possibly merged) slot.
  std::vector<std::vector<PlanPropFilter>> slot_filters(n);
  {
    uint32_t anon_counter = 0;
    for (const PathPattern& path : query.paths) {
      for (const NodePattern& node : path.nodes) {
        std::string name = node.variable;
        if (name.empty()) name = "$anon" + std::to_string(anon_counter++);
        const size_t slot = flat.slot_of.at(name);
        for (const auto& [key, value] : node.properties) {
          PlanPropFilter f;
          auto key_id = graph.keys().Lookup(key);
          f.key_known = key_id.has_value();
          f.key_id = key_id.value_or(0);
          f.param_index = static_cast<int>(out.params.size());
          out.params.push_back(value);
          slot_filters[slot].push_back(f);
        }
      }
    }
  }

  std::vector<PlanComparison> where;
  where.reserve(query.where.size());
  for (const Comparison& c : query.where) {
    PlanComparison pc;
    pc.op = c.op;
    auto lower = [&](const Operand& op) {
      PlanOperand po;
      if (op.kind == Operand::Kind::kLiteral) {
        po.is_param = true;
        po.param_index = static_cast<int>(out.params.size());
        out.params.push_back(op.literal);
      } else {
        po.slot = flat.slot_of.at(op.variable);
        auto key_id = graph.keys().Lookup(op.key);
        po.key_known = key_id.has_value();
        po.key_id = key_id.value_or(0);
      }
      return po;
    };
    pc.lhs = lower(c.lhs);
    pc.rhs = lower(c.rhs);
    where.push_back(pc);
  }

  if (query.limit) {
    plan.has_limit = true;
    plan.limit_param = static_cast<int>(out.params.size());
    out.params.push_back(static_cast<int64_t>(*query.limit));
  }
  plan.num_params = static_cast<int>(out.params.size());

  // --- Resolve slot labels and pattern-edge types against the dictionaries.
  std::vector<uint32_t> slot_label(n);
  for (size_t i = 0; i < n; ++i) {
    slot_label[i] =
        ResolveName(graph.labels(), flat.slots[i].pattern.label, LabelCsrView::kAnyLabel);
  }
  struct ResolvedEdge {
    size_t from, to;
    uint32_t type_id;
    EdgePattern::Direction dir;
    uint32_t min_hops, max_hops;
    bool IsVariableLength() const { return min_hops != 1 || max_hops != 1; }
  };
  std::vector<ResolvedEdge> redges;
  redges.reserve(flat.edges.size());
  for (const EdgeConstraint& ec : flat.edges) {
    redges.push_back({ec.from_slot, ec.to_slot,
                      ResolveName(graph.labels(), ec.pattern.type, LabelCsrView::kAnyType),
                      ec.pattern.direction, ec.pattern.min_hops, ec.pattern.max_hops});
  }

  // --- Cost model.
  const double num_v = static_cast<double>(stats.num_vertices);
  auto scan_est = [&](size_t slot) {
    return stats.LabelCount(slot_label[slot]) *
           std::pow(kFilterSelectivity, static_cast<double>(slot_filters[slot].size()));
  };
  auto selectivity = [&](size_t slot) {
    double sel = slot_label[slot] == LabelCsrView::kAnyLabel || num_v <= 0.0
                     ? 1.0
                     : stats.LabelCount(slot_label[slot]) / num_v;
    return sel * std::pow(kFilterSelectivity,
                          static_cast<double>(slot_filters[slot].size()));
  };

  // --- Greedy join ordering: start from the cheapest scan, then repeatedly
  // take the cheapest drivable expansion (strict <, ties -> lowest edge
  // index); fall back to a cartesian scan when no edge connects the bound set
  // to the rest. Variable-length edges only drive forward (from their pattern
  // source) — traversed the other way, they close as bounded-BFS checks.
  std::vector<bool> bound(n, false);
  std::vector<bool> edge_used(redges.size(), false);

  auto make_check = [&](const ResolvedEdge& e) {
    PlanEdgeCheck chk;
    chk.from_slot = e.from;
    chk.to_slot = e.to;
    chk.direction = e.dir;
    chk.type_id = e.type_id;
    chk.min_hops = e.min_hops;
    chk.max_hops = e.max_hops;
    return chk;
  };
  auto close_edges = [&](PlanStep* step) {
    for (size_t ei = 0; ei < redges.size(); ++ei) {
      if (edge_used[ei]) continue;
      if (bound[redges[ei].from] && bound[redges[ei].to]) {
        edge_used[ei] = true;
        step->checks.push_back(make_check(redges[ei]));
      }
    }
  };

  size_t first = 0;
  for (size_t i = 1; i < n; ++i) {
    if (scan_est(i) < scan_est(first)) first = i;
  }
  double card = scan_est(first);
  {
    PlanStep step;
    step.kind = PlanStep::Kind::kScan;
    step.slot = first;
    step.label_id = slot_label[first];
    step.prop_filters = slot_filters[first];
    step.est_rows = card;
    bound[first] = true;
    close_edges(&step);
    plan.steps.push_back(std::move(step));
  }

  while (plan.steps.size() < n) {
    int best_edge = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    for (size_t ei = 0; ei < redges.size(); ++ei) {
      if (edge_used[ei]) continue;
      const ResolvedEdge& e = redges[ei];
      if (bound[e.from] == bound[e.to]) continue;  // 0 or 2 endpoints bound
      const bool from_bound = bound[e.from];
      if (e.IsVariableLength() && !from_bound) continue;  // forward only
      const size_t src = from_bound ? e.from : e.to;
      const size_t dst = from_bound ? e.to : e.from;
      double deg = ExpandDegree(stats, slot_label[src], e.type_id, e.dir, from_bound);
      if (e.IsVariableLength()) deg *= static_cast<double>(e.max_hops);
      const double cost = card * deg * selectivity(dst);
      if (cost < best_cost) {
        best_cost = cost;
        best_edge = static_cast<int>(ei);
      }
    }

    PlanStep step;
    if (best_edge >= 0) {
      const ResolvedEdge& e = redges[best_edge];
      const bool from_bound = bound[e.from];
      const size_t src = from_bound ? e.from : e.to;
      const size_t dst = from_bound ? e.to : e.from;
      step.kind = e.IsVariableLength() ? PlanStep::Kind::kVarExpand
                                       : PlanStep::Kind::kExpand;
      step.slot = dst;
      step.from_slot = src;
      step.type_id = e.type_id;
      step.min_hops = e.min_hops;
      step.max_hops = e.max_hops;
      // Direction as walked from the bound endpoint.
      if (from_bound || e.dir == EdgePattern::Direction::kAny) {
        step.direction = e.dir;
      } else {
        step.direction = e.dir == EdgePattern::Direction::kOut
                             ? EdgePattern::Direction::kIn
                             : EdgePattern::Direction::kOut;
      }
      edge_used[best_edge] = true;
      card = best_cost;
    } else {
      // Disconnected component: cheapest remaining scan, cross product.
      size_t pick = n;
      for (size_t i = 0; i < n; ++i) {
        if (!bound[i] && (pick == n || scan_est(i) < scan_est(pick))) pick = i;
      }
      step.kind = PlanStep::Kind::kCartesian;
      step.slot = pick;
      card *= scan_est(pick);
    }
    step.label_id = slot_label[step.slot];
    step.prop_filters = slot_filters[step.slot];
    step.est_rows = card;
    bound[step.slot] = true;
    close_edges(&step);
    plan.steps.push_back(std::move(step));
  }

  // --- WHERE placement: each conjunct runs at the earliest step after which
  // every slot it references is bound (literal-only conjuncts run at step 0).
  {
    std::vector<size_t> bound_at(n, 0);  // step index binding each slot
    for (size_t j = 0; j < plan.steps.size(); ++j) bound_at[plan.steps[j].slot] = j;
    for (const PlanComparison& pc : where) {
      size_t at = 0;
      for (const PlanOperand* po : {&pc.lhs, &pc.rhs}) {
        if (!po->is_param) at = std::max(at, bound_at[po->slot]);
      }
      plan.steps[at].where.push_back(pc);
    }
  }

  plan.slot_ordered = true;
  for (size_t j = 0; j < plan.steps.size(); ++j) {
    if (plan.steps[j].slot != j) plan.slot_ordered = false;
  }

  for (const ReturnItem& item : query.returns) {
    PlanReturn pr;
    pr.is_count = item.is_count;
    pr.display_name = item.DisplayName();
    if (!item.is_count) {
      pr.slot = flat.slot_of.at(item.variable);
      pr.has_key = !item.key.empty();
      if (pr.has_key) {
        auto key_id = graph.keys().Lookup(item.key);
        pr.key_known = key_id.has_value();
        pr.key_id = key_id.value_or(0);
      }
    }
    plan.returns.push_back(std::move(pr));
  }
  plan.counting_only = flat.counting_only;
  plan.order_column = flat.order_column;
  plan.order_ascending = query.order_by ? query.order_by->ascending : true;
  return out;
}

std::string PhysicalPlan::DebugString() const {
  auto name = [&](size_t slot) {
    return slot < slot_names.size() ? slot_names[slot] : std::to_string(slot);
  };
  std::string s;
  for (const PlanStep& step : steps) {
    if (!s.empty()) s += ' ';
    switch (step.kind) {
      case PlanStep::Kind::kScan: s += "Scan(" + name(step.slot) + ")"; break;
      case PlanStep::Kind::kExpand:
        s += "Expand(" + name(step.from_slot) + "->" + name(step.slot) + ")";
        break;
      case PlanStep::Kind::kVarExpand:
        s += "VarExpand(" + name(step.from_slot) + "->" + name(step.slot) + ")";
        break;
      case PlanStep::Kind::kCartesian:
        s += "Cartesian(" + name(step.slot) + ")";
        break;
    }
  }
  return s;
}

}  // namespace ubigraph::query
