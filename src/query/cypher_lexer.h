// Tokenizer for the Cypher-lite language.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace ubigraph::query {

enum class TokenKind {
  kIdentifier,   // foo, MATCH (keywords classified by the parser)
  kInteger,      // 42
  kFloat,        // 3.5
  kString,       // 'text' or "text"
  kLParen,       // (
  kRParen,       // )
  kLBracket,     // [
  kRBracket,     // ]
  kLBrace,       // {
  kRBrace,       // }
  kColon,        // :
  kComma,        // ,
  kDot,          // .
  kDash,         // -
  kArrowRight,   // ->
  kArrowLeft,    // <-
  kEq,           // =
  kNe,           // <>
  kLt,           // <
  kLe,           // <=
  kGt,           // >
  kGe,           // >=
  kStar,         // *
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int64_t integer = 0;
  double floating = 0.0;
  size_t offset = 0;  // for error messages
};

/// Tokenizes the query; fails with ParseError on malformed input.
Result<std::vector<Token>> TokenizeCypher(const std::string& query);

/// Printable name of a token kind (diagnostics).
const char* TokenKindName(TokenKind kind);

}  // namespace ubigraph::query
