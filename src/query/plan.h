// Physical plan for the vectorized Cypher engine: an ordered pipeline of
// batched operators, one per pattern slot, produced by the planner
// (planner.cc) and executed by the vector executor (vector_executor.cc).
//
// Plans are parameterized: every literal in the source query (node property
// values, WHERE literals, the LIMIT count) is replaced by an index into a
// separate parameter vector, in canonical order (paths -> nodes -> properties,
// then WHERE comparisons lhs-before-rhs, then LIMIT). This is the same order
// the token-level normalizer (plan_cache.h) extracts literals in, which is
// what lets a cached plan rebind to a textually different query with the same
// shape.
//
// Label ids, edge-type ids and property-key ids are resolved against the
// graph's dictionaries at plan time. Dictionary ids only grow, and the
// QueryEngine drops plans whenever PropertyGraph::version() moves, so resolved
// ids in a live plan are never stale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/label_csr.h"
#include "query/cypher_ast.h"

namespace ubigraph::query {

/// A name that resolved to nothing in the graph's dictionary: matches no
/// vertex label / no edge type (distinct from the kAny* wildcards).
inline constexpr uint32_t kNoSuchId = UINT32_MAX - 1;

/// Inline node-property equality filter ({key: literal}), value bound from
/// the parameter vector. Uses exact variant equality, like the interpreter's
/// NodeMatches (an int literal does NOT match a double-valued property).
struct PlanPropFilter {
  bool key_known = false;  // false: the key is not in the dictionary -> no match
  uint32_t key_id = 0;
  int param_index = 0;
};

/// One side of a WHERE comparison: a slot's property or a parameter.
struct PlanOperand {
  bool is_param = false;
  int param_index = 0;     // when is_param
  size_t slot = 0;         // when !is_param
  bool key_known = false;  // unknown key reads as monostate ("null")
  uint32_t key_id = 0;
};

/// WHERE conjunct, numeric-aware comparison (eval_common.h CompareValues).
struct PlanComparison {
  PlanOperand lhs;
  CompareOp op = CompareOp::kEq;
  PlanOperand rhs;
};

/// A pattern edge whose endpoints are both bound once the owning step runs:
/// evaluated as an existence probe (binary-search HasArc semijoin), or as a
/// bounded BFS for variable-length patterns. Mirrors the interpreter's
/// edge_satisfied exactly.
struct PlanEdgeCheck {
  size_t from_slot = 0;
  size_t to_slot = 0;
  EdgePattern::Direction direction = EdgePattern::Direction::kOut;
  uint32_t type_id = LabelCsrView::kAnyType;  // kNoSuchId -> never satisfied
  uint32_t min_hops = 1;
  uint32_t max_hops = 1;
  bool IsVariableLength() const { return min_hops != 1 || max_hops != 1; }
};

/// One pipeline step; binds exactly one new pattern slot.
struct PlanStep {
  enum class Kind {
    kScan,       // first step: candidates from a label index (or all vertices)
    kExpand,     // neighbors of an already-bound slot over typed CSR adjacency
    kVarExpand,  // one-sweep bounded BFS from an already-bound slot
    kCartesian,  // cross product with a scan (disconnected pattern component)
  };

  Kind kind = Kind::kScan;
  size_t slot = 0;  // the slot this step binds

  // Filters on the bound slot's candidates (all kinds).
  uint32_t label_id = LabelCsrView::kAnyLabel;  // kNoSuchId -> no candidates
  std::vector<PlanPropFilter> prop_filters;

  // kExpand / kVarExpand: drive from this bound slot. `direction` is already
  // flipped to be "as walked from from_slot" when the pattern is traversed
  // from its destination end.
  size_t from_slot = 0;
  EdgePattern::Direction direction = EdgePattern::Direction::kOut;
  uint32_t type_id = LabelCsrView::kAnyType;
  uint32_t min_hops = 1;  // kVarExpand only
  uint32_t max_hops = 1;

  // Pattern edges that close (both endpoints bound) at this step.
  std::vector<PlanEdgeCheck> checks;
  // WHERE conjuncts whose slots are all bound once this step ran.
  std::vector<PlanComparison> where;

  double est_rows = 0.0;  // planner's cardinality estimate after this step
};

/// Projection column.
struct PlanReturn {
  bool is_count = false;
  size_t slot = 0;
  bool has_key = false;    // false: project the vertex id itself
  bool key_known = false;  // RETURN x.key with unknown key -> null column
  uint32_t key_id = 0;
  std::string display_name;
};

struct PhysicalPlan {
  std::vector<PlanStep> steps;  // steps.size() == number of slots
  size_t num_slots = 0;
  std::vector<std::string> slot_names;  // by slot index (diagnostics)

  /// True when steps bind slots 0,1,...,n-1 in order. Because every operator
  /// emits candidates in ascending vertex-id order, pipeline output is then
  /// already in the interpreter's lexicographic enumeration order: the final
  /// sort is skipped and LIMIT can stop the pipeline early.
  bool slot_ordered = false;

  std::vector<PlanReturn> returns;
  bool counting_only = false;
  int order_column = -1;  // RETURN column ORDER BY sorts on, or -1
  bool order_ascending = true;
  bool has_limit = false;
  int limit_param = -1;  // parameter carrying the LIMIT count (when has_limit)

  int num_params = 0;

  /// Compact join-order summary for planner tests and EXPLAIN-style debugging,
  /// e.g. "Scan(b) Expand(b->a) Cartesian(c)".
  std::string DebugString() const;
};

/// A freshly planned query: the shape-only plan plus the literal values
/// extracted from the AST in canonical parameter order.
struct PlannedQuery {
  PhysicalPlan plan;
  std::vector<PropertyValue> params;
};

}  // namespace ubigraph::query
