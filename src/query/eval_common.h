// Semantics shared by the row-at-a-time Cypher interpreter (the oracle) and
// the vectorized engine: value formatting/comparison, pattern flattening into
// variable slots + edge constraints, and query validation. Both executors MUST
// go through these helpers — the differential tests pin bitwise-identical
// rows, which requires identical comparison semantics, identical slot
// numbering, and identical error messages.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/strings.h"
#include "graph/property_graph.h"
#include "query/cypher_ast.h"

namespace ubigraph::query {

inline std::string ValueToString(const PropertyValue& v) {
  switch (v.index()) {
    case 0: return "null";
    case 1: return std::to_string(std::get<int64_t>(v));
    case 2: return FormatDouble(std::get<double>(v));
    case 3: return std::get<bool>(v) ? "true" : "false";
    case 4: return std::get<std::string>(v);
    case 5: return "ts:" + std::to_string(std::get<Timestamp>(v).millis);
    case 6: return "<bytes:" + std::to_string(std::get<Bytes>(v).size()) + ">";
  }
  return "?";
}

/// Numeric-aware comparison: int64 and double compare by value; other types
/// compare only within the same alternative. Returns: -2 incomparable,
/// else -1/0/1.
inline int CompareValues(const PropertyValue& a, const PropertyValue& b) {
  auto numeric = [](const PropertyValue& v, double* out) {
    if (std::holds_alternative<int64_t>(v)) {
      *out = static_cast<double>(std::get<int64_t>(v));
      return true;
    }
    if (std::holds_alternative<double>(v)) {
      *out = std::get<double>(v);
      return true;
    }
    return false;
  };
  double na = 0.0, nb = 0.0;
  if (numeric(a, &na) && numeric(b, &nb)) {
    if (na < nb) return -1;
    if (na > nb) return 1;
    return 0;
  }
  if (a.index() != b.index()) return -2;
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

inline bool EvalComparison(int cmp, CompareOp op) {
  if (cmp == -2) return op == CompareOp::kNe;  // incomparable: only <> true
  switch (op) {
    case CompareOp::kEq: return cmp == 0;
    case CompareOp::kNe: return cmp != 0;
    case CompareOp::kLt: return cmp < 0;
    case CompareOp::kLe: return cmp <= 0;
    case CompareOp::kGt: return cmp > 0;
    case CompareOp::kGe: return cmp >= 0;
  }
  return false;
}

/// One pattern variable, with the merged constraints of every occurrence.
struct PatternSlot {
  NodePattern pattern;
  std::string name;  // unique (anonymous get synthesized names)
};

/// One pattern edge, endpoints resolved to slot indices.
struct EdgeConstraint {
  size_t from_slot;
  size_t to_slot;
  EdgePattern pattern;
};

/// The flattened, validated query pattern both executors run from. Slot order
/// is first-appearance order of variables across paths — this defines the
/// interpreter's enumeration (and therefore row) order.
struct FlatPattern {
  std::vector<PatternSlot> slots;
  std::map<std::string, size_t> slot_of;
  std::vector<EdgeConstraint> edges;
  int order_column = -1;  // RETURN column index ORDER BY sorts on, or -1
  bool counting_only = false;
};

/// Flattens paths into slots + edge constraints and validates WHERE / RETURN /
/// ORDER BY references. Variables unify across paths by name (label merge
/// keeps the first non-empty label; properties concatenate); anonymous nodes
/// get unique slots. Error messages are part of the oracle contract.
inline Result<FlatPattern> FlattenPattern(const CypherQuery& query) {
  if (query.paths.empty()) return Status::Invalid("query has no MATCH pattern");
  if (query.returns.empty()) return Status::Invalid("query has no RETURN items");

  FlatPattern flat;
  uint32_t anon_counter = 0;
  auto slot_for = [&](const NodePattern& node) -> size_t {
    std::string name = node.variable;
    if (name.empty()) name = "$anon" + std::to_string(anon_counter++);
    auto it = flat.slot_of.find(name);
    if (it != flat.slot_of.end()) {
      // Merge constraints from repeated use of the same variable.
      PatternSlot& s = flat.slots[it->second];
      if (s.pattern.label.empty()) s.pattern.label = node.label;
      for (const auto& p : node.properties) s.pattern.properties.push_back(p);
      return it->second;
    }
    flat.slots.push_back(PatternSlot{node, name});
    flat.slot_of[name] = flat.slots.size() - 1;
    return flat.slots.size() - 1;
  };

  for (const PathPattern& path : query.paths) {
    std::vector<size_t> path_slots;
    path_slots.reserve(path.nodes.size());
    for (const NodePattern& node : path.nodes) path_slots.push_back(slot_for(node));
    for (size_t i = 0; i < path.edges.size(); ++i) {
      flat.edges.push_back({path_slots[i], path_slots[i + 1], path.edges[i]});
    }
  }

  for (const Comparison& c : query.where) {
    for (const Operand* op : {&c.lhs, &c.rhs}) {
      if (op->kind == Operand::Kind::kProperty && !flat.slot_of.count(op->variable)) {
        return Status::Invalid("WHERE references unknown variable " + op->variable);
      }
    }
  }
  for (const ReturnItem& item : query.returns) {
    if (!item.is_count && !flat.slot_of.count(item.variable)) {
      return Status::Invalid("RETURN references unknown variable " + item.variable);
    }
  }
  if (query.order_by) {
    for (size_t i = 0; i < query.returns.size(); ++i) {
      const ReturnItem& item = query.returns[i];
      if (!item.is_count && item.variable == query.order_by->variable &&
          item.key == query.order_by->key) {
        flat.order_column = static_cast<int>(i);
        break;
      }
    }
    if (flat.order_column < 0) {
      return Status::Invalid("ORDER BY must reference a RETURN item");
    }
  }
  flat.counting_only = query.returns.size() == 1 && query.returns[0].is_count;
  return flat;
}

}  // namespace ubigraph::query
