#include "query/traversal_api.h"

#include <algorithm>
#include <unordered_set>

namespace ubigraph::query {

GraphTraversal& GraphTraversal::V() {
  frontier_.resize(graph_->num_vertices());
  for (VertexId v = 0; v < graph_->num_vertices(); ++v) frontier_[v] = v;
  return *this;
}

GraphTraversal& GraphTraversal::V(const std::vector<VertexId>& ids) {
  frontier_.clear();
  for (VertexId v : ids) {
    if (v < graph_->num_vertices()) frontier_.push_back(v);
  }
  return *this;
}

GraphTraversal& GraphTraversal::HasLabel(std::string_view label) {
  std::vector<VertexId> next;
  for (VertexId v : frontier_) {
    if (graph_->VertexLabel(v) == label) next.push_back(v);
  }
  frontier_ = std::move(next);
  return *this;
}

GraphTraversal& GraphTraversal::Has(std::string_view key,
                                    const PropertyValue& value) {
  std::vector<VertexId> next;
  for (VertexId v : frontier_) {
    if (graph_->GetVertexProperty(v, key) == value) next.push_back(v);
  }
  frontier_ = std::move(next);
  return *this;
}

GraphTraversal& GraphTraversal::Has(
    std::string_view key,
    const std::function<bool(const PropertyValue&)>& predicate) {
  std::vector<VertexId> next;
  for (VertexId v : frontier_) {
    PropertyValue pv = graph_->GetVertexProperty(v, key);
    if (!std::holds_alternative<std::monostate>(pv) && predicate(pv)) {
      next.push_back(v);
    }
  }
  frontier_ = std::move(next);
  return *this;
}

GraphTraversal& GraphTraversal::Where(
    const std::function<bool(VertexId)>& predicate) {
  std::vector<VertexId> next;
  for (VertexId v : frontier_) {
    if (predicate(v)) next.push_back(v);
  }
  frontier_ = std::move(next);
  return *this;
}

GraphTraversal& GraphTraversal::Out(std::string_view type) {
  std::vector<VertexId> next;
  for (VertexId v : frontier_) {
    for (EdgeId e : graph_->OutEdges(v, type)) next.push_back(graph_->EdgeDst(e));
  }
  frontier_ = std::move(next);
  return *this;
}

GraphTraversal& GraphTraversal::In(std::string_view type) {
  std::vector<VertexId> next;
  for (VertexId v : frontier_) {
    for (EdgeId e : graph_->InEdges(v, type)) next.push_back(graph_->EdgeSrc(e));
  }
  frontier_ = std::move(next);
  return *this;
}

GraphTraversal& GraphTraversal::Both(std::string_view type) {
  std::vector<VertexId> next;
  for (VertexId v : frontier_) {
    for (EdgeId e : graph_->OutEdges(v, type)) next.push_back(graph_->EdgeDst(e));
    for (EdgeId e : graph_->InEdges(v, type)) next.push_back(graph_->EdgeSrc(e));
  }
  frontier_ = std::move(next);
  return *this;
}

GraphTraversal& GraphTraversal::Dedup() {
  std::unordered_set<VertexId> seen;
  std::vector<VertexId> next;
  for (VertexId v : frontier_) {
    if (seen.insert(v).second) next.push_back(v);
  }
  frontier_ = std::move(next);
  return *this;
}

GraphTraversal& GraphTraversal::Limit(size_t n) {
  if (frontier_.size() > n) frontier_.resize(n);
  return *this;
}

GraphTraversal& GraphTraversal::OrderBy(std::string_view key, bool ascending) {
  auto rank = [&](VertexId v) { return graph_->GetVertexProperty(v, key); };
  std::stable_sort(frontier_.begin(), frontier_.end(),
                   [&](VertexId a, VertexId b) {
                     PropertyValue pa = rank(a), pb = rank(b);
                     bool absent_a = std::holds_alternative<std::monostate>(pa);
                     bool absent_b = std::holds_alternative<std::monostate>(pb);
                     if (absent_a != absent_b) return absent_b;  // absent last
                     if (absent_a) return false;
                     if (pa.index() != pb.index()) return pa.index() < pb.index();
                     bool less = pa < pb;
                     return ascending ? less : pb < pa;
                   });
  return *this;
}

std::vector<PropertyValue> GraphTraversal::Values(std::string_view key) const {
  std::vector<PropertyValue> out;
  out.reserve(frontier_.size());
  for (VertexId v : frontier_) out.push_back(graph_->GetVertexProperty(v, key));
  return out;
}

}  // namespace ubigraph::query
