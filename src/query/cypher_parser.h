// Recursive-descent parser for Cypher-lite. Grammar:
//
//   query      := MATCH path (',' path)*
//                 (WHERE comparison (AND comparison)*)?
//                 RETURN item (',' item)*
//                 (LIMIT integer)?
//   path       := node (edge node)*
//   node       := '(' ident? (':' ident)? props? ')'
//   props      := '{' ident ':' literal (',' ident ':' literal)* '}'
//   edge       := '-' '[' ident? (':' ident)? ']' '->'     (outgoing)
//               | '<-' '[' ident? (':' ident)? ']' '-'     (incoming)
//               | '-' '[' ident? (':' ident)? ']' '-'      (either)
//   comparison := operand op operand
//   operand    := ident '.' ident | literal
//   op         := '=' | '<>' | '<' | '<=' | '>' | '>='
//   item       := COUNT '(' '*' ')' | ident ('.' ident)?
//   literal    := integer | float | string | TRUE | FALSE
//
// Keywords are case-insensitive.
#pragma once

#include <string>

#include "common/result.h"
#include "query/cypher_ast.h"

namespace ubigraph::query {

/// Parses a Cypher-lite query string into an AST.
Result<CypherQuery> ParseCypher(const std::string& query);

}  // namespace ubigraph::query
