#include "query/plan_cache.h"

#include "common/strings.h"
#include "obs/metrics.h"
#include "query/cypher_lexer.h"
#include "query/cypher_parser.h"
#include "query/planner.h"
#include "query/vector_executor.h"

namespace ubigraph::query {

namespace {

bool IsComparator(TokenKind k) {
  return k == TokenKind::kEq || k == TokenKind::kNe || k == TokenKind::kLt ||
         k == TokenKind::kLe || k == TokenKind::kGt || k == TokenKind::kGe;
}

const char* SymbolFor(TokenKind k) {
  switch (k) {
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kLBracket: return "[";
    case TokenKind::kRBracket: return "]";
    case TokenKind::kLBrace: return "{";
    case TokenKind::kRBrace: return "}";
    case TokenKind::kColon: return ":";
    case TokenKind::kComma: return ",";
    case TokenKind::kDot: return ".";
    case TokenKind::kDash: return "-";
    case TokenKind::kArrowRight: return "->";
    case TokenKind::kArrowLeft: return "<-";
    case TokenKind::kEq: return "=";
    case TokenKind::kNe: return "<>";
    case TokenKind::kLt: return "<";
    case TokenKind::kLe: return "<=";
    case TokenKind::kGt: return ">";
    case TokenKind::kGe: return ">=";
    case TokenKind::kStar: return "*";
    default: return "";
  }
}

}  // namespace

Result<NormalizedQuery> NormalizeCypher(const std::string& text) {
  UG_ASSIGN_OR_RETURN(std::vector<Token> tokens, TokenizeCypher(text));
  NormalizedQuery out;
  out.key.reserve(text.size());
  int brace_depth = 0;
  TokenKind prev = TokenKind::kEnd;
  // Space-separated rendering is injective: identifiers match
  // [A-Za-z_][A-Za-z0-9_]* so no token can contain a space or render as the
  // parameter marker '?'.
  auto append = [&](std::string_view piece) {
    if (!out.key.empty()) out.key += ' ';
    out.key += piece;
  };
  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind == TokenKind::kEnd) break;
    const TokenKind next =
        i + 1 < tokens.size() ? tokens[i + 1].kind : TokenKind::kEnd;
    switch (t.kind) {
      case TokenKind::kInteger:
        // Integers after '*' or '.' are variable-length hop bounds: they
        // change the plan shape (and are validated by the parser), so they
        // stay in the key.
        if (prev == TokenKind::kStar || prev == TokenKind::kDot) {
          append(std::to_string(t.integer));
        } else {
          append("?");
          out.params.push_back(t.integer);
        }
        break;
      case TokenKind::kFloat:
        append("?");
        out.params.push_back(t.floating);
        break;
      case TokenKind::kString:
        append("?");
        out.params.push_back(t.text);
        break;
      case TokenKind::kIdentifier: {
        const std::string low = ToLower(t.text);
        const bool boolean = low == "true" || low == "false";
        // true/false are literals only in literal positions — after ':'
        // inside a property map or adjacent to a comparator. Elsewhere they
        // are ordinary identifiers (variables, labels, keys).
        const bool literal_position =
            (prev == TokenKind::kColon && brace_depth > 0) || IsComparator(prev) ||
            IsComparator(next);
        if (boolean && literal_position) {
          append("?");
          out.params.push_back(low == "true");
        } else {
          append(t.text);  // no case folding: variables are case-sensitive
        }
        break;
      }
      case TokenKind::kLBrace:
        ++brace_depth;
        append("{");
        break;
      case TokenKind::kRBrace:
        if (brace_depth > 0) --brace_depth;
        append("}");
        break;
      default:
        append(SymbolFor(t.kind));
        break;
    }
    prev = t.kind;
  }
  return out;
}

QueryEngine::QueryEngine(const PropertyGraph& graph, ExecOptions options)
    : graph_(graph), options_(options) {}

void QueryEngine::RefreshIfStale() {
  if (view_ && view_->built_version() == graph_.version()) return;
  view_.emplace(LabelCsrView::Build(graph_));
  cache_.clear();
  ++stats_.stats_rebuilds;
  obs::AddCounter("query.plan.stats_rebuilds", 1);
}

const LabelCsrView& QueryEngine::view() {
  RefreshIfStale();
  return *view_;
}

const PhysicalPlan* QueryEngine::CachedPlan(const std::string& key) const {
  auto it = cache_.find(key);
  return it == cache_.end() ? nullptr : it->second.get();
}

Result<QueryResult> QueryEngine::Run(const std::string& text) {
  if (!options_.vectorized) return RunCypher(graph_, text, options_);
  RefreshIfStale();

  Result<NormalizedQuery> normalized = NormalizeCypher(text);
  // Only a lexer error — identical to the error RunCypher would return.
  if (!normalized.ok()) return normalized.status();
  NormalizedQuery& nq = *normalized;

  auto it = cache_.find(nq.key);
  if (it != cache_.end() &&
      it->second->num_params == static_cast<int>(nq.params.size())) {
    ++stats_.cache_hits;
    obs::AddCounter("query.plan.cache_hits", 1);
    return ExecutePlan(graph_, *view_, *it->second, nq.params, options_.batch_size);
  }

  ++stats_.cache_misses;
  obs::AddCounter("query.plan.cache_misses", 1);
  UG_ASSIGN_OR_RETURN(CypherQuery query, ParseCypher(text));
  obs::AddCounter("query.plan.parses", 1);
  UG_ASSIGN_OR_RETURN(PlannedQuery planned, PlanQuery(graph_, view_->stats(), query));
  obs::AddCounter("query.plan.plans", 1);

  // The normalizer's positional literals must agree with the planner's
  // canonical AST-walk extraction for a cached plan to rebind future texts.
  // Defensive: on any disagreement, execute with the planner's own params and
  // skip caching rather than risk serving wrong rows later.
  bool rebindable = planned.params.size() == nq.params.size();
  for (size_t i = 0; rebindable && i < planned.params.size(); ++i) {
    if (!(planned.params[i] == nq.params[i])) rebindable = false;
  }
  if (rebindable) {
    if (cache_.size() >= kMaxCachedPlans) cache_.clear();
    cache_.emplace(nq.key, std::make_shared<const PhysicalPlan>(planned.plan));
  }
  return ExecutePlan(graph_, *view_, planned.plan, planned.params,
                     options_.batch_size);
}

}  // namespace ubigraph::query
