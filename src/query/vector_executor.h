// Batched executor for PhysicalPlans: runs the operator pipeline over
// fixed-size chunks of vertex ids with selection vectors, then restores the
// interpreter's documented row order (lexicographic in slot-assignment order)
// before projection. See DESIGN.md "Vectorized query execution" for the
// determinism argument.
#pragma once

#include <vector>

#include "common/result.h"
#include "graph/label_csr.h"
#include "graph/property_graph.h"
#include "query/cypher_executor.h"
#include "query/plan.h"

namespace ubigraph::query {

/// Executes a plan with the given parameter bindings. `view` must have been
/// built from `graph` at its current version. params.size() must equal
/// plan.num_params.
Result<QueryResult> ExecutePlan(const PropertyGraph& graph,
                                const LabelCsrView& view,
                                const PhysicalPlan& plan,
                                const std::vector<PropertyValue>& params,
                                size_t batch_size);

}  // namespace ubigraph::query
