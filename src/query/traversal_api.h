// Gremlin-style fluent traversal API over a PropertyGraph (Table 1 lists
// Gremlin as its own surveyed technology; Table 12: 23 participants use it).
// Steps evaluate eagerly over a vertex frontier.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/property_graph.h"

namespace ubigraph::query {

/// A chainable vertex-set traversal. Copies are cheap (frontier only).
class GraphTraversal {
 public:
  explicit GraphTraversal(const PropertyGraph& graph) : graph_(&graph) {}

  /// Starts from all vertices.
  GraphTraversal& V();
  /// Starts from specific vertices (out-of-range ids dropped).
  GraphTraversal& V(const std::vector<VertexId>& ids);

  /// Keeps vertices with the given label.
  GraphTraversal& HasLabel(std::string_view label);
  /// Keeps vertices whose property equals the value.
  GraphTraversal& Has(std::string_view key, const PropertyValue& value);
  /// Keeps vertices whose property satisfies the predicate (absent property
  /// fails).
  GraphTraversal& Has(std::string_view key,
                      const std::function<bool(const PropertyValue&)>& predicate);
  /// Arbitrary vertex filter.
  GraphTraversal& Where(const std::function<bool(VertexId)>& predicate);

  /// Moves to out/in/both neighbors over edges of `type` ("" = any).
  GraphTraversal& Out(std::string_view type = {});
  GraphTraversal& In(std::string_view type = {});
  GraphTraversal& Both(std::string_view type = {});

  /// Removes duplicate vertices (keeps first occurrence).
  GraphTraversal& Dedup();
  /// Keeps the first n vertices.
  GraphTraversal& Limit(size_t n);
  /// Orders by a property (numeric or string; absent values last).
  GraphTraversal& OrderBy(std::string_view key, bool ascending = true);

  /// Terminal steps.
  size_t Count() const { return frontier_.size(); }
  std::vector<VertexId> ToVector() const { return frontier_; }
  /// Property values of the frontier (absent -> monostate).
  std::vector<PropertyValue> Values(std::string_view key) const;

 private:
  const PropertyGraph* graph_;
  std::vector<VertexId> frontier_;
};

}  // namespace ubigraph::query
