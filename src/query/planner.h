// Degree-statistics query planner: lowers a parsed CypherQuery into a
// PhysicalPlan (plan.h) using the LabelCsrView's per-label counts and
// per-(label, edge-type) average degrees to pick the cheapest join order.
#pragma once

#include "common/result.h"
#include "graph/label_csr.h"
#include "graph/property_graph.h"
#include "query/cypher_ast.h"
#include "query/plan.h"

namespace ubigraph::query {

/// Plans a query against the given graph + statistics. Fails with the same
/// validation errors as the interpreter ("query has no MATCH pattern", ...).
///
/// The planner is fully deterministic: cardinality ties break toward the
/// lowest slot index / lowest pattern-edge index, so tests can pin chosen
/// join orders exactly.
Result<PlannedQuery> PlanQuery(const PropertyGraph& graph,
                               const LabelCsrView::Stats& stats,
                               const CypherQuery& query);

}  // namespace ubigraph::query
