// Prepared-plan cache: a token-level query normalizer that parameterizes
// literals out of the query text, and a QueryEngine that keeps one
// LabelCsrView + a bounded plan cache per PropertyGraph, invalidated whenever
// the graph's mutation version moves.
//
// Normalization rules (see DESIGN.md "Vectorized query execution"):
//  - integers and floats become parameters, EXCEPT integers preceded by '*'
//    or '.' (variable-length hop bounds: they change plan shape and are
//    validated by the parser, so they stay in the key);
//  - strings always become parameters;
//  - the identifiers true/false become parameters only in literal positions:
//    after ':' inside a property map, or adjacent to a comparison operator
//    (elsewhere they can be variables, labels, or property keys);
//  - identifiers are NOT case-folded — variables are case-sensitive, so
//    "MATCH (n) RETURN n" and "match (n) return n" key separately (correct
//    over clever).
// Parameters are extracted in token order, which equals the planner's
// canonical AST-walk order (paths -> nodes -> properties, WHERE lhs-before-
// rhs, LIMIT last), so a cached plan rebinds positionally.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "graph/label_csr.h"
#include "graph/property_graph.h"
#include "query/cypher_executor.h"
#include "query/plan.h"

namespace ubigraph::query {

/// A normalized query: the shape key plus extracted literal values.
struct NormalizedQuery {
  std::string key;
  std::vector<PropertyValue> params;
};

/// Normalizes query text. Total on any lexable query (in particular on every
/// parse-accepted query); fails only when the lexer fails, with the lexer's
/// error.
Result<NormalizedQuery> NormalizeCypher(const std::string& text);

/// Executes Cypher over one PropertyGraph with a warm CSR view and a
/// prepared-plan cache. Reads through the cache: a hit performs zero parse or
/// plan work (pinned by the query.plan.* counters). Any graph mutation
/// (detected via PropertyGraph::version()) rebuilds the view + statistics and
/// drops all cached plans before the next query runs.
class QueryEngine {
 public:
  /// Keeps a reference to the graph; the graph must outlive the engine.
  explicit QueryEngine(const PropertyGraph& graph, ExecOptions options = {});

  /// Parses/plans/executes (or rebinds a cached plan). Matches RunCypher's
  /// results and errors exactly.
  Result<QueryResult> Run(const std::string& text);

  /// Current view (building it if needed) — exposed for tests and benches.
  const LabelCsrView& view();

  struct Stats {
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t stats_rebuilds = 0;
  };
  const Stats& stats() const { return stats_; }
  size_t cache_size() const { return cache_.size(); }

  /// Cached plan for a query shape, or nullptr (tests).
  const PhysicalPlan* CachedPlan(const std::string& key) const;

  static constexpr size_t kMaxCachedPlans = 256;

 private:
  void RefreshIfStale();

  const PropertyGraph& graph_;
  ExecOptions options_;
  std::optional<LabelCsrView> view_;
  std::unordered_map<std::string, std::shared_ptr<const PhysicalPlan>> cache_;
  Stats stats_;
};

}  // namespace ubigraph::query
