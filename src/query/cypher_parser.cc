#include "query/cypher_parser.h"

#include "common/strings.h"
#include "query/cypher_lexer.h"

namespace ubigraph::query {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<CypherQuery> Parse() {
    CypherQuery q;
    UG_RETURN_NOT_OK(ExpectKeyword("MATCH"));
    UG_ASSIGN_OR_RETURN(PathPattern path, ParsePath());
    q.paths.push_back(std::move(path));
    while (Peek().kind == TokenKind::kComma) {
      Advance();
      UG_ASSIGN_OR_RETURN(PathPattern more, ParsePath());
      q.paths.push_back(std::move(more));
    }
    if (IsKeyword(Peek(), "WHERE")) {
      Advance();
      UG_ASSIGN_OR_RETURN(Comparison c, ParseComparison());
      q.where.push_back(std::move(c));
      while (IsKeyword(Peek(), "AND")) {
        Advance();
        UG_ASSIGN_OR_RETURN(Comparison more, ParseComparison());
        q.where.push_back(std::move(more));
      }
    }
    UG_RETURN_NOT_OK(ExpectKeyword("RETURN"));
    UG_ASSIGN_OR_RETURN(ReturnItem item, ParseReturnItem());
    q.returns.push_back(std::move(item));
    while (Peek().kind == TokenKind::kComma) {
      Advance();
      UG_ASSIGN_OR_RETURN(ReturnItem more, ParseReturnItem());
      q.returns.push_back(std::move(more));
    }
    if (IsKeyword(Peek(), "ORDER")) {
      Advance();
      UG_RETURN_NOT_OK(ExpectKeyword("BY"));
      if (Peek().kind != TokenKind::kIdentifier) {
        return Fail("ORDER BY requires a variable");
      }
      OrderBy order;
      order.variable = Peek().text;
      Advance();
      if (Peek().kind == TokenKind::kDot) {
        Advance();
        if (Peek().kind != TokenKind::kIdentifier) {
          return Fail("expected property key after '.'");
        }
        order.key = Peek().text;
        Advance();
      }
      if (IsKeyword(Peek(), "ASC")) {
        Advance();
      } else if (IsKeyword(Peek(), "DESC")) {
        order.ascending = false;
        Advance();
      }
      q.order_by = std::move(order);
    }
    if (IsKeyword(Peek(), "LIMIT")) {
      Advance();
      if (Peek().kind != TokenKind::kInteger) {
        return Fail("LIMIT requires an integer");
      }
      q.limit = static_cast<uint64_t>(Peek().integer);
      Advance();
    }
    if (Peek().kind != TokenKind::kEnd) return Fail("unexpected trailing tokens");
    return q;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t at = pos_ + ahead;
    return at < tokens_.size() ? tokens_[at] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Fail(const std::string& why) const {
    return Status::ParseError("cypher parser at offset " +
                              std::to_string(Peek().offset) + ": " + why +
                              " (got " + TokenKindName(Peek().kind) + ")");
  }

  static bool IsKeyword(const Token& t, std::string_view kw) {
    return t.kind == TokenKind::kIdentifier && ToLower(t.text) == ToLower(kw);
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!IsKeyword(Peek(), kw)) return Fail("expected " + std::string(kw));
    Advance();
    return Status::OK();
  }

  Status Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return Fail(std::string("expected ") + TokenKindName(kind));
    }
    Advance();
    return Status::OK();
  }

  Result<PropertyValue> ParseLiteral() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kInteger: {
        PropertyValue v = t.integer;
        Advance();
        return v;
      }
      case TokenKind::kFloat: {
        PropertyValue v = t.floating;
        Advance();
        return v;
      }
      case TokenKind::kString: {
        PropertyValue v = t.text;
        Advance();
        return v;
      }
      case TokenKind::kIdentifier:
        if (ToLower(t.text) == "true") {
          Advance();
          return PropertyValue{true};
        }
        if (ToLower(t.text) == "false") {
          Advance();
          return PropertyValue{false};
        }
        return Fail("expected literal");
      default:
        return Fail("expected literal");
    }
  }

  Result<NodePattern> ParseNode() {
    UG_RETURN_NOT_OK(Expect(TokenKind::kLParen));
    NodePattern node;
    if (Peek().kind == TokenKind::kIdentifier) {
      node.variable = Peek().text;
      Advance();
    }
    if (Peek().kind == TokenKind::kColon) {
      Advance();
      if (Peek().kind != TokenKind::kIdentifier) return Fail("expected label");
      node.label = Peek().text;
      Advance();
    }
    if (Peek().kind == TokenKind::kLBrace) {
      Advance();
      while (true) {
        if (Peek().kind != TokenKind::kIdentifier) {
          return Fail("expected property key");
        }
        std::string key = Peek().text;
        Advance();
        UG_RETURN_NOT_OK(Expect(TokenKind::kColon));
        UG_ASSIGN_OR_RETURN(PropertyValue value, ParseLiteral());
        node.properties.emplace_back(std::move(key), std::move(value));
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
      UG_RETURN_NOT_OK(Expect(TokenKind::kRBrace));
    }
    UG_RETURN_NOT_OK(Expect(TokenKind::kRParen));
    return node;
  }

  /// Parses "[var :TYPE *min..max]" (brackets optional content).
  Result<EdgePattern> ParseEdgeBody() {
    EdgePattern edge;
    if (Peek().kind == TokenKind::kLBracket) {
      Advance();
      if (Peek().kind == TokenKind::kIdentifier) {
        edge.variable = Peek().text;
        Advance();
      }
      if (Peek().kind == TokenKind::kColon) {
        Advance();
        if (Peek().kind != TokenKind::kIdentifier) return Fail("expected edge type");
        edge.type = Peek().text;
        Advance();
      }
      if (Peek().kind == TokenKind::kStar) {
        Advance();
        edge.min_hops = 1;
        edge.max_hops = EdgePattern::kMaxVarLength;
        if (Peek().kind == TokenKind::kInteger) {
          edge.min_hops = static_cast<uint32_t>(Peek().integer);
          edge.max_hops = edge.min_hops;
          Advance();
          if (Peek().kind == TokenKind::kDot) {
            Advance();
            UG_RETURN_NOT_OK(Expect(TokenKind::kDot));
            if (Peek().kind != TokenKind::kInteger) {
              return Fail("expected upper bound after '..'");
            }
            edge.max_hops = static_cast<uint32_t>(Peek().integer);
            Advance();
          }
        }
        if (edge.min_hops == 0 || edge.max_hops < edge.min_hops ||
            edge.max_hops > EdgePattern::kMaxVarLength) {
          return Fail("invalid variable-length bounds");
        }
      }
      UG_RETURN_NOT_OK(Expect(TokenKind::kRBracket));
    }
    return edge;
  }

  Result<PathPattern> ParsePath() {
    PathPattern path;
    UG_ASSIGN_OR_RETURN(NodePattern first, ParseNode());
    path.nodes.push_back(std::move(first));
    while (Peek().kind == TokenKind::kDash ||
           Peek().kind == TokenKind::kArrowLeft) {
      EdgePattern edge;
      if (Peek().kind == TokenKind::kArrowLeft) {
        // <-[...]−
        Advance();
        UG_ASSIGN_OR_RETURN(edge, ParseEdgeBody());
        UG_RETURN_NOT_OK(Expect(TokenKind::kDash));
        edge.direction = EdgePattern::Direction::kIn;
      } else {
        // -[...]-> or -[...]-
        Advance();
        UG_ASSIGN_OR_RETURN(edge, ParseEdgeBody());
        if (Peek().kind == TokenKind::kArrowRight) {
          Advance();
          edge.direction = EdgePattern::Direction::kOut;
        } else if (Peek().kind == TokenKind::kDash) {
          Advance();
          edge.direction = EdgePattern::Direction::kAny;
        } else {
          return Fail("expected '->' or '-' after edge");
        }
      }
      UG_ASSIGN_OR_RETURN(NodePattern node, ParseNode());
      path.edges.push_back(std::move(edge));
      path.nodes.push_back(std::move(node));
    }
    return path;
  }

  Result<Operand> ParseOperand() {
    Operand op;
    if (Peek().kind == TokenKind::kIdentifier && !IsKeyword(Peek(), "true") &&
        !IsKeyword(Peek(), "false") && Peek(1).kind == TokenKind::kDot) {
      op.kind = Operand::Kind::kProperty;
      op.variable = Peek().text;
      Advance();
      Advance();  // dot
      if (Peek().kind != TokenKind::kIdentifier) return Fail("expected property key");
      op.key = Peek().text;
      Advance();
      return op;
    }
    UG_ASSIGN_OR_RETURN(op.literal, ParseLiteral());
    op.kind = Operand::Kind::kLiteral;
    return op;
  }

  Result<Comparison> ParseComparison() {
    Comparison c;
    UG_ASSIGN_OR_RETURN(c.lhs, ParseOperand());
    switch (Peek().kind) {
      case TokenKind::kEq: c.op = CompareOp::kEq; break;
      case TokenKind::kNe: c.op = CompareOp::kNe; break;
      case TokenKind::kLt: c.op = CompareOp::kLt; break;
      case TokenKind::kLe: c.op = CompareOp::kLe; break;
      case TokenKind::kGt: c.op = CompareOp::kGt; break;
      case TokenKind::kGe: c.op = CompareOp::kGe; break;
      default:
        return Fail("expected comparison operator");
    }
    Advance();
    UG_ASSIGN_OR_RETURN(c.rhs, ParseOperand());
    return c;
  }

  Result<ReturnItem> ParseReturnItem() {
    ReturnItem item;
    if (IsKeyword(Peek(), "COUNT")) {
      Advance();
      UG_RETURN_NOT_OK(Expect(TokenKind::kLParen));
      UG_RETURN_NOT_OK(Expect(TokenKind::kStar));
      UG_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      item.is_count = true;
      return item;
    }
    if (Peek().kind != TokenKind::kIdentifier) {
      return Fail("expected return variable");
    }
    item.variable = Peek().text;
    Advance();
    if (Peek().kind == TokenKind::kDot) {
      Advance();
      if (Peek().kind != TokenKind::kIdentifier) return Fail("expected property key");
      item.key = Peek().text;
      Advance();
    }
    return item;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<CypherQuery> ParseCypher(const std::string& query) {
  UG_ASSIGN_OR_RETURN(std::vector<Token> tokens, TokenizeCypher(query));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace ubigraph::query
