// AST for the Cypher-lite query language (see cypher_parser.h for the
// grammar). Query languages were the survey's joint-#2 challenge; this module
// demonstrates the full lexer -> parser -> executor pipeline over the
// property graph.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/property_graph.h"

namespace ubigraph::query {

/// (variable :Label {key: literal, ...})
struct NodePattern {
  std::string variable;  // may be empty (anonymous)
  std::string label;     // empty = any label
  std::vector<std::pair<std::string, PropertyValue>> properties;
};

/// -[variable :TYPE]-> / <-[...]−  / -[...]- , optionally variable-length:
/// -[:TYPE*2]->, -[:TYPE*1..3]->, -[*]-> (unbounded capped at kMaxVarLength).
struct EdgePattern {
  enum class Direction { kOut, kIn, kAny };
  static constexpr uint32_t kMaxVarLength = 16;

  std::string variable;
  std::string type;  // empty = any type
  Direction direction = Direction::kOut;
  uint32_t min_hops = 1;
  uint32_t max_hops = 1;

  bool IsVariableLength() const { return min_hops != 1 || max_hops != 1; }
};

/// node (edge node)*
struct PathPattern {
  std::vector<NodePattern> nodes;
  std::vector<EdgePattern> edges;  // edges.size() == nodes.size() - 1
};

/// An operand of a WHERE comparison: var.key or a literal.
struct Operand {
  enum class Kind { kProperty, kLiteral } kind = Kind::kLiteral;
  std::string variable;
  std::string key;
  PropertyValue literal;
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

struct Comparison {
  Operand lhs;
  CompareOp op = CompareOp::kEq;
  Operand rhs;
};

/// RETURN item: count(*), a variable (vertex id), or var.key.
struct ReturnItem {
  bool is_count = false;
  std::string variable;
  std::string key;  // empty = the vertex itself

  std::string DisplayName() const {
    if (is_count) return "count(*)";
    return key.empty() ? variable : variable + "." + key;
  }
};

/// ORDER BY clause: sort rows by a returned item's value.
struct OrderBy {
  std::string variable;
  std::string key;  // empty = order by the vertex itself
  bool ascending = true;
};

struct CypherQuery {
  std::vector<PathPattern> paths;
  std::vector<Comparison> where;  // conjunction
  std::vector<ReturnItem> returns;
  std::optional<OrderBy> order_by;
  std::optional<uint64_t> limit;
};

}  // namespace ubigraph::query
