#include "survey/tabulate.h"

#include <algorithm>

#include "survey/schema.h"

namespace ubigraph::survey {

namespace {

/// Targets for a question, as (total, r, p); r = -1 means total-only.
struct Target {
  int total;
  int r;
  int p;
};

std::vector<Target> PaperRowsFor(const std::string& id) {
  auto from_rows = [](const std::vector<CountRow>& rows) {
    std::vector<Target> out;
    for (const CountRow& row : rows) out.push_back({row.total, row.r, row.p});
    return out;
  };
  if (id == "fields") return from_rows(Table2Fields());
  if (id == "org_size") return from_rows(Table3OrgSizes());
  if (id == "entities") return from_rows(Table4Entities());
  if (id == "vertices") return from_rows(Table5aVertices());
  if (id == "edges") return from_rows(Table5bEdges());
  if (id == "bytes") return from_rows(Table5cBytes());
  if (id == "directedness") return from_rows(Table7aDirectedness());
  if (id == "multiplicity") return from_rows(Table7bMultiplicity());
  if (id == "vertex_data_types") return from_rows(Table7cVertexDataTypes());
  if (id == "edge_data_types") return from_rows(Table7cEdgeDataTypes());
  if (id == "dynamism") return from_rows(Table8Dynamism());
  if (id == "computations") return from_rows(Table9Computations());
  if (id == "ml_computations") return from_rows(Table10aMlComputations());
  if (id == "ml_problems") return from_rows(Table10bMlProblems());
  if (id == "traversals") return from_rows(Table11Traversals());
  if (id == "query_software") return from_rows(Table12QuerySoftware());
  if (id == "nonquery_software") return from_rows(Table13NonQuerySoftware());
  if (id == "architectures") return from_rows(Table14Architectures());
  if (id == "challenges") return from_rows(Table15Challenges());
  if (id.rfind("workload_", 0) == 0) {
    for (const WorkloadRow& row : Table16Workload()) {
      if (id == std::string("workload_") + row.task) {
        return {{row.hours_0_5, -1, -1},
                {row.hours_5_10, -1, -1},
                {row.hours_over_10, -1, -1}};
      }
    }
  }
  if (id == "storage_formats") {
    std::vector<Target> out;
    for (const SimpleRow& row : Table17StorageFormats()) {
      out.push_back({row.count, -1, -1});
    }
    return out;
  }
  return {};
}

}  // namespace

bool Comparison::AllMatch() const {
  for (const ComparisonRow& row : rows) {
    if (row.paper_total != row.repro_total) return false;
    if (row.grouped &&
        (row.paper_r != row.repro_r || row.paper_p != row.repro_p)) {
      return false;
    }
  }
  return true;
}

std::string Comparison::Render() const {
  bool grouped = !rows.empty() && rows[0].grouped;
  std::vector<std::string> header{"Choice", "Paper"};
  if (grouped) {
    header.insert(header.end(), {"Paper R", "Paper P"});
  }
  header.push_back("Repro");
  if (grouped) {
    header.insert(header.end(), {"Repro R", "Repro P"});
  }
  header.push_back("Match");
  TextTable table(header);
  for (const ComparisonRow& row : rows) {
    std::vector<std::string> cells{row.label, std::to_string(row.paper_total)};
    if (grouped) {
      cells.push_back(std::to_string(row.paper_r));
      cells.push_back(std::to_string(row.paper_p));
    }
    cells.push_back(std::to_string(row.repro_total));
    if (grouped) {
      cells.push_back(std::to_string(row.repro_r));
      cells.push_back(std::to_string(row.repro_p));
    }
    bool match = row.paper_total == row.repro_total &&
                 (!row.grouped || (row.paper_r == row.repro_r &&
                                   row.paper_p == row.repro_p));
    cells.push_back(match ? "yes" : "NO");
    table.AddRow(std::move(cells));
  }
  std::string out = title + "\n" + table.RenderAscii();
  out += AllMatch() ? "RESULT: all rows match the paper\n"
                    : "RESULT: MISMATCH against the paper\n";
  return out;
}

Comparison CompareQuestion(const Population& population,
                           const std::string& question_id,
                           const std::string& title) {
  Comparison cmp;
  cmp.title = title;
  const Questionnaire& questionnaire = Questionnaire::Standard();
  auto question = questionnaire.Find(question_id);
  if (!question.ok()) return cmp;
  std::vector<Target> paper = PaperRowsFor(question_id);
  std::vector<ChoiceTally> tally = population.Tabulate(question_id);
  for (size_t c = 0; c < paper.size() && c < tally.size(); ++c) {
    ComparisonRow row;
    row.label = (*question)->choices[c];
    row.paper_total = paper[c].total;
    row.paper_r = paper[c].r;
    row.paper_p = paper[c].p;
    row.repro_total = tally[c].total;
    row.repro_r = tally[c].researchers;
    row.repro_p = tally[c].practitioners;
    row.grouped = paper[c].r >= 0;
    cmp.rows.push_back(std::move(row));
  }
  return cmp;
}

std::vector<SimpleRow> DeriveBillionEdgeOrgSizes(const Population& population) {
  // Edge choice 6 is ">1B"; org_size choices are Table 3's five bands.
  static const char* kSizeLabels[] = {"1 - 10", "10 - 100", "100 - 1000",
                                      "1000 - 10000", ">10000"};
  int counts[5] = {0, 0, 0, 0, 0};
  for (int who : population.WhoSelected("edges", 6)) {
    std::vector<int> sizes = population.Selections(who, "org_size");
    for (int s : sizes) ++counts[s];
  }
  std::vector<SimpleRow> out;
  for (int c = 0; c < 5; ++c) {
    if (counts[c] > 0) out.push_back({kSizeLabels[c], counts[c]});
  }
  return out;
}

int DeriveDistributedWithOver100M(const Population& population) {
  int count = 0;
  for (int who : population.WhoSelected("architectures", 2)) {
    if (population.Selected(who, "edges", 5) ||
        population.Selected(who, "edges", 6)) {
      ++count;
    }
  }
  return count;
}

}  // namespace ubigraph::survey
