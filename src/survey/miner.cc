#include "survey/miner.h"

#include "common/strings.h"

namespace ubigraph::survey {

namespace {

struct KeywordRule {
  const char* label;     // Table 19 row label
  const char* category;  // Table 19 category (restricts software class)
  const char* keyword;   // case-insensitive substring
};

/// Rule order is match priority; a message counts toward one challenge.
const KeywordRule kRules[] = {
    {"High-degree Vertices", "Graph DBs and RDF Engines", "supernode"},
    {"High-degree Vertices", "Graph DBs and RDF Engines", "high-degree"},
    {"Hyperedges", "Graph DBs and RDF Engines", "hyperedge"},
    {"Triggers", "Graph DBs and RDF Engines", "trigger"},
    {"Versioning and Historical Analysis", "Graph DBs and RDF Engines",
     "versioning"},
    {"Schema & Constraints", "Graph DBs and RDF Engines", "schema constraint"},
    {"Layout", "Visualization Software", "layout"},
    {"Customizability", "Visualization Software", "customize"},
    {"Large-graph Visualization", "Visualization Software",
     "rendering a large graph"},
    {"Dynamic Graph Visualization", "Visualization Software", "animat"},
    {"Subqueries", "Query Languages", "subquery"},
    {"Querying Across Multiple Graphs", "Query Languages", "multiple graphs"},
    {"Off-the-shelf Algorithms", "DGPS and Graph Libraries", "off-the-shelf"},
    {"Graph Generators", "DGPS and Graph Libraries", "graph generator"},
    {"GPU Support", "DGPS and Graph Libraries", "gpu"},
};

bool TechnologyInCategory(const std::string& technology,
                          const std::string& category) {
  if (category == "Graph DBs and RDF Engines") {
    return technology == "Graph Database" || technology == "RDF Engine";
  }
  if (category == "Visualization Software") {
    return technology == "Graph Visualization";
  }
  if (category == "Query Languages") {
    return technology == "Graph Database" || technology == "RDF Engine" ||
           technology == "Query Language";
  }
  if (category == "DGPS and Graph Libraries") {
    return technology == "Distributed Graph Processing Engine" ||
           technology == "Graph Library";
  }
  return false;
}

int RowIndexOf(const std::string& category, const std::string& label) {
  const auto& rows = Table19MinedChallenges();
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].category == category && rows[i].label == label) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace

int ClassifyMessage(const Message& message) {
  std::string text = message.subject + " " + message.body;
  for (const KeywordRule& rule : kRules) {
    if (!TechnologyInCategory(message.technology, rule.category)) continue;
    if (ContainsIgnoreCase(text, rule.keyword)) {
      return RowIndexOf(rule.category, rule.label);
    }
  }
  return -1;
}

MinedChallenges MineChallenges(const MessageCorpus& corpus) {
  MinedChallenges out;
  out.counts.assign(Table19MinedChallenges().size(), 0);
  for (const Message& m : corpus.messages()) {
    int row = ClassifyMessage(m);
    if (row >= 0) {
      ++out.counts[row];
      ++out.useful_messages;
    }
  }
  return out;
}

std::vector<std::pair<double, std::string>> ExtractSizeMentions(
    const std::string& text) {
  std::vector<std::pair<double, std::string>> out;
  std::vector<std::string> tokens = SplitWhitespace(text);
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (ToLower(tokens[i]) != "billion") continue;
    if (i == 0) continue;
    double value = 0.0;
    if (!ParseDouble(tokens[i - 1], &value)) continue;
    std::string unit = ToLower(tokens[i + 1]);
    // Strip punctuation.
    while (!unit.empty() && !std::isalpha(static_cast<unsigned char>(unit.back()))) {
      unit.pop_back();
    }
    if (unit == "vertices" || unit == "edges") out.emplace_back(value, unit);
  }
  return out;
}

MinedSizes MineGraphSizes(const MessageCorpus& corpus) {
  MinedSizes out;
  out.vertex_bands.assign(Table18aEmailVertexSizes().size(), 0);
  out.edge_bands.assign(Table18bEmailEdgeSizes().size(), 0);
  for (const Message& m : corpus.messages()) {
    for (const auto& [billions, unit] : ExtractSizeMentions(m.body)) {
      if (unit == "vertices") {
        // Bands: 100M-1B, 1B-10B, 10B-100B, >100B.
        if (billions < 0.1) continue;
        if (billions < 1) ++out.vertex_bands[0];
        else if (billions < 10) ++out.vertex_bands[1];
        else if (billions < 100) ++out.vertex_bands[2];
        else ++out.vertex_bands[3];
      } else {
        // Bands: 1B-10B, 10B-100B, 100B-500B, >500B.
        if (billions < 1) continue;
        if (billions < 10) ++out.edge_bands[0];
        else if (billions < 100) ++out.edge_bands[1];
        else if (billions < 500) ++out.edge_bands[2];
        else ++out.edge_bands[3];
      }
    }
  }
  return out;
}

}  // namespace ubigraph::survey
