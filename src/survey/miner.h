// Keyword/taxonomy miner (§2.4's methodology as code): classifies corpus
// messages into the 14 challenge types of Table 19 (respecting which software
// class each challenge applies to) and extracts graph-size mentions for
// Table 18.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "survey/corpus.h"
#include "survey/paper_data.h"

namespace ubigraph::survey {

/// Counts per Table19MinedChallenges() row, in the same order.
struct MinedChallenges {
  std::vector<int> counts;
  int useful_messages = 0;  // messages that matched any challenge
};

/// Runs the keyword taxonomy over the corpus.
MinedChallenges MineChallenges(const MessageCorpus& corpus);

/// Classifies one message; returns the Table 19 row index or -1.
int ClassifyMessage(const Message& message);

/// Graph-size mentions ("... N billion vertices/edges ...") bucketed into the
/// Table 18 bands.
struct MinedSizes {
  std::vector<int> vertex_bands;  // aligned with Table18aEmailVertexSizes()
  std::vector<int> edge_bands;    // aligned with Table18bEmailEdgeSizes()
};
MinedSizes MineGraphSizes(const MessageCorpus& corpus);

/// Parses "<number> billion <unit>" from text; returns count found and
/// appends (billions, unit) pairs. Exposed for tests.
std::vector<std::pair<double, std::string>> ExtractSizeMentions(
    const std::string& text);

}  // namespace ubigraph::survey
