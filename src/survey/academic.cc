#include "survey/academic.h"

#include "common/random.h"
#include "survey/paper_data.h"

namespace ubigraph::survey {

const char* VenueName(Venue venue) {
  switch (venue) {
    case Venue::kVldb: return "VLDB 2014";
    case Venue::kKdd: return "KDD 2015";
    case Venue::kIcml: return "ICML 2016";
    case Venue::kOsdi: return "OSDI 2016";
    case Venue::kSc: return "SC 2016";
    case Venue::kSocc: return "SOCC 2015";
  }
  return "?";
}

namespace {

/// Assigns `count` papers (out of 90) a tag, chosen without replacement.
void AssignTag(std::vector<AcademicPaper>* papers, int count,
               std::vector<int> AcademicPaper::* field, int tag, Rng* rng) {
  std::vector<size_t> chosen =
      rng->SampleWithoutReplacement(papers->size(), static_cast<size_t>(count));
  for (size_t idx : chosen) ((*papers)[idx].*field).push_back(tag);
}

std::vector<int> CountTag(const std::vector<AcademicPaper>& papers,
                          const std::vector<int> AcademicPaper::* field,
                          size_t num_tags) {
  std::vector<int> counts(num_tags, 0);
  for (const AcademicPaper& p : papers) {
    for (int tag : p.*field) ++counts[tag];
  }
  return counts;
}

}  // namespace

Result<AcademicCorpus> AcademicCorpus::SynthesizeExact(uint64_t seed) {
  AcademicCorpus corpus;
  corpus.papers_.resize(kAcademicPapers);
  Rng rng(seed);
  for (int i = 0; i < kAcademicPapers; ++i) {
    corpus.papers_[i].id = i;
    corpus.papers_[i].venue = static_cast<Venue>(rng.NextBounded(6));
  }

  const auto& entities = Table4Entities();
  for (size_t t = 0; t < entities.size(); ++t) {
    if (entities[t].academic > kAcademicPapers) {
      return Status::Invalid("academic count exceeds corpus size");
    }
    AssignTag(&corpus.papers_, entities[t].academic, &AcademicPaper::entity_tags,
              static_cast<int>(t), &rng);
  }
  const auto& comps = Table9Computations();
  for (size_t t = 0; t < comps.size(); ++t) {
    AssignTag(&corpus.papers_, comps[t].academic,
              &AcademicPaper::computation_tags, static_cast<int>(t), &rng);
  }
  const auto& mlc = Table10aMlComputations();
  for (size_t t = 0; t < mlc.size(); ++t) {
    AssignTag(&corpus.papers_, mlc[t].academic,
              &AcademicPaper::ml_computation_tags, static_cast<int>(t), &rng);
  }
  const auto& mlp = Table10bMlProblems();
  for (size_t t = 0; t < mlp.size(); ++t) {
    AssignTag(&corpus.papers_, mlp[t].academic, &AcademicPaper::ml_problem_tags,
              static_cast<int>(t), &rng);
  }
  const auto& qsw = Table12QuerySoftware();
  for (size_t t = 0; t < qsw.size(); ++t) {
    AssignTag(&corpus.papers_, qsw[t].academic,
              &AcademicPaper::query_software_tags, static_cast<int>(t), &rng);
  }
  const auto& nsw = Table13NonQuerySoftware();
  for (size_t t = 0; t < nsw.size(); ++t) {
    AssignTag(&corpus.papers_, nsw[t].academic,
              &AcademicPaper::nonquery_software_tags, static_cast<int>(t), &rng);
  }
  return corpus;
}

std::vector<int> AcademicCorpus::CountEntities() const {
  return CountTag(papers_, &AcademicPaper::entity_tags, Table4Entities().size());
}
std::vector<int> AcademicCorpus::CountComputations() const {
  return CountTag(papers_, &AcademicPaper::computation_tags,
                  Table9Computations().size());
}
std::vector<int> AcademicCorpus::CountMlComputations() const {
  return CountTag(papers_, &AcademicPaper::ml_computation_tags,
                  Table10aMlComputations().size());
}
std::vector<int> AcademicCorpus::CountMlProblems() const {
  return CountTag(papers_, &AcademicPaper::ml_problem_tags,
                  Table10bMlProblems().size());
}
std::vector<int> AcademicCorpus::CountQuerySoftware() const {
  return CountTag(papers_, &AcademicPaper::query_software_tags,
                  Table12QuerySoftware().size());
}
std::vector<int> AcademicCorpus::CountNonQuerySoftware() const {
  return CountTag(papers_, &AcademicPaper::nonquery_software_tags,
                  Table13NonQuerySoftware().size());
}

std::vector<int> AcademicCorpus::ComputationChoicesOffered() const {
  std::vector<int> counts = CountComputations();
  std::vector<int> offered;
  for (size_t t = 0; t < counts.size(); ++t) {
    if (counts[t] >= 2) offered.push_back(static_cast<int>(t));
  }
  return offered;
}

}  // namespace ubigraph::survey
