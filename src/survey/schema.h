// Questionnaire schema: the survey's questions (grouped into the paper's five
// categories), each with its choice list and selection semantics. Choice
// labels are taken verbatim from paper_data.h so the tabulator and the
// calibration targets always agree.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace ubigraph::survey {

enum class QuestionKind {
  kSingleChoice,  // at most one choice per respondent (optional)
  kMultiChoice,   // any subset of choices
};

enum class QuestionCategory {
  kDemographics,
  kDatasets,
  kComputations,
  kSoftware,
  kWorkloadAndChallenges,
};

struct Question {
  std::string id;      // stable key, e.g. "edges", "computations"
  std::string text;    // the survey prompt
  QuestionKind kind = QuestionKind::kMultiChoice;
  QuestionCategory category = QuestionCategory::kDatasets;
  std::vector<std::string> choices;
};

/// The full questionnaire (every question whose marginals the paper reports).
class Questionnaire {
 public:
  Questionnaire() = default;
  explicit Questionnaire(std::vector<Question> questions)
      : questions_(std::move(questions)) {}

  /// Builds the standard 2017-survey questionnaire.
  static const Questionnaire& Standard();

  const std::vector<Question>& questions() const { return questions_; }
  Result<const Question*> Find(const std::string& id) const;
  size_t size() const { return questions_.size(); }

  /// Questions in a category.
  std::vector<const Question*> InCategory(QuestionCategory category) const;

 private:
  std::vector<Question> questions_;
};

}  // namespace ubigraph::survey
