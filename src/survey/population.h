// Synthetic respondent population calibrated to the paper's published
// marginals. Two modes:
//
//  * Exact: a deterministic constraint-satisfying assignment in which every
//    (question, choice, group) cell matches the paper count exactly,
//    including the paper's stated joint constraints (Table 6's org sizes of
//    >1B-edge participants; §5.2's "29 of 45 distributed users have >100M
//    edges").
//  * Stochastic: every respondent answers independently with the empirical
//    probabilities, for goodness-of-fit experiments.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "survey/paper_data.h"
#include "survey/schema.h"

namespace ubigraph::survey {

/// Per-choice tabulated counts.
struct ChoiceTally {
  int total = 0;
  int researchers = 0;
  int practitioners = 0;
};

class Population {
 public:
  /// Builds the exact calibrated population. Fails if the paper constraints
  /// were infeasible (which would indicate a data-entry bug).
  static Result<Population> SynthesizeExact(uint64_t seed = 17);

  /// Samples a population of the same shape with independent Bernoulli /
  /// categorical draws at the empirical rates.
  static Population SampleStochastic(uint64_t seed);

  int num_respondents() const { return kParticipants; }
  static bool IsResearcher(int respondent) { return respondent < kResearchers; }

  /// Whether `respondent` selected `choice` of question `question_id`.
  bool Selected(int respondent, const std::string& question_id, int choice) const;

  /// Choice indices selected by a respondent (empty = skipped the question).
  std::vector<int> Selections(int respondent, const std::string& question_id) const;

  /// Counts per choice for a question.
  std::vector<ChoiceTally> Tabulate(const std::string& question_id) const;

  /// Respondents having selected a given choice.
  std::vector<int> WhoSelected(const std::string& question_id, int choice) const;

  /// Verifies every cell against the paper's counts; returns the first
  /// mismatch as an error. Used by tests and SynthesizeExact itself.
  Status VerifyAgainstPaper() const;

 private:
  // membership_[question_id][choice] = 89 bools.
  std::unordered_map<std::string, std::vector<std::vector<bool>>> membership_;

  friend class PopulationBuilder;
};

}  // namespace ubigraph::survey
