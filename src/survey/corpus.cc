#include "survey/corpus.h"

#include <algorithm>

#include "common/random.h"
#include "survey/paper_data.h"

namespace ubigraph::survey {

namespace {

/// Routine-engineering message templates (the "overwhelming majority" of the
/// >6000 reviewed messages). Deliberately free of the miner's keywords.
const char* kRoutineSubjects[] = {
    "Build fails on latest release",
    "How to model a many-to-many relationship",
    "Slow startup after upgrade",
    "Connection refused from client driver",
    "Documentation link broken",
    "How do I paginate results",
    "Out of memory during bulk import",
    "Best practice for indexing properties",
    "Unicode handling in property names",
    "Driver timeout configuration",
    "Backup and restore procedure",
    "Integration with message broker",
};

const char* kRoutineBodies[] = {
    "I followed the installation guide but the service does not start. "
    "Attached the log output. Any hints appreciated.",
    "We are evaluating the product for an internal project and would like to "
    "know the recommended deployment topology.",
    "After upgrading to the latest minor release our nightly job takes twice "
    "as long. Is there a regression or a new configuration knob?",
    "Is there an example of connecting from Python with TLS enabled?",
    "The tutorial in the docs returns an error at step 3. Am I missing a "
    "prerequisite?",
    "What is the recommended way to bulk import a few million records?",
};

/// Challenge plant templates: each mentions the miner's keyword for that
/// challenge category exactly once, in a natural sentence.
struct ChallengePlant {
  const char* label;  // must match Table19 label
  const char* subject;
  const char* body;
};

const ChallengePlant kPlants[] = {
    {"High-degree Vertices", "Skipping supernodes during traversal",
     "Paths that go through a supernode with millions of relationships are "
     "not interesting for us; can the engine skip such high-degree vertices?"},
    {"Hyperedges", "Native hyperedge support",
     "We need a hyperedge between three entities (a family relationship). "
     "Currently we simulate it with a mock vertex; is native support planned?"},
    {"Triggers", "Trigger on vertex insertion",
     "Is there a trigger mechanism to automatically add a property on insert "
     "or back up an edge on update, like RDBMS triggers?"},
    {"Versioning and Historical Analysis", "Querying historical versions",
     "We want versioning of vertices and edges so we can query the graph as "
     "of a past date. What are the options at the application layer?"},
    {"Schema & Constraints", "Enforcing a schema over the graph",
     "Is there a way to define a schema constraint, e.g. the graph must stay "
     "acyclic, or certain vertices must always carry a property?"},
    {"Layout", "Hierarchical layout support",
     "I need to draw an organizational hierarchy with some vertices on top of "
     "others. Does the tool support a hierarchical layout or a tree layout?"},
    {"Customizability", "Customize vertex shapes and colors",
     "How do I customize the shape and color of rendered vertices and edges? "
     "The defaults do not match our corporate style."},
    {"Large-graph Visualization", "Rendering a very large graph",
     "Rendering a large graph with two million vertices freezes the canvas. "
     "Is there a level-of-detail or sampling mode?"},
    {"Dynamic Graph Visualization", "Animating a changing graph",
     "We stream updates and would like to animate additions and deletions of "
     "a dynamic graph over time. Is that possible?"},
    {"Subqueries", "Using a subquery inside another query",
     "I want to use the result of a subquery as a predicate in an outer query "
     "(and ideally treat the subquery result as a graph). How?"},
    {"Querying Across Multiple Graphs", "Query across multiple graphs",
     "Can a traversal that starts in one graph continue across multiple "
     "graphs, analogous to joining tables?"},
    {"Off-the-shelf Algorithms", "Please add an off-the-shelf algorithm",
     "Could you add an off-the-shelf algorithm for weighted k-core? "
     "Composing it from the low-level API is error-prone for us."},
    {"Graph Generators", "More kinds of synthetic graph generator",
     "The synthetic graph generator is great for testing; could it also "
     "produce k-regular graphs and random directed power-law graphs?"},
    {"GPU Support", "Running algorithms on GPU",
     "Are there plans for GPU support? Our iterative computations would "
     "benefit from running on GPU accelerators."},
};

/// Technology classes each challenge category applies to.
bool CategoryMatchesTechnology(const std::string& category,
                               const std::string& technology) {
  if (category == "Graph DBs and RDF Engines") {
    return technology == "Graph Database" || technology == "RDF Engine";
  }
  if (category == "Visualization Software") {
    return technology == "Graph Visualization";
  }
  if (category == "Query Languages") {
    return technology == "Graph Database" || technology == "RDF Engine" ||
           technology == "Query Language";
  }
  if (category == "DGPS and Graph Libraries") {
    return technology == "Distributed Graph Processing Engine" ||
           technology == "Graph Library";
  }
  return false;
}

struct SizePlant {
  const char* unit;     // "vertices" or "edges"
  double lo;            // in billions
  double hi;
  int count;
};

}  // namespace

Result<MessageCorpus> MessageCorpus::Synthesize(uint64_t seed) {
  MessageCorpus corpus;
  Rng rng(seed);

  // 1. Routine skeleton: Table 20 counts per product.
  for (const ProductInfo& product : Products()) {
    auto add_batch = [&](int count, MessageKind kind) {
      for (int i = 0; i < count; ++i) {
        Message m;
        m.id = static_cast<int>(corpus.messages_.size());
        m.product = product.name;
        m.technology = product.technology;
        m.kind = kind;
        m.subject = kRoutineSubjects[rng.NextBounded(
            sizeof(kRoutineSubjects) / sizeof(kRoutineSubjects[0]))];
        m.body = kRoutineBodies[rng.NextBounded(sizeof(kRoutineBodies) /
                                                sizeof(kRoutineBodies[0]))];
        corpus.messages_.push_back(std::move(m));
      }
    };
    if (product.emails > 0) add_batch(product.emails, MessageKind::kEmail);
    if (product.issues > 0) add_batch(product.issues, MessageKind::kIssue);
  }

  // 2. Plant challenges: overwrite routine messages of matching products.
  for (const ChallengeRow& row : Table19MinedChallenges()) {
    const ChallengePlant* plant = nullptr;
    for (const ChallengePlant& p : kPlants) {
      if (std::string(p.label) == row.label) {
        plant = &p;
        break;
      }
    }
    if (plant == nullptr) {
      return Status::Invalid(std::string("no plant template for ") + row.label);
    }
    // Candidate message slots in matching products that are still routine.
    std::vector<size_t> slots;
    for (size_t i = 0; i < corpus.messages_.size(); ++i) {
      const Message& m = corpus.messages_[i];
      if (CategoryMatchesTechnology(row.category, m.technology) &&
          m.body.find("[planted]") == std::string::npos) {
        slots.push_back(i);
      }
    }
    if (static_cast<int>(slots.size()) < row.count) {
      return Status::Invalid(std::string("not enough slots for ") + row.label);
    }
    rng.Shuffle(&slots);
    for (int k = 0; k < row.count; ++k) {
      Message& m = corpus.messages_[slots[k]];
      m.subject = plant->subject;
      m.body = std::string(plant->body) + " [planted]";
    }
  }

  // 3. Plant graph-size mentions (Table 18), in any product's messages.
  std::vector<SizePlant> size_plants;
  {
    const auto& va = Table18aEmailVertexSizes();
    const double vlo[] = {0.1, 1, 10, 100};
    const double vhi[] = {1, 10, 100, 500};
    for (size_t i = 0; i < va.size(); ++i) {
      size_plants.push_back({"vertices", vlo[i], vhi[i], va[i].count});
    }
    const auto& ea = Table18bEmailEdgeSizes();
    const double elo[] = {1, 10, 100, 500};
    const double ehi[] = {10, 100, 500, 900};
    for (size_t i = 0; i < ea.size(); ++i) {
      size_plants.push_back({"edges", elo[i], ehi[i], ea[i].count});
    }
  }
  std::vector<size_t> free_slots;
  for (size_t i = 0; i < corpus.messages_.size(); ++i) {
    if (corpus.messages_[i].body.find("[planted]") == std::string::npos) {
      free_slots.push_back(i);
    }
  }
  rng.Shuffle(&free_slots);
  size_t cursor = 0;
  for (const SizePlant& plant : size_plants) {
    for (int k = 0; k < plant.count; ++k) {
      if (cursor >= free_slots.size()) {
        return Status::Invalid("not enough slots for size mentions");
      }
      Message& m = corpus.messages_[free_slots[cursor++]];
      // A size strictly inside the band, expressed in billions.
      double billions = plant.lo + (plant.hi - plant.lo) *
                                       (0.1 + 0.8 * rng.NextDouble());
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "Our production graph currently has %.2f billion %s and "
                    "keeps growing; loading it takes hours. [planted]",
                    billions, plant.unit);
      m.subject = "Working with a very large graph";
      m.body = buf;
    }
  }
  return corpus;
}

int MessageCorpus::EmailCount(const std::string& product) const {
  int count = 0;
  for (const Message& m : messages_) {
    if (m.product == product && m.kind == MessageKind::kEmail) ++count;
  }
  return count;
}

int MessageCorpus::IssueCount(const std::string& product) const {
  int count = 0;
  for (const Message& m : messages_) {
    if (m.product == product && m.kind == MessageKind::kIssue) ++count;
  }
  return count;
}

}  // namespace ubigraph::survey
