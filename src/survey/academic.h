// The 90-paper academic corpus model (§2.3): each reviewed paper is tagged
// with the entities its datasets represent, the computations it studies, and
// the software it uses/builds. A calibrated corpus reproduces the "A" columns
// of Tables 4, 9, 10, 12, and 13.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace ubigraph::survey {

/// The six conferences reviewed.
enum class Venue { kVldb, kKdd, kIcml, kOsdi, kSc, kSocc };
const char* VenueName(Venue venue);

struct AcademicPaper {
  int id = 0;
  Venue venue = Venue::kVldb;
  std::vector<int> entity_tags;       // indices into Table4Entities()
  std::vector<int> computation_tags;  // indices into Table9Computations()
  std::vector<int> ml_computation_tags;  // Table10a
  std::vector<int> ml_problem_tags;      // Table10b
  std::vector<int> query_software_tags;  // Table12
  std::vector<int> nonquery_software_tags;  // Table13
};

class AcademicCorpus {
 public:
  /// Builds a 90-paper corpus whose tag marginals equal the paper's "A"
  /// columns exactly.
  static Result<AcademicCorpus> SynthesizeExact(uint64_t seed = 29);

  const std::vector<AcademicPaper>& papers() const { return papers_; }

  /// Tag counts in the corpus (same order as the corresponding table).
  std::vector<int> CountEntities() const;
  std::vector<int> CountComputations() const;
  std::vector<int> CountMlComputations() const;
  std::vector<int> CountMlProblems() const;
  std::vector<int> CountQuerySoftware() const;
  std::vector<int> CountNonQuerySoftware() const;

  /// The §2.3 selection rule: a computation tag is offered as a survey choice
  /// only if >= 2 corpus papers study it. Returns the qualifying indices.
  std::vector<int> ComputationChoicesOffered() const;

 private:
  std::vector<AcademicPaper> papers_;
};

}  // namespace ubigraph::survey
