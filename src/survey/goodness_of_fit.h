// Statistical comparison between sampled populations and the paper's
// marginals: chi-square statistic, and a resampling experiment quantifying
// how far stochastic re-runs of the survey drift from the published counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "survey/population.h"

namespace ubigraph::survey {

/// Pearson chi-square statistic sum((obs-exp)^2 / exp) over cells with
/// exp > 0. Cells with exp == 0 contribute obs (a pragmatic penalty).
double ChiSquareStatistic(const std::vector<double>& observed,
                          const std::vector<double>& expected);

/// Result of resampling a question many times.
struct ResampleStats {
  std::string question_id;
  double mean_chi_square = 0.0;
  double mean_abs_deviation = 0.0;  // mean |obs-exp| per cell
  double max_abs_deviation = 0.0;
  uint32_t num_samples = 0;
};

/// Samples `num_samples` stochastic populations and measures per-question
/// deviation of their tabulations from the paper counts.
std::vector<ResampleStats> ResampleExperiment(uint32_t num_samples,
                                              uint64_t seed = 101);

}  // namespace ubigraph::survey
