#include "survey/population.h"

#include <algorithm>

#include "common/random.h"
#include "survey/paper_data.h"

namespace ubigraph::survey {

namespace {

/// Calibration target of one choice. r == -1 means the paper reports only the
/// total for this question (no R/P split).
struct Target {
  int total = 0;
  int r = 0;
  int p = 0;
};

/// Returns the calibration targets of a question, in choice order.
std::vector<Target> TargetsFor(const std::string& id) {
  auto from_rows = [](const std::vector<CountRow>& rows) {
    std::vector<Target> out;
    out.reserve(rows.size());
    for (const CountRow& row : rows) out.push_back({row.total, row.r, row.p});
    return out;
  };
  if (id == "fields") return from_rows(Table2Fields());
  if (id == "org_size") return from_rows(Table3OrgSizes());
  if (id == "entities") return from_rows(Table4Entities());
  if (id == "vertices") return from_rows(Table5aVertices());
  if (id == "edges") return from_rows(Table5bEdges());
  if (id == "bytes") return from_rows(Table5cBytes());
  if (id == "directedness") return from_rows(Table7aDirectedness());
  if (id == "multiplicity") return from_rows(Table7bMultiplicity());
  if (id == "vertex_data_types") return from_rows(Table7cVertexDataTypes());
  if (id == "edge_data_types") return from_rows(Table7cEdgeDataTypes());
  if (id == "dynamism") return from_rows(Table8Dynamism());
  if (id == "computations") return from_rows(Table9Computations());
  if (id == "ml_computations") return from_rows(Table10aMlComputations());
  if (id == "ml_problems") return from_rows(Table10bMlProblems());
  if (id == "traversals") return from_rows(Table11Traversals());
  if (id == "query_software") return from_rows(Table12QuerySoftware());
  if (id == "nonquery_software") return from_rows(Table13NonQuerySoftware());
  if (id == "architectures") return from_rows(Table14Architectures());
  if (id == "challenges") return from_rows(Table15Challenges());
  if (id.rfind("workload_", 0) == 0) {
    for (const WorkloadRow& row : Table16Workload()) {
      if (id == std::string("workload_") + row.task) {
        return {{row.hours_0_5, -1, -1},
                {row.hours_5_10, -1, -1},
                {row.hours_over_10, -1, -1}};
      }
    }
  }
  if (id == "storage_formats") {
    std::vector<Target> out;
    for (const SimpleRow& row : Table17StorageFormats()) {
      out.push_back({row.count, -1, -1});
    }
    return out;
  }
  return {};
}

/// Index ranges of the two groups.
std::vector<int> GroupMembers(bool researchers) {
  std::vector<int> out;
  if (researchers) {
    for (int i = 0; i < kResearchers; ++i) out.push_back(i);
  } else {
    for (int i = kResearchers; i < kParticipants; ++i) out.push_back(i);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Pinned joint constraints (see header). Respondent index conventions:
//   researchers 0..35, practitioners 36..88.
//   >1B-edge participants: R 0..7, P 36..47 (20 total; §3.2).
//   100M-1B-edge participants: R 8..15, P 48..60 (21 total).
//   Distributed-architecture participants chosen so exactly 29 of the 45
//   have >100M edges (§5.2).
// ---------------------------------------------------------------------------

std::vector<int> Range(int lo, int hi) {  // inclusive
  std::vector<int> out;
  for (int i = lo; i <= hi; ++i) out.push_back(i);
  return out;
}

std::vector<int> Concat(std::initializer_list<std::vector<int>> parts) {
  std::vector<int> out;
  for (const auto& part : parts) out.insert(out.end(), part.begin(), part.end());
  return out;
}

}  // namespace

class PopulationBuilder {
 public:
  explicit PopulationBuilder(uint64_t seed) : rng_(seed) {}

  Result<Population> Build() {
    const Questionnaire& questionnaire = Questionnaire::Standard();
    for (const Question& q : questionnaire.questions()) {
      UG_RETURN_NOT_OK(FillQuestion(q));
    }
    UG_RETURN_NOT_OK(pop_.VerifyAgainstPaper());
    return std::move(pop_);
  }

 private:
  using Pins = std::vector<std::vector<int>>;  // per choice: pinned respondents

  Status FillQuestion(const Question& q) {
    std::vector<Target> targets = TargetsFor(q.id);
    if (targets.size() != q.choices.size()) {
      return Status::Invalid("no calibration targets for question " + q.id);
    }
    auto& cells = pop_.membership_[q.id];
    cells.assign(q.choices.size(), std::vector<bool>(kParticipants, false));

    Pins pins(q.choices.size());
    std::vector<int> excluded;  // respondents not answering this question
    Pins pools(q.choices.size());  // per-choice candidate restriction

    if (q.id == "edges") {
      pins[5] = Concat({Range(8, 15), Range(48, 60)});   // 100M - 1B
      pins[6] = Concat({Range(0, 7), Range(36, 47)});    // >1B
    } else if (q.id == "org_size") {
      pins[0] = {0, 1, 36, 37};                          // 1 - 10
      pins[1] = {2, 38, 39, 40};                         // 10 - 100
      pins[2] = {3, 4, 5, 41, 42, 43, 44};               // 100 - 1000
      pins[4] = {6, 7, 45, 46};                          // >10000
      excluded = {47};  // the 20th >1B participant skipped this question
    } else if (q.id == "architectures") {
      pins[2] = Concat({Range(0, 12), Range(16, 19),     // Distributed
                        Range(36, 51), Range(61, 72)});
    } else if (q.id == "fields") {
      // Researchers are exactly those selecting academia and/or industry lab.
      pins[1] = Range(0, 30);    // Research in Academia: 31 researchers
      pins[3] = Range(25, 35);   // Research in Industry Lab: 11 (6 overlap)
    } else if (q.id == "storage_formats") {
      // Only the 25 short-answer respondents contribute (Appendix C).
      for (auto& pool : pools) pool = Range(10, 34);
    } else if (q.id == "entities") {
      // The 7 non-human subcategories (choices 4..10) are refinements of
      // choice 3 ("Non-Human"); pin Non-Human and draw subcategories from it.
      pins[3] = Concat({Range(0, 21), Range(36, 73)});   // 22 R + 38 P
      for (size_t c = 4; c < pools.size(); ++c) pools[c] = pins[3];
    }

    if (q.kind == QuestionKind::kSingleChoice) {
      return FillSingleChoice(q, targets, pins, excluded);
    }
    return FillMultiChoice(q, targets, pins, pools);
  }

  /// Independently fills each choice of a multi-select question.
  Status FillMultiChoice(const Question& q, const std::vector<Target>& targets,
                         const Pins& pins, const Pins& pools) {
    auto& cells = pop_.membership_[q.id];
    for (size_t c = 0; c < targets.size(); ++c) {
      const Target& t = targets[c];
      for (int member : pins[c]) cells[c][member] = true;
      if (t.r >= 0) {
        UG_RETURN_NOT_OK(FillGroup(q.id, &cells[c], pins[c], t.r, true, pools[c]));
        UG_RETURN_NOT_OK(FillGroup(q.id, &cells[c], pins[c], t.p, false, pools[c]));
      } else {
        UG_RETURN_NOT_OK(FillTotal(q.id, &cells[c], pins[c], t.total, pools[c]));
      }
    }
    return Status::OK();
  }

  /// Fills a whole single-select question at once, keeping choices disjoint.
  Status FillSingleChoice(const Question& q, const std::vector<Target>& targets,
                          const Pins& pins, const std::vector<int>& excluded) {
    auto& cells = pop_.membership_[q.id];
    std::vector<bool> taken(kParticipants, false);
    for (int e : excluded) taken[e] = true;
    for (size_t c = 0; c < targets.size(); ++c) {
      for (int member : pins[c]) {
        cells[c][member] = true;
        taken[member] = true;
      }
    }
    // Remaining demand per choice per group; fill from shuffled free members.
    bool grouped = !targets.empty() && targets[0].r >= 0;
    for (int group = 0; group < (grouped ? 2 : 1); ++group) {
      bool researchers = group == 0;
      std::vector<int> free;
      for (int member : grouped ? GroupMembers(researchers)
                                : Range(0, kParticipants - 1)) {
        if (!taken[member]) free.push_back(member);
      }
      rng_.Shuffle(&free);
      size_t cursor = 0;
      for (size_t c = 0; c < targets.size(); ++c) {
        int want = grouped ? (researchers ? targets[c].r : targets[c].p)
                           : targets[c].total;
        int have = 0;
        for (int member : pins[c]) {
          bool is_r = Population::IsResearcher(member);
          if (!grouped || is_r == researchers) ++have;
        }
        int need = want - have;
        if (need < 0) {
          return Status::Invalid("over-pinned choice in question " + q.id);
        }
        for (int k = 0; k < need; ++k) {
          if (cursor >= free.size()) {
            return Status::Invalid("not enough respondents for question " + q.id);
          }
          cells[c][free[cursor++]] = true;
        }
      }
    }
    return Status::OK();
  }

  /// Adds members of one group to a choice until the group target is met.
  Status FillGroup(const std::string& qid, std::vector<bool>* cell,
                   const std::vector<int>& pinned, int target, bool researchers,
                   const std::vector<int>& pool) {
    int have = 0;
    for (int member : pinned) {
      if (Population::IsResearcher(member) == researchers) ++have;
    }
    if (have > target) {
      return Status::Invalid("over-pinned group in question " + qid);
    }
    std::vector<int> candidates;
    for (int member : pool.empty() ? GroupMembers(researchers) : pool) {
      if (Population::IsResearcher(member) == researchers && !(*cell)[member]) {
        candidates.push_back(member);
      }
    }
    int need = target - have;
    if (static_cast<int>(candidates.size()) < need) {
      return Status::Invalid("not enough candidates for question " + qid);
    }
    rng_.Shuffle(&candidates);
    for (int k = 0; k < need; ++k) (*cell)[candidates[k]] = true;
    return Status::OK();
  }

  /// Total-only variant of FillGroup.
  Status FillTotal(const std::string& qid, std::vector<bool>* cell,
                   const std::vector<int>& pinned, int target,
                   const std::vector<int>& pool) {
    int have = static_cast<int>(pinned.size());
    if (have > target) {
      return Status::Invalid("over-pinned choice in question " + qid);
    }
    std::vector<int> candidates;
    for (int member : pool.empty() ? Range(0, kParticipants - 1) : pool) {
      if (!(*cell)[member]) candidates.push_back(member);
    }
    int need = target - have;
    if (static_cast<int>(candidates.size()) < need) {
      return Status::Invalid("not enough candidates for question " + qid);
    }
    rng_.Shuffle(&candidates);
    for (int k = 0; k < need; ++k) (*cell)[candidates[k]] = true;
    return Status::OK();
  }

  Population pop_;
  Rng rng_;
};

Result<Population> Population::SynthesizeExact(uint64_t seed) {
  PopulationBuilder builder(seed);
  return builder.Build();
}

Population Population::SampleStochastic(uint64_t seed) {
  Population pop;
  Rng rng(seed);
  const Questionnaire& questionnaire = Questionnaire::Standard();
  for (const Question& q : questionnaire.questions()) {
    std::vector<Target> targets = TargetsFor(q.id);
    auto& cells = pop.membership_[q.id];
    cells.assign(q.choices.size(), std::vector<bool>(kParticipants, false));
    if (q.kind == QuestionKind::kMultiChoice) {
      for (size_t c = 0; c < targets.size(); ++c) {
        for (int member = 0; member < kParticipants; ++member) {
          bool is_r = IsResearcher(member);
          double prob;
          if (targets[c].r >= 0) {
            prob = is_r ? static_cast<double>(targets[c].r) / kResearchers
                        : static_cast<double>(targets[c].p) / kPractitioners;
          } else {
            prob = static_cast<double>(targets[c].total) / kParticipants;
          }
          if (rng.NextBool(prob)) cells[c][member] = true;
        }
      }
    } else {
      for (int member = 0; member < kParticipants; ++member) {
        bool is_r = IsResearcher(member);
        std::vector<double> weights;
        double used = 0.0;
        for (const Target& t : targets) {
          double prob;
          if (t.r >= 0) {
            prob = is_r ? static_cast<double>(t.r) / kResearchers
                        : static_cast<double>(t.p) / kPractitioners;
          } else {
            prob = static_cast<double>(t.total) / kParticipants;
          }
          weights.push_back(prob);
          used += prob;
        }
        weights.push_back(std::max(0.0, 1.0 - used));  // "skipped"
        size_t pick = rng.SampleWeighted(weights);
        if (pick < targets.size()) cells[pick][member] = true;
      }
    }
  }
  return pop;
}

bool Population::Selected(int respondent, const std::string& question_id,
                          int choice) const {
  auto it = membership_.find(question_id);
  if (it == membership_.end()) return false;
  if (choice < 0 || choice >= static_cast<int>(it->second.size())) return false;
  if (respondent < 0 || respondent >= kParticipants) return false;
  return it->second[choice][respondent];
}

std::vector<int> Population::Selections(int respondent,
                                        const std::string& question_id) const {
  std::vector<int> out;
  auto it = membership_.find(question_id);
  if (it == membership_.end()) return out;
  for (size_t c = 0; c < it->second.size(); ++c) {
    if (it->second[c][respondent]) out.push_back(static_cast<int>(c));
  }
  return out;
}

std::vector<ChoiceTally> Population::Tabulate(const std::string& question_id) const {
  std::vector<ChoiceTally> out;
  auto it = membership_.find(question_id);
  if (it == membership_.end()) return out;
  out.resize(it->second.size());
  for (size_t c = 0; c < it->second.size(); ++c) {
    for (int member = 0; member < kParticipants; ++member) {
      if (!it->second[c][member]) continue;
      ++out[c].total;
      if (IsResearcher(member)) ++out[c].researchers;
      else ++out[c].practitioners;
    }
  }
  return out;
}

std::vector<int> Population::WhoSelected(const std::string& question_id,
                                         int choice) const {
  std::vector<int> out;
  auto it = membership_.find(question_id);
  if (it == membership_.end()) return out;
  if (choice < 0 || choice >= static_cast<int>(it->second.size())) return out;
  for (int member = 0; member < kParticipants; ++member) {
    if (it->second[choice][member]) out.push_back(member);
  }
  return out;
}

Status Population::VerifyAgainstPaper() const {
  const Questionnaire& questionnaire = Questionnaire::Standard();
  for (const Question& q : questionnaire.questions()) {
    std::vector<Target> targets = TargetsFor(q.id);
    std::vector<ChoiceTally> tally = Tabulate(q.id);
    if (tally.size() != targets.size()) {
      return Status::Invalid("question " + q.id + " missing from population");
    }
    for (size_t c = 0; c < targets.size(); ++c) {
      if (tally[c].total != targets[c].total) {
        return Status::Invalid(
            "question " + q.id + " choice '" + q.choices[c] + "': total " +
            std::to_string(tally[c].total) + " != paper " +
            std::to_string(targets[c].total));
      }
      if (targets[c].r >= 0 && (tally[c].researchers != targets[c].r ||
                                tally[c].practitioners != targets[c].p)) {
        return Status::Invalid("question " + q.id + " choice '" + q.choices[c] +
                               "': R/P split mismatch");
      }
    }
  }
  return Status::OK();
}

}  // namespace ubigraph::survey
