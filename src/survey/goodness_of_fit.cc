#include "survey/goodness_of_fit.h"

#include <algorithm>
#include <cmath>

#include "survey/schema.h"
#include "survey/tabulate.h"

namespace ubigraph::survey {

double ChiSquareStatistic(const std::vector<double>& observed,
                          const std::vector<double>& expected) {
  double stat = 0.0;
  for (size_t i = 0; i < observed.size() && i < expected.size(); ++i) {
    if (expected[i] > 0) {
      double d = observed[i] - expected[i];
      stat += d * d / expected[i];
    } else {
      stat += observed[i];
    }
  }
  return stat;
}

std::vector<ResampleStats> ResampleExperiment(uint32_t num_samples,
                                              uint64_t seed) {
  const Questionnaire& questionnaire = Questionnaire::Standard();
  std::vector<ResampleStats> stats;
  for (const Question& q : questionnaire.questions()) {
    ResampleStats s;
    s.question_id = q.id;
    s.num_samples = num_samples;
    stats.push_back(s);
  }

  for (uint32_t sample = 0; sample < num_samples; ++sample) {
    Population pop = Population::SampleStochastic(seed + sample);
    for (size_t qi = 0; qi < questionnaire.questions().size(); ++qi) {
      const Question& q = questionnaire.questions()[qi];
      Comparison cmp = CompareQuestion(pop, q.id, q.id);
      std::vector<double> obs, exp;
      for (const ComparisonRow& row : cmp.rows) {
        obs.push_back(row.repro_total);
        exp.push_back(row.paper_total);
      }
      double chi = ChiSquareStatistic(obs, exp);
      double abs_dev = 0.0, max_dev = 0.0;
      for (size_t i = 0; i < obs.size(); ++i) {
        double d = std::abs(obs[i] - exp[i]);
        abs_dev += d;
        max_dev = std::max(max_dev, d);
      }
      if (!obs.empty()) abs_dev /= static_cast<double>(obs.size());
      ResampleStats& s = stats[qi];
      s.mean_chi_square += chi / num_samples;
      s.mean_abs_deviation += abs_dev / num_samples;
      s.max_abs_deviation = std::max(s.max_abs_deviation, max_dev);
    }
  }
  return stats;
}

}  // namespace ubigraph::survey
