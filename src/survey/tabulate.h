// Renders paper-vs-reproduced comparison tables for the bench binaries and
// produces the survey's summary tables from a Population.
#pragma once

#include <string>
#include <vector>

#include "common/table.h"
#include "survey/paper_data.h"
#include "survey/population.h"

namespace ubigraph::survey {

/// One comparison row: a choice with paper and reproduced counts.
struct ComparisonRow {
  std::string label;
  int paper_total;
  int paper_r;
  int paper_p;
  int repro_total;
  int repro_r;
  int repro_p;
  bool grouped;  // false: R/P columns not applicable
};

struct Comparison {
  std::string title;
  std::vector<ComparisonRow> rows;

  bool AllMatch() const;
  /// "Table 5b — edges" style ASCII rendering with a per-row match mark.
  std::string Render() const;
};

/// Builds the comparison of a question's tabulation against the paper rows.
Comparison CompareQuestion(const Population& population,
                           const std::string& question_id,
                           const std::string& title);

/// Derived-table helpers used by specific bench binaries.

/// Table 6: org-size distribution of respondents with >1B-edge graphs.
std::vector<SimpleRow> DeriveBillionEdgeOrgSizes(const Population& population);

/// §5.2 joint fact: of those selecting "Distributed", how many have >100M
/// edges (union of the two top edge bands).
int DeriveDistributedWithOver100M(const Population& population);

}  // namespace ubigraph::survey
