// Ground-truth data of every table in Sahu et al., "The Ubiquity of Large
// Graphs and Surprising Challenges of Graph Processing" (VLDB 2017).
// These constants are the calibration targets of the population synthesizer
// and the expected values the per-table bench binaries verify against.
//
// Rows whose `reconstructed` flag is set were garbled in our source copy of
// the paper (OCR damage in Table 15 and the Flink row of Table 1) and carry
// a best-effort reconstruction consistent with the surrounding totals; see
// EXPERIMENTS.md for the reasoning.
#pragma once

#include <cstdint>
#include <vector>

namespace ubigraph::survey {

inline constexpr int kParticipants = 89;
inline constexpr int kResearchers = 36;
inline constexpr int kPractitioners = 53;
inline constexpr int kAcademicPapers = 90;

/// A (Total, R, P[, A]) table row. `academic` is -1 for tables without an
/// academic-papers column.
struct CountRow {
  const char* label;
  int total;
  int r;
  int p;
  int academic = -1;
  bool reconstructed = false;
};

/// A single-count row (tables with one numeric column).
struct SimpleRow {
  const char* label;
  int count;
};

/// Table 1 + Table 20: the 22 surveyed products (plus Gephi/Graphviz whose
/// repositories were reviewed). -1 = N/A in the paper.
struct ProductInfo {
  const char* technology;
  const char* name;
  int mailing_list_users;  // Table 1 (-1 for Gephi/Graphviz: not recruited)
  int emails;              // Table 20
  int issues;
  int commits;
  bool reconstructed = false;
};
const std::vector<ProductInfo>& Products();

/// Table 2: participants' fields of work.
const std::vector<CountRow>& Table2Fields();

/// Table 3: organization sizes.
const std::vector<CountRow>& Table3OrgSizes();

/// Table 4: entities represented (includes the academic column).
const std::vector<CountRow>& Table4Entities();

/// Tables 5a/5b/5c: graph sizes.
const std::vector<CountRow>& Table5aVertices();
const std::vector<CountRow>& Table5bEdges();
const std::vector<CountRow>& Table5cBytes();

/// Table 6: org sizes of participants with >1B-edge graphs (sums to 19; one
/// of the 20 such participants did not report an org size).
const std::vector<SimpleRow>& Table6BillionEdgeOrgSizes();

/// Tables 7a/7b: topology.
const std::vector<CountRow>& Table7aDirectedness();
const std::vector<CountRow>& Table7bMultiplicity();

/// Table 7c: data types stored on vertices and on edges.
const std::vector<CountRow>& Table7cVertexDataTypes();
const std::vector<CountRow>& Table7cEdgeDataTypes();

/// Table 8: dynamism.
const std::vector<CountRow>& Table8Dynamism();

/// Table 9: graph computations (with academic column).
const std::vector<CountRow>& Table9Computations();

/// Tables 10a/10b: ML computations and ML-solved problems.
const std::vector<CountRow>& Table10aMlComputations();
const std::vector<CountRow>& Table10bMlProblems();

/// Table 11: traversals.
const std::vector<CountRow>& Table11Traversals();

/// Table 12: software used for querying (with academic column).
const std::vector<CountRow>& Table12QuerySoftware();

/// Table 13: software used for non-query tasks (with academic column).
const std::vector<CountRow>& Table13NonQuerySoftware();

/// Table 14: software architectures. Joint constraint from §5.2: 29 of the
/// 45 "distributed" respondents have graphs over 100M edges.
const std::vector<CountRow>& Table14Architectures();
inline constexpr int kDistributedWithOver100MEdges = 29;

/// Table 15: top challenges (four rows reconstructed; see header comment).
const std::vector<CountRow>& Table15Challenges();

/// Table 16: weekly hours per task.
struct WorkloadRow {
  const char* task;
  int hours_0_5;
  int hours_5_10;
  int hours_over_10;
};
const std::vector<WorkloadRow>& Table16Workload();

/// Table 17: storage formats among multi-format users (25 respondents).
const std::vector<SimpleRow>& Table17StorageFormats();
inline constexpr int kMultiFormatUsers = 33;
inline constexpr int kMultiFormatRespondents = 25;

/// Tables 18a/18b: graph sizes found in reviewed emails and issues.
const std::vector<SimpleRow>& Table18aEmailVertexSizes();
const std::vector<SimpleRow>& Table18bEmailEdgeSizes();

/// Table 19: challenges mined from emails/issues, grouped by software class.
struct ChallengeRow {
  const char* category;  // "Graph DBs and RDF Engines", "Visualization
                         // Software", "Query Languages", "DGPS and Graph
                         // Libraries"
  const char* label;
  int count;
};
const std::vector<ChallengeRow>& Table19MinedChallenges();

/// §2.4: totals of the review.
inline constexpr int kTotalEmailsAndIssuesReviewed = 6000;  // "over 6000"
inline constexpr int kUsefulEmailsAndIssues = 311;

}  // namespace ubigraph::survey
