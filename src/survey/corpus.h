// Synthetic mailing-list / issue-tracker corpus (§2.4): one message per email
// and issue the paper reviewed, with challenge reports and graph-size
// mentions planted at the paper's observed rates. The miner re-discovers them
// (miner.h), reproducing Tables 18, 19, and 20 from raw text.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace ubigraph::survey {

enum class MessageKind { kEmail, kIssue };

struct Message {
  int id = 0;
  std::string product;
  std::string technology;
  MessageKind kind = MessageKind::kEmail;
  std::string subject;
  std::string body;
};

class MessageCorpus {
 public:
  /// Builds the corpus: per-product message counts from Table 20, challenge
  /// mentions at Table 19 rates, size mentions at Table 18 rates.
  static Result<MessageCorpus> Synthesize(uint64_t seed = 7);

  const std::vector<Message>& messages() const { return messages_; }

  int EmailCount(const std::string& product) const;
  int IssueCount(const std::string& product) const;
  size_t size() const { return messages_.size(); }

 private:
  std::vector<Message> messages_;
};

}  // namespace ubigraph::survey
