#include "survey/paper_data.h"

namespace ubigraph::survey {

const std::vector<ProductInfo>& Products() {
  // Mailing-list users from Table 1; emails/issues/commits from Table 20.
  // Flink's per-product user count was garbled in our source; the Table 1
  // DGPS group total (39) minus Giraph (8) and GraphX (7) gives 24.
  static const std::vector<ProductInfo> kProducts = {
      {"Graph Database", "ArangoDB", 40, 140, 466, 5264},
      {"Graph Database", "Cayley", 14, 50, 57, 151},
      {"Graph Database", "DGraph", 33, 175, 558, 760},
      {"Graph Database", "JanusGraph", 32, 225, 308, 411},
      {"Graph Database", "Neo4j", 69, 286, 243, 4467},
      {"Graph Database", "OrientDB", 45, 169, 668, 918},
      {"RDF Engine", "Apache Jena", 87, 307, 126, 471},
      {"RDF Engine", "Sparksee", 5, 8, -1, -1},
      {"RDF Engine", "Virtuoso", 23, 72, 61, 179},
      {"Distributed Graph Processing Engine", "Apache Flink (Gelly)", 24, 34, 68,
       48, /*reconstructed=*/true},
      {"Distributed Graph Processing Engine", "Apache Giraph", 8, 19, 34, 23},
      {"Distributed Graph Processing Engine", "Apache Spark (GraphX)", 7, 23, 28,
       11},
      {"Query Language", "Gremlin", 82, 409, 206, 1285},
      {"Graph Library", "Graph for Scala", 4, 10, 12, 18},
      {"Graph Library", "GraphStream", 8, 18, 26, 7},
      {"Graph Library", "Graphtool", 28, 121, 66, 172},
      {"Graph Library", "NetworKit", 10, 37, 30, 236},
      {"Graph Library", "NetworkX", 27, 78, 148, 171},
      {"Graph Library", "SNAP", 20, 57, 17, 34},
      {"Graph Visualization", "Cytoscape", 93, 388, 264, 8},
      {"Graph Visualization", "Elasticsearch (X-Pack Graph)", 23, 50, 38, -1},
      {"Graph Visualization", "Gephi", -1, -1, 147, 10},
      {"Graph Visualization", "Graphviz", -1, -1, 58, 277},
      {"Graph Representation", "Conceptual Graphs", 6, 30, -1, -1},
  };
  return kProducts;
}

const std::vector<CountRow>& Table2Fields() {
  static const std::vector<CountRow> kRows = {
      {"Information & Technology", 48, 12, 36},
      {"Research in Academia", 31, 31, 0},
      {"Finance", 12, 2, 10},
      {"Research in Industry Lab", 11, 11, 0},
      {"Government", 7, 3, 4},
      {"Healthcare", 5, 3, 2},
      {"Defence & Space", 4, 3, 1},
      {"Pharmaceutical", 3, 0, 3},
      {"Retail & E-Commerce", 3, 0, 3},
      {"Transportation", 2, 0, 2},
      {"Telecommunications", 1, 1, 0},
      {"Insurance", 0, 0, 0},
      {"Other", 5, 2, 3},
  };
  return kRows;
}

const std::vector<CountRow>& Table3OrgSizes() {
  static const std::vector<CountRow> kRows = {
      {"1 - 10", 27, 17, 10},
      {"10 - 100", 23, 6, 17},
      {"100 - 1000", 14, 4, 10},
      {"1000 - 10000", 6, 4, 2},
      {">10000", 15, 4, 11},
  };
  return kRows;
}

const std::vector<CountRow>& Table4Entities() {
  static const std::vector<CountRow> kRows = {
      {"Human", 45, 18, 27, 54},
      {"RDF", 23, 11, 12, 8},
      {"Scientific", 15, 9, 6, 11},
      {"Non-Human", 60, 22, 38, 63},
      {"NH-P (Products)", 13, 1, 12, 2},
      {"NH-B (Business/Financial)", 11, 6, 5, 8},
      {"NH-W (Web)", 4, 2, 2, 30},
      {"NH-G (Geographic)", 7, 4, 3, 11},
      {"NH-D (Digital)", 5, 1, 4, 0},
      {"NH-I (Infrastructure)", 9, 7, 2, 2},
      {"NH-K (Knowledge/Textual)", 11, 6, 5, 3},
  };
  return kRows;
}

const std::vector<CountRow>& Table5aVertices() {
  static const std::vector<CountRow> kRows = {
      {"<10K", 22, 11, 11},      {"10K - 100K", 22, 9, 13},
      {"100K - 1M", 19, 7, 12},  {"1M - 10M", 17, 6, 11},
      {"10M - 100M", 20, 10, 10}, {">100M", 27, 10, 17},
  };
  return kRows;
}

const std::vector<CountRow>& Table5bEdges() {
  static const std::vector<CountRow> kRows = {
      {"<10K", 23, 11, 12},       {"10K - 100K", 22, 9, 13},
      {"100K - 1M", 13, 3, 10},   {"1M - 10M", 9, 5, 4},
      {"10M - 100M", 21, 8, 13},  {"100M - 1B", 21, 8, 13},
      {">1B", 20, 8, 12},
  };
  return kRows;
}

const std::vector<CountRow>& Table5cBytes() {
  static const std::vector<CountRow> kRows = {
      {"<100MB", 23, 12, 11},       {"100MB - 1GB", 19, 9, 10},
      {"1GB - 10GB", 25, 9, 16},    {"10GB - 100GB", 17, 5, 12},
      {"100GB - 1TB", 20, 8, 12},   {">1TB", 17, 5, 12},
  };
  return kRows;
}

const std::vector<SimpleRow>& Table6BillionEdgeOrgSizes() {
  static const std::vector<SimpleRow> kRows = {
      {"1 - 10", 4}, {"10 - 100", 4}, {"100 - 1000", 7}, {">10000", 4},
  };
  return kRows;
}

const std::vector<CountRow>& Table7aDirectedness() {
  static const std::vector<CountRow> kRows = {
      {"Only Directed", 63, 23, 40},
      {"Only Undirected", 11, 6, 5},
      {"Both", 15, 7, 8},
  };
  return kRows;
}

const std::vector<CountRow>& Table7bMultiplicity() {
  static const std::vector<CountRow> kRows = {
      {"Only Simple Graphs", 26, 9, 17},
      {"Only Multigraphs", 50, 20, 30},
      {"Both", 13, 7, 6},
  };
  return kRows;
}

const std::vector<CountRow>& Table7cVertexDataTypes() {
  static const std::vector<CountRow> kRows = {
      {"String", 79, 31, 48},
      {"Numeric", 63, 23, 40},
      {"Date/Timestamp", 56, 19, 37},
      {"Binary", 15, 8, 7},
  };
  return kRows;
}

const std::vector<CountRow>& Table7cEdgeDataTypes() {
  static const std::vector<CountRow> kRows = {
      {"String", 66, 24, 42},
      {"Numeric", 59, 23, 36},
      {"Date/Timestamp", 49, 18, 31},
      {"Binary", 8, 4, 4},
  };
  return kRows;
}

const std::vector<CountRow>& Table8Dynamism() {
  static const std::vector<CountRow> kRows = {
      {"Static", 40, 21, 19},
      {"Dynamic", 55, 22, 33},
      {"Streaming", 18, 9, 9},
  };
  return kRows;
}

const std::vector<CountRow>& Table9Computations() {
  static const std::vector<CountRow> kRows = {
      {"Finding Connected Components", 55, 18, 37, 12},
      {"Neighborhood Queries", 51, 19, 32, 3},
      {"Finding Short / Shortest Paths", 43, 18, 25, 17},
      {"Subgraph Matching", 33, 14, 19, 21},
      {"Ranking & Centrality Scores", 32, 17, 15, 22},
      {"Aggregations", 30, 10, 20, 7},
      {"Reachability Queries", 27, 7, 20, 3},
      {"Graph Partitioning", 25, 13, 12, 5},
      {"Node-similarity", 18, 7, 11, 3},
      {"Finding Frequent or Densest Subgraphs", 11, 7, 4, 2},
      {"Computing Minimum Spanning Tree", 9, 5, 4, 2},
      {"Graph Coloring", 7, 3, 4, 3},
      {"Diameter Estimation", 5, 2, 3, 2},
  };
  return kRows;
}

const std::vector<CountRow>& Table10aMlComputations() {
  static const std::vector<CountRow> kRows = {
      {"Clustering", 42, 22, 20, 15},
      {"Classification", 28, 10, 18, 2},
      {"Regression (Linear / Logistic)", 11, 5, 6, 2},
      {"Graphical Model Inference", 10, 5, 5, 2},
      {"Collaborative Filtering", 9, 4, 5, 2},
      {"Stochastic Gradient Descent", 4, 2, 2, 3},
      {"Alternating Least Squares", 0, 0, 0, 2},
  };
  return kRows;
}

const std::vector<CountRow>& Table10bMlProblems() {
  static const std::vector<CountRow> kRows = {
      {"Community Detection", 31, 15, 16, 5},
      {"Recommendation System", 26, 10, 16, 2},
      {"Link Prediction", 25, 10, 15, 2},
      {"Influence Maximization", 14, 5, 9, 2},
  };
  return kRows;
}

const std::vector<CountRow>& Table11Traversals() {
  static const std::vector<CountRow> kRows = {
      {"Breadth-first-search or variant", 19, 5, 14},
      {"Depth-first-search or variant", 12, 4, 8},
      {"Both", 22, 8, 14},
      {"Neither", 20, 11, 9},
  };
  return kRows;
}

const std::vector<CountRow>& Table12QuerySoftware() {
  static const std::vector<CountRow> kRows = {
      {"Graph Database System", 59, 20, 39, 1},
      {"Apache Hadoop, Spark, Pig, Hive", 29, 11, 18, 2},
      {"Apache Tinkerpop (Gremlin)", 23, 9, 14, 1},
      {"Relational Database Management System", 21, 6, 15, 1},
      {"RDF Engine", 16, 8, 8, 1},
      {"Distributed Graph Processing Systems", 14, 8, 6, 17},
      {"Linear Algebra Library / Software", 8, 6, 2, 3},
      {"In-Memory Graph Processing Library", 7, 5, 2, 2},
  };
  return kRows;
}

const std::vector<CountRow>& Table13NonQuerySoftware() {
  static const std::vector<CountRow> kRows = {
      {"Graph Visualization", 55, 22, 33, 1},
      {"Build / Extract / Transform", 14, 8, 6, 0},
      {"Graph Cleaning", 5, 1, 4, 0},
      {"Synthetic Graph Generator", 4, 3, 1, 13},
      {"Specialized Debugger", 2, 0, 2, 0},
  };
  return kRows;
}

const std::vector<CountRow>& Table14Architectures() {
  static const std::vector<CountRow> kRows = {
      {"Single Machine Serial", 31, 17, 14},
      {"Single Machine Parallel", 35, 21, 14},
      {"Distributed", 45, 17, 28},
  };
  return kRows;
}

const std::vector<CountRow>& Table15Challenges() {
  // The last four rows were OCR-garbled in our source copy; values are
  // reconstructed from the surviving digit runs under the constraints
  // R + P == Total and descending-total table order (see EXPERIMENTS.md).
  static const std::vector<CountRow> kRows = {
      {"Scalability", 45, 20, 25},
      {"Visualization", 39, 17, 22},
      {"Query Languages / Programming APIs", 39, 18, 21},
      {"Faster graph or machine learning algorithms", 35, 19, 16},
      {"Usability", 25, 10, 15},
      {"Benchmarks", 22, 12, 10},
      {"More general purpose graph software", 20, 11, 9, -1, true},
      {"Extract & Transform", 20, 10, 10, -1, true},
      {"Debugging & Testing", 17, 8, 9, -1, true},
      {"Graph Cleaning", 10, 6, 4, -1, true},
  };
  return kRows;
}

const std::vector<WorkloadRow>& Table16Workload() {
  static const std::vector<WorkloadRow> kRows = {
      {"Analytics", 30, 18, 23},
      {"Testing", 40, 12, 20},
      {"Debugging", 37, 18, 15},
      {"Maintenance", 46, 14, 13},
      {"ETL", 44, 14, 10},
      {"Cleaning", 52, 10, 6},
  };
  return kRows;
}

const std::vector<SimpleRow>& Table17StorageFormats() {
  static const std::vector<SimpleRow> kRows = {
      {"Graph Databases", 10},
      {"Relational Databases", 8},
      {"RDF Store", 5},
      {"NoSQL Store (Key-value, HBase)", 5},
      {"XML / JSON", 4},
      {"JGF / GML / GraphML", 4},
      {"CSV / Text files", 3},
      {"Elasticsearch", 3},
      {"Binary", 2},
  };
  return kRows;
}

const std::vector<SimpleRow>& Table18aEmailVertexSizes() {
  static const std::vector<SimpleRow> kRows = {
      {"100M - 1B", 10}, {"1B - 10B", 17}, {"10B - 100B", 1}, {">100B", 2},
  };
  return kRows;
}

const std::vector<SimpleRow>& Table18bEmailEdgeSizes() {
  static const std::vector<SimpleRow> kRows = {
      {"1B - 10B", 42}, {"10B - 100B", 17}, {"100B - 500B", 6}, {">500B", 1},
  };
  return kRows;
}

const std::vector<ChallengeRow>& Table19MinedChallenges() {
  static const std::vector<ChallengeRow> kRows = {
      {"Graph DBs and RDF Engines", "High-degree Vertices", 24},
      {"Graph DBs and RDF Engines", "Hyperedges", 18},
      {"Graph DBs and RDF Engines", "Triggers", 18},
      {"Graph DBs and RDF Engines", "Versioning and Historical Analysis", 14},
      {"Graph DBs and RDF Engines", "Schema & Constraints", 10},
      {"Visualization Software", "Layout", 31},
      {"Visualization Software", "Customizability", 30},
      {"Visualization Software", "Large-graph Visualization", 8},
      {"Visualization Software", "Dynamic Graph Visualization", 4},
      {"Query Languages", "Subqueries", 7},
      {"Query Languages", "Querying Across Multiple Graphs", 6},
      {"DGPS and Graph Libraries", "Off-the-shelf Algorithms", 41},
      {"DGPS and Graph Libraries", "Graph Generators", 7},
      {"DGPS and Graph Libraries", "GPU Support", 3},
  };
  return kRows;
}

}  // namespace ubigraph::survey
