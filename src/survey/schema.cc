#include "survey/schema.h"

#include "survey/paper_data.h"

namespace ubigraph::survey {

namespace {

template <typename Row>
std::vector<std::string> Labels(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.emplace_back(r.label);
  return out;
}

Questionnaire Build() {
  auto add = [](std::vector<Question>* qs, std::string id, std::string text,
                QuestionKind kind, QuestionCategory cat,
                std::vector<std::string> choices) {
    qs->push_back(Question{std::move(id), std::move(text), kind, cat,
                           std::move(choices)});
  };
  std::vector<Question> qs;

  add(&qs, "fields", "Which field(s) do you work in?", QuestionKind::kMultiChoice,
      QuestionCategory::kDemographics, Labels(Table2Fields()));
  add(&qs, "org_size", "How large is your organization?",
      QuestionKind::kSingleChoice, QuestionCategory::kDemographics,
      Labels(Table3OrgSizes()));
  add(&qs, "entities", "What real-world entities do your graphs represent?",
      QuestionKind::kMultiChoice, QuestionCategory::kDatasets,
      Labels(Table4Entities()));
  add(&qs, "vertices", "How many vertices do your graphs have?",
      QuestionKind::kMultiChoice, QuestionCategory::kDatasets,
      Labels(Table5aVertices()));
  add(&qs, "edges", "How many edges do your graphs have?",
      QuestionKind::kMultiChoice, QuestionCategory::kDatasets,
      Labels(Table5bEdges()));
  add(&qs, "bytes", "What is the total uncompressed size of your graphs?",
      QuestionKind::kMultiChoice, QuestionCategory::kDatasets,
      Labels(Table5cBytes()));
  add(&qs, "directedness", "Are your graphs directed or undirected?",
      QuestionKind::kSingleChoice, QuestionCategory::kDatasets,
      Labels(Table7aDirectedness()));
  add(&qs, "multiplicity", "Are your graphs simple graphs or multigraphs?",
      QuestionKind::kSingleChoice, QuestionCategory::kDatasets,
      Labels(Table7bMultiplicity()));
  add(&qs, "vertex_data_types", "What data do you store on vertices?",
      QuestionKind::kMultiChoice, QuestionCategory::kDatasets,
      Labels(Table7cVertexDataTypes()));
  add(&qs, "edge_data_types", "What data do you store on edges?",
      QuestionKind::kMultiChoice, QuestionCategory::kDatasets,
      Labels(Table7cEdgeDataTypes()));
  add(&qs, "dynamism", "How frequently do your graphs change?",
      QuestionKind::kMultiChoice, QuestionCategory::kDatasets,
      Labels(Table8Dynamism()));
  add(&qs, "computations", "Which graph computations do you run?",
      QuestionKind::kMultiChoice, QuestionCategory::kComputations,
      Labels(Table9Computations()));
  add(&qs, "ml_computations",
      "Which machine learning computations do you run on your graphs?",
      QuestionKind::kMultiChoice, QuestionCategory::kComputations,
      Labels(Table10aMlComputations()));
  add(&qs, "ml_problems",
      "Which problems commonly solved with ML do you solve using graphs?",
      QuestionKind::kMultiChoice, QuestionCategory::kComputations,
      Labels(Table10bMlProblems()));
  add(&qs, "traversals", "Which fundamental traversals do you use?",
      QuestionKind::kSingleChoice, QuestionCategory::kComputations,
      Labels(Table11Traversals()));
  add(&qs, "query_software",
      "Which types of graph software do you use to query your graphs?",
      QuestionKind::kMultiChoice, QuestionCategory::kSoftware,
      Labels(Table12QuerySoftware()));
  add(&qs, "nonquery_software",
      "Which types of graph software do you use for non-query tasks?",
      QuestionKind::kMultiChoice, QuestionCategory::kSoftware,
      Labels(Table13NonQuerySoftware()));
  add(&qs, "architectures",
      "What are the architectures of the software you use?",
      QuestionKind::kMultiChoice, QuestionCategory::kSoftware,
      Labels(Table14Architectures()));
  add(&qs, "challenges", "What are your top 3 graph processing challenges?",
      QuestionKind::kMultiChoice, QuestionCategory::kWorkloadAndChallenges,
      Labels(Table15Challenges()));
  for (const WorkloadRow& row : Table16Workload()) {
    add(&qs, std::string("workload_") + row.task,
        std::string("How many hours per week do you spend on ") + row.task + "?",
        QuestionKind::kSingleChoice, QuestionCategory::kWorkloadAndChallenges,
        {"0 - 5 hours", "5 - 10 hours", ">10 hours"});
  }
  add(&qs, "storage_formats",
      "Which storage formats do you keep your graphs in?",
      QuestionKind::kMultiChoice, QuestionCategory::kSoftware,
      Labels(Table17StorageFormats()));

  return Questionnaire(std::move(qs));
}

}  // namespace

const Questionnaire& Questionnaire::Standard() {
  static const Questionnaire kStandard = Build();
  return kStandard;
}

Result<const Question*> Questionnaire::Find(const std::string& id) const {
  for (const Question& q : questions_) {
    if (q.id == id) return &q;
  }
  return Status::NotFound("no question with id '" + id + "'");
}

std::vector<const Question*> Questionnaire::InCategory(
    QuestionCategory category) const {
  std::vector<const Question*> out;
  for (const Question& q : questions_) {
    if (q.category == category) out.push_back(&q);
  }
  return out;
}

}  // namespace ubigraph::survey
