// Versioning and historical analysis — the 4th most-requested graph-database
// capability mined from user emails (Table 19: 14 requests). An append-only
// change log over a property multigraph: every mutation is recorded, Commit()
// seals a version, and any past version can be reconstructed or queried
// ("query the graph as of a past date", §6.2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/edge_list.h"
#include "graph/property_graph.h"

namespace ubigraph {

using VersionId = uint32_t;

/// A property graph with full history. Mutations accumulate in the working
/// version; Commit() makes them immutable under a new VersionId. Version 0 is
/// the empty graph.
class VersionedGraph {
 public:
  VersionedGraph() = default;

  // ---- mutations (apply to the working version) ----
  VertexId AddVertex(std::string_view label);
  Result<EdgeId> AddEdge(VertexId src, VertexId dst, std::string_view type);
  Status RemoveEdge(EdgeId edge);
  Status SetVertexProperty(VertexId v, std::string_view key, PropertyValue value);

  /// Seals the working state as a new version; returns its id.
  VersionId Commit();

  /// Latest committed version (0 = nothing committed yet).
  VersionId current_version() const { return committed_; }
  /// Number of change records (all versions + working).
  size_t log_size() const { return log_.size(); }

  // ---- historical queries ----

  /// True if the edge existed at `version`.
  Result<bool> EdgeExistedAt(EdgeId edge, VersionId version) const;

  /// The value of a vertex property as of `version` (monostate if unset).
  Result<PropertyValue> VertexPropertyAt(VertexId v, std::string_view key,
                                         VersionId version) const;

  /// Number of vertices that existed at `version`.
  Result<VertexId> NumVerticesAt(VersionId version) const;

  /// Live edges at `version` as an edge list (for running analytics on a
  /// historical snapshot).
  Result<EdgeList> SnapshotAt(VersionId version) const;

  /// Materializes the full property graph at `version`.
  Result<PropertyGraph> MaterializeAt(VersionId version) const;

  struct Diff {
    VertexId vertices_added = 0;
    uint64_t edges_added = 0;
    uint64_t edges_removed = 0;
    uint64_t properties_changed = 0;
  };
  /// Change summary between two committed versions (from <= to).
  Result<Diff> DiffVersions(VersionId from, VersionId to) const;

 private:
  enum class ChangeKind : uint8_t {
    kAddVertex,
    kAddEdge,
    kRemoveEdge,
    kSetVertexProperty,
  };
  struct Change {
    ChangeKind kind;
    VersionId version;  // version this change becomes visible in
    // AddVertex: vertex = new id, text = label.
    // AddEdge: edge = new id, vertex = src, other = dst, text = type.
    // RemoveEdge: edge.
    // SetVertexProperty: vertex, text = key, value.
    VertexId vertex = 0;
    VertexId other = 0;
    EdgeId edge = 0;
    std::string text;
    PropertyValue value;
  };

  Status CheckVersion(VersionId version) const;

  std::vector<Change> log_;
  VersionId committed_ = 0;
  VertexId next_vertex_ = 0;
  EdgeId next_edge_ = 0;
  // Live (not yet removed) edges in the working version, for validation.
  std::vector<bool> edge_live_;
  std::vector<std::pair<VertexId, VertexId>> edge_endpoints_;
};

}  // namespace ubigraph
