#include "graph/edge_list.h"

#include <algorithm>

namespace ubigraph {

void EdgeList::Add(VertexId src, VertexId dst, double weight) {
  edges_.push_back(Edge{src, dst, weight});
  VertexId hi = std::max(src, dst);
  if (hi >= num_vertices_) num_vertices_ = hi + 1;
}

void EdgeList::Sort() {
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    if (a.src != b.src) return a.src < b.src;
    if (a.dst != b.dst) return a.dst < b.dst;
    return a.weight < b.weight;
  });
}

void EdgeList::Deduplicate() {
  Sort();
  auto last = std::unique(edges_.begin(), edges_.end(),
                          [](const Edge& a, const Edge& b) {
                            return a.src == b.src && a.dst == b.dst;
                          });
  edges_.erase(last, edges_.end());
}

void EdgeList::RemoveSelfLoops() {
  auto last = std::remove_if(edges_.begin(), edges_.end(),
                             [](const Edge& e) { return e.src == e.dst; });
  edges_.erase(last, edges_.end());
}

EdgeList EdgeList::Reversed() const {
  EdgeList out(num_vertices_);
  out.Reserve(edges_.size());
  for (const Edge& e : edges_) out.Add(e.dst, e.src, e.weight);
  return out;
}

EdgeList EdgeList::Symmetrized() const {
  EdgeList out(num_vertices_);
  out.Reserve(edges_.size() * 2);
  for (const Edge& e : edges_) {
    out.Add(e.src, e.dst, e.weight);
    if (e.src != e.dst) out.Add(e.dst, e.src, e.weight);
  }
  return out;
}

Status EdgeList::Validate() const {
  for (const Edge& e : edges_) {
    if (e.src >= num_vertices_ || e.dst >= num_vertices_) {
      return Status::Invalid("edge (" + std::to_string(e.src) + ", " +
                             std::to_string(e.dst) + ") exceeds vertex count " +
                             std::to_string(num_vertices_));
    }
  }
  return Status::OK();
}

}  // namespace ubigraph
