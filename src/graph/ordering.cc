#include "graph/ordering.h"

#include <algorithm>
#include <numeric>

namespace ubigraph {

namespace {

/// Degree used by all passes: out-degree, plus in-degree when a directed
/// graph carries the reverse index (hubs of either direction are hot).
uint64_t HotDegree(const CsrGraph& g, VertexId v) {
  uint64_t d = g.OutDegree(v);
  if (g.directed() && g.has_in_edges()) d += g.InDegree(v);
  return d;
}

}  // namespace

const char* OrderingKindName(OrderingKind kind) {
  switch (kind) {
    case OrderingKind::kOriginal: return "original";
    case OrderingKind::kDegreeDescending: return "hub";
    case OrderingKind::kRcm: return "rcm";
    case OrderingKind::kHubCluster: return "hub_cluster";
  }
  return "unknown";
}

std::vector<VertexId> MakeOrdering(const CsrGraph& g, OrderingKind kind) {
  switch (kind) {
    case OrderingKind::kOriginal: {
      std::vector<VertexId> perm(g.num_vertices());
      std::iota(perm.begin(), perm.end(), 0u);
      return perm;
    }
    case OrderingKind::kDegreeDescending: return DegreeDescendingOrder(g);
    case OrderingKind::kRcm: return RcmOrder(g);
    case OrderingKind::kHubCluster: return HubClusterOrder(g);
  }
  return {};
}

std::vector<VertexId> DegreeDescendingOrder(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> by_rank(n);
  std::iota(by_rank.begin(), by_rank.end(), 0u);
  std::sort(by_rank.begin(), by_rank.end(), [&](VertexId a, VertexId b) {
    const uint64_t da = HotDegree(g, a), db = HotDegree(g, b);
    if (da != db) return da > db;
    return a < b;
  });
  // by_rank is new->old; callers want old->new.
  std::vector<VertexId> perm(n);
  for (VertexId nv = 0; nv < n; ++nv) perm[by_rank[nv]] = nv;
  return perm;
}

std::vector<VertexId> RcmOrder(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> order;  // new->old, Cuthill-McKee before reversal
  order.reserve(n);
  std::vector<bool> visited(n, false);
  std::vector<VertexId> scratch;

  // Roots in ascending-degree order so each component starts from a
  // pseudo-peripheral (minimum-degree) vertex.
  std::vector<VertexId> roots(n);
  std::iota(roots.begin(), roots.end(), 0u);
  std::sort(roots.begin(), roots.end(), [&](VertexId a, VertexId b) {
    const uint64_t da = HotDegree(g, a), db = HotDegree(g, b);
    if (da != db) return da < db;
    return a < b;
  });

  for (VertexId root : roots) {
    if (visited[root]) continue;
    visited[root] = true;
    size_t head = order.size();
    order.push_back(root);
    while (head < order.size()) {
      VertexId u = order[head++];
      scratch.clear();
      auto take = [&](VertexId v) {
        if (!visited[v]) {
          visited[v] = true;
          scratch.push_back(v);
        }
      };
      for (VertexId v : g.OutNeighbors(u)) take(v);
      if (g.directed() && g.has_in_edges()) {
        for (VertexId v : g.InNeighbors(u)) take(v);
      }
      std::sort(scratch.begin(), scratch.end(), [&](VertexId a, VertexId b) {
        const uint64_t da = HotDegree(g, a), db = HotDegree(g, b);
        if (da != db) return da < db;
        return a < b;
      });
      order.insert(order.end(), scratch.begin(), scratch.end());
    }
  }
  std::reverse(order.begin(), order.end());
  std::vector<VertexId> perm(n);
  for (VertexId nv = 0; nv < n; ++nv) perm[order[nv]] = nv;
  return perm;
}

std::vector<VertexId> HubClusterOrder(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  // Bucket b holds degrees in [2^(b-1), 2^b); bucket 0 holds isolated
  // vertices. Two counting passes: bucket sizes, then a stable scatter that
  // keeps ascending id order within each bucket.
  constexpr unsigned kBuckets = 65;
  auto bucket_of = [&](VertexId v) {
    const uint64_t d = HotDegree(g, v);
    return d == 0 ? 0u : 64u - static_cast<unsigned>(__builtin_clzll(d)) + 1u;
  };
  std::vector<uint64_t> start(kBuckets + 1, 0);
  for (VertexId v = 0; v < n; ++v) ++start[bucket_of(v) + 1];
  // Hot-to-cold: the highest-degree bucket gets the lowest new ids.
  std::vector<uint64_t> base(kBuckets, 0);
  uint64_t run = 0;
  for (unsigned b = kBuckets; b-- > 0;) {
    base[b] = run;
    run += start[b + 1];
  }
  std::vector<VertexId> perm(n);
  for (VertexId v = 0; v < n; ++v) {
    perm[v] = static_cast<VertexId>(base[bucket_of(v)]++);
  }
  return perm;
}

Status ValidatePermutation(std::span<const VertexId> perm, VertexId n) {
  if (perm.size() != n) {
    return Status::Invalid("permutation size does not match vertex count");
  }
  std::vector<bool> seen(n, false);
  for (VertexId target : perm) {
    if (target >= n || seen[target]) {
      return Status::Invalid("permutation is not a bijection on [0, n)");
    }
    seen[target] = true;
  }
  return Status::OK();
}

std::vector<VertexId> InversePermutation(std::span<const VertexId> perm) {
  std::vector<VertexId> inv(perm.size());
  for (size_t v = 0; v < perm.size(); ++v) inv[perm[v]] = static_cast<VertexId>(v);
  return inv;
}

}  // namespace ubigraph
