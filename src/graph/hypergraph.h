// Hyperedges — the 2nd most-requested graph-database capability (Table 19:
// 18 requests): edges joining more than two vertices, e.g. "a family
// relationship between three individuals" (§6.2). Provides a native incidence
// structure plus the two standard reductions to ordinary graphs, including
// the "hyperedge vertex" simulation the mailing lists describe.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"
#include "graph/edge_list.h"

namespace ubigraph {

using HyperedgeId = uint64_t;

/// An undirected hypergraph stored as incidence lists.
class Hypergraph {
 public:
  explicit Hypergraph(VertexId num_vertices = 0) : vertex_edges_(num_vertices) {}

  VertexId AddVertex();

  /// Adds a hyperedge over >= 2 distinct members (duplicates rejected).
  Result<HyperedgeId> AddHyperedge(std::span<const VertexId> members,
                                   double weight = 1.0);
  Result<HyperedgeId> AddHyperedge(std::initializer_list<VertexId> members,
                                   double weight = 1.0) {
    return AddHyperedge(std::span<const VertexId>(members.begin(), members.size()),
                        weight);
  }

  VertexId num_vertices() const { return static_cast<VertexId>(vertex_edges_.size()); }
  size_t num_hyperedges() const { return edges_.size(); }

  /// Members of a hyperedge (sorted).
  std::span<const VertexId> Members(HyperedgeId e) const {
    return edges_[e].members;
  }
  double Weight(HyperedgeId e) const { return edges_[e].weight; }

  /// Hyperedges incident to a vertex.
  std::span<const HyperedgeId> IncidentEdges(VertexId v) const {
    return vertex_edges_[v];
  }
  /// Number of hyperedges containing v.
  uint64_t Degree(VertexId v) const { return vertex_edges_[v].size(); }
  /// Largest hyperedge cardinality (0 when empty).
  size_t MaxEdgeSize() const;

  /// Vertices sharing at least one hyperedge with v (sorted, v excluded).
  std::vector<VertexId> Neighbors(VertexId v) const;

  /// Clique expansion: every hyperedge becomes a clique over its members.
  /// Each pairwise edge inherits weight/(k-1) (so a k-edge's total stays ~k/2
  /// per member, the standard normalization). Undirected CSR.
  Result<CsrGraph> CliqueExpansion() const;

  /// Star expansion — the §6.2 "hyperedge vertex" simulation: each hyperedge
  /// becomes a new mock vertex linked to every member. Returns the bipartite
  /// graph; mock vertex for hyperedge e has id num_vertices() + e.
  Result<CsrGraph> StarExpansion() const;

  /// Connected components of the hypergraph (two vertices connected iff
  /// linked through a chain of shared hyperedges). label per vertex.
  std::vector<uint32_t> ConnectedComponents(uint32_t* num_components) const;

 private:
  struct Hyperedge {
    std::vector<VertexId> members;  // sorted, distinct
    double weight = 1.0;
  };
  std::vector<Hyperedge> edges_;
  std::vector<std::vector<HyperedgeId>> vertex_edges_;
};

}  // namespace ubigraph
