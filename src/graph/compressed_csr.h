// CompressedCsrGraph: the same CSR topology as CsrGraph with the adjacency
// arrays delta-gap + varint (LEB128) encoded. Each vertex's sorted neighbor
// list is stored as varint(first) followed by varint(gap) per subsequent
// neighbor; a block-decode iterator expands 16 ids at a time into a small
// on-stack buffer, so traversal stays a forward scan over a byte stream that
// is typically half the size of the plain 4-byte-per-target array. Kernels
// accept it through the NeighborRangeGraph concept (graph_traits.h), so the
// traversal / PageRank / CC code is shared with CsrGraph, not duplicated.
//
// Format per index (out-edges, plus in-edges when the source graph carried
// them):
//   byte_offsets : uint64[V+1]  start of each vertex's encoded stream
//   degrees      : uint32[V]    neighbor count (the decoder's loop bound)
//   bytes        : uint8[]      LEB128 varints, little-endian 7-bit groups,
//                               high bit = continuation
// Gaps are non-negative because encoding requires neighbors_sorted();
// duplicate targets (multigraphs) encode as gap 0. Edge weights are not
// carried — weighted kernels stay on CsrGraph.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <span>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"

namespace ubigraph {

/// Appends x as a LEB128 varint (little-endian 7-bit groups, high bit =
/// continuation) — the byte coding shared with the sharded segment files
/// (shard/segment.cc).
void AppendVarint(std::vector<uint8_t>& out, uint64_t x);

/// Gap-encodes one ascending neighbor row: varint(first id), then varint(gap)
/// per subsequent id. Duplicates encode as gap 0; descending input is a
/// precondition violation (the unsigned gap would wrap).
void AppendGapEncodedRow(std::vector<uint8_t>& out,
                         std::span<const VertexId> sorted_targets);

class CompressedCsrGraph {
 public:
  /// Ids decoded per refill. One cache line of output keeps the decode loop
  /// branch-predictable without a scratch buffer large enough to matter.
  static constexpr uint32_t kDecodeBlock = 16;

  /// Input iterator over one vertex's encoded neighbor stream. Equality is
  /// exhaustion-based (all iterators at end compare equal; a
  /// default-constructed iterator is the universal end), which is all
  /// range-for and the kernels' early-break loops need.
  class NeighborIterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = VertexId;
    using difference_type = std::ptrdiff_t;

    NeighborIterator() = default;
    NeighborIterator(const uint8_t* p, uint32_t degree)
        : p_(p), remaining_(degree) {
      Refill();
    }

    VertexId operator*() const { return buf_[pos_]; }
    NeighborIterator& operator++() {
      if (++pos_ == filled_) Refill();
      return *this;
    }
    void operator++(int) { ++*this; }

    friend bool operator==(const NeighborIterator& a, const NeighborIterator& b) {
      return a.Exhausted() && b.Exhausted();
    }
    friend bool operator!=(const NeighborIterator& a, const NeighborIterator& b) {
      return !(a == b);
    }

   private:
    bool Exhausted() const { return pos_ == filled_ && remaining_ == 0; }
    void Refill();

    const uint8_t* p_ = nullptr;
    uint32_t remaining_ = 0;
    uint32_t pos_ = 0;
    uint32_t filled_ = 0;
    VertexId prev_ = 0;
    VertexId buf_[kDecodeBlock];
  };

  /// One vertex's neighbors as a sized forward range of decoded ids.
  class NeighborRange {
   public:
    NeighborRange(const uint8_t* bytes, uint32_t degree)
        : bytes_(bytes), degree_(degree) {}
    NeighborIterator begin() const { return {bytes_, degree_}; }
    NeighborIterator end() const { return {}; }
    uint64_t size() const { return degree_; }
    bool empty() const { return degree_ == 0; }

   private:
    const uint8_t* bytes_;
    uint32_t degree_;
  };

  /// Encodes `g`'s adjacency (and its in-edge index when present). Fails with
  /// InvalidArgument unless g.neighbors_sorted() — gap encoding needs
  /// ascending targets.
  static Result<CompressedCsrGraph> FromCsr(const CsrGraph& g);

  VertexId num_vertices() const { return num_vertices_; }
  uint64_t num_edges() const { return num_edges_; }
  bool directed() const { return directed_; }
  bool has_in_edges() const {
    return directed_ ? !in_.byte_offsets.empty() : true;
  }

  uint64_t OutDegree(VertexId v) const { return out_.degrees[v]; }
  NeighborRange OutNeighbors(VertexId v) const {
    return {out_.bytes.data() + out_.byte_offsets[v], out_.degrees[v]};
  }
  uint64_t InDegree(VertexId v) const {
    if (!directed_) return OutDegree(v);
    assert(!in_.byte_offsets.empty() && "source graph had no in-edge index");
    return in_.degrees[v];
  }
  NeighborRange InNeighbors(VertexId v) const {
    if (!directed_) return OutNeighbors(v);
    assert(!in_.byte_offsets.empty() && "source graph had no in-edge index");
    return {in_.bytes.data() + in_.byte_offsets[v], in_.degrees[v]};
  }
  Status RequireInEdges(std::string_view caller) const;

  /// Encoded out-adjacency payload — the number to compare against plain
  /// CSR's 4 bytes per stored edge (sizeof(VertexId) * num_edges()).
  uint64_t adjacency_bytes() const { return out_.bytes.size(); }
  double AdjacencyBytesPerEdge() const {
    return num_edges_ == 0
               ? 0.0
               : static_cast<double>(out_.bytes.size()) /
                     static_cast<double>(num_edges_);
  }
  /// Everything this object stores (payload + byte offsets + degree array,
  /// both indexes) — the honest total-footprint number for the bench output.
  uint64_t index_bytes() const;

 private:
  struct Index {
    std::vector<uint64_t> byte_offsets;  // size V+1
    std::vector<uint32_t> degrees;       // size V
    std::vector<uint8_t> bytes;
  };
  static Index Encode(const std::vector<uint64_t>& offsets,
                      const std::vector<VertexId>& targets, VertexId n);

  VertexId num_vertices_ = 0;
  uint64_t num_edges_ = 0;
  bool directed_ = true;
  Index out_;
  Index in_;  // only populated for directed graphs built with in-edges
};

// The per-block decode is the traversal hot loop, so it lives in the header.
inline void CompressedCsrGraph::NeighborIterator::Refill() {
  pos_ = 0;
  const uint32_t take = remaining_ < kDecodeBlock ? remaining_ : kDecodeBlock;
  filled_ = take;
  remaining_ -= take;
  const uint8_t* p = p_;
  VertexId prev = prev_;
  if constexpr (std::endian::native == std::endian::little) {
    if (take == kDecodeBlock) {
      // A full block still pending means at least 16 encoded bytes remain
      // (every id costs >= 1 byte), so a 16-byte probe never overruns the
      // stream. When no probed byte carries a continuation bit — the common
      // case on sorted power-law rows, where most gaps are < 128 — the whole
      // block is single-byte gaps and decodes as two unrolled word scans
      // with no per-byte branches.
      uint64_t w0, w1;
      std::memcpy(&w0, p, sizeof w0);
      std::memcpy(&w1, p + sizeof w0, sizeof w1);
      if (((w0 | w1) & 0x8080808080808080ull) == 0) {
        for (uint32_t i = 0; i < 8; ++i) {
          prev += static_cast<VertexId>((w0 >> (8 * i)) & 0x7f);
          buf_[i] = prev;
        }
        for (uint32_t i = 0; i < 8; ++i) {
          prev += static_cast<VertexId>((w1 >> (8 * i)) & 0x7f);
          buf_[8 + i] = prev;
        }
        p_ = p + kDecodeBlock;
        prev_ = prev;
        return;
      }
    }
  }
  for (uint32_t i = 0; i < take; ++i) {
    // Even on mixed blocks, single-byte gaps dominate; peel that case so the
    // multi-byte accumulation loop only runs when a continuation bit is set.
    uint8_t byte = *p++;
    uint64_t gap = byte & 0x7f;
    if (byte & 0x80) {
      unsigned shift = 7;
      do {
        byte = *p++;
        gap |= static_cast<uint64_t>(byte & 0x7f) << shift;
        shift += 7;
      } while (byte & 0x80);
    }
    prev += static_cast<VertexId>(gap);
    buf_[i] = prev;
  }
  p_ = p;
  prev_ = prev;
}

}  // namespace ubigraph
