// CsrGraph: the immutable, cache-friendly compressed-sparse-row graph that all
// analytics in src/algorithms and src/ml run on.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "graph/edge_list.h"

namespace ubigraph {

/// Options controlling CSR construction.
struct CsrOptions {
  /// Undirected graphs symmetrize the edge list; OutNeighbors then yields the
  /// full neighborhood and InNeighbors aliases it.
  bool directed = true;
  /// Build the reverse (in-edge) index for directed graphs. Required by
  /// InNeighbors / InDegree; costs one extra pass and |E| extra memory.
  bool build_in_edges = false;
  /// Sort each adjacency list (enables binary-searched HasEdge and merge-based
  /// triangle counting).
  bool sort_neighbors = true;
  /// Drop duplicate (src, dst) pairs. Multigraph analytics keep them.
  bool deduplicate = false;
  /// Drop self-loops.
  bool remove_self_loops = false;
  /// Construction parallelism: 0 = hardware_concurrency, 1 = the exact
  /// serial path (default), >= 2 = that many workers. Parallel builds run
  /// degree counting, the offset prefix sum, the edge scatter, and per-vertex
  /// neighbor sorts concurrently; the resulting arrays are bitwise-identical
  /// to the serial build at any thread count (the scatter is stable when
  /// neighbors stay unsorted, and sorting canonicalizes order otherwise).
  uint32_t num_threads = 1;
  /// Below this edge count (or on single-core hosts) a parallel build request
  /// silently takes the serial path: pool startup plus the atomic scatter
  /// costs more than it saves on small inputs, and oversubscribed workers on
  /// a 1-core box are strictly slower. 0 forces the parallel path regardless
  /// (differential tests and build benchmarks rely on this). The path taken
  /// is recorded in the obs registry as csr.build.path.{serial,parallel}.
  uint64_t min_parallel_edges = 1u << 17;
};

/// Options controlling CsrGraph::Permute.
struct PermuteOptions {
  /// Same convention as CsrOptions::num_threads.
  uint32_t num_threads = 1;
  /// Re-sort each relabeled adjacency list by new vertex id. Off by default:
  /// the stable relabel preserves each vertex's relative neighbor order, so
  /// gather kernels (pull PageRank) visit neighbors in the same association
  /// order as on the original graph and produce bitwise-identical floats.
  bool sort_neighbors = false;
};

struct PermutedCsr;

/// Immutable CSR graph with optional edge weights and optional in-edge index.
class CsrGraph {
 public:
  /// Default-constructs an empty graph (0 vertices). Useful as a member that
  /// is later assigned from FromEdges().
  CsrGraph() : offsets_(1, 0) {}

  /// Builds from an edge list (copied/moved). Fails if the list is invalid.
  static Result<CsrGraph> FromEdges(EdgeList edges, CsrOptions options = {});

  /// Convenience: directed graph from raw pairs.
  static Result<CsrGraph> FromPairs(VertexId num_vertices,
                                    const std::vector<std::pair<VertexId, VertexId>>& pairs,
                                    CsrOptions options = {});

  VertexId num_vertices() const { return num_vertices_; }
  /// Stored (post-symmetrization) edge count: for undirected graphs this is
  /// the number of directed arcs, i.e. 2x the logical edge count minus loops.
  uint64_t num_edges() const { return dst_.size(); }
  bool directed() const { return directed_; }
  bool has_in_edges() const { return directed_ ? !in_offsets_.empty() : true; }
  bool neighbors_sorted() const { return sorted_; }

  uint64_t OutDegree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }
  std::span<const VertexId> OutNeighbors(VertexId v) const {
    return {dst_.data() + offsets_[v], dst_.data() + offsets_[v + 1]};
  }
  std::span<const double> OutWeights(VertexId v) const {
    return {weights_.data() + offsets_[v], weights_.data() + offsets_[v + 1]};
  }

  /// In-edge accessors. For undirected graphs these alias the out index; for
  /// directed graphs build_in_edges must have been set.
  uint64_t InDegree(VertexId v) const;
  std::span<const VertexId> InNeighbors(VertexId v) const;

  /// OK when the in-edge accessors are usable (undirected, or directed with
  /// the reverse index built); otherwise a clear InvalidArgument naming the
  /// fix. Kernels that gather over InNeighbors call this up front instead of
  /// tripping the accessor assert (or, worse, reading empty spans in release
  /// builds).
  Status RequireInEdges(std::string_view caller) const;

  /// O(log degree) when neighbors are sorted, O(degree) otherwise.
  bool HasEdge(VertexId src, VertexId dst) const;

  /// Total degree histogram statistics.
  uint64_t MaxOutDegree() const;

  /// Sum of all out-weights of v.
  double OutWeightSum(VertexId v) const;

  /// Reconstructs the (possibly symmetrized) edge list.
  EdgeList ToEdgeList() const;

  /// Relabels the graph under `perm` (perm[old_id] = new_id, must be a
  /// bijection on [0, V)): vertex old_id becomes new vertex perm[old_id] and
  /// every stored target is rewritten through perm. The relabel is stable —
  /// each vertex's neighbors keep their relative order — so unless
  /// PermuteOptions::sort_neighbors re-sorts them, neighbors_sorted() is
  /// false on the result. Weights ride along; the in-edge index is rebuilt
  /// when present. Runs the per-vertex copy loop in parallel.
  Result<PermutedCsr> Permute(std::span<const VertexId> perm,
                              PermuteOptions options = {}) const;

  const std::vector<uint64_t>& offsets() const { return offsets_; }
  const std::vector<VertexId>& targets() const { return dst_; }
  const std::vector<double>& weights() const { return weights_; }

 private:
  VertexId num_vertices_ = 0;
  bool directed_ = true;
  bool sorted_ = false;
  std::vector<uint64_t> offsets_;      // size V+1
  std::vector<VertexId> dst_;          // size E
  std::vector<double> weights_;        // size E
  std::vector<uint64_t> in_offsets_;   // size V+1 if built
  std::vector<VertexId> in_src_;       // size E if built
};

/// Result of a Permute call: the relabeled graph plus new_to_old, the inverse
/// of the applied permutation (new_to_old[new_id] = old_id), which callers
/// use to translate per-vertex kernel output back to original ids.
struct PermutedCsr {
  CsrGraph graph;
  std::vector<VertexId> new_to_old;
};

}  // namespace ubigraph
