// The neighbor-range concept that lets CsrGraph and CompressedCsrGraph share
// kernel code. A kernel templated on NeighborRangeGraph only assumes what the
// concept states: sized vertex/edge counts, directedness, degrees, and
// neighbor accessors returning something range-for can iterate (span for the
// plain CSR, a block-decode range for the compressed one). Kernels that need
// more — weights, HasEdge, raw offset arrays — stay CsrGraph-only.
#pragma once

#include <concepts>
#include <cstdint>
#include <ranges>
#include <string_view>

#include "common/result.h"
#include "graph/edge_list.h"

namespace ubigraph {

template <typename G>
concept NeighborRangeGraph = requires(const G& g, VertexId v,
                                      std::string_view caller) {
  { g.num_vertices() } -> std::convertible_to<VertexId>;
  { g.num_edges() } -> std::convertible_to<uint64_t>;
  { g.directed() } -> std::convertible_to<bool>;
  { g.has_in_edges() } -> std::convertible_to<bool>;
  { g.OutDegree(v) } -> std::convertible_to<uint64_t>;
  { g.InDegree(v) } -> std::convertible_to<uint64_t>;
  { g.RequireInEdges(caller) } -> std::same_as<Status>;
  requires std::ranges::input_range<decltype(g.OutNeighbors(v))>;
  requires std::ranges::input_range<decltype(g.InNeighbors(v))>;
  requires std::convertible_to<
      std::ranges::range_value_t<decltype(g.OutNeighbors(v))>, VertexId>;
  requires std::convertible_to<
      std::ranges::range_value_t<decltype(g.InNeighbors(v))>, VertexId>;
};

/// Extension for weighted kernels (delta-stepping SSSP): the graph also
/// exposes per-vertex edge weights positionally parallel to OutNeighbors.
/// Only CsrGraph models this today — the compressed CSR stores no weights —
/// but reordered graphs compose for free because Permute returns a CsrGraph.
template <typename G>
concept WeightedNeighborRangeGraph =
    NeighborRangeGraph<G> && requires(const G& g, VertexId v) {
      requires std::ranges::random_access_range<decltype(g.OutWeights(v))>;
      requires std::convertible_to<
          std::ranges::range_value_t<decltype(g.OutWeights(v))>, double>;
    };

}  // namespace ubigraph
