#include "graph/graph_schema.h"

#include <map>

#include "algorithms/traversal.h"
#include "graph/csr_graph.h"

namespace ubigraph {

bool MatchesPropertyType(const PropertyValue& value, PropertyType type) {
  if (std::holds_alternative<std::monostate>(value)) return false;
  switch (type) {
    case PropertyType::kAny: return true;
    case PropertyType::kInt: return std::holds_alternative<int64_t>(value);
    case PropertyType::kDouble: return std::holds_alternative<double>(value);
    case PropertyType::kBool: return std::holds_alternative<bool>(value);
    case PropertyType::kString: return std::holds_alternative<std::string>(value);
    case PropertyType::kTimestamp: return std::holds_alternative<Timestamp>(value);
    case PropertyType::kBytes: return std::holds_alternative<Bytes>(value);
  }
  return false;
}

GraphSchema& GraphSchema::RequireVertexProperty(std::string label, std::string key,
                                                PropertyType type) {
  rules_.push_back(
      Rule{RuleKind::kVertexProperty, std::move(label), std::move(key), {}, type, 0});
  return *this;
}

GraphSchema& GraphSchema::RequireEdgeEndpoints(std::string edge_type,
                                               std::string src_label,
                                               std::string dst_label) {
  rules_.push_back(Rule{RuleKind::kEdgeEndpoints, std::move(edge_type),
                        std::move(src_label), std::move(dst_label),
                        PropertyType::kAny, 0});
  return *this;
}

GraphSchema& GraphSchema::RequireAcyclic(std::string edge_type) {
  rules_.push_back(Rule{RuleKind::kAcyclic, std::move(edge_type), {}, {},
                        PropertyType::kAny, 0});
  return *this;
}

GraphSchema& GraphSchema::LimitOutDegree(std::string label, uint64_t max_out) {
  rules_.push_back(Rule{RuleKind::kOutDegree, std::move(label), {}, {},
                        PropertyType::kAny, max_out});
  return *this;
}

GraphSchema& GraphSchema::RequireUniqueProperty(std::string label,
                                                std::string key) {
  rules_.push_back(Rule{RuleKind::kUniqueProperty, std::move(label),
                        std::move(key), {}, PropertyType::kAny, 0});
  return *this;
}

namespace {

std::string Describe(const PropertyValue& v) {
  return PropertyTypeName(v);
}

}  // namespace

std::vector<SchemaViolation> GraphSchema::Validate(
    const PropertyGraph& graph) const {
  std::vector<SchemaViolation> violations;
  for (const Rule& rule : rules_) {
    switch (rule.kind) {
      case RuleKind::kVertexProperty: {
        for (VertexId v : graph.VerticesWithLabel(rule.label)) {
          PropertyValue value = graph.GetVertexProperty(v, rule.key);
          if (!MatchesPropertyType(value, rule.type)) {
            violations.push_back(
                {"vertex :" + rule.label + " requires property '" + rule.key + "'",
                 "vertex " + std::to_string(v) + " has " + Describe(value), v,
                 kInvalidEdge});
          }
        }
        break;
      }
      case RuleKind::kEdgeEndpoints: {
        for (EdgeId e = 0; e < graph.num_edges(); ++e) {
          if (graph.EdgeType(e) != rule.label) continue;
          VertexId src = graph.EdgeSrc(e), dst = graph.EdgeDst(e);
          bool src_ok = rule.key.empty() || graph.VertexLabel(src) == rule.key;
          bool dst_ok = rule.extra.empty() || graph.VertexLabel(dst) == rule.extra;
          if (!src_ok || !dst_ok) {
            violations.push_back(
                {"edge :" + rule.label + " must connect :" +
                     (rule.key.empty() ? "*" : rule.key) + " -> :" +
                     (rule.extra.empty() ? "*" : rule.extra),
                 "edge " + std::to_string(e) + " connects :" +
                     graph.VertexLabel(src) + " -> :" + graph.VertexLabel(dst),
                 kInvalidVertex, e});
          }
        }
        break;
      }
      case RuleKind::kAcyclic: {
        EdgeList el(graph.num_vertices());
        for (EdgeId e = 0; e < graph.num_edges(); ++e) {
          if (rule.label.empty() || graph.EdgeType(e) == rule.label) {
            el.Add(graph.EdgeSrc(e), graph.EdgeDst(e));
          }
        }
        el.EnsureVertices(graph.num_vertices());
        auto sub = CsrGraph::FromEdges(std::move(el));
        if (sub.ok() && !algo::TopologicalSort(*sub).ok()) {
          violations.push_back(
              {"subgraph of :" + (rule.label.empty() ? std::string("*") : rule.label) +
                   " edges must be acyclic",
               "a cycle exists", kInvalidVertex, kInvalidEdge});
        }
        break;
      }
      case RuleKind::kOutDegree: {
        for (VertexId v : graph.VerticesWithLabel(rule.label)) {
          if (graph.OutDegree(v) > rule.limit) {
            violations.push_back(
                {"vertex :" + rule.label + " limited to " +
                     std::to_string(rule.limit) + " outgoing edges",
                 "vertex " + std::to_string(v) + " has " +
                     std::to_string(graph.OutDegree(v)),
                 v, kInvalidEdge});
          }
        }
        break;
      }
      case RuleKind::kUniqueProperty: {
        std::map<std::string, VertexId> seen;
        for (VertexId v : graph.VerticesWithLabel(rule.label)) {
          PropertyValue value = graph.GetVertexProperty(v, rule.key);
          if (std::holds_alternative<std::monostate>(value)) continue;
          // Key on a printable encoding of the value.
          std::string encoded;
          if (std::holds_alternative<std::string>(value)) {
            encoded = "s:" + std::get<std::string>(value);
          } else if (std::holds_alternative<int64_t>(value)) {
            encoded = "i:" + std::to_string(std::get<int64_t>(value));
          } else if (std::holds_alternative<double>(value)) {
            encoded = "d:" + std::to_string(std::get<double>(value));
          } else if (std::holds_alternative<bool>(value)) {
            encoded = std::get<bool>(value) ? "b:1" : "b:0";
          } else if (std::holds_alternative<Timestamp>(value)) {
            encoded = "t:" + std::to_string(std::get<Timestamp>(value).millis);
          } else {
            continue;  // bytes: not indexed for uniqueness
          }
          auto [it, inserted] = seen.emplace(encoded, v);
          if (!inserted) {
            violations.push_back(
                {"property '" + rule.key + "' must be unique among :" + rule.label,
                 "vertices " + std::to_string(it->second) + " and " +
                     std::to_string(v) + " share a value",
                 v, kInvalidEdge});
          }
        }
        break;
      }
    }
  }
  return violations;
}

}  // namespace ubigraph
