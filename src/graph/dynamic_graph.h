// DynamicGraph: a mutable multigraph (Table 7b — 50/89 participants use
// multigraphs; Table 8 — "dynamic" graphs with frequent permanent changes).
// Supports edge insertion/removal with stable EdgeIds via tombstones.
#pragma once

#include <vector>

#include "common/result.h"
#include "graph/edge_list.h"

namespace ubigraph {

/// A directed mutable multigraph. Undirected semantics can be layered by
/// inserting both arcs; analytics convert to CsrGraph via ToEdgeList().
class DynamicGraph {
 public:
  explicit DynamicGraph(VertexId num_vertices = 0, bool allow_multi_edges = true)
      : adjacency_(num_vertices), in_adjacency_(num_vertices),
        allow_multi_edges_(allow_multi_edges) {}

  /// Adds an isolated vertex, returning its id.
  VertexId AddVertex();

  /// Adds a directed edge. Fails on out-of-range endpoints, and on duplicate
  /// (src, dst) when multi-edges are disallowed.
  Result<EdgeId> AddEdge(VertexId src, VertexId dst, double weight = 1.0);

  /// Removes an edge by id. Fails if already removed or out of range.
  Status RemoveEdge(EdgeId id);

  /// Removes the first live (src, dst) edge. Fails if none exists.
  Status RemoveEdgeBetween(VertexId src, VertexId dst);

  /// Removes a vertex: all incident edges are removed; the vertex id remains
  /// allocated (degree 0) so other ids stay stable.
  Status RemoveVertexEdges(VertexId v);

  VertexId num_vertices() const { return static_cast<VertexId>(adjacency_.size()); }
  /// Live edge count (tombstoned edges excluded).
  uint64_t num_edges() const { return live_edges_; }
  bool allow_multi_edges() const { return allow_multi_edges_; }

  uint64_t OutDegree(VertexId v) const;
  uint64_t InDegree(VertexId v) const;

  /// Visits live out-edges of v: fn(EdgeId, dst, weight).
  template <typename Fn>
  void ForEachOutEdge(VertexId v, Fn&& fn) const {
    for (EdgeId id : adjacency_[v]) {
      const EdgeRecord& e = edges_[id];
      if (!e.removed) fn(id, e.dst, e.weight);
    }
  }

  /// Visits live in-edges of v: fn(EdgeId, src, weight).
  template <typename Fn>
  void ForEachInEdge(VertexId v, Fn&& fn) const {
    for (EdgeId id : in_adjacency_[v]) {
      const EdgeRecord& e = edges_[id];
      if (!e.removed) fn(id, e.src, e.weight);
    }
  }

  /// Number of live parallel (src, dst) edges.
  uint64_t EdgeMultiplicity(VertexId src, VertexId dst) const;
  bool HasEdge(VertexId src, VertexId dst) const {
    return EdgeMultiplicity(src, dst) > 0;
  }

  struct EdgeView {
    VertexId src;
    VertexId dst;
    double weight;
  };
  /// Endpoint/weight of a live edge.
  Result<EdgeView> GetEdge(EdgeId id) const;

  Status SetWeight(EdgeId id, double weight);

  /// Snapshot of all live edges.
  EdgeList ToEdgeList() const;

  /// Reclaims tombstones; invalidates all EdgeIds. Returns reclaimed count.
  uint64_t Compact();

 private:
  struct EdgeRecord {
    VertexId src;
    VertexId dst;
    double weight;
    bool removed = false;
  };

  Status CheckVertex(VertexId v) const;

  std::vector<EdgeRecord> edges_;
  std::vector<std::vector<EdgeId>> adjacency_;     // out-edge ids per vertex
  std::vector<std::vector<EdgeId>> in_adjacency_;  // in-edge ids per vertex
  uint64_t live_edges_ = 0;
  bool allow_multi_edges_ = true;
};

}  // namespace ubigraph
