// DynamicGraph: a mutable multigraph (Table 7b — 50/89 participants use
// multigraphs; Table 8 — "dynamic" graphs with frequent permanent changes).
// Supports edge insertion/removal with stable EdgeIds via tombstones.
#pragma once

#include <vector>

#include "common/result.h"
#include "graph/edge_list.h"

namespace ubigraph {

/// One committed mutation of a DynamicGraph, in application order. The
/// incremental kernels in src/stream consume these as update batches instead
/// of re-reading the whole graph (see DESIGN.md "Incremental maintenance").
struct GraphDelta {
  enum class Kind : uint8_t { kInsert, kRemove };
  Kind kind = Kind::kInsert;
  VertexId src = 0;
  VertexId dst = 0;
  double weight = 1.0;

  static GraphDelta Insert(VertexId src, VertexId dst, double weight = 1.0) {
    return {Kind::kInsert, src, dst, weight};
  }
  static GraphDelta Remove(VertexId src, VertexId dst, double weight = 1.0) {
    return {Kind::kRemove, src, dst, weight};
  }

  friend bool operator==(const GraphDelta& a, const GraphDelta& b) {
    return a.kind == b.kind && a.src == b.src && a.dst == b.dst &&
           a.weight == b.weight;
  }
};

/// A directed mutable multigraph. Undirected semantics can be layered by
/// inserting both arcs; analytics convert to CsrGraph via ToEdgeList().
class DynamicGraph {
 public:
  explicit DynamicGraph(VertexId num_vertices = 0, bool allow_multi_edges = true)
      : adjacency_(num_vertices), in_adjacency_(num_vertices),
        allow_multi_edges_(allow_multi_edges) {}

  /// Adds an isolated vertex, returning its id.
  VertexId AddVertex();

  /// Adds a directed edge. Fails on out-of-range endpoints, and on duplicate
  /// (src, dst) when multi-edges are disallowed.
  Result<EdgeId> AddEdge(VertexId src, VertexId dst, double weight = 1.0);

  /// Removes an edge by id. Fails if already removed or out of range.
  Status RemoveEdge(EdgeId id);

  /// Removes the first live (src, dst) edge. Fails if none exists.
  Status RemoveEdgeBetween(VertexId src, VertexId dst);

  /// Removes a vertex: all incident edges are removed; the vertex id remains
  /// allocated (degree 0) so other ids stay stable.
  Status RemoveVertexEdges(VertexId v);

  VertexId num_vertices() const { return static_cast<VertexId>(adjacency_.size()); }
  /// Live edge count (tombstoned edges excluded).
  uint64_t num_edges() const { return live_edges_; }
  bool allow_multi_edges() const { return allow_multi_edges_; }

  uint64_t OutDegree(VertexId v) const;
  uint64_t InDegree(VertexId v) const;

  /// Visits live out-edges of v: fn(EdgeId, dst, weight).
  template <typename Fn>
  void ForEachOutEdge(VertexId v, Fn&& fn) const {
    for (EdgeId id : adjacency_[v]) {
      const EdgeRecord& e = edges_[id];
      if (!e.removed) fn(id, e.dst, e.weight);
    }
  }

  /// Visits live in-edges of v: fn(EdgeId, src, weight).
  template <typename Fn>
  void ForEachInEdge(VertexId v, Fn&& fn) const {
    for (EdgeId id : in_adjacency_[v]) {
      const EdgeRecord& e = edges_[id];
      if (!e.removed) fn(id, e.src, e.weight);
    }
  }

  /// Number of live parallel (src, dst) edges.
  uint64_t EdgeMultiplicity(VertexId src, VertexId dst) const;
  bool HasEdge(VertexId src, VertexId dst) const {
    return EdgeMultiplicity(src, dst) > 0;
  }

  struct EdgeView {
    VertexId src;
    VertexId dst;
    double weight;
  };
  /// Endpoint/weight of a live edge.
  Result<EdgeView> GetEdge(EdgeId id) const;

  Status SetWeight(EdgeId id, double weight);

  /// Snapshot of all live edges.
  EdgeList ToEdgeList() const;

  /// Reclaims tombstones; invalidates all EdgeIds. Returns reclaimed count.
  uint64_t Compact();

  // --- batch-delta extraction -----------------------------------------------
  // When enabled, every *successful* mutation (AddEdge, RemoveEdge,
  // RemoveEdgeBetween, RemoveVertexEdges) is appended to an in-order delta
  // log. Incremental kernels drain the log with TakeDeltas() and apply it as
  // one batch, so a writer never has to hand-mirror its updates.

  /// Turns delta recording on or off (off by default; recording costs one
  /// append per successful mutation). Disabling does not clear pending
  /// deltas.
  void EnableDeltaLog(bool on = true) { delta_log_enabled_ = on; }
  bool delta_log_enabled() const { return delta_log_enabled_; }

  /// Number of recorded, not-yet-drained deltas.
  size_t pending_deltas() const { return delta_log_.size(); }

  /// Returns the recorded mutations in application order and clears the log.
  std::vector<GraphDelta> TakeDeltas();

 private:
  struct EdgeRecord {
    VertexId src;
    VertexId dst;
    double weight;
    bool removed = false;
  };

  Status CheckVertex(VertexId v) const;

  void LogDelta(GraphDelta::Kind kind, const EdgeRecord& e) {
    if (delta_log_enabled_) delta_log_.push_back({kind, e.src, e.dst, e.weight});
  }

  std::vector<EdgeRecord> edges_;
  std::vector<std::vector<EdgeId>> adjacency_;     // out-edge ids per vertex
  std::vector<std::vector<EdgeId>> in_adjacency_;  // in-edge ids per vertex
  uint64_t live_edges_ = 0;
  bool allow_multi_edges_ = true;
  bool delta_log_enabled_ = false;
  std::vector<GraphDelta> delta_log_;
};

}  // namespace ubigraph
