#include "graph/compressed_csr.h"

#include <string>

namespace ubigraph {

void AppendVarint(std::vector<uint8_t>& out, uint64_t x) {
  while (x >= 0x80) {
    out.push_back(static_cast<uint8_t>(x) | 0x80);
    x >>= 7;
  }
  out.push_back(static_cast<uint8_t>(x));
}

void AppendGapEncodedRow(std::vector<uint8_t>& out,
                         std::span<const VertexId> sorted_targets) {
  VertexId prev = 0;  // the first neighbor encodes as its gap from 0
  for (VertexId t : sorted_targets) {
    AppendVarint(out, t - prev);
    prev = t;
  }
}

CompressedCsrGraph::Index CompressedCsrGraph::Encode(
    const std::vector<uint64_t>& offsets, const std::vector<VertexId>& targets,
    VertexId n) {
  Index idx;
  idx.byte_offsets.resize(static_cast<size_t>(n) + 1);
  idx.degrees.resize(n);
  // Sorted power-law adjacency averages well under 2 bytes per gap; reserving
  // half the plain array avoids most growth reallocations without
  // over-committing on graphs that compress better.
  idx.bytes.reserve(targets.size() * 2);
  idx.byte_offsets[0] = 0;
  for (VertexId v = 0; v < n; ++v) {
    const uint64_t lo = offsets[v], hi = offsets[v + 1];
    idx.degrees[v] = static_cast<uint32_t>(hi - lo);
    AppendGapEncodedRow(idx.bytes,
                        std::span<const VertexId>(targets).subspan(lo, hi - lo));
    idx.byte_offsets[v + 1] = idx.bytes.size();
  }
  idx.bytes.shrink_to_fit();
  return idx;
}

Result<CompressedCsrGraph> CompressedCsrGraph::FromCsr(const CsrGraph& g) {
  if (!g.neighbors_sorted()) {
    return Status::Invalid(
        "CompressedCsrGraph::FromCsr requires sorted adjacency lists "
        "(CsrOptions::sort_neighbors = true): gap encoding needs ascending "
        "targets");
  }
  CompressedCsrGraph c;
  c.num_vertices_ = g.num_vertices();
  c.num_edges_ = g.num_edges();
  c.directed_ = g.directed();
  c.out_ = Encode(g.offsets(), g.targets(), c.num_vertices_);
  if (g.directed() && g.has_in_edges()) {
    // Re-derive the in-index arrays through the public accessors: CsrGraph
    // does not expose in_offsets_ directly, so rebuild a contiguous copy.
    std::vector<uint64_t> in_offsets(static_cast<size_t>(c.num_vertices_) + 1, 0);
    for (VertexId v = 0; v < c.num_vertices_; ++v) {
      in_offsets[v + 1] = in_offsets[v] + g.InDegree(v);
    }
    std::vector<VertexId> in_src(in_offsets[c.num_vertices_]);
    for (VertexId v = 0; v < c.num_vertices_; ++v) {
      uint64_t pos = in_offsets[v];
      for (VertexId u : g.InNeighbors(v)) in_src[pos++] = u;
    }
    c.in_ = Encode(in_offsets, in_src, c.num_vertices_);
  }
  return c;
}

Status CompressedCsrGraph::RequireInEdges(std::string_view caller) const {
  if (!directed_ || !in_.byte_offsets.empty()) return Status::OK();
  return Status::Invalid(
      std::string(caller) +
      " requires the in-edge index on directed graphs; compress a CsrGraph "
      "built with CsrOptions::build_in_edges = true, or force a push-only "
      "mode");
}

uint64_t CompressedCsrGraph::index_bytes() const {
  auto one = [](const Index& i) {
    return i.bytes.size() + i.byte_offsets.size() * sizeof(uint64_t) +
           i.degrees.size() * sizeof(uint32_t);
  };
  return one(out_) + one(in_);
}

}  // namespace ubigraph
