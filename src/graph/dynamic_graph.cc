#include "graph/dynamic_graph.h"

#include <algorithm>

namespace ubigraph {

VertexId DynamicGraph::AddVertex() {
  adjacency_.emplace_back();
  in_adjacency_.emplace_back();
  return static_cast<VertexId>(adjacency_.size() - 1);
}

Status DynamicGraph::CheckVertex(VertexId v) const {
  if (v >= adjacency_.size()) {
    return Status::OutOfRange("vertex " + std::to_string(v) + " >= " +
                              std::to_string(adjacency_.size()));
  }
  return Status::OK();
}

Result<EdgeId> DynamicGraph::AddEdge(VertexId src, VertexId dst, double weight) {
  UG_RETURN_NOT_OK(CheckVertex(src));
  UG_RETURN_NOT_OK(CheckVertex(dst));
  if (!allow_multi_edges_ && HasEdge(src, dst)) {
    return Status::AlreadyExists("edge (" + std::to_string(src) + ", " +
                                 std::to_string(dst) + ") exists in simple graph");
  }
  EdgeId id = edges_.size();
  edges_.push_back(EdgeRecord{src, dst, weight, false});
  adjacency_[src].push_back(id);
  in_adjacency_[dst].push_back(id);
  ++live_edges_;
  LogDelta(GraphDelta::Kind::kInsert, edges_[id]);
  return id;
}

Status DynamicGraph::RemoveEdge(EdgeId id) {
  if (id >= edges_.size()) {
    return Status::OutOfRange("edge id " + std::to_string(id) + " out of range");
  }
  if (edges_[id].removed) {
    return Status::NotFound("edge id " + std::to_string(id) + " already removed");
  }
  edges_[id].removed = true;
  --live_edges_;
  LogDelta(GraphDelta::Kind::kRemove, edges_[id]);
  return Status::OK();
}

Status DynamicGraph::RemoveEdgeBetween(VertexId src, VertexId dst) {
  UG_RETURN_NOT_OK(CheckVertex(src));
  UG_RETURN_NOT_OK(CheckVertex(dst));
  for (EdgeId id : adjacency_[src]) {
    if (!edges_[id].removed && edges_[id].dst == dst) {
      return RemoveEdge(id);
    }
  }
  return Status::NotFound("no live edge (" + std::to_string(src) + ", " +
                          std::to_string(dst) + ")");
}

Status DynamicGraph::RemoveVertexEdges(VertexId v) {
  UG_RETURN_NOT_OK(CheckVertex(v));
  for (EdgeId id : adjacency_[v]) {
    if (!edges_[id].removed) {
      edges_[id].removed = true;
      --live_edges_;
      LogDelta(GraphDelta::Kind::kRemove, edges_[id]);
    }
  }
  for (EdgeId id : in_adjacency_[v]) {
    if (!edges_[id].removed) {
      edges_[id].removed = true;
      --live_edges_;
      LogDelta(GraphDelta::Kind::kRemove, edges_[id]);
    }
  }
  return Status::OK();
}

std::vector<GraphDelta> DynamicGraph::TakeDeltas() {
  std::vector<GraphDelta> out;
  out.swap(delta_log_);
  return out;
}

uint64_t DynamicGraph::OutDegree(VertexId v) const {
  uint64_t d = 0;
  for (EdgeId id : adjacency_[v]) {
    if (!edges_[id].removed) ++d;
  }
  return d;
}

uint64_t DynamicGraph::InDegree(VertexId v) const {
  uint64_t d = 0;
  for (EdgeId id : in_adjacency_[v]) {
    if (!edges_[id].removed) ++d;
  }
  return d;
}

uint64_t DynamicGraph::EdgeMultiplicity(VertexId src, VertexId dst) const {
  if (src >= adjacency_.size()) return 0;
  uint64_t count = 0;
  for (EdgeId id : adjacency_[src]) {
    const EdgeRecord& e = edges_[id];
    if (!e.removed && e.dst == dst) ++count;
  }
  return count;
}

Result<DynamicGraph::EdgeView> DynamicGraph::GetEdge(EdgeId id) const {
  if (id >= edges_.size() || edges_[id].removed) {
    return Status::NotFound("edge id " + std::to_string(id));
  }
  const EdgeRecord& e = edges_[id];
  return EdgeView{e.src, e.dst, e.weight};
}

Status DynamicGraph::SetWeight(EdgeId id, double weight) {
  if (id >= edges_.size() || edges_[id].removed) {
    return Status::NotFound("edge id " + std::to_string(id));
  }
  edges_[id].weight = weight;
  return Status::OK();
}

EdgeList DynamicGraph::ToEdgeList() const {
  EdgeList out(num_vertices());
  out.Reserve(live_edges_);
  for (const EdgeRecord& e : edges_) {
    if (!e.removed) out.Add(e.src, e.dst, e.weight);
  }
  out.EnsureVertices(num_vertices());
  return out;
}

uint64_t DynamicGraph::Compact() {
  uint64_t removed = edges_.size() - live_edges_;
  std::vector<EdgeRecord> kept;
  kept.reserve(live_edges_);
  for (auto& adj : adjacency_) adj.clear();
  for (auto& adj : in_adjacency_) adj.clear();
  for (const EdgeRecord& e : edges_) {
    if (e.removed) continue;
    EdgeId id = kept.size();
    kept.push_back(e);
    adjacency_[e.src].push_back(id);
    in_adjacency_[e.dst].push_back(id);
  }
  edges_ = std::move(kept);
  return removed;
}

}  // namespace ubigraph
