// Triggers — a top-3 graph-database request (Table 19: 18): "automatically
// adding a particular property to vertices during insertion or creating a
// backup of a vertex or an edge during updates" (§6.2), analogous to
// OrientDB's hooks / Neo4j's TransactionEventHandler. TriggeredGraph wraps a
// PropertyGraph and fires registered callbacks on mutations.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/property_graph.h"

namespace ubigraph {

enum class GraphEvent : uint8_t {
  kVertexAdded,
  kEdgeAdded,
  kVertexPropertySet,
  kEdgePropertySet,
};

/// Payload passed to trigger callbacks.
struct TriggerContext {
  GraphEvent event;
  VertexId vertex = kInvalidVertex;  // for vertex events and edge src
  EdgeId edge = kInvalidEdge;        // for edge events
  std::string key;                   // property key (property events)
  const PropertyValue* new_value = nullptr;  // property events
  const PropertyValue* old_value = nullptr;  // property set: previous value
};

/// A PropertyGraph facade with trigger hooks. Callbacks may mutate the graph
/// (e.g. stamp a created_at property) — re-entrant firing is suppressed so a
/// trigger's own mutations do not recurse.
class TriggeredGraph {
 public:
  using Callback = std::function<void(TriggeredGraph&, const TriggerContext&)>;

  /// Registers a callback for an event; returns its registration id.
  size_t RegisterTrigger(GraphEvent event, Callback callback);
  /// Unregisters; true if it existed.
  bool UnregisterTrigger(size_t id);
  size_t num_triggers() const;

  // Mutations (forward to the underlying graph, then fire triggers).
  VertexId AddVertex(std::string_view label);
  Result<EdgeId> AddEdge(VertexId src, VertexId dst, std::string_view type);
  Status SetVertexProperty(VertexId v, std::string_view key, PropertyValue value);
  Status SetEdgeProperty(EdgeId e, std::string_view key, PropertyValue value);

  /// Read access to the wrapped graph.
  const PropertyGraph& graph() const { return graph_; }

  /// Number of trigger invocations so far (for auditing/tests).
  uint64_t fired_count() const { return fired_; }

 private:
  void Fire(const TriggerContext& context);

  struct Registration {
    size_t id;
    GraphEvent event;
    Callback callback;
  };

  PropertyGraph graph_;
  std::vector<Registration> triggers_;
  size_t next_id_ = 0;
  uint64_t fired_ = 0;
  bool firing_ = false;  // re-entrancy guard
};

/// Prebuilt trigger: stamps `key` = Timestamp{clock_value} on every new
/// vertex; `clock` is read at fire time (caller-owned monotonic counter).
TriggeredGraph::Callback MakeCreatedAtTrigger(std::string key,
                                              const int64_t* clock);

/// Prebuilt trigger: appends a human-readable line per property change to
/// `audit_log` ("vertex 3 name: old -> new"), the §6.2 backup-on-update use.
TriggeredGraph::Callback MakeAuditTrigger(std::vector<std::string>* audit_log);

}  // namespace ubigraph
