#include "graph/property_graph.h"

namespace ubigraph {

const char* PropertyTypeName(const PropertyValue& v) {
  switch (v.index()) {
    case 0: return "null";
    case 1: return "int";
    case 2: return "double";
    case 3: return "bool";
    case 4: return "string";
    case 5: return "timestamp";
    case 6: return "bytes";
  }
  return "unknown";
}

uint32_t StringDictionary::Intern(std::string_view s) {
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(s);
  index_.emplace(names_.back(), id);
  return id;
}

std::optional<uint32_t> StringDictionary::Lookup(std::string_view s) const {
  auto it = index_.find(std::string(s));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

VertexId PropertyGraph::AddVertex(std::string_view label) {
  VertexRecord rec;
  rec.label = labels_.Intern(label);
  vertices_.push_back(std::move(rec));
  ++version_;
  return static_cast<VertexId>(vertices_.size() - 1);
}

Result<EdgeId> PropertyGraph::AddEdge(VertexId src, VertexId dst,
                                      std::string_view type) {
  if (src >= vertices_.size() || dst >= vertices_.size()) {
    return Status::OutOfRange("edge endpoint out of range");
  }
  EdgeId id = edges_.size();
  edges_.push_back(EdgeRecord{src, dst, labels_.Intern(type), {}});
  vertices_[src].out.push_back(id);
  vertices_[dst].in.push_back(id);
  ++version_;
  return id;
}

const std::string& PropertyGraph::VertexLabel(VertexId v) const {
  return labels_.Name(vertices_[v].label);
}

const std::string& PropertyGraph::EdgeType(EdgeId e) const {
  return labels_.Name(edges_[e].type);
}

void PropertyGraph::SetInMap(PropertyMap* map, uint32_t key, PropertyValue value) {
  for (auto& [k, v] : *map) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  map->emplace_back(key, std::move(value));
}

PropertyValue PropertyGraph::GetFromMap(const PropertyMap& map, uint32_t key) {
  for (const auto& [k, v] : map) {
    if (k == key) return v;
  }
  return std::monostate{};
}

Status PropertyGraph::SetVertexProperty(VertexId v, std::string_view key,
                                        PropertyValue value) {
  if (v >= vertices_.size()) return Status::OutOfRange("vertex out of range");
  SetInMap(&vertices_[v].props, keys_.Intern(key), std::move(value));
  ++version_;
  return Status::OK();
}

Status PropertyGraph::SetEdgeProperty(EdgeId e, std::string_view key,
                                      PropertyValue value) {
  if (e >= edges_.size()) return Status::OutOfRange("edge out of range");
  SetInMap(&edges_[e].props, keys_.Intern(key), std::move(value));
  ++version_;
  return Status::OK();
}

PropertyValue PropertyGraph::GetVertexProperty(VertexId v,
                                               std::string_view key) const {
  if (v >= vertices_.size()) return std::monostate{};
  auto id = keys_.Lookup(key);
  if (!id) return std::monostate{};
  return GetFromMap(vertices_[v].props, *id);
}

const PropertyValue* PropertyGraph::FindVertexProperty(VertexId v,
                                                       uint32_t key_id) const {
  if (v >= vertices_.size()) return nullptr;
  for (const auto& [k, val] : vertices_[v].props) {
    if (k == key_id) return &val;
  }
  return nullptr;
}

PropertyValue PropertyGraph::GetEdgeProperty(EdgeId e, std::string_view key) const {
  if (e >= edges_.size()) return std::monostate{};
  auto id = keys_.Lookup(key);
  if (!id) return std::monostate{};
  return GetFromMap(edges_[e].props, *id);
}

std::vector<std::pair<std::string, PropertyValue>> PropertyGraph::VertexProperties(
    VertexId v) const {
  std::vector<std::pair<std::string, PropertyValue>> out;
  if (v >= vertices_.size()) return out;
  for (const auto& [k, val] : vertices_[v].props) {
    out.emplace_back(keys_.Name(k), val);
  }
  return out;
}

std::vector<VertexId> PropertyGraph::VerticesWithLabel(std::string_view label) const {
  std::vector<VertexId> out;
  auto id = labels_.Lookup(label);
  if (!id) return out;
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    if (vertices_[v].label == *id) out.push_back(v);
  }
  return out;
}

std::vector<EdgeId> PropertyGraph::OutEdges(VertexId v, std::string_view type) const {
  std::vector<EdgeId> out;
  if (v >= vertices_.size()) return out;
  std::optional<uint32_t> want;
  if (!type.empty()) {
    want = labels_.Lookup(type);
    if (!want) return out;
  }
  for (EdgeId e : vertices_[v].out) {
    if (!want || edges_[e].type == *want) out.push_back(e);
  }
  return out;
}

std::vector<EdgeId> PropertyGraph::InEdges(VertexId v, std::string_view type) const {
  std::vector<EdgeId> out;
  if (v >= vertices_.size()) return out;
  std::optional<uint32_t> want;
  if (!type.empty()) {
    want = labels_.Lookup(type);
    if (!want) return out;
  }
  for (EdgeId e : vertices_[v].in) {
    if (!want || edges_[e].type == *want) out.push_back(e);
  }
  return out;
}

EdgeList PropertyGraph::ToEdgeList() const {
  EdgeList out(num_vertices());
  out.Reserve(edges_.size());
  auto weight_key = keys_.Lookup("weight");
  for (const EdgeRecord& e : edges_) {
    double w = 1.0;
    if (weight_key) {
      PropertyValue pv = GetFromMap(e.props, *weight_key);
      if (std::holds_alternative<double>(pv)) w = std::get<double>(pv);
      else if (std::holds_alternative<int64_t>(pv))
        w = static_cast<double>(std::get<int64_t>(pv));
    }
    out.Add(e.src, e.dst, w);
  }
  out.EnsureVertices(num_vertices());
  return out;
}

}  // namespace ubigraph
